#!/usr/bin/env python3
"""Benchmark regression smoke check.

Runs the micro benchmarks (micro_index, micro_postings) with a very short
--benchmark_min_time and compares each benchmark's CPU time (best of
--runs short runs) against the committed baselines in
bench/baselines/BENCH_<bench>.json. Because the
baselines were recorded on a different machine than CI runners, raw ratios
are meaningless; instead each benchmark's new/baseline ratio is normalized
by the *median* ratio across all benchmarks of that binary. A uniformly
slower machine shifts every ratio equally and cancels out; a benchmark that
regressed relative to its peers sticks out. The check fails when any
normalized ratio exceeds the threshold (default 1.25 = >25% relative
regression).

Modes:
  --mode blocking   exit non-zero on regression (Release CI)
  --mode advisory   always exit zero, print the report (Debug CI)

The committed baselines are recorded from a Release build of the library,
so only the Release CI leg runs blocking; Debug-vs-Release speedups are
non-uniform per benchmark and would defeat the normalization, which is why
the Debug leg is advisory. (The `library_build_type: debug` field inside
the baseline JSONs describes the google-benchmark harness package, not
this library's optimization level.)

Baselines are decode-arm-aware: the runtime-dispatched group-varint
decoder makes decode-heavy benchmarks genuinely faster under SIMD, so each
run's recorded `fts_decode_arm` context selects
bench/baselines/BENCH_<bench>.<arm>.json when that file exists, falling
back to the plain BENCH_<bench>.json (recorded scalar-forced — the
portable floor every arm should at least match).

Note: the container's google-benchmark predates the "0.01x" min-time
syntax, so the script passes a plain seconds value (default 0.05).
"""

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile

# micro_service's throughput series use real-time + process-CPU
# measurement: their cpu_time is the whole pool's CPU per batch, which is
# as machine-portable as the single-thread benches' once normalized by the
# median machine ratio. The scaling *shape* (qps at threads:8 vs threads:1)
# is a counter, not a time, so it never trips the regression check on
# differently-cored runners.
DEFAULT_BENCHES = ["micro_index", "micro_postings", "micro_service",
                   "micro_ingest", "micro_topk", "micro_net", "micro_pairs"]

# Multipliers to nanoseconds per google-benchmark time_unit.
TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """benchmark name -> CPU time in ns, per-iteration runs only. CPU time
    is used instead of wall time: the smoke run is short, and scheduler
    noise on shared CI runners hits wall time much harder. Also returns the
    run's decode arm ("avx2"/"ssse3"/"scalar", recorded by BenchMain as
    custom context) so the caller can pick an arm-matched baseline."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip mean/median/stddev aggregates
        unit = TIME_UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
        times[b["name"]] = b["cpu_time"] * unit
    return times, doc.get("context", {}).get("fts_decode_arm")


def run_bench(build_dir, bench, min_time, out_path):
    binary = os.path.join(build_dir, bench)
    if not os.path.exists(binary):
        raise FileNotFoundError(f"benchmark binary not found: {binary}")
    cmd = [
        binary,
        f"--benchmark_min_time={min_time}",
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
    ]
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)


def check_bench(build_dir, baseline_dir, bench, min_time, threshold, runs,
                max_bench_ms):
    """Returns (regressions, report_lines)."""
    # Best-of-N: scheduler interference only ever inflates timings, so the
    # per-benchmark minimum over a few short runs is far stabler than one
    # longer run.
    current = {}
    arm = None
    for _ in range(runs):
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            out_path = tmp.name
        try:
            run_bench(build_dir, bench, min_time, out_path)
            run_times, run_arm = load_times(out_path)
            arm = arm or run_arm
            for name, t in run_times.items():
                current[name] = min(t, current.get(name, float("inf")))
        except (FileNotFoundError, subprocess.CalledProcessError) as e:
            # A missing or crashing binary must not take the whole check
            # down with a traceback — report it and move on to the other
            # binaries (a baseline with no runnable binary is a wiring
            # problem the report line makes visible).
            return [], [f"{bench}: run failed ({e}); skipped"]
        finally:
            os.unlink(out_path)

    # Decode-arm-aware baseline selection: SIMD group decode makes the
    # decode-heavy benchmarks genuinely faster, so a scalar-forced run
    # compared against an avx2-recorded baseline reports the SIMD speedup
    # itself as a regression (and vice versa hides real ones). Prefer a
    # baseline recorded under the same arm; the plain file is the portable
    # floor for arms without a dedicated recording.
    baseline_path = os.path.join(baseline_dir, f"BENCH_{bench}.json")
    arm_warning = None
    if arm is not None:
        arm_path = os.path.join(baseline_dir, f"BENCH_{bench}.{arm}.json")
        if os.path.exists(arm_path):
            baseline_path = arm_path
        else:
            # Falling back to the portable floor is legitimate but must be
            # visible: a SIMD run compared against a scalar-recorded floor
            # always looks faster, so real SIMD-arm regressions can hide
            # until someone records BENCH_<bench>.<arm>.json.
            arm_warning = (f"  WARNING: no {arm} baseline "
                           f"({os.path.basename(arm_path)} missing); "
                           f"comparing against the portable floor — "
                           f"{arm}-specific regressions may go undetected")
    if not os.path.exists(baseline_path):
        return [], [f"{bench}: no baseline at {baseline_path}; skipped"]
    baseline, baseline_arm = load_times(baseline_path)

    common = sorted(set(baseline) & set(current))
    # Benchmarks whose single iteration exceeds the smoke budget run once,
    # cold — their ratio is dominated by warmup, not regressions. Skip them
    # (the short query-path benchmarks are the ones this check protects),
    # along with any degenerate zero-time baseline entries.
    too_long = [n for n in common if baseline[n] > max_bench_ms * 1e6]
    common = [n for n in common
              if 0 < baseline[n] <= max_bench_ms * 1e6]
    if not common:
        return [], [f"{bench}: no common benchmarks with baseline; skipped"]

    ratios = {name: current[name] / baseline[name] for name in common}
    median = statistics.median(ratios.values())
    arm_note = ""
    if arm is not None or baseline_arm is not None:
        arm_note = (f", decode arm {arm or 'unknown'} vs baseline "
                    f"{baseline_arm or 'unknown'} "
                    f"[{os.path.basename(baseline_path)}]")
    report = [f"{bench}: {len(common)} benchmarks, median machine ratio "
              f"{median:.2f}x (normalizing by it){arm_note}"]
    if arm_warning:
        report.append(arm_warning)
    if too_long:
        report.append(f"  {len(too_long)} benchmark(s) over {max_bench_ms}ms "
                      f"per iteration skipped (cold single-iteration smoke "
                      f"runs are warmup-dominated): {', '.join(too_long)}")
    new_only = sorted(set(current) - set(baseline))
    if new_only:
        report.append(f"  {len(new_only)} benchmark(s) not in baseline "
                      f"(ignored): {', '.join(new_only[:5])}"
                      f"{' ...' if len(new_only) > 5 else ''}")

    regressions = []
    for name in common:
        norm = ratios[name] / median if median > 0 else float("inf")
        flag = ""
        if norm > threshold:
            regressions.append((name, norm))
            flag = f"  <-- REGRESSION (> {threshold:.2f}x)"
        report.append(f"  {name}: {norm:.2f}x relative{flag}")
    return regressions, report


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--benches", nargs="*", default=DEFAULT_BENCHES)
    parser.add_argument("--min-time", default="0.05",
                        help="--benchmark_min_time value (seconds)")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="max allowed normalized ratio (1.25 = +25%%)")
    parser.add_argument("--max-bench-ms", type=float, default=20.0,
                        help="skip benchmarks whose baseline iteration "
                             "exceeds this many milliseconds")
    parser.add_argument("--runs", type=int, default=3,
                        help="short runs per binary; per-benchmark minimum "
                             "is compared (noise is one-sided)")
    parser.add_argument("--mode", choices=["blocking", "advisory"],
                        default="blocking")
    args = parser.parse_args()

    all_regressions = []
    for bench in args.benches:
        regressions, report = check_bench(args.build_dir, args.baseline_dir,
                                          bench, args.min_time, args.threshold,
                                          args.runs, args.max_bench_ms)
        print("\n".join(report))
        all_regressions.extend(regressions)

    if all_regressions:
        print(f"\n{len(all_regressions)} benchmark(s) regressed >"
              f"{(args.threshold - 1) * 100:.0f}% relative to the baseline:")
        for name, norm in all_regressions:
            print(f"  {name}: {norm:.2f}x")
        if args.mode == "blocking":
            return 1
        print("(advisory mode: not failing the build)")
    else:
        print("\nno benchmark regressions detected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
