// fts_server: serves one index file over the fts wire protocol plus the
// HTTP /metrics and /healthz endpoints (docs/serving.md). One process per
// shard; put a fts_router in front for a document-partitioned deployment.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "index/index_io.h"
#include "net/server.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: fts_server --index PATH [--port N] [--name STR]\n"
      "                  [--scoring none|tfidf|prob] [--mode adaptive|seq|seek]\n"
      "                  [--workers N] [--listen-all] [--mmap]\n"
      "                  [--admission-max-cost N] [--admission-pressure F]\n"
      "  --port N                TCP port (default 7070; 0 = ephemeral)\n"
      "  --scoring KIND          ranked scoring model (default none)\n"
      "  --mode MODE             cursor mode (default adaptive)\n"
      "  --workers N             worker threads (default: hardware)\n"
      "  --listen-all            bind 0.0.0.0 instead of loopback\n"
      "  --mmap                  mmap the index instead of eager load\n"
      "  --admission-max-cost N  shed queries costlier than N under pressure\n"
      "  --admission-pressure F  queue fraction that arms shedding (default 0.5)\n");
  std::exit(2);
}

uint64_t ParseU64(const char* flag, const char* value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "fts_server: bad value for %s: %s\n", flag, value);
    std::exit(2);
  }
  return v;
}

sigset_t ShutdownSignals() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  return set;
}

/// Masks SIGINT/SIGTERM in the calling (main) thread. Must run before any
/// server thread is spawned so every thread inherits the mask and sigwait
/// below is the only consumer — otherwise a process-directed signal can
/// land on a worker thread and kill the process without a clean Stop().
void MaskShutdownSignals() {
  const sigset_t set = ShutdownSignals();
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
}

/// Blocks until SIGINT or SIGTERM arrives (consumed synchronously).
void WaitForShutdownSignal() {
  const sigset_t set = ShutdownSignals();
  int sig = 0;
  sigwait(&set, &sig);
  std::printf("fts_server: caught %s, shutting down\n", strsignal(sig));
}

}  // namespace

int main(int argc, char** argv) {
  std::string index_path;
  fts::LoadOptions load;
  fts::net::FtsServer::Options options;
  options.port = 7070;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (arg == "--index") {
      index_path = next();
    } else if (arg == "--port") {
      options.port = static_cast<uint16_t>(ParseU64("--port", next()));
    } else if (arg == "--name") {
      options.name = next();
    } else if (arg == "--scoring") {
      const std::string kind = next();
      if (kind == "none") {
        options.service.scoring = fts::ScoringKind::kNone;
      } else if (kind == "tfidf") {
        options.service.scoring = fts::ScoringKind::kTfIdf;
      } else if (kind == "prob") {
        options.service.scoring = fts::ScoringKind::kProbabilistic;
      } else {
        Usage();
      }
    } else if (arg == "--mode") {
      const std::string mode = next();
      if (mode == "adaptive") {
        options.service.mode = fts::CursorMode::kAdaptive;
      } else if (mode == "seq") {
        options.service.mode = fts::CursorMode::kSequential;
      } else if (mode == "seek") {
        options.service.mode = fts::CursorMode::kSeek;
      } else {
        Usage();
      }
    } else if (arg == "--workers") {
      options.service.num_workers = ParseU64("--workers", next());
    } else if (arg == "--listen-all") {
      options.loopback_only = false;
    } else if (arg == "--mmap") {
      load.mode = fts::LoadOptions::Mode::kMmap;
    } else if (arg == "--admission-max-cost") {
      options.admission.enabled = true;
      options.admission.max_cost = ParseU64("--admission-max-cost", next());
    } else if (arg == "--admission-pressure") {
      options.admission.pressure_fraction = std::atof(next());
    } else {
      Usage();
    }
  }
  if (index_path.empty()) Usage();

  auto index = std::make_shared<fts::InvertedIndex>();
  fts::Status s = fts::LoadIndexFromFile(index_path, index.get(), load);
  if (!s.ok()) {
    std::fprintf(stderr, "fts_server: %s\n", s.ToString().c_str());
    return 1;
  }

  MaskShutdownSignals();
  fts::net::FtsServer server(index, options);
  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "fts_server: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("fts_server: \"%s\" serving %s on port %u (%zu workers)\n",
              options.name.c_str(), index_path.c_str(), server.port(),
              server.service().num_workers());
  std::fflush(stdout);

  WaitForShutdownSignal();
  server.Stop();
  return 0;
}
