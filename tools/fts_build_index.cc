// fts_build_index: builds index files for fts_server, optionally
// splitting the corpus into contiguous document-partitioned shards
// (docs/serving.md "Quickstart").
//
// Input is either a text file (one context node per line) or the seeded
// synthetic generator the benchmarks use (--gen). With --shards N the
// corpus is cut into N contiguous doc-id ranges via Corpus::Slice and one
// index per shard is written as <out>.shard<i>; the unsplit index is
// always written to <out> so a single-server run (or a differential
// check) uses the same build.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "index/index_builder.h"
#include "index/index_io.h"
#include "text/corpus.h"
#include "workload/corpus_gen.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: fts_build_index --out PATH [--input FILE | --gen]\n"
               "                       [--shards N] [--nodes N] [--seed N]\n"
               "                       [--pair-terms N] [--pair-distance K]\n"
               "  --out PATH    output index file; shard i goes to PATH.shard<i>\n"
               "  --input FILE  corpus text, one context node per line\n"
               "  --gen         synthetic corpus (workload/corpus_gen.h) instead\n"
               "  --shards N    also write N contiguous doc-range shard indexes\n"
               "  --nodes N     synthetic corpus size (default 6000)\n"
               "  --seed N      synthetic corpus seed (default 42)\n"
               "  --pair-terms N     build pair lists for the top-N frequent\n"
               "                     terms (docs/pair_index.md; default 0 = off)\n"
               "  --pair-distance K  largest NEAR/k the pair lists answer\n"
               "                     (default 5)\n");
  std::exit(2);
}

uint64_t ParseU64(const char* flag, const char* value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "fts_build_index: bad value for %s: %s\n", flag, value);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  std::string input;
  bool gen = false;
  uint32_t shards = 0;
  fts::CorpusGenOptions gen_options;
  fts::IndexBuildOptions build_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (arg == "--out") {
      out = next();
    } else if (arg == "--input") {
      input = next();
    } else if (arg == "--gen") {
      gen = true;
    } else if (arg == "--shards") {
      shards = static_cast<uint32_t>(ParseU64("--shards", next()));
    } else if (arg == "--nodes") {
      gen_options.num_nodes = static_cast<uint32_t>(ParseU64("--nodes", next()));
    } else if (arg == "--seed") {
      gen_options.seed = ParseU64("--seed", next());
    } else if (arg == "--pair-terms") {
      build_options.pairs.frequent_terms =
          static_cast<size_t>(ParseU64("--pair-terms", next()));
    } else if (arg == "--pair-distance") {
      build_options.pairs.max_distance =
          static_cast<uint32_t>(ParseU64("--pair-distance", next()));
    } else {
      Usage();
    }
  }
  if (out.empty() || (gen == !input.empty())) Usage();

  fts::Corpus corpus;
  if (gen) {
    corpus = fts::GenerateCorpus(gen_options);
  } else {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "fts_build_index: cannot open %s\n", input.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) corpus.AddDocument(line);
    }
  }
  if (corpus.num_nodes() == 0) {
    std::fprintf(stderr, "fts_build_index: empty corpus\n");
    return 1;
  }
  std::printf("corpus: %zu nodes, %zu distinct tokens\n", corpus.num_nodes(),
              corpus.vocabulary_size());

  const fts::InvertedIndex full = fts::IndexBuilder::Build(corpus, build_options);
  fts::Status s = fts::SaveIndexToFile(full, out);
  if (!s.ok()) {
    std::fprintf(stderr, "fts_build_index: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu nodes)\n", out.c_str(), corpus.num_nodes());

  if (shards > 1) {
    // Contiguous even split; the first (num_nodes % shards) shards take one
    // extra node. Shard i's doc-id base is the prefix sum a router will
    // recompute from ping node counts.
    const uint64_t n = corpus.num_nodes();
    uint64_t begin = 0;
    for (uint32_t i = 0; i < shards; ++i) {
      const uint64_t size = n / shards + (i < n % shards ? 1 : 0);
      auto slice = corpus.Slice(static_cast<fts::NodeId>(begin),
                                static_cast<fts::NodeId>(begin + size));
      if (!slice.ok()) {
        std::fprintf(stderr, "fts_build_index: %s\n",
                     slice.status().ToString().c_str());
        return 1;
      }
      const fts::InvertedIndex shard =
          fts::IndexBuilder::Build(*slice, build_options);
      const std::string path = out + ".shard" + std::to_string(i);
      s = fts::SaveIndexToFile(shard, path);
      if (!s.ok()) {
        std::fprintf(stderr, "fts_build_index: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s (nodes [%llu, %llu), base %llu)\n", path.c_str(),
                  static_cast<unsigned long long>(begin),
                  static_cast<unsigned long long>(begin + size),
                  static_cast<unsigned long long>(begin));
      begin += size;
    }
  }
  return 0;
}
