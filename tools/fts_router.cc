// fts_router: scatter-gather front for document-partitioned fts_server
// shards (docs/serving.md). Connects to every shard, assigns doc-id bases
// by prefix sum, optionally exchanges global scoring statistics so shard
// scores are bit-identical to a single-index run, then serves the same
// wire protocol (and HTTP /metrics, /healthz) a single fts_server speaks.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/shard_router.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: fts_router --shard HOST:PORT [--shard HOST:PORT ...]\n"
               "                  [--port N] [--name STR] [--listen-all]\n"
               "                  [--no-stats-exchange]\n"
               "  --shard HOST:PORT     a shard server, in doc-id-range order\n"
               "  --port N              TCP port (default 7080; 0 = ephemeral)\n"
               "  --listen-all          bind 0.0.0.0 instead of loopback\n"
               "  --no-stats-exchange   skip the global df/idf exchange (fine\n"
               "                        for unscored serving; scored results\n"
               "                        would use shard-local statistics)\n");
  std::exit(2);
}

fts::net::ShardAddress ParseShard(const char* value) {
  const char* colon = std::strrchr(value, ':');
  if (colon == nullptr || colon == value || colon[1] == '\0') {
    std::fprintf(stderr, "fts_router: bad --shard (want HOST:PORT): %s\n", value);
    std::exit(2);
  }
  fts::net::ShardAddress addr;
  addr.host.assign(value, colon - value);
  char* end = nullptr;
  const unsigned long port = std::strtoul(colon + 1, &end, 10);
  if (*end != '\0' || port == 0 || port > 65535) {
    std::fprintf(stderr, "fts_router: bad --shard port: %s\n", value);
    std::exit(2);
  }
  addr.port = static_cast<uint16_t>(port);
  return addr;
}

sigset_t ShutdownSignals() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  return set;
}

/// Masks SIGINT/SIGTERM; must run before any router/server thread spawns
/// so sigwait below is the only consumer (see fts_server.cc).
void MaskShutdownSignals() {
  const sigset_t set = ShutdownSignals();
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
}

void WaitForShutdownSignal() {
  const sigset_t set = ShutdownSignals();
  int sig = 0;
  sigwait(&set, &sig);
  std::printf("fts_router: caught %s, shutting down\n", strsignal(sig));
}

}  // namespace

int main(int argc, char** argv) {
  fts::net::ShardRouter::Options router_options;
  fts::net::RouterServer::Options server_options;
  server_options.port = 7080;
  bool exchange_stats = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (arg == "--shard") {
      router_options.shards.push_back(ParseShard(next()));
    } else if (arg == "--port") {
      server_options.port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--name") {
      server_options.name = next();
    } else if (arg == "--listen-all") {
      server_options.loopback_only = false;
    } else if (arg == "--no-stats-exchange") {
      exchange_stats = false;
    } else {
      Usage();
    }
  }
  if (router_options.shards.empty()) Usage();

  MaskShutdownSignals();
  fts::net::ShardRouter router(router_options);
  fts::Status s = router.Connect();
  if (!s.ok()) {
    std::fprintf(stderr, "fts_router: %s\n", s.ToString().c_str());
    return 1;
  }
  for (const fts::net::ShardHealth& shard : router.health()) {
    std::printf("fts_router: shard \"%s\" %s:%u — %llu nodes, base %llu\n",
                shard.name.c_str(), shard.address.host.c_str(),
                shard.address.port,
                static_cast<unsigned long long>(shard.num_nodes),
                static_cast<unsigned long long>(shard.base));
  }
  if (exchange_stats) {
    s = router.ExchangeGlobalStats();
    if (!s.ok()) {
      std::fprintf(stderr, "fts_router: stats exchange: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("fts_router: global statistics pushed to %zu shards\n",
                router.num_shards());
  }

  fts::net::RouterServer server(&router, server_options);
  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "fts_router: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("fts_router: \"%s\" routing %zu shards (%llu nodes) on port %u\n",
              server_options.name.c_str(), router.num_shards(),
              static_cast<unsigned long long>(router.total_nodes()),
              server.port());
  std::fflush(stdout);

  WaitForShutdownSignal();
  server.Stop();
  return 0;
}
