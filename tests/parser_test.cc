#include "lang/parser.h"

#include <gtest/gtest.h>

namespace fts {
namespace {

LangExprPtr MustParse(const std::string& q,
                      SurfaceLanguage lang = SurfaceLanguage::kComp) {
  auto e = ParseQuery(q, lang);
  EXPECT_TRUE(e.ok()) << q << " -> " << e.status().ToString();
  return e.ok() ? *e : nullptr;
}

TEST(ParserTest, SingleToken) {
  auto e = MustParse("'usability'", SurfaceLanguage::kBool);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind(), LangExpr::Kind::kToken);
  EXPECT_EQ(e->token(), "usability");
}

TEST(ParserTest, BareWordIsToken) {
  auto e = MustParse("usability", SurfaceLanguage::kBool);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind(), LangExpr::Kind::kToken);
}

TEST(ParserTest, PrecedenceNotBindsTighterThanAndThanOr) {
  auto e = MustParse("NOT 'a' AND 'b' OR 'c'", SurfaceLanguage::kBool);
  ASSERT_NE(e, nullptr);
  // ((NOT a) AND b) OR c
  ASSERT_EQ(e->kind(), LangExpr::Kind::kOr);
  ASSERT_EQ(e->left()->kind(), LangExpr::Kind::kAnd);
  EXPECT_EQ(e->left()->left()->kind(), LangExpr::Kind::kNot);
  EXPECT_EQ(e->right()->token(), "c");
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto e = MustParse("'a' AND ('b' OR 'c')", SurfaceLanguage::kBool);
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->kind(), LangExpr::Kind::kAnd);
  EXPECT_EQ(e->right()->kind(), LangExpr::Kind::kOr);
}

TEST(ParserTest, PaperExampleBoolQuery) {
  // Section 5.3: ('software' AND 'users' AND NOT 'testing') OR 'usability'
  auto e = MustParse("('software' AND 'users' AND NOT 'testing') OR 'usability'",
                     SurfaceLanguage::kBool);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind(), LangExpr::Kind::kOr);
}

TEST(ParserTest, CompQuantifiersAndPredicates) {
  // Section 5.5's running example.
  auto e = MustParse(
      "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' AND "
      "distance(p1, p2, 5))");
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->kind(), LangExpr::Kind::kSome);
  EXPECT_EQ(e->var(), "p1");
  ASSERT_EQ(e->child()->kind(), LangExpr::Kind::kSome);
}

TEST(ParserTest, Theorem3Witness) {
  auto e = MustParse("SOME p1 (NOT p1 HAS 't1')");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind(), LangExpr::Kind::kSome);
}

TEST(ParserTest, Theorem5Witness) {
  auto e = MustParse(
      "SOME p1 SOME p2 (p1 HAS 't1' AND p2 HAS 't2' AND NOT distance(p1,p2,0))");
  ASSERT_NE(e, nullptr);
}

TEST(ParserTest, EveryQuantifier) {
  auto e = MustParse("EVERY p (p HAS 'a')");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind(), LangExpr::Kind::kEvery);
}

TEST(ParserTest, VarHasAny) {
  auto e = MustParse("SOME p (p HAS ANY)");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->child()->kind(), LangExpr::Kind::kVarHasAny);
}

TEST(ParserTest, DistSugarInDistLanguage) {
  auto e = MustParse("dist('efficient', 'completion', 10) AND 'book'",
                     SurfaceLanguage::kDist);
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->kind(), LangExpr::Kind::kAnd);
  EXPECT_EQ(e->left()->kind(), LangExpr::Kind::kDist);
  EXPECT_EQ(e->left()->dist_tok1(), "efficient");
  EXPECT_EQ(e->left()->dist_limit(), 10);
}

TEST(ParserTest, DistWithAny) {
  auto e = MustParse("dist(ANY, 'x', 3)", SurfaceLanguage::kDist);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->dist_tok1().empty());
}

TEST(ParserTest, DistRejectsNegativeDistance) {
  EXPECT_FALSE(ParseQuery("dist('a','b',-1)", SurfaceLanguage::kDist).ok());
}

TEST(ParserTest, LanguageRestrictionsEnforced) {
  // Variables require COMP.
  EXPECT_FALSE(ParseQuery("SOME p (p HAS 'a')", SurfaceLanguage::kBool).ok());
  EXPECT_FALSE(ParseQuery("distance(p,q,3)", SurfaceLanguage::kDist).ok());
  // dist() requires DIST or COMP.
  EXPECT_FALSE(ParseQuery("dist('a','b',3)", SurfaceLanguage::kBool).ok());
  EXPECT_TRUE(ParseQuery("dist('a','b',3)", SurfaceLanguage::kComp).ok());
  // ANY not in BOOL-NONEG.
  EXPECT_FALSE(ParseQuery("ANY", SurfaceLanguage::kBoolNoNeg).ok());
  EXPECT_TRUE(ParseQuery("ANY", SurfaceLanguage::kBool).ok());
}

TEST(ParserTest, BoolNoNegNegationRules) {
  EXPECT_TRUE(ParseQuery("'a' AND NOT 'b'", SurfaceLanguage::kBoolNoNeg).ok());
  EXPECT_FALSE(ParseQuery("NOT 'b'", SurfaceLanguage::kBoolNoNeg).ok());
  EXPECT_FALSE(ParseQuery("'a' OR NOT 'b'", SurfaceLanguage::kBoolNoNeg).ok());
  EXPECT_FALSE(ParseQuery("NOT 'a' AND NOT 'b'", SurfaceLanguage::kBoolNoNeg).ok());
}

TEST(ParserTest, SyntaxErrorsCarryOffsets) {
  auto e = ParseQuery("'a' AND", SurfaceLanguage::kBool);
  ASSERT_FALSE(e.ok());
  EXPECT_NE(e.status().message().find("offset"), std::string::npos);

  EXPECT_FALSE(ParseQuery("('a' AND 'b'", SurfaceLanguage::kBool).ok());
  EXPECT_FALSE(ParseQuery("'a' 'b'", SurfaceLanguage::kBool).ok());
  EXPECT_FALSE(ParseQuery("", SurfaceLanguage::kBool).ok());
}

TEST(ParserTest, UnknownPredicateRejected) {
  auto e = ParseQuery("SOME p frobnicate(p, 3)", SurfaceLanguage::kComp);
  ASSERT_FALSE(e.ok());
  EXPECT_NE(e.status().message().find("frobnicate"), std::string::npos);
}

TEST(ParserTest, PredicateArityCheckedAtParse) {
  EXPECT_FALSE(ParseQuery("SOME p distance(p, 3)", SurfaceLanguage::kComp).ok());
  EXPECT_FALSE(ParseQuery("SOME p SOME q ordered(p, q, 7)",
                          SurfaceLanguage::kComp).ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* queries[] = {
      "'a'",
      "('a' AND NOT ('b'))",
      "SOME p1 (p1 HAS 'x')",
      "SOME p1 SOME p2 ((p1 HAS 'a' AND p2 HAS 'b') AND distance(p1, p2, 5))",
      "EVERY p (NOT (p HAS 'x'))",
  };
  for (const char* q : queries) {
    auto e1 = ParseQuery(q, SurfaceLanguage::kComp);
    ASSERT_TRUE(e1.ok()) << q;
    auto e2 = ParseQuery((*e1)->ToString(), SurfaceLanguage::kComp);
    ASSERT_TRUE(e2.ok()) << (*e1)->ToString();
    EXPECT_EQ((*e1)->ToString(), (*e2)->ToString());
  }
}

}  // namespace
}  // namespace fts
