// ExecContext tests: deadline semantics, the L1 attach policy, counter
// accumulation via MergeFrom, context reuse/reset, and deadline
// enforcement through every engine.

#include "exec/exec_context.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "eval/bool_engine.h"
#include "eval/comp_engine.h"
#include "eval/npred_engine.h"
#include "eval/ppred_engine.h"
#include "eval/router.h"
#include "index/index_builder.h"
#include "lang/parser.h"
#include "text/corpus.h"

namespace fts {
namespace {

InvertedIndex TestIndex() {
  Corpus corpus;
  corpus.AddDocument("a b c a b. c d e. a c e.\n\n f a b c.");
  corpus.AddDocument("b c d. e f a. b d f.");
  corpus.AddDocument("a a a b. c c d e f.");
  corpus.AddDocument("f e d c b a. a b.");
  return IndexBuilder::Build(corpus);
}

LangExprPtr Parse(const std::string& q) {
  auto parsed = ParseQuery(q, SurfaceLanguage::kComp);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *parsed;
}

TEST(DeadlineTest, UnsetNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.set());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(d.Check().ok());
}

TEST(DeadlineTest, PastDeadlineExpires) {
  Deadline d = Deadline::After(std::chrono::nanoseconds(-1));
  EXPECT_TRUE(d.set());
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, FutureDeadlineHolds) {
  Deadline d = Deadline::After(std::chrono::hours(1));
  EXPECT_TRUE(d.set());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(d.Check().ok());
}

TEST(ExecContextTest, DecodeCountersMergeAndPrint) {
  // The SIMD/bitset decode counters ride the same MergeFrom every service
  // total and segment merge uses, and appear in the printed summary.
  EvalCounters a, b;
  a.simd_groups_decoded = 3;
  a.bitset_blocks_intersected = 1;
  b.simd_groups_decoded = 4;
  b.bitset_blocks_intersected = 2;
  a.MergeFrom(b);
  EXPECT_EQ(a.simd_groups_decoded, 7u);
  EXPECT_EQ(a.bitset_blocks_intersected, 3u);
  const std::string s = a.ToString();
  EXPECT_NE(s.find("simd_groups=7"), std::string::npos) << s;
  EXPECT_NE(s.find("bitset_ands=3"), std::string::npos) << s;
}

TEST(ExecContextTest, CountersAccumulateAcrossQueries) {
  InvertedIndex index = TestIndex();
  BoolEngine engine(&index, ScoringKind::kNone, CursorMode::kSequential);
  ExecContext ctx;
  auto r1 = engine.Evaluate(Parse("'a' AND 'b'"), ctx);
  ASSERT_TRUE(r1.ok());
  const uint64_t after_one = ctx.counters().entries_scanned;
  EXPECT_EQ(after_one, r1->counters.entries_scanned);
  EXPECT_GT(after_one, 0u);

  auto r2 = engine.Evaluate(Parse("'a' AND 'b'"), ctx);
  ASSERT_TRUE(r2.ok());
  // The context is cumulative; each result still reports its own delta.
  EXPECT_EQ(ctx.counters().entries_scanned, 2 * after_one);
  EXPECT_EQ(r2->counters.entries_scanned, after_one);

  ctx.Reset();
  EXPECT_EQ(ctx.counters().entries_scanned, 0u);
}

TEST(ExecContextTest, L1PolicyOffDisablesCaching) {
  InvertedIndex index = TestIndex();
  BoolEngine engine(&index, ScoringKind::kNone, CursorMode::kSequential);
  // 'a' appears twice, so the auto policy would attach the L1.
  const LangExprPtr q = Parse("('a' AND 'b') OR ('a' AND 'c')");

  ExecContext auto_ctx;
  auto with_cache = engine.Evaluate(q, auto_ctx);
  ASSERT_TRUE(with_cache.ok());
  EXPECT_GT(with_cache->counters.cache_hits + with_cache->counters.cache_misses,
            0u);

  ExecOptions off_options;
  off_options.l1_policy = ExecOptions::L1Policy::kOff;
  ExecContext off_ctx(off_options);
  auto without_cache = engine.Evaluate(q, off_ctx);
  ASSERT_TRUE(without_cache.ok());
  EXPECT_EQ(without_cache->counters.cache_hits, 0u);
  EXPECT_EQ(without_cache->counters.cache_misses, 0u);
  // Identical results either way; the cache is purely an access-path
  // optimization.
  EXPECT_EQ(without_cache->nodes, with_cache->nodes);
}

TEST(ExecContextTest, SharedCacheAttachesForSingleScanQueries) {
  InvertedIndex index = TestIndex();
  BoolEngine engine(&index, ScoringKind::kNone, CursorMode::kSequential);
  // Single-scan query: without an L2 the auto policy skips caching...
  ExecContext plain;
  auto uncached = engine.Evaluate(Parse("'a'"), plain);
  ASSERT_TRUE(uncached.ok());
  EXPECT_EQ(uncached->counters.cache_misses, 0u);

  // ...with an L2 it routes through the hierarchy so later queries (on any
  // context) reuse the decode.
  SharedBlockCache l2;
  ExecOptions options;
  options.shared_cache = &l2;
  ExecContext first(options);
  auto cold = engine.Evaluate(Parse("'a'"), first);
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(cold->counters.shared_cache_misses, 0u);

  ExecContext second(options);
  auto warm = engine.Evaluate(Parse("'a'"), second);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(warm->counters.shared_cache_hits, 0u);
  EXPECT_EQ(warm->counters.blocks_decoded, 0u);
  EXPECT_EQ(warm->nodes, cold->nodes);
}

TEST(ExecContextTest, ExpiredDeadlineFailsEveryEngine) {
  InvertedIndex index = TestIndex();
  ExecOptions options;
  options.deadline = Deadline::After(std::chrono::nanoseconds(-1));

  BoolEngine bool_engine(&index, ScoringKind::kNone, CursorMode::kSequential);
  PpredEngine ppred(&index, ScoringKind::kNone, CursorMode::kSequential);
  NpredEngine npred(&index, ScoringKind::kNone);
  CompEngine comp(&index, ScoringKind::kNone);

  {
    ExecContext ctx(options);
    EXPECT_EQ(bool_engine.Evaluate(Parse("'a' AND 'b'"), ctx).status().code(),
              StatusCode::kDeadlineExceeded);
  }
  {
    ExecContext ctx(options);
    EXPECT_EQ(ppred
                  .Evaluate(Parse("SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' "
                                  "AND distance(p1, p2, 3))"),
                            ctx)
                  .status()
                  .code(),
              StatusCode::kDeadlineExceeded);
  }
  {
    ExecContext ctx(options);
    EXPECT_EQ(npred
                  .Evaluate(Parse("SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' "
                                  "AND NOT distance(p1, p2, 3))"),
                            ctx)
                  .status()
                  .code(),
              StatusCode::kDeadlineExceeded);
  }
  {
    ExecContext ctx(options);
    EXPECT_EQ(comp.Evaluate(Parse("EVERY p (p HAS 'a')"), ctx).status().code(),
              StatusCode::kDeadlineExceeded);
  }
}

TEST(ExecContextTest, GenerousDeadlineDoesNotPerturbResults) {
  InvertedIndex index = TestIndex();
  QueryRouter router(&index, ScoringKind::kTfIdf);
  auto unbounded = router.Evaluate("'a' AND ('b' OR 'c')");
  ASSERT_TRUE(unbounded.ok());

  ExecContext ctx = router.MakeContext();
  ctx.set_deadline(Deadline::After(std::chrono::hours(1)));
  auto bounded = router.Evaluate("'a' AND ('b' OR 'c')", ctx);
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(bounded->result.nodes, unbounded->result.nodes);
  EXPECT_EQ(bounded->result.scores, unbounded->result.scores);
}

TEST(ExecContextTest, RouterSharedCacheServesAcrossContexts) {
  InvertedIndex index = TestIndex();
  RouterOptions options;
  options.shared_cache = std::make_shared<SharedBlockCache>();
  QueryRouter router(&index, options);
  ASSERT_NE(router.shared_cache(), nullptr);

  auto first = router.Evaluate("'a' AND 'b'");
  ASSERT_TRUE(first.ok());
  auto second = router.Evaluate("'a' AND 'b'");
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->result.counters.shared_cache_hits, 0u);
  EXPECT_EQ(second->result.counters.blocks_decoded, 0u);
  EXPECT_EQ(second->result.nodes, first->result.nodes);
  EXPECT_GT(router.shared_cache()->stats().hits, 0u);
}

}  // namespace
}  // namespace fts
