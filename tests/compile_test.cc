#include "compile/ftc_to_fta.h"

#include <gtest/gtest.h>

#include "calculus/naive_eval.h"
#include "compile/fta_to_ftc.h"
#include "index/index_builder.h"
#include "text/corpus.h"

namespace fts {
namespace {

const PositionPredicate* Get(const std::string& name) {
  return PredicateRegistry::Default().Find(name);
}

struct CompileFixture : public ::testing::Test {
  void SetUp() override {
    corpus.AddDocument("efficient task completion now");       // 0
    corpus.AddDocument("task completion efficient");           // 1
    corpus.AddDocument("efficient work only");                 // 2
    corpus.AddDocument("");                                    // 3 (empty)
    corpus.AddDocument("completion of a task is efficient");   // 4
    index = IndexBuilder::Build(corpus);
  }

  // Compile and evaluate through the algebra; compare with the naive
  // first-order evaluation (the Theorem 1 equivalence, instantiated).
  void ExpectAgreesWithOracle(const CalcQuery& q) {
    NaiveCalculusEvaluator oracle(&corpus);
    auto expected = oracle.Evaluate(q);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto plan = CompileQuery(q);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto rel = EvaluateFta(*plan, index, nullptr, nullptr);
    ASSERT_TRUE(rel.ok()) << rel.status().ToString();
    EXPECT_EQ(rel->Nodes(), *expected) << q.ToString() << "\nplan: "
                                       << (*plan)->ToString();
  }

  Corpus corpus;
  InvertedIndex index;
};

TEST_F(CompileFixture, SingleToken) {
  ExpectAgreesWithOracle(CalcQuery{CalcExpr::Exists(0, CalcExpr::HasToken(0, "task"))});
}

TEST_F(CompileFixture, Conjunction) {
  ExpectAgreesWithOracle(CalcQuery{CalcExpr::Exists(
      0, CalcExpr::And(CalcExpr::HasToken(0, "task"),
                       CalcExpr::Exists(1, CalcExpr::HasToken(1, "efficient"))))});
}

TEST_F(CompileFixture, Disjunction) {
  ExpectAgreesWithOracle(CalcQuery{
      CalcExpr::Or(CalcExpr::Exists(0, CalcExpr::HasToken(0, "work")),
                   CalcExpr::Exists(1, CalcExpr::HasToken(1, "now")))});
}

TEST_F(CompileFixture, DisjunctionWithSharedFreeVariable) {
  // ∃p ((p HAS 'task') ∨ (p HAS 'work')): union over an open column.
  ExpectAgreesWithOracle(CalcQuery{CalcExpr::Exists(
      0, CalcExpr::Or(CalcExpr::HasToken(0, "task"), CalcExpr::HasToken(0, "work")))});
}

TEST_F(CompileFixture, ClosedNegationUnderConjunction) {
  ExpectAgreesWithOracle(CalcQuery{CalcExpr::And(
      CalcExpr::Exists(0, CalcExpr::HasToken(0, "efficient")),
      CalcExpr::Not(CalcExpr::Exists(1, CalcExpr::HasToken(1, "task"))))});
}

TEST_F(CompileFixture, TopLevelNegation) {
  ExpectAgreesWithOracle(
      CalcQuery{CalcExpr::Not(CalcExpr::Exists(0, CalcExpr::HasToken(0, "task")))});
}

TEST_F(CompileFixture, OpenNegationInsideExists) {
  // Theorem 3's witness query: a position holding something else than
  // 'task'.
  ExpectAgreesWithOracle(CalcQuery{
      CalcExpr::Exists(0, CalcExpr::Not(CalcExpr::HasToken(0, "task")))});
}

TEST_F(CompileFixture, DistancePredicate) {
  ExpectAgreesWithOracle(CalcQuery{CalcExpr::Exists(
      0, CalcExpr::And(
             CalcExpr::HasToken(0, "task"),
             CalcExpr::Exists(
                 1, CalcExpr::And(CalcExpr::HasToken(1, "completion"),
                                  CalcExpr::Pred(Get("odistance"), {0, 1}, {0})))))});
}

TEST_F(CompileFixture, SharedVariableAcrossConjuncts) {
  // ∃p (p HAS 'task' ∧ p HAS 'task') — same variable used twice.
  ExpectAgreesWithOracle(CalcQuery{CalcExpr::Exists(
      0, CalcExpr::And(CalcExpr::HasToken(0, "task"),
                       CalcExpr::HasToken(0, "task")))});
  // Contradiction: one position, two different tokens.
  ExpectAgreesWithOracle(CalcQuery{CalcExpr::Exists(
      0, CalcExpr::And(CalcExpr::HasToken(0, "task"),
                       CalcExpr::HasToken(0, "efficient")))});
}

TEST_F(CompileFixture, UniversalQuantifier) {
  ExpectAgreesWithOracle(CalcQuery{CalcExpr::ForAll(
      0, CalcExpr::Or(CalcExpr::HasToken(0, "efficient"),
                      CalcExpr::Or(CalcExpr::HasToken(0, "work"),
                                   CalcExpr::HasToken(0, "only"))))});
}

TEST_F(CompileFixture, UnusedQuantifiedVariableRequiresNonEmptyNode) {
  // ∃p ('task' somewhere): p unused by the body — still requires p to bind.
  ExpectAgreesWithOracle(CalcQuery{CalcExpr::Exists(
      5, CalcExpr::Exists(0, CalcExpr::HasToken(0, "efficient")))});
}

TEST_F(CompileFixture, PurePredicateConjunction) {
  // Positions within distance 1 of each other, any tokens.
  ExpectAgreesWithOracle(CalcQuery{CalcExpr::Exists(
      0, CalcExpr::Exists(
             1, CalcExpr::And(CalcExpr::Pred(Get("distance"), {0, 1}, {1}),
                              CalcExpr::Pred(Get("diffpos"), {0, 1}, {}))))});
}

TEST_F(CompileFixture, CompiledQueryIsNodeLevel) {
  auto plan = CompileQuery(
      CalcQuery{CalcExpr::Exists(0, CalcExpr::HasToken(0, "task"))});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->num_cols(), 0u);
}

TEST_F(CompileFixture, CompileExprExposesFreeVariableColumns) {
  auto compiled = CompileExpr(CalcExpr::And(
      CalcExpr::HasToken(2, "task"),
      CalcExpr::Pred(Get("distance"), {2, 7}, {5})));
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(compiled->cols, (std::vector<VarId>{2, 7}));
}

TEST_F(CompileFixture, RoundTripFtaToFtcToFta) {
  // Build an algebra query, translate to calculus (Lemma 1), evaluate both
  // ways, and check they agree.
  auto join = FtaExpr::Join(FtaExpr::Token("task"), FtaExpr::Token("completion"));
  AlgebraPredicateCall call;
  call.pred = Get("distance");
  call.cols = {0, 1};
  call.consts = {2};
  auto sel = FtaExpr::Select(join, call);
  ASSERT_TRUE(sel.ok());
  auto proj = FtaExpr::Project(*sel, {});
  ASSERT_TRUE(proj.ok());

  auto direct = EvaluateFta(*proj, index, nullptr, nullptr);
  ASSERT_TRUE(direct.ok());

  auto calc = TranslateFtaQuery(*proj);
  ASSERT_TRUE(calc.ok()) << calc.status().ToString();
  NaiveCalculusEvaluator oracle(&corpus);
  auto via_calc = oracle.Evaluate(*calc);
  ASSERT_TRUE(via_calc.ok());
  EXPECT_EQ(direct->Nodes(), *via_calc);

  // And back through the compiler.
  auto recompiled = CompileQuery(*calc);
  ASSERT_TRUE(recompiled.ok());
  auto rel = EvaluateFta(*recompiled, index, nullptr, nullptr);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->Nodes(), *via_calc);
}

TEST_F(CompileFixture, TranslateSearchContextIsUniverse) {
  auto calc = TranslateFtaQuery(FtaExpr::SearchContext());
  ASSERT_TRUE(calc.ok());
  NaiveCalculusEvaluator oracle(&corpus);
  auto nodes = oracle.Evaluate(*calc);
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(nodes->size(), corpus.num_nodes());  // includes the empty node
}

}  // namespace
}  // namespace fts
