#include "index/inverted_index.h"

#include <gtest/gtest.h>

#include "index/block_posting_list.h"
#include "index/index_builder.h"
#include "testing/raw_posting_oracle.h"
#include "text/corpus.h"

namespace fts {
namespace {

Corpus SmallCorpus() {
  Corpus corpus;
  corpus.AddDocument("usability of a software usability");   // node 0
  corpus.AddDocument("software measures completion");        // node 1
  corpus.AddDocument("unrelated words here");                // node 2
  return corpus;
}

TEST(InvertedIndexTest, ListsContainPerNodeEntries) {
  Corpus corpus = SmallCorpus();
  InvertedIndex index = IndexBuilder::Build(corpus);
  const BlockPostingList* block = index.block_list_for_text("usability");
  ASSERT_NE(block, nullptr);
  const PostingList list = block->Materialize();
  ASSERT_EQ(list.num_entries(), 1u);
  EXPECT_EQ(list.entry(0).node, 0u);
  EXPECT_EQ(list.entry(0).pos_count, 2u);
  auto positions = list.positions(list.entry(0));
  EXPECT_EQ(positions[0].offset, 0u);
  EXPECT_EQ(positions[1].offset, 4u);
}

TEST(InvertedIndexTest, EntriesSortedByNode) {
  Corpus corpus = SmallCorpus();
  InvertedIndex index = IndexBuilder::Build(corpus);
  const BlockPostingList* block = index.block_list_for_text("software");
  ASSERT_NE(block, nullptr);
  const PostingList list = block->Materialize();
  ASSERT_EQ(list.num_entries(), 2u);
  EXPECT_LT(list.entry(0).node, list.entry(1).node);
}

TEST(InvertedIndexTest, AnyListCoversAllPositions) {
  Corpus corpus = SmallCorpus();
  InvertedIndex index = IndexBuilder::Build(corpus);
  EXPECT_EQ(index.block_any_list().num_entries(), 3u);
  EXPECT_EQ(index.block_any_list().total_positions(), 5u + 3u + 3u);
}

TEST(InvertedIndexTest, EmptyDocumentsAbsentFromAnyList) {
  Corpus corpus;
  corpus.AddDocument("alpha");
  corpus.AddDocument("");
  InvertedIndex index = IndexBuilder::Build(corpus);
  EXPECT_EQ(index.num_nodes(), 2u);
  EXPECT_EQ(index.block_any_list().num_entries(), 1u);
}

TEST(InvertedIndexTest, StatsMatchCorpusShape) {
  Corpus corpus = SmallCorpus();
  InvertedIndex index = IndexBuilder::Build(corpus);
  const IndexStats& s = index.stats();
  EXPECT_EQ(s.cnodes, 3u);
  EXPECT_EQ(s.total_positions, 11u);
  EXPECT_EQ(s.pos_per_cnode, 5u);
  EXPECT_EQ(s.entries_per_token, 2u);  // "software"
  EXPECT_EQ(s.pos_per_entry, 2u);      // "usability" in node 0
}

TEST(InvertedIndexTest, DfAndUniqueTokens) {
  Corpus corpus = SmallCorpus();
  InvertedIndex index = IndexBuilder::Build(corpus);
  EXPECT_EQ(index.df(index.LookupToken("software")), 2u);
  EXPECT_EQ(index.df(index.LookupToken("usability")), 1u);
  EXPECT_EQ(index.unique_tokens(0), 4u);  // usability, of, a, software
}

TEST(InvertedIndexTest, NodeNormsArePositive) {
  Corpus corpus = SmallCorpus();
  InvertedIndex index = IndexBuilder::Build(corpus);
  for (NodeId n = 0; n < 3; ++n) EXPECT_GT(index.node_norm(n), 0.0);
}

TEST(ListCursorTest, SequentialScanVisitsEveryEntryOnce) {
  Corpus corpus = SmallCorpus();
  RawPostingOracle oracle = BuildRawPostingOracle(corpus);
  InvertedIndex index = IndexBuilder::Build(corpus);
  EvalCounters counters;
  ListCursor cursor(oracle.list(index.LookupToken("software")), &counters);
  EXPECT_EQ(cursor.current_node(), kInvalidNode);
  EXPECT_EQ(cursor.NextEntry(), 0u);
  EXPECT_EQ(cursor.GetPositions().size(), 1u);
  EXPECT_EQ(cursor.NextEntry(), 1u);
  EXPECT_EQ(cursor.NextEntry(), kInvalidNode);
  EXPECT_TRUE(cursor.exhausted());
  // Further calls stay exhausted.
  EXPECT_EQ(cursor.NextEntry(), kInvalidNode);
  EXPECT_EQ(counters.entries_scanned, 2u);
}

TEST(ListCursorTest, NullListIsImmediatelyExhausted) {
  ListCursor cursor(nullptr);
  EXPECT_EQ(cursor.NextEntry(), kInvalidNode);
  EXPECT_TRUE(cursor.exhausted());
}

TEST(ListCursorTest, SeekEntryLandsOnFirstNodeAtOrAfterTarget) {
  Corpus corpus = SmallCorpus();
  RawPostingOracle oracle = BuildRawPostingOracle(corpus);
  InvertedIndex index = IndexBuilder::Build(corpus);
  EvalCounters counters;
  // "software" is in nodes 0 and 1.
  ListCursor cursor(oracle.list(index.LookupToken("software")), &counters);
  EXPECT_EQ(cursor.SeekEntry(0), 0u);   // seek starts the cursor
  EXPECT_EQ(cursor.SeekEntry(1), 1u);   // forward to the last entry
  EXPECT_EQ(cursor.GetPositions().size(), 1u);
  EXPECT_EQ(cursor.SeekEntry(0), 1u);   // backward seek: no movement
  EXPECT_EQ(cursor.SeekEntry(2), kInvalidNode);  // past the end
  EXPECT_TRUE(cursor.exhausted());
  EXPECT_EQ(cursor.SeekEntry(0), kInvalidNode);  // stays exhausted
  EXPECT_GT(counters.skip_checks, 0u);
}

TEST(ListCursorTest, SeekEntryOnAbsentNodeSkipsToSuccessor) {
  Corpus corpus;
  corpus.AddDocument("alpha");      // node 0
  corpus.AddDocument("beta");       // node 1
  corpus.AddDocument("alpha too");  // node 2
  RawPostingOracle oracle = BuildRawPostingOracle(corpus);
  InvertedIndex index = IndexBuilder::Build(corpus);
  ListCursor cursor(oracle.list(index.LookupToken("alpha")));
  EXPECT_EQ(cursor.SeekEntry(1), 2u);  // node 1 lacks "alpha"
}

TEST(ListCursorTest, SeekEntryOnNullAndEmptyLists) {
  ListCursor null_cursor(nullptr);
  EXPECT_EQ(null_cursor.SeekEntry(0), kInvalidNode);
  EXPECT_TRUE(null_cursor.exhausted());
  PostingList empty;
  ListCursor empty_cursor(&empty);
  EXPECT_EQ(empty_cursor.SeekEntry(0), kInvalidNode);
  EXPECT_TRUE(empty_cursor.exhausted());
}

TEST(InvertedIndexTest, BlockListsMatchRawOracle) {
  // The resident block lists carry exactly the logical content of the raw
  // oracle representation built from the same corpus.
  Corpus corpus = SmallCorpus();
  RawPostingOracle oracle = BuildRawPostingOracle(corpus);
  InvertedIndex index = IndexBuilder::Build(corpus);
  ASSERT_EQ(oracle.lists.size(), index.vocabulary_size());
  for (TokenId t = 0; t < index.vocabulary_size(); ++t) {
    ASSERT_NE(index.block_list(t), nullptr);
    EXPECT_EQ(index.block_list(t)->num_entries(), oracle.lists[t].num_entries());
    EXPECT_EQ(index.block_list(t)->total_positions(),
              oracle.lists[t].total_positions());
    EXPECT_EQ(index.df(t), static_cast<uint32_t>(oracle.lists[t].num_entries()));
  }
  EXPECT_EQ(index.block_any_list().num_entries(), oracle.any_list.num_entries());
  EXPECT_EQ(index.block_list_for_text("zzz"), nullptr);
}

TEST(InvertedIndexTest, OovTokenHasNoList) {
  Corpus corpus = SmallCorpus();
  InvertedIndex index = IndexBuilder::Build(corpus);
  EXPECT_EQ(index.block_list_for_text("zzz"), nullptr);
  EXPECT_EQ(index.df(kInvalidToken - 1), 0u);
}

TEST(InvertedIndexTest, MemoryUsageCountsResidentBytes) {
  Corpus corpus = SmallCorpus();
  InvertedIndex index = IndexBuilder::Build(corpus);
  size_t block_bytes = 0;
  for (TokenId t = 0; t < index.vocabulary_size(); ++t) {
    block_bytes += index.block_list(t)->resident_bytes();
  }
  block_bytes += index.block_any_list().resident_bytes();
  // The resident footprint covers at least every compressed payload byte.
  EXPECT_GE(index.MemoryUsage(), block_bytes);
  EXPECT_GT(block_bytes, 0u);
}

}  // namespace
}  // namespace fts
