// Robustness fuzzing: random byte soup through the parser must produce a
// clean error or a valid tree (never crash); random mutations of a
// serialized index must be rejected or load to a structurally sane index.

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "eval/bool_engine.h"
#include "eval/router.h"
#include "index/index_builder.h"
#include "index/index_io.h"
#include "lang/parser.h"
#include "lang/translate.h"
#include "workload/corpus_gen.h"

namespace fts {
namespace {

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RandomPrintableInputNeverCrashes) {
  Rng rng(GetParam());
  const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz '()0123456789,ANDORNOTSOMEEVERYHASdistance_";
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    const size_t len = rng.Uniform(60);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    auto parsed = ParseQuery(input, SurfaceLanguage::kComp);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << input;
      continue;
    }
    // Whatever parsed must print and re-parse.
    auto reparsed = ParseQuery((*parsed)->ToString(), SurfaceLanguage::kComp);
    EXPECT_TRUE(reparsed.ok()) << input << " -> " << (*parsed)->ToString();
    // Translation either succeeds (closed query) or reports a clean error.
    auto calc = TranslateToCalculus(*parsed);
    if (!calc.ok()) {
      EXPECT_EQ(calc.status().code(), StatusCode::kInvalidArgument) << input;
    }
  }
}

TEST_P(ParserFuzz, RandomBytesNeverCrash) {
  Rng rng(GetParam() ^ 0xABCDEF);
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    const size_t len = rng.Uniform(40);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.Uniform(256)));
    }
    auto parsed = ParseQuery(input, SurfaceLanguage::kComp);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(11, 22, 33));

class IndexFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexFuzz, MutatedBlobsAreRejectedOrSane) {
  CorpusGenOptions opts;
  opts.seed = 5;
  opts.num_nodes = 40;
  opts.min_doc_len = 5;
  opts.max_doc_len = 30;
  opts.vocabulary = 100;
  Corpus corpus = GenerateCorpus(opts);
  InvertedIndex index = IndexBuilder::Build(corpus);
  std::string blob;
  SaveIndexToString(index, &blob);

  Rng rng(GetParam());
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = blob;
    const int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.Uniform(3)) {
        case 0: {  // flip a byte
          size_t pos = rng.Uniform(mutated.size());
          mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.Uniform(8)));
          break;
        }
        case 1:  // truncate
          mutated.resize(rng.Uniform(mutated.size() + 1));
          break;
        default:  // append garbage
          mutated.push_back(static_cast<char>(rng.Uniform(256)));
          break;
      }
    }
    InvertedIndex loaded;
    Status s = LoadIndexFromString(mutated, &loaded);
    // The checksum makes accidental acceptance astronomically unlikely;
    // whichever way it goes, nothing may crash, and an accepted index must
    // answer queries without faulting.
    if (s.ok()) {
      QueryRouter router(&loaded);
      auto r = router.Evaluate("'w0' AND 'w1'");
      (void)r;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexFuzz, ::testing::Values(7, 8));

// ---------------------------------------------------------------------------
// v2 loader corruption sweep. With blocks as the only resident form, the v2
// load path both adopts compressed payloads verbatim and validates them
// fully (InvertedIndex::ValidateBlocks) before any cursor can read them, so
// every mutation must surface as Status::Corruption — never a crash, hang,
// or oversized allocation (the ASan+UBSan CI job runs this sweep).
// ---------------------------------------------------------------------------

std::string SaveSmallV2Index() {
  CorpusGenOptions opts;
  opts.seed = 11;
  opts.num_nodes = 50;
  opts.min_doc_len = 5;
  opts.max_doc_len = 40;
  opts.vocabulary = 120;
  Corpus corpus = GenerateCorpus(opts);
  InvertedIndex index = IndexBuilder::Build(corpus);
  std::string blob;
  SaveIndexToString(index, &blob, IndexFormat::kV2);
  return blob;
}

// Mirrors the envelope checksum (FNV-1a 64 over everything after the magic)
// so mutations can be re-sealed and reach the structural validators.
uint64_t BodyChecksum(const std::string& data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 8; i + 8 < data.size(); ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void ResealChecksum(std::string* data) {
  const uint64_t h = BodyChecksum(*data);
  std::memcpy(data->data() + data->size() - 8, &h, 8);
}

TEST(V2CorruptionSweep, EveryByteFlipIsRejected) {
  const std::string blob = SaveSmallV2Index();
  ASSERT_EQ(blob[6], '2');
  for (size_t pos = 0; pos < blob.size(); ++pos) {
    std::string mutated = blob;
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << (pos % 8)));
    InvertedIndex loaded;
    const Status s = LoadIndexFromString(mutated, &loaded);
    ASSERT_FALSE(s.ok()) << "byte " << pos << " flip accepted";
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << "byte " << pos;
  }
}

TEST(V2CorruptionSweep, EveryTruncationIsRejected) {
  const std::string blob = SaveSmallV2Index();
  for (size_t len = 0; len < blob.size(); ++len) {
    std::string mutated = blob.substr(0, len);
    InvertedIndex loaded;
    const Status s = LoadIndexFromString(mutated, &loaded);
    ASSERT_FALSE(s.ok()) << "truncation to " << len << " accepted";
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << "length " << len;
  }
}

class V2ResealedFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(V2ResealedFuzz, ResealedMutationsAreRejectedOrSane) {
  // The checksum is recomputable by an attacker; reseal it after each
  // mutation so the structural validators — skip-table checks, block
  // decode bounds, ValidateBlocks totals — do the rejecting. A mutation
  // that happens to stay structurally valid (e.g. a changed position
  // delta) may load, in which case queries must still run without
  // faulting.
  const std::string blob = SaveSmallV2Index();
  auto scored_query = ParseQuery("'w0' OR 'w3'", SurfaceLanguage::kBool);
  ASSERT_TRUE(scored_query.ok());
  Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = blob;
    const int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      // Bias mutations into the posting sections (past the fixed header)
      // so block payloads and skip tables absorb most of the damage.
      const size_t body = mutated.size() - 16;
      const size_t pos = 8 + rng.Uniform(body);
      switch (rng.Uniform(4)) {
        case 0:
          mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.Uniform(8)));
          break;
        case 1:
          mutated[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 2:
          mutated[pos] = static_cast<char>(0xFF);  // max varint continuation
          break;
        default:
          mutated[pos] = 0;
          break;
      }
    }
    ResealChecksum(&mutated);
    InvertedIndex loaded;
    const Status s = LoadIndexFromString(mutated, &loaded);
    if (s.ok()) {
      QueryRouter router(&loaded);
      (void)router.Evaluate("'w0' AND 'w1'");
      (void)router.Evaluate("'w1' OR NOT 'w2'");
      // Scored evaluation indexes the per-node scalar tables by posting
      // node id, so it additionally proves the loader's node-range
      // validation (out-of-range ids would fault under ASan here).
      BoolEngine scored(&loaded, ScoringKind::kTfIdf);
      (void)scored.Evaluate(*scored_query);
    } else {
      EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, V2ResealedFuzz, ::testing::Values(1, 2, 3));

TEST(V2CorruptionSweep, OutOfRangeNodeIdsAreRejected) {
  // Surgical mutation: shrink the node universe underneath the posting
  // lists. Corpus = { "" , "a" }, so every posting entry references node 1.
  // Rewriting cnodes 2 -> 1 and deleting node 1's scalar record (1-byte
  // unique_tokens varint + 8-byte norm) yields a parseable, checksum-valid
  // blob whose posting node ids are >= cnodes; scoring would index the
  // per-node tables out of range if the loader accepted it.
  Corpus corpus;
  corpus.AddDocument("");
  corpus.AddDocument("a");
  InvertedIndex index = IndexBuilder::Build(corpus);
  std::string blob;
  SaveIndexToString(index, &blob, IndexFormat::kV2);
  // Layout after the 8-byte magic: cnodes (varint, value 2 = 1 byte), four
  // more 1-byte stat varints, three 8-byte stat doubles, then per-node
  // scalar records of 9 bytes each.
  const size_t cnodes_off = 8;
  const size_t node1_scalars_off = 8 + 5 + 3 * 8 + 9;
  ASSERT_EQ(blob[cnodes_off], 2);
  std::string mutated = blob;
  mutated[cnodes_off] = 1;
  mutated.erase(node1_scalars_off, 9);
  ResealChecksum(&mutated);
  InvertedIndex loaded;
  const Status s = LoadIndexFromString(mutated, &loaded);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  // Pin the rejection reason: if the layout offsets above ever drift, the
  // blob would still be rejected, but for the wrong reason — catch that.
  EXPECT_NE(s.ToString().find("posting node id out of range"), std::string::npos)
      << s.ToString();

  // Same surgery on a v1 blob: the flat-stream load path validates node
  // ranges too.
  SaveIndexToString(index, &blob, IndexFormat::kV1);
  mutated = blob;
  ASSERT_EQ(mutated[cnodes_off], 2);
  mutated[cnodes_off] = 1;
  mutated.erase(node1_scalars_off, 9);
  ResealChecksum(&mutated);
  const Status v1s = LoadIndexFromString(mutated, &loaded);
  ASSERT_FALSE(v1s.ok());
  EXPECT_EQ(v1s.code(), StatusCode::kCorruption) << v1s.ToString();
  EXPECT_NE(v1s.ToString().find("posting node id out of range"), std::string::npos)
      << v1s.ToString();
}

}  // namespace
}  // namespace fts
