// Robustness fuzzing: random byte soup through the parser must produce a
// clean error or a valid tree (never crash); random mutations of a
// serialized index must be rejected or load to a structurally sane index.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/router.h"
#include "index/index_builder.h"
#include "index/index_io.h"
#include "lang/parser.h"
#include "lang/translate.h"
#include "workload/corpus_gen.h"

namespace fts {
namespace {

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RandomPrintableInputNeverCrashes) {
  Rng rng(GetParam());
  const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz '()0123456789,ANDORNOTSOMEEVERYHASdistance_";
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    const size_t len = rng.Uniform(60);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    auto parsed = ParseQuery(input, SurfaceLanguage::kComp);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << input;
      continue;
    }
    // Whatever parsed must print and re-parse.
    auto reparsed = ParseQuery((*parsed)->ToString(), SurfaceLanguage::kComp);
    EXPECT_TRUE(reparsed.ok()) << input << " -> " << (*parsed)->ToString();
    // Translation either succeeds (closed query) or reports a clean error.
    auto calc = TranslateToCalculus(*parsed);
    if (!calc.ok()) {
      EXPECT_EQ(calc.status().code(), StatusCode::kInvalidArgument) << input;
    }
  }
}

TEST_P(ParserFuzz, RandomBytesNeverCrash) {
  Rng rng(GetParam() ^ 0xABCDEF);
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    const size_t len = rng.Uniform(40);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.Uniform(256)));
    }
    auto parsed = ParseQuery(input, SurfaceLanguage::kComp);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(11, 22, 33));

class IndexFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexFuzz, MutatedBlobsAreRejectedOrSane) {
  CorpusGenOptions opts;
  opts.seed = 5;
  opts.num_nodes = 40;
  opts.min_doc_len = 5;
  opts.max_doc_len = 30;
  opts.vocabulary = 100;
  Corpus corpus = GenerateCorpus(opts);
  InvertedIndex index = IndexBuilder::Build(corpus);
  std::string blob;
  SaveIndexToString(index, &blob);

  Rng rng(GetParam());
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = blob;
    const int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.Uniform(3)) {
        case 0: {  // flip a byte
          size_t pos = rng.Uniform(mutated.size());
          mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.Uniform(8)));
          break;
        }
        case 1:  // truncate
          mutated.resize(rng.Uniform(mutated.size() + 1));
          break;
        default:  // append garbage
          mutated.push_back(static_cast<char>(rng.Uniform(256)));
          break;
      }
    }
    InvertedIndex loaded;
    Status s = LoadIndexFromString(mutated, &loaded);
    // The checksum makes accidental acceptance astronomically unlikely;
    // whichever way it goes, nothing may crash, and an accepted index must
    // answer queries without faulting.
    if (s.ok()) {
      QueryRouter router(&loaded);
      auto r = router.Evaluate("'w0' AND 'w1'");
      (void)r;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexFuzz, ::testing::Values(7, 8));

}  // namespace
}  // namespace fts
