// Robustness fuzzing: random byte soup through the parser must produce a
// clean error or a valid tree (never crash); random mutations of a
// serialized index must be rejected or load to a structurally sane index.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/rng.h"
#include "eval/bool_engine.h"
#include "eval/router.h"
#include "index/block_posting_list.h"
#include "index/index_builder.h"
#include "index/index_io.h"
#include "lang/parser.h"
#include "lang/translate.h"
#include "workload/corpus_gen.h"

namespace fts {
namespace {

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RandomPrintableInputNeverCrashes) {
  Rng rng(GetParam());
  const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz '()0123456789,ANDORNOTSOMEEVERYHASdistance_";
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    const size_t len = rng.Uniform(60);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    auto parsed = ParseQuery(input, SurfaceLanguage::kComp);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << input;
      continue;
    }
    // Whatever parsed must print and re-parse.
    auto reparsed = ParseQuery((*parsed)->ToString(), SurfaceLanguage::kComp);
    EXPECT_TRUE(reparsed.ok()) << input << " -> " << (*parsed)->ToString();
    // Translation either succeeds (closed query) or reports a clean error.
    auto calc = TranslateToCalculus(*parsed);
    if (!calc.ok()) {
      EXPECT_EQ(calc.status().code(), StatusCode::kInvalidArgument) << input;
    }
  }
}

TEST_P(ParserFuzz, RandomBytesNeverCrash) {
  Rng rng(GetParam() ^ 0xABCDEF);
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    const size_t len = rng.Uniform(40);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.Uniform(256)));
    }
    auto parsed = ParseQuery(input, SurfaceLanguage::kComp);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(11, 22, 33));

class IndexFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexFuzz, MutatedBlobsAreRejectedOrSane) {
  CorpusGenOptions opts;
  opts.seed = 5;
  opts.num_nodes = 40;
  opts.min_doc_len = 5;
  opts.max_doc_len = 30;
  opts.vocabulary = 100;
  Corpus corpus = GenerateCorpus(opts);
  InvertedIndex index = IndexBuilder::Build(corpus);
  std::string blob;
  SaveIndexToString(index, &blob);

  Rng rng(GetParam());
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = blob;
    const int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.Uniform(3)) {
        case 0: {  // flip a byte
          size_t pos = rng.Uniform(mutated.size());
          mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.Uniform(8)));
          break;
        }
        case 1:  // truncate
          mutated.resize(rng.Uniform(mutated.size() + 1));
          break;
        default:  // append garbage
          mutated.push_back(static_cast<char>(rng.Uniform(256)));
          break;
      }
    }
    InvertedIndex loaded;
    Status s = LoadIndexFromString(mutated, &loaded);
    // The checksum makes accidental acceptance astronomically unlikely;
    // whichever way it goes, nothing may crash, and an accepted index must
    // answer queries without faulting.
    if (s.ok()) {
      QueryRouter router(&loaded);
      auto r = router.Evaluate("'w0' AND 'w1'");
      (void)r;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexFuzz, ::testing::Values(7, 8));

// ---------------------------------------------------------------------------
// v2 loader corruption sweep. With blocks as the only resident form, the v2
// load path both adopts compressed payloads verbatim and validates them
// fully (InvertedIndex::ValidateBlocks) before any cursor can read them, so
// every mutation must surface as Status::Corruption — never a crash, hang,
// or oversized allocation (the ASan+UBSan CI job runs this sweep).
// ---------------------------------------------------------------------------

std::string SaveSmallV2Index() {
  CorpusGenOptions opts;
  opts.seed = 11;
  opts.num_nodes = 50;
  opts.min_doc_len = 5;
  opts.max_doc_len = 40;
  opts.vocabulary = 120;
  Corpus corpus = GenerateCorpus(opts);
  InvertedIndex index = IndexBuilder::Build(corpus);
  std::string blob;
  SaveIndexToString(index, &blob, IndexFormat::kV2);
  return blob;
}

// Mirrors the envelope checksum (FNV-1a 64 over everything after the magic)
// so mutations can be re-sealed and reach the structural validators.
uint64_t BodyChecksum(const std::string& data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 8; i + 8 < data.size(); ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void ResealChecksum(std::string* data) {
  const uint64_t h = BodyChecksum(*data);
  std::memcpy(data->data() + data->size() - 8, &h, 8);
}

TEST(V2CorruptionSweep, EveryByteFlipIsRejected) {
  const std::string blob = SaveSmallV2Index();
  ASSERT_EQ(blob[6], '2');
  for (size_t pos = 0; pos < blob.size(); ++pos) {
    std::string mutated = blob;
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << (pos % 8)));
    InvertedIndex loaded;
    const Status s = LoadIndexFromString(mutated, &loaded);
    ASSERT_FALSE(s.ok()) << "byte " << pos << " flip accepted";
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << "byte " << pos;
  }
}

TEST(V2CorruptionSweep, EveryTruncationIsRejected) {
  const std::string blob = SaveSmallV2Index();
  for (size_t len = 0; len < blob.size(); ++len) {
    std::string mutated = blob.substr(0, len);
    InvertedIndex loaded;
    const Status s = LoadIndexFromString(mutated, &loaded);
    ASSERT_FALSE(s.ok()) << "truncation to " << len << " accepted";
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << "length " << len;
  }
}

class V2ResealedFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(V2ResealedFuzz, ResealedMutationsAreRejectedOrSane) {
  // The checksum is recomputable by an attacker; reseal it after each
  // mutation so the structural validators — skip-table checks, block
  // decode bounds, ValidateBlocks totals — do the rejecting. A mutation
  // that happens to stay structurally valid (e.g. a changed position
  // delta) may load, in which case queries must still run without
  // faulting.
  const std::string blob = SaveSmallV2Index();
  auto scored_query = ParseQuery("'w0' OR 'w3'", SurfaceLanguage::kBool);
  ASSERT_TRUE(scored_query.ok());
  Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = blob;
    const int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      // Bias mutations into the posting sections (past the fixed header)
      // so block payloads and skip tables absorb most of the damage.
      const size_t body = mutated.size() - 16;
      const size_t pos = 8 + rng.Uniform(body);
      switch (rng.Uniform(4)) {
        case 0:
          mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.Uniform(8)));
          break;
        case 1:
          mutated[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 2:
          mutated[pos] = static_cast<char>(0xFF);  // max varint continuation
          break;
        default:
          mutated[pos] = 0;
          break;
      }
    }
    ResealChecksum(&mutated);
    InvertedIndex loaded;
    const Status s = LoadIndexFromString(mutated, &loaded);
    if (s.ok()) {
      QueryRouter router(&loaded);
      (void)router.Evaluate("'w0' AND 'w1'");
      (void)router.Evaluate("'w1' OR NOT 'w2'");
      // Scored evaluation indexes the per-node scalar tables by posting
      // node id, so it additionally proves the loader's node-range
      // validation (out-of-range ids would fault under ASan here).
      BoolEngine scored(&loaded, ScoringKind::kTfIdf);
      (void)scored.Evaluate(*scored_query);
    } else {
      EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, V2ResealedFuzz, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// v3 / mmap first-touch corruption sweeps. A lazy (mmap) load verifies only
// the header/directory trailer checksum up front; every block payload byte
// is covered by a per-block checksum verified on the block's first decode.
// So EVERY single-byte flip must surface as Corruption — at load time when
// it lands in the header/directory/trailer, or at first decode when it
// lands in a payload — and truncations must all fail at load (the
// directory bounds every payload range). Never UB, a crash, or a silently
// wrong answer; the ASan+UBSan CI job runs this sweep exhaustively
// (FTS_MMAP_EXHAUSTIVE=1), other runs sample every 7th byte.
// ---------------------------------------------------------------------------

std::string SaveSmallIndexAs(IndexFormat format) {
  CorpusGenOptions opts;
  opts.seed = 11;
  opts.num_nodes = 50;
  opts.min_doc_len = 5;
  opts.max_doc_len = 40;
  opts.vocabulary = 120;
  Corpus corpus = GenerateCorpus(opts);
  InvertedIndex index = IndexBuilder::Build(corpus);
  std::string blob;
  SaveIndexToString(index, &blob, format);
  return blob;
}

size_t SweepStride() {
  return std::getenv("FTS_MMAP_EXHAUSTIVE") != nullptr ? 1 : 7;
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f.good());
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(f.good());
}

/// Streams one list through a cursor (the production read path) and
/// returns its first sticky decode error.
Status DrainList(const BlockPostingList* list) {
  BlockListCursor cursor(list);
  while (cursor.NextEntry() != kInvalidNode) {
    (void)cursor.GetPositions();
    if (!cursor.status().ok()) break;
  }
  return cursor.status();
}

/// Decodes every block and PosList of every list through cursors — token
/// lists, IL_ANY, and any pair lists — and returns the first sticky
/// decode error.
Status TouchEveryBlock(const InvertedIndex& index) {
  for (TokenId t = 0; t < index.vocabulary_size(); ++t) {
    FTS_RETURN_IF_ERROR(DrainList(index.block_list(t)));
  }
  FTS_RETURN_IF_ERROR(DrainList(&index.block_any_list()));
  if (const PairIndex* pairs = index.pair_index()) {
    for (size_t i = 0; i < pairs->num_keys(); ++i) {
      FTS_RETURN_IF_ERROR(DrainList(&pairs->list(i)));
    }
  }
  return Status::OK();
}

TEST(MmapFirstTouchSweep, EveryByteFlipSurfacesCorruption) {
  // All mmap-capable formats: v3, v4 (whose skip entries additionally
  // carry the block-max tf used for ranked early termination — a flipped
  // max_tf must be caught by the directory trailer checksum, never become
  // a silently unsound score bound), and v5 (whose skip entries carry the
  // per-block encoding tag — a flipped tag must likewise be caught by the
  // trailer checksum, never reinterpret a block under the wrong decoder).
  for (IndexFormat format :
       {IndexFormat::kV3, IndexFormat::kV4, IndexFormat::kV5,
        IndexFormat::kV6}) {
    const std::string blob = SaveSmallIndexAs(format);
    ASSERT_EQ(blob[6], static_cast<char>('0' + static_cast<int>(format)));
    const std::string path = ::testing::TempDir() + "/fts_mmap_flip_sweep.idx";
    LoadOptions mmap;
    mmap.mode = LoadOptions::Mode::kMmap;
    for (size_t pos = 0; pos < blob.size(); pos += SweepStride()) {
      std::string mutated = blob;
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << (pos % 8)));
      WriteFile(path, mutated);
      InvertedIndex loaded;
      Status s = LoadIndexFromFile(path, &loaded, mmap);
      if (s.ok()) {
        // The flip was in a payload the lazy load never read: it must be
        // caught by the flipped block's checksum on first touch, and
        // queries against the poisoned index must fail closed, not fault.
        s = TouchEveryBlock(loaded);
        QueryRouter router(&loaded);
        (void)router.Evaluate("'w0' AND 'w1'");
      }
      ASSERT_FALSE(s.ok()) << "byte " << pos << " flip never surfaced";
      EXPECT_EQ(s.code(), StatusCode::kCorruption) << "byte " << pos;
    }
    std::remove(path.c_str());
  }
}

TEST(MmapFirstTouchSweep, EveryTruncationFailsAtLoad) {
  // Truncation cuts bytes off the end, which the lazy loader must notice
  // without reading payloads: the directory bounds every payload range and
  // the trailer checksum pins the directory itself.
  for (IndexFormat format :
       {IndexFormat::kV3, IndexFormat::kV4, IndexFormat::kV5,
        IndexFormat::kV6}) {
    const std::string blob = SaveSmallIndexAs(format);
    const std::string path = ::testing::TempDir() + "/fts_mmap_trunc_sweep.idx";
    LoadOptions mmap;
    mmap.mode = LoadOptions::Mode::kMmap;
    for (size_t len = 0; len < blob.size(); len += SweepStride()) {
      WriteFile(path, blob.substr(0, len));
      InvertedIndex loaded;
      const Status s = LoadIndexFromFile(path, &loaded, mmap);
      ASSERT_FALSE(s.ok()) << "truncation to " << len << " accepted";
      EXPECT_EQ(s.code(), StatusCode::kCorruption) << "length " << len;
    }
    std::remove(path.c_str());
  }
}

class V3MmapPayloadFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(V3MmapPayloadFuzz, RandomMultiByteDamageNeverFaultsLazyQueries) {
  // Random multi-byte damage (flips, 0xFF varint-continuation bytes,
  // zeroed bytes) across the whole body. Most damage is caught by the
  // trailer or per-block checksums; whatever happens — rejection at load,
  // Corruption at first decode, or (for damage confined to bytes no check
  // reads, e.g. inside a never-referenced range) a clean load — queries
  // must run without faulting, which the ASan+UBSan CI job proves. The
  // structural validators behind the checksums are separately exercised by
  // the eager V2ResealedFuzz above: first-touch decode runs the exact same
  // DecodeBlockEntries/DecodePositions checks.
  const std::string path = ::testing::TempDir() + "/fts_mmap_reseal_fuzz.idx";
  LoadOptions mmap;
  mmap.mode = LoadOptions::Mode::kMmap;
  Rng rng(GetParam());
  for (IndexFormat format :
       {IndexFormat::kV3, IndexFormat::kV4, IndexFormat::kV5,
        IndexFormat::kV6}) {
    const std::string blob = SaveSmallIndexAs(format);
    for (int trial = 0; trial < 120; ++trial) {
      std::string mutated = blob;
      // Mutate payload bytes only (the second half of the file is almost
      // all payload; header/directory damage is covered by the flip sweep).
      const size_t body = mutated.size() - 16;
      const int mutations = 1 + static_cast<int>(rng.Uniform(4));
      for (int m = 0; m < mutations; ++m) {
        const size_t pos = 8 + rng.Uniform(body);
        switch (rng.Uniform(3)) {
          case 0:
            mutated[pos] =
                static_cast<char>(mutated[pos] ^ (1 << rng.Uniform(8)));
            break;
          case 1:
            mutated[pos] = static_cast<char>(0xFF);  // max varint continuation
            break;
          default:
            mutated[pos] = 0;
            break;
        }
      }
      WriteFile(path, mutated);
      InvertedIndex loaded;
      const Status s = LoadIndexFromFile(path, &loaded, mmap);
      if (s.ok()) {
        const Status touch = TouchEveryBlock(loaded);
        if (!touch.ok()) {
          EXPECT_EQ(touch.code(), StatusCode::kCorruption) << touch.ToString();
        }
        QueryRouter router(&loaded);
        (void)router.Evaluate("'w0' AND 'w1'");
        (void)router.Evaluate("'w1' OR NOT 'w2'");
        // Ranked evaluation drives the block-max early-termination path,
        // whose score bounds come from the (v4) skip directory — damaged
        // maxima must fail closed, never fault or hang.
        (void)router.EvaluateTopK("'w0' OR 'w3'", 5);
      } else {
        EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
      }
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, V3MmapPayloadFuzz, ::testing::Values(4, 5));

// ---------------------------------------------------------------------------
// v5 dense-corpus sweep. The small corpora above carry mostly sparse
// varint blocks; this corpus is built so common tokens produce full
// 128-entry bitset blocks, putting the new decoder — base/nwords parse,
// word expansion, popcount/entry-count cross-checks, count/len stream
// tiling — directly in the blast path of every flip. Damage in the bitset
// words must surface at first touch; damage in the directory (including
// the per-block encoding tags) must surface at load.
// ---------------------------------------------------------------------------

std::string SaveDenseV5Index() {
  CorpusGenOptions opts;
  opts.seed = 23;
  opts.num_nodes = 200;
  opts.min_doc_len = 6;
  opts.max_doc_len = 16;
  opts.vocabulary = 16;  // tiny vocabulary: every token lands in most docs
  opts.num_topic_tokens = 2;
  opts.topic_doc_fraction = 1.0;
  opts.topic_occurrences = 2;
  Corpus corpus = GenerateCorpus(opts);
  InvertedIndex index = IndexBuilder::Build(corpus);
  bool any_bitset = false;
  for (TokenId t = 0; t < index.vocabulary_size(); ++t) {
    any_bitset |= index.block_list(t)->has_bitset_blocks();
  }
  EXPECT_TRUE(any_bitset) << "dense fuzz corpus produced no bitset blocks";
  std::string blob;
  SaveIndexToString(index, &blob, IndexFormat::kV5);
  return blob;
}

TEST(V5DenseCorruptionSweep, EveryByteFlipSurfacesCorruption) {
  const std::string blob = SaveDenseV5Index();
  ASSERT_EQ(blob[6], '5');
  const std::string path = ::testing::TempDir() + "/fts_v5_dense_sweep.idx";
  LoadOptions mmap;
  mmap.mode = LoadOptions::Mode::kMmap;
  for (size_t pos = 0; pos < blob.size(); pos += SweepStride()) {
    std::string mutated = blob;
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << (pos % 8)));
    WriteFile(path, mutated);
    InvertedIndex loaded;
    Status s = LoadIndexFromFile(path, &loaded, mmap);
    if (s.ok()) {
      s = TouchEveryBlock(loaded);
      QueryRouter router(&loaded);
      (void)router.Evaluate("'topic0' AND 'topic1'");
    }
    ASSERT_FALSE(s.ok()) << "byte " << pos << " flip never surfaced";
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << "byte " << pos;
  }
  std::remove(path.c_str());
}

TEST(V5DenseCorruptionSweep, RandomBitsetDamageIsRejectedOrSane) {
  // Random multi-byte damage across the body. Payload damage bypasses the
  // load-time trailer hash entirely (it covers only header + directory),
  // so the per-block checksum and the bitset structural validators do the
  // rejecting at first touch — and whatever loads must answer the dense
  // word-AND query without faulting, which is exactly the path that would
  // walk a poisoned bitset. (Structural rejection behind a deliberately
  // resealed per-block checksum is pinned by block_posting_list_test's
  // BitsetWordFlipRejectsEvenWithResealedChecksum.)
  const std::string blob = SaveDenseV5Index();
  const std::string path = ::testing::TempDir() + "/fts_v5_dense_reseal.idx";
  LoadOptions mmap;
  mmap.mode = LoadOptions::Mode::kMmap;
  Rng rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = blob;
    const size_t body = mutated.size() - 16;
    const int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = 8 + rng.Uniform(body);
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.Uniform(8)));
          break;
        case 1:
          mutated[pos] = static_cast<char>(0xFF);
          break;
        default:
          mutated[pos] = 0;
          break;
      }
    }
    WriteFile(path, mutated);
    InvertedIndex loaded;
    const Status s = LoadIndexFromFile(path, &loaded, mmap);
    if (s.ok()) {
      const Status touch = TouchEveryBlock(loaded);
      if (!touch.ok()) {
        EXPECT_EQ(touch.code(), StatusCode::kCorruption) << touch.ToString();
      }
      QueryRouter router(&loaded);
      (void)router.Evaluate("'topic0' AND 'topic1'");
      (void)router.EvaluateTopK("'topic0' OR 'topic1'", 5);
    } else {
      EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
    }
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// v6 pair-section sweep. The pair lists reuse the block codec, so their
// payloads are per-block checksummed (first-touch under mmap) and the
// section's own header — max_distance, the frequent-term table, the
// delta-coded key table — is folded into the directory trailer hash. A
// flip anywhere in the file must therefore surface as Corruption: at load
// when it lands in header/directory/trailer bytes (including every pair
// structural invariant: key canonicalization, orientation, ordering), or
// at first decode when it lands in a pair payload. The index is built so
// the section is substantial (dense co-occurrences over a tiny
// vocabulary); the ASan+UBSan CI job runs this sweep exhaustively.
// ---------------------------------------------------------------------------

std::string SaveV6PairIndex() {
  CorpusGenOptions opts;
  opts.seed = 31;
  opts.num_nodes = 80;
  opts.min_doc_len = 6;
  opts.max_doc_len = 20;
  opts.vocabulary = 12;  // tiny vocabulary: pairs co-occur constantly
  Corpus corpus = GenerateCorpus(opts);
  IndexBuildOptions build;
  build.pairs.frequent_terms = 4;
  build.pairs.max_distance = 3;
  InvertedIndex index = IndexBuilder::Build(corpus, build);
  EXPECT_NE(index.pair_index(), nullptr);
  EXPECT_GT(index.pair_index()->num_keys(), 0u);
  std::string blob;
  SaveIndexToString(index, &blob);  // default format: v6
  return blob;
}

TEST(V6PairCorruptionSweep, EveryByteFlipSurfacesCorruption) {
  const std::string blob = SaveV6PairIndex();
  ASSERT_EQ(blob[6], '6');
  const std::string path = ::testing::TempDir() + "/fts_v6_pair_sweep.idx";
  LoadOptions mmap;
  mmap.mode = LoadOptions::Mode::kMmap;
  for (size_t pos = 0; pos < blob.size(); pos += SweepStride()) {
    std::string mutated = blob;
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << (pos % 8)));
    WriteFile(path, mutated);
    InvertedIndex loaded;
    Status s = LoadIndexFromFile(path, &loaded, mmap);
    if (s.ok()) {
      s = TouchEveryBlock(loaded);
      QueryRouter router(&loaded);
      (void)router.Evaluate("'w0' AND 'w1'");
    }
    ASSERT_FALSE(s.ok()) << "byte " << pos << " flip never surfaced";
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << "byte " << pos;
  }
  std::remove(path.c_str());
}

TEST(V6PairCorruptionSweep, EveryTruncationFailsAtLoad) {
  const std::string blob = SaveV6PairIndex();
  const std::string path = ::testing::TempDir() + "/fts_v6_pair_trunc.idx";
  LoadOptions mmap;
  mmap.mode = LoadOptions::Mode::kMmap;
  for (size_t len = 0; len < blob.size(); len += SweepStride()) {
    WriteFile(path, blob.substr(0, len));
    InvertedIndex loaded;
    const Status s = LoadIndexFromFile(path, &loaded, mmap);
    ASSERT_FALSE(s.ok()) << "truncation to " << len << " accepted";
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << "length " << len;
  }
  std::remove(path.c_str());
}

TEST(V6PairCorruptionSweep, EagerLoadRejectsEveryFlipUpFront) {
  // The eager (heap) load path validates every payload before returning,
  // pair lists included — no flip may survive to query time at all.
  const std::string blob = SaveV6PairIndex();
  for (size_t pos = 0; pos < blob.size(); pos += SweepStride()) {
    std::string mutated = blob;
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << (pos % 8)));
    InvertedIndex loaded;
    const Status s = LoadIndexFromString(mutated, &loaded);
    ASSERT_FALSE(s.ok()) << "byte " << pos << " flip accepted";
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << "byte " << pos;
  }
}

TEST(V2CorruptionSweep, OutOfRangeNodeIdsAreRejected) {
  // Surgical mutation: shrink the node universe underneath the posting
  // lists. Corpus = { "" , "a" }, so every posting entry references node 1.
  // Rewriting cnodes 2 -> 1 and deleting node 1's scalar record (1-byte
  // unique_tokens varint + 8-byte norm) yields a parseable, checksum-valid
  // blob whose posting node ids are >= cnodes; scoring would index the
  // per-node tables out of range if the loader accepted it.
  Corpus corpus;
  corpus.AddDocument("");
  corpus.AddDocument("a");
  InvertedIndex index = IndexBuilder::Build(corpus);
  std::string blob;
  SaveIndexToString(index, &blob, IndexFormat::kV2);
  // Layout after the 8-byte magic: cnodes (varint, value 2 = 1 byte), four
  // more 1-byte stat varints, three 8-byte stat doubles, then per-node
  // scalar records of 9 bytes each.
  const size_t cnodes_off = 8;
  const size_t node1_scalars_off = 8 + 5 + 3 * 8 + 9;
  ASSERT_EQ(blob[cnodes_off], 2);
  std::string mutated = blob;
  mutated[cnodes_off] = 1;
  mutated.erase(node1_scalars_off, 9);
  ResealChecksum(&mutated);
  InvertedIndex loaded;
  const Status s = LoadIndexFromString(mutated, &loaded);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  // Pin the rejection reason: if the layout offsets above ever drift, the
  // blob would still be rejected, but for the wrong reason — catch that.
  EXPECT_NE(s.ToString().find("posting node id out of range"), std::string::npos)
      << s.ToString();

  // Same surgery on a v1 blob: the flat-stream load path validates node
  // ranges too.
  SaveIndexToString(index, &blob, IndexFormat::kV1);
  mutated = blob;
  ASSERT_EQ(mutated[cnodes_off], 2);
  mutated[cnodes_off] = 1;
  mutated.erase(node1_scalars_off, 9);
  ResealChecksum(&mutated);
  const Status v1s = LoadIndexFromString(mutated, &loaded);
  ASSERT_FALSE(v1s.ok());
  EXPECT_EQ(v1s.code(), StatusCode::kCorruption) << v1s.ToString();
  EXPECT_NE(v1s.ToString().find("posting node id out of range"), std::string::npos)
      << v1s.ToString();
}

}  // namespace
}  // namespace fts
