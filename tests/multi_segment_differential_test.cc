// Differential proof of the segment architecture: a Searcher over a
// multi-segment IndexSnapshot — three sealed segments with random
// tombstoned deletes — must answer every query with the SAME nodes (up to
// the compaction renumbering) and the SAME bit-for-bit scores as a
// single-shot IndexBuilder run over only the surviving documents. The
// harness runs the familiar 240-combination workload (10 seeds x 24
// random queries drawn from every language class), each combination
// across all three scoring models, all three cursor modes, and both
// storage modes (heap-built segments and mmap'd lazily validated twins),
// and each of those both full and as a ranked top-10 request (which must
// be bit-identical to TopK over the full evaluation — the block-max
// early-termination proof, with random deletes in the mix so tombstoned
// entries can only loosen block bounds, never break them).
// MergeSegments is pinned the same way: the compacted segment must be
// indistinguishable from the single-shot build at the query level. The
// naive calculus evaluator over the surviving corpus anchors the node
// sets to the paper's semantics, so snapshot, merge, and single-shot
// evaluation are all pinned to one external reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "calculus/naive_eval.h"
#include "common/rng.h"
#include "eval/searcher.h"
#include "exec/exec_context.h"
#include "index/index_builder.h"
#include "index/index_io.h"
#include "index/index_snapshot.h"
#include "index/segment_merger.h"
#include "index/tombstone_set.h"
#include "lang/ast.h"
#include "lang/translate.h"
#include "scoring/topk.h"
#include "testing/random_workload.h"
#include "text/corpus.h"

namespace fts {
namespace {

constexpr size_t kSegments = 3;

constexpr ScoringKind kAllScoring[] = {ScoringKind::kNone, ScoringKind::kTfIdf,
                                       ScoringKind::kProbabilistic};
constexpr CursorMode kAllModes[] = {CursorMode::kSequential, CursorMode::kSeek,
                                    CursorMode::kAdaptive};

/// Copies document `id` of `src` into `dst` verbatim (token spellings and
/// exact positions), so a rebuilt corpus tokenizes identically.
void AppendDoc(const Corpus& src, NodeId id, Corpus* dst) {
  const TokenizedDocument& d = src.doc(id);
  std::vector<std::string> tokens;
  tokens.reserve(d.tokens.size());
  for (TokenId t : d.tokens) tokens.push_back(src.token_text(t));
  auto added = dst->AddTokensWithPositions(tokens, d.positions);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
}

/// One seeded scenario: a corpus split into three contiguous segments,
/// random tombstoned deletes, the surviving documents rebuilt as the
/// single-shot reference, and the query mix.
struct SegmentedWorkload {
  Corpus full;
  std::vector<Corpus> parts;          // kSegments contiguous slices
  std::vector<bool> deleted;          // by pre-compaction global id
  Corpus surviving;                   // survivors, densely renumbered
  std::vector<NodeId> survivor_id;    // global id -> dense id (kInvalidNode
                                      // when deleted)
  std::vector<LangExprPtr> queries;   // 24 per seed: all language classes
};

SegmentedWorkload MakeSegmented(uint64_t seed) {
  SegmentedWorkload w;
  Rng rng(seed * 6151 + 23);
  w.full = RandomWorkloadCorpus(&rng, 30, 6);
  const size_t n = w.full.num_nodes();

  w.deleted.resize(n);
  size_t live = 0;
  for (size_t i = 0; i < n; ++i) {
    w.deleted[i] = rng.Bernoulli(0.25);
    if (!w.deleted[i]) ++live;
  }
  if (live == 0) w.deleted[0] = false;  // keep at least one survivor

  // Contiguous split: segment s owns global ids [s*n/3, (s+1)*n/3).
  w.parts.resize(kSegments);
  w.survivor_id.assign(n, kInvalidNode);
  NodeId dense = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t seg = i * kSegments / n;
    AppendDoc(w.full, static_cast<NodeId>(i), &w.parts[seg]);
    if (!w.deleted[i]) {
      w.survivor_id[i] = dense++;
      AppendDoc(w.full, static_cast<NodeId>(i), &w.surviving);
    }
  }

  // The 24-query mix: every language class, same generators as the other
  // differential harnesses.
  for (int i = 0; i < 8; ++i) w.queries.push_back(RandomBoolQuery(&rng, 3));
  for (int i = 0; i < 6; ++i) {
    w.queries.push_back(RandomPipelinedQuery(&rng, /*allow_negative=*/false));
  }
  for (int i = 0; i < 5; ++i) {
    w.queries.push_back(RandomPipelinedQuery(&rng, /*allow_negative=*/true));
  }
  for (int i = 0; i < 5; ++i) {
    // COMP-only shapes: universal quantification (IL_ANY scans) and
    // complement conjunctions — the paths where tombstones must shrink
    // the scan universe, not just filter posting lists.
    if (rng.Bernoulli(0.5)) {
      w.queries.push_back(LangExpr::Every(
          "p", LangExpr::Or(
                   LangExpr::VarHasToken("p", RandomWorkloadToken(&rng)),
                   LangExpr::VarHasToken("p", RandomWorkloadToken(&rng)))));
    } else {
      w.queries.push_back(
          LangExpr::And(LangExpr::Not(LangExpr::Token(RandomWorkloadToken(&rng))),
                        LangExpr::Not(LangExpr::Token(RandomWorkloadToken(&rng)))));
    }
  }
  return w;
}

/// Round-trips `src` through a v3 temp file and loads it back mmap'd with
/// lazy first-touch validation (file removed immediately; the mapping pins
/// the inode).
InvertedIndex LoadMmapTwin(const InvertedIndex& src, const std::string& tag) {
  const std::string path =
      ::testing::TempDir() + "/fts_seg_mmap_" + tag + ".idx";
  EXPECT_TRUE(SaveIndexToFile(src, path).ok());
  LoadOptions options;
  options.mode = LoadOptions::Mode::kMmap;
  InvertedIndex twin;
  EXPECT_TRUE(LoadIndexFromFile(path, &twin, options).ok());
  std::remove(path.c_str());
  EXPECT_TRUE(twin.lazy_validation());
  return twin;
}

/// Builds the per-segment tombstone bitmaps for `w` (null where a segment
/// has no deletes, exercising the null-bitmap path).
std::vector<std::shared_ptr<const TombstoneSet>> BuildTombstones(
    const SegmentedWorkload& w) {
  std::vector<std::shared_ptr<const TombstoneSet>> out(kSegments);
  const size_t n = w.full.num_nodes();
  size_t base = 0;
  for (size_t seg = 0; seg < kSegments; ++seg) {
    const size_t count = w.parts[seg].num_nodes();
    std::shared_ptr<TombstoneSet> bitmap;
    for (size_t local = 0; local < count; ++local) {
      if (w.deleted[base + local]) {
        if (!bitmap) bitmap = std::make_shared<TombstoneSet>(count);
        bitmap->MarkDeleted(static_cast<NodeId>(local));
      }
    }
    out[seg] = std::move(bitmap);
    base += count;
  }
  EXPECT_EQ(base, n);
  return out;
}

std::vector<NodeId> NaiveNodes(const Corpus& corpus, const LangExprPtr& query) {
  auto calc = TranslateToCalculus(query);
  EXPECT_TRUE(calc.ok()) << calc.status().ToString();
  NaiveCalculusEvaluator oracle(&corpus);
  auto nodes = oracle.Evaluate(*calc);
  EXPECT_TRUE(nodes.ok());
  return nodes.ok() ? *nodes : std::vector<NodeId>{};
}

/// Evaluates `query` on both searchers and asserts the snapshot's answer,
/// mapped through the compaction renumbering, is bit-identical to the
/// single-shot reference — nodes, scores, and serving engine.
void ExpectSnapshotMatchesReference(const Searcher& snapshot_searcher,
                                    const Searcher& reference,
                                    const std::vector<NodeId>& survivor_id,
                                    const LangExprPtr& query,
                                    const char* what) {
  ExecContext snap_ctx;
  ExecContext ref_ctx;
  auto snap = snapshot_searcher.SearchParsed(query, snap_ctx);
  auto ref = reference.SearchParsed(query, ref_ctx);
  ASSERT_TRUE(snap.ok()) << what << ": " << query->ToString() << ": "
                         << snap.status().ToString();
  ASSERT_TRUE(ref.ok()) << what << ": " << query->ToString() << ": "
                        << ref.status().ToString();
  // Map the snapshot's global ids (which skip tombstoned documents) onto
  // the dense renumbering the single-shot build uses.
  std::vector<NodeId> mapped;
  mapped.reserve(snap->result.nodes.size());
  for (const NodeId n : snap->result.nodes) {
    ASSERT_LT(n, survivor_id.size()) << what << ": " << query->ToString();
    ASSERT_NE(survivor_id[n], kInvalidNode)
        << what << ": " << query->ToString()
        << ": tombstoned document leaked into the result: " << n;
    mapped.push_back(survivor_id[n]);
  }
  EXPECT_EQ(mapped, ref->result.nodes) << what << ": " << query->ToString();
  // Exact double equality on purpose: the snapshot's scoring stats must
  // reproduce the single-shot arithmetic bit for bit.
  EXPECT_EQ(snap->result.scores, ref->result.scores)
      << what << ": " << query->ToString();
  EXPECT_EQ(snap->engine, ref->engine) << what << ": " << query->ToString();

  // Top-k axis: a ranked top-10 request on the same searcher must be
  // bit-identical — nodes, scores, rank order — to TopK over the full
  // evaluation, whichever path it takes (block-max early termination on
  // seek modes, full evaluation elsewhere). Tombstoned documents may
  // inflate block maxima (bounds stay sound) but must never surface.
  constexpr size_t kTopK = 10;
  ExecContext ranked_ctx;
  ranked_ctx.set_top_k(kTopK);
  auto ranked = snapshot_searcher.SearchParsed(query, ranked_ctx);
  ASSERT_TRUE(ranked.ok()) << what << ": " << query->ToString() << ": "
                           << ranked.status().ToString();
  EXPECT_EQ(ranked->engine, snap->engine) << what << ": " << query->ToString();
  std::vector<NodeId> expect_nodes;
  std::vector<double> expect_scores;
  if (snap->result.scores.empty()) {
    // Unscored: every candidate ties at zero, so rank order is ascending
    // node id — the first k full results, scores omitted.
    const size_t n = std::min(kTopK, snap->result.nodes.size());
    expect_nodes.assign(snap->result.nodes.begin(),
                        snap->result.nodes.begin() + n);
  } else {
    for (const ScoredNode& s :
         TopK(snap->result.nodes, snap->result.scores, kTopK)) {
      expect_nodes.push_back(s.node);
      expect_scores.push_back(s.score);
    }
  }
  EXPECT_EQ(ranked->result.nodes, expect_nodes)
      << what << ": " << query->ToString();
  EXPECT_EQ(ranked->result.scores, expect_scores)
      << what << ": " << query->ToString();
}

class MultiSegmentDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiSegmentDifferential, SnapshotMatchesSingleShotBuild) {
  const uint64_t seed = GetParam();
  SegmentedWorkload w = MakeSegmented(seed);

  // Heap-built segments, plus mmap'd lazily validated twins of the same.
  std::vector<std::shared_ptr<const InvertedIndex>> heap_segments;
  std::vector<std::shared_ptr<const InvertedIndex>> mmap_segments;
  for (size_t seg = 0; seg < kSegments; ++seg) {
    auto built =
        std::make_shared<InvertedIndex>(IndexBuilder::Build(w.parts[seg]));
    mmap_segments.push_back(std::make_shared<InvertedIndex>(LoadMmapTwin(
        *built, std::to_string(seed) + "_" + std::to_string(seg))));
    heap_segments.push_back(std::move(built));
  }
  const auto tombstones = BuildTombstones(w);

  auto heap_snapshot = IndexSnapshot::Create(heap_segments, tombstones, 1);
  ASSERT_TRUE(heap_snapshot.ok()) << heap_snapshot.status().ToString();
  auto mmap_snapshot = IndexSnapshot::Create(mmap_segments, tombstones, 1);
  ASSERT_TRUE(mmap_snapshot.ok()) << mmap_snapshot.status().ToString();
  EXPECT_EQ((*heap_snapshot)->total_nodes(), w.full.num_nodes());
  EXPECT_EQ((*heap_snapshot)->live_nodes(), w.surviving.num_nodes());

  const InvertedIndex reference_index = IndexBuilder::Build(w.surviving);
  const auto reference_snapshot = IndexSnapshot::ForIndex(&reference_index);

  const std::pair<std::shared_ptr<const IndexSnapshot>, const char*>
      kStorage[] = {{*heap_snapshot, "heap"}, {*mmap_snapshot, "mmap"}};

  for (const LangExprPtr& q : w.queries) {
    // Anchor the reference itself to the paper's semantics once per query.
    const std::vector<NodeId> naive = NaiveNodes(w.surviving, q);
    ExecContext ctx;
    Searcher anchor(reference_snapshot,
                    {ScoringKind::kNone, CursorMode::kAdaptive});
    auto anchored = anchor.SearchParsed(q, ctx);
    ASSERT_TRUE(anchored.ok()) << q->ToString();
    EXPECT_EQ(anchored->result.nodes, naive) << q->ToString();

    for (const auto& [snapshot, storage] : kStorage) {
      for (ScoringKind scoring : kAllScoring) {
        for (CursorMode mode : kAllModes) {
          Searcher snapshot_searcher(snapshot, {scoring, mode});
          Searcher reference(reference_snapshot, {scoring, mode});
          ExpectSnapshotMatchesReference(snapshot_searcher, reference,
                                         w.survivor_id, q, storage);
        }
      }
    }
  }
}

TEST_P(MultiSegmentDifferential, MergedSegmentMatchesSingleShotBuild) {
  // Compaction is a rebuild: MergeSegments over the segment list (with
  // tombstones) must hand back exactly the index a single-shot build of
  // the survivors produces — dense ids, so results compare directly with
  // no renumbering map.
  const uint64_t seed = GetParam();
  SegmentedWorkload w = MakeSegmented(seed);

  std::vector<std::shared_ptr<const InvertedIndex>> segments;
  for (size_t seg = 0; seg < kSegments; ++seg) {
    segments.push_back(
        std::make_shared<InvertedIndex>(IndexBuilder::Build(w.parts[seg])));
  }
  const auto tombstones = BuildTombstones(w);
  std::vector<SegmentView> views;
  NodeId base = 0;
  for (size_t seg = 0; seg < kSegments; ++seg) {
    SegmentView v;
    v.index = segments[seg].get();
    v.base = base;
    v.tombstones = tombstones[seg].get();
    views.push_back(v);
    base += static_cast<NodeId>(segments[seg]->num_nodes());
  }
  auto merged = MergeSegments(views);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  const InvertedIndex merged_index = std::move(merged).value();
  const InvertedIndex reference_index = IndexBuilder::Build(w.surviving);
  ASSERT_EQ(merged_index.num_nodes(), reference_index.num_nodes());

  const auto merged_snapshot = IndexSnapshot::ForIndex(&merged_index);
  const auto reference_snapshot = IndexSnapshot::ForIndex(&reference_index);
  std::vector<NodeId> identity(merged_index.num_nodes());
  for (NodeId i = 0; i < identity.size(); ++i) identity[i] = i;

  for (const LangExprPtr& q : w.queries) {
    for (ScoringKind scoring : kAllScoring) {
      Searcher merged_searcher(merged_snapshot,
                               {scoring, CursorMode::kAdaptive});
      Searcher reference(reference_snapshot,
                         {scoring, CursorMode::kAdaptive});
      ExpectSnapshotMatchesReference(merged_searcher, reference, identity, q,
                                     "merged");
    }
  }
}

// 10 seeds x 24 queries = 240 corpus/query combinations, each pinned
// across 3 scoring models x 3 cursor modes x 2 storage modes against the
// single-shot build of the surviving documents (and the merged-segment
// compaction against the same reference).
INSTANTIATE_TEST_SUITE_P(Seeds, MultiSegmentDifferential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace fts
