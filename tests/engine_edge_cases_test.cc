// Edge-case conformance across all four engines, parameterized by engine
// kind: empty indexes, out-of-vocabulary tokens, empty documents,
// single-document corpora, duplicate atoms, and adversarial queries must
// behave identically everywhere the query is supported.

#include <gtest/gtest.h>

#include <memory>

#include "eval/bool_engine.h"
#include "eval/comp_engine.h"
#include "eval/npred_engine.h"
#include "eval/ppred_engine.h"
#include "index/index_builder.h"
#include "lang/parser.h"
#include "text/corpus.h"

namespace fts {
namespace {

std::unique_ptr<Engine> Make(const std::string& kind, const InvertedIndex* index) {
  if (kind == "BOOL") return std::make_unique<BoolEngine>(index, ScoringKind::kNone);
  if (kind == "PPRED") return std::make_unique<PpredEngine>(index, ScoringKind::kNone);
  if (kind == "NPRED") return std::make_unique<NpredEngine>(index, ScoringKind::kNone);
  return std::make_unique<CompEngine>(index, ScoringKind::kNone);
}

class EngineEdgeCases : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineEdgeCases, EmptyIndexMatchesNothingPositive) {
  Corpus corpus;
  InvertedIndex index = IndexBuilder::Build(corpus);
  auto engine = Make(GetParam(), &index);
  auto parsed = ParseQuery("'anything'", SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  auto result = engine->Evaluate(*parsed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->nodes.empty());
}

TEST_P(EngineEdgeCases, OovConjunctKillsConjunction) {
  Corpus corpus;
  corpus.AddDocument("alpha beta");
  InvertedIndex index = IndexBuilder::Build(corpus);
  auto engine = Make(GetParam(), &index);
  auto parsed = ParseQuery("'alpha' AND 'zzzz'", SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  auto result = engine->Evaluate(*parsed);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->nodes.empty());
}

TEST_P(EngineEdgeCases, OovDisjunctIsNeutral) {
  Corpus corpus;
  corpus.AddDocument("alpha beta");
  corpus.AddDocument("gamma");
  InvertedIndex index = IndexBuilder::Build(corpus);
  auto engine = Make(GetParam(), &index);
  auto parsed = ParseQuery("'alpha' OR 'zzzz'", SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  auto result = engine->Evaluate(*parsed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nodes, (std::vector<NodeId>{0}));
}

TEST_P(EngineEdgeCases, DuplicateConjunctsAreIdempotent) {
  Corpus corpus;
  corpus.AddDocument("alpha beta");
  corpus.AddDocument("beta");
  InvertedIndex index = IndexBuilder::Build(corpus);
  auto engine = Make(GetParam(), &index);
  auto parsed = ParseQuery("'alpha' AND 'alpha' AND 'alpha'", SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  auto result = engine->Evaluate(*parsed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nodes, (std::vector<NodeId>{0}));
}

TEST_P(EngineEdgeCases, SingleTokenDocument) {
  Corpus corpus;
  corpus.AddDocument("solo");
  InvertedIndex index = IndexBuilder::Build(corpus);
  auto engine = Make(GetParam(), &index);
  auto parsed = ParseQuery("'solo'", SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  auto result = engine->Evaluate(*parsed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nodes, (std::vector<NodeId>{0}));
}

TEST_P(EngineEdgeCases, NullQueryIsInvalid) {
  Corpus corpus;
  InvertedIndex index = IndexBuilder::Build(corpus);
  auto engine = Make(GetParam(), &index);
  auto result = engine->Evaluate(nullptr);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(Engines, EngineEdgeCases,
                         ::testing::Values("BOOL", "PPRED", "NPRED", "COMP"));

// Predicate-bearing edge cases run on the three predicate-capable engines.
class PredicateEdgeCases : public ::testing::TestWithParam<const char*> {};

TEST_P(PredicateEdgeCases, SelfDistanceOnSingleOccurrence) {
  Corpus corpus;
  corpus.AddDocument("alpha beta alpha");
  corpus.AddDocument("alpha beta");
  InvertedIndex index = IndexBuilder::Build(corpus);
  auto engine = Make(GetParam(), &index);
  // Two occurrences of 'alpha' at different positions: only node 0.
  auto parsed = ParseQuery(
      "SOME p SOME q (p HAS 'alpha' AND q HAS 'alpha' AND diffpos(p, q))",
      SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  auto result = engine->Evaluate(*parsed);
  if (!result.ok()) {
    // PPRED legitimately declines the negative predicate.
    EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
    return;
  }
  EXPECT_EQ(result->nodes, (std::vector<NodeId>{0}));
}

TEST_P(PredicateEdgeCases, UnsatisfiableWindow) {
  Corpus corpus;
  corpus.AddDocument("alpha filler filler filler beta");
  InvertedIndex index = IndexBuilder::Build(corpus);
  auto engine = Make(GetParam(), &index);
  auto parsed = ParseQuery(
      "SOME p SOME q (p HAS 'alpha' AND q HAS 'beta' AND distance(p, q, 0))",
      SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  auto result = engine->Evaluate(*parsed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->nodes.empty());
}

TEST_P(PredicateEdgeCases, ZeroDistanceMeansAdjacent) {
  Corpus corpus;
  corpus.AddDocument("alpha beta");
  corpus.AddDocument("beta alpha");
  corpus.AddDocument("alpha x beta");
  InvertedIndex index = IndexBuilder::Build(corpus);
  auto engine = Make(GetParam(), &index);
  auto parsed = ParseQuery(
      "SOME p SOME q (p HAS 'alpha' AND q HAS 'beta' AND distance(p, q, 0))",
      SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  auto result = engine->Evaluate(*parsed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nodes, (std::vector<NodeId>{0, 1}));  // symmetric
}

INSTANTIATE_TEST_SUITE_P(Engines, PredicateEdgeCases,
                         ::testing::Values("PPRED", "NPRED", "COMP"));

}  // namespace
}  // namespace fts
