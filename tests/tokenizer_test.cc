#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace fts {
namespace {

std::vector<std::string> Texts(const std::vector<RawToken>& toks) {
  std::vector<std::string> out;
  for (const RawToken& t : toks) out.push_back(t.text);
  return out;
}

TEST(TokenizerTest, SplitsOnNonAlnum) {
  Tokenizer tok;
  auto toks = tok.Tokenize("Usability of a software, measures!");
  EXPECT_EQ(Texts(toks), (std::vector<std::string>{"usability", "of", "a",
                                                   "software", "measures"}));
}

TEST(TokenizerTest, OffsetsAreConsecutive) {
  Tokenizer tok;
  auto toks = tok.Tokenize("a b c d");
  for (size_t i = 0; i < toks.size(); ++i) {
    EXPECT_EQ(toks[i].position.offset, i);
  }
}

TEST(TokenizerTest, LowercasesByDefault) {
  Tokenizer tok;
  auto toks = tok.Tokenize("Task COMPLETION");
  EXPECT_EQ(Texts(toks), (std::vector<std::string>{"task", "completion"}));
}

TEST(TokenizerTest, CaseFoldingCanBeDisabled) {
  Tokenizer tok(TokenizerOptions{.lowercase = false});
  auto toks = tok.Tokenize("Task COMPLETION");
  EXPECT_EQ(Texts(toks), (std::vector<std::string>{"Task", "COMPLETION"}));
}

TEST(TokenizerTest, NumbersKeptByDefault) {
  Tokenizer tok;
  auto toks = tok.Tokenize("isbn 1000 x2");
  EXPECT_EQ(Texts(toks), (std::vector<std::string>{"isbn", "1000", "x2"}));
}

TEST(TokenizerTest, NumbersCanBeDropped) {
  Tokenizer tok(TokenizerOptions{.keep_numbers = false});
  auto toks = tok.Tokenize("isbn 1000 alpha");
  EXPECT_EQ(Texts(toks), (std::vector<std::string>{"isbn", "alpha"}));
}

TEST(TokenizerTest, SentenceBoundariesAdvanceOrdinal) {
  Tokenizer tok;
  auto toks = tok.Tokenize("One two. Three! Four? Five");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].position.sentence, 0u);
  EXPECT_EQ(toks[1].position.sentence, 0u);
  EXPECT_EQ(toks[2].position.sentence, 1u);
  EXPECT_EQ(toks[3].position.sentence, 2u);
  EXPECT_EQ(toks[4].position.sentence, 3u);
}

TEST(TokenizerTest, RepeatedPunctuationCountsOnce) {
  Tokenizer tok;
  auto toks = tok.Tokenize("One... Two");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[1].position.sentence, 1u);
}

TEST(TokenizerTest, BlankLinesStartParagraphs) {
  Tokenizer tok;
  auto toks = tok.Tokenize("para one text\n\npara two text\n \n\t\npara three");
  ASSERT_EQ(toks.size(), 8u);
  EXPECT_EQ(toks[0].position.paragraph, 0u);
  EXPECT_EQ(toks[2].position.paragraph, 0u);
  EXPECT_EQ(toks[3].position.paragraph, 1u);
  EXPECT_EQ(toks[5].position.paragraph, 1u);
  EXPECT_EQ(toks[6].position.paragraph, 2u);
}

TEST(TokenizerTest, ParagraphBreakAlsoBreaksSentence) {
  Tokenizer tok;
  auto toks = tok.Tokenize("alpha beta\n\ngamma");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_NE(toks[1].position.sentence, toks[2].position.sentence);
}

TEST(TokenizerTest, EmptyAndPunctuationOnlyInputs) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("... !!! ???").empty());
}

TEST(TokenizerTest, NormalizeMatchesDocumentSide) {
  Tokenizer tok;
  EXPECT_EQ(tok.Normalize("EfFiCiEnT"), "efficient");
}

}  // namespace
}  // namespace fts
