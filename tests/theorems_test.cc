// Executable versions of the paper's expressiveness results (Section 4):
// the incompleteness witnesses for BOOL (Theorem 3) and DIST (Theorem 5),
// BOOL's completeness over a finite alphabet (Theorem 4), and COMP's
// completeness via round trips (Theorems 1 and 6).

#include <gtest/gtest.h>

#include <functional>

#include "calculus/naive_eval.h"
#include "compile/ftc_to_fta.h"
#include "compile/fta_to_ftc.h"
#include "eval/router.h"
#include "index/index_builder.h"
#include "lang/classify.h"
#include "lang/parser.h"
#include "lang/translate.h"
#include "text/corpus.h"

namespace fts {
namespace {

std::vector<NodeId> EvalComp(const Corpus& corpus, const std::string& query) {
  InvertedIndex index = IndexBuilder::Build(corpus);
  QueryRouter router(&index);
  auto r = router.Evaluate(query);
  EXPECT_TRUE(r.ok()) << query << ": " << r.status().ToString();
  return r.ok() ? r->result.nodes : std::vector<NodeId>{};
}

// Evaluates the BOOL semantics of a surface tree over a corpus, treating
// the query purely set-theoretically (via the naive calculus oracle).
bool BoolQuerySatisfies(const Corpus& corpus, const LangExprPtr& query, NodeId node) {
  auto calc = TranslateToCalculus(query);
  EXPECT_TRUE(calc.ok());
  NaiveCalculusEvaluator oracle(&corpus);
  auto nodes = oracle.Evaluate(*calc);
  EXPECT_TRUE(nodes.ok());
  return std::find(nodes->begin(), nodes->end(), node) != nodes->end();
}

// ---------------------------------------------------------------------------
// Theorem 3: no BOOL query over a fixed token vocabulary distinguishes
// CN1 = {t1} from CN2 = {t1, t2} when t2 lies outside the query vocabulary,
// yet COMP's  SOME p (NOT p HAS 't1')  does.
// ---------------------------------------------------------------------------

TEST(Theorem3, BoolCannotExpressSomeOtherToken) {
  Corpus corpus;
  corpus.AddDocument("t1");      // CN1
  corpus.AddDocument("t1 t2");   // CN2

  // The COMP witness separates the two nodes.
  EXPECT_EQ(EvalComp(corpus, "SOME p1 (NOT p1 HAS 't1')"),
            (std::vector<NodeId>{1}));

  // Every BOOL query built from the vocabulary {t1} (plus ANY) returns the
  // same truth value on CN1 and CN2 — enumerate all trees up to depth 3.
  std::vector<LangExprPtr> depth0 = {LangExpr::Token("t1"), LangExpr::Any()};
  auto grow = [](const std::vector<LangExprPtr>& exprs) {
    std::vector<LangExprPtr> out = exprs;
    for (const auto& a : exprs) {
      out.push_back(LangExpr::Not(a));
      for (const auto& b : exprs) {
        out.push_back(LangExpr::And(a, b));
        out.push_back(LangExpr::Or(a, b));
      }
    }
    return out;
  };
  std::vector<LangExprPtr> queries = grow(grow(depth0));
  ASSERT_GT(queries.size(), 50u);
  for (const auto& q : queries) {
    EXPECT_EQ(BoolQuerySatisfies(corpus, q, 0), BoolQuerySatisfies(corpus, q, 1))
        << "BOOL query distinguished the witness nodes: " << q->ToString();
  }
}

// ---------------------------------------------------------------------------
// Theorem 5: DIST cannot express "t1 and t2 NOT adjacent at least once".
// CN1 = t1 t2 t1, CN2 = t1 t2 t1 t2: the COMP witness separates them, and
// no DIST query over {t1, t2} does.
// ---------------------------------------------------------------------------

TEST(Theorem5, DistCannotExpressNegatedDistance) {
  Corpus corpus;
  corpus.AddDocument("t1 t2 t1");      // CN1: every (t1,t2) pair adjacent
  corpus.AddDocument("t1 t2 t1 t2");   // CN2: (t1@0, t2@3) not adjacent

  EXPECT_EQ(EvalComp(corpus,
                     "SOME p1 SOME p2 (p1 HAS 't1' AND p2 HAS 't2' AND "
                     "NOT distance(p1, p2, 0))"),
            (std::vector<NodeId>{1}));

  // Enumerate DIST queries: atoms are tokens, ANY, and dist(x, y, d) for
  // d in {0, 1, 2, 5}; closed under NOT/AND/OR to depth 2.
  std::vector<LangExprPtr> atoms = {LangExpr::Token("t1"), LangExpr::Token("t2"),
                                    LangExpr::Any()};
  for (int64_t d : {0, 1, 2, 5}) {
    atoms.push_back(LangExpr::Dist("t1", "t2", d));
    atoms.push_back(LangExpr::Dist("t2", "t1", d));
    atoms.push_back(LangExpr::Dist("t1", "t1", d));
    atoms.push_back(LangExpr::Dist("", "t2", d));
  }
  auto grow = [](const std::vector<LangExprPtr>& exprs) {
    std::vector<LangExprPtr> out = exprs;
    for (const auto& a : exprs) {
      out.push_back(LangExpr::Not(a));
      for (const auto& b : exprs) {
        out.push_back(LangExpr::And(a, b));
        out.push_back(LangExpr::Or(a, b));
      }
    }
    return out;
  };
  std::vector<LangExprPtr> queries = grow(atoms);
  ASSERT_GT(queries.size(), 300u);
  for (const auto& q : queries) {
    EXPECT_EQ(BoolQuerySatisfies(corpus, q, 0), BoolQuerySatisfies(corpus, q, 1))
        << "DIST query distinguished the witness nodes: " << q->ToString();
  }
}

// ---------------------------------------------------------------------------
// Theorem 4: over a finite alphabet, "some position is not t1" is BOOL-
// expressible by enumerating the complement alphabet.
// ---------------------------------------------------------------------------

TEST(Theorem4, FiniteAlphabetRewriteMatchesCompWitness) {
  // Alphabet T = {t1, a, b}.
  Corpus corpus;
  corpus.AddDocument("t1");        // 0: only t1
  corpus.AddDocument("t1 a");      // 1
  corpus.AddDocument("b");         // 2
  corpus.AddDocument("t1 t1 t1");  // 3

  auto comp = EvalComp(corpus, "SOME p (NOT p HAS 't1')");
  // The Theorem 4 rewrite: 'a' OR 'b' (all tokens other than t1).
  auto rewritten = EvalComp(corpus, "'a' OR 'b'");
  EXPECT_EQ(comp, rewritten);
  EXPECT_EQ(comp, (std::vector<NodeId>{1, 2}));
}

// ---------------------------------------------------------------------------
// Theorem 6 / Theorem 1: COMP expresses every calculus query — validated as
// a round trip FTC -> FTA -> FTC preserving semantics on sample queries.
// ---------------------------------------------------------------------------

TEST(Theorem6, CalculusAlgebraRoundTripPreservesSemantics) {
  Corpus corpus;
  corpus.AddDocument("alpha beta gamma alpha");
  corpus.AddDocument("beta gamma");
  corpus.AddDocument("alpha");
  corpus.AddDocument("gamma beta alpha gamma beta");
  NaiveCalculusEvaluator oracle(&corpus);
  InvertedIndex index = IndexBuilder::Build(corpus);

  const char* queries[] = {
      "'alpha' AND NOT 'beta'",
      "SOME p SOME q (p HAS 'alpha' AND q HAS 'beta' AND ordered(p, q))",
      "EVERY p (p HAS 'alpha' OR p HAS 'beta' OR p HAS 'gamma')",
      "SOME p (NOT p HAS 'alpha')",
      "dist('beta', 'gamma', 0)",
  };
  for (const char* q : queries) {
    auto parsed = ParseQuery(q, SurfaceLanguage::kComp);
    ASSERT_TRUE(parsed.ok()) << q;
    auto calc = TranslateToCalculus(*parsed);
    ASSERT_TRUE(calc.ok()) << q;
    auto direct = oracle.Evaluate(*calc);
    ASSERT_TRUE(direct.ok()) << q;

    // FTC -> FTA -> evaluate.
    auto plan = CompileQuery(*calc);
    ASSERT_TRUE(plan.ok()) << q;
    auto rel = EvaluateFta(*plan, index, nullptr, nullptr);
    ASSERT_TRUE(rel.ok()) << q;
    EXPECT_EQ(rel->Nodes(), *direct) << q;

    // FTA -> FTC -> naive evaluate (the Lemma 1 direction).
    auto back = TranslateFtaQuery(*plan);
    ASSERT_TRUE(back.ok()) << q;
    auto via_back = oracle.Evaluate(*back);
    ASSERT_TRUE(via_back.ok()) << q;
    EXPECT_EQ(*via_back, *direct) << q;
  }
}

}  // namespace
}  // namespace fts
