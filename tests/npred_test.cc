#include "eval/npred_engine.h"

#include <gtest/gtest.h>

#include "eval/comp_engine.h"
#include "index/block_posting_list.h"
#include "index/index_builder.h"
#include "lang/parser.h"
#include "text/corpus.h"

namespace fts {
namespace {

struct NpredFixture : public ::testing::Test {
  void SetUp() override {
    // Mirrors the paper's Section 5.6 example: "assignment" and "judge"
    // far apart vs close together.
    corpus.AddDocument("assignment judge close together");              // 0
    std::string far = "assignment ";
    for (int i = 0; i < 45; ++i) far += "x ";
    far += "judge";
    corpus.AddDocument(far);                                            // 1
    corpus.AddDocument("assignment only");                              // 2
    corpus.AddDocument("judge assignment reversed");                    // 3
    corpus.AddDocument("assignment judge x x x x x x judge");           // 4
    index = IndexBuilder::Build(corpus);
  }

  std::vector<NodeId> Run(const std::string& query,
                          NpredOrderingMode mode =
                              NpredOrderingMode::kNecessaryPartialOrders,
                          EvalCounters* counters = nullptr) {
    NpredEngine engine(&index, ScoringKind::kNone, mode);
    auto parsed = ParseQuery(query, SurfaceLanguage::kComp);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto result = engine.Evaluate(*parsed);
    EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
    if (!result.ok()) return {};
    if (counters) *counters = result->counters;
    return result->nodes;
  }

  Corpus corpus;
  InvertedIndex index;
};

TEST_F(NpredFixture, NotDistanceFindsFarPairs) {
  // Paper Section 5.6.2's query: nodes where the tokens are at least 40
  // positions apart.
  EXPECT_EQ(Run("SOME p SOME q (p HAS 'assignment' AND q HAS 'judge' AND "
                "not_distance(p, q, 40))"),
            (std::vector<NodeId>{1}));
}

TEST_F(NpredFixture, NotOrderedRequiresBothOrderings) {
  // Only node 3 has judge strictly before assignment.
  EXPECT_EQ(Run("SOME p SOME q (p HAS 'assignment' AND q HAS 'judge' AND "
                "not_ordered(p, q))"),
            (std::vector<NodeId>{3}));
  // The mirror image: a judge occurrence at or after an assignment one.
  EXPECT_EQ(Run("SOME p SOME q (p HAS 'judge' AND q HAS 'assignment' AND "
                "not_ordered(p, q))"),
            (std::vector<NodeId>{0, 1, 4}));
}

TEST_F(NpredFixture, DiffposOnSameToken) {
  // Two distinct occurrences of 'judge': node 4 only.
  EXPECT_EQ(Run("SOME p SOME q (p HAS 'judge' AND q HAS 'judge' AND "
                "diffpos(p, q))"),
            (std::vector<NodeId>{4}));
}

TEST_F(NpredFixture, MixedPositiveAndNegativePredicates) {
  // judge after assignment but NOT adjacent: node 4 (judge@8) qualifies;
  // node 0 and 4's first judge are adjacent.
  EXPECT_EQ(Run("SOME p SOME q (p HAS 'assignment' AND q HAS 'judge' AND "
                "ordered(p, q) AND not_distance(p, q, 0))"),
            (std::vector<NodeId>{1, 4}));
}

TEST_F(NpredFixture, NoNegativePredicatesDegeneratesToSinglePass) {
  EvalCounters counters;
  Run("SOME p SOME q (p HAS 'assignment' AND q HAS 'judge' AND "
      "distance(p, q, 5))",
      NpredOrderingMode::kNecessaryPartialOrders, &counters);
  EXPECT_EQ(counters.orderings_run, 1u);
}

TEST_F(NpredFixture, PartialOrderModeRunsFewerThreads) {
  const std::string query =
      "SOME p SOME q SOME r (p HAS 'assignment' AND q HAS 'judge' AND "
      "r HAS 'close' AND not_distance(p, q, 1))";
  EvalCounters partial, total;
  auto nodes_partial =
      Run(query, NpredOrderingMode::kNecessaryPartialOrders, &partial);
  auto nodes_total = Run(query, NpredOrderingMode::kAllTotalOrders, &total);
  EXPECT_EQ(nodes_partial, nodes_total);
  EXPECT_EQ(partial.orderings_run, 2u);  // only p, q are constrained
  EXPECT_EQ(total.orderings_run, 6u);    // 3! over all variables
}

TEST_F(NpredFixture, AgreesWithCompOnNegativeQueries) {
  CompEngine comp(&index, ScoringKind::kNone);
  for (const char* q :
       {"SOME p SOME q (p HAS 'assignment' AND q HAS 'judge' AND "
        "not_distance(p, q, 3))",
        "SOME p SOME q (p HAS 'assignment' AND q HAS 'judge' AND "
        "not_ordered(p, q))",
        "SOME p SOME q (p HAS 'judge' AND q HAS 'judge' AND diffpos(p, q))",
        "SOME p SOME q (p HAS 'assignment' AND q HAS 'judge' AND "
        "not_samepara(p, q))"}) {
    auto parsed = ParseQuery(q, SurfaceLanguage::kComp);
    ASSERT_TRUE(parsed.ok());
    auto expected = comp.Evaluate(*parsed);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(Run(q), expected->nodes) << q;
  }
}

TEST_F(NpredFixture, RejectsNegativePredicateUnderNegation) {
  NpredEngine engine(&index, ScoringKind::kNone);
  auto parsed = ParseQuery(
      "'close' AND NOT (SOME p SOME q (p HAS 'assignment' AND q HAS 'judge' "
      "AND not_distance(p, q, 1)))",
      SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  auto result = engine.Evaluate(*parsed);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST_F(NpredFixture, LinearScanPerThread) {
  EvalCounters counters;
  Run("SOME p SOME q (p HAS 'assignment' AND q HAS 'judge' AND "
      "not_distance(p, q, 40))",
      NpredOrderingMode::kNecessaryPartialOrders, &counters);
  const size_t per_pass = index.block_list_for_text("assignment")->total_positions() +
                          index.block_list_for_text("judge")->total_positions();
  EXPECT_EQ(counters.orderings_run, 2u);
  EXPECT_LE(counters.positions_scanned, 2 * per_pass);
}

}  // namespace
}  // namespace fts
