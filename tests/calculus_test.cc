#include "calculus/ftc.h"

#include <gtest/gtest.h>

#include "calculus/analysis.h"
#include "calculus/naive_eval.h"
#include "text/corpus.h"

namespace fts {
namespace {

const PositionPredicate* Get(const std::string& name) {
  return PredicateRegistry::Default().Find(name);
}

// The paper's Figure 1-style corpus: three small documents.
Corpus TestCorpus() {
  Corpus corpus;
  corpus.AddDocument("usability of a software measures efficient software");  // 0
  corpus.AddDocument("test usability test");                                  // 1
  corpus.AddDocument("unrelated text entirely");                              // 2
  return corpus;
}

TEST(CalculusTest, SingleTokenQuery) {
  Corpus corpus = TestCorpus();
  NaiveCalculusEvaluator eval(&corpus);
  // ∃p (hasPos ∧ hasToken(p,'usability'))
  CalcQuery q{CalcExpr::Exists(0, CalcExpr::HasToken(0, "usability"))};
  auto result = eval.Evaluate(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, (std::vector<NodeId>{0, 1}));
}

TEST(CalculusTest, ConjunctionAcrossVariables) {
  Corpus corpus = TestCorpus();
  NaiveCalculusEvaluator eval(&corpus);
  CalcQuery q{CalcExpr::Exists(
      0, CalcExpr::And(CalcExpr::HasToken(0, "test"),
                       CalcExpr::Exists(1, CalcExpr::HasToken(1, "usability"))))};
  auto result = eval.Evaluate(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<NodeId>{1}));
}

TEST(CalculusTest, DistancePredicate) {
  Corpus corpus = TestCorpus();
  NaiveCalculusEvaluator eval(&corpus);
  // 'efficient' within 0 intervening tokens of 'software' (adjacent).
  CalcQuery q{CalcExpr::Exists(
      0, CalcExpr::And(
             CalcExpr::HasToken(0, "efficient"),
             CalcExpr::Exists(
                 1, CalcExpr::And(CalcExpr::HasToken(1, "software"),
                                  CalcExpr::Pred(Get("distance"), {0, 1}, {0})))))};
  auto result = eval.Evaluate(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<NodeId>{0}));
}

TEST(CalculusTest, UniversalQuantifier) {
  Corpus corpus = TestCorpus();
  NaiveCalculusEvaluator eval(&corpus);
  // Nodes where every position is 'test' or 'usability' — only node 1.
  CalcQuery q{CalcExpr::ForAll(
      0, CalcExpr::Or(CalcExpr::HasToken(0, "test"),
                      CalcExpr::HasToken(0, "usability")))};
  auto result = eval.Evaluate(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<NodeId>{1}));
}

TEST(CalculusTest, UniversalIsVacuouslyTrueOnEmptyNodes) {
  Corpus corpus;
  corpus.AddDocument("");
  NaiveCalculusEvaluator eval(&corpus);
  CalcQuery q{CalcExpr::ForAll(0, CalcExpr::HasToken(0, "x"))};
  auto result = eval.Evaluate(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<NodeId>{0}));
}

TEST(CalculusTest, NegatedTokenInsideExists) {
  Corpus corpus = TestCorpus();
  NaiveCalculusEvaluator eval(&corpus);
  // Theorem 3's witness: some position holds a token other than 'test'.
  CalcQuery q{CalcExpr::Exists(0, CalcExpr::Not(CalcExpr::HasToken(0, "test")))};
  auto result = eval.Evaluate(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<NodeId>{0, 1, 2}));

  Corpus only_test;
  only_test.AddDocument("test test");
  NaiveCalculusEvaluator eval2(&only_test);
  auto result2 = eval2.Evaluate(q);
  ASSERT_TRUE(result2.ok());
  EXPECT_TRUE(result2->empty());
}

TEST(CalculusTest, ValidateRejectsFreeVariables) {
  CalcQuery q{CalcExpr::HasToken(3, "x")};
  EXPECT_FALSE(ValidateQuery(q).ok());
}

TEST(CalculusTest, ValidateRejectsRebinding) {
  CalcQuery q{CalcExpr::Exists(
      0, CalcExpr::Exists(0, CalcExpr::HasToken(0, "x")))};
  EXPECT_FALSE(ValidateQuery(q).ok());
}

TEST(CalculusTest, ValidateRejectsBadPredicateArity) {
  CalcQuery q{CalcExpr::Exists(
      0, CalcExpr::Pred(Get("distance"), {0}, {5}))};
  EXPECT_FALSE(ValidateQuery(q).ok());
}

TEST(AnalysisTest, FreeVars) {
  auto e = CalcExpr::And(CalcExpr::HasToken(1, "a"),
                         CalcExpr::Exists(2, CalcExpr::Pred(Get("distance"),
                                                            {1, 2}, {3})));
  EXPECT_EQ(FreeVars(e), (std::set<VarId>{1}));
}

TEST(AnalysisTest, CollectTokens) {
  auto e = CalcExpr::Or(CalcExpr::HasToken(0, "a"),
                        CalcExpr::Not(CalcExpr::HasToken(1, "b")));
  EXPECT_EQ(CollectTokens(e), (std::set<std::string>{"a", "b"}));
}

TEST(AnalysisTest, QueryShapeCountsPrimitives) {
  auto e = CalcExpr::Exists(
      0, CalcExpr::And(CalcExpr::HasToken(0, "a"),
                       CalcExpr::Exists(1, CalcExpr::And(CalcExpr::HasToken(1, "b"),
                                                         CalcExpr::Pred(Get("distance"),
                                                                        {0, 1}, {5})))));
  QueryShape s = ComputeQueryShape(e);
  EXPECT_EQ(s.toks, 2u);
  EXPECT_EQ(s.preds, 1u);
  EXPECT_EQ(s.ops, 4u);  // 2 exists + 2 and
}

TEST(AnalysisTest, DesugarForAllRemovesUniversals) {
  auto e = CalcExpr::ForAll(0, CalcExpr::HasToken(0, "a"));
  auto d = DesugarForAll(e);
  EXPECT_EQ(d->kind(), CalcExpr::Kind::kNot);
  EXPECT_EQ(d->child()->kind(), CalcExpr::Kind::kExists);
  EXPECT_EQ(d->child()->child()->kind(), CalcExpr::Kind::kNot);
}

TEST(AnalysisTest, DesugarPreservesSemantics) {
  Corpus corpus = TestCorpus();
  NaiveCalculusEvaluator eval(&corpus);
  auto forall = CalcExpr::ForAll(
      0, CalcExpr::Or(CalcExpr::HasToken(0, "test"),
                      CalcExpr::HasToken(0, "usability")));
  auto a = eval.Evaluate(CalcQuery{forall});
  auto b = eval.Evaluate(CalcQuery{DesugarForAll(forall)});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(CalculusTest, ToStringIsReadable) {
  auto e = CalcExpr::Exists(0, CalcExpr::And(CalcExpr::HasToken(0, "a"),
                                             CalcExpr::Not(CalcExpr::HasPos(1))));
  EXPECT_EQ(e->ToString(),
            "exists p0((hasToken(p0,'a') and not(hasPos(n,p1))))");
}

}  // namespace
}  // namespace fts
