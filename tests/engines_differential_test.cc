// Differential testing of the four engines (paper Section 5): on randomly
// generated queries from each language class, every engine able to evaluate
// the query must return exactly the node set of the naive calculus oracle.
// This instantiates the correctness claims of Algorithms 1-7.

#include <gtest/gtest.h>

#include "calculus/naive_eval.h"
#include "common/rng.h"
#include "eval/bool_engine.h"
#include "eval/comp_engine.h"
#include "eval/npred_engine.h"
#include "eval/ppred_engine.h"
#include "index/index_builder.h"
#include "lang/classify.h"
#include "lang/translate.h"
#include "text/corpus.h"

namespace fts {
namespace {

const char* kVocab[] = {"a", "b", "c", "d", "e"};

Corpus RandomCorpus(Rng* rng, int docs, int max_len) {
  Corpus corpus;
  for (int d = 0; d < docs; ++d) {
    const int len = static_cast<int>(rng->Uniform(max_len + 1));
    std::vector<std::string> tokens;
    for (int i = 0; i < len; ++i) tokens.push_back(kVocab[rng->Uniform(5)]);
    corpus.AddTokens(tokens);
  }
  return corpus;
}

std::string Tok(Rng* rng) { return std::string(kVocab[rng->Uniform(5)]); }

// Random BOOL query (tokens, ANY, NOT/AND/OR).
LangExprPtr RandomBool(Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.4)) {
    if (rng->Bernoulli(0.15)) return LangExpr::Any();
    return LangExpr::Token(Tok(rng));
  }
  switch (rng->Uniform(3)) {
    case 0:
      return LangExpr::Not(RandomBool(rng, depth - 1));
    case 1:
      return LangExpr::And(RandomBool(rng, depth - 1), RandomBool(rng, depth - 1));
    default:
      return LangExpr::Or(RandomBool(rng, depth - 1), RandomBool(rng, depth - 1));
  }
}

// Random pipelined query: SOME-quantified token bindings with predicates,
// optional AND NOT closed subquery, optional OR of token atoms.
LangExprPtr RandomPipelined(Rng* rng, bool allow_negative) {
  const int ntok = 2 + static_cast<int>(rng->Uniform(2));  // 2..3 variables
  std::vector<std::string> vars;
  LangExprPtr body;
  for (int i = 0; i < ntok; ++i) {
    vars.push_back("v" + std::to_string(i));
    LangExprPtr atom = LangExpr::VarHasToken(vars[i], Tok(rng));
    body = body ? LangExpr::And(std::move(body), std::move(atom)) : atom;
  }
  const int npred = 1 + static_cast<int>(rng->Uniform(2));
  for (int p = 0; p < npred; ++p) {
    const std::string& v1 = vars[rng->Uniform(vars.size())];
    const std::string& v2 = vars[rng->Uniform(vars.size())];
    LangExprPtr pred;
    const bool negative = allow_negative && rng->Bernoulli(0.5);
    if (negative) {
      switch (rng->Uniform(3)) {
        case 0:
          pred = LangExpr::Pred("not_distance", {v1, v2},
                                {static_cast<int64_t>(rng->Uniform(4))});
          break;
        case 1:
          pred = LangExpr::Pred("not_ordered", {v1, v2}, {});
          break;
        default:
          pred = LangExpr::Pred("diffpos", {v1, v2}, {});
          break;
      }
    } else {
      switch (rng->Uniform(3)) {
        case 0:
          pred = LangExpr::Pred("distance", {v1, v2},
                                {static_cast<int64_t>(1 + rng->Uniform(4))});
          break;
        case 1:
          pred = LangExpr::Pred("ordered", {v1, v2}, {});
          break;
        default:
          pred = LangExpr::Pred("odistance", {v1, v2},
                                {static_cast<int64_t>(1 + rng->Uniform(4))});
          break;
      }
    }
    body = LangExpr::And(std::move(body), std::move(pred));
  }
  // Occasionally a closed AND NOT conjunct.
  if (rng->Bernoulli(0.3)) {
    body = LangExpr::And(std::move(body),
                         LangExpr::Not(LangExpr::Token(Tok(rng))));
  }
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    body = LangExpr::Some(*it, std::move(body));
  }
  // Occasionally an OR with a plain token query.
  if (rng->Bernoulli(0.25)) {
    body = LangExpr::Or(std::move(body), LangExpr::Token(Tok(rng)));
  }
  return body;
}

std::vector<NodeId> Oracle(const Corpus& corpus, const LangExprPtr& query) {
  auto calc = TranslateToCalculus(query);
  EXPECT_TRUE(calc.ok()) << calc.status().ToString();
  NaiveCalculusEvaluator oracle(&corpus);
  auto nodes = oracle.Evaluate(*calc);
  EXPECT_TRUE(nodes.ok());
  return nodes.ok() ? *nodes : std::vector<NodeId>{};
}

class EngineDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineDifferential, BoolEngineMatchesOracle) {
  Rng rng(GetParam());
  Corpus corpus = RandomCorpus(&rng, 10, 12);
  InvertedIndex index = IndexBuilder::Build(corpus);
  BoolEngine engine(&index, ScoringKind::kNone);
  BoolEngine seeking(&index, ScoringKind::kNone, CursorMode::kSeek);
  CompEngine comp(&index, ScoringKind::kNone);
  for (int trial = 0; trial < 30; ++trial) {
    LangExprPtr q = RandomBool(&rng, 3);
    auto expected = Oracle(corpus, q);
    auto got = engine.Evaluate(q);
    ASSERT_TRUE(got.ok()) << q->ToString();
    EXPECT_EQ(got->nodes, expected) << q->ToString();
    auto via_seek = seeking.Evaluate(q);
    ASSERT_TRUE(via_seek.ok()) << q->ToString();
    EXPECT_EQ(via_seek->nodes, expected) << q->ToString();
    auto via_comp = comp.Evaluate(q);
    ASSERT_TRUE(via_comp.ok()) << q->ToString();
    EXPECT_EQ(via_comp->nodes, expected) << q->ToString();
  }
}

TEST_P(EngineDifferential, PpredEngineMatchesOracle) {
  Rng rng(GetParam() * 7919 + 1);
  Corpus corpus = RandomCorpus(&rng, 12, 14);
  InvertedIndex index = IndexBuilder::Build(corpus);
  PpredEngine engine(&index, ScoringKind::kNone);
  PpredEngine seeking(&index, ScoringKind::kNone, CursorMode::kSeek);
  CompEngine comp(&index, ScoringKind::kNone);
  for (int trial = 0; trial < 25; ++trial) {
    LangExprPtr q = RandomPipelined(&rng, /*allow_negative=*/false);
    ASSERT_LE(static_cast<int>(ClassifyQuery(q)),
              static_cast<int>(LanguageClass::kPpred))
        << q->ToString();
    auto expected = Oracle(corpus, q);
    auto got = engine.Evaluate(q);
    ASSERT_TRUE(got.ok()) << q->ToString() << ": " << got.status().ToString();
    EXPECT_EQ(got->nodes, expected) << q->ToString();
    auto via_seek = seeking.Evaluate(q);
    ASSERT_TRUE(via_seek.ok()) << q->ToString();
    EXPECT_EQ(via_seek->nodes, expected) << q->ToString();
    auto via_comp = comp.Evaluate(q);
    ASSERT_TRUE(via_comp.ok());
    EXPECT_EQ(via_comp->nodes, expected) << q->ToString();
  }
}

TEST_P(EngineDifferential, NpredEngineMatchesOracle) {
  Rng rng(GetParam() * 104729 + 3);
  Corpus corpus = RandomCorpus(&rng, 12, 14);
  InvertedIndex index = IndexBuilder::Build(corpus);
  NpredEngine engine(&index, ScoringKind::kNone);
  NpredEngine total(&index, ScoringKind::kNone, NpredOrderingMode::kAllTotalOrders);
  NpredEngine seeking(&index, ScoringKind::kNone,
                      NpredOrderingMode::kNecessaryPartialOrders, CursorMode::kSeek);
  CompEngine comp(&index, ScoringKind::kNone);
  for (int trial = 0; trial < 20; ++trial) {
    LangExprPtr q = RandomPipelined(&rng, /*allow_negative=*/true);
    auto expected = Oracle(corpus, q);
    auto got = engine.Evaluate(q);
    ASSERT_TRUE(got.ok()) << q->ToString() << ": " << got.status().ToString();
    EXPECT_EQ(got->nodes, expected) << q->ToString();
    auto got_total = total.Evaluate(q);
    ASSERT_TRUE(got_total.ok()) << q->ToString();
    EXPECT_EQ(got_total->nodes, expected) << q->ToString();
    auto via_seek = seeking.Evaluate(q);
    ASSERT_TRUE(via_seek.ok()) << q->ToString();
    EXPECT_EQ(via_seek->nodes, expected) << q->ToString();
    auto via_comp = comp.Evaluate(q);
    ASSERT_TRUE(via_comp.ok());
    EXPECT_EQ(via_comp->nodes, expected) << q->ToString();
  }
}

TEST_P(EngineDifferential, EnginesAgreeOnStructuredCorpora) {
  // Structured positions (sentences/paragraphs) with samepara/samesentence.
  Rng rng(GetParam() * 65537 + 11);
  Corpus corpus;
  for (int d = 0; d < 10; ++d) {
    std::string text;
    const int sentences = 1 + static_cast<int>(rng.Uniform(4));
    for (int s = 0; s < sentences; ++s) {
      const int words = 1 + static_cast<int>(rng.Uniform(5));
      for (int w = 0; w < words; ++w) {
        text += std::string(kVocab[rng.Uniform(5)]) + " ";
      }
      text += rng.Bernoulli(0.3) ? ".\n\n" : ". ";
    }
    corpus.AddDocument(text);
  }
  InvertedIndex index = IndexBuilder::Build(corpus);
  PpredEngine ppred(&index, ScoringKind::kNone);
  NpredEngine npred(&index, ScoringKind::kNone);
  CompEngine comp(&index, ScoringKind::kNone);

  for (int trial = 0; trial < 15; ++trial) {
    const std::string v1 = "p", v2 = "q";
    LangExprPtr body = LangExpr::And(LangExpr::VarHasToken(v1, Tok(&rng)),
                                     LangExpr::VarHasToken(v2, Tok(&rng)));
    const bool negative = rng.Bernoulli(0.4);
    LangExprPtr pred =
        negative
            ? LangExpr::Pred(rng.Bernoulli(0.5) ? "not_samepara" : "not_samesentence",
                             {v1, v2}, {})
            : LangExpr::Pred(rng.Bernoulli(0.5) ? "samepara" : "samesentence",
                             {v1, v2}, {});
    body = LangExpr::And(std::move(body), std::move(pred));
    LangExprPtr q =
        LangExpr::Some(v1, LangExpr::Some(v2, std::move(body)));

    auto expected = Oracle(corpus, q);
    auto via_comp = comp.Evaluate(q);
    ASSERT_TRUE(via_comp.ok());
    EXPECT_EQ(via_comp->nodes, expected) << q->ToString();
    if (!negative) {
      auto via_ppred = ppred.Evaluate(q);
      ASSERT_TRUE(via_ppred.ok()) << q->ToString();
      EXPECT_EQ(via_ppred->nodes, expected) << q->ToString();
    }
    auto via_npred = npred.Evaluate(q);
    ASSERT_TRUE(via_npred.ok()) << q->ToString();
    EXPECT_EQ(via_npred->nodes, expected) << q->ToString();
  }
}

TEST_P(EngineDifferential, SeekMatchesSequentialScoresExactly) {
  // Seek mode must be a pure access-path change: node sets AND scores are
  // bit-identical to the sequential engines.
  Rng rng(GetParam() * 31337 + 5);
  Corpus corpus = RandomCorpus(&rng, 14, 16);
  InvertedIndex index = IndexBuilder::Build(corpus);
  for (ScoringKind scoring : {ScoringKind::kTfIdf, ScoringKind::kProbabilistic}) {
    BoolEngine sequential(&index, scoring);
    BoolEngine seeking(&index, scoring, CursorMode::kSeek);
    PpredEngine pseq(&index, scoring);
    PpredEngine pseek(&index, scoring, CursorMode::kSeek);
    for (int trial = 0; trial < 15; ++trial) {
      LangExprPtr bq = RandomBool(&rng, 3);
      auto a = sequential.Evaluate(bq);
      auto b = seeking.Evaluate(bq);
      ASSERT_TRUE(a.ok() && b.ok()) << bq->ToString();
      EXPECT_EQ(a->nodes, b->nodes) << bq->ToString();
      EXPECT_EQ(a->scores, b->scores) << bq->ToString();

      LangExprPtr pq = RandomPipelined(&rng, /*allow_negative=*/false);
      auto c = pseq.Evaluate(pq);
      auto d = pseek.Evaluate(pq);
      ASSERT_TRUE(c.ok() && d.ok()) << pq->ToString();
      EXPECT_EQ(c->nodes, d->nodes) << pq->ToString();
      EXPECT_EQ(c->scores, d->scores) << pq->ToString();
    }
  }
}

TEST(SeekEfficiencyTest, ZigZagAndDecodesSubLinearly) {
  // A rare token AND a dense token: the seek engine must touch a small
  // fraction of the dense list's entries, while the sequential engine walks
  // both lists end to end. This pins the acceptance criterion that seeks
  // perform sub-linear entry decodes, observed through EvalCounters.
  Corpus corpus;
  for (int d = 0; d < 4000; ++d) {
    std::string text = "filler common ";
    if (d % 2 == 0) text += "dense ";
    if (d % 500 == 0) text += "needle ";
    corpus.AddDocument(text);
  }
  InvertedIndex index = IndexBuilder::Build(corpus);
  BoolEngine sequential(&index, ScoringKind::kNone);
  BoolEngine seeking(&index, ScoringKind::kNone, CursorMode::kSeek);
  LangExprPtr q = LangExpr::And(LangExpr::Token("needle"), LangExpr::Token("dense"));

  auto seq = sequential.Evaluate(q);
  auto seek = seeking.Evaluate(q);
  ASSERT_TRUE(seq.ok() && seek.ok());
  EXPECT_EQ(seq->nodes, seek->nodes);
  ASSERT_FALSE(seek->nodes.empty());

  const uint64_t dense_entries = index.df(index.LookupToken("dense"));
  ASSERT_EQ(dense_entries, 2000u);
  // Sequential: every entry of both lists is scanned, which with the block
  // representation as the only resident form means a full linear decode.
  EXPECT_GE(seq->counters.entries_scanned, dense_entries);
  EXPECT_GE(seq->counters.entries_decoded, dense_entries);
  EXPECT_EQ(seq->counters.skip_checks, 0u);
  // Seek: a handful of landings, with sub-linear block decodes.
  EXPECT_LT(seek->counters.entries_scanned, dense_entries / 10);
  EXPECT_GT(seek->counters.skip_checks, 0u);
  EXPECT_GT(seek->counters.blocks_decoded, 0u);
  EXPECT_LT(seek->counters.entries_decoded, dense_entries);
  EXPECT_LT(seek->counters.entries_decoded, seq->counters.entries_decoded);
  // BOOL never touches PosLists in either mode.
  EXPECT_EQ(seq->counters.positions_decoded, 0u);
  EXPECT_EQ(seek->counters.positions_decoded, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferential,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

}  // namespace
}  // namespace fts
