#include "index/block_posting_list.h"

#include <gtest/gtest.h>

#include "common/fnv.h"
#include "common/rng.h"
#include "common/varint_simd.h"
#include "index/decoded_block_cache.h"
#include "index/index_builder.h"
#include "testing/raw_posting_oracle.h"
#include "workload/corpus_gen.h"

namespace fts {
namespace {

PostingList MakeRawList(uint32_t num_entries, uint32_t stride, uint32_t pos_per_entry) {
  PostingList raw;
  for (uint32_t i = 0; i < num_entries; ++i) {
    std::vector<PositionInfo> positions;
    for (uint32_t j = 0; j < pos_per_entry; ++j) {
      positions.push_back(PositionInfo{10 * j + i % 7, j / 3, j / 6});
    }
    raw.Append(1 + i * stride, positions);
  }
  return raw;
}

void ExpectListsEqual(const PostingList& a, const PostingList& b) {
  ASSERT_EQ(a.num_entries(), b.num_entries());
  ASSERT_EQ(a.total_positions(), b.total_positions());
  for (size_t i = 0; i < a.num_entries(); ++i) {
    EXPECT_EQ(a.entry(i).node, b.entry(i).node);
    auto pa = a.positions(a.entry(i));
    auto pb = b.positions(b.entry(i));
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t j = 0; j < pa.size(); ++j) {
      EXPECT_EQ(pa[j].offset, pb[j].offset);
      EXPECT_EQ(pa[j].sentence, pb[j].sentence);
      EXPECT_EQ(pa[j].paragraph, pb[j].paragraph);
    }
  }
}

TEST(BlockPostingListTest, RoundTripsThroughMaterialize) {
  PostingList raw = MakeRawList(1000, 3, 5);
  BlockPostingList block = BlockPostingList::FromPostingList(raw, 128);
  EXPECT_EQ(block.num_entries(), raw.num_entries());
  EXPECT_EQ(block.total_positions(), raw.total_positions());
  EXPECT_EQ(block.num_blocks(), (1000 + 127) / 128);
  ExpectListsEqual(raw, block.Materialize());
}

TEST(BlockPostingListTest, PartialTailBlockIsFlushed) {
  PostingList raw = MakeRawList(130, 2, 1);
  BlockPostingList block = BlockPostingList::FromPostingList(raw, 128);
  ASSERT_EQ(block.num_blocks(), 2u);
  EXPECT_EQ(block.skip(0).entry_count, 128u);
  EXPECT_EQ(block.skip(1).entry_count, 2u);
  ExpectListsEqual(raw, block.Materialize());
}

TEST(BlockPostingListTest, SkipHeadersCoverBlocks) {
  PostingList raw = MakeRawList(300, 2, 1);  // nodes 1, 3, 5, ...
  BlockPostingList block = BlockPostingList::FromPostingList(raw, 100);
  ASSERT_EQ(block.num_blocks(), 3u);
  EXPECT_EQ(block.skip(0).max_node, raw.entry(99).node);
  EXPECT_EQ(block.skip(1).max_node, raw.entry(199).node);
  EXPECT_EQ(block.skip(2).max_node, raw.entry(299).node);
  EXPECT_EQ(block.skip(0).byte_offset, 0u);
  EXPECT_LT(block.skip(1).byte_offset, block.skip(2).byte_offset);
}

TEST(BlockPostingListTest, HeaderOnlyDecodeMatchesFullDecode) {
  PostingList raw = MakeRawList(250, 5, 4);
  BlockPostingList block = BlockPostingList::FromPostingList(raw, 64);
  std::vector<BlockPostingList::EntryRef> refs;
  std::vector<PostingEntry> entries;
  std::vector<PositionInfo> positions, entry_positions;
  for (size_t b = 0; b < block.num_blocks(); ++b) {
    ASSERT_TRUE(block.DecodeBlockEntries(b, &refs).ok());
    ASSERT_TRUE(block.DecodeBlock(b, &entries, &positions).ok());
    ASSERT_EQ(refs.size(), entries.size());
    for (size_t i = 0; i < refs.size(); ++i) {
      EXPECT_EQ(refs[i].header.node, entries[i].node);
      EXPECT_EQ(refs[i].header.pos_count, entries[i].pos_count);
      ASSERT_TRUE(block.DecodePositions(refs[i], &entry_positions).ok());
      ASSERT_EQ(entry_positions.size(), entries[i].pos_count);
      for (size_t j = 0; j < entry_positions.size(); ++j) {
        EXPECT_EQ(entry_positions[j], positions[entries[i].pos_begin + j]);
      }
    }
  }
}

TEST(BlockListCursorTest, SequentialScanMatchesRawCursor) {
  PostingList raw = MakeRawList(500, 4, 3);
  BlockPostingList block = BlockPostingList::FromPostingList(raw, 64);
  ListCursor rc(&raw);
  BlockListCursor bc(&block);
  while (true) {
    const NodeId a = rc.NextEntry();
    const NodeId b = bc.NextEntry();
    ASSERT_EQ(a, b);
    if (a == kInvalidNode) break;
    auto pa = rc.GetPositions();
    auto pb = bc.GetPositions();
    ASSERT_EQ(pa.size(), pb.size());
    EXPECT_EQ(bc.pos_count(), pb.size());
    for (size_t j = 0; j < pa.size(); ++j) EXPECT_EQ(pa[j], pb[j]);
  }
  EXPECT_TRUE(bc.exhausted());
}

TEST(BlockListCursorTest, SeekToFirstNode) {
  PostingList raw = MakeRawList(300, 2, 1);  // nodes 1, 3, ..., 599
  BlockPostingList block = BlockPostingList::FromPostingList(raw, 50);
  BlockListCursor cursor(&block);
  EXPECT_EQ(cursor.SeekEntry(0), 1u);
  EXPECT_EQ(cursor.current_node(), 1u);
}

TEST(BlockListCursorTest, SeekToLastNode) {
  PostingList raw = MakeRawList(300, 2, 1);
  BlockPostingList block = BlockPostingList::FromPostingList(raw, 50);
  BlockListCursor cursor(&block);
  EXPECT_EQ(cursor.SeekEntry(599), 599u);
  EXPECT_EQ(cursor.NextEntry(), kInvalidNode);
}

TEST(BlockListCursorTest, SeekToAbsentNodeLandsOnSuccessor) {
  PostingList raw = MakeRawList(300, 2, 1);  // odd nodes only
  BlockPostingList block = BlockPostingList::FromPostingList(raw, 50);
  BlockListCursor cursor(&block);
  EXPECT_EQ(cursor.SeekEntry(100), 101u);  // 100 absent -> first node >= 100
}

TEST(BlockListCursorTest, SeekPastEndExhausts) {
  PostingList raw = MakeRawList(300, 2, 1);
  BlockPostingList block = BlockPostingList::FromPostingList(raw, 50);
  BlockListCursor cursor(&block);
  EXPECT_EQ(cursor.SeekEntry(600), kInvalidNode);
  EXPECT_TRUE(cursor.exhausted());
  EXPECT_EQ(cursor.SeekEntry(1), kInvalidNode);  // stays exhausted
}

TEST(BlockListCursorTest, BackwardSeekIsRejected) {
  PostingList raw = MakeRawList(300, 2, 1);
  BlockPostingList block = BlockPostingList::FromPostingList(raw, 50);
  BlockListCursor cursor(&block);
  ASSERT_EQ(cursor.SeekEntry(401), 401u);
  EXPECT_EQ(cursor.SeekEntry(7), 401u);  // backward: cursor does not move
  EXPECT_EQ(cursor.current_node(), 401u);
}

TEST(BlockListCursorTest, EmptyAndNullListsExhaustImmediately) {
  BlockPostingList empty;
  BlockListCursor c1(&empty);
  EXPECT_EQ(c1.SeekEntry(0), kInvalidNode);
  EXPECT_TRUE(c1.exhausted());
  BlockListCursor c2(nullptr);
  EXPECT_EQ(c2.SeekEntry(5), kInvalidNode);
  BlockListCursor c3(nullptr);
  EXPECT_EQ(c3.NextEntry(), kInvalidNode);
}

TEST(BlockListCursorTest, SeekWithinCurrentBlockAdvances) {
  PostingList raw = MakeRawList(100, 2, 1);  // one block of 128 capacity
  BlockPostingList block = BlockPostingList::FromPostingList(raw, 128);
  ASSERT_EQ(block.num_blocks(), 1u);
  EvalCounters counters;
  BlockListCursor cursor(&block, &counters);
  ASSERT_EQ(cursor.NextEntry(), 1u);
  EXPECT_EQ(cursor.SeekEntry(51), 51u);
  EXPECT_EQ(cursor.SeekEntry(52), 53u);
  EXPECT_EQ(counters.blocks_decoded, 1u);  // never re-decoded
}

TEST(BlockListCursorTest, SeekDecodesSubLinearEntryCount) {
  // 10k entries in 79 blocks of 128: one cold seek must decode exactly one
  // block (plus O(log blocks) skip probes), not the whole list.
  PostingList raw = MakeRawList(10000, 3, 2);
  BlockPostingList block = BlockPostingList::FromPostingList(raw, 128);
  EvalCounters counters;
  BlockListCursor cursor(&block, &counters);
  const NodeId target = raw.entry(7000).node;
  EXPECT_EQ(cursor.SeekEntry(target), target);
  EXPECT_EQ(counters.blocks_decoded, 1u);
  EXPECT_EQ(counters.entries_decoded, 128u);
  EXPECT_LE(counters.skip_checks, 8u);  // ~log2(79)
  EXPECT_LT(counters.entries_decoded, block.num_entries() / 10);
}

TEST(BlockListCursorTest, InterleavedSeekAndNextMatchRawReference) {
  PostingList raw = MakeRawList(2000, 3, 2);
  BlockPostingList block = BlockPostingList::FromPostingList(raw, 128);
  Rng rng(99);
  ListCursor rc(&raw);
  BlockListCursor bc(&block);
  for (int step = 0; step < 500; ++step) {
    if (rng.Bernoulli(0.5)) {
      ASSERT_EQ(rc.NextEntry(), bc.NextEntry());
    } else {
      const NodeId target = rng.Uniform(7000);
      ASSERT_EQ(rc.SeekEntry(target), bc.SeekEntry(target)) << "target " << target;
    }
    if (rc.exhausted()) break;
    ASSERT_EQ(rc.GetPositions().size(), bc.GetPositions().size());
  }
}

TEST(BlockListCursorTest, WorksOnIndexBuiltLists) {
  CorpusGenOptions opts;
  opts.num_nodes = 400;
  opts.vocabulary = 500;
  opts.num_topic_tokens = 2;
  Corpus corpus = GenerateCorpus(opts);
  RawPostingOracle oracle = BuildRawPostingOracle(corpus);
  InvertedIndex index = IndexBuilder::Build(corpus);
  const BlockPostingList* block = index.block_list_for_text(TopicToken(0));
  const PostingList* raw = oracle.list(index.LookupToken(TopicToken(0)));
  ASSERT_NE(block, nullptr);
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(block->num_entries(), raw->num_entries());
  ExpectListsEqual(*raw, block->Materialize());
  EXPECT_EQ(index.block_any_list().num_entries(), oracle.any_list.num_entries());
}

TEST(BlockPostingListTest, CompressedFootprintIsSmallerThanRawStructs) {
  CorpusGenOptions opts;
  opts.num_nodes = 2000;
  opts.num_topic_tokens = 2;
  opts.topic_occurrences = 6;
  InvertedIndex index = IndexBuilder::Build(GenerateCorpus(opts));
  const BlockPostingList* block = index.block_list_for_text(TopicToken(0));
  ASSERT_NE(block, nullptr);
  const size_t raw_bytes = block->num_entries() * sizeof(PostingEntry) +
                           block->total_positions() * sizeof(PositionInfo);
  // The acceptance bar for the block layout: at least 2x smaller than the
  // raw in-memory representation it replaces on disk.
  EXPECT_LE(block->byte_size() * 2, raw_bytes)
      << "block=" << block->byte_size() << " raw=" << raw_bytes;
}

// ---------------------------------------------------------------------------
// DecodedBlockCache: shared bulk-decoded blocks across cursors.
// ---------------------------------------------------------------------------

TEST(DecodedBlockCacheTest, SecondScanHitsEveryBlock) {
  PostingList raw = MakeRawList(1000, 3, 2);
  BlockPostingList block = BlockPostingList::FromPostingList(raw, 128);
  DecodedBlockCache cache;
  EvalCounters counters;
  for (int scan = 0; scan < 2; ++scan) {
    BlockListCursor cursor(&block, &counters, &cache);
    size_t n = 0;
    while (cursor.NextEntry() != kInvalidNode) ++n;
    EXPECT_EQ(n, raw.num_entries());
  }
  EXPECT_EQ(counters.cache_misses, block.num_blocks());
  EXPECT_EQ(counters.cache_hits, block.num_blocks());
  // Only the misses decoded anything.
  EXPECT_EQ(counters.blocks_decoded, block.num_blocks());
  EXPECT_EQ(counters.blocks_bulk_decoded, block.num_blocks());
  EXPECT_EQ(counters.entries_decoded, raw.num_entries());
}

TEST(DecodedBlockCacheTest, CachedScanStreamsIdenticalToUncached) {
  PostingList raw = MakeRawList(700, 2, 3);
  BlockPostingList block = BlockPostingList::FromPostingList(raw, 64);
  DecodedBlockCache cache;  // holds the whole list: the cached path is live
  for (int scan = 0; scan < 2; ++scan) {
    BlockListCursor cached(&block, nullptr, &cache);
    BlockListCursor plain(&block);
    while (true) {
      const NodeId expected = plain.NextEntry();
      ASSERT_EQ(cached.NextEntry(), expected);
      if (expected == kInvalidNode) break;
      auto pa = plain.GetPositions();
      auto pb = cached.GetPositions();
      ASSERT_EQ(std::vector<PositionInfo>(pa.begin(), pa.end()),
                std::vector<PositionInfo>(pb.begin(), pb.end()));
    }
  }
}

TEST(DecodedBlockCacheTest, EvictedBlockStaysValidForItsCursor) {
  // Two single-block lists sharing a capacity-1 cache: cursor A parks
  // inside list one's cached block, cursor B's scan of list two evicts it.
  // A's decoded view must survive eviction (shared_ptr keepalive).
  PostingList raw1 = MakeRawList(100, 2, 1);
  PostingList raw2 = MakeRawList(100, 3, 1);
  BlockPostingList block1 = BlockPostingList::FromPostingList(raw1, 128);
  BlockPostingList block2 = BlockPostingList::FromPostingList(raw2, 128);
  ASSERT_EQ(block1.num_blocks(), 1u);
  DecodedBlockCache cache(/*capacity=*/1);
  BlockListCursor a(&block1, nullptr, &cache);
  ASSERT_NE(a.NextEntry(), kInvalidNode);
  const NodeId first = a.current_node();
  BlockListCursor b(&block2, nullptr, &cache);
  while (b.NextEntry() != kInvalidNode) {
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 2u);  // block1's block was evicted by block2's
  EXPECT_EQ(a.current_node(), first);
  size_t remaining = 1;
  while (a.NextEntry() != kInvalidNode) ++remaining;
  EXPECT_EQ(remaining, raw1.num_entries());
}

TEST(DecodedBlockCacheTest, ListsLongerThanCapacityBypassTheCache) {
  // A sequential pass over a list with more blocks than the cache holds
  // would evict every block before its re-read; cursors must skip the
  // cache (no misses, no insertions) and decode into their own arena.
  PostingList raw = MakeRawList(1000, 2, 1);
  BlockPostingList block = BlockPostingList::FromPostingList(raw, 128);
  ASSERT_GT(block.num_blocks(), 4u);
  DecodedBlockCache cache(/*capacity=*/4);
  EvalCounters counters;
  for (int scan = 0; scan < 2; ++scan) {
    BlockListCursor cursor(&block, &counters, &cache);
    size_t n = 0;
    while (cursor.NextEntry() != kInvalidNode) ++n;
    EXPECT_EQ(n, raw.num_entries());
  }
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(counters.cache_hits, 0u);
  EXPECT_EQ(counters.cache_misses, 0u);
  EXPECT_EQ(counters.blocks_decoded, 2 * block.num_blocks());
}

TEST(DecodedBlockCacheTest, ShouldAttachRequiresRepeatsAndAFittingWorkingSet) {
  CorpusGenOptions opts;
  opts.num_nodes = 300;
  opts.num_topic_tokens = 2;
  opts.topic_occurrences = 2;
  InvertedIndex index = IndexBuilder::Build(GenerateCorpus(opts));
  const std::string t0 = TopicToken(0);
  const std::string t1 = TopicToken(1);
  // Distinct tokens: no possible hit, never attach.
  EXPECT_FALSE(DecodedBlockCache::ShouldAttach(index, {t0, t1}, 0));
  // Repeated token with the default capacity: attach.
  EXPECT_TRUE(DecodedBlockCache::ShouldAttach(index, {t0, t0}, 0));
  // Repeated ANY scans count as a repeated list too.
  EXPECT_TRUE(DecodedBlockCache::ShouldAttach(index, {}, 2));
  // Repeated token whose working set exceeds a tiny capacity: the LRU
  // would thrash on every rescan, so the decision is to stay uncached.
  EXPECT_FALSE(
      DecodedBlockCache::ShouldAttach(index, {t0, t0}, 0, /*capacity=*/0));
  const std::vector<std::string> both{t0, t1};
  EXPECT_TRUE(DecodedBlockCache::FitsWorkingSet(index, both, 0));
}

TEST(DecodedBlockCacheTest, SeekingThroughCacheMatchesDirectSeeks) {
  PostingList raw = MakeRawList(900, 5, 1);
  BlockPostingList block = BlockPostingList::FromPostingList(raw, 128);
  DecodedBlockCache cache;
  Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    BlockListCursor cached(&block, nullptr, &cache);
    BlockListCursor plain(&block);
    NodeId target = 0;
    while (true) {
      target += 1 + rng.Uniform(400);
      const NodeId expected = plain.SeekEntry(target);
      ASSERT_EQ(cached.SeekEntry(target), expected);
      if (expected == kInvalidNode) break;
    }
  }
  EXPECT_GT(cache.hits(), 0u);
}

// ---------------------------------------------------------------------------
// First-touch validation (the lazy mmap-load contract): lists assembled
// from borrowed bytes with per-block checksums verify each block's
// checksum and structure on its first decode, memoize success, and report
// corruption through cursor status() instead of crashing or asserting.
// ---------------------------------------------------------------------------

struct LazyListParts {
  std::string payload;  // the cursor views into this; keep it alive
  std::vector<BlockPostingList::SkipEntry> skips;
  std::vector<uint32_t> checksums;
  size_t num_entries = 0;
  size_t total_positions = 0;
  uint32_t block_size = 0;
};

LazyListParts MakeLazyParts(uint32_t entries, uint32_t block_size) {
  const PostingList raw = MakeRawList(entries, 3, 4);
  const BlockPostingList built = BlockPostingList::FromPostingList(raw, block_size);
  LazyListParts parts;
  parts.payload = std::string(built.data());
  parts.skips = built.skips();
  parts.num_entries = built.num_entries();
  parts.total_positions = built.total_positions();
  parts.block_size = built.block_size();
  for (size_t b = 0; b < built.num_blocks(); ++b) {
    const size_t begin = built.skip(b).byte_offset;
    const size_t end = b + 1 < built.num_blocks() ? built.skip(b + 1).byte_offset
                                                  : parts.payload.size();
    parts.checksums.push_back(
        Fnv1a32(std::string_view(parts.payload).substr(begin, end - begin)));
  }
  return parts;
}

BlockPostingList AssembleLazy(const LazyListParts& parts) {
  return BlockPostingList::FromParts(parts.block_size, parts.num_entries,
                                     parts.total_positions, parts.skips,
                                     std::string_view(parts.payload),
                                     parts.checksums,
                                     /*first_touch_validation=*/true);
}

TEST(FirstTouchValidationTest, CleanLazyListStreamsIdenticalToBuilt) {
  const PostingList raw = MakeRawList(500, 3, 4);
  const LazyListParts parts = MakeLazyParts(500, 128);
  const BlockPostingList lazy = AssembleLazy(parts);
  ASSERT_EQ(lazy.num_blocks(), 4u);
  for (size_t b = 0; b < lazy.num_blocks(); ++b) {
    EXPECT_FALSE(lazy.BlockVerified(b)) << b;  // untouched so far
  }
  EvalCounters counters;
  BlockListCursor cursor(&lazy, &counters);
  ListCursor reference(&raw);
  while (true) {
    const NodeId expected = reference.NextEntry();
    ASSERT_EQ(cursor.NextEntry(), expected);
    if (expected == kInvalidNode) break;
    ASSERT_EQ(cursor.GetPositions().size(), reference.GetPositions().size());
  }
  EXPECT_TRUE(cursor.status().ok());
  EXPECT_EQ(counters.first_touch_validations, lazy.num_blocks());
  for (size_t b = 0; b < lazy.num_blocks(); ++b) {
    EXPECT_TRUE(lazy.BlockVerified(b)) << b;  // memoized
  }
  // A second scan re-decodes but never re-validates.
  EvalCounters again;
  BlockListCursor second(&lazy, &again);
  while (second.NextEntry() != kInvalidNode) {
  }
  EXPECT_EQ(again.first_touch_validations, 0u);
  EXPECT_EQ(again.blocks_decoded, lazy.num_blocks());
}

TEST(FirstTouchValidationTest, PayloadFlipSurfacesCorruptionAtFirstDecode) {
  // Flip one byte in the third block's payload: blocks 0-1 stream fine,
  // the damaged block fails its first-touch checksum, the cursor fails
  // closed (exhausts) and carries Corruption in status().
  LazyListParts parts = MakeLazyParts(500, 128);
  const size_t victim_begin = parts.skips[2].byte_offset;
  parts.payload[victim_begin + 1] =
      static_cast<char>(parts.payload[victim_begin + 1] ^ 0x10);
  const BlockPostingList lazy = AssembleLazy(parts);
  BlockListCursor cursor(&lazy);
  size_t streamed = 0;
  while (cursor.NextEntry() != kInvalidNode) ++streamed;
  EXPECT_EQ(streamed, 256u);  // the two intact blocks
  EXPECT_TRUE(cursor.exhausted());
  ASSERT_FALSE(cursor.status().ok());
  EXPECT_EQ(cursor.status().code(), StatusCode::kCorruption);
  EXPECT_NE(cursor.status().message().find("checksum mismatch at first touch"),
            std::string::npos)
      << cursor.status().ToString();
  EXPECT_FALSE(lazy.BlockVerified(2));  // failure is never memoized as success
}

TEST(FirstTouchValidationTest, SeekIntoDamagedBlockFailsClosed) {
  LazyListParts parts = MakeLazyParts(500, 128);
  const size_t victim_begin = parts.skips[3].byte_offset;
  parts.payload[victim_begin] = static_cast<char>(parts.payload[victim_begin] ^ 0x01);
  const BlockPostingList lazy = AssembleLazy(parts);
  BlockListCursor cursor(&lazy);
  // Seeking straight into the damaged landing block must not fabricate a
  // node: the cursor exhausts with Corruption without touching blocks 0-2.
  EXPECT_EQ(cursor.SeekEntry(parts.skips[3].max_node), kInvalidNode);
  EXPECT_EQ(cursor.status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(lazy.BlockVerified(0));  // untouched blocks stay unvalidated
}

TEST(FirstTouchValidationTest, CachedDecodeReportsCorruptionOnce) {
  // The DecodedBlockCache path must propagate first-touch failures exactly
  // like direct decodes.
  LazyListParts parts = MakeLazyParts(300, 128);
  parts.payload[parts.skips[1].byte_offset] ^= 0x40;
  const BlockPostingList lazy = AssembleLazy(parts);
  DecodedBlockCache cache;
  EvalCounters counters;
  BlockListCursor cursor(&lazy, &counters, &cache);
  while (cursor.NextEntry() != kInvalidNode) {
  }
  EXPECT_EQ(cursor.status().code(), StatusCode::kCorruption);
  Status direct;
  EXPECT_EQ(cache.GetOrDecode(lazy, 1, &counters, &direct), nullptr);
  EXPECT_EQ(direct.code(), StatusCode::kCorruption);
}

TEST(FirstTouchValidationTest, CrossBlockMonotonicityCheckedLazily) {
  // Rewrite block 1's first (absolute) node id to collide with block 0's
  // range and reseal block 1's checksum: the checksum passes, and the
  // structural cross-block check must reject at first decode of block 1.
  LazyListParts parts = MakeLazyParts(300, 128);
  // MakeRawList uses stride 3 from node 1, so block-local deltas after the
  // first entry are all 3 (one byte); block 1 opens with an absolute node
  // id varint. Replacing its first byte with 0x01 (node 1 <= block 0 max)
  // keeps the byte length valid only if the original first byte was also
  // one varint byte; node 385 needs two bytes, so patch both: 0x01 then a
  // pad... simpler: damage via a zero node delta inside the block, which
  // the in-block monotonicity check rejects. Assemble with a corrected
  // checksum so only structure can reject.
  const size_t victim = parts.skips[1].byte_offset;
  // First entry of block 1: absolute node id (2-byte varint for node 385).
  parts.payload[victim] = 0x01;      // 1-byte varint: node 1
  parts.payload[victim + 1] = 0x00;  // becomes the pos_count varint (0)
  const size_t end = parts.skips.size() > 2 ? parts.skips[2].byte_offset
                                            : parts.payload.size();
  parts.checksums[1] =
      Fnv1a32(std::string_view(parts.payload).substr(victim, end - victim));
  const BlockPostingList lazy = AssembleLazy(parts);
  std::vector<BlockPostingList::EntryRef> entries;
  const Status s = lazy.DecodeBlockEntries(1, &entries);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Hybrid dense-bitset blocks.
// ---------------------------------------------------------------------------

TEST(DenseBlockTest, ClassificationBySpanAndSize) {
  // Consecutive ids (span == entries) classify dense; a stride of 8 blows
  // the span budget (8 * entries > kDenseSpanFactor * entries) and stays
  // varint; lists below kMinDenseEntries never flip representation.
  const BlockPostingList dense =
      BlockPostingList::FromPostingList(MakeRawList(256, 1, 2), 128);
  EXPECT_TRUE(dense.has_bitset_blocks());
  for (size_t b = 0; b < dense.num_blocks(); ++b) {
    EXPECT_EQ(dense.skip(b).encoding, BlockPostingList::kEncodingBitset) << b;
  }
  const BlockPostingList sparse =
      BlockPostingList::FromPostingList(MakeRawList(256, 8, 2), 128);
  EXPECT_FALSE(sparse.has_bitset_blocks());
  const BlockPostingList tiny =
      BlockPostingList::FromPostingList(MakeRawList(8, 1, 1), 128);
  EXPECT_FALSE(tiny.has_bitset_blocks());
}

TEST(DenseBlockTest, BitsetBlocksRoundTripEntriesAndPositions) {
  const PostingList raw = MakeRawList(300, 1, 5);
  const BlockPostingList block = BlockPostingList::FromPostingList(raw, 128);
  ASSERT_TRUE(block.has_bitset_blocks());
  ExpectListsEqual(raw, block.Materialize());
  // Streaming cursor agrees with the raw reference, positions included.
  BlockListCursor cursor(&block);
  ListCursor reference(&raw);
  while (true) {
    const NodeId expected = reference.NextEntry();
    ASSERT_EQ(cursor.NextEntry(), expected);
    if (expected == kInvalidNode) break;
    const auto got = cursor.GetPositions();
    const auto want = reference.GetPositions();
    ASSERT_EQ(got.size(), want.size());
    for (size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].offset, want[j].offset);
      EXPECT_EQ(got[j].sentence, want[j].sentence);
      EXPECT_EQ(got[j].paragraph, want[j].paragraph);
    }
  }
  EXPECT_TRUE(cursor.status().ok());
}

TEST(DenseBlockTest, SeeksAcrossHybridDenseAndSparseBlocks) {
  // A list whose head blocks are dense and whose tail block is sparse:
  // seeks must land correctly on both sides of the representation switch.
  PostingList raw;
  for (uint32_t n = 1; n <= 280; ++n) {
    const PositionInfo pos{n % 50, 0, 0};
    raw.Append(n, std::span<const PositionInfo>(&pos, 1));
  }
  for (uint32_t i = 0; i < 80; ++i) {
    const PositionInfo pos{i, 0, 0};
    raw.Append(1000 + 100 * i, std::span<const PositionInfo>(&pos, 1));
  }
  const BlockPostingList block = BlockPostingList::FromPostingList(raw, 128);
  ASSERT_TRUE(block.has_bitset_blocks());
  bool has_varint_block = false;
  for (size_t b = 0; b < block.num_blocks(); ++b) {
    has_varint_block |=
        block.skip(b).encoding == BlockPostingList::kEncodingVarint;
  }
  ASSERT_TRUE(has_varint_block);
  BlockListCursor cursor(&block);
  EXPECT_EQ(cursor.SeekEntry(150), 150u);   // inside a dense block
  EXPECT_EQ(cursor.SeekEntry(281), 1000u);  // gap: successor in sparse region
  EXPECT_EQ(cursor.SeekEntry(1050), 1100u);
  EXPECT_EQ(cursor.SeekEntry(8901), kInvalidNode);
  EXPECT_TRUE(cursor.status().ok());
}

TEST(DenseBlockTest, CurrentDenseBlockExposesTheBitsetView) {
  const BlockPostingList dense =
      BlockPostingList::FromPostingList(MakeRawList(256, 1, 2), 128);
  BlockListCursor cursor(&dense);
  BlockListCursor::DenseBlockView view;
  EXPECT_FALSE(cursor.CurrentDenseBlock(&view));  // not started yet
  ASSERT_EQ(cursor.NextEntry(), 1u);
  ASSERT_TRUE(cursor.CurrentDenseBlock(&view));
  EXPECT_EQ(view.base, 1u);
  EXPECT_EQ(view.max_node, dense.skip(0).max_node);
  // Consecutive ids: span == 128 -> exactly two fully-set words.
  ASSERT_EQ(view.nwords, 2u);
  for (size_t i = 0; i < 16; ++i) EXPECT_EQ(view.words[i], 0xFF) << i;

  const BlockPostingList sparse =
      BlockPostingList::FromPostingList(MakeRawList(256, 8, 2), 128);
  BlockListCursor scursor(&sparse);
  ASSERT_NE(scursor.NextEntry(), kInvalidNode);
  EXPECT_FALSE(scursor.CurrentDenseBlock(&view));
}

TEST(DenseBlockTest, ToVarintOnlyPreservesContent) {
  const PostingList raw = MakeRawList(300, 1, 3);
  const BlockPostingList dense = BlockPostingList::FromPostingList(raw, 128);
  ASSERT_TRUE(dense.has_bitset_blocks());
  const BlockPostingList varint = dense.ToVarintOnly();
  EXPECT_FALSE(varint.has_bitset_blocks());
  ExpectListsEqual(raw, varint.Materialize());
  EXPECT_EQ(varint.num_entries(), dense.num_entries());
  EXPECT_EQ(varint.num_blocks(), dense.num_blocks());
  for (size_t b = 0; b < dense.num_blocks(); ++b) {
    EXPECT_EQ(varint.skip(b).max_node, dense.skip(b).max_node) << b;
    EXPECT_EQ(varint.skip(b).max_tf, dense.skip(b).max_tf) << b;
  }
}

TEST(DenseBlockTest, BitsetWordFlipRejectsEvenWithResealedChecksum) {
  // Flip one bitset word byte and reseal the block checksum, so only the
  // structural validation can object: a single flipped bit changes the
  // popcount away from the entry count (or clears the base/max bit), and
  // the decode must reject rather than fabricate or drop entries.
  LazyListParts parts = MakeLazyParts(300, 128);  // stride 3: dense blocks
  ASSERT_EQ(parts.skips[0].encoding, BlockPostingList::kEncodingBitset);
  // Block 0 layout: base varint (1 byte, node 1) | nwords varint (1 byte) |
  // words. Flip a bit in the middle of the first word.
  parts.payload[2 + 3] = static_cast<char>(parts.payload[2 + 3] ^ 0x08);
  const size_t end = parts.skips[1].byte_offset;
  parts.checksums[0] = Fnv1a32(std::string_view(parts.payload).substr(0, end));
  const BlockPostingList lazy = AssembleLazy(parts);
  std::vector<BlockPostingList::EntryRef> entries;
  const Status s = lazy.DecodeBlockEntries(0, &entries);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(DenseBlockTest, SimdDecodeCountersChargeWhenActive) {
  // The dispatched decoder reports which arm it resolved to; when a SIMD
  // arm is active, bulk-decoding a dense list must charge
  // simd_groups_decoded (bitset count/len streams + position triples).
  const BlockPostingList dense =
      BlockPostingList::FromPostingList(MakeRawList(256, 1, 6), 128);
  ASSERT_TRUE(dense.has_bitset_blocks());
  EvalCounters counters;
  BlockListCursor cursor(&dense, &counters);
  while (cursor.NextEntry() != kInvalidNode) {
    (void)cursor.GetPositions();
  }
  ASSERT_TRUE(cursor.status().ok());
  if (SimdDecodeActive()) {
    EXPECT_GT(counters.simd_groups_decoded, 0u);
  } else {
    EXPECT_EQ(counters.simd_groups_decoded, 0u);
  }
}

}  // namespace
}  // namespace fts
