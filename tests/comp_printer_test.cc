// Theorem 6, executed: rendering any calculus query in COMP syntax and
// parsing it back preserves semantics. Combined with the random-formula
// generator this is a constructive completeness check.

#include "lang/comp_printer.h"

#include <gtest/gtest.h>

#include "calculus/naive_eval.h"
#include "common/rng.h"
#include "lang/parser.h"
#include "lang/translate.h"
#include "text/corpus.h"

namespace fts {
namespace {

const PositionPredicate* Get(const std::string& name) {
  return PredicateRegistry::Default().Find(name);
}

TEST(CompPrinterTest, RendersTheoremWitnesses) {
  // Theorem 3 witness.
  CalcQuery q1{CalcExpr::Exists(1, CalcExpr::Not(CalcExpr::HasToken(1, "t1")))};
  auto s1 = FormatCalcAsComp(q1);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(*s1, "SOME p1 (NOT (p1 HAS 't1'))");

  // Theorem 5 witness.
  CalcQuery q2{CalcExpr::Exists(
      1, CalcExpr::And(
             CalcExpr::HasToken(1, "t1"),
             CalcExpr::Exists(
                 2, CalcExpr::And(CalcExpr::HasToken(2, "t2"),
                                  CalcExpr::Not(CalcExpr::Pred(Get("distance"),
                                                               {1, 2}, {0}))))))};
  auto s2 = FormatCalcAsComp(q2);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2,
            "SOME p1 ((p1 HAS 't1' AND SOME p2 ((p2 HAS 't2' AND NOT "
            "(distance(p1, p2, 0))))))");
}

TEST(CompPrinterTest, RejectsOpenQueries) {
  CalcQuery open{CalcExpr::HasToken(0, "x")};
  EXPECT_FALSE(FormatCalcAsComp(open).ok());
}

TEST(CompPrinterTest, PrintedQueriesReparse) {
  CalcQuery q{CalcExpr::ForAll(
      0, CalcExpr::Or(CalcExpr::HasToken(0, "a"), CalcExpr::HasPos(0)))};
  auto printed = FormatCalcAsComp(q);
  ASSERT_TRUE(printed.ok());
  auto parsed = ParseQuery(*printed, SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok()) << *printed;
}

// Randomized Theorem 6 round trip: FTC -> COMP text -> parse -> translate
// -> naive evaluate == direct naive evaluate.
class Theorem6RoundTrip : public ::testing::TestWithParam<uint64_t> {};

namespace {
const char* kVocab[] = {"a", "b", "c"};

CalcExprPtr RandomExpr(Rng* rng, std::vector<VarId>* vars, VarId* next, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.35)) {
    if (!vars->empty() && rng->Bernoulli(0.6)) {
      VarId v = (*vars)[rng->Uniform(vars->size())];
      if (rng->Bernoulli(0.25) && vars->size() >= 2) {
        VarId w = (*vars)[rng->Uniform(vars->size())];
        return CalcExpr::Pred(PredicateRegistry::Default().Find("distance"), {v, w},
                              {static_cast<int64_t>(rng->Uniform(4))});
      }
      return CalcExpr::HasToken(v, kVocab[rng->Uniform(3)]);
    }
    VarId v = (*next)++;
    return CalcExpr::Exists(v, CalcExpr::HasToken(v, kVocab[rng->Uniform(3)]));
  }
  switch (rng->Uniform(5)) {
    case 0:
      return CalcExpr::Not(RandomExpr(rng, vars, next, depth - 1));
    case 1:
      return CalcExpr::And(RandomExpr(rng, vars, next, depth - 1),
                           RandomExpr(rng, vars, next, depth - 1));
    case 2:
      return CalcExpr::Or(RandomExpr(rng, vars, next, depth - 1),
                          RandomExpr(rng, vars, next, depth - 1));
    case 3: {
      VarId v = (*next)++;
      vars->push_back(v);
      auto body = RandomExpr(rng, vars, next, depth - 1);
      vars->pop_back();
      return CalcExpr::Exists(v, std::move(body));
    }
    default: {
      VarId v = (*next)++;
      vars->push_back(v);
      auto body = RandomExpr(rng, vars, next, depth - 1);
      vars->pop_back();
      return CalcExpr::ForAll(v, std::move(body));
    }
  }
}
}  // namespace

TEST_P(Theorem6RoundTrip, PrintedFormIsEquivalent) {
  Rng rng(GetParam());
  Corpus corpus;
  for (int d = 0; d < 6; ++d) {
    std::vector<std::string> tokens;
    const int len = static_cast<int>(rng.Uniform(8));
    for (int i = 0; i < len; ++i) tokens.push_back(kVocab[rng.Uniform(3)]);
    corpus.AddTokens(tokens);
  }
  NaiveCalculusEvaluator oracle(&corpus);

  for (int trial = 0; trial < 25; ++trial) {
    std::vector<VarId> vars;
    VarId next = 0;
    CalcQuery query{RandomExpr(&rng, &vars, &next, 3)};
    auto direct = oracle.Evaluate(query);
    ASSERT_TRUE(direct.ok());

    auto printed = FormatCalcAsComp(query);
    ASSERT_TRUE(printed.ok()) << query.ToString();
    auto parsed = ParseQuery(*printed, SurfaceLanguage::kComp);
    ASSERT_TRUE(parsed.ok()) << *printed;
    auto back = TranslateToCalculus(*parsed);
    ASSERT_TRUE(back.ok()) << *printed;
    auto via_comp = oracle.Evaluate(*back);
    ASSERT_TRUE(via_comp.ok());
    EXPECT_EQ(*via_comp, *direct) << "original: " << query.ToString()
                                  << "\nprinted:  " << *printed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem6RoundTrip,
                         ::testing::Values(31, 37, 41, 43, 47, 53));

}  // namespace
}  // namespace fts
