#include "algebra/ops.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "text/corpus.h"

namespace fts {
namespace {

const PositionPredicate* Get(const std::string& name) {
  return PredicateRegistry::Default().Find(name);
}

struct OpsFixture : public ::testing::Test {
  void SetUp() override {
    corpus.AddDocument("a b a c");        // node 0: a@{0,2} b@{1} c@{3}
    corpus.AddDocument("b c");            // node 1: b@{0} c@{1}
    corpus.AddDocument("a a a");          // node 2: a@{0,1,2}
    index = IndexBuilder::Build(corpus);
  }
  Corpus corpus;
  InvertedIndex index;
};

TEST_F(OpsFixture, ScanTokenMaterializesOccurrences) {
  EvalCounters c;
  FtRelation r = *OpScanToken(index, "a", nullptr, &c);
  EXPECT_EQ(r.ToString(), "{(0;0)(0;2)(2;0)(2;1)(2;2)}");
  EXPECT_EQ(c.entries_scanned, 2u);
  EXPECT_EQ(c.positions_scanned, 5u);
}

TEST_F(OpsFixture, ScanOovTokenIsEmpty) {
  FtRelation r = *OpScanToken(index, "zzz", nullptr, nullptr);
  EXPECT_TRUE(r.empty());
}

TEST_F(OpsFixture, ScanHasPosCoversEverything) {
  FtRelation r = *OpScanHasPos(index, nullptr, nullptr);
  EXPECT_EQ(r.size(), 4u + 2u + 3u);
}

TEST_F(OpsFixture, ScanSearchContextIsNodePerTuple) {
  FtRelation r = OpScanSearchContext(index, nullptr, nullptr);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.num_cols(), 0u);
}

TEST_F(OpsFixture, JoinIsPerNodeCartesianProduct) {
  FtRelation a = *OpScanToken(index, "a", nullptr, nullptr);
  FtRelation b = *OpScanToken(index, "b", nullptr, nullptr);
  FtRelation j = OpJoin(a, b, nullptr, nullptr);
  // node 0: a has 2 positions, b has 1 -> 2 tuples; node 2 has no b.
  EXPECT_EQ(j.ToString(), "{(0;0,1)(0;2,1)}");
}

TEST_F(OpsFixture, SelectAppliesPredicate) {
  FtRelation a = *OpScanToken(index, "a", nullptr, nullptr);
  FtRelation c = *OpScanToken(index, "c", nullptr, nullptr);
  FtRelation j = OpJoin(a, c, nullptr, nullptr);
  AlgebraPredicateCall call;
  call.pred = Get("odistance");
  call.cols = {0, 1};
  call.consts = {0};  // adjacent, in order
  auto sel = OpSelect(j, call, nullptr, nullptr);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->ToString(), "{(0;2,3)}");
}

TEST_F(OpsFixture, SelectValidatesColumns) {
  FtRelation a = *OpScanToken(index, "a", nullptr, nullptr);
  AlgebraPredicateCall call;
  call.pred = Get("distance");
  call.cols = {0, 5};
  call.consts = {1};
  EXPECT_FALSE(OpSelect(a, call, nullptr, nullptr).ok());
}

TEST_F(OpsFixture, ProjectReordersAndDeduplicates) {
  FtRelation a = *OpScanToken(index, "a", nullptr, nullptr);
  FtRelation b = *OpScanToken(index, "b", nullptr, nullptr);
  FtRelation j = OpJoin(a, b, nullptr, nullptr);
  auto p = OpProject(j, std::vector<int>{1}, nullptr, nullptr);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "{(0;1)}");  // two tuples collapse
  auto swapped = OpProject(j, std::vector<int>{1, 0}, nullptr, nullptr);
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(swapped->ToString(), "{(0;1,0)(0;1,2)}");
}

TEST_F(OpsFixture, ProjectToNodeLevel) {
  FtRelation a = *OpScanToken(index, "a", nullptr, nullptr);
  auto p = OpProject(a, std::vector<int>{}, nullptr, nullptr);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->Nodes(), (std::vector<NodeId>{0, 2}));
}

TEST_F(OpsFixture, UnionMergesSorted) {
  FtRelation a = *OpScanToken(index, "a", nullptr, nullptr);
  FtRelation b = *OpScanToken(index, "b", nullptr, nullptr);
  auto u = OpUnion(a, b, nullptr, nullptr);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), a.size() + b.size());  // no overlapping positions
  auto self = OpUnion(a, a, nullptr, nullptr);
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self->size(), a.size());
}

TEST_F(OpsFixture, IntersectKeepsCommonTuples) {
  FtRelation a = *OpScanToken(index, "a", nullptr, nullptr);
  FtRelation b = *OpScanToken(index, "b", nullptr, nullptr);
  auto i = OpIntersect(a, a, nullptr, nullptr);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->size(), a.size());
  auto disjoint = OpIntersect(a, b, nullptr, nullptr);
  ASSERT_TRUE(disjoint.ok());
  EXPECT_TRUE(disjoint->empty());
}

TEST_F(OpsFixture, DifferenceRemovesMatchingTuples) {
  FtRelation a = *OpScanToken(index, "a", nullptr, nullptr);
  auto d = OpDifference(a, a, nullptr, nullptr);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->empty());
  FtRelation b = *OpScanToken(index, "b", nullptr, nullptr);
  auto d2 = OpDifference(a, b, nullptr, nullptr);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2->size(), a.size());
}

TEST_F(OpsFixture, AntiJoinDropsNodesPresentOnRight) {
  FtRelation a = *OpScanToken(index, "a", nullptr, nullptr);   // nodes 0, 2
  FtRelation b = *OpScanToken(index, "b", nullptr, nullptr);   // nodes 0, 1
  auto b_nodes = OpProject(b, std::vector<int>{}, nullptr, nullptr);
  ASSERT_TRUE(b_nodes.ok());
  auto aj = OpAntiJoin(a, *b_nodes, nullptr, nullptr);
  ASSERT_TRUE(aj.ok());
  EXPECT_EQ(aj->Nodes(), (std::vector<NodeId>{2}));
  EXPECT_EQ(aj->num_cols(), 1u);  // positions survive
}

TEST_F(OpsFixture, AntiJoinRequiresNodeLevelRight) {
  FtRelation a = *OpScanToken(index, "a", nullptr, nullptr);
  EXPECT_FALSE(OpAntiJoin(a, a, nullptr, nullptr).ok());
}

TEST_F(OpsFixture, SetOpsValidateSchemas) {
  FtRelation one(1), two(2);
  EXPECT_FALSE(OpUnion(one, two, nullptr, nullptr).ok());
  EXPECT_FALSE(OpIntersect(one, two, nullptr, nullptr).ok());
  EXPECT_FALSE(OpDifference(one, two, nullptr, nullptr).ok());
}

TEST_F(OpsFixture, CountersChargeJoinProducts) {
  EvalCounters c;
  FtRelation a = *OpScanToken(index, "a", nullptr, nullptr);
  FtRelation self = OpJoin(a, a, nullptr, &c);
  // node 0: 2x2, node 2: 3x3.
  EXPECT_EQ(c.tuples_materialized, 4u + 9u);
  EXPECT_EQ(self.size(), 13u);
}

}  // namespace
}  // namespace fts
