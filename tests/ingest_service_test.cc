// IngestService lifecycle semantics, single-threaded: the empty first
// generation, Add/Refresh visibility (buffered documents become queryable
// at the seal), Delete's copy-on-write tombstones and generation
// immutability (a held snapshot keeps serving the pre-delete corpus),
// Compact's dense renumbering, and segment spilling to ordinary v3 files
// that LoadSnapshotFromFile serves back. The concurrent contract lives in
// ingest_query_hammer_test.cc.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "eval/searcher.h"
#include "exec/exec_context.h"
#include "exec/ingest_service.h"
#include "index/index_io.h"

namespace fts {
namespace {

/// Evaluates `query` over the service's current generation and returns the
/// global node ids.
std::vector<NodeId> QueryNodes(const IngestService& service,
                               const std::string& query) {
  Searcher searcher(service.snapshot(), {});
  ExecContext ctx;
  auto r = searcher.Search(query, ctx);
  EXPECT_TRUE(r.ok()) << query << ": " << r.status().ToString();
  return r.ok() ? r->result.nodes : std::vector<NodeId>{};
}

std::vector<NodeId> QueryNodes(std::shared_ptr<const IndexSnapshot> snapshot,
                               const std::string& query) {
  Searcher searcher(std::move(snapshot), {});
  ExecContext ctx;
  auto r = searcher.Search(query, ctx);
  EXPECT_TRUE(r.ok()) << query << ": " << r.status().ToString();
  return r.ok() ? r->result.nodes : std::vector<NodeId>{};
}

using Nodes = std::vector<NodeId>;

TEST(IngestServiceTest, EmptyFirstGenerationServesEmptyResults) {
  IngestService service;
  auto snapshot = service.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->num_segments(), 0u);
  EXPECT_EQ(snapshot->total_nodes(), 0u);
  // Queries before the first seal see an empty corpus, not an error.
  EXPECT_EQ(QueryNodes(service, "'a'"), Nodes{});
  EXPECT_EQ(QueryNodes(service, "'a' AND 'b'"), Nodes{});
  EXPECT_TRUE(service.merger_status().ok());
}

TEST(IngestServiceTest, AddRefreshDeleteCompactLifecycle) {
  IngestService::Options options;
  options.max_buffered_docs = 4;   // auto-seal on the fourth Add
  options.merge_factor = 100;      // keep the background merger out of this
  IngestService service(options);

  // Predicted global ids are assigned in submission order.
  const char* docs[] = {"a b", "b c", "c d", "a d", "a e", "b e"};
  for (uint64_t i = 0; i < 6; ++i) {
    auto id = service.Add(docs[i]);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(*id, i);
  }

  // The fourth Add auto-sealed; docs 4 and 5 are still buffered and thus
  // invisible and not yet addressable for deletion.
  EXPECT_EQ(service.snapshot()->total_nodes(), 4u);
  EXPECT_EQ(QueryNodes(service, "'e'"), Nodes{});
  EXPECT_FALSE(service.Delete(4).ok());

  ASSERT_TRUE(service.Refresh().ok());
  EXPECT_EQ(service.snapshot()->total_nodes(), 6u);
  EXPECT_EQ(service.snapshot()->num_segments(), 2u);
  EXPECT_EQ(QueryNodes(service, "'e'"), (Nodes{4, 5}));
  EXPECT_EQ(QueryNodes(service, "'a'"), (Nodes{0, 3, 4}));

  // An empty-buffer Refresh publishes nothing new.
  const uint64_t generation = service.snapshot()->generation();
  ASSERT_TRUE(service.Refresh().ok());
  EXPECT_EQ(service.snapshot()->generation(), generation);

  // Delete is copy-on-write: the held pre-delete generation still serves
  // document 0, only new snapshots see the tombstone.
  auto before_delete = service.snapshot();
  ASSERT_TRUE(service.Delete(0).ok());
  EXPECT_EQ(QueryNodes(service, "'a'"), (Nodes{3, 4}));
  EXPECT_EQ(QueryNodes(before_delete, "'a'"), (Nodes{0, 3, 4}));
  EXPECT_EQ(service.snapshot()->live_nodes(), 5u);

  // Deleting an already deleted or out-of-range id.
  ASSERT_TRUE(service.Delete(0).ok());  // no-op
  EXPECT_FALSE(service.Delete(100).ok());

  // Compact drops the tombstoned document and renumbers survivors densely:
  // original ids 1..5 become 0..4.
  ASSERT_TRUE(service.Compact().ok());
  EXPECT_EQ(service.snapshot()->num_segments(), 1u);
  EXPECT_EQ(service.snapshot()->total_nodes(), 5u);
  EXPECT_EQ(service.snapshot()->live_nodes(), 5u);
  EXPECT_EQ(QueryNodes(service, "'a'"), (Nodes{2, 3}));
  EXPECT_EQ(QueryNodes(service, "'e'"), (Nodes{3, 4}));
  EXPECT_TRUE(service.merger_status().ok());
}

TEST(IngestServiceTest, SpilledSegmentsAreOrdinaryIndexFiles) {
  const std::string dir = ::testing::TempDir() + "/fts_ingest_spill";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));

  IngestService::Options options;
  options.merge_factor = 100;
  options.spill_dir = dir;
  IngestService service(options);
  ASSERT_TRUE(service.Add("a b c").ok());
  ASSERT_TRUE(service.Add("b c d").ok());
  ASSERT_TRUE(service.Refresh().ok());

  // The sealed segment landed as segment-0.fts (write-then-rename, so no
  // .tmp leftovers) and loads back as a one-segment snapshot serving the
  // same documents.
  const std::string path = dir + "/segment-0.fts";
  ASSERT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto loaded = LoadSnapshotFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_segments(), 1u);
  EXPECT_EQ((*loaded)->total_nodes(), 2u);
  EXPECT_EQ(QueryNodes(*loaded, "'b'"), (Nodes{0, 1}));
  EXPECT_EQ(QueryNodes(*loaded, "'a'"), Nodes{0});
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fts
