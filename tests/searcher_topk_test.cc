// Searcher ranked-retrieval (top-k) tests: the block-max early-termination
// path must be bit-identical to full-evaluation-then-TopK while actually
// skipping blocks; deadline and engine-name reporting contracts of the
// segment loop are pinned here too.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "eval/block_max.h"
#include "eval/searcher.h"
#include "exec/exec_context.h"
#include "index/index_builder.h"
#include "index/index_io.h"
#include "index/index_snapshot.h"
#include "lang/ast.h"
#include "scoring/topk.h"
#include "text/corpus.h"
#include "workload/corpus_gen.h"

namespace fts {
namespace {

/// A fig5-8-shaped corpus scaled for unit-test time: Zipf background
/// vocabulary (so common tokens have long lists with varying tf) plus
/// planted topic tokens (constant tf => whole lists of score ties).
InvertedIndex BuildRankedCorpusIndex() {
  CorpusGenOptions opts;
  opts.seed = 7;
  opts.num_nodes = 4000;
  opts.min_doc_len = 60;
  opts.max_doc_len = 60;  // uniform lengths keep TfIdf norms comparable
  opts.vocabulary = 800;
  opts.num_topic_tokens = 2;
  opts.topic_doc_fraction = 0.3;
  opts.topic_occurrences = 25;
  return IndexBuilder::Build(GenerateCorpus(opts));
}

const InvertedIndex& RankedIndex() {
  static const InvertedIndex index = BuildRankedCorpusIndex();
  return index;
}

/// Runs `query` both ways on `searcher` — full evaluation and a ranked
/// top-`k` request — and asserts the ranked result is exactly TopK over
/// the full result: same nodes, bit-identical scores, same rank order,
/// same reported engine. Returns blocks_skipped_by_score of the ranked run.
uint64_t ExpectRankedMatchesFull(const Searcher& searcher,
                                 const LangExprPtr& query, size_t k) {
  ExecContext full_ctx;
  auto full = searcher.SearchParsed(query, full_ctx);
  EXPECT_TRUE(full.ok()) << full.status().ToString();
  if (!full.ok()) return 0;
  EXPECT_EQ(full_ctx.counters().blocks_skipped_by_score, 0u)
      << "full evaluation must never score-skip";

  ExecContext ranked_ctx;
  ranked_ctx.set_top_k(k);
  auto ranked = searcher.SearchParsed(query, ranked_ctx);
  EXPECT_TRUE(ranked.ok()) << ranked.status().ToString();
  if (!ranked.ok()) return 0;

  std::vector<NodeId> expect_nodes;
  std::vector<double> expect_scores;
  for (const ScoredNode& s :
       TopK(full->result.nodes, full->result.scores, k)) {
    expect_nodes.push_back(s.node);
    expect_scores.push_back(s.score);
  }
  EXPECT_EQ(ranked->result.nodes, expect_nodes) << query->ToString();
  EXPECT_EQ(ranked->result.scores, expect_scores) << query->ToString();
  EXPECT_EQ(ranked->engine, full->engine) << query->ToString();
  return ranked_ctx.counters().blocks_skipped_by_score;
}

TEST(SearcherTopKTest, BlockMaxIsBitIdenticalToFullEvaluation) {
  const InvertedIndex& index = RankedIndex();
  const auto snapshot = IndexSnapshot::ForIndex(&index);
  const std::vector<LangExprPtr> queries = {
      LangExpr::Token(BackgroundToken(0)),
      LangExpr::Token(TopicToken(0)),
      LangExpr::And(LangExpr::Token(BackgroundToken(0)),
                    LangExpr::Token(BackgroundToken(1))),
      LangExpr::And(LangExpr::Token(TopicToken(0)),
                    LangExpr::Token(BackgroundToken(2))),
      LangExpr::Or(LangExpr::Token(BackgroundToken(3)),
                   LangExpr::Token(BackgroundToken(7))),
      LangExpr::Or(LangExpr::Token(TopicToken(0)),
                   LangExpr::Token(TopicToken(1))),
  };
  for (ScoringKind scoring :
       {ScoringKind::kTfIdf, ScoringKind::kProbabilistic}) {
    for (CursorMode mode : {CursorMode::kSeek, CursorMode::kAdaptive,
                            CursorMode::kSequential}) {
      Searcher searcher(snapshot, {scoring, mode});
      for (const LangExprPtr& q : queries) {
        const uint64_t skipped = ExpectRankedMatchesFull(searcher, q, 10);
        if (mode == CursorMode::kSequential) {
          EXPECT_EQ(skipped, 0u)
              << "paper-faithful sequential mode must not score-skip: "
              << q->ToString();
        }
      }
    }
  }
}

TEST(SearcherTopKTest, SelectiveQueriesSkipMostCandidateBlocks) {
  // The early-termination win itself: on a long scored list with a small
  // k, the majority of candidate blocks must be hopped without decoding.
  // Probabilistic scoring is the tight case (its per-block bound is exact
  // at max_tf); TfIdf bounds are looser (global min uniq*norm) but must
  // still skip on this uniform-length corpus.
  const InvertedIndex& index = RankedIndex();
  const auto snapshot = IndexSnapshot::ForIndex(&index);
  const LangExprPtr q = LangExpr::Token(BackgroundToken(0));
  const size_t candidate_blocks =
      index.block_list(index.LookupToken(BackgroundToken(0)))->num_blocks();
  ASSERT_GT(candidate_blocks, 4u);  // long enough list to be interesting

  Searcher prob(snapshot, {ScoringKind::kProbabilistic, CursorMode::kSeek});
  const uint64_t prob_skipped = ExpectRankedMatchesFull(prob, q, 10);
  EXPECT_GT(prob_skipped, candidate_blocks / 2)
      << "expected a majority of " << candidate_blocks << " blocks skipped";

  Searcher tfidf(snapshot, {ScoringKind::kTfIdf, CursorMode::kSeek});
  EXPECT_GT(ExpectRankedMatchesFull(tfidf, q, 10), 0u);

  // Whole-list score ties: with identical documents every entry of "tie"
  // scores the same, so the heap fills with the k smallest ids inside the
  // first block, every later block's (exact) bound equals the threshold,
  // and the id tie-break lets the evaluator hop all of them.
  Corpus tie_corpus;
  for (size_t i = 0; i < 2000; ++i) {
    tie_corpus.AddTokens({"tie", "tie", "tie", "pad", "pad", "pad", "pad"});
  }
  InvertedIndex tie_index = IndexBuilder::Build(tie_corpus);
  const size_t tie_blocks =
      tie_index.block_list(tie_index.LookupToken("tie"))->num_blocks();
  ASSERT_GT(tie_blocks, 4u);
  const auto tie_snapshot = IndexSnapshot::ForIndex(&tie_index);
  Searcher tie_searcher(tie_snapshot,
                        {ScoringKind::kProbabilistic, CursorMode::kSeek});
  const uint64_t tie_skipped =
      ExpectRankedMatchesFull(tie_searcher, LangExpr::Token("tie"), 10);
  EXPECT_GT(tie_skipped, tie_blocks / 2)
      << "expected a majority of " << tie_blocks << " tied blocks skipped";
}

TEST(SearcherTopKTest, V3LoadedIndexFallsBackToFullEvaluation) {
  // Pre-v4 files carry no block maxima: ranked results must still be
  // exact, with zero score-skips (every block bound is +inf).
  std::string v3;
  SaveIndexToString(RankedIndex(), &v3, IndexFormat::kV3);
  InvertedIndex loaded;
  ASSERT_TRUE(LoadIndexFromString(v3, &loaded).ok());
  const auto snapshot = IndexSnapshot::ForIndex(&loaded);
  Searcher searcher(snapshot, {ScoringKind::kProbabilistic, CursorMode::kSeek});
  const LangExprPtr q = LangExpr::Token(BackgroundToken(0));
  EXPECT_EQ(ExpectRankedMatchesFull(searcher, q, 10), 0u);
}

TEST(SearcherTopKTest, UnscoredTopKTruncatesToSmallestIds) {
  // kNone + top_k: every candidate ties at score zero, so the k results
  // are the k smallest matching ids, ascending, with no scores attached.
  const InvertedIndex& index = RankedIndex();
  const auto snapshot = IndexSnapshot::ForIndex(&index);
  Searcher searcher(snapshot, {ScoringKind::kNone, CursorMode::kAdaptive});
  const LangExprPtr q = LangExpr::Token(TopicToken(0));
  ExecContext full_ctx;
  auto full = searcher.SearchParsed(q, full_ctx);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->result.nodes.size(), 10u);
  ExecContext ranked_ctx;
  ranked_ctx.set_top_k(10);
  auto ranked = searcher.SearchParsed(q, ranked_ctx);
  ASSERT_TRUE(ranked.ok());
  const std::vector<NodeId> expect(full->result.nodes.begin(),
                                   full->result.nodes.begin() + 10);
  EXPECT_EQ(ranked->result.nodes, expect);
  EXPECT_TRUE(ranked->result.scores.empty());
}

TEST(SearcherTopKTest, ExpiredDeadlineStopsBeforeAnySegmentWork) {
  // Regression: SearchParsed must check the deadline at the top of the
  // segment loop — an already-expired deadline on a multi-segment
  // snapshot returns DeadlineExceeded without decoding anything from any
  // segment.
  CorpusGenOptions opts;
  opts.num_nodes = 20;
  opts.min_doc_len = 10;
  opts.max_doc_len = 20;
  opts.vocabulary = 50;
  std::vector<std::shared_ptr<const InvertedIndex>> segments;
  for (uint32_t seed : {1u, 2u, 3u}) {
    opts.seed = seed;
    segments.push_back(
        std::make_shared<InvertedIndex>(IndexBuilder::Build(GenerateCorpus(opts))));
  }
  auto snapshot = IndexSnapshot::Create(segments, {}, 1);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ((*snapshot)->num_segments(), 3u);

  for (size_t top_k : {size_t{0}, size_t{10}}) {
    Searcher searcher(*snapshot, {ScoringKind::kTfIdf, CursorMode::kAdaptive});
    ExecContext ctx;
    ctx.set_deadline(Deadline::After(std::chrono::nanoseconds(0)));
    ctx.set_top_k(top_k);
    auto result =
        searcher.SearchParsed(LangExpr::Token(BackgroundToken(0)), ctx);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(ctx.counters().blocks_decoded, 0u);
    EXPECT_EQ(ctx.counters().entries_decoded, 0u);
  }
}

TEST(SearcherTopKTest, EmptySnapshotReportsNoEngine) {
  // Regression: a snapshot with zero segments runs nothing — the result
  // must say so ("NONE") instead of claiming the classified engine.
  auto snapshot = IndexSnapshot::Create({}, {}, 1);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ((*snapshot)->num_segments(), 0u);
  Searcher searcher(*snapshot, {ScoringKind::kTfIdf, CursorMode::kAdaptive});
  for (size_t top_k : {size_t{0}, size_t{5}}) {
    ExecContext ctx;
    ctx.set_top_k(top_k);
    auto result = searcher.SearchParsed(LangExpr::Token("anything"), ctx);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->result.nodes.empty());
    EXPECT_EQ(result->engine, "NONE");
  }
}

TEST(SearcherTopKTest, BlockMaxSupportsGatesTheLanguage) {
  EXPECT_TRUE(BlockMaxSupports(LangExpr::Token("a")));
  EXPECT_TRUE(BlockMaxSupports(
      LangExpr::And(LangExpr::Token("a"), LangExpr::Token("b"))));
  EXPECT_TRUE(BlockMaxSupports(
      LangExpr::Or(LangExpr::Token("a"),
                   LangExpr::And(LangExpr::Token("b"), LangExpr::Token("c")))));
  EXPECT_FALSE(BlockMaxSupports(LangExpr::Not(LangExpr::Token("a"))));
  EXPECT_FALSE(BlockMaxSupports(
      LangExpr::And(LangExpr::Token("a"),
                    LangExpr::Not(LangExpr::Token("b")))));
  EXPECT_FALSE(BlockMaxSupports(nullptr));
}

}  // namespace
}  // namespace fts
