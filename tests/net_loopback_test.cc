// End-to-end loopback tests of FtsServer + FtsClient: result parity with
// an in-process SearchService (nodes, bit-identical scores, engine),
// ranked retrieval, per-request server-side deadlines, pipelined async
// calls, and the fail-closed connection contract — malformed frames,
// oversized declared lengths, disconnect with requests in flight, and
// admission-control shedding. Plus the HTTP /metrics and /healthz dialect
// served on the same port.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "exec/search_service.h"
#include "index/index_builder.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "text/corpus.h"
#include "workload/corpus_gen.h"

namespace fts {
namespace net {
namespace {

std::shared_ptr<const InvertedIndex> SmallIndex() {
  Corpus corpus;
  corpus.AddDocument("apple banana cherry. apple date apple.\n\n banana fig.");
  corpus.AddDocument("banana cherry date. elderberry fig grape.");
  corpus.AddDocument("apple cherry elderberry. apple banana grape.");
  corpus.AddDocument("date fig. grape apple. cherry banana date.");
  corpus.AddDocument("elderberry. apple date cherry fig banana grape.");
  return std::make_shared<InvertedIndex>(IndexBuilder::Build(corpus));
}

uint64_t Bits(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// A started server on an ephemeral loopback port plus a client bound to
/// it, with a reference SearchService over the same index for parity
/// checks.
struct Loopback {
  explicit Loopback(FtsServer::Options options = {},
                    std::shared_ptr<const InvertedIndex> index = SmallIndex())
      : index_(std::move(index)), server(index_, std::move(options)) {
    const Status s = server.Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
    FtsClient::Options copts;
    copts.port = server.port();
    client = std::make_unique<FtsClient>(copts);
  }

  std::shared_ptr<const InvertedIndex> index_;
  FtsServer server;
  std::unique_ptr<FtsClient> client;
};

TEST(NetLoopbackTest, SearchMatchesInProcessService) {
  FtsServer::Options options;
  options.service.scoring = ScoringKind::kTfIdf;
  Loopback lb(options);
  SearchService::Options sopts;
  sopts.scoring = ScoringKind::kTfIdf;
  SearchService reference(lb.index_.get(), sopts);

  const std::vector<std::string> queries = {
      "'apple'",
      "'apple' AND 'banana'",
      "'cherry' OR ('date' AND NOT 'fig')",
      "SOME p1 SOME p2 (p1 HAS 'apple' AND p2 HAS 'banana' AND "
      "distance(p1, p2, 4))",
      "SOME p1 SOME p2 (p1 HAS 'apple' AND p2 HAS 'cherry' AND "
      "NOT samesentence(p1, p2))",
  };
  for (const std::string& q : queries) {
    auto expected = reference.Search(q);
    ASSERT_TRUE(expected.ok()) << q;
    auto got = lb.client->Search(q);
    ASSERT_TRUE(got.ok()) << q << ": " << got.status().ToString();
    ASSERT_TRUE(got->status.ok()) << q << ": " << got->status.ToString();
    ASSERT_EQ(got->nodes.size(), expected->result.nodes.size()) << q;
    for (size_t i = 0; i < got->nodes.size(); ++i) {
      EXPECT_EQ(got->nodes[i], expected->result.nodes[i]) << q;
    }
    ASSERT_EQ(got->scores.size(), expected->result.scores.size()) << q;
    for (size_t i = 0; i < got->scores.size(); ++i) {
      EXPECT_EQ(Bits(got->scores[i]), Bits(expected->result.scores[i])) << q;
    }
    EXPECT_EQ(got->engine, expected->engine) << q;
    EXPECT_EQ(got->language_class, expected->language_class) << q;
  }
}

TEST(NetLoopbackTest, TopKLimitsResults) {
  FtsServer::Options options;
  options.service.scoring = ScoringKind::kProbabilistic;
  Loopback lb(options);
  auto full = lb.client->Search("'apple' OR 'banana'");
  ASSERT_TRUE(full.ok() && full->status.ok());
  ASSERT_GT(full->nodes.size(), 2u);
  auto top2 = lb.client->Search("'apple' OR 'banana'", /*top_k=*/2);
  ASSERT_TRUE(top2.ok() && top2->status.ok());
  ASSERT_EQ(top2->nodes.size(), 2u);
  // Full results come back in id order; rank them (score desc, id asc) to
  // get the expected top-2.
  std::vector<size_t> rank(full->nodes.size());
  for (size_t i = 0; i < rank.size(); ++i) rank[i] = i;
  std::sort(rank.begin(), rank.end(), [&](size_t a, size_t b) {
    if (full->scores[a] != full->scores[b]) {
      return full->scores[a] > full->scores[b];
    }
    return full->nodes[a] < full->nodes[b];
  });
  EXPECT_EQ(top2->nodes[0], full->nodes[rank[0]]);
  EXPECT_EQ(top2->nodes[1], full->nodes[rank[1]]);
  EXPECT_EQ(Bits(top2->scores[0]), Bits(full->scores[rank[0]]));
  EXPECT_EQ(Bits(top2->scores[1]), Bits(full->scores[rank[1]]));
}

TEST(NetLoopbackTest, ServerSideDeadlineExceeded) {
  Loopback lb;
  // 1us is expired by the time a worker dequeues the task; the reply must
  // carry the evaluation status, not kill the connection.
  auto got = lb.client->Search(
      "SOME p1 SOME p2 (p1 HAS 'apple' AND p2 HAS 'banana' AND "
      "NOT samesentence(p1, p2))",
      0, WireCursorMode::kDefault, /*deadline_us=*/1);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->status.code(), StatusCode::kDeadlineExceeded);
  // The connection survives: the next call succeeds.
  auto after = lb.client->Search("'apple'");
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->status.ok());
}

TEST(NetLoopbackTest, ParseErrorAnsweredInBand) {
  Loopback lb;
  auto got = lb.client->Search("SOME p1 (((");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->status.code(), StatusCode::kInvalidArgument);
  auto after = lb.client->Ping();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->num_nodes, 5u);
}

TEST(NetLoopbackTest, PipelinedAsyncCallsAllComplete) {
  FtsServer::Options options;
  options.service.num_workers = 2;
  Loopback lb(options);
  std::vector<std::future<StatusOr<SearchResponse>>> futures;
  for (int i = 0; i < 16; ++i) {
    SearchRequest req;
    req.query = (i % 2) ? "'apple'" : "'banana' AND 'cherry'";
    futures.push_back(lb.client->SearchAsync(std::move(req)));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    auto got = futures[i].get();
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    EXPECT_TRUE(got->status.ok()) << i;
    EXPECT_FALSE(got->nodes.empty()) << i;
  }
}

TEST(NetLoopbackTest, MalformedFrameDropsConnection) {
  Loopback lb;
  // Prime the connection so the failure is observable as a transition.
  ASSERT_TRUE(lb.client->Ping().ok());

  auto sock = ConnectTcp("127.0.0.1", lb.server.port(),
                         std::chrono::milliseconds(2000));
  ASSERT_TRUE(sock.ok());
  // A well-framed payload that is not a valid prologue (bad version byte).
  std::string frame;
  PutU32(&frame, 12);
  frame.append(12, '\xee');
  ASSERT_TRUE(WriteAll(*sock, frame).ok());
  std::string payload;
  const Status s =
      ReadFrame(*sock, &payload, kMaxFrameBytes, std::chrono::milliseconds(2000));
  EXPECT_FALSE(s.ok());  // server closed without answering

  // The server as a whole is unaffected.
  auto after = lb.client->Ping();
  ASSERT_TRUE(after.ok());
}

TEST(NetLoopbackTest, OversizedDeclaredLengthDropsConnection) {
  FtsServer::Options options;
  options.max_frame_bytes = 4096;
  Loopback lb(options);
  auto sock = ConnectTcp("127.0.0.1", lb.server.port(),
                         std::chrono::milliseconds(2000));
  ASSERT_TRUE(sock.ok());
  std::string frame;
  PutU32(&frame, 1u << 20);  // declared length far over the 4 KiB bound
  ASSERT_TRUE(WriteAll(*sock, frame).ok());
  std::string payload;
  const Status s =
      ReadFrame(*sock, &payload, kMaxFrameBytes, std::chrono::milliseconds(2000));
  EXPECT_FALSE(s.ok());  // dropped without reading the (never-sent) body
}

TEST(NetLoopbackTest, DisconnectFailsInFlightCalls) {
  Loopback lb;
  // Park requests the single worker won't finish instantly, then sever the
  // connection; every in-flight future must fail closed with Unavailable
  // (not hang, not fabricate a result).
  std::vector<std::future<StatusOr<SearchResponse>>> futures;
  for (int i = 0; i < 8; ++i) {
    SearchRequest req;
    req.query =
        "SOME p1 SOME p2 (p1 HAS 'apple' AND p2 HAS 'banana' AND "
        "NOT samesentence(p1, p2))";
    futures.push_back(lb.client->SearchAsync(std::move(req)));
  }
  lb.client->Disconnect();
  for (auto& f : futures) {
    auto got = f.get();
    if (got.ok()) continue;  // raced ahead of the disconnect — also fine
    EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  }
  // The client reconnects transparently on the next call.
  auto after = lb.client->Search("'apple'");
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->status.ok());
}

TEST(NetLoopbackTest, AdmissionControlShedsUnderPressure) {
  FtsServer::Options options;
  options.admission.enabled = true;
  options.admission.max_cost = 1;
  options.admission.pressure_fraction = 0.0;  // always under pressure
  Loopback lb(options);
  auto got = lb.client->Search("'apple'");  // df(apple) = 3 > max_cost
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->status.code(), StatusCode::kUnavailable);
  EXPECT_NE(got->status.message().find("shed"), std::string::npos);
  // Shedding is a per-query verdict, not a connection error.
  auto ping = lb.client->Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_NE(lb.server.MetricsText().find("fts_queries_shed 1"),
            std::string::npos);
}

TEST(NetLoopbackTest, BinaryMetricsAndPing) {
  FtsServer::Options options;
  options.name = "unit-shard";
  Loopback lb(options);
  auto ping = lb.client->Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->server_name, "unit-shard");
  EXPECT_EQ(ping->num_nodes, 5u);

  ASSERT_TRUE(lb.client->Search("'apple'").ok());
  auto metrics = lb.client->Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->text.find("fts_up 1"), std::string::npos);
  EXPECT_NE(metrics->text.find("fts_queries_completed 1"), std::string::npos);
}

/// Value of the exactly named metric in a /metrics text block, or -1.
int64_t MetricValue(const std::string& text, const std::string& name) {
  const std::string needle = name + " ";
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::stoll(text.substr(pos + needle.size()));
    }
    pos += needle.size();
  }
  return -1;
}

TEST(NetLoopbackTest, MetricsExposeL2CacheMemoryAccounting) {
  // Every query's L1 cache falls through to the service-scope L2, so a
  // served search leaves decoded blocks resident there — and /metrics must
  // report how much memory they hold, per shard and in total.
  Loopback lb;
  ASSERT_TRUE(lb.client->Search("'apple' AND 'banana'").ok());
  ASSERT_TRUE(lb.client->Search("'apple' AND 'banana'").ok());

  auto metrics = lb.client->Metrics();
  ASSERT_TRUE(metrics.ok());
  const std::string& text = metrics->text;
  EXPECT_NE(text.find("fts_eval_pair_seeks"), std::string::npos);
  EXPECT_NE(text.find("fts_eval_pair_entries_decoded"), std::string::npos);

  const int64_t blocks = MetricValue(text, "fts_l2_cache_resident_blocks");
  const int64_t bytes = MetricValue(text, "fts_l2_cache_resident_bytes");
  ASSERT_GT(blocks, 0);
  // Every resident block costs at least its fixed struct size, so the
  // byte gauge must dominate blocks * sizeof-a-small-struct; exact
  // accounting is pinned in shared_block_cache_test.
  EXPECT_GE(bytes, blocks * 64);

  // The per-shard breakdown must be present and sum to the totals.
  int64_t shard_keys = 0;
  int64_t shard_bytes = 0;
  size_t shards = 0;
  for (size_t i = 0;; ++i) {
    const std::string suffix = "{shard=\"" + std::to_string(i) + "\"}";
    const int64_t keys = MetricValue(text, "fts_l2_cache_shard_keys" + suffix);
    if (keys < 0) break;
    const int64_t sb = MetricValue(text, "fts_l2_cache_shard_bytes" + suffix);
    ASSERT_GE(sb, 0) << i;
    shard_keys += keys;
    shard_bytes += sb;
    ++shards;
  }
  EXPECT_GT(shards, 0u);
  EXPECT_EQ(shard_keys, blocks);
  EXPECT_EQ(shard_bytes, bytes);
}

/// Sends one HTTP request on a raw socket and returns the full response.
std::string HttpGet(uint16_t port, const std::string& target) {
  auto sock = ConnectTcp("127.0.0.1", port, std::chrono::milliseconds(2000));
  EXPECT_TRUE(sock.ok());
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  EXPECT_TRUE(WriteAll(*sock, request).ok());
  std::string response;
  char buf[1024];
  while (true) {
    const Status s = ReadFull(*sock, buf, 1, std::chrono::milliseconds(2000));
    if (!s.ok()) break;
    response.push_back(buf[0]);
  }
  return response;
}

TEST(NetLoopbackTest, HttpMetricsAndHealthOnSamePort) {
  Loopback lb;
  ASSERT_TRUE(lb.client->Search("'apple'").ok());

  const std::string health = HttpGet(lb.server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics = HttpGet(lb.server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("fts_up 1"), std::string::npos);
  EXPECT_NE(metrics.find("fts_total_nodes 5"), std::string::npos);

  const std::string missing = HttpGet(lb.server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
}

TEST(NetLoopbackTest, PerRequestCursorModeOverride) {
  // kSequential vs the adaptive default must agree on results; the request
  // override just selects the access pattern.
  Loopback lb;
  auto seq = lb.client->Search("'apple' AND 'banana'", 0,
                               WireCursorMode::kSequential);
  auto dflt = lb.client->Search("'apple' AND 'banana'");
  ASSERT_TRUE(seq.ok() && seq->status.ok());
  ASSERT_TRUE(dflt.ok() && dflt->status.ok());
  EXPECT_EQ(seq->nodes, dflt->nodes);
}

}  // namespace
}  // namespace net
}  // namespace fts
