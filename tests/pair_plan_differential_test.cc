// Differential proof of the pair-index fast path (src/eval/pair_plan.h):
// every phrase/NEAR-shaped query answered through the auxiliary pair
// lists must produce the SAME nodes and the SAME bit-for-bit scores as
// the position pipeline over the classic token lists. The harness runs
// seeded random corpora through targeted pair-shaped queries (both
// predicate spellings, every distance 0..max_distance+2, swapped and
// unswapped key orders, OOV and self-pair shapes) plus the familiar
// random pipelined mix, each combination across all three scoring
// models, all three cursor modes, and both storage modes (heap-built and
// mmap'd v6 twins), with PairRouting::kForce pinned against
// PairRouting::kOff on the same index. Eligible in-window operators must
// actually take the pair path (counters prove it); everything else must
// fall back untouched. Multi-segment snapshots with random tombstones
// pin the same equivalence through the Searcher, and the NPRED engine's
// single-pass hook is pinned directly.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "eval/npred_engine.h"
#include "eval/searcher.h"
#include "exec/exec_context.h"
#include "index/index_builder.h"
#include "index/index_io.h"
#include "index/index_snapshot.h"
#include "index/pair_index.h"
#include "index/tombstone_set.h"
#include "lang/ast.h"
#include "testing/random_workload.h"
#include "text/corpus.h"

namespace fts {
namespace {

constexpr uint32_t kMaxDistance = 4;

constexpr ScoringKind kAllScoring[] = {ScoringKind::kNone, ScoringKind::kTfIdf,
                                       ScoringKind::kProbabilistic};
constexpr CursorMode kAllModes[] = {CursorMode::kSequential, CursorMode::kSeek,
                                    CursorMode::kAdaptive};

IndexBuildOptions PairBuild() {
  IndexBuildOptions options;
  options.pairs.frequent_terms = 3;  // half the 6-token test vocabulary
  options.pairs.max_distance = kMaxDistance;
  return options;
}

/// SOME v0 SOME v1 (v0 HAS a AND v1 HAS b AND pred(v0, v1, k)) — the
/// exact shape the planner recognizes.
LangExprPtr PairQuery(const std::string& a, const std::string& b,
                      const char* pred, int64_t k) {
  LangExprPtr body = LangExpr::And(
      LangExpr::And(LangExpr::VarHasToken("v0", a),
                    LangExpr::VarHasToken("v1", b)),
      LangExpr::Pred(pred, {"v0", "v1"}, {k}));
  return LangExpr::Some("v0", LangExpr::Some("v1", std::move(body)));
}

/// The targeted query mix: every (token pair, predicate, k) corner the
/// planner must either serve from the pair lists or decline cleanly.
struct TargetedQuery {
  LangExprPtr query;
  /// Token texts of the two sides ("" marks shapes that can never route:
  /// self-pairs and OOV tokens).
  std::string a, b;
  int64_t k = 0;
};

std::vector<TargetedQuery> TargetedQueries(Rng* rng) {
  std::vector<TargetedQuery> out;
  for (const char* pred : {"distance", "odistance"}) {
    for (int64_t k = 0; k <= static_cast<int64_t>(kMaxDistance) + 2; ++k) {
      const std::string a = RandomWorkloadToken(rng);
      std::string b = RandomWorkloadToken(rng);
      while (b == a) b = RandomWorkloadToken(rng);
      out.push_back({PairQuery(a, b, pred, k), a, b, k});
    }
  }
  // Shapes that must always fall back to the pipeline, identically.
  out.push_back({PairQuery("a", "a", "distance", 2), "", "", 2});  // self-pair
  out.push_back({PairQuery("a", "zzz", "distance", 2), "", "", 2});  // OOV
  out.push_back({PairQuery("zzz", "qqq", "odistance", 1), "", "", 1});
  return out;
}

/// Evaluates `query` with routing forced and with routing off on the same
/// snapshot and asserts bit-identical results; returns the forced run's
/// pair_seeks so callers can prove the fast path actually fired.
uint64_t ExpectForcedMatchesPipeline(
    const std::shared_ptr<const IndexSnapshot>& snapshot,
    const LangExprPtr& query, ScoringKind scoring, CursorMode mode,
    const char* what) {
  Searcher forced(snapshot, {scoring, mode, PairRouting::kForce});
  Searcher pipeline(snapshot, {scoring, mode, PairRouting::kOff});
  ExecContext forced_ctx;
  ExecContext pipeline_ctx;
  auto got = forced.SearchParsed(query, forced_ctx);
  auto want = pipeline.SearchParsed(query, pipeline_ctx);
  EXPECT_TRUE(got.ok()) << what << ": " << query->ToString() << ": "
                        << got.status().ToString();
  EXPECT_TRUE(want.ok()) << what << ": " << query->ToString() << ": "
                         << want.status().ToString();
  if (!got.ok() || !want.ok()) return 0;
  EXPECT_EQ(got->result.nodes, want->result.nodes)
      << what << ": " << query->ToString();
  // Exact double equality on purpose: the pair evaluator must reproduce
  // the pipeline's scoring arithmetic bit for bit.
  EXPECT_EQ(got->result.scores, want->result.scores)
      << what << ": " << query->ToString();
  EXPECT_EQ(got->engine, want->engine) << what << ": " << query->ToString();
  EXPECT_EQ(want->result.counters.pair_seeks, 0u)
      << what << ": kOff must never touch the pair lists: "
      << query->ToString();
  return got->result.counters.pair_seeks;
}

class PairPlanDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PairPlanDifferential, ForcedRoutingMatchesPipelineBitForBit) {
  Rng rng(GetParam() * 9176 + 5);
  const Corpus corpus = RandomWorkloadCorpus(&rng, 40, 6);
  auto index =
      std::make_shared<InvertedIndex>(IndexBuilder::Build(corpus, PairBuild()));
  ASSERT_NE(index->pair_index(), nullptr);

  // The mmap twin runs the same queries through the v6 load path (lazy
  // first-touch validation, zero-copy payloads).
  const std::string path = ::testing::TempDir() + "/fts_pair_diff_" +
                           std::to_string(GetParam()) + ".idx";
  ASSERT_TRUE(SaveIndexToFile(*index, path).ok());
  LoadOptions mmap_options;
  mmap_options.mode = LoadOptions::Mode::kMmap;
  auto mapped = std::make_shared<InvertedIndex>();
  ASSERT_TRUE(
      LoadIndexFromFile(path, mapped.get(), mmap_options).ok());
  std::remove(path.c_str());
  ASSERT_NE(mapped->pair_index(), nullptr);

  const std::pair<std::shared_ptr<const InvertedIndex>, const char*>
      kStorage[] = {{index, "heap"}, {mapped, "mmap"}};

  std::vector<TargetedQuery> targeted = TargetedQueries(&rng);
  std::vector<LangExprPtr> background;
  for (int i = 0; i < 6; ++i) {
    background.push_back(RandomPipelinedQuery(&rng, /*allow_negative=*/false));
  }
  for (int i = 0; i < 4; ++i) {
    background.push_back(RandomPipelinedQuery(&rng, /*allow_negative=*/true));
  }

  for (const auto& [idx, storage] : kStorage) {
    const PairIndex& pairs = *idx->pair_index();
    auto snapshot = IndexSnapshot::ForIndex(idx.get());
    for (const TargetedQuery& t : targeted) {
      // Routable iff one side is frequent, both are in-vocabulary,
      // distinct, and k is within the stored window. Eligibility includes
      // the provably-empty absent-key case.
      const bool routable =
          !t.a.empty() &&
          pairs.Find(idx->LookupToken(t.a), idx->LookupToken(t.b)).eligible &&
          t.k <= static_cast<int64_t>(kMaxDistance);
      for (ScoringKind scoring : kAllScoring) {
        for (CursorMode mode : kAllModes) {
          const uint64_t pair_seeks = ExpectForcedMatchesPipeline(
              snapshot, t.query, scoring, mode, storage);
          if (routable) {
            EXPECT_GT(pair_seeks, 0u)
                << storage << ": eligible operator skipped the pair path: "
                << t.query->ToString();
          } else {
            EXPECT_EQ(pair_seeks, 0u)
                << storage << ": ineligible operator routed: "
                << t.query->ToString();
          }
        }
      }
    }
    for (const LangExprPtr& q : background) {
      for (ScoringKind scoring : kAllScoring) {
        ExpectForcedMatchesPipeline(snapshot, q, scoring,
                                    CursorMode::kAdaptive, storage);
      }
    }
  }
}

TEST_P(PairPlanDifferential, AdaptiveRoutingMatchesPipelineBitForBit) {
  // kAuto may pick either plan per operator (cost model); whichever it
  // picks must be invisible in the results. Run the full mix under the
  // adaptive planner against the kOff pipeline.
  Rng rng(GetParam() * 40507 + 11);
  const Corpus corpus = RandomWorkloadCorpus(&rng, 40, 6);
  auto index =
      std::make_shared<InvertedIndex>(IndexBuilder::Build(corpus, PairBuild()));
  auto snapshot = IndexSnapshot::ForIndex(index.get());
  std::vector<TargetedQuery> targeted = TargetedQueries(&rng);
  for (const TargetedQuery& t : targeted) {
    for (ScoringKind scoring : kAllScoring) {
      Searcher automatic(snapshot,
                         {scoring, CursorMode::kAdaptive, PairRouting::kAuto});
      Searcher pipeline(snapshot,
                        {scoring, CursorMode::kAdaptive, PairRouting::kOff});
      ExecContext auto_ctx;
      ExecContext pipe_ctx;
      auto got = automatic.SearchParsed(t.query, auto_ctx);
      auto want = pipeline.SearchParsed(t.query, pipe_ctx);
      ASSERT_TRUE(got.ok()) << t.query->ToString();
      ASSERT_TRUE(want.ok()) << t.query->ToString();
      EXPECT_EQ(got->result.nodes, want->result.nodes) << t.query->ToString();
      EXPECT_EQ(got->result.scores, want->result.scores)
          << t.query->ToString();
    }
  }
  // The forced cursor modes pin the position pipeline: kAuto must never
  // route there, keeping their access counts paper-faithful.
  for (CursorMode mode : {CursorMode::kSequential, CursorMode::kSeek}) {
    Searcher searcher(snapshot,
                      {ScoringKind::kNone, mode, PairRouting::kAuto});
    ExecContext ctx;
    auto got = searcher.SearchParsed(targeted[0].query, ctx);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->result.counters.pair_seeks, 0u)
        << "kAuto routed under forced cursor mode";
  }
}

TEST_P(PairPlanDifferential, MultiSegmentSnapshotWithTombstones) {
  // Three pair-carrying segments with random deletes: the routed and
  // pipeline answers must agree per segment and therefore globally, with
  // tombstoned documents filtered out of the pair lists' results exactly
  // as the pipeline's cursors filter them.
  Rng rng(GetParam() * 524287 + 3);
  std::vector<std::shared_ptr<const InvertedIndex>> segments;
  std::vector<std::shared_ptr<const TombstoneSet>> tombstones;
  for (int seg = 0; seg < 3; ++seg) {
    const Corpus part = RandomWorkloadCorpus(&rng, 15, 5);
    segments.push_back(std::make_shared<InvertedIndex>(
        IndexBuilder::Build(part, PairBuild())));
    std::shared_ptr<TombstoneSet> dead;
    for (NodeId n = 0; n < segments.back()->num_nodes(); ++n) {
      if (rng.Bernoulli(0.2)) {
        if (!dead) dead = std::make_shared<TombstoneSet>(
            segments.back()->num_nodes());
        dead->MarkDeleted(n);
      }
    }
    tombstones.push_back(std::move(dead));
  }
  auto snapshot = IndexSnapshot::Create(segments, tombstones, 1);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  uint64_t total_pair_seeks = 0;
  for (const TargetedQuery& t : TargetedQueries(&rng)) {
    for (ScoringKind scoring : kAllScoring) {
      total_pair_seeks += ExpectForcedMatchesPipeline(
          *snapshot, t.query, scoring, CursorMode::kAdaptive, "segments");
    }
  }
  EXPECT_GT(total_pair_seeks, 0u)
      << "no targeted query routed in any segment";
}

TEST_P(PairPlanDifferential, NpredSinglePassHookMatchesPipeline) {
  // The NPRED engine's no-negative-predicates single pass carries the
  // same hook as PPRED; drive it directly (the Searcher would classify
  // these queries as PPRED and never reach it).
  Rng rng(GetParam() * 77 + 1);
  const Corpus corpus = RandomWorkloadCorpus(&rng, 30, 5);
  const InvertedIndex index = IndexBuilder::Build(corpus, PairBuild());
  for (const TargetedQuery& t : TargetedQueries(&rng)) {
    for (ScoringKind scoring : kAllScoring) {
      NpredEngine forced(&index, scoring,
                         NpredOrderingMode::kNecessaryPartialOrders,
                         CursorMode::kAdaptive);
      forced.set_pair_routing(PairRouting::kForce);
      NpredEngine pipeline(&index, scoring,
                           NpredOrderingMode::kNecessaryPartialOrders,
                           CursorMode::kAdaptive);
      pipeline.set_pair_routing(PairRouting::kOff);
      auto got = forced.Evaluate(t.query);
      auto want = pipeline.Evaluate(t.query);
      ASSERT_TRUE(got.ok()) << t.query->ToString() << ": "
                            << got.status().ToString();
      ASSERT_TRUE(want.ok()) << t.query->ToString() << ": "
                             << want.status().ToString();
      EXPECT_EQ(got->nodes, want->nodes) << t.query->ToString();
      EXPECT_EQ(got->scores, want->scores) << t.query->ToString();
      EXPECT_EQ(got->counters.orderings_run, want->counters.orderings_run)
          << t.query->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairPlanDifferential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace fts
