#include "common/varint.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/varint_simd.h"

namespace fts {
namespace {

TEST(VarintTest, EncodesSmallValuesInOneByte) {
  for (uint64_t v : {0ULL, 1ULL, 42ULL, 127ULL}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), 1u) << v;
    size_t off = 0;
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf, &off, &got).ok());
    EXPECT_EQ(got, v);
    EXPECT_EQ(off, buf.size());
  }
}

TEST(VarintTest, RoundTripsBoundaryValues) {
  const uint64_t values[] = {128,
                             16383,
                             16384,
                             (1ULL << 32) - 1,
                             1ULL << 32,
                             (1ULL << 63),
                             ~0ULL};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  size_t off = 0;
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf, &off, &got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(off, buf.size());
}

TEST(VarintTest, RandomRoundTrip) {
  Rng rng(7);
  std::vector<uint64_t> values;
  std::string buf;
  for (int i = 0; i < 1000; ++i) {
    // Mix magnitudes so all byte lengths occur.
    uint64_t v = rng.Next() >> (rng.Uniform(64));
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  size_t off = 0;
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf, &off, &got).ok());
    EXPECT_EQ(got, v);
  }
}

TEST(VarintTest, TruncatedInputIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  buf.resize(buf.size() - 1);
  size_t off = 0;
  uint64_t got = 0;
  Status s = GetVarint64(buf, &off, &got);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(VarintTest, OverlongEncodingIsCorruption) {
  std::string buf(11, '\x80');  // continuation bits forever
  size_t off = 0;
  uint64_t got = 0;
  EXPECT_EQ(GetVarint64(buf, &off, &got).code(), StatusCode::kCorruption);
}

TEST(VarintTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  size_t off = 0;
  uint32_t got = 0;
  EXPECT_EQ(GetVarint32(buf, &off, &got).code(), StatusCode::kCorruption);
}

TEST(VarintTest, Varint32RoundTrip) {
  std::string buf;
  PutVarint32(&buf, 0xFFFFFFFFu);
  size_t off = 0;
  uint32_t got = 0;
  ASSERT_TRUE(GetVarint32(buf, &off, &got).ok());
  EXPECT_EQ(got, 0xFFFFFFFFu);
}

// ---------------------------------------------------------------------------
// Pointer-based hot-path decoders (the bulk block-decode primitives).
// ---------------------------------------------------------------------------

const uint8_t* Bytes(const std::string& s) {
  return reinterpret_cast<const uint8_t*>(s.data());
}

TEST(VarintPtrTest, MatchesSlowDecoderOnAllWidths) {
  const uint32_t values[] = {0,       1,          127,        128,
                             16383,   16384,      2097151,    2097152,
                             1u << 28, (1u << 28) - 1, 0xFFFFFFFFu};
  std::string buf;
  for (uint32_t v : values) PutVarint32(&buf, v);
  const uint8_t* p = Bytes(buf);
  const uint8_t* limit = p + buf.size();
  for (uint32_t v : values) {
    uint32_t got = 0;
    p = GetVarint32Ptr(p, limit, &got);
    ASSERT_NE(p, nullptr) << v;
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(p, limit);
}

TEST(VarintPtrTest, TruncationIsNull) {
  std::string buf;
  PutVarint32(&buf, 1u << 20);  // 3-byte encoding
  for (size_t len = 0; len < buf.size(); ++len) {
    uint32_t got = 0;
    EXPECT_EQ(GetVarint32Ptr(Bytes(buf), Bytes(buf) + len, &got), nullptr)
        << len;
  }
}

TEST(VarintPtrTest, OverflowPast32BitsIsNull) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 35);  // needs >5 bytes as varint
  uint32_t got = 0;
  EXPECT_EQ(GetVarint32Ptr(Bytes(buf), Bytes(buf) + buf.size(), &got), nullptr);
  // Overlong fifth byte with payload bits above bit 31.
  std::string high("\x80\x80\x80\x80\x7f", 5);
  EXPECT_EQ(GetVarint32Ptr(Bytes(high), Bytes(high) + high.size(), &got),
            nullptr);
}

TEST(VarintGroupTest, RandomRoundTripAgainstScalarDecoder) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.Uniform(300);
    std::vector<uint32_t> values;
    std::string buf;
    for (size_t i = 0; i < n; ++i) {
      // Mix widths so the unrolled fast loop sees every byte length.
      const uint32_t v = static_cast<uint32_t>(rng.Next() >> (rng.Uniform(32)));
      values.push_back(v);
      PutVarint32(&buf, v);
    }
    std::vector<uint32_t> got(n, 0);
    const uint8_t* end =
        GetVarint32Group(Bytes(buf), Bytes(buf) + buf.size(), got.data(), n);
    ASSERT_NE(end, nullptr);
    EXPECT_EQ(end, Bytes(buf) + buf.size());
    EXPECT_EQ(got, values);
  }
}

TEST(VarintGroupTest, TruncatedGroupIsNull) {
  std::string buf;
  for (int i = 0; i < 16; ++i) PutVarint32(&buf, 1000 + i);  // 2 bytes each
  std::vector<uint32_t> got(16, 0);
  for (size_t len = 0; len < buf.size(); ++len) {
    EXPECT_EQ(GetVarint32Group(Bytes(buf), Bytes(buf) + len, got.data(), 16),
              nullptr)
        << len;
  }
}

TEST(VarintGroupTest, OverflowInsideFastLoopIsNull) {
  // 20 values so the 4-wide unchecked loop is active, with an overflowing
  // 5-byte encoding in the middle.
  std::string buf;
  for (int i = 0; i < 10; ++i) PutVarint32(&buf, 1);
  buf.append("\x80\x80\x80\x80\x7f", 5);
  for (int i = 0; i < 10; ++i) PutVarint32(&buf, 1);
  std::vector<uint32_t> got(21, 0);
  EXPECT_EQ(GetVarint32Group(Bytes(buf), Bytes(buf) + buf.size(), got.data(), 21),
            nullptr);
}

// ---------------------------------------------------------------------------
// SIMD arms: every kernel must accept and reject exactly what the scalar
// GetVarint32Group does, byte for byte. The differentials run each arm the
// machine supports; on a non-SIMD machine they reduce to scalar-vs-scalar.
// ---------------------------------------------------------------------------

using GroupFn = const uint8_t* (*)(const uint8_t*, const uint8_t*, uint32_t*,
                                   size_t);

std::vector<std::pair<const char*, GroupFn>> SupportedArms() {
  std::vector<std::pair<const char*, GroupFn>> arms;
  if (CpuSupportsSsse3()) arms.emplace_back("ssse3", &GetVarint32GroupSsse3);
  if (CpuSupportsAvx2()) arms.emplace_back("avx2", &GetVarint32GroupAvx2);
  return arms;
}

// Runs scalar and `fn` over the same input and requires identical outcomes:
// same success/failure, same end pointer, same decoded values.
void ExpectSameAsScalar(const char* arm, GroupFn fn, const std::string& buf,
                        size_t count) {
  const uint8_t* base = Bytes(buf);
  std::vector<uint32_t> scalar_out(count + 1, 0xDEADBEEF);
  std::vector<uint32_t> simd_out(count + 1, 0xDEADBEEF);
  const uint8_t* scalar_end =
      GetVarint32Group(base, base + buf.size(), scalar_out.data(), count);
  const uint8_t* simd_end = fn(base, base + buf.size(), simd_out.data(), count);
  ASSERT_EQ(scalar_end == nullptr, simd_end == nullptr)
      << arm << " count=" << count << " size=" << buf.size();
  if (scalar_end == nullptr) return;
  EXPECT_EQ(simd_end, scalar_end) << arm;
  EXPECT_EQ(simd_out, scalar_out) << arm;
}

TEST(VarintSimdTest, RandomGroupsMatchScalarOnEveryArm) {
  Rng rng(97);
  for (const auto& [name, fn] : SupportedArms()) {
    for (int trial = 0; trial < 200; ++trial) {
      const size_t n = 1 + rng.Uniform(200);
      std::string buf;
      for (size_t i = 0; i < n; ++i) {
        // Shift mixes all 1..5-byte widths, with runs of short varints so
        // the 16-byte lane path and the scalar fallbacks both fire.
        PutVarint32(&buf,
                    static_cast<uint32_t>(rng.Next() >> (rng.Uniform(32))));
      }
      ExpectSameAsScalar(name, fn, buf, n);
    }
  }
}

TEST(VarintSimdTest, AllOneByteRunsMatchScalar) {
  // Exercises the AVX2 32-lane all-one-byte fast path and the SSSE3 full
  // 8-lane shuffle with zero continuation bits.
  for (const auto& [name, fn] : SupportedArms()) {
    for (size_t n : {1u, 7u, 8u, 9u, 31u, 32u, 33u, 100u}) {
      std::string buf;
      for (size_t i = 0; i < n; ++i) {
        PutVarint32(&buf, static_cast<uint32_t>(i % 128));
      }
      ExpectSameAsScalar(name, fn, buf, n);
    }
  }
}

TEST(VarintSimdTest, TruncationAtEveryPrefixRejectsOnEveryArm) {
  // Same 16x2-byte group as the scalar truncation test: every proper
  // prefix must be rejected by every arm, not just the scalar decoder.
  std::string buf;
  for (int i = 0; i < 16; ++i) PutVarint32(&buf, 1000 + i);
  for (const auto& [name, fn] : SupportedArms()) {
    for (size_t len = 0; len < buf.size(); ++len) {
      std::vector<uint32_t> got(16, 0);
      EXPECT_EQ(fn(Bytes(buf), Bytes(buf) + len, got.data(), 16), nullptr)
          << name << " len=" << len;
    }
  }
}

TEST(VarintSimdTest, FiveByteOverflowCasesRejectOnEveryArm) {
  // The two distinct 5-byte rejection conditions of the scalar decoder:
  // a continuation bit on the fifth byte, and a final byte above 0x0F
  // (value past 2^32). Embedded mid-group so the SIMD lanes carry real
  // work up to the bad varint.
  const std::string bad_cont("\x80\x80\x80\x80\x80\x01", 6);
  const std::string bad_high("\x80\x80\x80\x80\x10", 5);
  for (const auto& [name, fn] : SupportedArms()) {
    for (const std::string& bad : {bad_cont, bad_high}) {
      std::string buf;
      for (int i = 0; i < 10; ++i) PutVarint32(&buf, 3);
      buf += bad;
      for (int i = 0; i < 10; ++i) PutVarint32(&buf, 3);
      std::vector<uint32_t> got(21, 0);
      EXPECT_EQ(fn(Bytes(buf), Bytes(buf) + buf.size(), got.data(), 21),
                nullptr)
          << name;
      ExpectSameAsScalar(name, fn, buf, 21);
    }
  }
}

TEST(VarintSimdTest, FourthByteHighBitFiveByteFormsRejected) {
  // Explicitly: a 5-byte varint whose 5th byte has the high (continuation)
  // bit set is malformed even when the low bits would decode to a small
  // value — the SIMD fallback must not strip the check the scalar decoder
  // performs.
  const std::string malformed("\x80\x80\x80\x80\x81", 5);  // cont bit on byte 5
  std::vector<uint32_t> got(1, 0);
  EXPECT_EQ(GetVarint32Group(Bytes(malformed), Bytes(malformed) + 5,
                             got.data(), 1),
            nullptr);
  for (const auto& [name, fn] : SupportedArms()) {
    EXPECT_EQ(fn(Bytes(malformed), Bytes(malformed) + 5, got.data(), 1),
              nullptr)
        << name;
  }
}

TEST(VarintSimdTest, MaxValuesRoundTripOnEveryArm) {
  for (const auto& [name, fn] : SupportedArms()) {
    std::string buf;
    const std::vector<uint32_t> values = {0xFFFFFFFFu, 0, 0x7F, 0x80,
                                          0x3FFF,      0x4000, 0x1FFFFF,
                                          0x200000,    0xFFFFFFF, 0x10000000};
    for (uint32_t v : values) PutVarint32(&buf, v);
    std::vector<uint32_t> got(values.size(), 0);
    const uint8_t* end =
        fn(Bytes(buf), Bytes(buf) + buf.size(), got.data(), values.size());
    ASSERT_NE(end, nullptr) << name;
    EXPECT_EQ(end, Bytes(buf) + buf.size()) << name;
    EXPECT_EQ(got, values) << name;
  }
}

TEST(VarintSimdTest, AutoDispatchMatchesScalar) {
  // Whatever arm the process resolved, GetVarint32GroupAuto must agree
  // with the scalar decoder on a mixed-width workload.
  Rng rng(1234);
  std::string buf;
  const size_t n = 500;
  std::vector<uint32_t> values;
  for (size_t i = 0; i < n; ++i) {
    values.push_back(static_cast<uint32_t>(rng.Next() >> (rng.Uniform(32))));
    PutVarint32(&buf, values.back());
  }
  std::vector<uint32_t> got(n, 0);
  const uint8_t* end =
      GetVarint32GroupAuto(Bytes(buf), Bytes(buf) + buf.size(), got.data(), n);
  ASSERT_NE(end, nullptr);
  EXPECT_EQ(end, Bytes(buf) + buf.size());
  EXPECT_EQ(got, values);
  // And the resolved arm is consistent with what the CPU offers.
  const DecodeArm arm = ActiveDecodeArm();
  if (arm == DecodeArm::kAvx2) EXPECT_TRUE(CpuSupportsAvx2());
  if (arm == DecodeArm::kSsse3) EXPECT_TRUE(CpuSupportsSsse3());
  EXPECT_NE(DecodeArmName(arm), nullptr);
}

}  // namespace
}  // namespace fts
