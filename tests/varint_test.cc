#include "common/varint.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fts {
namespace {

TEST(VarintTest, EncodesSmallValuesInOneByte) {
  for (uint64_t v : {0ULL, 1ULL, 42ULL, 127ULL}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), 1u) << v;
    size_t off = 0;
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf, &off, &got).ok());
    EXPECT_EQ(got, v);
    EXPECT_EQ(off, buf.size());
  }
}

TEST(VarintTest, RoundTripsBoundaryValues) {
  const uint64_t values[] = {128,
                             16383,
                             16384,
                             (1ULL << 32) - 1,
                             1ULL << 32,
                             (1ULL << 63),
                             ~0ULL};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  size_t off = 0;
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf, &off, &got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(off, buf.size());
}

TEST(VarintTest, RandomRoundTrip) {
  Rng rng(7);
  std::vector<uint64_t> values;
  std::string buf;
  for (int i = 0; i < 1000; ++i) {
    // Mix magnitudes so all byte lengths occur.
    uint64_t v = rng.Next() >> (rng.Uniform(64));
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  size_t off = 0;
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf, &off, &got).ok());
    EXPECT_EQ(got, v);
  }
}

TEST(VarintTest, TruncatedInputIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  buf.resize(buf.size() - 1);
  size_t off = 0;
  uint64_t got = 0;
  Status s = GetVarint64(buf, &off, &got);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(VarintTest, OverlongEncodingIsCorruption) {
  std::string buf(11, '\x80');  // continuation bits forever
  size_t off = 0;
  uint64_t got = 0;
  EXPECT_EQ(GetVarint64(buf, &off, &got).code(), StatusCode::kCorruption);
}

TEST(VarintTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  size_t off = 0;
  uint32_t got = 0;
  EXPECT_EQ(GetVarint32(buf, &off, &got).code(), StatusCode::kCorruption);
}

TEST(VarintTest, Varint32RoundTrip) {
  std::string buf;
  PutVarint32(&buf, 0xFFFFFFFFu);
  size_t off = 0;
  uint32_t got = 0;
  ASSERT_TRUE(GetVarint32(buf, &off, &got).ok());
  EXPECT_EQ(got, 0xFFFFFFFFu);
}

}  // namespace
}  // namespace fts
