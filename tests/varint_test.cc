#include "common/varint.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace fts {
namespace {

TEST(VarintTest, EncodesSmallValuesInOneByte) {
  for (uint64_t v : {0ULL, 1ULL, 42ULL, 127ULL}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), 1u) << v;
    size_t off = 0;
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf, &off, &got).ok());
    EXPECT_EQ(got, v);
    EXPECT_EQ(off, buf.size());
  }
}

TEST(VarintTest, RoundTripsBoundaryValues) {
  const uint64_t values[] = {128,
                             16383,
                             16384,
                             (1ULL << 32) - 1,
                             1ULL << 32,
                             (1ULL << 63),
                             ~0ULL};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  size_t off = 0;
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf, &off, &got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(off, buf.size());
}

TEST(VarintTest, RandomRoundTrip) {
  Rng rng(7);
  std::vector<uint64_t> values;
  std::string buf;
  for (int i = 0; i < 1000; ++i) {
    // Mix magnitudes so all byte lengths occur.
    uint64_t v = rng.Next() >> (rng.Uniform(64));
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  size_t off = 0;
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf, &off, &got).ok());
    EXPECT_EQ(got, v);
  }
}

TEST(VarintTest, TruncatedInputIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  buf.resize(buf.size() - 1);
  size_t off = 0;
  uint64_t got = 0;
  Status s = GetVarint64(buf, &off, &got);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(VarintTest, OverlongEncodingIsCorruption) {
  std::string buf(11, '\x80');  // continuation bits forever
  size_t off = 0;
  uint64_t got = 0;
  EXPECT_EQ(GetVarint64(buf, &off, &got).code(), StatusCode::kCorruption);
}

TEST(VarintTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  size_t off = 0;
  uint32_t got = 0;
  EXPECT_EQ(GetVarint32(buf, &off, &got).code(), StatusCode::kCorruption);
}

TEST(VarintTest, Varint32RoundTrip) {
  std::string buf;
  PutVarint32(&buf, 0xFFFFFFFFu);
  size_t off = 0;
  uint32_t got = 0;
  ASSERT_TRUE(GetVarint32(buf, &off, &got).ok());
  EXPECT_EQ(got, 0xFFFFFFFFu);
}

// ---------------------------------------------------------------------------
// Pointer-based hot-path decoders (the bulk block-decode primitives).
// ---------------------------------------------------------------------------

const uint8_t* Bytes(const std::string& s) {
  return reinterpret_cast<const uint8_t*>(s.data());
}

TEST(VarintPtrTest, MatchesSlowDecoderOnAllWidths) {
  const uint32_t values[] = {0,       1,          127,        128,
                             16383,   16384,      2097151,    2097152,
                             1u << 28, (1u << 28) - 1, 0xFFFFFFFFu};
  std::string buf;
  for (uint32_t v : values) PutVarint32(&buf, v);
  const uint8_t* p = Bytes(buf);
  const uint8_t* limit = p + buf.size();
  for (uint32_t v : values) {
    uint32_t got = 0;
    p = GetVarint32Ptr(p, limit, &got);
    ASSERT_NE(p, nullptr) << v;
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(p, limit);
}

TEST(VarintPtrTest, TruncationIsNull) {
  std::string buf;
  PutVarint32(&buf, 1u << 20);  // 3-byte encoding
  for (size_t len = 0; len < buf.size(); ++len) {
    uint32_t got = 0;
    EXPECT_EQ(GetVarint32Ptr(Bytes(buf), Bytes(buf) + len, &got), nullptr)
        << len;
  }
}

TEST(VarintPtrTest, OverflowPast32BitsIsNull) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 35);  // needs >5 bytes as varint
  uint32_t got = 0;
  EXPECT_EQ(GetVarint32Ptr(Bytes(buf), Bytes(buf) + buf.size(), &got), nullptr);
  // Overlong fifth byte with payload bits above bit 31.
  std::string high("\x80\x80\x80\x80\x7f", 5);
  EXPECT_EQ(GetVarint32Ptr(Bytes(high), Bytes(high) + high.size(), &got),
            nullptr);
}

TEST(VarintGroupTest, RandomRoundTripAgainstScalarDecoder) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.Uniform(300);
    std::vector<uint32_t> values;
    std::string buf;
    for (size_t i = 0; i < n; ++i) {
      // Mix widths so the unrolled fast loop sees every byte length.
      const uint32_t v = static_cast<uint32_t>(rng.Next() >> (rng.Uniform(32)));
      values.push_back(v);
      PutVarint32(&buf, v);
    }
    std::vector<uint32_t> got(n, 0);
    const uint8_t* end =
        GetVarint32Group(Bytes(buf), Bytes(buf) + buf.size(), got.data(), n);
    ASSERT_NE(end, nullptr);
    EXPECT_EQ(end, Bytes(buf) + buf.size());
    EXPECT_EQ(got, values);
  }
}

TEST(VarintGroupTest, TruncatedGroupIsNull) {
  std::string buf;
  for (int i = 0; i < 16; ++i) PutVarint32(&buf, 1000 + i);  // 2 bytes each
  std::vector<uint32_t> got(16, 0);
  for (size_t len = 0; len < buf.size(); ++len) {
    EXPECT_EQ(GetVarint32Group(Bytes(buf), Bytes(buf) + len, got.data(), 16),
              nullptr)
        << len;
  }
}

TEST(VarintGroupTest, OverflowInsideFastLoopIsNull) {
  // 20 values so the 4-wide unchecked loop is active, with an overflowing
  // 5-byte encoding in the middle.
  std::string buf;
  for (int i = 0; i < 10; ++i) PutVarint32(&buf, 1);
  buf.append("\x80\x80\x80\x80\x7f", 5);
  for (int i = 0; i < 10; ++i) PutVarint32(&buf, 1);
  std::vector<uint32_t> got(21, 0);
  EXPECT_EQ(GetVarint32Group(Bytes(buf), Bytes(buf) + buf.size(), got.data(), 21),
            nullptr);
}

}  // namespace
}  // namespace fts
