#include "algebra/relation.h"

#include <gtest/gtest.h>

namespace fts {
namespace {

FtTuple T(NodeId n, std::vector<uint32_t> offsets, double score = 0) {
  FtTuple t;
  t.node = n;
  for (uint32_t o : offsets) t.positions.push_back(PositionInfo{o, 0, 0});
  t.score = score;
  return t;
}

TEST(RelationTest, TupleOrdering) {
  EXPECT_TRUE(TupleLess(T(1, {5}), T(2, {1})));
  EXPECT_TRUE(TupleLess(T(1, {1, 9}), T(1, {2, 1})));
  EXPECT_TRUE(TupleLess(T(1, {1, 2}), T(1, {1, 3})));
  EXPECT_FALSE(TupleLess(T(1, {1, 3}), T(1, {1, 2})));
  EXPECT_FALSE(TupleLess(T(1, {1}), T(1, {1})));
}

TEST(RelationTest, TupleEquality) {
  EXPECT_TRUE(TupleEq(T(1, {2, 3}), T(1, {2, 3})));
  EXPECT_FALSE(TupleEq(T(1, {2, 3}), T(1, {2, 4})));
  EXPECT_FALSE(TupleEq(T(1, {2}), T(2, {2})));
}

TEST(RelationTest, NormalizeSortsAndDeduplicates) {
  FtRelation r(1);
  r.Add(T(2, {1}));
  r.Add(T(1, {5}));
  r.Add(T(2, {1}));
  r.Add(T(1, {2}));
  r.Normalize();
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.tuple(0).node, 1u);
  EXPECT_EQ(r.tuple(0).positions[0].offset, 2u);
  EXPECT_EQ(r.tuple(1).positions[0].offset, 5u);
  EXPECT_EQ(r.tuple(2).node, 2u);
}

TEST(RelationTest, NormalizeCombinesDuplicateScores) {
  FtRelation r(1);
  r.Add(T(1, {1}, 0.25));
  r.Add(T(1, {1}, 0.5));
  auto sum = [](void*, double a, double b) { return a + b; };
  r.Normalize(sum, nullptr);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r.tuple(0).score, 0.75);
}

TEST(RelationTest, NormalizeWithoutCombinerKeepsFirstScore) {
  FtRelation r(1);
  r.Add(T(1, {1}, 0.25));
  r.Add(T(1, {1}, 0.5));
  r.Normalize();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r.tuple(0).score, 0.25);
}

TEST(RelationTest, NodesCollapsesDuplicates) {
  FtRelation r(1);
  r.Add(T(1, {1}));
  r.Add(T(1, {4}));
  r.Add(T(3, {2}));
  r.Normalize();
  EXPECT_EQ(r.Nodes(), (std::vector<NodeId>{1, 3}));
}

TEST(RelationTest, ZeroColumnRelation) {
  FtRelation r(0);
  r.Add(T(2, {}));
  r.Add(T(2, {}));
  r.Add(T(1, {}));
  r.Normalize();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.Nodes(), (std::vector<NodeId>{1, 2}));
}

TEST(RelationTest, ToStringFormat) {
  FtRelation r(2);
  r.Add(T(3, {5, 9}));
  EXPECT_EQ(r.ToString(), "{(3;5,9)}");
}

}  // namespace
}  // namespace fts
