#include "eval/pos_cursor.h"

#include <gtest/gtest.h>

#include "compile/ftc_to_fta.h"
#include "eval/ppred_engine.h"
#include "index/block_posting_list.h"
#include "index/index_builder.h"
#include "lang/parser.h"
#include "lang/translate.h"
#include "text/corpus.h"

namespace fts {
namespace {

const PositionPredicate* Get(const std::string& name) {
  return PredicateRegistry::Default().Find(name);
}

struct PipelineFixture : public ::testing::Test {
  void SetUp() override {
    // Mirrors the paper's Figure 2 shape: "usability" and "software" lists.
    corpus.AddDocument(
        "usability x x x x x x x x x x x usability x x x x x x x x x x x x x "
        "x x x x x x x x x x x x x usability software x x x x x x x x x "
        "software x x software");                       // 0
    corpus.AddDocument("software only here");           // 1
    corpus.AddDocument("usability software adjacent");  // 2
    index = IndexBuilder::Build(corpus);
  }

  std::unique_ptr<PosCursor> Build(const FtaExprPtr& plan, EvalCounters* c) {
    PipelineContext ctx{&index, nullptr, c};
    auto cursor = BuildPipeline(plan, ctx);
    EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
    return cursor.ok() ? std::move(*cursor) : nullptr;
  }

  Corpus corpus;
  InvertedIndex index;
};

TEST_F(PipelineFixture, ScanCursorWalksEntries) {
  EvalCounters c;
  auto cursor = Build(FtaExpr::Token("usability"), &c);
  ASSERT_NE(cursor, nullptr);
  EXPECT_EQ(cursor->AdvanceNode(), 0u);
  EXPECT_EQ(cursor->position(0).offset, 0u);
  EXPECT_TRUE(cursor->AdvancePosition(0, 5));
  EXPECT_EQ(cursor->position(0).offset, 12u);
  EXPECT_FALSE(cursor->AdvancePosition(0, 1000));
  EXPECT_EQ(cursor->AdvanceNode(), 2u);
  EXPECT_EQ(cursor->AdvanceNode(), kInvalidNode);
}

TEST_F(PipelineFixture, JoinCursorMergesNodes) {
  auto plan = FtaExpr::Join(FtaExpr::Token("usability"), FtaExpr::Token("software"));
  EvalCounters c;
  auto cursor = Build(plan, &c);
  ASSERT_NE(cursor, nullptr);
  EXPECT_EQ(cursor->num_cols(), 2u);
  EXPECT_EQ(cursor->AdvanceNode(), 0u);
  EXPECT_EQ(cursor->position(0).offset, 0u);   // first usability
  EXPECT_EQ(cursor->position(1).offset, 40u);  // first software
  EXPECT_EQ(cursor->AdvanceNode(), 2u);
  EXPECT_EQ(cursor->AdvanceNode(), kInvalidNode);
}

TEST_F(PipelineFixture, SelectSkipsViaAdvanceBounds) {
  // The Section 5.5.1 walkthrough: distance(usability, software, 5) on a
  // node whose lists only meet near the end — found without enumerating
  // the cartesian product.
  auto join = FtaExpr::Join(FtaExpr::Token("usability"), FtaExpr::Token("software"));
  AlgebraPredicateCall call;
  call.pred = Get("distance");
  call.cols = {0, 1};
  call.consts = {5};
  auto sel = FtaExpr::Select(join, call);
  ASSERT_TRUE(sel.ok());
  EvalCounters c;
  auto cursor = Build(*sel, &c);
  ASSERT_NE(cursor, nullptr);
  EXPECT_EQ(cursor->AdvanceNode(), 0u);
  EXPECT_EQ(cursor->position(0).offset, 39u);  // third usability
  EXPECT_EQ(cursor->position(1).offset, 40u);  // adjacent software
  // Linear scan: each position is consumed at most once.
  EXPECT_LE(c.positions_scanned, 3u + 3u);
  EXPECT_EQ(cursor->AdvanceNode(), 2u);
  EXPECT_EQ(cursor->AdvanceNode(), kInvalidNode);
}

TEST_F(PipelineFixture, SelectFiltersWholeNodes) {
  auto join = FtaExpr::Join(FtaExpr::Token("usability"), FtaExpr::Token("software"));
  AlgebraPredicateCall call;
  call.pred = Get("odistance");
  call.cols = {1, 0};  // software before usability, adjacent
  call.consts = {0};
  auto sel = FtaExpr::Select(join, call);
  ASSERT_TRUE(sel.ok());
  EvalCounters c;
  auto cursor = Build(*sel, &c);
  ASSERT_NE(cursor, nullptr);
  // Node 0: software@39 then usability? no usability after 39 adjacent; the
  // only satisfying arrangement would be software immediately before
  // usability, which never happens.
  EXPECT_EQ(cursor->AdvanceNode(), kInvalidNode);
}

TEST_F(PipelineFixture, UnsupportedPlansAreRejected) {
  PipelineContext ctx{&index, nullptr, nullptr};
  EXPECT_EQ(BuildPipeline(FtaExpr::HasPos(), ctx).status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(BuildPipeline(FtaExpr::SearchContext(), ctx).status().code(),
            StatusCode::kUnsupported);
}

// End-to-end engine checks.
struct PpredEngineFixture : public ::testing::Test {
  void SetUp() override {
    corpus.AddDocument("alpha beta gamma");                 // 0
    corpus.AddDocument("beta x x x x x x alpha");           // 1
    corpus.AddDocument("gamma only");                       // 2
    corpus.AddDocument("alpha beta alpha beta");            // 3
    index = IndexBuilder::Build(corpus);
  }

  std::vector<NodeId> Run(const std::string& query) {
    PpredEngine engine(&index, ScoringKind::kNone);
    auto parsed = ParseQuery(query, SurfaceLanguage::kComp);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto result = engine.Evaluate(*parsed);
    EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
    return result.ok() ? result->nodes : std::vector<NodeId>{};
  }

  Corpus corpus;
  InvertedIndex index;
};

TEST_F(PpredEngineFixture, ConjunctionOfTokens) {
  EXPECT_EQ(Run("'alpha' AND 'beta'"), (std::vector<NodeId>{0, 1, 3}));
}

TEST_F(PpredEngineFixture, OrderedDistance) {
  EXPECT_EQ(Run("SOME p SOME q (p HAS 'alpha' AND q HAS 'beta' AND "
                "odistance(p, q, 0))"),
            (std::vector<NodeId>{0, 3}));
}

TEST_F(PpredEngineFixture, DistSugar) {
  EXPECT_EQ(Run("dist('alpha', 'beta', 10)"), (std::vector<NodeId>{0, 1, 3}));
  EXPECT_EQ(Run("dist('alpha', 'beta', 2)"), (std::vector<NodeId>{0, 3}));
}

TEST_F(PpredEngineFixture, AndNotClosedSubquery) {
  EXPECT_EQ(Run("'beta' AND NOT 'gamma'"), (std::vector<NodeId>{1, 3}));
}

TEST_F(PpredEngineFixture, OrWithSharedVariable) {
  EXPECT_EQ(Run("SOME p ((p HAS 'alpha' OR p HAS 'gamma') AND "
                "SOME q (q HAS 'beta' AND distance(p, q, 0)))"),
            (std::vector<NodeId>{0, 3}));
}

TEST_F(PpredEngineFixture, WindowPredicate) {
  EXPECT_EQ(Run("SOME p SOME q SOME r (p HAS 'alpha' AND q HAS 'beta' AND "
                "r HAS 'gamma' AND window(p, q, r, 2))"),
            (std::vector<NodeId>{0}));
}

TEST_F(PpredEngineFixture, SameParagraphAndSentencePredicates) {
  Corpus structured;
  structured.AddDocument("alpha beta. gamma delta.\n\nepsilon zeta");
  InvertedIndex idx = IndexBuilder::Build(structured);
  PpredEngine engine(&idx, ScoringKind::kNone);
  auto run = [&](const std::string& q) {
    auto parsed = ParseQuery(q, SurfaceLanguage::kComp);
    EXPECT_TRUE(parsed.ok());
    auto result = engine.Evaluate(*parsed);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->nodes : std::vector<NodeId>{};
  };
  EXPECT_EQ(run("SOME p SOME q (p HAS 'alpha' AND q HAS 'beta' AND "
                "samesentence(p, q))"),
            (std::vector<NodeId>{0}));
  EXPECT_EQ(run("SOME p SOME q (p HAS 'alpha' AND q HAS 'gamma' AND "
                "samesentence(p, q))"),
            (std::vector<NodeId>{}));
  EXPECT_EQ(run("SOME p SOME q (p HAS 'alpha' AND q HAS 'delta' AND "
                "samepara(p, q))"),
            (std::vector<NodeId>{0}));
  EXPECT_EQ(run("SOME p SOME q (p HAS 'alpha' AND q HAS 'zeta' AND "
                "samepara(p, q))"),
            (std::vector<NodeId>{}));
}

TEST_F(PpredEngineFixture, RejectsNegativePredicates) {
  PpredEngine engine(&index, ScoringKind::kNone);
  auto parsed = ParseQuery(
      "SOME p SOME q (p HAS 'alpha' AND q HAS 'beta' AND not_ordered(p, q))",
      SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  auto result = engine.Evaluate(*parsed);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST_F(PpredEngineFixture, LinearScanGuarantee) {
  // Every inverted-list position is consumed at most once: positions read
  // never exceed the total positions of the query tokens' lists.
  PpredEngine engine(&index, ScoringKind::kNone);
  auto parsed = ParseQuery(
      "SOME p SOME q (p HAS 'alpha' AND q HAS 'beta' AND distance(p, q, 1))",
      SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  auto result = engine.Evaluate(*parsed);
  ASSERT_TRUE(result.ok());
  const size_t total = index.block_list_for_text("alpha")->total_positions() +
                       index.block_list_for_text("beta")->total_positions();
  EXPECT_LE(result->counters.positions_scanned, total);
}

}  // namespace
}  // namespace fts
