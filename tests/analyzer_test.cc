#include "text/analyzer.h"

#include <gtest/gtest.h>

#include "eval/router.h"
#include "index/index_builder.h"
#include "lang/parser.h"
#include "text/corpus.h"

namespace fts {
namespace {

TEST(StemmerTest, Plurals) {
  EXPECT_EQ(Stemmer::Stem("cats"), "cat");
  EXPECT_EQ(Stemmer::Stem("caresses"), "caress");
  EXPECT_EQ(Stemmer::Stem("ponies"), "poni");
  EXPECT_EQ(Stemmer::Stem("caress"), "caress");
}

TEST(StemmerTest, EdAndIng) {
  EXPECT_EQ(Stemmer::Stem("hopping"), "hop");
  EXPECT_EQ(Stemmer::Stem("hoping"), "hop");
  EXPECT_EQ(Stemmer::Stem("related"), "relat");
  EXPECT_EQ(Stemmer::Stem("searching"), "search");
  EXPECT_EQ(Stemmer::Stem("indexed"), "index");
}

TEST(StemmerTest, DerivationalSuffixes) {
  // Final-e stripping (step 5a) runs after the suffix table, so -ate/-ize
  // families land on their e-less stems, as in Porter's output.
  EXPECT_EQ(Stemmer::Stem("relational"), "relat");
  EXPECT_EQ(Stemmer::Stem("optimization"), "optimiz");
  EXPECT_EQ(Stemmer::Stem("usefulness"), "useful");
  EXPECT_EQ(Stemmer::Stem("government"), "govern");
}

TEST(StemmerTest, ShortWordsUntouched) {
  EXPECT_EQ(Stemmer::Stem("as"), "as");
  EXPECT_EQ(Stemmer::Stem("is"), "is");
  EXPECT_EQ(Stemmer::Stem("sky"), "sky");
}

TEST(StemmerTest, QueryAndDocumentFormsAgree) {
  // The property that matters for retrieval: morphological variants of a
  // family map to one representative.
  const char* families[][3] = {
      {"search", "searched", "searching"},
      {"index", "indexes", "indexed"},
      {"complete", "completes", "completed"},
  };
  for (const auto& family : families) {
    const std::string base = Stemmer::Stem(family[0]);
    EXPECT_EQ(Stemmer::Stem(family[1]), base) << family[1];
    EXPECT_EQ(Stemmer::Stem(family[2]), base) << family[2];
  }
}

TEST(StopwordTest, DefaultEnglishList) {
  const StopwordSet& s = StopwordSet::DefaultEnglish();
  EXPECT_TRUE(s.Contains("the"));
  EXPECT_TRUE(s.Contains("and"));
  EXPECT_TRUE(s.Contains("of"));
  EXPECT_FALSE(s.Contains("software"));
  EXPECT_FALSE(s.Contains("usability"));
}

TEST(ThesaurusTest, SymmetricExpansion) {
  Thesaurus t;
  t.AddGroup({"fast", "quick", "rapid"});
  auto fast = t.Expand("fast");
  EXPECT_EQ(fast.size(), 3u);
  auto quick = t.Expand("quick");
  EXPECT_EQ(quick.size(), 3u);
  EXPECT_EQ(t.Expand("slow"), (std::vector<std::string>{"slow"}));
}

TEST(AnalyzerTest, DocumentSideDropsStopwordsKeepsGaps) {
  Analyzer analyzer;
  auto tokens = analyzer.AnalyzeDocument("the cats and the dogs");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "cat");
  EXPECT_EQ(tokens[0].position.offset, 1u);  // original offsets preserved
  EXPECT_EQ(tokens[1].text, "dog");
  EXPECT_EQ(tokens[1].position.offset, 4u);
}

TEST(AnalyzerTest, QueryTokenMapsToDocumentForm) {
  Analyzer analyzer;
  EXPECT_EQ(analyzer.AnalyzeQueryToken("Searching"), "search");
  EXPECT_EQ(analyzer.AnalyzeQueryToken("the"), "");  // stop-word
}

TEST(AnalyzerTest, StemmingCanBeDisabled) {
  Analyzer analyzer(AnalyzerOptions{.stem = false, .remove_stopwords = false});
  EXPECT_EQ(analyzer.AnalyzeQueryToken("Searching"), "searching");
  EXPECT_EQ(analyzer.AnalyzeQueryToken("the"), "the");
}

struct AnalyzedSearchFixture : public ::testing::Test {
  void SetUp() override {
    Analyzer analyzer;
    corpus.AddAnalyzedDocument(
        analyzer.AnalyzeDocument("The efficient searcher was searching quickly"));
    corpus.AddAnalyzedDocument(
        analyzer.AnalyzeDocument("Completed tasks and their completion times"));
    corpus.AddAnalyzedDocument(analyzer.AnalyzeDocument("Nothing relevant here"));
    index = IndexBuilder::Build(corpus);
  }

  std::vector<NodeId> Search(const std::string& query,
                             const Thesaurus* thesaurus = nullptr) {
    Analyzer analyzer;
    auto parsed = ParseQuery(query, SurfaceLanguage::kComp);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto rewritten = RewriteQuery(*parsed, analyzer, thesaurus);
    EXPECT_TRUE(rewritten.ok()) << rewritten.status().ToString();
    QueryRouter router(&index);
    auto result = router.EvaluateParsed(*rewritten);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->result.nodes : std::vector<NodeId>{};
  }

  Corpus corpus;
  InvertedIndex index;
};

TEST_F(AnalyzedSearchFixture, MorphologicalVariantsMatch) {
  // "searches" stems to the same form as the indexed "searching"/"searcher"
  // family head "search".
  EXPECT_EQ(Search("'searched'"), (std::vector<NodeId>{0}));
  EXPECT_EQ(Search("'completion'"), (std::vector<NodeId>{1}));
  EXPECT_EQ(Search("'completing'"), (std::vector<NodeId>{1}));
}

TEST_F(AnalyzedSearchFixture, StopwordConjunctsArePruned) {
  EXPECT_EQ(Search("'the' AND 'efficient'"), (std::vector<NodeId>{0}));
}

TEST_F(AnalyzedSearchFixture, AllStopwordQueryIsAnError) {
  Analyzer analyzer;
  auto parsed = ParseQuery("'the' AND 'of'", SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  auto rewritten = RewriteQuery(*parsed, analyzer);
  EXPECT_FALSE(rewritten.ok());
}

TEST_F(AnalyzedSearchFixture, ThesaurusExpandsIntoDisjunction) {
  Thesaurus thesaurus;
  thesaurus.AddGroup({"efficient", "quick"});  // post-stemming forms
  // 'quickly' stems to 'quickli'... the indexed doc has "quickly" ->
  // "quickli"; query 'efficient' expands to efficient OR quick; only
  // 'efficient' hits node 0.
  EXPECT_EQ(Search("'efficient'", &thesaurus), (std::vector<NodeId>{0}));
  // A synonym of a token absent from the corpus still finds the documents
  // holding the other group members.
  Thesaurus t2;
  t2.AddGroup({"speedy", "efficient"});
  EXPECT_EQ(Search("'speedy'", &t2), (std::vector<NodeId>{0}));
}

TEST_F(AnalyzedSearchFixture, RewritePreservesProximityStructure) {
  Analyzer analyzer;
  auto parsed = ParseQuery(
      "SOME p SOME q (p HAS 'efficient' AND q HAS 'searching' AND "
      "distance(p, q, 5))",
      SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  auto rewritten = RewriteQuery(*parsed, analyzer);
  ASSERT_TRUE(rewritten.ok());
  QueryRouter router(&index);
  auto result = router.EvaluateParsed(*rewritten);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result.nodes, (std::vector<NodeId>{0}));
}

}  // namespace
}  // namespace fts
