// SearchService tests: correctness vs a direct router, batch ordering,
// bounded-queue back-pressure, shutdown semantics, per-query deadlines,
// and service-level metrics aggregation.

#include "exec/search_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "eval/router.h"
#include "index/index_builder.h"
#include "text/corpus.h"
#include "workload/corpus_gen.h"

namespace fts {
namespace {

InvertedIndex SmallIndex() {
  Corpus corpus;
  corpus.AddDocument("apple banana cherry. apple date apple.\n\n banana fig.");
  corpus.AddDocument("banana cherry date. elderberry fig grape.");
  corpus.AddDocument("apple cherry elderberry. apple banana grape.");
  corpus.AddDocument("date fig. grape apple. cherry banana date.");
  corpus.AddDocument("elderberry. apple date cherry fig banana grape.");
  return IndexBuilder::Build(corpus);
}

TEST(SearchServiceTest, MatchesDirectRouterEvaluation) {
  InvertedIndex index = SmallIndex();
  SearchService::Options options;
  options.num_workers = 4;
  options.scoring = ScoringKind::kTfIdf;
  SearchService service(&index, options);
  QueryRouter reference(&index, ScoringKind::kTfIdf);

  const std::vector<std::string> queries = {
      "'apple'",
      "'apple' AND 'banana'",
      "'cherry' OR ('date' AND NOT 'fig')",
      "SOME p1 SOME p2 (p1 HAS 'apple' AND p2 HAS 'banana' AND "
      "distance(p1, p2, 4))",
      "SOME p1 SOME p2 (p1 HAS 'apple' AND p2 HAS 'cherry' AND "
      "NOT samesentence(p1, p2))",
      "EVERY p (p HAS 'apple' OR p HAS ANY)",
  };
  for (const std::string& q : queries) {
    auto expected = reference.Evaluate(q);
    ASSERT_TRUE(expected.ok()) << q;
    auto got = service.Search(q);
    ASSERT_TRUE(got.ok()) << q << ": " << got.status().ToString();
    EXPECT_EQ(got->result.nodes, expected->result.nodes) << q;
    EXPECT_EQ(got->result.scores, expected->result.scores) << q;
    EXPECT_EQ(got->engine, expected->engine) << q;
  }
}

TEST(SearchServiceTest, BatchResultsAlignPositionally) {
  InvertedIndex index = SmallIndex();
  SearchService::Options options;
  options.num_workers = 3;
  SearchService service(&index, options);

  // Distinguishable result cardinalities so a positional mixup is caught.
  const std::vector<std::string> queries = {"'apple'", "'elderberry'",
                                            "'apple' AND 'banana'",
                                            "'nosuchtoken'", "'fig'"};
  QueryRouter reference(&index);
  auto results = service.SearchBatch(queries);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << queries[i];
    auto expected = reference.Evaluate(queries[i]);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(results[i]->result.nodes, expected->result.nodes) << queries[i];
  }
}

TEST(SearchServiceTest, ParseErrorsFailTheFutureNotTheService) {
  InvertedIndex index = SmallIndex();
  SearchService service(&index);
  auto bad = service.Search("((('");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // The worker survives a failed query.
  auto good = service.Search("'apple'");
  ASSERT_TRUE(good.ok());
  EXPECT_FALSE(good->result.nodes.empty());
  const ServiceMetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.failed, 1u);
  EXPECT_EQ(m.completed, 1u);
}

TEST(SearchServiceTest, ShutdownDrainsAcceptedWorkThenRefuses) {
  InvertedIndex index = SmallIndex();
  SearchService::Options options;
  options.num_workers = 2;
  SearchService service(&index, options);

  std::vector<std::future<StatusOr<RoutedResult>>> futures;
  for (int i = 0; i < 32; ++i) futures.push_back(service.Submit("'apple'"));
  service.Shutdown();
  // Every accepted query completed despite the shutdown racing the queue.
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  // New work is refused...
  auto refused = service.Search("'apple'");
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  auto try_refused = service.TrySubmit("'apple'");
  EXPECT_FALSE(try_refused.has_value());
  EXPECT_GE(service.metrics().rejected, 2u);
  // ...and Shutdown is idempotent.
  service.Shutdown();
}

TEST(SearchServiceTest, TrySubmitShedsLoadWhenQueueFull) {
  InvertedIndex index = SmallIndex();
  SearchService::Options options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  SearchService service(&index, options);

  // Saturate: one worker, tiny queue, a burst of submissions from several
  // producer threads. Some TrySubmits must be refused (the queue holds at
  // most 2), and every accepted future must still resolve.
  std::atomic<int> accepted{0}, refused{0};
  std::vector<std::thread> producers;
  std::mutex futures_mu;
  std::vector<std::future<StatusOr<RoutedResult>>> futures;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto f = service.TrySubmit("'apple' AND 'banana'");
        if (f.has_value()) {
          ++accepted;
          std::lock_guard<std::mutex> lock(futures_mu);
          futures.push_back(std::move(*f));
        } else {
          ++refused;
        }
      }
    });
  }
  for (std::thread& p : producers) p.join();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(accepted.load() + refused.load(), 200);
  EXPECT_GT(accepted.load(), 0);
  const ServiceMetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.submitted, static_cast<uint64_t>(accepted.load()));
  EXPECT_EQ(m.rejected, static_cast<uint64_t>(refused.load()));
  EXPECT_LE(m.peak_queue_depth, 2u);
}

TEST(SearchServiceTest, DefaultTimeoutBoundsEveryQuery) {
  InvertedIndex index = SmallIndex();
  SearchService::Options options;
  options.num_workers = 1;
  options.default_timeout = std::chrono::nanoseconds(1);  // expired on arrival
  SearchService service(&index, options);
  auto r = service.Search("'apple' AND 'banana'");
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.metrics().failed, 1u);
}

TEST(SearchServiceTest, MetricsMergeCountersAcrossQueries) {
  InvertedIndex index = SmallIndex();
  SearchService::Options options;
  options.num_workers = 2;
  SearchService service(&index, options);

  auto a = service.Search("'apple'");
  auto b = service.Search("'banana' AND 'cherry'");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const ServiceMetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.submitted, 2u);
  EXPECT_EQ(m.completed, 2u);
  EXPECT_EQ(m.failed, 0u);
  // Service totals are the MergeFrom of the per-query counters.
  EXPECT_EQ(m.totals.entries_scanned, a->result.counters.entries_scanned +
                                          b->result.counters.entries_scanned);
  EXPECT_GT(m.totals.entries_scanned, 0u);
}

TEST(SearchServiceTest, SharedCacheAmortizesAcrossWorkers) {
  // A bigger corpus so lists span multiple blocks, making the L2's effect
  // visible: after a warm-up batch, repeat batches decode nothing.
  CorpusGenOptions gen;
  gen.seed = 99;
  gen.num_nodes = 400;
  gen.vocabulary = 500;
  gen.num_topic_tokens = 4;
  Corpus corpus = GenerateCorpus(gen);
  InvertedIndex index = IndexBuilder::Build(corpus);

  SearchService::Options options;
  options.num_workers = 4;
  SearchService service(&index, options);
  ASSERT_NE(service.shared_cache(), nullptr);

  const std::vector<std::string> batch(8, "'topic0' AND 'topic1'");
  for (auto& r : service.SearchBatch(batch)) ASSERT_TRUE(r.ok());
  const uint64_t decoded_after_warmup = service.metrics().totals.blocks_decoded;
  EXPECT_GT(decoded_after_warmup, 0u);

  for (auto& r : service.SearchBatch(batch)) ASSERT_TRUE(r.ok());
  const ServiceMetricsSnapshot m = service.metrics();
  // Warm batch: all block loads served from cache (L1 or L2), zero decode.
  EXPECT_EQ(m.totals.blocks_decoded, decoded_after_warmup);
  EXPECT_GT(m.totals.shared_cache_hits + m.totals.cache_hits, 0u);
  EXPECT_GT(service.shared_cache()->stats().resident_blocks, 0u);
}

}  // namespace
}  // namespace fts
