#include "lang/classify.h"

#include <gtest/gtest.h>

#include "lang/parser.h"

namespace fts {
namespace {

LanguageClass Classify(const std::string& query) {
  auto parsed = ParseQuery(query, SurfaceLanguage::kComp);
  EXPECT_TRUE(parsed.ok()) << query << ": " << parsed.status().ToString();
  return ClassifyQuery(*parsed);
}

struct ClassifyCase {
  const char* query;
  LanguageClass expected;
};

class ClassifyHierarchy : public ::testing::TestWithParam<ClassifyCase> {};

TEST_P(ClassifyHierarchy, MapsToExpectedClass) {
  EXPECT_EQ(Classify(GetParam().query), GetParam().expected) << GetParam().query;
}

INSTANTIATE_TEST_SUITE_P(
    Queries, ClassifyHierarchy,
    ::testing::Values(
        // BOOL-NONEG: merges over query-token lists only.
        ClassifyCase{"'a'", LanguageClass::kBoolNoNeg},
        ClassifyCase{"'a' AND 'b'", LanguageClass::kBoolNoNeg},
        ClassifyCase{"'a' AND NOT 'b'", LanguageClass::kBoolNoNeg},
        ClassifyCase{"('a' OR 'b') AND 'c'", LanguageClass::kBoolNoNeg},
        // BOOL: complements and ANY require IL_ANY.
        ClassifyCase{"NOT 'a'", LanguageClass::kBool},
        ClassifyCase{"ANY", LanguageClass::kBool},
        ClassifyCase{"'a' OR NOT 'b'", LanguageClass::kBool},
        ClassifyCase{"NOT 'a' AND NOT 'b'", LanguageClass::kBool},
        // PPRED: positive predicates, single scan.
        ClassifyCase{"SOME p SOME q (p HAS 'a' AND q HAS 'b' AND "
                     "distance(p, q, 5))",
                     LanguageClass::kPpred},
        ClassifyCase{"dist('a', 'b', 3)", LanguageClass::kPpred},
        ClassifyCase{"SOME p SOME q (p HAS 'a' AND q HAS 'b' AND "
                     "ordered(p, q) AND samepara(p, q))",
                     LanguageClass::kPpred},
        ClassifyCase{"'a' AND NOT dist('b', 'c', 2)", LanguageClass::kPpred},
        ClassifyCase{"SOME p (p HAS 'a' OR p HAS 'b')", LanguageClass::kPpred},
        // EVERY that normalizes to AND NOT SOME stays pipelined.
        ClassifyCase{"'a' AND EVERY p (NOT p HAS 'b')", LanguageClass::kPpred},
        // NPRED: negative predicates outside negation.
        ClassifyCase{"SOME p SOME q (p HAS 'a' AND q HAS 'b' AND "
                     "not_distance(p, q, 5))",
                     LanguageClass::kNpred},
        ClassifyCase{"SOME p SOME q (p HAS 'a' AND q HAS 'b' AND "
                     "diffpos(p, q))",
                     LanguageClass::kNpred},
        ClassifyCase{"SOME p SOME q (p HAS 'a' AND q HAS 'b' AND "
                     "distance(p, q, 9) AND not_ordered(p, q))",
                     LanguageClass::kNpred},
        // COMP: everything else.
        ClassifyCase{"SOME p (NOT p HAS 'a')", LanguageClass::kComp},
        ClassifyCase{"SOME p (p HAS ANY)", LanguageClass::kComp},
        ClassifyCase{"EVERY p (p HAS 'a')", LanguageClass::kComp},
        // Negation over a subquery with a negative predicate.
        ClassifyCase{"'a' AND NOT (SOME p SOME q (p HAS 'b' AND q HAS 'c' AND "
                     "not_distance(p, q, 1)))",
                     LanguageClass::kComp},
        // OR branches binding different variables need IL_ANY padding.
        ClassifyCase{"SOME p SOME q ((p HAS 'a' OR q HAS 'b') AND "
                     "distance(p, q, 5))",
                     LanguageClass::kComp},
        // A pure negation conjunction has no driving scan.
        ClassifyCase{"NOT 'a' AND NOT ANY", LanguageClass::kBool}));

TEST(ClassifyTest, FreeSurfaceVars) {
  auto parsed = ParseQuery("SOME p (p HAS 'a' AND distance(p, q, 3))",
                           SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(FreeSurfaceVars(*parsed), (std::set<std::string>{"q"}));
}

TEST(ClassifyTest, ClassNamesAreStable) {
  EXPECT_STREQ(LanguageClassToString(LanguageClass::kBoolNoNeg), "BOOL-NONEG");
  EXPECT_STREQ(LanguageClassToString(LanguageClass::kBool), "BOOL");
  EXPECT_STREQ(LanguageClassToString(LanguageClass::kPpred), "PPRED");
  EXPECT_STREQ(LanguageClassToString(LanguageClass::kNpred), "NPRED");
  EXPECT_STREQ(LanguageClassToString(LanguageClass::kComp), "COMP");
}

TEST(ClassifyTest, HierarchyIsOrdered) {
  // The enum order encodes the Figure 3 hierarchy.
  EXPECT_LT(static_cast<int>(LanguageClass::kBoolNoNeg),
            static_cast<int>(LanguageClass::kBool));
  EXPECT_LT(static_cast<int>(LanguageClass::kBool),
            static_cast<int>(LanguageClass::kPpred));
  EXPECT_LT(static_cast<int>(LanguageClass::kPpred),
            static_cast<int>(LanguageClass::kNpred));
  EXPECT_LT(static_cast<int>(LanguageClass::kNpred),
            static_cast<int>(LanguageClass::kComp));
}

}  // namespace
}  // namespace fts
