// PairIndex unit tests: frequent-term selection and canonical key
// ordering, Find's swap semantics, record-stream invariants (packed tf
// header, window-bounded signed deltas, lexicographic record order), the
// v6 on-disk section (heap and mmap round-trips, v5 saves dropping the
// section, classic sections bit-identical with pairs on or off), and the
// segment plumbing — Seal and MergeSegments carrying IndexBuildOptions so
// compaction rebuilds pair lists over the merged corpus.

#include "index/pair_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "index/block_posting_list.h"
#include "index/index_builder.h"
#include "index/index_io.h"
#include "index/inverted_index.h"
#include "index/segment.h"
#include "index/segment_merger.h"
#include "index/tombstone_set.h"
#include "text/corpus.h"

namespace fts {
namespace {

/// dfs: apple 4, banana 3, cherry 2, date 1 — distinct, so the top-f cut
/// is unambiguous; "apple banana" is adjacent twice, "apple cherry" once.
Corpus SmallCorpus() {
  Corpus corpus;
  corpus.AddDocument("apple banana cherry date");
  corpus.AddDocument("apple banana cherry");
  corpus.AddDocument("apple banana");
  corpus.AddDocument("cherry apple");
  return corpus;
}

IndexBuildOptions PairOptions(size_t frequent, uint32_t max_distance) {
  IndexBuildOptions options;
  options.pairs.frequent_terms = frequent;
  options.pairs.max_distance = max_distance;
  return options;
}

TEST(PairIndexTest, DisabledByDefault) {
  const Corpus corpus = SmallCorpus();
  EXPECT_EQ(IndexBuilder::Build(corpus).pair_index(), nullptr);
  EXPECT_EQ(IndexBuilder::Build(corpus, {}).pair_index(), nullptr);
}

TEST(PairIndexTest, FrequentTermsAreTopFByDfThenText) {
  const Corpus corpus = SmallCorpus();
  const InvertedIndex index = IndexBuilder::Build(corpus, PairOptions(2, 3));
  const PairIndex* pairs = index.pair_index();
  ASSERT_NE(pairs, nullptr);
  ASSERT_EQ(pairs->num_frequent(), 2u);
  EXPECT_EQ(pairs->frequent_terms()[0], index.LookupToken("apple"));
  EXPECT_EQ(pairs->frequent_terms()[1], index.LookupToken("banana"));
  EXPECT_EQ(pairs->rank(index.LookupToken("apple")), 0u);
  EXPECT_EQ(pairs->rank(index.LookupToken("banana")), 1u);
  EXPECT_EQ(pairs->rank(index.LookupToken("cherry")), PairIndex::kNotFrequent);
}

TEST(PairIndexTest, DfTiesBreakByTokenTextAscending) {
  Corpus corpus;
  corpus.AddDocument("zebra mango");  // both df 2: text decides the ranking
  corpus.AddDocument("mango zebra");
  const InvertedIndex index = IndexBuilder::Build(corpus, PairOptions(1, 2));
  const PairIndex* pairs = index.pair_index();
  ASSERT_NE(pairs, nullptr);
  ASSERT_EQ(pairs->num_frequent(), 1u);
  EXPECT_EQ(pairs->frequent_terms()[0], index.LookupToken("mango"));
}

TEST(PairIndexTest, FindCanonicalizesAndReportsSwap) {
  const Corpus corpus = SmallCorpus();
  const InvertedIndex index = IndexBuilder::Build(corpus, PairOptions(2, 3));
  const PairIndex* pairs = index.pair_index();
  ASSERT_NE(pairs, nullptr);
  const TokenId apple = index.LookupToken("apple");
  const TokenId banana = index.LookupToken("banana");
  const TokenId cherry = index.LookupToken("cherry");
  const TokenId date = index.LookupToken("date");

  const PairIndex::Lookup fwd = pairs->Find(apple, cherry);
  ASSERT_TRUE(fwd.eligible);
  EXPECT_FALSE(fwd.swapped);
  ASSERT_NE(fwd.list, nullptr);

  const PairIndex::Lookup rev = pairs->Find(cherry, apple);
  ASSERT_TRUE(rev.eligible);
  EXPECT_TRUE(rev.swapped);
  EXPECT_EQ(rev.list, fwd.list);  // same canonical list, mirrored reading

  // Both frequent: the better-ranked side (apple) is the stored first.
  const PairIndex::Lookup both = pairs->Find(banana, apple);
  ASSERT_TRUE(both.eligible);
  EXPECT_TRUE(both.swapped);

  // Neither side frequent: the pair index cannot answer, at any distance.
  EXPECT_FALSE(pairs->Find(cherry, date).eligible);
  // A term paired with itself is never a pair-index shape.
  EXPECT_FALSE(pairs->Find(apple, apple).eligible);
}

TEST(PairIndexTest, AbsentKeyWithEligiblePairIsProvablyEmpty) {
  Corpus corpus;
  corpus.AddDocument("apple banana");
  corpus.AddDocument("apple cherry");
  corpus.AddDocument("apple date");
  // "banana" and the frequent "apple" co-occur only in doc 0; "date" and
  // "banana" never share a document, and with f=1 only apple is frequent,
  // so (apple, X) keys exist while eligible-but-absent needs a frequent
  // term that never meets X. Build distance 1: "apple ... date" in doc 2
  // is adjacent, so pick a vocabulary where apple and some token are far
  // apart.
  corpus.AddDocument("apple x0 x1 x2 x3 x4 x5 x6 x7 faraway");
  const InvertedIndex index = IndexBuilder::Build(corpus, PairOptions(1, 1));
  const PairIndex* pairs = index.pair_index();
  ASSERT_NE(pairs, nullptr);
  const TokenId apple = index.LookupToken("apple");
  const TokenId faraway = index.LookupToken("faraway");
  const PairIndex::Lookup far = pairs->Find(apple, faraway);
  ASSERT_TRUE(far.eligible);
  EXPECT_EQ(far.list, nullptr);  // observed nowhere within the window
}

/// Decodes every record of one pair list into (node, tf_first, tf_second,
/// records) rows for direct inspection.
struct PairRow {
  NodeId node;
  uint32_t tf_first, tf_second;
  std::vector<std::pair<uint32_t, int32_t>> records;  // (off_first, delta)
};

std::vector<PairRow> DecodePairList(const BlockPostingList& list) {
  std::vector<PairRow> rows;
  BlockListCursor cursor(&list);
  while (cursor.NextEntry() != kInvalidNode) {
    const auto ps = cursor.GetPositions();
    EXPECT_TRUE(cursor.status().ok()) << cursor.status().ToString();
    EXPECT_GE(ps.size(), 2u);  // tf header + at least one record
    PairRow row;
    row.node = cursor.current_node();
    row.tf_first = ps[0].offset;
    row.tf_second = ps[0].sentence;
    for (size_t i = 1; i < ps.size(); ++i) {
      row.records.emplace_back(ps[i].offset,
                               PairIndex::UnZigZag(ps[i].sentence));
    }
    rows.push_back(std::move(row));
  }
  EXPECT_TRUE(cursor.status().ok()) << cursor.status().ToString();
  return rows;
}

TEST(PairIndexTest, RecordsAreCompleteWindowBoundedAndSorted) {
  Corpus corpus;
  // Doc 0: apple at 0, 3, 5; banana at 1, 4. Window (max_distance 2 ->
  // |delta| <= 3) captures every apple/banana pairing except none (all
  // gaps are <= 3 here).
  corpus.AddDocument("apple banana x apple banana apple");
  corpus.AddDocument("banana y y y apple");  // gap 4: outside the window
  corpus.AddDocument("apple z");             // no banana at all
  const InvertedIndex index = IndexBuilder::Build(corpus, PairOptions(2, 2));
  const PairIndex* pairs = index.pair_index();
  ASSERT_NE(pairs, nullptr);
  const TokenId apple = index.LookupToken("apple");
  const TokenId banana = index.LookupToken("banana");
  const PairIndex::Lookup lk = pairs->Find(apple, banana);
  ASSERT_TRUE(lk.eligible);
  ASSERT_NE(lk.list, nullptr);

  const std::vector<PairRow> rows = DecodePairList(*lk.list);
  // Doc 1's only co-occurrence has |delta| 4 > 3, so only doc 0 appears.
  ASSERT_EQ(rows.size(), 1u);
  const PairRow& row = rows[0];
  EXPECT_EQ(row.node, 0u);
  // tf header carries the full per-node term frequencies (for scoring),
  // not the record count.
  const TokenId first =
      lk.swapped ? banana : apple;  // canonical side the offsets belong to
  EXPECT_EQ(row.tf_first, first == apple ? 3u : 2u);
  EXPECT_EQ(row.tf_second, first == apple ? 2u : 3u);
  // Every in-window co-occurrence, sorted by (offset, delta), deltas
  // signed, nonzero, and within |delta| <= max_distance + 1.
  std::vector<std::pair<uint32_t, int32_t>> expected;
  const std::vector<uint32_t> apples = {0, 3, 5};
  const std::vector<uint32_t> bananas = {1, 4};
  for (uint32_t a : apples) {
    for (uint32_t b : bananas) {
      const int64_t delta = static_cast<int64_t>(b) - static_cast<int64_t>(a);
      if (delta != 0 && std::llabs(delta) <= 3) {
        if (first == apple) {
          expected.emplace_back(a, static_cast<int32_t>(delta));
        } else {
          expected.emplace_back(b, static_cast<int32_t>(-delta));
        }
      }
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(row.records, expected);
}

TEST(PairIndexTest, ValidatePassesOnBuiltIndex) {
  const Corpus corpus = SmallCorpus();
  const InvertedIndex index = IndexBuilder::Build(corpus, PairOptions(3, 4));
  ASSERT_NE(index.pair_index(), nullptr);
  const Status s = index.pair_index()->Validate(index.num_nodes());
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(PairIndexTest, ClassicSectionsAreBitIdenticalWithPairsOnOrOff) {
  const Corpus corpus = SmallCorpus();
  const InvertedIndex plain = IndexBuilder::Build(corpus);
  const InvertedIndex paired = IndexBuilder::Build(corpus, PairOptions(2, 3));
  std::string plain_v5, paired_v5;
  SaveIndexToString(plain, &plain_v5, IndexFormat::kV5);
  SaveIndexToString(paired, &paired_v5, IndexFormat::kV5);
  // A v5 save has no pair section, so the files must be byte-identical:
  // pair construction never perturbs token lists, IL_ANY, or statistics.
  EXPECT_EQ(plain_v5, paired_v5);
}

TEST(PairIndexTest, V6RoundTripsHeapAndMmap) {
  const Corpus corpus = SmallCorpus();
  const InvertedIndex index = IndexBuilder::Build(corpus, PairOptions(2, 3));
  const PairIndex* built = index.pair_index();
  ASSERT_NE(built, nullptr);

  std::string blob;
  SaveIndexToString(index, &blob);  // default format carries the section
  ASSERT_EQ(blob[6], '6');

  InvertedIndex heap;
  ASSERT_TRUE(LoadIndexFromString(blob, &heap).ok());
  const std::string path = ::testing::TempDir() + "/fts_pair_roundtrip.idx";
  ASSERT_TRUE(SaveIndexToFile(index, path).ok());
  LoadOptions mmap;
  mmap.mode = LoadOptions::Mode::kMmap;
  InvertedIndex mapped;
  ASSERT_TRUE(LoadIndexFromFile(path, &mapped, mmap).ok());
  std::remove(path.c_str());

  for (const InvertedIndex* loaded : {&heap, &mapped}) {
    const PairIndex* pairs = loaded->pair_index();
    ASSERT_NE(pairs, nullptr);
    EXPECT_EQ(pairs->max_distance(), built->max_distance());
    EXPECT_EQ(pairs->frequent_terms(), built->frequent_terms());
    ASSERT_EQ(pairs->num_keys(), built->num_keys());
    for (size_t i = 0; i < built->num_keys(); ++i) {
      EXPECT_EQ(pairs->key(i), built->key(i)) << i;
      EXPECT_EQ(DecodePairList(pairs->list(i)).size(),
                DecodePairList(built->list(i)).size())
          << i;
    }
    EXPECT_TRUE(pairs->Validate(loaded->num_nodes()).ok());
  }
}

TEST(PairIndexTest, OlderFormatsDropThePairSection) {
  const Corpus corpus = SmallCorpus();
  const InvertedIndex index = IndexBuilder::Build(corpus, PairOptions(2, 3));
  ASSERT_NE(index.pair_index(), nullptr);
  for (IndexFormat format : {IndexFormat::kV1, IndexFormat::kV2,
                             IndexFormat::kV3, IndexFormat::kV4,
                             IndexFormat::kV5}) {
    std::string blob;
    SaveIndexToString(index, &blob, format);
    InvertedIndex loaded;
    ASSERT_TRUE(LoadIndexFromString(blob, &loaded).ok())
        << static_cast<int>(format);
    EXPECT_EQ(loaded.pair_index(), nullptr) << static_cast<int>(format);
  }
}

TEST(PairIndexTest, V6WithoutPairsLoadsAsNoPairIndex) {
  // A pair-free index saved as v6 carries the empty section shape and
  // must load exactly like a v5 file: feature off.
  const InvertedIndex index = IndexBuilder::Build(SmallCorpus());
  std::string blob;
  SaveIndexToString(index, &blob);
  ASSERT_EQ(blob[6], '6');
  InvertedIndex loaded;
  ASSERT_TRUE(LoadIndexFromString(blob, &loaded).ok());
  EXPECT_EQ(loaded.pair_index(), nullptr);
}

TEST(PairIndexTest, MemoryUsageCountsPairLists) {
  const Corpus corpus = SmallCorpus();
  const InvertedIndex plain = IndexBuilder::Build(corpus);
  const InvertedIndex paired = IndexBuilder::Build(corpus, PairOptions(2, 3));
  EXPECT_GT(paired.MemoryUsage(), plain.MemoryUsage());
  EXPECT_GT(paired.pair_index()->MemoryUsage(), 0u);
}

TEST(PairIndexTest, StatsKeySeparatorCannotCollideWithTokens) {
  EXPECT_EQ(PairIndex::StatsKey("apple", "banana"),
            std::string("apple\x1f") + "banana");
  // Tokenizer output never contains the separator byte, so a pair key can
  // never equal (or prefix-collide with) a real token's df entry.
  EXPECT_NE(PairIndex::StatsKey("a", "b"), "ab");
}

TEST(PairIndexTest, SealAndMergeCarryBuildOptions) {
  IndexBuildOptions options = PairOptions(2, 3);

  SegmentBuffer buffer;
  buffer.Add("apple banana cherry");
  buffer.Add("apple banana");
  std::shared_ptr<const InvertedIndex> sealed = buffer.Seal(options);
  ASSERT_NE(sealed->pair_index(), nullptr);
  EXPECT_GT(sealed->pair_index()->num_keys(), 0u);

  SegmentBuffer buffer2;
  buffer2.Add("banana apple date");
  std::shared_ptr<const InvertedIndex> sealed2 = buffer2.Seal(options);

  std::vector<SegmentView> views(2);
  views[0].index = sealed.get();
  views[0].base = 0;
  views[1].index = sealed2.get();
  views[1].base = static_cast<NodeId>(sealed->num_nodes());
  auto merged = MergeSegments(views, options);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  // The merged segment's pair lists are rebuilt over the merged corpus —
  // exactly what a single-shot build of the same documents produces.
  Corpus all;
  all.AddDocument("apple banana cherry");
  all.AddDocument("apple banana");
  all.AddDocument("banana apple date");
  const InvertedIndex reference = IndexBuilder::Build(all, options);
  ASSERT_NE(merged->pair_index(), nullptr);
  EXPECT_EQ(merged->pair_index()->num_keys(),
            reference.pair_index()->num_keys());
  EXPECT_EQ(merged->pair_index()->frequent_terms().size(),
            reference.pair_index()->frequent_terms().size());
  std::string merged_blob, reference_blob;
  SaveIndexToString(*merged, &merged_blob);
  SaveIndexToString(reference, &reference_blob);
  EXPECT_EQ(merged_blob, reference_blob);
}

}  // namespace
}  // namespace fts
