#include "text/corpus.h"

#include <gtest/gtest.h>

namespace fts {
namespace {

TEST(CorpusTest, AddDocumentTokenizesAndInterns) {
  Corpus corpus;
  NodeId id = corpus.AddDocument("usability of software usability");
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(corpus.num_nodes(), 1u);
  EXPECT_EQ(corpus.vocabulary_size(), 3u);
  const TokenizedDocument& doc = corpus.doc(id);
  ASSERT_EQ(doc.size(), 4u);
  EXPECT_EQ(doc.tokens[0], doc.tokens[3]);  // both "usability"
}

TEST(CorpusTest, TokenIdsStableAcrossDocuments) {
  Corpus corpus;
  corpus.AddDocument("alpha beta");
  corpus.AddDocument("beta gamma");
  TokenId beta = corpus.LookupToken("beta");
  ASSERT_NE(beta, kInvalidToken);
  EXPECT_EQ(corpus.doc(0).tokens[1], beta);
  EXPECT_EQ(corpus.doc(1).tokens[0], beta);
}

TEST(CorpusTest, LookupMissingTokenReturnsInvalid) {
  Corpus corpus;
  corpus.AddDocument("alpha");
  EXPECT_EQ(corpus.LookupToken("missing"), kInvalidToken);
}

TEST(CorpusTest, AddTokensNormalizes) {
  Corpus corpus;
  corpus.AddTokens({"Alpha", "BETA"});
  EXPECT_NE(corpus.LookupToken("alpha"), kInvalidToken);
  EXPECT_NE(corpus.LookupToken("beta"), kInvalidToken);
  EXPECT_EQ(corpus.LookupToken("Alpha"), kInvalidToken);
}

TEST(CorpusTest, AddTokensWithPositionsValidatesLengths) {
  Corpus corpus;
  auto result = corpus.AddTokensWithPositions({"a", "b"}, {PositionInfo{0, 0, 0}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CorpusTest, AddTokensWithPositionsRequiresIncreasingOffsets) {
  Corpus corpus;
  auto result = corpus.AddTokensWithPositions(
      {"a", "b"}, {PositionInfo{5, 0, 0}, PositionInfo{5, 0, 0}});
  EXPECT_FALSE(result.ok());
}

TEST(CorpusTest, AddTokensWithPositionsKeepsStructure) {
  Corpus corpus;
  auto result = corpus.AddTokensWithPositions(
      {"a", "b"}, {PositionInfo{0, 0, 0}, PositionInfo{7, 2, 1}});
  ASSERT_TRUE(result.ok());
  const TokenizedDocument& doc = corpus.doc(*result);
  EXPECT_EQ(doc.positions[1].offset, 7u);
  EXPECT_EQ(doc.positions[1].sentence, 2u);
  EXPECT_EQ(doc.positions[1].paragraph, 1u);
}

TEST(CorpusTest, EmptyDocumentAllowed) {
  Corpus corpus;
  NodeId id = corpus.AddDocument("");
  EXPECT_TRUE(corpus.doc(id).empty());
}

TEST(CorpusTest, TokenTextRoundTrip) {
  Corpus corpus;
  corpus.AddDocument("efficient task completion");
  TokenId id = corpus.LookupToken("task");
  ASSERT_NE(id, kInvalidToken);
  EXPECT_EQ(corpus.token_text(id), "task");
}

}  // namespace
}  // namespace fts
