// Scatter-gather differential test: a ShardRouter over three in-process
// FtsServers, each serving one contiguous slice of a generated corpus,
// must answer bit-identically to a single-index run over the unsplit
// corpus — node ids, every score (exact double equality, after the global
// stats exchange), engine, and language class — across scoring models,
// query classes, and top-k. This is the merge-exactness contract of
// docs/serving.md, pinned end to end through real sockets.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "exec/search_service.h"
#include "index/index_builder.h"
#include "net/client.h"
#include "net/server.h"
#include "net/shard_router.h"
#include "text/corpus.h"
#include "workload/corpus_gen.h"

namespace fts {
namespace net {
namespace {

::testing::AssertionResult IsOk(const char* expr_text, const Status& s) {
  if (s.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << expr_text << ": " << s.ToString();
}

#define ASSERT_OK(expr) ASSERT_PRED_FORMAT1(::fts::net::IsOk, (expr))

uint64_t Bits(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

Corpus TestCorpus() {
  CorpusGenOptions options;
  options.num_nodes = 96;
  options.vocabulary = 300;
  options.min_doc_len = 15;
  options.max_doc_len = 45;
  options.num_topic_tokens = 4;
  options.topic_doc_fraction = 0.4;
  options.topic_occurrences = 3;
  return GenerateCorpus(options);
}

/// Three shard servers over contiguous slices of `corpus` (deliberately
/// uneven split), plus a connected router, all with `scoring`.
struct Cluster {
  Cluster(const Corpus& corpus, ScoringKind scoring, bool exchange_stats) {
    Init(corpus, scoring, exchange_stats);
  }

  /// Separate from the constructor because gtest fatal assertions only
  /// work in void-returning functions.
  void Init(const Corpus& corpus, ScoringKind scoring, bool exchange_stats) {
    const NodeId n = static_cast<NodeId>(corpus.num_nodes());
    const NodeId cuts[4] = {0, static_cast<NodeId>(n / 4),
                            static_cast<NodeId>(n / 2 + 7), n};
    ShardRouter::Options ropts;
    for (int i = 0; i < 3; ++i) {
      auto slice = corpus.Slice(cuts[i], cuts[i + 1]);
      ASSERT_OK(slice.status());
      auto index =
          std::make_shared<InvertedIndex>(IndexBuilder::Build(*slice));
      FtsServer::Options sopts;
      sopts.name = "shard" + std::to_string(i);
      sopts.service.scoring = scoring;
      sopts.service.num_workers = 1;
      servers.push_back(std::make_unique<FtsServer>(std::move(index), sopts));
      ASSERT_OK(servers.back()->Start());
      ropts.shards.push_back({"127.0.0.1", servers.back()->port()});
    }
    router = std::make_unique<ShardRouter>(ropts);
    ASSERT_OK(router->Connect());
    if (exchange_stats) ASSERT_OK(router->ExchangeGlobalStats());
  }

  std::vector<std::unique_ptr<FtsServer>> servers;
  std::unique_ptr<ShardRouter> router;
};

const std::vector<std::string>& TestQueries() {
  // One query per engine class, all over planted topic tokens so results
  // span every shard.
  static const std::vector<std::string>* queries = new std::vector<std::string>{
      "'topic0'",                                     // BOOL
      "'topic0' AND 'topic1'",                        // BOOL
      "'topic0' OR ('topic1' AND NOT 'topic2')",      // BOOL + complement
      "SOME p1 SOME p2 (p1 HAS 'topic0' AND p2 HAS 'topic1' AND "
      "distance(p1, p2, 8))",                        // PPRED
      "SOME p1 SOME p2 (p1 HAS 'topic0' AND p2 HAS 'topic1' AND "
      "NOT samesentence(p1, p2))",                    // NPRED
      "EVERY p (p HAS 'topic0' OR p HAS ANY)",        // COMP
  };
  return *queries;
}

void ExpectBitIdentical(const SearchResponse& routed, const RoutedResult& ref,
                        const std::string& q) {
  ASSERT_TRUE(routed.status.ok()) << q << ": " << routed.status.ToString();
  ASSERT_EQ(routed.nodes.size(), ref.result.nodes.size()) << q;
  for (size_t i = 0; i < routed.nodes.size(); ++i) {
    EXPECT_EQ(routed.nodes[i], ref.result.nodes[i]) << q << " node " << i;
  }
  ASSERT_EQ(routed.scores.size(), ref.result.scores.size()) << q;
  for (size_t i = 0; i < routed.scores.size(); ++i) {
    EXPECT_EQ(Bits(routed.scores[i]), Bits(ref.result.scores[i]))
        << q << " score " << i;
  }
  EXPECT_EQ(routed.engine, ref.engine) << q;
  EXPECT_EQ(routed.language_class, ref.language_class) << q;
}

class NetScatterGatherTest : public ::testing::TestWithParam<ScoringKind> {};

TEST_P(NetScatterGatherTest, RoutedResultsBitIdenticalToSingleIndex) {
  const ScoringKind scoring = GetParam();
  const Corpus corpus = TestCorpus();
  const InvertedIndex full = IndexBuilder::Build(corpus);
  SearchService::Options ref_opts;
  ref_opts.scoring = scoring;
  ref_opts.num_workers = 1;
  SearchService reference(&full, ref_opts);

  Cluster cluster(corpus, scoring, /*exchange_stats=*/true);
  ASSERT_EQ(cluster.router->total_nodes(), corpus.num_nodes());

  for (const std::string& q : TestQueries()) {
    for (uint32_t top_k : {0u, 5u}) {
      auto ref = reference.Search(q, top_k);
      ASSERT_OK(ref.status()) << q;
      auto routed = cluster.router->Search(q, top_k);
      ASSERT_OK(routed.status()) << q;
      ExpectBitIdentical(*routed, *ref, q + " (top_k=" +
                                            std::to_string(top_k) + ")");
      if (top_k == 0) {
        // Counters sanity: the field-wise merge saw real work.
        EXPECT_GT(routed->counters.entries_scanned, 0u) << q;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllScoringModels, NetScatterGatherTest,
                         ::testing::Values(ScoringKind::kNone,
                                           ScoringKind::kTfIdf,
                                           ScoringKind::kProbabilistic));

TEST(NetScatterGatherServerTest, RouterServerServesIdenticalResults) {
  // The full client → RouterServer → shards path answers the same as
  // calling the router in-process.
  const Corpus corpus = TestCorpus();
  Cluster cluster(corpus, ScoringKind::kTfIdf, /*exchange_stats=*/true);

  RouterServer::Options opts;
  RouterServer server(cluster.router.get(), opts);
  ASSERT_OK(server.Start());
  FtsClient::Options copts;
  copts.port = server.port();
  FtsClient client(copts);

  auto ping = client.Ping();
  ASSERT_OK(ping.status());
  EXPECT_EQ(ping->num_nodes, corpus.num_nodes());

  for (const std::string& q : TestQueries()) {
    auto direct = cluster.router->Search(q, 5);
    ASSERT_OK(direct.status()) << q;
    auto remote = client.Search(q, 5);
    ASSERT_OK(remote.status()) << q;
    ASSERT_TRUE(remote->status.ok()) << q;
    EXPECT_EQ(remote->nodes, direct->nodes) << q;
    ASSERT_EQ(remote->scores.size(), direct->scores.size()) << q;
    for (size_t i = 0; i < remote->scores.size(); ++i) {
      EXPECT_EQ(Bits(remote->scores[i]), Bits(direct->scores[i])) << q;
    }
    EXPECT_EQ(remote->engine, direct->engine) << q;
  }
  server.Stop();
}

TEST(NetScatterGatherServerTest, QueryFailsWhenAShardDies) {
  // Exactness over availability: a partial scatter-gather answer would
  // silently drop a shard's documents, so the query must fail instead.
  const Corpus corpus = TestCorpus();
  Cluster cluster(corpus, ScoringKind::kNone, /*exchange_stats=*/false);
  ASSERT_OK(cluster.router->Search("'topic0'").status());

  cluster.servers[1]->Stop();
  auto routed = cluster.router->Search("'topic0'");
  EXPECT_FALSE(routed.ok());

  // Probe reflects the dead shard.
  bool any_dead = false;
  for (const ShardHealth& h : cluster.router->Probe()) any_dead |= !h.alive;
  EXPECT_TRUE(any_dead);
}

TEST(NetScatterGatherServerTest, UnscoredTopKIsFirstKOfConcatenation) {
  const Corpus corpus = TestCorpus();
  const InvertedIndex full = IndexBuilder::Build(corpus);
  SearchService reference(&full);
  Cluster cluster(corpus, ScoringKind::kNone, /*exchange_stats=*/false);

  auto ref = reference.Search("'topic0'", 7);
  ASSERT_OK(ref.status());
  auto routed = cluster.router->Search("'topic0'", 7);
  ASSERT_OK(routed.status());
  ASSERT_EQ(routed->nodes.size(), ref->result.nodes.size());
  for (size_t i = 0; i < routed->nodes.size(); ++i) {
    EXPECT_EQ(routed->nodes[i], ref->result.nodes[i]);
  }
}

}  // namespace
}  // namespace net
}  // namespace fts
