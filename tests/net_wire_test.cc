// Wire protocol tests: encode/decode roundtrips for every message type
// (score doubles bit-identical), prologue peeking, and the fail-closed
// decoder contract — truncation at every byte boundary, trailing garbage,
// wrong type bytes, unknown protocol versions, forged length fields — plus
// the forward-compatibility rule for EvalCounters (extra fields from a
// newer peer are skipped, not an error).

#include "net/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

namespace fts {
namespace net {
namespace {

/// Strips the length prefix off a complete frame, checking it matches.
std::string Payload(const std::string& frame) {
  EXPECT_GE(frame.size(), kFrameHeaderBytes);
  uint32_t declared = 0;
  std::memcpy(&declared, frame.data(), 4);  // test host is little-endian x86
  EXPECT_EQ(declared, frame.size() - kFrameHeaderBytes);
  return frame.substr(kFrameHeaderBytes);
}

uint64_t Bits(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

TEST(NetWireTest, SearchRequestRoundtrip) {
  SearchRequest req;
  req.request_id = 0x1122334455667788ull;
  req.top_k = 25;
  req.mode = WireCursorMode::kSeek;
  req.deadline_us = 1500000;
  req.query = "SOME p (p HAS 'apple' AND NOT samesentence(p, p))";

  SearchRequest got;
  ASSERT_TRUE(DecodeSearchRequest(Payload(EncodeSearchRequest(req)), &got).ok());
  EXPECT_EQ(got.request_id, req.request_id);
  EXPECT_EQ(got.top_k, req.top_k);
  EXPECT_EQ(got.mode, req.mode);
  EXPECT_EQ(got.deadline_us, req.deadline_us);
  EXPECT_EQ(got.query, req.query);
}

TEST(NetWireTest, SearchResponseRoundtripScoresBitIdentical) {
  SearchResponse resp;
  resp.request_id = 42;
  resp.status = Status::OK();
  resp.language_class = LanguageClass::kNpred;
  resp.engine = "NPRED";
  resp.nodes = {0, 7, 1u << 20, 0xFFFFFFFFull + 3};  // a rebased 64-bit id
  resp.scores = {0.1, 1.0 / 3.0, std::numeric_limits<double>::denorm_min(),
                 -0.0};
  resp.counters.entries_scanned = 123;
  resp.counters.bitset_blocks_intersected = 456;  // last declared field

  SearchResponse got;
  ASSERT_TRUE(
      DecodeSearchResponse(Payload(EncodeSearchResponse(resp)), &got).ok());
  EXPECT_EQ(got.request_id, resp.request_id);
  EXPECT_TRUE(got.status.ok());
  EXPECT_EQ(got.language_class, resp.language_class);
  EXPECT_EQ(got.engine, resp.engine);
  EXPECT_EQ(got.nodes, resp.nodes);
  ASSERT_EQ(got.scores.size(), resp.scores.size());
  for (size_t i = 0; i < resp.scores.size(); ++i) {
    EXPECT_EQ(Bits(got.scores[i]), Bits(resp.scores[i])) << i;
  }
  EXPECT_EQ(got.counters.entries_scanned, 123u);
  EXPECT_EQ(got.counters.bitset_blocks_intersected, 456u);
}

TEST(NetWireTest, SearchResponseCarriesErrorStatus) {
  SearchResponse resp;
  resp.request_id = 9;
  resp.status = Status::InvalidArgument("parse error at token 3");

  SearchResponse got;
  ASSERT_TRUE(
      DecodeSearchResponse(Payload(EncodeSearchResponse(resp)), &got).ok());
  EXPECT_EQ(got.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(got.status.message(), "parse error at token 3");
  EXPECT_TRUE(got.nodes.empty());
}

TEST(NetWireTest, PingStatsGlobalStatsMetricsRoundtrip) {
  PingResponse ping;
  ping.request_id = 5;
  ping.server_name = "shard-1";
  ping.num_nodes = 123456789;
  ping.generation = 7;
  PingResponse ping_got;
  ASSERT_TRUE(
      DecodePingResponse(Payload(EncodePingResponse(ping)), &ping_got).ok());
  EXPECT_EQ(ping_got.server_name, "shard-1");
  EXPECT_EQ(ping_got.num_nodes, 123456789u);
  EXPECT_EQ(ping_got.generation, 7u);

  StatsResponse stats;
  stats.request_id = 6;
  stats.num_nodes = 400;
  stats.df_by_text = {{"apple", 17}, {"", 3}, {"zebra", 1}};
  StatsResponse stats_got;
  ASSERT_TRUE(
      DecodeStatsResponse(Payload(EncodeStatsResponse(stats)), &stats_got).ok());
  EXPECT_EQ(stats_got.num_nodes, 400u);
  EXPECT_EQ(stats_got.df_by_text, stats.df_by_text);

  SetGlobalStatsRequest set;
  set.request_id = 7;
  set.global_live_nodes = 1200;
  set.df_by_text = {{"apple", 51}};
  SetGlobalStatsRequest set_got;
  ASSERT_TRUE(DecodeSetGlobalStatsRequest(
                  Payload(EncodeSetGlobalStatsRequest(set)), &set_got)
                  .ok());
  EXPECT_EQ(set_got.global_live_nodes, 1200u);
  EXPECT_EQ(set_got.df_by_text, set.df_by_text);

  MetricsResponse metrics;
  metrics.request_id = 8;
  metrics.text = "fts_up 1\nfts_total_nodes 400\n";
  MetricsResponse metrics_got;
  ASSERT_TRUE(DecodeMetricsResponse(Payload(EncodeMetricsResponse(metrics)),
                                    &metrics_got)
                  .ok());
  EXPECT_EQ(metrics_got.text, metrics.text);
}

TEST(NetWireTest, PeekPrologueReadsTypeAndIdWithoutBody) {
  SearchRequest req;
  req.request_id = 777;
  req.query = "'x'";
  const std::string payload = Payload(EncodeSearchRequest(req));
  uint8_t type = 0;
  uint64_t id = 0;
  ASSERT_TRUE(PeekPrologue(payload, &type, &id).ok());
  EXPECT_EQ(type, static_cast<uint8_t>(MessageType::kSearchRequest));
  EXPECT_EQ(id, 777u);
}

TEST(NetWireTest, UnsupportedVersionRejected) {
  SearchRequest req;
  req.query = "'x'";
  std::string payload = Payload(EncodeSearchRequest(req));
  payload[0] = static_cast<char>(kProtocolVersion + 1);
  uint8_t type = 0;
  uint64_t id = 0;
  EXPECT_EQ(PeekPrologue(payload, &type, &id).code(),
            StatusCode::kInvalidArgument);
  SearchRequest out;
  EXPECT_EQ(DecodeSearchRequest(payload, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(NetWireTest, WrongMessageTypeRejected) {
  PingRequest ping;
  ping.request_id = 1;
  SearchRequest out;
  EXPECT_EQ(DecodeSearchRequest(Payload(EncodePingRequest(ping)), &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(NetWireTest, TruncationAtEveryByteFailsCleanly) {
  SearchResponse resp;
  resp.request_id = 3;
  resp.engine = "BOOL";
  resp.nodes = {1, 2, 3};
  resp.scores = {0.5, 0.25, 0.125};
  const std::string payload = Payload(EncodeSearchResponse(resp));
  for (size_t len = 0; len < payload.size(); ++len) {
    SearchResponse out;
    EXPECT_EQ(
        DecodeSearchResponse(std::string_view(payload.data(), len), &out).code(),
        StatusCode::kInvalidArgument)
        << "prefix length " << len;
  }
}

TEST(NetWireTest, TrailingGarbageRejected) {
  SearchRequest req;
  req.query = "'x'";
  std::string payload = Payload(EncodeSearchRequest(req));
  payload.push_back('\0');
  SearchRequest out;
  EXPECT_EQ(DecodeSearchRequest(payload, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(NetWireTest, ForgedResultCountRejected) {
  // A declared node count far larger than the remaining bytes must be
  // rejected up front (no allocation of the declared size).
  SearchResponse resp;
  resp.request_id = 3;
  resp.engine = "BOOL";
  std::string payload = Payload(EncodeSearchResponse(resp));
  // Locate the u32 node count: prologue(10) + status(1+4) + class(1) +
  // engine(4+4) + has_scores(1) = 25 bytes in.
  const size_t count_off = 25;
  const uint32_t forged = 0x10000000;
  std::memcpy(payload.data() + count_off, &forged, 4);
  SearchResponse out;
  EXPECT_EQ(DecodeSearchResponse(payload, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(NetWireTest, ExtraCounterFieldsFromNewerPeerAreSkipped) {
  // Hand-build a search response whose counters block claims two more
  // fields than this build declares — the decoder must read what it knows
  // and skip the rest (the versioning rule that makes adding a counter a
  // compatible change).
  std::string p;
  PutU8(&p, kProtocolVersion);
  PutU8(&p, static_cast<uint8_t>(MessageType::kSearchResponse));
  PutU64(&p, 11);                      // request id
  PutU8(&p, 0);                        // status code kOk
  PutString(&p, "");                   // status message
  PutU8(&p, 0);                        // language class kBoolNoNeg
  PutString(&p, "BOOL");               // engine
  PutU8(&p, 0);                        // no scores
  PutU32(&p, 0);                       // no nodes
  std::string counters;
  PutCounters(&counters, EvalCounters{});
  uint32_t declared = 0;
  std::memcpy(&declared, counters.data(), 4);
  const uint32_t inflated = declared + 2;
  std::memcpy(counters.data(), &inflated, 4);
  counters.append(16, '\x7f');         // two unknown u64 fields
  p += counters;

  SearchResponse out;
  const Status s = DecodeSearchResponse(p, &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(out.request_id, 11u);
  EXPECT_EQ(out.engine, "BOOL");
}

TEST(NetWireTest, PairCounterFieldsRoundtripAsTrailingFields) {
  // The pair-index counters were appended to the counter block (the only
  // wire-compatible position); pin that they ride the existing roundtrip
  // and occupy the declared tail so both compat directions below hold.
  SearchResponse resp;
  resp.request_id = 12;
  resp.engine = "PPRED";
  resp.counters.entries_scanned = 7;
  resp.counters.pair_seeks = 31;
  resp.counters.pair_entries_decoded = 1009;  // last declared field

  SearchResponse got;
  ASSERT_TRUE(
      DecodeSearchResponse(Payload(EncodeSearchResponse(resp)), &got).ok());
  EXPECT_EQ(got.counters.entries_scanned, 7u);
  EXPECT_EQ(got.counters.pair_seeks, 31u);
  EXPECT_EQ(got.counters.pair_entries_decoded, 1009u);
}

TEST(NetWireTest, MissingPairCounterFieldsFromOlderPeerZeroFill) {
  // A peer built before the pair counters declares two fewer fields; the
  // decoder must accept the short block, fill what it got, and leave the
  // pair counters zero (the versioning rule's backward direction — the
  // forward direction, extra unknown fields, is pinned above).
  SearchResponse resp;
  resp.request_id = 13;
  resp.engine = "PPRED";
  resp.counters.entries_scanned = 99;
  resp.counters.pair_seeks = 5;            // will be cut off the wire image
  resp.counters.pair_entries_decoded = 6;  // likewise
  std::string payload = Payload(EncodeSearchResponse(resp));

  // The counter block is the payload's tail: [u32 count][count u64s].
  // Rewrite it as an older peer would have sent it — two fewer fields.
  const size_t count_off = payload.size() - 4 - 8 * 21;
  uint32_t declared = 0;
  std::memcpy(&declared, payload.data() + count_off, 4);
  ASSERT_EQ(declared, 21u);  // field count at the expected offset
  const uint32_t shrunk = declared - 2;
  std::memcpy(payload.data() + count_off, &shrunk, 4);
  payload.resize(payload.size() - 16);

  SearchResponse got;
  const Status s = DecodeSearchResponse(payload, &got);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(got.counters.entries_scanned, 99u);
  EXPECT_EQ(got.counters.pair_seeks, 0u);
  EXPECT_EQ(got.counters.pair_entries_decoded, 0u);
}

TEST(NetWireTest, CursorModeMapping) {
  EXPECT_FALSE(ToCursorMode(WireCursorMode::kDefault).has_value());
  EXPECT_EQ(ToCursorMode(WireCursorMode::kSequential), CursorMode::kSequential);
  EXPECT_EQ(ToCursorMode(WireCursorMode::kSeek), CursorMode::kSeek);
  EXPECT_EQ(ToCursorMode(WireCursorMode::kAdaptive), CursorMode::kAdaptive);
}

TEST(NetWireTest, UnknownCursorModeInRequestRejected) {
  SearchRequest req;
  req.query = "'x'";
  std::string payload = Payload(EncodeSearchRequest(req));
  // mode byte: prologue(10) + top_k(4) = offset 14.
  payload[14] = 9;
  SearchRequest out;
  EXPECT_EQ(DecodeSearchRequest(payload, &out).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace net
}  // namespace fts
