#include "lang/translate.h"

#include <gtest/gtest.h>

#include "calculus/naive_eval.h"
#include "lang/parser.h"
#include "text/corpus.h"

namespace fts {
namespace {

// Parse COMP syntax, translate to the calculus, evaluate with the naive
// oracle — checking the Section 4 denotations end to end.
std::vector<NodeId> RunQuery(const Corpus& corpus, const std::string& query) {
  auto parsed = ParseQuery(query, SurfaceLanguage::kComp);
  EXPECT_TRUE(parsed.ok()) << query << ": " << parsed.status().ToString();
  if (!parsed.ok()) return {};
  auto calc = TranslateToCalculus(*parsed);
  EXPECT_TRUE(calc.ok()) << query << ": " << calc.status().ToString();
  if (!calc.ok()) return {};
  NaiveCalculusEvaluator oracle(&corpus);
  auto result = oracle.Evaluate(*calc);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : std::vector<NodeId>{};
}

struct TranslateFixture : public ::testing::Test {
  void SetUp() override {
    corpus.AddDocument("efficient task completion now");   // 0
    corpus.AddDocument("task now completion efficient");   // 1
    corpus.AddDocument("efficient work");                  // 2
    corpus.AddDocument("");                                // 3
  }
  Corpus corpus;
};

TEST_F(TranslateFixture, TokenLiteral) {
  EXPECT_EQ(RunQuery(corpus, "'task'"), (std::vector<NodeId>{0, 1}));
}

TEST_F(TranslateFixture, AnyMatchesNonEmptyNodes) {
  EXPECT_EQ(RunQuery(corpus, "ANY"), (std::vector<NodeId>{0, 1, 2}));
}

TEST_F(TranslateFixture, BooleanConnectives) {
  EXPECT_EQ(RunQuery(corpus, "'task' AND 'efficient'"), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(RunQuery(corpus, "'work' OR 'now'"), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(RunQuery(corpus, "NOT 'task'"), (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(RunQuery(corpus, "'efficient' AND NOT 'work'"), (std::vector<NodeId>{0, 1}));
}

TEST_F(TranslateFixture, SomeWithHas) {
  EXPECT_EQ(RunQuery(corpus, "SOME p (p HAS 'work')"), (std::vector<NodeId>{2}));
  EXPECT_EQ(RunQuery(corpus, "SOME p (p HAS ANY)"), (std::vector<NodeId>{0, 1, 2}));
}

TEST_F(TranslateFixture, EverySemantics) {
  // All positions hold 'efficient' or 'work': node 2 only — and the empty
  // node 3 vacuously.
  EXPECT_EQ(RunQuery(corpus, "EVERY p (p HAS 'efficient' OR p HAS 'work')"),
            (std::vector<NodeId>{2, 3}));
}

TEST_F(TranslateFixture, PredicatesViaDistance) {
  // 'task' adjacent to 'completion' in order: node 0 (task@1 completion@2),
  // not node 1 (task@0 ... completion@2).
  EXPECT_EQ(RunQuery(corpus,
                "SOME p1 SOME p2 (p1 HAS 'task' AND p2 HAS 'completion' AND "
                "odistance(p1, p2, 0))"),
            (std::vector<NodeId>{0}));
}

TEST_F(TranslateFixture, DistSugarMatchesExpandedForm) {
  Corpus c2;
  c2.AddDocument("alpha beta gamma delta");
  c2.AddDocument("alpha x x x x x x beta");
  EXPECT_EQ(RunQuery(c2, "dist('alpha', 'beta', 2)"), (std::vector<NodeId>{0}));
  EXPECT_EQ(RunQuery(c2, "dist('alpha', 'beta', 10)"), (std::vector<NodeId>{0, 1}));
  // ANY operand.
  EXPECT_EQ(RunQuery(c2, "dist('delta', ANY, 0)"), (std::vector<NodeId>{0}));
}

TEST_F(TranslateFixture, UnboundVariableIsError) {
  auto parsed = ParseQuery("p HAS 'x'", SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  auto calc = TranslateToCalculus(*parsed);
  EXPECT_FALSE(calc.ok());
  EXPECT_NE(calc.status().message().find("outside any SOME/EVERY"),
            std::string::npos);
}

TEST_F(TranslateFixture, ShadowingBindsInnermost) {
  // Inner SOME p shadows the outer one; the inner conjunct constrains the
  // inner variable only.
  EXPECT_EQ(RunQuery(corpus,
                "SOME p (p HAS 'task' AND SOME p (p HAS 'work'))"),
            (std::vector<NodeId>{}));
  EXPECT_EQ(RunQuery(corpus,
                "SOME p (p HAS 'efficient' AND SOME p (p HAS 'work'))"),
            (std::vector<NodeId>{2}));
}

TEST_F(TranslateFixture, PaperUseCase104) {
  // "contains 'efficient' and the phrase 'task completion' in that order
  // with at most 10 intervening tokens" (Example 1 / Use Case 10.4).
  Corpus books;
  books.AddDocument(
      "usability of a software measures how well the software supports "
      "achieving an efficient software task completion here");       // 0: yes
  books.AddDocument("efficient software but the phrase comes much too "
                    "late x x x x x x x x x x x task completion");   // 1: no
  books.AddDocument("task completion before efficient");             // 2: no
  const std::string query =
      "SOME e SOME t SOME c (e HAS 'efficient' AND t HAS 'task' AND "
      "c HAS 'completion' AND odistance(t, c, 0) AND odistance(e, t, 10))";
  EXPECT_EQ(RunQuery(books, query), (std::vector<NodeId>{0}));
}

}  // namespace
}  // namespace fts
