// The paper's worked examples, verbatim: the Figure 1 document, the three
// calculus queries of Section 2.2.1, their algebra counterparts of Section
// 2.3.1, and the Figure 2 / Section 5.5.1 evaluation walkthrough.

#include <gtest/gtest.h>

#include "algebra/fta.h"
#include "calculus/naive_eval.h"
#include "eval/pos_cursor.h"
#include "index/index_builder.h"
#include "text/corpus.h"

namespace fts {
namespace {

const PositionPredicate* Get(const std::string& name) {
  return PredicateRegistry::Default().Find(name);
}

// Figure 1's book element (its token stream), plus two foil documents so
// the queries have something to discriminate against.
struct PaperCorpus : public ::testing::Test {
  void SetUp() override {
    corpus.AddDocument(
        "book id 1000 usability author Elina Rose author content Usability "
        "Definition p Usability of a software measures how well the software "
        "supports achieving an efficient software p p A software is More on "
        "usability of a software content book");                        // 0
    corpus.AddDocument("test driven development");                      // 1
    corpus.AddDocument("usability test results and test coverage");     // 2
    index = IndexBuilder::Build(corpus);
  }

  std::vector<NodeId> EvalCalc(const CalcQuery& q) {
    NaiveCalculusEvaluator oracle(&corpus);
    auto r = oracle.Evaluate(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : std::vector<NodeId>{};
  }

  std::vector<NodeId> EvalAlg(const FtaExprPtr& e) {
    auto r = EvaluateFta(e, index, nullptr, nullptr);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->Nodes() : std::vector<NodeId>{};
  }

  Corpus corpus;
  InvertedIndex index;
};

// Section 2.2.1, query 1: nodes containing 'test' and 'usability';
// Section 2.3.1: π_CNode(R_test ⋈ R_usability).
TEST_F(PaperCorpus, CalculusQuery1AndItsAlgebraForm) {
  CalcQuery calc{CalcExpr::Exists(
      1, CalcExpr::And(CalcExpr::HasToken(1, "test"),
                       CalcExpr::Exists(2, CalcExpr::HasToken(2, "usability"))))};
  EXPECT_EQ(EvalCalc(calc), (std::vector<NodeId>{2}));

  auto join = FtaExpr::Join(FtaExpr::Token("test"), FtaExpr::Token("usability"));
  auto plan = FtaExpr::Project(join, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(EvalAlg(*plan), (std::vector<NodeId>{2}));
}

// Section 2.2.1, query 2: 'test' and 'usability' within distance 5;
// Section 2.3.1: π_CNode(σ_distance(p1,p2,5)(R_test ⋈ R_usability)).
TEST_F(PaperCorpus, CalculusQuery2AndItsAlgebraForm) {
  CalcQuery calc{CalcExpr::Exists(
      1, CalcExpr::And(
             CalcExpr::HasToken(1, "test"),
             CalcExpr::Exists(
                 2, CalcExpr::And(CalcExpr::HasToken(2, "usability"),
                                  CalcExpr::Pred(Get("distance"), {1, 2}, {5})))))};
  EXPECT_EQ(EvalCalc(calc), (std::vector<NodeId>{2}));

  auto join = FtaExpr::Join(FtaExpr::Token("test"), FtaExpr::Token("usability"));
  AlgebraPredicateCall call;
  call.pred = Get("distance");
  call.cols = {0, 1};
  call.consts = {5};
  auto sel = FtaExpr::Select(join, call);
  ASSERT_TRUE(sel.ok());
  auto plan = FtaExpr::Project(*sel, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(EvalAlg(*plan), (std::vector<NodeId>{2}));
}

// Section 2.2.1, query 3: two occurrences of 'test' and no 'usability';
// Section 2.3.1: π_CNode((σ_diffpos(R_test ⋈ R_test)) ⋈ (SearchContext −
// π_CNode(R_usability))).
TEST_F(PaperCorpus, CalculusQuery3AndItsAlgebraForm) {
  CalcQuery calc{CalcExpr::Exists(
      1,
      CalcExpr::And(
          CalcExpr::HasToken(1, "test"),
          CalcExpr::Exists(
              2, CalcExpr::And(
                     CalcExpr::HasToken(2, "test"),
                     CalcExpr::And(
                         CalcExpr::Pred(Get("diffpos"), {1, 2}, {}),
                         CalcExpr::ForAll(
                             3, CalcExpr::Not(CalcExpr::HasToken(3, "usability"))))))))};
  // Node 1 has one 'test'; node 2 has two but also 'usability'.
  EXPECT_EQ(EvalCalc(calc), (std::vector<NodeId>{}));

  auto tt = FtaExpr::Join(FtaExpr::Token("test"), FtaExpr::Token("test"));
  AlgebraPredicateCall diff;
  diff.pred = Get("diffpos");
  diff.cols = {0, 1};
  auto two_tests = FtaExpr::Select(tt, diff);
  ASSERT_TRUE(two_tests.ok());
  auto two_tests_nodes = FtaExpr::Project(*two_tests, {});
  ASSERT_TRUE(two_tests_nodes.ok());
  auto usability_nodes = FtaExpr::Project(FtaExpr::Token("usability"), {});
  ASSERT_TRUE(usability_nodes.ok());
  auto no_usability = FtaExpr::Difference(FtaExpr::SearchContext(), *usability_nodes);
  ASSERT_TRUE(no_usability.ok());
  auto plan = FtaExpr::Join(*two_tests_nodes, *no_usability);
  EXPECT_EQ(EvalAlg(plan), (std::vector<NodeId>{}));

  // Drop the foil 'usability' from node 2's variant and the query matches.
  Corpus corpus2;
  corpus2.AddDocument("test results and test coverage");
  InvertedIndex index2 = IndexBuilder::Build(corpus2);
  auto rel = EvaluateFta(plan, index2, nullptr, nullptr);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->Nodes(), (std::vector<NodeId>{0}));
}

// Figure 2 / Section 5.5.1: the inverted lists for 'usability' (1,3,12,39)
// and 'software' (1,25,29,42-ish) — the walkthrough finds the distance-5
// pair by scanning 3+3 positions instead of 3*3 pairs.
TEST(PaperFigure2, SingleScanWalkthrough) {
  // Build a document whose two token lists have exactly the Figure 2
  // positions for context node 1: usability@{3,12,39}, software@{25,29,42}.
  Corpus corpus;
  corpus.AddDocument("pad");  // node 0: keep ids aligned with the figure
  std::vector<std::string> tokens;
  for (uint32_t i = 0; i <= 50; ++i) tokens.push_back("x" + std::to_string(i));
  tokens[3] = tokens[12] = tokens[39] = "usability";
  tokens[25] = tokens[29] = tokens[42] = "software";
  corpus.AddTokens(tokens);
  InvertedIndex index = IndexBuilder::Build(corpus);

  auto join = FtaExpr::Join(FtaExpr::Token("usability"), FtaExpr::Token("software"));
  AlgebraPredicateCall call;
  call.pred = PredicateRegistry::Default().Find("distance");
  call.cols = {0, 1};
  call.consts = {5};
  auto sel = FtaExpr::Select(join, call);
  ASSERT_TRUE(sel.ok());

  EvalCounters counters;
  PipelineContext ctx{&index, nullptr, &counters};
  auto cursor = BuildPipeline(*sel, ctx);
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ((*cursor)->AdvanceNode(), 1u);
  // The paper's solution pair: (39, 42).
  EXPECT_EQ((*cursor)->position(0).offset, 39u);
  EXPECT_EQ((*cursor)->position(1).offset, 42u);
  // "it is sufficient to determine the answer by only scanning 6 pairs of
  // positions (3 + 3 instead of 3 * 3)".
  EXPECT_LE(counters.positions_scanned, 6u);
  EXPECT_EQ((*cursor)->AdvanceNode(), kInvalidNode);
}

}  // namespace
}  // namespace fts
