#include "common/rng.h"

#include <gtest/gtest.h>

namespace fts {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRatioRoughlyMatchesP) {
  Rng rng(12);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(ZipfSamplerTest, RankZeroIsMostFrequent) {
  Rng rng(13);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(ZipfSamplerTest, ProbabilitiesSumToOne) {
  ZipfSampler zipf(50, 1.2);
  double total = 0;
  for (size_t i = 0; i < 50; ++i) total += zipf.Probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, EmpiricalFrequencyTracksProbability) {
  Rng rng(14);
  ZipfSampler zipf(20, 1.0);
  std::vector<int> counts(20, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, zipf.Probability(r), 0.01);
  }
}

}  // namespace
}  // namespace fts
