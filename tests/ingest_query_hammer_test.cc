// Concurrent ingest + query hammer: the liveness and retirement half of
// the segment architecture's contract (docs/ingestion.md). While writer
// threads Add/Delete/Refresh/Compact against an IngestService — with the
// background merger compacting underneath — query threads drive a
// SearchService bound to the same SnapshotSource. Every query must
// complete successfully against whichever generation it acquired at
// dequeue (well-formed: strictly ascending global ids, one score per
// node), no query ever blocks on ingest or a snapshot swap (asserted by
// forward progress: queries keep completing while a writer sits in
// synchronous Compact loops), and an old generation retires — frees its
// segments — exactly when the last query holding it drains, proven with a
// weak_ptr observer. Under ThreadSanitizer (the CI tsan job) this is the
// data-race proof for the writer mutex / leaf snapshot lock / refcounted
// generation design.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <iterator>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/ingest_service.h"
#include "exec/search_service.h"
#include "index/index_snapshot.h"
#include "testing/random_workload.h"

namespace fts {
namespace {

constexpr int kQueryThreads = 4;
constexpr auto kRunFor = std::chrono::milliseconds(400);

/// A short random document over the shared test vocabulary.
std::string RandomDoc(Rng* rng) {
  std::string doc;
  const uint64_t len = rng->UniformRange(3, 10);
  for (uint64_t i = 0; i < len; ++i) {
    if (!doc.empty()) doc += ' ';
    doc += RandomWorkloadToken(rng);
  }
  return doc;
}

/// The query mix: conjunctions, disjunctions, and a negation over the same
/// vocabulary, so results are non-trivial at every generation.
const char* RandomQuery(Rng* rng) {
  static const char* kQueries[] = {
      "'a'",          "'a' AND 'b'",        "'b' OR 'c'",
      "'c' AND 'd'",  "'d' OR ('e' AND 'f')", "'e' AND (NOT 'a')",
  };
  return kQueries[rng->Uniform(std::size(kQueries))];
}

/// One well-formedness check per result: ids strictly ascending (the
/// per-segment concatenation contract) and scores aligned with nodes.
void CheckResult(const StatusOr<RoutedResult>& r, const std::string& query,
                 std::vector<std::string>* failures, std::mutex* mu) {
  std::string failure;
  if (!r.ok()) {
    failure = "status " + r.status().ToString();
  } else {
    const auto& nodes = r->result.nodes;
    for (size_t i = 1; i < nodes.size(); ++i) {
      if (nodes[i - 1] >= nodes[i]) {
        failure = "ids not strictly ascending";
        break;
      }
    }
    if (failure.empty() && !r->result.scores.empty() &&
        r->result.scores.size() != nodes.size()) {
      failure = "scores misaligned with nodes";
    }
  }
  if (!failure.empty()) {
    std::lock_guard<std::mutex> lock(*mu);
    failures->push_back(query + ": " + failure);
  }
}

TEST(IngestQueryHammer, QueriesServeAcrossGenerationsAndOldOnesRetire) {
  IngestService::Options ingest_options;
  ingest_options.max_buffered_docs = 8;  // frequent seals -> many generations
  ingest_options.merge_factor = 4;       // background merger kicks in early
  IngestService ingest(ingest_options);

  SearchService::Options serve_options;
  serve_options.num_workers = 4;
  serve_options.scoring = ScoringKind::kTfIdf;
  SearchService service(&ingest, serve_options);

  // Seed one generation and keep a weak observer on it: by the end of the
  // run many newer generations exist, so it must have been freed once the
  // last query holding it drained.
  {
    Rng rng(99);
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(ingest.Add(RandomDoc(&rng)).ok());
    ASSERT_TRUE(ingest.Refresh().ok());
  }
  std::weak_ptr<const IndexSnapshot> early_generation;
  {
    auto held = ingest.snapshot();
    ASSERT_GT(held->total_nodes(), 0u);
    early_generation = held;
  }

  std::atomic<bool> stop{false};
  std::mutex failures_mu;
  std::vector<std::string> failures;
  std::atomic<uint64_t> queries_done{0};

  // Writer: a steady stream of adds with occasional deletes and explicit
  // refreshes. Deletes target ids from a just-acquired snapshot; a
  // concurrent compaction can invalidate the id (generation-relative
  // semantics), so InvalidArgument is tolerated — any other failure is not.
  std::thread writer([&] {
    Rng rng(4242);
    while (!stop.load(std::memory_order_relaxed)) {
      auto id = ingest.Add(RandomDoc(&rng));
      if (!id.ok()) {
        std::lock_guard<std::mutex> lock(failures_mu);
        failures.push_back("Add: " + id.status().ToString());
        return;
      }
      if (rng.Bernoulli(0.15)) {
        auto snapshot = ingest.snapshot();
        if (snapshot->total_nodes() > 0) {
          const Status s = ingest.Delete(rng.Uniform(snapshot->total_nodes()));
          if (!s.ok() && s.code() != StatusCode::kInvalidArgument) {
            std::lock_guard<std::mutex> lock(failures_mu);
            failures.push_back("Delete: " + s.ToString());
            return;
          }
        }
      }
      if (rng.Bernoulli(0.1)) {
        const Status s = ingest.Refresh();
        if (!s.ok()) {
          std::lock_guard<std::mutex> lock(failures_mu);
          failures.push_back("Refresh: " + s.ToString());
          return;
        }
      }
    }
  });

  // Compactor: synchronous full compactions in a loop. Compact holds the
  // writer mutex for the whole merge — queries must keep completing
  // regardless (they only touch the leaf snapshot lock).
  std::thread compactor([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const Status s = ingest.Compact();
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(failures_mu);
        failures.push_back("Compact: " + s.ToString());
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  std::vector<std::thread> queriers;
  for (int t = 0; t < kQueryThreads; ++t) {
    queriers.emplace_back([&, t] {
      Rng rng(1000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string query = RandomQuery(&rng);
        CheckResult(service.Search(query), query, &failures, &failures_mu);
        queries_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(kRunFor);
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  compactor.join();
  for (std::thread& q : queriers) q.join();

  for (const std::string& f : failures) ADD_FAILURE() << f;
  EXPECT_GT(queries_done.load(), 0u);
  EXPECT_TRUE(ingest.merger_status().ok())
      << ingest.merger_status().ToString();

  // Retirement: drain the service (joins workers, so every per-query
  // Searcher — and the generation it pinned — is gone). The early
  // generation has long been superseded, so nothing references it now.
  service.Shutdown();
  EXPECT_GT(ingest.snapshot()->generation(), 1u);
  EXPECT_TRUE(early_generation.expired())
      << "a superseded generation is still pinned after all queries drained";

  const ServiceMetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.completed + m.failed, m.submitted);
  EXPECT_EQ(m.failed, 0u);
}

}  // namespace
}  // namespace fts
