// Randomized instantiation of Theorem 1: for random calculus queries over
// random corpora, the compiled algebra evaluation equals the naive first-
// order evaluation; and translating the compiled plan back to the calculus
// (Lemma 1) evaluates to the same node set.

#include <gtest/gtest.h>

#include "calculus/analysis.h"
#include "calculus/naive_eval.h"
#include "common/rng.h"
#include "compile/ftc_to_fta.h"
#include "compile/fta_to_ftc.h"
#include "index/index_builder.h"
#include "text/corpus.h"

namespace fts {
namespace {

const PositionPredicate* Get(const std::string& name) {
  return PredicateRegistry::Default().Find(name);
}

// Small vocabulary so negations and conjunctions are non-trivially
// satisfiable on small documents.
const char* kVocab[] = {"a", "b", "c", "d"};

Corpus RandomCorpus(Rng* rng) {
  Corpus corpus;
  const int docs = 4 + static_cast<int>(rng->Uniform(4));
  for (int d = 0; d < docs; ++d) {
    const int len = static_cast<int>(rng->Uniform(9));  // includes empty docs
    std::vector<std::string> tokens;
    for (int i = 0; i < len; ++i) {
      tokens.push_back(kVocab[rng->Uniform(4)]);
    }
    corpus.AddTokens(tokens);
  }
  return corpus;
}

// Random closed calculus query. `vars` tracks in-scope quantified
// variables; depth bounds the tree.
CalcExprPtr RandomExpr(Rng* rng, std::vector<VarId>* vars, VarId* next, int depth) {
  const bool can_use_var = !vars->empty();
  // Leaf or structural choice.
  const uint64_t kind = rng->Uniform(depth <= 0 ? 3 : 8);
  switch (kind) {
    case 0:  // hasToken on an in-scope var (or fresh existential)
    case 1: {
      if (can_use_var && rng->Bernoulli(0.7)) {
        return CalcExpr::HasToken((*vars)[rng->Uniform(vars->size())],
                                  kVocab[rng->Uniform(4)]);
      }
      const VarId v = (*next)++;
      return CalcExpr::Exists(v, CalcExpr::HasToken(v, kVocab[rng->Uniform(4)]));
    }
    case 2: {  // predicate over in-scope vars
      if (!can_use_var) {
        const VarId v = (*next)++;
        return CalcExpr::Exists(v, CalcExpr::HasPos(v));
      }
      const VarId v1 = (*vars)[rng->Uniform(vars->size())];
      const VarId v2 = (*vars)[rng->Uniform(vars->size())];
      switch (rng->Uniform(4)) {
        case 0:
          return CalcExpr::Pred(Get("distance"), {v1, v2},
                                {static_cast<int64_t>(rng->Uniform(4))});
        case 1:
          return CalcExpr::Pred(Get("ordered"), {v1, v2}, {});
        case 2:
          return CalcExpr::Pred(Get("diffpos"), {v1, v2}, {});
        default:
          return CalcExpr::Pred(Get("not_distance"), {v1, v2},
                                {static_cast<int64_t>(rng->Uniform(3))});
      }
    }
    case 3:
      return CalcExpr::Not(RandomExpr(rng, vars, next, depth - 1));
    case 4:
      return CalcExpr::And(RandomExpr(rng, vars, next, depth - 1),
                           RandomExpr(rng, vars, next, depth - 1));
    case 5:
      return CalcExpr::Or(RandomExpr(rng, vars, next, depth - 1),
                          RandomExpr(rng, vars, next, depth - 1));
    case 6: {
      const VarId v = (*next)++;
      vars->push_back(v);
      CalcExprPtr body = RandomExpr(rng, vars, next, depth - 1);
      vars->pop_back();
      return CalcExpr::Exists(v, std::move(body));
    }
    default: {
      const VarId v = (*next)++;
      vars->push_back(v);
      CalcExprPtr body = RandomExpr(rng, vars, next, depth - 1);
      vars->pop_back();
      return CalcExpr::ForAll(v, std::move(body));
    }
  }
}

class EquivalenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceProperty, CompiledAlgebraMatchesNaiveCalculus) {
  Rng rng(GetParam());
  Corpus corpus = RandomCorpus(&rng);
  InvertedIndex index = IndexBuilder::Build(corpus);
  NaiveCalculusEvaluator oracle(&corpus);

  for (int trial = 0; trial < 40; ++trial) {
    std::vector<VarId> vars;
    VarId next = 0;
    CalcQuery query{RandomExpr(&rng, &vars, &next, 3)};
    if (!ValidateQuery(query).ok()) continue;  // (should not happen)

    auto expected = oracle.Evaluate(query);
    ASSERT_TRUE(expected.ok()) << query.ToString();

    auto plan = CompileQuery(query);
    ASSERT_TRUE(plan.ok()) << query.ToString() << "\n" << plan.status().ToString();
    auto rel = EvaluateFta(*plan, index, nullptr, nullptr);
    ASSERT_TRUE(rel.ok()) << (*plan)->ToString();
    EXPECT_EQ(rel->Nodes(), *expected)
        << "query: " << query.ToString() << "\nplan: " << (*plan)->ToString();
  }
}

TEST_P(EquivalenceProperty, Lemma1BackTranslationAgrees) {
  Rng rng(GetParam() ^ 0x9E3779B97F4A7C15ULL);
  Corpus corpus = RandomCorpus(&rng);
  InvertedIndex index = IndexBuilder::Build(corpus);
  NaiveCalculusEvaluator oracle(&corpus);

  for (int trial = 0; trial < 15; ++trial) {
    std::vector<VarId> vars;
    VarId next = 0;
    CalcQuery query{RandomExpr(&rng, &vars, &next, 2)};
    auto plan = CompileQuery(query);
    ASSERT_TRUE(plan.ok()) << query.ToString();

    auto back = TranslateFtaQuery(*plan);
    ASSERT_TRUE(back.ok()) << (*plan)->ToString();
    auto via_back = oracle.Evaluate(*back);
    ASSERT_TRUE(via_back.ok());
    auto direct = oracle.Evaluate(query);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(*via_back, *direct) << query.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace fts
