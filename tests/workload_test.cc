#include "workload/corpus_gen.h"

#include <gtest/gtest.h>

#include "index/block_posting_list.h"
#include "index/index_builder.h"
#include "lang/classify.h"
#include "lang/parser.h"
#include "workload/query_gen.h"

namespace fts {
namespace {

TEST(CorpusGenTest, DeterministicForSeed) {
  CorpusGenOptions opts;
  opts.num_nodes = 20;
  opts.max_doc_len = 60;
  Corpus a = GenerateCorpus(opts);
  Corpus b = GenerateCorpus(opts);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    ASSERT_EQ(a.doc(n).size(), b.doc(n).size());
    for (size_t i = 0; i < a.doc(n).size(); ++i) {
      EXPECT_EQ(a.token_text(a.doc(n).tokens[i]), b.token_text(b.doc(n).tokens[i]));
    }
  }
}

TEST(CorpusGenTest, DifferentSeedsDiffer) {
  CorpusGenOptions a_opts, b_opts;
  a_opts.num_nodes = b_opts.num_nodes = 10;
  b_opts.seed = a_opts.seed + 1;
  Corpus a = GenerateCorpus(a_opts);
  Corpus b = GenerateCorpus(b_opts);
  bool differ = false;
  for (NodeId n = 0; n < 10 && !differ; ++n) {
    if (a.doc(n).size() != b.doc(n).size()) {
      differ = true;
      break;
    }
    for (size_t i = 0; i < a.doc(n).size(); ++i) {
      if (a.token_text(a.doc(n).tokens[i]) != b.token_text(b.doc(n).tokens[i])) {
        differ = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differ);
}

TEST(CorpusGenTest, RespectsShapeParameters) {
  CorpusGenOptions opts;
  opts.num_nodes = 100;
  opts.min_doc_len = 30;
  opts.max_doc_len = 50;
  Corpus corpus = GenerateCorpus(opts);
  EXPECT_EQ(corpus.num_nodes(), 100u);
  for (NodeId n = 0; n < corpus.num_nodes(); ++n) {
    EXPECT_GE(corpus.doc(n).size(), 30u);
    EXPECT_LE(corpus.doc(n).size(), 50u);
  }
}

TEST(CorpusGenTest, TopicTokensControlListShape) {
  CorpusGenOptions opts;
  opts.num_nodes = 200;
  opts.min_doc_len = 80;
  opts.max_doc_len = 120;
  opts.num_topic_tokens = 2;
  opts.topic_doc_fraction = 0.5;
  opts.topic_occurrences = 10;
  Corpus corpus = GenerateCorpus(opts);
  InvertedIndex index = IndexBuilder::Build(corpus);
  const BlockPostingList* list = index.block_list_for_text(TopicToken(0));
  ASSERT_NE(list, nullptr);
  // Roughly half the documents contain the topic token...
  EXPECT_NEAR(static_cast<double>(list->num_entries()), 100.0, 25.0);
  // ...with close to the requested occurrence count (collisions between
  // planted slots can only lower it).
  double avg = static_cast<double>(list->total_positions()) / list->num_entries();
  EXPECT_GT(avg, 8.0);
  EXPECT_LE(avg, 10.0);
}

TEST(CorpusGenTest, StructuralOrdinalsAreMonotone) {
  CorpusGenOptions opts;
  opts.num_nodes = 5;
  Corpus corpus = GenerateCorpus(opts);
  for (NodeId n = 0; n < corpus.num_nodes(); ++n) {
    const TokenizedDocument& doc = corpus.doc(n);
    for (size_t i = 1; i < doc.positions.size(); ++i) {
      EXPECT_LE(doc.positions[i - 1].sentence, doc.positions[i].sentence);
      EXPECT_LE(doc.positions[i - 1].paragraph, doc.positions[i].paragraph);
    }
  }
}

TEST(QueryGenTest, PolarityNoneIsBoolean) {
  QueryGenOptions opts;
  opts.polarity = QueryPolarity::kNone;
  opts.num_tokens = 3;
  const std::string q = GenerateQuery(opts);
  EXPECT_EQ(q, "'topic0' AND 'topic1' AND 'topic2'");
  auto parsed = ParseQuery(q, SurfaceLanguage::kBool);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(ClassifyQuery(*parsed), LanguageClass::kBoolNoNeg);
}

TEST(QueryGenTest, PositiveQueriesClassifyAsPpred) {
  QueryGenOptions opts;
  opts.polarity = QueryPolarity::kPositive;
  opts.num_tokens = 3;
  opts.num_predicates = 2;
  auto parsed = ParseQuery(GenerateQuery(opts), SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok()) << GenerateQuery(opts);
  EXPECT_EQ(ClassifyQuery(*parsed), LanguageClass::kPpred);
}

TEST(QueryGenTest, NegativeQueriesClassifyAsNpred) {
  QueryGenOptions opts;
  opts.polarity = QueryPolarity::kNegative;
  opts.num_tokens = 3;
  opts.num_predicates = 2;
  auto parsed = ParseQuery(GenerateQuery(opts), SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok()) << GenerateQuery(opts);
  EXPECT_EQ(ClassifyQuery(*parsed), LanguageClass::kNpred);
}

TEST(QueryGenTest, ParameterSweepStaysParseable) {
  for (uint32_t toks = 1; toks <= 5; ++toks) {
    for (uint32_t preds = 0; preds <= 4; ++preds) {
      for (QueryPolarity pol : {QueryPolarity::kNone, QueryPolarity::kPositive,
                                QueryPolarity::kNegative}) {
        QueryGenOptions opts;
        opts.num_tokens = toks;
        opts.num_predicates = preds;
        opts.polarity = pol;
        const std::string q = GenerateQuery(opts);
        auto parsed = ParseQuery(q, SurfaceLanguage::kComp);
        EXPECT_TRUE(parsed.ok()) << q << ": " << parsed.status().ToString();
      }
    }
  }
}

TEST(QueryGenTest, QueryTokensMatchGeneratedQuery) {
  QueryGenOptions opts;
  opts.num_tokens = 2;
  opts.first_topic = 3;
  EXPECT_EQ(QueryTokens(opts),
            (std::vector<std::string>{"topic3", "topic4"}));
}

}  // namespace
}  // namespace fts
