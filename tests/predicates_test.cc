#include "predicates/predicate.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "predicates/builtin.h"

namespace fts {
namespace {

const PositionPredicate* Get(const std::string& name) {
  const PositionPredicate* p = PredicateRegistry::Default().Find(name);
  EXPECT_NE(p, nullptr) << name;
  return p;
}

PositionInfo P(uint32_t off, uint32_t sent = 0, uint32_t para = 0) {
  return PositionInfo{off, sent, para};
}

TEST(PredicatesTest, DistanceSemantics) {
  const auto* d = Get("distance");
  // "at most dist intervening tokens": offsets 3 and 5 have 1 intervening.
  EXPECT_TRUE(d->Eval(std::vector<PositionInfo>{P(3), P(5)}, std::vector<int64_t>{1}));
  EXPECT_FALSE(d->Eval(std::vector<PositionInfo>{P(3), P(5)}, std::vector<int64_t>{0}));
  // Symmetric.
  EXPECT_TRUE(d->Eval(std::vector<PositionInfo>{P(5), P(3)}, std::vector<int64_t>{1}));
  // Adjacent tokens have zero intervening.
  EXPECT_TRUE(d->Eval(std::vector<PositionInfo>{P(3), P(4)}, std::vector<int64_t>{0}));
}

TEST(PredicatesTest, OrderedDistanceSemantics) {
  const auto* d = Get("odistance");
  EXPECT_TRUE(d->Eval(std::vector<PositionInfo>{P(3), P(4)}, std::vector<int64_t>{0}));
  EXPECT_FALSE(d->Eval(std::vector<PositionInfo>{P(4), P(3)}, std::vector<int64_t>{0}));
  EXPECT_FALSE(d->Eval(std::vector<PositionInfo>{P(3), P(3)}, std::vector<int64_t>{5}));
  EXPECT_TRUE(d->Eval(std::vector<PositionInfo>{P(3), P(14)}, std::vector<int64_t>{10}));
  EXPECT_FALSE(d->Eval(std::vector<PositionInfo>{P(3), P(15)}, std::vector<int64_t>{10}));
}

TEST(PredicatesTest, OrderedSemantics) {
  const auto* o = Get("ordered");
  EXPECT_TRUE(o->Eval(std::vector<PositionInfo>{P(1), P(2)}, {}));
  EXPECT_FALSE(o->Eval(std::vector<PositionInfo>{P(2), P(1)}, {}));
  EXPECT_FALSE(o->Eval(std::vector<PositionInfo>{P(2), P(2)}, {}));
}

TEST(PredicatesTest, StructuralPredicates) {
  const auto* sp = Get("samepara");
  const auto* ss = Get("samesentence");
  EXPECT_TRUE(sp->Eval(std::vector<PositionInfo>{P(1, 0, 3), P(9, 2, 3)}, {}));
  EXPECT_FALSE(sp->Eval(std::vector<PositionInfo>{P(1, 0, 3), P(9, 2, 4)}, {}));
  EXPECT_TRUE(ss->Eval(std::vector<PositionInfo>{P(1, 2, 0), P(3, 2, 0)}, {}));
  EXPECT_FALSE(ss->Eval(std::vector<PositionInfo>{P(1, 2, 0), P(3, 3, 0)}, {}));
}

TEST(PredicatesTest, WindowIsVariadic) {
  const auto* w = Get("window");
  EXPECT_TRUE(w->Eval(std::vector<PositionInfo>{P(3), P(7), P(5)},
                      std::vector<int64_t>{4}));
  EXPECT_FALSE(w->Eval(std::vector<PositionInfo>{P(3), P(8), P(5)},
                       std::vector<int64_t>{4}));
  EXPECT_TRUE(w->ValidateSignature(5, 1).ok());
  EXPECT_FALSE(w->ValidateSignature(1, 1).ok());
}

TEST(PredicatesTest, NegativePredicatesAreComplements) {
  Rng rng(3);
  struct Pair {
    const char* pos;
    const char* neg;
    std::vector<int64_t> consts;
  };
  for (const Pair& pair : {Pair{"distance", "not_distance", {4}},
                           Pair{"ordered", "not_ordered", {}},
                           Pair{"samepara", "not_samepara", {}},
                           Pair{"samesentence", "not_samesentence", {}}}) {
    const auto* pos = Get(pair.pos);
    const auto* neg = Get(pair.neg);
    for (int i = 0; i < 200; ++i) {
      const uint32_t o1 = static_cast<uint32_t>(rng.Uniform(30));
      const uint32_t o2 = static_cast<uint32_t>(rng.Uniform(30));
      std::vector<PositionInfo> ps{P(o1, o1 / 5, o1 / 10), P(o2, o2 / 5, o2 / 10)};
      EXPECT_NE(pos->Eval(ps, pair.consts), neg->Eval(ps, pair.consts))
          << pair.pos << " offsets " << o1 << "," << o2;
    }
  }
}

TEST(PredicatesTest, DiffposSemantics) {
  const auto* d = Get("diffpos");
  EXPECT_TRUE(d->Eval(std::vector<PositionInfo>{P(1), P(2)}, {}));
  EXPECT_FALSE(d->Eval(std::vector<PositionInfo>{P(2), P(2)}, {}));
}

TEST(PredicatesTest, SignatureValidation) {
  const auto* d = Get("distance");
  EXPECT_TRUE(d->ValidateSignature(2, 1).ok());
  EXPECT_FALSE(d->ValidateSignature(3, 1).ok());
  EXPECT_FALSE(d->ValidateSignature(2, 0).ok());
}

TEST(PredicatesTest, DistanceScoreFactorAttenuatesWithGap) {
  const auto* d = Get("distance");
  const double close = d->ScoreFactor(std::vector<PositionInfo>{P(3), P(4)},
                                      std::vector<int64_t>{10});
  const double far = d->ScoreFactor(std::vector<PositionInfo>{P(3), P(12)},
                                    std::vector<int64_t>{10});
  EXPECT_GT(close, far);
  EXPECT_GE(far, 0.0);
  EXPECT_LE(close, 1.0);
}

TEST(PredicateRegistryTest, RejectsDuplicates) {
  PredicateRegistry registry;
  RegisterBuiltinPredicates(&registry);
  class Dup : public PositionPredicate {
    std::string_view name() const override { return "distance"; }
    int arity() const override { return 2; }
    int num_constants() const override { return 1; }
    PredicateClass cls() const override { return PredicateClass::kGeneral; }
    bool Eval(std::span<const PositionInfo>, std::span<const int64_t>) const override {
      return true;
    }
  };
  EXPECT_FALSE(registry.Register(std::make_shared<Dup>()).ok());
}

TEST(PredicateRegistryTest, UserPredicatesExtendTheLanguage) {
  PredicateRegistry registry;
  RegisterBuiltinPredicates(&registry);
  // The model is "extensible with respect to the set of predicates"
  // (Section 2.1): register a predicate that is true when both positions
  // fall in the first sentence.
  class FirstSentence : public PositionPredicate {
    std::string_view name() const override { return "firstsentence"; }
    int arity() const override { return 2; }
    int num_constants() const override { return 0; }
    PredicateClass cls() const override { return PredicateClass::kGeneral; }
    bool Eval(std::span<const PositionInfo> ps, std::span<const int64_t>) const override {
      return ps[0].sentence == 0 && ps[1].sentence == 0;
    }
  };
  ASSERT_TRUE(registry.Register(std::make_shared<FirstSentence>()).ok());
  const auto* p = registry.Find("firstsentence");
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->Eval(std::vector<PositionInfo>{P(0, 0, 0), P(1, 0, 0)}, {}));
}

// ---------------------------------------------------------------------------
// Definition 1 property: for every failing tuple of a positive predicate,
// (a) some advance bound strictly exceeds its coordinate, and (b) every
// tuple inside the bounded region also fails. Checked by exhaustive
// sampling over a small position space.
// ---------------------------------------------------------------------------

struct PositiveCase {
  const char* name;
  std::vector<int64_t> consts;
};

class PositivePredicateProperty : public ::testing::TestWithParam<PositiveCase> {};

TEST_P(PositivePredicateProperty, Definition1Holds) {
  const auto* pred = Get(GetParam().name);
  ASSERT_EQ(pred->cls(), PredicateClass::kPositive);
  const auto& consts = GetParam().consts;
  const uint32_t kMax = 18;
  auto mk = [](uint32_t off) { return P(off, off / 4, off / 8); };
  for (uint32_t a = 0; a < kMax; ++a) {
    for (uint32_t b = 0; b < kMax; ++b) {
      std::vector<PositionInfo> ps{mk(a), mk(b)};
      if (pred->Eval(ps, consts)) continue;
      std::vector<uint32_t> bounds(2);
      pred->AdvanceBounds(ps, consts, bounds);
      // (a) progress is guaranteed.
      EXPECT_TRUE(bounds[0] > a || bounds[1] > b)
          << GetParam().name << "(" << a << "," << b << ")";
      // (b) the skipped region contains no solutions.
      for (uint32_t a2 = a; a2 < bounds[0] && a2 < kMax; ++a2) {
        for (uint32_t b2 = b; b2 < kMax; ++b2) {
          std::vector<PositionInfo> q{mk(a2), mk(b2)};
          EXPECT_FALSE(pred->Eval(q, consts))
              << GetParam().name << " region violation: failing (" << a << "," << b
              << ") claims (" << a2 << "," << b2 << ") fails too";
        }
      }
      for (uint32_t b2 = b; b2 < bounds[1] && b2 < kMax; ++b2) {
        for (uint32_t a2 = a; a2 < kMax; ++a2) {
          std::vector<PositionInfo> q{mk(a2), mk(b2)};
          EXPECT_FALSE(pred->Eval(q, consts)) << GetParam().name;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Builtins, PositivePredicateProperty,
    ::testing::Values(PositiveCase{"distance", {3}}, PositiveCase{"odistance", {3}},
                      PositiveCase{"ordered", {}}, PositiveCase{"samepara", {}},
                      PositiveCase{"samesentence", {}}, PositiveCase{"le", {}},
                      PositiveCase{"samepos", {}}),
    [](const ::testing::TestParamInfo<PositiveCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Negative-predicate property (Section 5.6.1): when the largest position is
// advanced to NegativeAdvanceTarget, the predicate becomes satisfiable
// there, and no smaller advance of the largest position can satisfy it.
// ---------------------------------------------------------------------------

struct NegativeCase {
  const char* name;
  std::vector<int64_t> consts;
  bool offset_only;  // structural predicates advance one step at a time
};

class NegativePredicateProperty : public ::testing::TestWithParam<NegativeCase> {};

TEST_P(NegativePredicateProperty, AdvanceTargetIsMinimalForOffsetPredicates) {
  const auto* pred = Get(GetParam().name);
  ASSERT_EQ(pred->cls(), PredicateClass::kNegative);
  const auto& consts = GetParam().consts;
  const uint32_t kMax = 24;
  for (uint32_t a = 0; a < kMax; ++a) {
    for (uint32_t b = a; b < kMax; ++b) {  // ordering: a <= b, largest = index 1
      std::vector<PositionInfo> ps{P(a), P(b)};
      if (pred->Eval(ps, consts)) continue;
      const uint32_t target = pred->NegativeAdvanceTarget(ps, consts, 1);
      if (target == kInvalidOffset) {
        // Unsatisfiable by moving the largest: verify exhaustively.
        for (uint32_t b2 = b; b2 < kMax; ++b2) {
          std::vector<PositionInfo> q{P(a), P(b2)};
          EXPECT_FALSE(pred->Eval(q, consts)) << GetParam().name;
        }
        continue;
      }
      EXPECT_GT(target, b) << GetParam().name;
      if (!GetParam().offset_only) continue;
      // Offset-based predicates: target is exactly the first satisfying
      // offset with the smaller position fixed.
      std::vector<PositionInfo> at{P(a), P(target)};
      EXPECT_TRUE(pred->Eval(at, consts)) << GetParam().name << " at target";
      for (uint32_t b2 = b; b2 < target; ++b2) {
        std::vector<PositionInfo> q{P(a), P(b2)};
        EXPECT_FALSE(pred->Eval(q, consts))
            << GetParam().name << " target not minimal";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Builtins, NegativePredicateProperty,
    ::testing::Values(NegativeCase{"not_distance", {4}, true},
                      NegativeCase{"diffpos", {}, true},
                      NegativeCase{"not_samepara", {}, false},
                      NegativeCase{"not_samesentence", {}, false}),
    [](const ::testing::TestParamInfo<NegativeCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace fts
