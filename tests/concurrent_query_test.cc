// Concurrent shared-index evaluation, pinned bit-identical to
// single-threaded.
//
// The serving model (docs/threading.md) claims an InvertedIndex is
// immutable after load and every engine is safe to share across threads,
// with all mutable state in per-thread ExecContexts and the sharded
// SharedBlockCache. This suite runs a slice of the differential harness's
// workload (same generators: testing/random_workload.h) from N threads
// against one shared index — in both storage modes (heap and mmap with
// lazy first-touch validation) and all three cursor modes — and asserts
// that every thread's nodes AND scores are bit-identical to a
// single-threaded baseline. Under ThreadSanitizer (the CI tsan job) this
// doubles as the data-race proof for the shared read path: concurrent
// first-touch validation memoization, shared L2 lookups/evictions, and
// shared engine/router state.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "eval/router.h"
#include "exec/search_service.h"
#include "index/index_builder.h"
#include "index/index_io.h"
#include "index/shared_block_cache.h"
#include "testing/random_workload.h"
#include "text/corpus.h"

namespace fts {
namespace {

constexpr int kThreads = 8;

/// Round-trips `src` through a v3 temp file and loads it back mmap'd with
/// lazy first-touch validation (file removed immediately; the mapping pins
/// the inode).
InvertedIndex LoadMmapTwin(const InvertedIndex& src, const std::string& tag) {
  const std::string path =
      ::testing::TempDir() + "/fts_conc_mmap_" + tag + ".idx";
  EXPECT_TRUE(SaveIndexToFile(src, path).ok());
  LoadOptions options;
  options.mode = LoadOptions::Mode::kMmap;
  InvertedIndex twin;
  EXPECT_TRUE(LoadIndexFromFile(path, &twin, options).ok());
  std::remove(path.c_str());
  EXPECT_TRUE(twin.lazy_validation());
  return twin;
}

/// The workload slice: a seeded corpus plus random queries from every
/// engine's language class (generators shared with the 240-combo
/// differential harness).
struct Workload {
  Corpus corpus;
  std::vector<LangExprPtr> queries;
};

Workload MakeWorkload(uint64_t seed) {
  Workload w;
  Rng rng(seed * 7919 + 17);
  w.corpus = RandomWorkloadCorpus(&rng, 30, 6);
  for (int i = 0; i < 6; ++i) w.queries.push_back(RandomBoolQuery(&rng, 3));
  for (int i = 0; i < 4; ++i) {
    w.queries.push_back(RandomPipelinedQuery(&rng, /*allow_negative=*/false));
  }
  for (int i = 0; i < 3; ++i) {
    w.queries.push_back(RandomPipelinedQuery(&rng, /*allow_negative=*/true));
  }
  return w;
}

struct Baseline {
  std::vector<NodeId> nodes;
  std::vector<double> scores;
  std::string engine;
};

/// Evaluates every query once, single-threaded, through a fresh router
/// with no shared cache — the reference the threads are pinned against.
std::vector<Baseline> SingleThreadedBaseline(const QueryRouter& router,
                                             const std::vector<LangExprPtr>& queries) {
  std::vector<Baseline> out;
  for (const LangExprPtr& q : queries) {
    auto r = router.EvaluateParsed(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    Baseline b;
    if (r.ok()) {
      b.nodes = r->result.nodes;
      b.scores = r->result.scores;
      b.engine = r->engine;
    }
    out.push_back(std::move(b));
  }
  return out;
}

/// Runs `queries` from kThreads threads against `router` (one ExecContext
/// per thread) and records any divergence from `baseline`. Threads repeat
/// the set `rounds` times so later rounds hit warm L1/L2 state — the
/// cache-served path must be as bit-identical as the cold one.
void HammerRouter(const QueryRouter& router,
                  const std::vector<LangExprPtr>& queries,
                  const std::vector<Baseline>& baseline, int rounds,
                  const char* what) {
  std::mutex failures_mu;
  std::vector<std::string> failures;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ExecContext ctx = router.MakeContext();
      for (int round = 0; round < rounds; ++round) {
        for (size_t i = 0; i < queries.size(); ++i) {
          auto r = router.EvaluateParsed(queries[i], ctx);
          std::string failure;
          if (!r.ok()) {
            failure = "status " + r.status().ToString();
          } else if (r->result.nodes != baseline[i].nodes) {
            failure = "nodes diverged";
          } else if (r->result.scores != baseline[i].scores) {
            // Bit-exact double comparison on purpose: same arithmetic,
            // same order, only the thread differs.
            failure = "scores diverged";
          } else if (r->engine != baseline[i].engine) {
            failure = "routed to " + r->engine + " not " + baseline[i].engine;
          }
          if (!failure.empty()) {
            std::lock_guard<std::mutex> lock(failures_mu);
            failures.push_back(std::string(what) + ": thread " +
                               std::to_string(t) + " query " +
                               std::to_string(i) + ": " + failure);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const std::string& f : failures) ADD_FAILURE() << f;
}

class ConcurrentQuery : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConcurrentQuery, ThreadsMatchSingleThreadedBaseline) {
  const Workload w = MakeWorkload(GetParam());
  InvertedIndex heap_index = IndexBuilder::Build(w.corpus);
  InvertedIndex mmap_index =
      LoadMmapTwin(heap_index, "base_" + std::to_string(GetParam()));

  const CursorMode kModes[] = {CursorMode::kSequential, CursorMode::kSeek,
                               CursorMode::kAdaptive};
  const std::pair<const InvertedIndex*, const char*> kStorage[] = {
      {&heap_index, "heap"}, {&mmap_index, "mmap"}};

  for (const auto& [index, storage] : kStorage) {
    for (CursorMode mode : kModes) {
      // Baseline: no L2, fresh context per query, one thread. TF-IDF
      // scoring so score arithmetic is part of the contract.
      QueryRouter reference(index, ScoringKind::kTfIdf, mode);
      const std::vector<Baseline> baseline =
          SingleThreadedBaseline(reference, w.queries);

      // Shared router with a (deliberately small, eviction-churning) L2.
      SharedBlockCache::Options cache_options;
      cache_options.capacity_blocks = 64;
      cache_options.shards = 4;
      RouterOptions options;
      options.scoring = ScoringKind::kTfIdf;
      options.mode = mode;
      options.shared_cache = std::make_shared<SharedBlockCache>(cache_options);
      QueryRouter shared(index, options);
      HammerRouter(shared, w.queries, baseline, /*rounds=*/2,
                   (std::string(storage) + "/" + CursorModeToString(mode)).c_str());
    }
  }
}

TEST_P(ConcurrentQuery, ColdMmapFirstTouchRace) {
  // All threads start on a freshly mapped index at once, so first-touch
  // validation of the same blocks races maximally (the memoization is
  // atomic; duplicate validation is benign). L2 shared from the first
  // decode on.
  const Workload w = MakeWorkload(GetParam());
  InvertedIndex heap_index = IndexBuilder::Build(w.corpus);
  InvertedIndex mmap_index =
      LoadMmapTwin(heap_index, "cold_" + std::to_string(GetParam()));

  QueryRouter reference(&mmap_index, ScoringKind::kProbabilistic,
                        CursorMode::kAdaptive);
  const std::vector<Baseline> baseline =
      SingleThreadedBaseline(reference, w.queries);

  // A second fresh twin so the hammer starts with every block unverified.
  InvertedIndex cold_index =
      LoadMmapTwin(heap_index, "cold2_" + std::to_string(GetParam()));
  RouterOptions options;
  options.scoring = ScoringKind::kProbabilistic;
  options.shared_cache = std::make_shared<SharedBlockCache>();
  QueryRouter shared(&cold_index, options);
  HammerRouter(shared, w.queries, baseline, /*rounds=*/1, "cold-mmap");
}

TEST_P(ConcurrentQuery, ServiceMatchesSingleThreadedBaseline) {
  // The same pinning through the SearchService worker pool: batch
  // submission fans the workload across workers (as strings — ToString()
  // emits the surface grammar); every future must carry the
  // single-threaded result of its parsed twin.
  const Workload w = MakeWorkload(GetParam());
  InvertedIndex index = IndexBuilder::Build(w.corpus);

  QueryRouter reference(&index, ScoringKind::kTfIdf, CursorMode::kAdaptive);
  const std::vector<Baseline> baseline =
      SingleThreadedBaseline(reference, w.queries);

  SearchService::Options options;
  options.num_workers = kThreads;
  options.scoring = ScoringKind::kTfIdf;
  SearchService service(&index, options);
  std::vector<std::string> texts;
  texts.reserve(w.queries.size());
  for (const LangExprPtr& q : w.queries) texts.push_back(q->ToString());
  for (int round = 0; round < 3; ++round) {
    std::vector<StatusOr<RoutedResult>> results = service.SearchBatch(texts);
    ASSERT_EQ(results.size(), baseline.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok())
          << texts[i] << ": " << results[i].status().ToString();
      EXPECT_EQ(results[i]->result.nodes, baseline[i].nodes) << texts[i];
      EXPECT_EQ(results[i]->result.scores, baseline[i].scores) << texts[i];
      EXPECT_EQ(results[i]->engine, baseline[i].engine) << texts[i];
    }
  }
  const ServiceMetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.submitted, 3 * texts.size());
  EXPECT_EQ(m.completed, 3 * texts.size());
  EXPECT_EQ(m.failed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentQuery, ::testing::Values(1, 2, 5));

}  // namespace
}  // namespace fts
