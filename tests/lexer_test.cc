#include "lang/lexer.h"

#include <gtest/gtest.h>

namespace fts {
namespace {

std::vector<LexKind> Kinds(const std::vector<LexToken>& toks) {
  std::vector<LexKind> out;
  for (const LexToken& t : toks) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto toks = LexQuery("not AND oR some EVERY any HaS");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(Kinds(*toks),
            (std::vector<LexKind>{LexKind::kNot, LexKind::kAnd, LexKind::kOr,
                                  LexKind::kSome, LexKind::kEvery, LexKind::kAny,
                                  LexKind::kHas, LexKind::kEnd}));
}

TEST(LexerTest, StringLiterals) {
  auto toks = LexQuery("'task completion'");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 2u);
  EXPECT_EQ((*toks)[0].kind, LexKind::kString);
  EXPECT_EQ((*toks)[0].text, "task completion");
}

TEST(LexerTest, EmptyStringLiteral) {
  auto toks = LexQuery("''");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "");
}

TEST(LexerTest, UnterminatedStringFails) {
  auto toks = LexQuery("'oops");
  EXPECT_FALSE(toks.ok());
  EXPECT_NE(toks.status().message().find("unterminated"), std::string::npos);
}

TEST(LexerTest, IntegersIncludingNegative) {
  auto toks = LexQuery("10 -3");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, LexKind::kInt);
  EXPECT_EQ((*toks)[0].value, 10);
  EXPECT_EQ((*toks)[1].value, -3);
}

TEST(LexerTest, PunctuationAndOffsets) {
  auto toks = LexQuery("dist(a, b)");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(Kinds(*toks),
            (std::vector<LexKind>{LexKind::kIdent, LexKind::kLParen, LexKind::kIdent,
                                  LexKind::kComma, LexKind::kIdent, LexKind::kRParen,
                                  LexKind::kEnd}));
  EXPECT_EQ((*toks)[0].offset, 0u);
  EXPECT_EQ((*toks)[1].offset, 4u);
  EXPECT_EQ((*toks)[4].offset, 8u);
}

TEST(LexerTest, UnexpectedCharacterReportsOffset) {
  auto toks = LexQuery("a & b");
  EXPECT_FALSE(toks.ok());
  EXPECT_NE(toks.status().message().find("offset 2"), std::string::npos);
}

TEST(LexerTest, EmptyInputYieldsEndOnly) {
  auto toks = LexQuery("   ");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 1u);
  EXPECT_EQ((*toks)[0].kind, LexKind::kEnd);
}

TEST(LexerTest, IdentifiersWithUnderscoresAndDigits) {
  auto toks = LexQuery("not_distance p1");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, LexKind::kIdent);
  EXPECT_EQ((*toks)[0].text, "not_distance");
  EXPECT_EQ((*toks)[1].text, "p1");
}

}  // namespace
}  // namespace fts
