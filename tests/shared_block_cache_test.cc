// SharedBlockCache (cross-query L2) unit and concurrency tests: hit/miss
// accounting, eviction keepalive via shared_ptr handout, the two-level
// L1→L2 fallthrough, the cursor's L2 path for L1-bypassed lists, and a
// multi-threaded hammer over a deliberately tiny cache (eviction churn
// while readers hold blocks).

#include "index/shared_block_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/block_posting_list.h"
#include "index/decoded_block_cache.h"

namespace fts {
namespace {

/// A list of `entries` entries in blocks of `block_size`, one position per
/// entry, node ids 0,2,4,...
BlockPostingList MakeList(uint32_t block_size, uint32_t entries) {
  BlockPostingList list(block_size);
  for (uint32_t i = 0; i < entries; ++i) {
    PositionInfo p{i + 1, i / 7, i / 19};
    list.Append(static_cast<NodeId>(2 * i), {&p, 1});
  }
  list.Finish();
  return list;
}

TEST(SharedBlockCacheTest, MissDecodesThenHits) {
  BlockPostingList list = MakeList(8, 64);  // 8 blocks
  SharedBlockCache cache;
  EvalCounters counters;

  auto b0 = cache.GetOrDecode(list, 0, &counters);
  ASSERT_NE(b0, nullptr);
  EXPECT_EQ(b0->entries.size(), 8u);
  EXPECT_EQ(b0->entries[0].header.node, 0u);
  EXPECT_EQ(counters.shared_cache_misses, 1u);
  EXPECT_EQ(counters.shared_cache_hits, 0u);
  EXPECT_EQ(counters.blocks_decoded, 1u);

  auto again = cache.GetOrDecode(list, 0, &counters);
  EXPECT_EQ(again.get(), b0.get());
  EXPECT_EQ(counters.shared_cache_hits, 1u);
  EXPECT_EQ(counters.blocks_decoded, 1u);  // hit decodes nothing

  const SharedBlockCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.resident_blocks, 1u);
}

TEST(SharedBlockCacheTest, EvictionNeverInvalidatesReaders) {
  BlockPostingList list = MakeList(4, 512);  // 128 blocks
  SharedBlockCache::Options options;
  options.capacity_blocks = 8;
  options.shards = 1;  // single shard: strict LRU, deterministic eviction
  SharedBlockCache cache(options);

  auto held = cache.GetOrDecode(list, 0, nullptr);
  ASSERT_NE(held, nullptr);
  // Push far more blocks than capacity through the cache.
  for (size_t b = 1; b < list.num_blocks(); ++b) {
    ASSERT_NE(cache.GetOrDecode(list, b, nullptr), nullptr);
  }
  EXPECT_LE(cache.size(), 8u);
  EXPECT_GT(cache.stats().evictions, 0u);
  // The held block was evicted long ago; the shared_ptr keeps it valid.
  EXPECT_EQ(held->entries.size(), 4u);
  EXPECT_EQ(held->entries[3].header.node, 6u);
}

TEST(SharedBlockCacheTest, ResidentBytesTrackInsertAndEviction) {
  BlockPostingList list = MakeList(4, 64);  // 16 blocks
  SharedBlockCache::Options options;
  options.capacity_blocks = 4;
  options.shards = 1;  // single shard: strict LRU, deterministic eviction
  SharedBlockCache cache(options);

  // Empty cache: every gauge at zero, one shard reported.
  SharedBlockCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.resident_blocks, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);
  ASSERT_EQ(stats.shards.size(), 1u);
  EXPECT_EQ(stats.shards[0].keys, 0u);
  EXPECT_EQ(stats.shards[0].bytes, 0u);

  // Insertions: the byte gauge is the exact sum of BlockBytes over the
  // resident blocks, and the per-shard rows sum to the totals.
  std::vector<std::shared_ptr<const DecodedBlock>> held;
  size_t expected_bytes = 0;
  for (size_t b = 0; b < 3; ++b) {
    auto block = cache.GetOrDecode(list, b, nullptr);
    ASSERT_NE(block, nullptr);
    expected_bytes += SharedBlockCache::BlockBytes(*block);
    held.push_back(std::move(block));
  }
  stats = cache.stats();
  EXPECT_EQ(stats.resident_blocks, 3u);
  EXPECT_EQ(stats.resident_bytes, expected_bytes);
  ASSERT_EQ(stats.shards.size(), 1u);
  EXPECT_EQ(stats.shards[0].keys, 3u);
  EXPECT_EQ(stats.shards[0].bytes, expected_bytes);

  // Overflow the capacity: evictions must release the evicted blocks'
  // bytes — the gauge tracks residency, not lifetime (readers holding
  // evicted blocks keep the memory alive but it is no longer the cache's).
  for (size_t b = 3; b < list.num_blocks(); ++b) {
    ASSERT_NE(cache.GetOrDecode(list, b, nullptr), nullptr);
  }
  stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  ASSERT_EQ(stats.resident_blocks, 4u);
  size_t resident_sum = 0;
  for (size_t b = list.num_blocks() - 4; b < list.num_blocks(); ++b) {
    auto block = cache.GetOrDecode(list, b, nullptr);  // LRU tail: all hits
    ASSERT_NE(block, nullptr);
    resident_sum += SharedBlockCache::BlockBytes(*block);
  }
  EXPECT_EQ(cache.stats().resident_bytes, resident_sum);
  EXPECT_EQ(cache.stats().shards[0].bytes, resident_sum);
}

TEST(SharedBlockCacheTest, L1MissFallsThroughToL2) {
  BlockPostingList list = MakeList(8, 64);
  SharedBlockCache l2;
  EvalCounters first;
  DecodedBlockCache l1_a(DecodedBlockCache::kDefaultCapacity, &l2);
  auto b = l1_a.GetOrDecode(list, 2, &first);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(first.cache_misses, 1u);         // L1 cold
  EXPECT_EQ(first.shared_cache_misses, 1u);  // L2 cold: decoded once
  EXPECT_EQ(first.blocks_decoded, 1u);

  // A different query (fresh L1) adopts the block from L2 without decoding.
  EvalCounters second;
  DecodedBlockCache l1_b(DecodedBlockCache::kDefaultCapacity, &l2);
  auto adopted = l1_b.GetOrDecode(list, 2, &second);
  ASSERT_NE(adopted, nullptr);
  EXPECT_EQ(adopted.get(), b.get());
  EXPECT_EQ(second.cache_misses, 1u);       // its L1 was cold
  EXPECT_EQ(second.shared_cache_hits, 1u);  // but L2 served it
  EXPECT_EQ(second.blocks_decoded, 0u);

  // Within one query, the L1 short-circuits: no further L2 traffic.
  EvalCounters third;
  auto l1_hit = l1_b.GetOrDecode(list, 2, &third);
  EXPECT_EQ(l1_hit.get(), b.get());
  EXPECT_EQ(third.cache_hits, 1u);
  EXPECT_EQ(third.shared_cache_hits, 0u);
}

TEST(SharedBlockCacheTest, CursorUsesL2ForListsTooBigForL1) {
  // 64 blocks > L1 capacity 16, so the cursor bypasses L1 — but must still
  // read through the attached L2.
  BlockPostingList list = MakeList(4, 256);
  ASSERT_EQ(list.num_blocks(), 64u);
  SharedBlockCache l2;
  DecodedBlockCache l1(/*capacity=*/16, &l2);

  EvalCounters cold;
  BlockListCursor cursor(&list, &cold, &l1);
  while (cursor.NextEntry() != kInvalidNode) {
  }
  EXPECT_EQ(cold.cache_misses, 0u);  // L1 never consulted
  EXPECT_EQ(cold.shared_cache_misses, 64u);
  EXPECT_EQ(cold.blocks_decoded, 64u);

  EvalCounters warm;
  BlockListCursor rescan(&list, &warm, &l1);
  while (rescan.NextEntry() != kInvalidNode) {
  }
  EXPECT_EQ(warm.shared_cache_hits, 64u);
  EXPECT_EQ(warm.blocks_decoded, 0u);
}

TEST(SharedBlockCacheTest, ConcurrentHammerUnderEvictionChurn) {
  // 8 threads, several lists, a cache an order of magnitude smaller than
  // the working set: every lookup races decodes, inserts, and evictions.
  // Under TSan this is the L2's data-race proof; everywhere it pins that
  // whatever a thread gets back is the correct decoded block.
  std::vector<BlockPostingList> lists;
  for (int l = 0; l < 4; ++l) lists.push_back(MakeList(4, 240));
  SharedBlockCache::Options options;
  options.capacity_blocks = 16;
  options.shards = 2;
  SharedBlockCache cache(options);

  std::vector<std::thread> threads;
  std::atomic<int> wrong{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t * 31 + 7);
      for (int i = 0; i < 500; ++i) {
        const BlockPostingList& list = lists[rng.Uniform(lists.size())];
        const size_t block = rng.Uniform(list.num_blocks());
        auto decoded = cache.GetOrDecode(list, block, nullptr);
        if (decoded == nullptr || decoded->entries.size() != 4 ||
            decoded->entries[0].header.node !=
                static_cast<NodeId>(2 * (4 * block))) {
          ++wrong;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0);
  const SharedBlockCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 8u * 500u);
  EXPECT_LE(cache.size(), 16u);
}

}  // namespace
}  // namespace fts
