#include "scoring/tfidf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "algebra/fta.h"
#include "eval/bool_engine.h"
#include "eval/comp_engine.h"
#include "index/index_builder.h"
#include "lang/parser.h"
#include "scoring/probabilistic.h"
#include "workload/corpus_gen.h"

namespace fts {
namespace {

struct ScoringFixture : public ::testing::Test {
  void SetUp() override {
    CorpusGenOptions opts;
    opts.seed = 17;
    opts.num_nodes = 80;
    opts.min_doc_len = 20;
    opts.max_doc_len = 80;
    opts.vocabulary = 300;
    opts.num_topic_tokens = 4;
    opts.topic_doc_fraction = 0.6;
    opts.topic_occurrences = 3;
    corpus = GenerateCorpus(opts);
    index = IndexBuilder::Build(corpus);
  }
  Corpus corpus;
  InvertedIndex index;
};

// ---------------------------------------------------------------------------
// Theorem 2: the TF-IDF score transformations propagate, through the
// algebra, exactly the classical cosine TF-IDF score for conjunctive and
// disjunctive queries (verified at node granularity, where projection's
// score summation realizes the theorem's per-token invariant).
// ---------------------------------------------------------------------------

TEST_F(ScoringFixture, Theorem2SingleToken) {
  TfIdfScoreModel model(&index, {"topic0"});
  auto plan = FtaExpr::Project(FtaExpr::Token("topic0"), {});
  ASSERT_TRUE(plan.ok());
  auto rel = EvaluateFta(*plan, index, &model, nullptr);
  ASSERT_TRUE(rel.ok());
  ASSERT_GT(rel->size(), 0u);
  for (size_t i = 0; i < rel->size(); ++i) {
    EXPECT_NEAR(rel->tuple(i).score, model.DirectNodeScore(rel->tuple(i).node), 1e-9);
  }
}

TEST_F(ScoringFixture, Theorem2Conjunction) {
  TfIdfScoreModel model(&index, {"topic0", "topic1"});
  auto join = FtaExpr::Join(FtaExpr::Token("topic0"), FtaExpr::Token("topic1"));
  auto plan = FtaExpr::Project(join, {});
  ASSERT_TRUE(plan.ok());
  auto rel = EvaluateFta(*plan, index, &model, nullptr);
  ASSERT_TRUE(rel.ok());
  ASSERT_GT(rel->size(), 0u);
  for (size_t i = 0; i < rel->size(); ++i) {
    EXPECT_NEAR(rel->tuple(i).score, model.DirectNodeScore(rel->tuple(i).node), 1e-9)
        << "node " << rel->tuple(i).node;
  }
}

TEST_F(ScoringFixture, Theorem2ThreeWayConjunction) {
  TfIdfScoreModel model(&index, {"topic0", "topic1", "topic2"});
  auto join = FtaExpr::Join(FtaExpr::Join(FtaExpr::Token("topic0"),
                                          FtaExpr::Token("topic1")),
                            FtaExpr::Token("topic2"));
  auto plan = FtaExpr::Project(join, {});
  ASSERT_TRUE(plan.ok());
  auto rel = EvaluateFta(*plan, index, &model, nullptr);
  ASSERT_TRUE(rel.ok());
  ASSERT_GT(rel->size(), 0u);
  for (size_t i = 0; i < rel->size(); ++i) {
    EXPECT_NEAR(rel->tuple(i).score, model.DirectNodeScore(rel->tuple(i).node), 1e-9);
  }
}

TEST_F(ScoringFixture, Theorem2Disjunction) {
  TfIdfScoreModel model(&index, {"topic0", "topic1"});
  auto l = FtaExpr::Project(FtaExpr::Token("topic0"), {});
  auto r = FtaExpr::Project(FtaExpr::Token("topic1"), {});
  ASSERT_TRUE(l.ok());
  ASSERT_TRUE(r.ok());
  auto u = FtaExpr::Union(*l, *r);
  ASSERT_TRUE(u.ok());
  auto rel = EvaluateFta(*u, index, &model, nullptr);
  ASSERT_TRUE(rel.ok());
  ASSERT_GT(rel->size(), 0u);
  for (size_t i = 0; i < rel->size(); ++i) {
    EXPECT_NEAR(rel->tuple(i).score, model.DirectNodeScore(rel->tuple(i).node), 1e-9);
  }
}

TEST_F(ScoringFixture, JoinConservesTotalScore) {
  // The "first law of thermodynamics" remark in Section 3.1: the join
  // neither creates nor destroys score mass.
  TfIdfScoreModel model(&index, {"topic0", "topic1"});
  auto t0 = *OpScanToken(index, "topic0", &model, nullptr);
  auto t1 = *OpScanToken(index, "topic1", &model, nullptr);
  auto joined = OpJoin(t0, t1, &model, nullptr);

  // Sum input scores restricted to nodes surviving the join.
  std::vector<NodeId> nodes = joined.Nodes();
  auto sum_for = [&nodes](const FtRelation& r) {
    double s = 0;
    for (size_t i = 0; i < r.size(); ++i) {
      if (std::binary_search(nodes.begin(), nodes.end(), r.tuple(i).node)) {
        s += r.tuple(i).score;
      }
    }
    return s;
  };
  const double before = sum_for(t0) + sum_for(t1);
  double after = 0;
  for (size_t i = 0; i < joined.size(); ++i) after += joined.tuple(i).score;
  EXPECT_NEAR(before, after, 1e-9);
}

TEST_F(ScoringFixture, PipelinedEnginesMatchCompTfIdfOnConjunctions) {
  BoolEngine bool_engine(&index, ScoringKind::kTfIdf);
  CompEngine comp_engine(&index, ScoringKind::kTfIdf);
  auto parsed = ParseQuery("'topic0' AND 'topic1'", SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  auto b = bool_engine.Evaluate(*parsed);
  auto c = comp_engine.Evaluate(*parsed);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(b->nodes, c->nodes);
  for (size_t i = 0; i < b->nodes.size(); ++i) {
    EXPECT_NEAR(b->scores[i], c->scores[i], 1e-9);
  }
}

TEST_F(ScoringFixture, IdfDecreasesWithDocumentFrequency) {
  TfIdfScoreModel model(&index, {"topic0"});
  // Background token w0 is the most frequent Zipf rank; topics are planted
  // in ~60% of documents. Compare a rare background token to w0.
  const double idf_common = model.Idf("w0");
  const double idf_rare = model.Idf("topic0");
  EXPECT_GT(idf_common, 0.0);
  // Not asserting order between these two specific tokens in general —
  // instead check the monotone law directly on document frequencies.
  const TokenId w0 = index.LookupToken("w0");
  const TokenId t0 = index.LookupToken("topic0");
  ASSERT_NE(w0, kInvalidToken);
  ASSERT_NE(t0, kInvalidToken);
  if (index.df(w0) > index.df(t0)) {
    EXPECT_LT(idf_common, idf_rare);
  } else if (index.df(w0) < index.df(t0)) {
    EXPECT_GT(idf_common, idf_rare);
  }
}

TEST_F(ScoringFixture, OovQueryTokenScoresZero) {
  TfIdfScoreModel model(&index, {"doesnotexist"});
  EXPECT_EQ(model.Idf("doesnotexist"), 0.0);
  EXPECT_EQ(model.DirectNodeScore(0), 0.0);
}

// ---------------------------------------------------------------------------
// Probabilistic model (Section 3.2).
// ---------------------------------------------------------------------------

TEST_F(ScoringFixture, ProbabilisticLeafScoresAreProbabilities) {
  ProbabilisticScoreModel model(&index);
  for (const char* tok : {"topic0", "w0", "w5"}) {
    const TokenId id = index.LookupToken(tok);
    if (id == kInvalidToken) continue;
    const double p = model.LeafScore(index, id, 0);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_F(ScoringFixture, ProbabilisticOperatorsStayInUnitInterval) {
  ProbabilisticScoreModel model(&index);
  const double a = 0.7, b = 0.4;
  EXPECT_NEAR(model.JoinScore(a, 3, b, 5), a * b, 1e-12);
  EXPECT_NEAR(model.UnionBoth(a, b), 1 - (1 - a) * (1 - b), 1e-12);
  EXPECT_NEAR(model.ProjectCombine(a, b), 1 - (1 - a) * (1 - b), 1e-12);
  EXPECT_NEAR(model.IntersectScore(a, b), a * b, 1e-12);
  EXPECT_NEAR(model.NegateScore(a), 1 - a, 1e-12);
  EXPECT_NEAR(model.DifferenceScore(a), a, 1e-12);
}

TEST_F(ScoringFixture, ProbabilisticSelectAttenuatesByDistance) {
  ProbabilisticScoreModel model(&index);
  const auto* dist = PredicateRegistry::Default().Find("distance");
  std::vector<PositionInfo> near{{10, 0, 0}, {11, 0, 0}};
  std::vector<PositionInfo> far{{10, 0, 0}, {18, 0, 0}};
  std::vector<int64_t> consts{10};
  EXPECT_GT(model.SelectScore(0.8, *dist, near, consts),
            model.SelectScore(0.8, *dist, far, consts));
}

TEST_F(ScoringFixture, ProbabilisticEntryScoreIsNoisyOr) {
  ProbabilisticScoreModel model(&index);
  const TokenId t0 = index.LookupToken("topic0");
  ASSERT_NE(t0, kInvalidToken);
  const double p = model.LeafScore(index, t0, 0);
  EXPECT_NEAR(model.EntryScore(index, t0, 0, 3), 1 - std::pow(1 - p, 3), 1e-12);
}

TEST_F(ScoringFixture, TfIdfEntryScoreIsLinear) {
  TfIdfScoreModel model(&index, {"topic0"});
  const TokenId t0 = index.LookupToken("topic0");
  ASSERT_NE(t0, kInvalidToken);
  const double p = model.LeafScore(index, t0, 0);
  EXPECT_NEAR(model.EntryScore(index, t0, 0, 4), 4 * p, 1e-12);
}

// ---------------------------------------------------------------------------
// Block-header scoring reads: df/idf lookups and tf (occurs) reads are
// served from the resident block lists' headers. Pure df lookups decode
// nothing at all, and even DirectNodeScore — which seeks posting entries —
// never decodes position payloads.
// ---------------------------------------------------------------------------

TEST_F(ScoringFixture, DfLookupsDecodeNoBlocks) {
  std::vector<std::string> tokens = {"topic0", "topic1", "w0", "w5", "zzz-oov"};
  EvalCounters counters;
  TfIdfScoreModel model(&index, tokens, &counters);
  // Model construction computes idf (hence df) for every query token.
  EXPECT_EQ(counters.blocks_decoded, 0u);
  EXPECT_EQ(counters.entries_decoded, 0u);
  EXPECT_EQ(counters.positions_decoded, 0u);
  for (const std::string& t : tokens) {
    (void)model.Idf(t);
  }
  for (NodeId n = 0; n < index.num_nodes(); ++n) {
    const TokenId t0 = index.LookupToken("topic0");
    (void)model.LeafScore(index, t0, n);
    (void)model.EntryScore(index, t0, n, 3);
  }
  // df/idf and the per-entry static scores come from block headers and
  // precomputed node scalars: still not a single block decoded — and the
  // decoded-block cache sees no traffic at all (no bulk decodes, no hits,
  // no misses), so caching adds zero work to df/idf-only lookups.
  EXPECT_EQ(counters.blocks_decoded, 0u);
  EXPECT_EQ(counters.entries_decoded, 0u);
  EXPECT_EQ(counters.positions_decoded, 0u);
  EXPECT_EQ(counters.blocks_bulk_decoded, 0u);
  EXPECT_EQ(counters.cache_hits, 0u);
  EXPECT_EQ(counters.cache_misses, 0u);

  // Probabilistic scoring reads df the same way (no cursor at all).
  ProbabilisticScoreModel prob(&index);
  for (TokenId t = 0; t < index.vocabulary_size(); ++t) {
    (void)prob.LeafScore(index, t, 0);
  }
  EXPECT_EQ(counters.blocks_decoded, 0u);
  EXPECT_EQ(counters.cache_hits + counters.cache_misses, 0u);
}

TEST_F(ScoringFixture, DirectNodeScoreNeverDecodesPositions) {
  EvalCounters counters;
  TfIdfScoreModel model(&index, {"topic0", "topic1", "w3"}, &counters);
  double total = 0;
  for (NodeId n = 0; n < index.num_nodes(); ++n) {
    total += model.DirectNodeScore(n);
  }
  EXPECT_GT(total, 0.0);
  // The reference computation seeks entry headers (occurs == pos_count),
  // so blocks decode — but position payloads never do.
  EXPECT_GT(counters.blocks_decoded, 0u);
  EXPECT_EQ(counters.positions_decoded, 0u);
}

TEST_F(ScoringFixture, ScoringAddsNoDecodeWorkToEvaluation) {
  // Scored and unscored runs of the same BOOL query must decode the exact
  // same blocks/entries: the scoring side reads only headers (pos_count)
  // and precomputed statistics, in both cursor modes.
  auto parsed = ParseQuery("'topic0' AND ('topic1' OR NOT 'w2')",
                           SurfaceLanguage::kBool);
  ASSERT_TRUE(parsed.ok());
  for (CursorMode mode : {CursorMode::kSequential, CursorMode::kSeek,
                          CursorMode::kAdaptive}) {
    BoolEngine plain(&index, ScoringKind::kNone, mode);
    BoolEngine tfidf(&index, ScoringKind::kTfIdf, mode);
    BoolEngine prob(&index, ScoringKind::kProbabilistic, mode);
    auto a = plain.Evaluate(*parsed);
    auto b = tfidf.Evaluate(*parsed);
    auto c = prob.Evaluate(*parsed);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_EQ(a->counters.blocks_decoded, b->counters.blocks_decoded);
    EXPECT_EQ(a->counters.entries_decoded, b->counters.entries_decoded);
    EXPECT_EQ(a->counters.blocks_decoded, c->counters.blocks_decoded);
    EXPECT_EQ(a->counters.entries_decoded, c->counters.entries_decoded);
    // The per-query decoded-block cache sees identical traffic too: the
    // scoring side never loads a block the unscored run would not.
    EXPECT_EQ(a->counters.cache_hits, b->counters.cache_hits);
    EXPECT_EQ(a->counters.cache_misses, b->counters.cache_misses);
    EXPECT_EQ(a->counters.cache_hits, c->counters.cache_hits);
    EXPECT_EQ(a->counters.cache_misses, c->counters.cache_misses);
    EXPECT_EQ(a->counters.blocks_bulk_decoded, b->counters.blocks_bulk_decoded);
    // BOOL evaluation is node-level: no PosList is ever decoded, scored or
    // not.
    EXPECT_EQ(a->counters.positions_decoded, 0u);
    EXPECT_EQ(b->counters.positions_decoded, 0u);
    EXPECT_EQ(c->counters.positions_decoded, 0u);
  }
}

}  // namespace
}  // namespace fts
