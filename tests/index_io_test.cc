#include "index/index_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "index/block_posting_list.h"
#include "index/index_builder.h"
#include "workload/corpus_gen.h"

namespace fts {
namespace {

InvertedIndex BuildTestIndex() {
  CorpusGenOptions opts;
  opts.num_nodes = 60;
  opts.min_doc_len = 5;
  opts.max_doc_len = 40;
  opts.vocabulary = 200;
  opts.num_topic_tokens = 3;
  Corpus corpus = GenerateCorpus(opts);
  return IndexBuilder::Build(corpus);
}

void ExpectIndexEq(const InvertedIndex& a, const InvertedIndex& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.vocabulary_size(), b.vocabulary_size());
  EXPECT_EQ(a.stats().ToString(), b.stats().ToString());
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    EXPECT_EQ(a.unique_tokens(n), b.unique_tokens(n));
    EXPECT_DOUBLE_EQ(a.node_norm(n), b.node_norm(n));
  }
  for (TokenId t = 0; t < a.vocabulary_size(); ++t) {
    ASSERT_EQ(a.token_text(t), b.token_text(t));
    const PostingList la = a.block_list(t)->Materialize();
    const PostingList lb = b.block_list(t)->Materialize();
    ASSERT_EQ(la.num_entries(), lb.num_entries()) << a.token_text(t);
    for (size_t i = 0; i < la.num_entries(); ++i) {
      EXPECT_EQ(la.entry(i).node, lb.entry(i).node);
      auto pa = la.positions(la.entry(i));
      auto pb = lb.positions(lb.entry(i));
      ASSERT_EQ(pa.size(), pb.size());
      for (size_t j = 0; j < pa.size(); ++j) {
        EXPECT_EQ(pa[j], pb[j]);
      }
    }
  }
  ASSERT_EQ(a.block_any_list().num_entries(), b.block_any_list().num_entries());
  EXPECT_EQ(a.block_any_list().total_positions(),
            b.block_any_list().total_positions());
}

TEST(IndexIoTest, StringRoundTrip) {
  InvertedIndex index = BuildTestIndex();
  std::string data;
  SaveIndexToString(index, &data);
  InvertedIndex loaded;
  ASSERT_TRUE(LoadIndexFromString(data, &loaded).ok());
  ExpectIndexEq(index, loaded);
}

TEST(IndexIoTest, FileRoundTrip) {
  InvertedIndex index = BuildTestIndex();
  const std::string path = ::testing::TempDir() + "/fts_index_test.idx";
  ASSERT_TRUE(SaveIndexToFile(index, path).ok());
  InvertedIndex loaded;
  ASSERT_TRUE(LoadIndexFromFile(path, &loaded).ok());
  ExpectIndexEq(index, loaded);
  std::remove(path.c_str());
}

TEST(IndexIoTest, RejectsBadMagic) {
  InvertedIndex index = BuildTestIndex();
  std::string data;
  SaveIndexToString(index, &data);
  data[0] = 'X';
  InvertedIndex loaded;
  EXPECT_EQ(LoadIndexFromString(data, &loaded).code(), StatusCode::kCorruption);
}

TEST(IndexIoTest, RejectsTruncation) {
  InvertedIndex index = BuildTestIndex();
  std::string data;
  SaveIndexToString(index, &data);
  data.resize(data.size() / 2);
  InvertedIndex loaded;
  EXPECT_EQ(LoadIndexFromString(data, &loaded).code(), StatusCode::kCorruption);
}

TEST(IndexIoTest, RejectsBitFlips) {
  InvertedIndex index = BuildTestIndex();
  std::string data;
  SaveIndexToString(index, &data);
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x40);
  InvertedIndex loaded;
  EXPECT_EQ(LoadIndexFromString(data, &loaded).code(), StatusCode::kCorruption);
}

TEST(IndexIoTest, EmptyIndexRoundTrips) {
  Corpus corpus;
  InvertedIndex index = IndexBuilder::Build(corpus);
  std::string data;
  SaveIndexToString(index, &data);
  InvertedIndex loaded;
  ASSERT_TRUE(LoadIndexFromString(data, &loaded).ok());
  EXPECT_EQ(loaded.num_nodes(), 0u);
  EXPECT_EQ(loaded.vocabulary_size(), 0u);
}

TEST(IndexIoTest, MissingFileIsIOError) {
  InvertedIndex loaded;
  EXPECT_EQ(LoadIndexFromFile("/nonexistent/path/index.idx", &loaded).code(),
            StatusCode::kIOError);
}

TEST(IndexIoTest, V1FilesStillLoad) {
  // Backward compat: an index saved in the legacy flat v1 format loads into
  // an index equal to the original (including rebuilt block lists).
  InvertedIndex index = BuildTestIndex();
  std::string data;
  SaveIndexToString(index, &data, IndexFormat::kV1);
  ASSERT_EQ(data[6], '1');  // v1 magic
  InvertedIndex loaded;
  ASSERT_TRUE(LoadIndexFromString(data, &loaded).ok());
  ExpectIndexEq(index, loaded);
}

TEST(IndexIoTest, V2IsTheDefaultFormat) {
  InvertedIndex index = BuildTestIndex();
  std::string data;
  SaveIndexToString(index, &data);
  EXPECT_EQ(data[6], '2');  // v2 magic
}

TEST(IndexIoTest, V1AndV2LoadsAreEquivalent) {
  InvertedIndex index = BuildTestIndex();
  std::string v1, v2;
  SaveIndexToString(index, &v1, IndexFormat::kV1);
  SaveIndexToString(index, &v2, IndexFormat::kV2);
  InvertedIndex from_v1, from_v2;
  ASSERT_TRUE(LoadIndexFromString(v1, &from_v1).ok());
  ASSERT_TRUE(LoadIndexFromString(v2, &from_v2).ok());
  ExpectIndexEq(from_v1, from_v2);
}

TEST(IndexIoTest, V2SurvivesResaveRoundTrip) {
  // v2 -> load -> save -> load is byte-stable and content-equal.
  InvertedIndex index = BuildTestIndex();
  std::string first, second;
  SaveIndexToString(index, &first);
  InvertedIndex loaded;
  ASSERT_TRUE(LoadIndexFromString(first, &loaded).ok());
  SaveIndexToString(loaded, &second);
  EXPECT_EQ(first, second);
}

TEST(IndexIoTest, V1RejectsCorruption) {
  InvertedIndex index = BuildTestIndex();
  std::string data;
  SaveIndexToString(index, &data, IndexFormat::kV1);
  data[data.size() / 3] = static_cast<char>(data[data.size() / 3] ^ 0x10);
  InvertedIndex loaded;
  EXPECT_EQ(LoadIndexFromString(data, &loaded).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace fts
