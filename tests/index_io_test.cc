#include "index/index_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "index/block_posting_list.h"
#include "index/index_builder.h"
#include "workload/corpus_gen.h"

namespace fts {
namespace {

InvertedIndex BuildTestIndex() {
  CorpusGenOptions opts;
  opts.num_nodes = 60;
  opts.min_doc_len = 5;
  opts.max_doc_len = 40;
  opts.vocabulary = 200;
  opts.num_topic_tokens = 3;
  Corpus corpus = GenerateCorpus(opts);
  return IndexBuilder::Build(corpus);
}

void ExpectIndexEq(const InvertedIndex& a, const InvertedIndex& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.vocabulary_size(), b.vocabulary_size());
  EXPECT_EQ(a.stats().ToString(), b.stats().ToString());
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    EXPECT_EQ(a.unique_tokens(n), b.unique_tokens(n));
    EXPECT_DOUBLE_EQ(a.node_norm(n), b.node_norm(n));
  }
  for (TokenId t = 0; t < a.vocabulary_size(); ++t) {
    ASSERT_EQ(a.token_text(t), b.token_text(t));
    const PostingList la = a.block_list(t)->Materialize();
    const PostingList lb = b.block_list(t)->Materialize();
    ASSERT_EQ(la.num_entries(), lb.num_entries()) << a.token_text(t);
    for (size_t i = 0; i < la.num_entries(); ++i) {
      EXPECT_EQ(la.entry(i).node, lb.entry(i).node);
      auto pa = la.positions(la.entry(i));
      auto pb = lb.positions(lb.entry(i));
      ASSERT_EQ(pa.size(), pb.size());
      for (size_t j = 0; j < pa.size(); ++j) {
        EXPECT_EQ(pa[j], pb[j]);
      }
    }
  }
  ASSERT_EQ(a.block_any_list().num_entries(), b.block_any_list().num_entries());
  EXPECT_EQ(a.block_any_list().total_positions(),
            b.block_any_list().total_positions());
}

TEST(IndexIoTest, StringRoundTrip) {
  InvertedIndex index = BuildTestIndex();
  std::string data;
  SaveIndexToString(index, &data);
  InvertedIndex loaded;
  ASSERT_TRUE(LoadIndexFromString(data, &loaded).ok());
  ExpectIndexEq(index, loaded);
}

TEST(IndexIoTest, FileRoundTrip) {
  InvertedIndex index = BuildTestIndex();
  const std::string path = ::testing::TempDir() + "/fts_index_test.idx";
  ASSERT_TRUE(SaveIndexToFile(index, path).ok());
  InvertedIndex loaded;
  ASSERT_TRUE(LoadIndexFromFile(path, &loaded).ok());
  ExpectIndexEq(index, loaded);
  std::remove(path.c_str());
}

TEST(IndexIoTest, RejectsBadMagic) {
  InvertedIndex index = BuildTestIndex();
  std::string data;
  SaveIndexToString(index, &data);
  data[0] = 'X';
  InvertedIndex loaded;
  EXPECT_EQ(LoadIndexFromString(data, &loaded).code(), StatusCode::kCorruption);
}

TEST(IndexIoTest, RejectsTruncation) {
  InvertedIndex index = BuildTestIndex();
  std::string data;
  SaveIndexToString(index, &data);
  data.resize(data.size() / 2);
  InvertedIndex loaded;
  EXPECT_EQ(LoadIndexFromString(data, &loaded).code(), StatusCode::kCorruption);
}

TEST(IndexIoTest, RejectsBitFlips) {
  InvertedIndex index = BuildTestIndex();
  std::string data;
  SaveIndexToString(index, &data);
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x40);
  InvertedIndex loaded;
  EXPECT_EQ(LoadIndexFromString(data, &loaded).code(), StatusCode::kCorruption);
}

TEST(IndexIoTest, EmptyIndexRoundTrips) {
  Corpus corpus;
  InvertedIndex index = IndexBuilder::Build(corpus);
  std::string data;
  SaveIndexToString(index, &data);
  InvertedIndex loaded;
  ASSERT_TRUE(LoadIndexFromString(data, &loaded).ok());
  EXPECT_EQ(loaded.num_nodes(), 0u);
  EXPECT_EQ(loaded.vocabulary_size(), 0u);
}

TEST(IndexIoTest, MissingFileIsIOError) {
  // Unopenable files are IOError — distinct from Corruption, which means
  // the file opened but is not a parseable index.
  InvertedIndex loaded;
  EXPECT_EQ(LoadIndexFromFile("/nonexistent/path/index.idx", &loaded).code(),
            StatusCode::kIOError);
  LoadOptions mmap;
  mmap.mode = LoadOptions::Mode::kMmap;
  EXPECT_EQ(LoadIndexFromFile("/nonexistent/path/index.idx", &loaded, mmap).code(),
            StatusCode::kIOError);
}

TEST(IndexIoTest, TooSmallFilesAreRejectedWithDistinctMessage) {
  // Files below the fixed envelope (8-byte magic + 8-byte checksum) must be
  // rejected with a size message before any section parsing can produce a
  // confusing error — in every load mode, and for empty files too.
  const std::string path = ::testing::TempDir() + "/fts_tiny.idx";
  for (size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{15}}) {
    {
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      f.write("FTSIDX3\0ABCDEFG", static_cast<std::streamsize>(len));
    }
    for (auto mode : {LoadOptions::Mode::kEager, LoadOptions::Mode::kMmap}) {
      LoadOptions opts;
      opts.mode = mode;
      InvertedIndex loaded;
      const Status s = LoadIndexFromFile(path, &loaded, opts);
      EXPECT_EQ(s.code(), StatusCode::kCorruption) << len;
      EXPECT_NE(s.ToString().find("smaller than the fixed envelope"),
                std::string::npos)
          << len << ": " << s.ToString();
    }
    InvertedIndex loaded;
    const Status s = LoadIndexFromString(std::string(len, 'x'), &loaded);
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << len;
  }
  std::remove(path.c_str());
}

TEST(IndexIoTest, V1FilesStillLoad) {
  // Backward compat: an index saved in the legacy flat v1 format loads into
  // an index equal to the original (including rebuilt block lists).
  InvertedIndex index = BuildTestIndex();
  std::string data;
  SaveIndexToString(index, &data, IndexFormat::kV1);
  ASSERT_EQ(data[6], '1');  // v1 magic
  InvertedIndex loaded;
  ASSERT_TRUE(LoadIndexFromString(data, &loaded).ok());
  ExpectIndexEq(index, loaded);
}

TEST(IndexIoTest, V6IsTheDefaultFormat) {
  InvertedIndex index = BuildTestIndex();
  std::string data;
  SaveIndexToString(index, &data);
  EXPECT_EQ(data[6], '6');  // v6 magic
}

TEST(IndexIoTest, AllFormatLoadsAreEquivalent) {
  InvertedIndex index = BuildTestIndex();
  std::string v1, v2, v3, v4, v5;
  SaveIndexToString(index, &v1, IndexFormat::kV1);
  SaveIndexToString(index, &v2, IndexFormat::kV2);
  SaveIndexToString(index, &v3, IndexFormat::kV3);
  SaveIndexToString(index, &v4, IndexFormat::kV4);
  SaveIndexToString(index, &v5, IndexFormat::kV5);
  InvertedIndex from_v1, from_v2, from_v3, from_v4, from_v5;
  ASSERT_TRUE(LoadIndexFromString(v1, &from_v1).ok());
  ASSERT_TRUE(LoadIndexFromString(v2, &from_v2).ok());
  ASSERT_TRUE(LoadIndexFromString(v3, &from_v3).ok());
  ASSERT_TRUE(LoadIndexFromString(v4, &from_v4).ok());
  ASSERT_TRUE(LoadIndexFromString(v5, &from_v5).ok());
  ExpectIndexEq(from_v1, from_v2);
  ExpectIndexEq(from_v1, from_v3);
  ExpectIndexEq(from_v1, from_v4);
  ExpectIndexEq(from_v1, from_v5);
}

TEST(IndexIoTest, DefaultFormatSurvivesResaveRoundTrip) {
  // v4 -> load -> save -> load is byte-stable and content-equal (max_tf
  // round-trips through the skip directory, so a resave regenerates
  // identical bytes rather than recomputing different bounds).
  InvertedIndex index = BuildTestIndex();
  std::string first, second;
  SaveIndexToString(index, &first);
  InvertedIndex loaded;
  ASSERT_TRUE(LoadIndexFromString(first, &loaded).ok());
  SaveIndexToString(loaded, &second);
  EXPECT_EQ(first, second);
}

TEST(IndexIoTest, BlockMaxAvailabilityByFormat) {
  // Built indexes and v4 loads carry trustworthy per-block max_tf bounds,
  // and v1 loads rebuild their block lists from raw postings (recomputing
  // the maxima); v2/v3 loads parse a skip directory that predates the
  // statistic and must say so, which makes block-max evaluation fall back
  // to full evaluation instead of trusting garbage bounds.
  InvertedIndex index = BuildTestIndex();
  ASSERT_GT(index.vocabulary_size(), 0u);
  for (TokenId t = 0; t < index.vocabulary_size(); ++t) {
    EXPECT_TRUE(index.block_list(t)->has_block_max());
  }
  struct Case {
    IndexFormat format;
    bool has_block_max;
  };
  for (const Case c : {Case{IndexFormat::kV1, true},
                       Case{IndexFormat::kV2, false},
                       Case{IndexFormat::kV3, false},
                       Case{IndexFormat::kV4, true},
                       Case{IndexFormat::kV5, true}}) {
    std::string data;
    SaveIndexToString(index, &data, c.format);
    InvertedIndex loaded;
    ASSERT_TRUE(LoadIndexFromString(data, &loaded).ok());
    for (TokenId t = 0; t < loaded.vocabulary_size(); ++t) {
      EXPECT_EQ(loaded.block_list(t)->has_block_max(), c.has_block_max)
          << "format " << static_cast<int>(c.format) << " token " << t;
    }
    EXPECT_EQ(loaded.min_uniq_norm(), index.min_uniq_norm());
  }
}

TEST(IndexIoTest, V4RoundTripsExactBlockMaxima) {
  // The loaded skip directory must carry the same per-block max_tf the
  // builder computed — an understated bound would make block-max skipping
  // drop true results.
  InvertedIndex index = BuildTestIndex();
  std::string data;
  SaveIndexToString(index, &data, IndexFormat::kV4);
  InvertedIndex loaded;
  ASSERT_TRUE(LoadIndexFromString(data, &loaded).ok());
  for (TokenId t = 0; t < index.vocabulary_size(); ++t) {
    const BlockPostingList* a = index.block_list(t);
    const BlockPostingList* b = loaded.block_list(t);
    ASSERT_EQ(a->num_blocks(), b->num_blocks());
    for (size_t blk = 0; blk < a->num_blocks(); ++blk) {
      EXPECT_EQ(a->skip(blk).max_tf, b->skip(blk).max_tf) << t << ":" << blk;
      EXPECT_GT(b->skip(blk).max_tf, 0u);  // every block has >= 1 position
    }
  }
}

TEST(IndexIoTest, V4MmapLoadStaysLazyAndKeepsBlockMax) {
  InvertedIndex index = BuildTestIndex();
  const std::string path = ::testing::TempDir() + "/fts_v4_mmap.idx";
  ASSERT_TRUE(SaveIndexToFile(index, path, IndexFormat::kV4).ok());
  LoadOptions mmap;
  mmap.mode = LoadOptions::Mode::kMmap;
  InvertedIndex mapped;
  ASSERT_TRUE(LoadIndexFromFile(path, &mapped, mmap).ok());
  EXPECT_TRUE(mapped.lazy_validation());
  for (TokenId t = 0; t < mapped.vocabulary_size(); ++t) {
    EXPECT_TRUE(mapped.block_list(t)->has_block_max());
  }
  ExpectIndexEq(index, mapped);
  std::remove(path.c_str());
}

// A corpus dense enough that every topic token's posting blocks satisfy
// the bitset classification (128-entry blocks over consecutive node ids:
// span == entries, well under kDenseSpanFactor).
InvertedIndex BuildDenseTestIndex() {
  CorpusGenOptions opts;
  opts.num_nodes = 400;
  opts.min_doc_len = 10;
  opts.max_doc_len = 30;
  opts.vocabulary = 100;
  opts.num_topic_tokens = 2;
  opts.topic_doc_fraction = 1.0;
  opts.topic_occurrences = 3;
  return IndexBuilder::Build(GenerateCorpus(opts));
}

bool AnyBitsetList(const InvertedIndex& index) {
  for (TokenId t = 0; t < index.vocabulary_size(); ++t) {
    if (index.block_list(t)->has_bitset_blocks()) return true;
  }
  return false;
}

TEST(IndexIoTest, V5RoundTripsBitsetBlocks) {
  // A hybrid list (dense bitset + sparse varint blocks) survives a v5
  // save/load byte- and content-exactly, in both storage modes, and the
  // loaded lists keep their bitset encoding (the tag round-trips through
  // the skip directory rather than being re-derived).
  InvertedIndex index = BuildDenseTestIndex();
  ASSERT_TRUE(AnyBitsetList(index)) << "corpus not dense enough to exercise "
                                       "bitset blocks";
  std::string data;
  SaveIndexToString(index, &data, IndexFormat::kV5);
  ASSERT_EQ(data[6], '5');
  InvertedIndex loaded;
  ASSERT_TRUE(LoadIndexFromString(data, &loaded).ok());
  EXPECT_TRUE(AnyBitsetList(loaded));
  ExpectIndexEq(index, loaded);

  const std::string path = ::testing::TempDir() + "/fts_v5_dense.idx";
  ASSERT_TRUE(SaveIndexToFile(index, path, IndexFormat::kV5).ok());
  LoadOptions mmap;
  mmap.mode = LoadOptions::Mode::kMmap;
  InvertedIndex mapped;
  ASSERT_TRUE(LoadIndexFromFile(path, &mapped, mmap).ok());
  EXPECT_TRUE(mapped.lazy_validation());
  EXPECT_TRUE(AnyBitsetList(mapped));
  ExpectIndexEq(index, mapped);
  std::remove(path.c_str());
}

TEST(IndexIoTest, LegacyFormatsTranscodeBitsetBlocksOnSave) {
  // Saving a hybrid index to a v2..v4 format must transcode bitset blocks
  // back to varint so an old magic never fronts bytes old readers cannot
  // parse — content stays identical, only the representation downgrades.
  // (v1 is exempt: it stores flat postings, no block layout at all, and
  // its loader rebuilds block lists with the current hybrid builder.)
  InvertedIndex index = BuildDenseTestIndex();
  ASSERT_TRUE(AnyBitsetList(index));
  for (const IndexFormat format :
       {IndexFormat::kV2, IndexFormat::kV3, IndexFormat::kV4}) {
    std::string data;
    SaveIndexToString(index, &data, format);
    InvertedIndex loaded;
    ASSERT_TRUE(LoadIndexFromString(data, &loaded).ok())
        << static_cast<int>(format);
    EXPECT_FALSE(AnyBitsetList(loaded)) << static_cast<int>(format);
    ExpectIndexEq(index, loaded);
  }
}

TEST(IndexIoTest, V5RejectsEveryDirectoryBitFlip) {
  // The trailer hash covers the whole directory, including the new per-
  // block encoding tags — so flipping any byte before the first payload
  // (conservatively: anywhere in the file; eager loads validate all
  // payloads too) must surface as Corruption, never as a silently
  // reinterpreted block.
  InvertedIndex index = BuildDenseTestIndex();
  std::string data;
  SaveIndexToString(index, &data, IndexFormat::kV5);
  for (size_t i = 8; i < data.size(); i += 97) {  // strided full-file sweep
    std::string mutated = data;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    InvertedIndex loaded;
    EXPECT_EQ(LoadIndexFromString(mutated, &loaded).code(),
              StatusCode::kCorruption)
        << "byte " << i;
  }
}

TEST(IndexIoTest, V2StillLoadsAndRejectsCorruption) {
  InvertedIndex index = BuildTestIndex();
  std::string data;
  SaveIndexToString(index, &data, IndexFormat::kV2);
  ASSERT_EQ(data[6], '2');
  InvertedIndex loaded;
  ASSERT_TRUE(LoadIndexFromString(data, &loaded).ok());
  ExpectIndexEq(index, loaded);
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x04);
  EXPECT_EQ(LoadIndexFromString(data, &loaded).code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Storage modes: eager heap loads vs mmap'd lazy loads.
// ---------------------------------------------------------------------------

TEST(IndexIoTest, StorageModeMatrix) {
  InvertedIndex built = BuildTestIndex();
  EXPECT_EQ(built.storage(), IndexStorage::kOwned);
  EXPECT_FALSE(built.lazy_validation());
  EXPECT_EQ(built.MappedBytes(), 0u);

  const std::string path = ::testing::TempDir() + "/fts_storage_matrix.idx";
  ASSERT_TRUE(SaveIndexToFile(built, path).ok());

  InvertedIndex eager;
  ASSERT_TRUE(LoadIndexFromFile(path, &eager).ok());
  EXPECT_EQ(eager.storage(), IndexStorage::kHeapBuffer);
  EXPECT_FALSE(eager.lazy_validation());
  EXPECT_EQ(eager.MappedBytes(), 0u);

  LoadOptions mmap;
  mmap.mode = LoadOptions::Mode::kMmap;
  InvertedIndex mapped;
  ASSERT_TRUE(LoadIndexFromFile(path, &mapped, mmap).ok());
  EXPECT_EQ(mapped.storage(), IndexStorage::kMapped);
  EXPECT_TRUE(mapped.lazy_validation());
  EXPECT_GT(mapped.MappedBytes(), 0u);
  // Mapped payload bytes are page-cache backed, not heap: the resident
  // accounting of the mapped index must come in below the eager load's
  // (which holds the whole file in its heap source buffer).
  EXPECT_LT(mapped.MemoryUsage(), eager.MemoryUsage());

  ExpectIndexEq(eager, mapped);  // decodes every block: first-touch passes
  ExpectIndexEq(built, mapped);
  std::remove(path.c_str());
}

TEST(IndexIoTest, PrefaultWarmupLoadsIdentically) {
  // LoadOptions::prefault touches every page of the mapping at load time
  // (madvise(MADV_WILLNEED) + a synchronous walk). It must not change any
  // observable property of the loaded index: same storage mode, same lazy
  // first-touch validation, same contents.
  InvertedIndex built = BuildTestIndex();
  const std::string path = ::testing::TempDir() + "/fts_prefault.idx";
  ASSERT_TRUE(SaveIndexToFile(built, path).ok());

  LoadOptions warm;
  warm.mode = LoadOptions::Mode::kMmap;
  warm.prefault = true;
  InvertedIndex prefaulted;
  ASSERT_TRUE(LoadIndexFromFile(path, &prefaulted, warm).ok());
  EXPECT_EQ(prefaulted.storage(), IndexStorage::kMapped);
  EXPECT_TRUE(prefaulted.lazy_validation());
  EXPECT_GT(prefaulted.MappedBytes(), 0u);
  ExpectIndexEq(built, prefaulted);

  // prefault on an eager load is ignored, not an error.
  LoadOptions eager;
  eager.prefault = true;
  InvertedIndex heap;
  ASSERT_TRUE(LoadIndexFromFile(path, &heap, eager).ok());
  EXPECT_EQ(heap.storage(), IndexStorage::kHeapBuffer);
  ExpectIndexEq(built, heap);
  std::remove(path.c_str());
}

TEST(IndexIoTest, MmapLoadOfV1AndV2FallsBackToEagerValidation) {
  InvertedIndex index = BuildTestIndex();
  const std::string path = ::testing::TempDir() + "/fts_mmap_compat.idx";
  LoadOptions mmap;
  mmap.mode = LoadOptions::Mode::kMmap;
  for (IndexFormat format : {IndexFormat::kV1, IndexFormat::kV2}) {
    ASSERT_TRUE(SaveIndexToFile(index, path, format).ok());
    InvertedIndex loaded;
    ASSERT_TRUE(LoadIndexFromFile(path, &loaded, mmap).ok());
    // Older formats cannot defer validation (whole-body checksum), so the
    // load validates eagerly; v2 still views payloads out of the mapping.
    EXPECT_FALSE(loaded.lazy_validation());
    ExpectIndexEq(index, loaded);
  }
  std::remove(path.c_str());
}

TEST(IndexIoTest, MmapSourceOutlivesFileRemoval) {
  // POSIX mmap pins the inode: removing (or write-then-rename replacing)
  // the file under a mapped index must not invalidate it — this is the
  // safe index-replacement protocol documented in docs/index_format.md.
  InvertedIndex index = BuildTestIndex();
  const std::string path = ::testing::TempDir() + "/fts_mmap_unlink.idx";
  ASSERT_TRUE(SaveIndexToFile(index, path).ok());
  LoadOptions mmap;
  mmap.mode = LoadOptions::Mode::kMmap;
  InvertedIndex mapped;
  ASSERT_TRUE(LoadIndexFromFile(path, &mapped, mmap).ok());
  std::remove(path.c_str());
  ExpectIndexEq(index, mapped);  // every block decodes from the pinned map
}

TEST(IndexIoTest, LazyLoadValidatesHeaderCorruptionUpFront) {
  // Header/directory bytes (everything before the first payload) are
  // covered by the v3 trailer checksum and verified even on lazy loads.
  InvertedIndex index = BuildTestIndex();
  std::string data;
  SaveIndexToString(index, &data);
  const std::string path = ::testing::TempDir() + "/fts_mmap_header_flip.idx";
  std::string mutated = data;
  mutated[10] = static_cast<char>(mutated[10] ^ 0x20);  // stats section
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
  }
  LoadOptions mmap;
  mmap.mode = LoadOptions::Mode::kMmap;
  InvertedIndex loaded;
  EXPECT_EQ(LoadIndexFromFile(path, &loaded, mmap).code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IndexIoTest, V1RejectsCorruption) {
  InvertedIndex index = BuildTestIndex();
  std::string data;
  SaveIndexToString(index, &data, IndexFormat::kV1);
  data[data.size() / 3] = static_cast<char>(data[data.size() / 3] ^ 0x10);
  InvertedIndex loaded;
  EXPECT_EQ(LoadIndexFromString(data, &loaded).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace fts
