#include "eval/router.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "text/corpus.h"

namespace fts {
namespace {

struct RouterFixture : public ::testing::Test {
  void SetUp() override {
    corpus.AddDocument("alpha beta gamma delta");           // 0
    corpus.AddDocument("beta x x x x x x x x alpha");       // 1
    corpus.AddDocument("gamma epsilon");                    // 2
    corpus.AddDocument("");                                 // 3
    index = IndexBuilder::Build(corpus);
    router = std::make_unique<QueryRouter>(&index, ScoringKind::kNone);
  }

  Corpus corpus;
  InvertedIndex index;
  std::unique_ptr<QueryRouter> router;
};

TEST_F(RouterFixture, RoutesBoolQueriesToBoolEngine) {
  auto r = router->Evaluate("'alpha' AND 'beta'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->engine, "BOOL");
  EXPECT_EQ(r->language_class, LanguageClass::kBoolNoNeg);
  EXPECT_EQ(r->result.nodes, (std::vector<NodeId>{0, 1}));
}

TEST_F(RouterFixture, RoutesComplementsToBoolEngine) {
  auto r = router->Evaluate("NOT 'alpha'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->engine, "BOOL");
  EXPECT_EQ(r->language_class, LanguageClass::kBool);
  EXPECT_EQ(r->result.nodes, (std::vector<NodeId>{2, 3}));
}

TEST_F(RouterFixture, RoutesPositivePredicatesToPpred) {
  auto r = router->Evaluate(
      "SOME p SOME q (p HAS 'alpha' AND q HAS 'beta' AND distance(p, q, 1))");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->engine, "PPRED");
  EXPECT_EQ(r->result.nodes, (std::vector<NodeId>{0}));
}

TEST_F(RouterFixture, RoutesNegativePredicatesToNpred) {
  auto r = router->Evaluate(
      "SOME p SOME q (p HAS 'alpha' AND q HAS 'beta' AND not_distance(p, q, 1))");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->engine, "NPRED");
  EXPECT_EQ(r->result.nodes, (std::vector<NodeId>{1}));
}

TEST_F(RouterFixture, RoutesUniversalQuantifiersToComp) {
  auto r = router->Evaluate("EVERY p (p HAS 'gamma' OR p HAS 'epsilon')");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->engine, "COMP");
  // Node 2 entirely gamma/epsilon; the empty node 3 vacuously satisfies.
  EXPECT_EQ(r->result.nodes, (std::vector<NodeId>{2, 3}));
}

TEST_F(RouterFixture, AllEnginesAgreeOnSharedQueries) {
  const char* queries[] = {
      "'alpha'",
      "'alpha' AND NOT 'gamma'",
      "'alpha' OR 'epsilon'",
      "dist('alpha', 'beta', 10)",
  };
  for (const char* q : queries) {
    auto parsed = ParseQuery(q, SurfaceLanguage::kComp);
    ASSERT_TRUE(parsed.ok());
    auto routed = router->EvaluateParsed(*parsed);
    ASSERT_TRUE(routed.ok()) << q;
    auto comp = router->comp_engine().Evaluate(*parsed);
    ASSERT_TRUE(comp.ok()) << q;
    EXPECT_EQ(routed->result.nodes, comp->nodes) << q;
  }
}

TEST_F(RouterFixture, ParseErrorsPropagate) {
  auto r = router->Evaluate("'alpha' AND");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RouterFixture, ScoredRouterProducesScores) {
  QueryRouter scored(&index, ScoringKind::kTfIdf);
  auto r = scored.Evaluate("'alpha' AND 'beta'");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->result.scores.size(), r->result.nodes.size());
  for (double s : r->result.scores) EXPECT_GT(s, 0.0);
}

TEST_F(RouterFixture, CountersReportEngineWork) {
  auto r = router->Evaluate("'alpha' AND 'beta'");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->result.counters.entries_scanned, 0u);
}

// ---------------------------------------------------------------------------
// The adaptive access-mode planner (PlanFromDfs): the heuristic the router's
// default CursorMode::kAdaptive engines consult per query/operator.
// ---------------------------------------------------------------------------

TEST(PlannerHeuristicTest, SelectiveDriverPlansSeek) {
  // Driver far below the threshold: 10 * 16 = 160 <= 5000.
  const uint64_t dfs[] = {10, 5000};
  EXPECT_EQ(PlanFromDfs(dfs), CursorMode::kSeek);
}

TEST(PlannerHeuristicTest, BalancedListsPlanSequential) {
  // 3000 * 16 > 3000: equally dense lists merge sequentially.
  const uint64_t dfs[] = {3000, 3000};
  EXPECT_EQ(PlanFromDfs(dfs), CursorMode::kSequential);
}

TEST(PlannerHeuristicTest, JustBelowAndAboveTheThreshold) {
  AdaptivePlannerOptions opts;
  opts.selectivity_threshold = 16.0;
  {
    const uint64_t dfs[] = {10, 161};  // 160 <= 161: seek
    EXPECT_EQ(PlanFromDfs(dfs, opts), CursorMode::kSeek);
  }
  {
    const uint64_t dfs[] = {10, 159};  // 160 > 159: sequential
    EXPECT_EQ(PlanFromDfs(dfs, opts), CursorMode::kSequential);
  }
}

TEST(PlannerHeuristicTest, TieChoosesSeek) {
  AdaptivePlannerOptions opts;
  opts.selectivity_threshold = 16.0;
  const uint64_t dfs[] = {10, 160};  // exactly min * threshold == others
  EXPECT_EQ(PlanFromDfs(dfs, opts), CursorMode::kSeek);
}

TEST(PlannerHeuristicTest, SingleListPlansSequential) {
  const uint64_t one[] = {12345};
  EXPECT_EQ(PlanFromDfs(one), CursorMode::kSequential);
  EXPECT_EQ(PlanFromDfs(std::span<const uint64_t>{}), CursorMode::kSequential);
}

TEST(PlannerHeuristicTest, EmptyListIsTheMostSelectiveDriver) {
  // An OOV / empty list (df 0) short-circuits a zig-zag before any decode,
  // so it must plan kSeek — falling back to a sequential merge would scan
  // the dense side in full just to intersect with nothing.
  const uint64_t oov_and_dense[] = {0, 5000};
  EXPECT_EQ(PlanFromDfs(oov_and_dense), CursorMode::kSeek);
  const uint64_t with_extra_empty[] = {0, 10, 5000};
  EXPECT_EQ(PlanFromDfs(with_extra_empty), CursorMode::kSeek);
}

TEST_F(RouterFixture, OovConjunctionUnderAdaptiveScansAlmostNothing) {
  // 'zzz' is OOV: the planner must zig-zag so the dense side is never
  // materialized. Forced sequential pays the full merge for comparison.
  BoolEngine adaptive(&index, ScoringKind::kNone, CursorMode::kAdaptive);
  auto a = adaptive.Evaluate(*ParseQuery("'zzz' AND 'beta'", SurfaceLanguage::kBool));
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->nodes.empty());
  // The zig-zag touches at most the dense side's first entry before the
  // empty driver exhausts it.
  EXPECT_LE(a->counters.entries_scanned, 1u);
  BoolEngine seq(&index, ScoringKind::kNone, CursorMode::kSequential);
  auto s = seq.Evaluate(*ParseQuery("'zzz' AND 'beta'", SurfaceLanguage::kBool));
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->nodes.empty());
  EXPECT_EQ(s->counters.entries_scanned, index.df(index.LookupToken("beta")));
}

TEST(PlannerHeuristicTest, ThresholdIsTunable) {
  AdaptivePlannerOptions loose;
  loose.selectivity_threshold = 1.0;
  AdaptivePlannerOptions strict;
  strict.selectivity_threshold = 1000.0;
  const uint64_t dfs[] = {100, 500};
  EXPECT_EQ(PlanFromDfs(dfs, loose), CursorMode::kSeek);
  EXPECT_EQ(PlanFromDfs(dfs, strict), CursorMode::kSequential);
}

// Forced modes bypass the planner: on a workload where the planner would
// pick the opposite mode, a forced engine keeps its access pattern. The
// observable is skip_checks — only seeking probes skip headers.
struct PlannerBypassFixture : public ::testing::Test {
  void SetUp() override {
    // "rare" in 2 docs, "dense" in all 60: the planner would pick seek
    // (2 * 16 = 32 <= 60), so forced modes must visibly ignore it.
    for (int d = 0; d < 60; ++d) {
      std::string text = "dense filler";
      if (d == 17 || d == 41) text += " rare";
      corpus.AddDocument(text);
    }
    index = IndexBuilder::Build(corpus);
  }
  Corpus corpus;
  InvertedIndex index;
};

TEST_F(PlannerBypassFixture, ForcedSequentialNeverSeeks) {
  BoolEngine engine(&index, ScoringKind::kNone, CursorMode::kSequential);
  auto r = engine.Evaluate(*ParseQuery("'rare' AND 'dense'", SurfaceLanguage::kBool));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->counters.skip_checks, 0u);
  // The sequential merge scans both lists end to end.
  EXPECT_EQ(r->counters.entries_scanned, 62u);
}

TEST_F(PlannerBypassFixture, ForcedSeekAlwaysSeeks) {
  BoolEngine engine(&index, ScoringKind::kNone, CursorMode::kSeek);
  auto r = engine.Evaluate(*ParseQuery("'rare' AND 'dense'", SurfaceLanguage::kBool));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->counters.skip_checks, 0u);
}

TEST_F(PlannerBypassFixture, AdaptiveFollowsThePlannerPerOperator) {
  // 2 * 16 = 32 <= 60: the planner picks seek for this AND.
  BoolEngine adaptive(&index, ScoringKind::kNone, CursorMode::kAdaptive);
  auto r = adaptive.Evaluate(*ParseQuery("'rare' AND 'dense'", SurfaceLanguage::kBool));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->counters.skip_checks, 0u);
  // Balanced sides: the planner declines to seek.
  auto s = adaptive.Evaluate(*ParseQuery("'dense' AND 'filler'", SurfaceLanguage::kBool));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->counters.skip_checks, 0u);
  // All three runs agree on results with the forced modes.
  BoolEngine seq(&index, ScoringKind::kNone, CursorMode::kSequential);
  auto q = seq.Evaluate(*ParseQuery("'rare' AND 'dense'", SurfaceLanguage::kBool));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(r->nodes, q->nodes);
}

TEST_F(PlannerBypassFixture, CacheEngagesOnlyForRepeatedLists) {
  BoolEngine engine(&index, ScoringKind::kNone, CursorMode::kSequential);
  // Distinct tokens: no list is read twice, so the decoded-block cache is
  // bypassed entirely — zero hits AND zero misses.
  auto single = engine.Evaluate(
      *ParseQuery("'rare' AND 'dense'", SurfaceLanguage::kBool));
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->counters.cache_hits + single->counters.cache_misses, 0u);
  // 'dense' appears twice: the second scan serves its blocks from cache.
  auto repeated = engine.Evaluate(
      *ParseQuery("'dense' AND ('dense' OR 'filler')", SurfaceLanguage::kBool));
  ASSERT_TRUE(repeated.ok());
  EXPECT_GT(repeated->counters.cache_hits, 0u);
}

TEST_F(PlannerBypassFixture, RouterDefaultIsAdaptive) {
  QueryRouter adaptive_router(&index, ScoringKind::kNone);
  auto r = adaptive_router.Evaluate("'rare' AND 'dense'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->engine, "BOOL");
  // The selective AND runs as a zig-zag seek under the default planner.
  EXPECT_GT(r->result.counters.skip_checks, 0u);
  // Forced sequential remains available for paper-faithful access counts.
  QueryRouter paper(&index, ScoringKind::kNone, CursorMode::kSequential);
  auto p = paper.Evaluate("'rare' AND 'dense'");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->result.counters.skip_checks, 0u);
  EXPECT_EQ(p->result.nodes, r->result.nodes);
}

}  // namespace
}  // namespace fts
