#include "eval/router.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "text/corpus.h"

namespace fts {
namespace {

struct RouterFixture : public ::testing::Test {
  void SetUp() override {
    corpus.AddDocument("alpha beta gamma delta");           // 0
    corpus.AddDocument("beta x x x x x x x x alpha");       // 1
    corpus.AddDocument("gamma epsilon");                    // 2
    corpus.AddDocument("");                                 // 3
    index = IndexBuilder::Build(corpus);
    router = std::make_unique<QueryRouter>(&index, ScoringKind::kNone);
  }

  Corpus corpus;
  InvertedIndex index;
  std::unique_ptr<QueryRouter> router;
};

TEST_F(RouterFixture, RoutesBoolQueriesToBoolEngine) {
  auto r = router->Evaluate("'alpha' AND 'beta'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->engine, "BOOL");
  EXPECT_EQ(r->language_class, LanguageClass::kBoolNoNeg);
  EXPECT_EQ(r->result.nodes, (std::vector<NodeId>{0, 1}));
}

TEST_F(RouterFixture, RoutesComplementsToBoolEngine) {
  auto r = router->Evaluate("NOT 'alpha'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->engine, "BOOL");
  EXPECT_EQ(r->language_class, LanguageClass::kBool);
  EXPECT_EQ(r->result.nodes, (std::vector<NodeId>{2, 3}));
}

TEST_F(RouterFixture, RoutesPositivePredicatesToPpred) {
  auto r = router->Evaluate(
      "SOME p SOME q (p HAS 'alpha' AND q HAS 'beta' AND distance(p, q, 1))");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->engine, "PPRED");
  EXPECT_EQ(r->result.nodes, (std::vector<NodeId>{0}));
}

TEST_F(RouterFixture, RoutesNegativePredicatesToNpred) {
  auto r = router->Evaluate(
      "SOME p SOME q (p HAS 'alpha' AND q HAS 'beta' AND not_distance(p, q, 1))");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->engine, "NPRED");
  EXPECT_EQ(r->result.nodes, (std::vector<NodeId>{1}));
}

TEST_F(RouterFixture, RoutesUniversalQuantifiersToComp) {
  auto r = router->Evaluate("EVERY p (p HAS 'gamma' OR p HAS 'epsilon')");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->engine, "COMP");
  // Node 2 entirely gamma/epsilon; the empty node 3 vacuously satisfies.
  EXPECT_EQ(r->result.nodes, (std::vector<NodeId>{2, 3}));
}

TEST_F(RouterFixture, AllEnginesAgreeOnSharedQueries) {
  const char* queries[] = {
      "'alpha'",
      "'alpha' AND NOT 'gamma'",
      "'alpha' OR 'epsilon'",
      "dist('alpha', 'beta', 10)",
  };
  for (const char* q : queries) {
    auto parsed = ParseQuery(q, SurfaceLanguage::kComp);
    ASSERT_TRUE(parsed.ok());
    auto routed = router->EvaluateParsed(*parsed);
    ASSERT_TRUE(routed.ok()) << q;
    auto comp = router->comp_engine().Evaluate(*parsed);
    ASSERT_TRUE(comp.ok()) << q;
    EXPECT_EQ(routed->result.nodes, comp->nodes) << q;
  }
}

TEST_F(RouterFixture, ParseErrorsPropagate) {
  auto r = router->Evaluate("'alpha' AND");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RouterFixture, ScoredRouterProducesScores) {
  QueryRouter scored(&index, ScoringKind::kTfIdf);
  auto r = scored.Evaluate("'alpha' AND 'beta'");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->result.scores.size(), r->result.nodes.size());
  for (double s : r->result.scores) EXPECT_GT(s, 0.0);
}

TEST_F(RouterFixture, CountersReportEngineWork) {
  auto r = router->Evaluate("'alpha' AND 'beta'");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->result.counters.entries_scanned, 0u);
}

}  // namespace
}  // namespace fts
