#include "scoring/topk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace fts {
namespace {

TEST(TopKTest, KeepsHighestScores) {
  TopKAccumulator acc(2);
  acc.Add(1, 0.5);
  acc.Add(2, 0.9);
  acc.Add(3, 0.1);
  acc.Add(4, 0.7);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 2u);
  EXPECT_EQ(top[1].node, 4u);
}

TEST(TopKTest, FewerResultsThanK) {
  TopKAccumulator acc(10);
  acc.Add(5, 0.3);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].node, 5u);
}

TEST(TopKTest, ZeroKIsEmpty) {
  TopKAccumulator acc(0);
  acc.Add(1, 1.0);
  EXPECT_TRUE(acc.Take().empty());
}

TEST(TopKTest, TiesBreakByNodeId) {
  TopKAccumulator acc(2);
  acc.Add(9, 0.5);
  acc.Add(3, 0.5);
  acc.Add(7, 0.5);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 3u);
  EXPECT_EQ(top[1].node, 7u);
}

TEST(TopKTest, MatchesFullSortOnRandomInput) {
  Rng rng(21);
  std::vector<NodeId> nodes;
  std::vector<double> scores;
  for (NodeId n = 0; n < 500; ++n) {
    nodes.push_back(n);
    scores.push_back(rng.NextDouble());
  }
  auto top = TopK(nodes, scores, 25);
  // Reference: full sort.
  std::vector<ScoredNode> all;
  for (size_t i = 0; i < nodes.size(); ++i) all.push_back({nodes[i], scores[i]});
  std::sort(all.begin(), all.end(), [](const ScoredNode& a, const ScoredNode& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  });
  all.resize(25);
  ASSERT_EQ(top.size(), all.size());
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].node, all[i].node);
    EXPECT_DOUBLE_EQ(top[i].score, all[i].score);
  }
}

TEST(TopKTest, BoundaryTieKeepsSmallerNodeId) {
  // The tie-break contract at the heap boundary, pinned in both
  // directions: with the heap full at score 0.5, an equal-scored candidate
  // with a *smaller* id replaces the weakest entry, and one with a
  // *larger* id is rejected. Block-max early termination relies on the
  // rejection half — a skipped candidate (always the largest id seen so
  // far) with score == threshold would have been rejected anyway.
  TopKAccumulator reject(2);
  reject.Add(3, 0.5);
  reject.Add(7, 0.5);
  reject.Add(9, 0.5);  // equal score, larger id than both: rejected
  auto kept = reject.Take();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].node, 3u);
  EXPECT_EQ(kept[1].node, 7u);

  TopKAccumulator replace(2);
  replace.Add(7, 0.5);
  replace.Add(9, 0.5);
  replace.Add(3, 0.5);  // equal score, smaller id: replaces node 9
  kept = replace.Take();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].node, 3u);
  EXPECT_EQ(kept[1].node, 7u);
}

TEST(TopKTest, TakeIsDeterministicAcrossInsertionOrders) {
  // Same (node, score) multiset, different insertion orders: Take() must
  // return the identical ranked sequence — rank order is a pure function
  // of the set, not of heap internals.
  const std::vector<ScoredNode> items = {
      {4, 0.25}, {11, 0.75}, {2, 0.75}, {8, 0.25},
      {1, 0.5},  {6, 0.5},   {3, 0.25}, {9, 0.75},
  };
  std::vector<ScoredNode> reference;
  {
    TopKAccumulator acc(4);
    for (const ScoredNode& s : items) acc.Add(s.node, s.score);
    reference = acc.Take();
    ASSERT_EQ(reference.size(), 4u);
  }
  std::vector<ScoredNode> perm = items;
  std::sort(perm.begin(), perm.end(),
            [](const ScoredNode& a, const ScoredNode& b) {
              return a.node < b.node;
            });
  do {
    TopKAccumulator acc(4);
    for (const ScoredNode& s : perm) acc.Add(s.node, s.score);
    const auto top = acc.Take();
    ASSERT_EQ(top.size(), reference.size());
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i].node, reference[i].node);
      EXPECT_EQ(top[i].score, reference[i].score);
    }
  } while (std::next_permutation(
      perm.begin(), perm.end(), [](const ScoredNode& a, const ScoredNode& b) {
        return a.node < b.node;
      }));
}

TEST(TopKTest, ZeroKNeverFillsAndThresholdStaysOpen) {
  // k == 0: every Add is a no-op, the accumulator never reports full, and
  // Take() is an empty no-op even after many offers.
  TopKAccumulator acc(0);
  for (NodeId n = 0; n < 100; ++n) {
    acc.Add(n, static_cast<double>(n));
    EXPECT_FALSE(acc.full());
    EXPECT_EQ(acc.size(), 0u);
  }
  EXPECT_TRUE(acc.Take().empty());
}

TEST(TopKTest, FullAndThresholdTrackTheBoundary) {
  TopKAccumulator acc(2);
  EXPECT_FALSE(acc.full());
  EXPECT_EQ(acc.threshold(), -std::numeric_limits<double>::infinity());
  acc.Add(1, 0.9);
  EXPECT_FALSE(acc.full());
  acc.Add(2, 0.4);
  EXPECT_TRUE(acc.full());
  EXPECT_EQ(acc.threshold(), 0.4);
  acc.Add(3, 0.6);  // evicts 0.4; weakest is now 0.6
  EXPECT_EQ(acc.threshold(), 0.6);
  acc.Add(4, 0.1);  // under threshold: rejected, boundary unchanged
  EXPECT_EQ(acc.threshold(), 0.6);
}

TEST(TopKTest, DescendingOrderInvariant) {
  Rng rng(22);
  TopKAccumulator acc(50);
  for (int i = 0; i < 1000; ++i) {
    acc.Add(static_cast<NodeId>(rng.Uniform(10000)), rng.NextDouble());
  }
  auto top = acc.Take();
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
}

}  // namespace
}  // namespace fts
