#include "scoring/topk.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace fts {
namespace {

TEST(TopKTest, KeepsHighestScores) {
  TopKAccumulator acc(2);
  acc.Add(1, 0.5);
  acc.Add(2, 0.9);
  acc.Add(3, 0.1);
  acc.Add(4, 0.7);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 2u);
  EXPECT_EQ(top[1].node, 4u);
}

TEST(TopKTest, FewerResultsThanK) {
  TopKAccumulator acc(10);
  acc.Add(5, 0.3);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].node, 5u);
}

TEST(TopKTest, ZeroKIsEmpty) {
  TopKAccumulator acc(0);
  acc.Add(1, 1.0);
  EXPECT_TRUE(acc.Take().empty());
}

TEST(TopKTest, TiesBreakByNodeId) {
  TopKAccumulator acc(2);
  acc.Add(9, 0.5);
  acc.Add(3, 0.5);
  acc.Add(7, 0.5);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 3u);
  EXPECT_EQ(top[1].node, 7u);
}

TEST(TopKTest, MatchesFullSortOnRandomInput) {
  Rng rng(21);
  std::vector<NodeId> nodes;
  std::vector<double> scores;
  for (NodeId n = 0; n < 500; ++n) {
    nodes.push_back(n);
    scores.push_back(rng.NextDouble());
  }
  auto top = TopK(nodes, scores, 25);
  // Reference: full sort.
  std::vector<ScoredNode> all;
  for (size_t i = 0; i < nodes.size(); ++i) all.push_back({nodes[i], scores[i]});
  std::sort(all.begin(), all.end(), [](const ScoredNode& a, const ScoredNode& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  });
  all.resize(25);
  ASSERT_EQ(top.size(), all.size());
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].node, all[i].node);
    EXPECT_DOUBLE_EQ(top[i].score, all[i].score);
  }
}

TEST(TopKTest, DescendingOrderInvariant) {
  Rng rng(22);
  TopKAccumulator acc(50);
  for (int i = 0; i < 1000; ++i) {
    acc.Add(static_cast<NodeId>(rng.Uniform(10000)), rng.NextDouble());
  }
  auto top = acc.Take();
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
}

}  // namespace
}  // namespace fts
