#include "algebra/fta.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "text/corpus.h"

namespace fts {
namespace {

const PositionPredicate* Get(const std::string& name) {
  return PredicateRegistry::Default().Find(name);
}

struct FtaFixture : public ::testing::Test {
  void SetUp() override {
    corpus.AddDocument("efficient task completion now");  // 0
    corpus.AddDocument("task completion efficient");      // 1
    corpus.AddDocument("efficient work");                 // 2
    index = IndexBuilder::Build(corpus);
  }
  Corpus corpus;
  InvertedIndex index;
};

TEST_F(FtaFixture, TokenScanEvaluates) {
  auto rel = EvaluateFta(FtaExpr::Token("efficient"), index, nullptr, nullptr);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->Nodes(), (std::vector<NodeId>{0, 1, 2}));
}

TEST_F(FtaFixture, Figure4StylePlan) {
  // Paper Figure 4: project(select(join(scan, scan))). Find nodes where
  // 'task' is immediately followed by 'completion' (phrase).
  auto join = FtaExpr::Join(FtaExpr::Token("task"), FtaExpr::Token("completion"));
  AlgebraPredicateCall call;
  call.pred = Get("odistance");
  call.cols = {0, 1};
  call.consts = {0};
  auto sel = FtaExpr::Select(join, call);
  ASSERT_TRUE(sel.ok());
  auto proj = FtaExpr::Project(*sel, {});
  ASSERT_TRUE(proj.ok());
  auto rel = EvaluateFta(*proj, index, nullptr, nullptr);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->Nodes(), (std::vector<NodeId>{0, 1}));
}

TEST_F(FtaFixture, DifferenceAgainstSearchContext) {
  auto nodes_with = FtaExpr::Project(FtaExpr::Token("task"), {});
  ASSERT_TRUE(nodes_with.ok());
  auto diff = FtaExpr::Difference(FtaExpr::SearchContext(), *nodes_with);
  ASSERT_TRUE(diff.ok());
  auto rel = EvaluateFta(*diff, index, nullptr, nullptr);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->Nodes(), (std::vector<NodeId>{2}));
}

TEST_F(FtaFixture, AntiJoinKeepsPositions) {
  auto task_nodes = FtaExpr::Project(FtaExpr::Token("task"), {});
  ASSERT_TRUE(task_nodes.ok());
  auto aj = FtaExpr::AntiJoin(FtaExpr::Token("efficient"), *task_nodes);
  ASSERT_TRUE(aj.ok());
  EXPECT_EQ((*aj)->num_cols(), 1u);
  auto rel = EvaluateFta(*aj, index, nullptr, nullptr);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->Nodes(), (std::vector<NodeId>{2}));
}

TEST_F(FtaFixture, FactoryValidation) {
  EXPECT_FALSE(FtaExpr::Project(FtaExpr::Token("x"), {3}).ok());
  EXPECT_FALSE(FtaExpr::Union(FtaExpr::Token("x"), FtaExpr::SearchContext()).ok());
  EXPECT_FALSE(FtaExpr::AntiJoin(FtaExpr::Token("x"), FtaExpr::Token("y")).ok());
  AlgebraPredicateCall bad;
  bad.pred = Get("distance");
  bad.cols = {0};
  bad.consts = {1};
  EXPECT_FALSE(FtaExpr::Select(FtaExpr::Token("x"), bad).ok());
}

TEST_F(FtaFixture, ToStringRendersPlan) {
  auto join = FtaExpr::Join(FtaExpr::Token("task"), FtaExpr::Token("completion"));
  AlgebraPredicateCall call;
  call.pred = Get("distance");
  call.cols = {0, 1};
  call.consts = {5};
  auto sel = FtaExpr::Select(join, call);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ((*sel)->ToString(),
            "select[distance(0,1;5)](join(scan('task'),scan('completion')))");
}

TEST_F(FtaFixture, UnionIntersectDifferenceEvaluate) {
  auto t1 = FtaExpr::Project(FtaExpr::Token("task"), {});
  auto t2 = FtaExpr::Project(FtaExpr::Token("efficient"), {});
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  auto u = FtaExpr::Union(*t1, *t2);
  ASSERT_TRUE(u.ok());
  auto rel = EvaluateFta(*u, index, nullptr, nullptr);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->Nodes(), (std::vector<NodeId>{0, 1, 2}));

  auto i = FtaExpr::Intersect(*t1, *t2);
  ASSERT_TRUE(i.ok());
  rel = EvaluateFta(*i, index, nullptr, nullptr);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->Nodes(), (std::vector<NodeId>{0, 1}));

  auto d = FtaExpr::Difference(*t2, *t1);
  ASSERT_TRUE(d.ok());
  rel = EvaluateFta(*d, index, nullptr, nullptr);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->Nodes(), (std::vector<NodeId>{2}));
}

TEST_F(FtaFixture, EvaluateRejectsNull) {
  EXPECT_FALSE(EvaluateFta(nullptr, index, nullptr, nullptr).ok());
}

}  // namespace
}  // namespace fts
