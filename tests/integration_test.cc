// End-to-end integration: generated corpus -> index -> serialize/reload ->
// route queries from every language class through every applicable engine,
// with scoring — the full pipeline a downstream application would run.

#include <gtest/gtest.h>

#include "eval/router.h"
#include "index/index_builder.h"
#include "index/index_io.h"
#include "scoring/topk.h"
#include "workload/corpus_gen.h"
#include "workload/query_gen.h"

namespace fts {
namespace {

struct IntegrationFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    CorpusGenOptions opts;
    opts.seed = 99;
    opts.num_nodes = 400;
    opts.min_doc_len = 40;
    opts.max_doc_len = 160;
    opts.vocabulary = 2000;
    opts.num_topic_tokens = 6;
    opts.topic_doc_fraction = 0.4;
    opts.topic_occurrences = 6;
    corpus_ = new Corpus(GenerateCorpus(opts));
    index_ = new InvertedIndex(IndexBuilder::Build(*corpus_));
  }
  static void TearDownTestSuite() {
    delete index_;
    delete corpus_;
    index_ = nullptr;
    corpus_ = nullptr;
  }

  static Corpus* corpus_;
  static InvertedIndex* index_;
};

Corpus* IntegrationFixture::corpus_ = nullptr;
InvertedIndex* IntegrationFixture::index_ = nullptr;

TEST_F(IntegrationFixture, SerializedIndexAnswersIdentically) {
  std::string blob;
  SaveIndexToString(*index_, &blob);
  InvertedIndex reloaded;
  ASSERT_TRUE(LoadIndexFromString(blob, &reloaded).ok());

  QueryRouter original(index_);
  QueryRouter loaded(&reloaded);
  for (const char* q :
       {"'topic0' AND 'topic1'", "NOT 'topic2'",
        "SOME p SOME q (p HAS 'topic0' AND q HAS 'topic1' AND distance(p, q, 30))",
        "SOME p SOME q (p HAS 'topic0' AND q HAS 'topic1' AND "
        "not_distance(p, q, 30))"}) {
    auto a = original.Evaluate(q);
    auto b = loaded.Evaluate(q);
    ASSERT_TRUE(a.ok()) << q;
    ASSERT_TRUE(b.ok()) << q;
    EXPECT_EQ(a->result.nodes, b->result.nodes) << q;
  }
}

TEST_F(IntegrationFixture, GeneratedWorkloadAgreesAcrossEngines) {
  QueryRouter router(index_);
  CompEngine comp(index_, ScoringKind::kNone);
  for (uint32_t toks = 2; toks <= 3; ++toks) {
    for (uint32_t preds = 0; preds <= 2; ++preds) {
      for (QueryPolarity pol :
           {QueryPolarity::kNone, QueryPolarity::kPositive, QueryPolarity::kNegative}) {
        QueryGenOptions opts;
        opts.num_tokens = toks;
        opts.num_predicates = preds;
        opts.polarity = pol;
        opts.distance = 40;
        const std::string q = GenerateQuery(opts);
        auto routed = router.Evaluate(q);
        ASSERT_TRUE(routed.ok()) << q << ": " << routed.status().ToString();
        auto parsed = ParseQuery(q, SurfaceLanguage::kComp);
        ASSERT_TRUE(parsed.ok());
        auto reference = comp.Evaluate(*parsed);
        ASSERT_TRUE(reference.ok()) << q;
        EXPECT_EQ(routed->result.nodes, reference->nodes)
            << q << " routed to " << routed->engine;
      }
    }
  }
}

TEST_F(IntegrationFixture, RoutingPicksTheCheapClasses) {
  QueryRouter router(index_);
  auto cls = [&](const std::string& q) {
    auto r = router.Evaluate(q);
    EXPECT_TRUE(r.ok()) << q;
    return r.ok() ? r->engine : std::string("?");
  };
  EXPECT_EQ(cls("'topic0' AND 'topic1'"), "BOOL");
  EXPECT_EQ(cls("SOME p SOME q (p HAS 'topic0' AND q HAS 'topic1' AND "
                "distance(p, q, 20))"),
            "PPRED");
  EXPECT_EQ(cls("SOME p SOME q (p HAS 'topic0' AND q HAS 'topic1' AND "
                "not_distance(p, q, 20))"),
            "NPRED");
  EXPECT_EQ(cls("EVERY p (NOT p HAS 'topic0') OR 'topic1'"), "COMP");
}

TEST_F(IntegrationFixture, ScoredSearchReturnsRankedTopK) {
  QueryRouter router(index_, ScoringKind::kTfIdf);
  auto r = router.Evaluate("'topic0' OR 'topic1'");
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->result.nodes.empty());
  auto top = TopK(r->result.nodes, r->result.scores, 10);
  ASSERT_LE(top.size(), 10u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
  EXPECT_GT(top.front().score, 0.0);
}

TEST_F(IntegrationFixture, CounterHierarchyMatchesFigure3) {
  // On the same positive-predicate query, PPRED touches no more inverted
  // list data than COMP materializes, and BOOL (predicate-free variant)
  // does the least work.
  QueryGenOptions opts;
  opts.num_tokens = 3;
  opts.num_predicates = 2;
  opts.polarity = QueryPolarity::kPositive;
  opts.distance = 40;
  const std::string positive_q = GenerateQuery(opts);

  PpredEngine ppred(index_, ScoringKind::kNone);
  CompEngine comp(index_, ScoringKind::kNone);
  auto parsed = ParseQuery(positive_q, SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  auto p = ppred.Evaluate(*parsed);
  auto c = comp.Evaluate(*parsed);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(p->nodes, c->nodes);
  EXPECT_EQ(p->counters.tuples_materialized, 0u);
  EXPECT_GT(c->counters.tuples_materialized, 0u);
  EXPECT_LE(p->counters.positions_scanned, c->counters.positions_scanned);
}

TEST_F(IntegrationFixture, EmptyAndImpossibleQueries) {
  QueryRouter router(index_);
  auto none = router.Evaluate("'nosuchtokenanywhere'");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->result.nodes.empty());

  auto contradiction = router.Evaluate("'topic0' AND NOT 'topic0'");
  ASSERT_TRUE(contradiction.ok());
  EXPECT_TRUE(contradiction->result.nodes.empty());

  auto everything = router.Evaluate("'topic0' OR NOT 'topic0'");
  ASSERT_TRUE(everything.ok());
  EXPECT_EQ(everything->result.nodes.size(), index_->num_nodes());
}

}  // namespace
}  // namespace fts
