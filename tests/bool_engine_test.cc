#include "eval/bool_engine.h"

#include <gtest/gtest.h>

#include "index/block_posting_list.h"
#include "index/index_builder.h"
#include "lang/parser.h"
#include "text/corpus.h"
#include "workload/corpus_gen.h"

namespace fts {
namespace {

struct BoolEngineFixture : public ::testing::Test {
  void SetUp() override {
    corpus.AddDocument("software users guide");        // 0
    corpus.AddDocument("software testing handbook");   // 1
    corpus.AddDocument("usability study");             // 2
    corpus.AddDocument("software users testing");      // 3
    corpus.AddDocument("");                            // 4 (empty)
    index = IndexBuilder::Build(corpus);
  }

  std::vector<NodeId> Run(const std::string& query) {
    BoolEngine engine(&index, ScoringKind::kNone);
    auto parsed = ParseQuery(query, SurfaceLanguage::kBool);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto result = engine.Evaluate(*parsed);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->nodes : std::vector<NodeId>{};
  }

  Corpus corpus;
  InvertedIndex index;
};

TEST_F(BoolEngineFixture, SingleToken) {
  EXPECT_EQ(Run("'software'"), (std::vector<NodeId>{0, 1, 3}));
}

TEST_F(BoolEngineFixture, OovTokenMatchesNothing) {
  EXPECT_EQ(Run("'zzz'"), (std::vector<NodeId>{}));
}

TEST_F(BoolEngineFixture, PaperSection53Example) {
  // ('software' AND 'users' AND NOT 'testing') OR 'usability'
  EXPECT_EQ(Run("('software' AND 'users' AND NOT 'testing') OR 'usability'"),
            (std::vector<NodeId>{0, 2}));
}

TEST_F(BoolEngineFixture, AndOrSemantics) {
  EXPECT_EQ(Run("'software' AND 'users'"), (std::vector<NodeId>{0, 3}));
  EXPECT_EQ(Run("'usability' OR 'testing'"), (std::vector<NodeId>{1, 2, 3}));
}

TEST_F(BoolEngineFixture, NotComplementsAgainstAllNodes) {
  // Includes the empty node 4.
  EXPECT_EQ(Run("NOT 'software'"), (std::vector<NodeId>{2, 4}));
}

TEST_F(BoolEngineFixture, AnyMatchesNonEmptyNodes) {
  EXPECT_EQ(Run("ANY"), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(Run("NOT ANY"), (std::vector<NodeId>{4}));
}

TEST_F(BoolEngineFixture, DoubleNegation) {
  EXPECT_EQ(Run("NOT (NOT 'software')"), (std::vector<NodeId>{0, 1, 3}));
}

TEST_F(BoolEngineFixture, AndNotAvoidsUniverseScan) {
  BoolEngine engine(&index, ScoringKind::kNone);
  auto with_diff = ParseQuery("'software' AND NOT 'testing'", SurfaceLanguage::kBool);
  ASSERT_TRUE(with_diff.ok());
  auto r1 = engine.Evaluate(*with_diff);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->nodes, (std::vector<NodeId>{0}));
  // The difference path scans only the two token lists: 3 + 2 entries.
  EXPECT_EQ(r1->counters.entries_scanned, 5u);

  auto with_not = ParseQuery("NOT 'testing'", SurfaceLanguage::kBool);
  ASSERT_TRUE(with_not.ok());
  auto r2 = engine.Evaluate(*with_not);
  ASSERT_TRUE(r2.ok());
  // The complement path pays a universe scan on top of the token list.
  EXPECT_EQ(r2->counters.entries_scanned, 2u + index.num_nodes());
}

TEST_F(BoolEngineFixture, RejectsCompConstructs) {
  BoolEngine engine(&index, ScoringKind::kNone);
  auto parsed = ParseQuery("SOME p (p HAS 'a')", SurfaceLanguage::kComp);
  ASSERT_TRUE(parsed.ok());
  auto result = engine.Evaluate(*parsed);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST_F(BoolEngineFixture, TfIdfScoresRankMoreSelectiveMatchesHigher) {
  BoolEngine engine(&index, ScoringKind::kTfIdf);
  auto parsed = ParseQuery("'software' OR 'usability'", SurfaceLanguage::kBool);
  ASSERT_TRUE(parsed.ok());
  auto result = engine.Evaluate(*parsed);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->nodes.size(), 4u);
  ASSERT_EQ(result->scores.size(), 4u);
  for (double s : result->scores) EXPECT_GT(s, 0.0);
  // Node 2 matches 'usability' (df 1, idf high); its score should exceed
  // node 1's, which matches only the common 'software' (df 3).
  const size_t i2 = std::find(result->nodes.begin(), result->nodes.end(), 2u) -
                    result->nodes.begin();
  const size_t i1 = std::find(result->nodes.begin(), result->nodes.end(), 1u) -
                    result->nodes.begin();
  EXPECT_GT(result->scores[i2], result->scores[i1]);
}

TEST_F(BoolEngineFixture, ProbabilisticScoresStayInUnitInterval) {
  BoolEngine engine(&index, ScoringKind::kProbabilistic);
  for (const char* q : {"'software' AND 'users'", "'software' OR 'usability'",
                        "'software' AND NOT 'testing'", "NOT 'software'"}) {
    auto parsed = ParseQuery(q, SurfaceLanguage::kBool);
    ASSERT_TRUE(parsed.ok());
    auto result = engine.Evaluate(*parsed);
    ASSERT_TRUE(result.ok()) << q;
    for (double s : result->scores) {
      EXPECT_GE(s, 0.0) << q;
      EXPECT_LE(s, 1.0) << q;
    }
  }
}

TEST_F(BoolEngineFixture, NoScoresWhenScoringDisabled) {
  BoolEngine engine(&index, ScoringKind::kNone);
  auto parsed = ParseQuery("'software'", SurfaceLanguage::kBool);
  ASSERT_TRUE(parsed.ok());
  auto result = engine.Evaluate(*parsed);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->scores.empty());
}

// ---------------------------------------------------------------------------
// Dense-block word-level AND: the bitset fast path must be exercised (its
// counter proves it ran) and bit-identical to the entry-at-a-time zig-zag.
// ---------------------------------------------------------------------------

Corpus DenseCorpus() {
  CorpusGenOptions opts;
  opts.num_nodes = 400;
  opts.min_doc_len = 10;
  opts.max_doc_len = 30;
  opts.vocabulary = 100;
  opts.num_topic_tokens = 2;
  opts.topic_doc_fraction = 1.0;  // every doc: topic lists are maximally dense
  opts.topic_occurrences = 3;
  return GenerateCorpus(opts);
}

QueryResult EvalOrDie(const BoolEngine& engine, const std::string& query) {
  auto parsed = ParseQuery(query, SurfaceLanguage::kBool);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto result = engine.Evaluate(*parsed);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(*result) : QueryResult{};
}

TEST(BoolEngineDenseBlocks, WordLevelAndIsBitIdenticalToZigZag) {
  const Corpus corpus = DenseCorpus();
  InvertedIndex hybrid = IndexBuilder::Build(corpus);
  ASSERT_TRUE(hybrid.block_list_for_text("topic0")->has_bitset_blocks());
  ASSERT_TRUE(hybrid.block_list_for_text("topic1")->has_bitset_blocks());

  // Same corpus built with bitset blocks disabled: the all-varint control.
  const bool prev = BlockPostingList::SetDenseBlocksEnabledByDefault(false);
  InvertedIndex varint = IndexBuilder::Build(corpus);
  BlockPostingList::SetDenseBlocksEnabledByDefault(prev);
  ASSERT_FALSE(varint.block_list_for_text("topic0")->has_bitset_blocks());

  const std::string query = "'topic0' AND 'topic1'";
  BoolEngine seek_hybrid(&hybrid, ScoringKind::kTfIdf, CursorMode::kSeek);
  BoolEngine seq_hybrid(&hybrid, ScoringKind::kTfIdf, CursorMode::kSequential);
  BoolEngine seek_varint(&varint, ScoringKind::kTfIdf, CursorMode::kSeek);

  const QueryResult fast = EvalOrDie(seek_hybrid, query);
  const QueryResult seq = EvalOrDie(seq_hybrid, query);
  const QueryResult control = EvalOrDie(seek_varint, query);

  // The word-AND path actually ran (and only where both blocks are dense).
  EXPECT_GT(fast.counters.bitset_blocks_intersected, 0u);
  EXPECT_EQ(seq.counters.bitset_blocks_intersected, 0u);
  EXPECT_EQ(control.counters.bitset_blocks_intersected, 0u);

  ASSERT_FALSE(fast.nodes.empty());
  EXPECT_EQ(fast.nodes, seq.nodes);
  EXPECT_EQ(fast.nodes, control.nodes);
  ASSERT_EQ(fast.scores.size(), seq.scores.size());
  ASSERT_EQ(fast.scores.size(), control.scores.size());
  for (size_t i = 0; i < fast.scores.size(); ++i) {
    // Bit-identical, not approximately equal: the fast path must feed the
    // exact same pos_count into the exact same JoinScore expression.
    EXPECT_EQ(fast.scores[i], seq.scores[i]) << i;
    EXPECT_EQ(fast.scores[i], control.scores[i]) << i;
  }
}

TEST(BoolEngineDenseBlocks, PerListOptOutDisablesFastPath) {
  const Corpus corpus = DenseCorpus();
  const bool prev = BlockPostingList::SetDenseBlocksEnabledByDefault(false);
  InvertedIndex varint = IndexBuilder::Build(corpus);
  BlockPostingList::SetDenseBlocksEnabledByDefault(prev);
  BoolEngine engine(&varint, ScoringKind::kNone, CursorMode::kSeek);
  const QueryResult r = EvalOrDie(engine, "'topic0' AND 'topic1'");
  EXPECT_EQ(r.counters.bitset_blocks_intersected, 0u);
  EXPECT_FALSE(r.nodes.empty());
}

}  // namespace
}  // namespace fts
