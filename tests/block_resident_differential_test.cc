// Differential proof of the single-resident-representation refactor and of
// the mmap-backed lazy-load storage mode: the
// block-compressed lists are the only form an InvertedIndex holds, so every
// engine (BOOL merges, pipelined PPRED/NPRED, materialized COMP) and every
// scoring model reads through BlockListCursor. This harness builds the raw
// PostingList oracle for the same seeded corpora (testing/raw_posting_oracle.h),
// attaches it to the identical engine code via set_raw_oracle_for_test, and
// asserts that node sets AND scores are bit-identical between the
// block-resident and raw-oracle evaluations — per query, per engine, per
// scoring model, in both cursor modes. A cursor-level stream differential
// (sequential and interleaved seek) covers the representations below the
// engines, and the naive calculus evaluator anchors the node sets to the
// paper's semantics.

#include <gtest/gtest.h>

#include <cstdio>

#include "calculus/naive_eval.h"
#include "common/rng.h"
#include "eval/bool_engine.h"
#include "eval/comp_engine.h"
#include "eval/npred_engine.h"
#include "eval/ppred_engine.h"
#include "index/block_posting_list.h"
#include "index/index_builder.h"
#include "index/index_io.h"
#include "lang/translate.h"
#include "testing/random_workload.h"
#include "testing/raw_posting_oracle.h"
#include "text/corpus.h"

namespace fts {
namespace {

// Corpus and query generators are shared with the concurrency stress
// tests (testing/random_workload.h) so the single-threaded and N-thread
// harnesses evaluate identical workloads.
Corpus RandomCorpus(Rng* rng, int docs, int max_sentences) {
  return RandomWorkloadCorpus(rng, docs, max_sentences);
}

LangExprPtr RandomBool(Rng* rng, int depth) { return RandomBoolQuery(rng, depth); }

LangExprPtr RandomPipelined(Rng* rng, bool allow_negative) {
  return RandomPipelinedQuery(rng, allow_negative);
}

std::string Tok(Rng* rng) { return RandomWorkloadToken(rng); }

std::vector<NodeId> NaiveNodes(const Corpus& corpus, const LangExprPtr& query) {
  auto calc = TranslateToCalculus(query);
  EXPECT_TRUE(calc.ok()) << calc.status().ToString();
  NaiveCalculusEvaluator oracle(&corpus);
  auto nodes = oracle.Evaluate(*calc);
  EXPECT_TRUE(nodes.ok());
  return nodes.ok() ? *nodes : std::vector<NodeId>{};
}

constexpr ScoringKind kAllScoring[] = {ScoringKind::kNone, ScoringKind::kTfIdf,
                                       ScoringKind::kProbabilistic};

/// Round-trips `src` through a v3 temp file and loads it back mmap'd with
/// lazy first-touch validation — the storage-mode twin every combination
/// below is additionally evaluated against. The temp file is removed
/// immediately (the mapping pins the inode), so nothing leaks on failure.
InvertedIndex LoadMmapTwin(const InvertedIndex& src, const std::string& tag) {
  const std::string path = ::testing::TempDir() + "/fts_diff_mmap_" + tag + ".idx";
  EXPECT_TRUE(SaveIndexToFile(src, path).ok());
  LoadOptions options;
  options.mode = LoadOptions::Mode::kMmap;
  InvertedIndex twin;
  EXPECT_TRUE(LoadIndexFromFile(path, &twin, options).ok());
  std::remove(path.c_str());
  EXPECT_TRUE(twin.lazy_validation());
  return twin;
}

/// Evaluates `query` three ways — block-resident, with the raw oracle
/// attached, and on `mmap_engine` (the same engine shape over the mmap'd
/// lazy-loaded twin index) — and asserts bit-identical nodes and scores
/// across all three. Returns the block-resident node set for cross-checks.
template <typename EngineT>
std::vector<NodeId> ExpectBlockMatchesRawOracle(EngineT& engine,
                                                EngineT& mmap_engine,
                                                const RawPostingOracle& oracle,
                                                const LangExprPtr& query,
                                                const char* what) {
  engine.set_raw_oracle_for_test(nullptr);
  auto block = engine.Evaluate(query);
  EXPECT_TRUE(block.ok()) << what << ": " << query->ToString() << ": "
                          << block.status().ToString();
  engine.set_raw_oracle_for_test(&oracle);
  auto raw = engine.Evaluate(query);
  engine.set_raw_oracle_for_test(nullptr);
  EXPECT_TRUE(raw.ok()) << what << ": " << query->ToString();
  auto mapped = mmap_engine.Evaluate(query);
  EXPECT_TRUE(mapped.ok()) << what << " (mmap): " << query->ToString() << ": "
                           << mapped.status().ToString();
  if (!block.ok() || !raw.ok() || !mapped.ok()) return {};
  EXPECT_EQ(block->nodes, raw->nodes) << what << ": " << query->ToString();
  // Exact double equality: the oracle runs the identical score arithmetic,
  // only the list representation differs, so every bit must match.
  EXPECT_EQ(block->scores, raw->scores) << what << ": " << query->ToString();
  // The mmap'd twin decodes the very same bytes straight from the file
  // (first-touch validated), so it too must match bit for bit.
  EXPECT_EQ(block->nodes, mapped->nodes)
      << what << " (mmap): " << query->ToString();
  EXPECT_EQ(block->scores, mapped->scores)
      << what << " (mmap): " << query->ToString();
  return block->nodes;
}

class BlockResidentDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlockResidentDifferential, CursorStreamsMatchRawOracle) {
  // Below the engines: every block list replays the exact entry/position
  // stream of its raw twin, under sequential iteration and under an
  // interleaved seek/next access pattern.
  Rng rng(GetParam() * 29 + 1);
  Corpus corpus = RandomCorpus(&rng, 40, 8);
  RawPostingOracle oracle = BuildRawPostingOracle(corpus);
  InvertedIndex index = IndexBuilder::Build(corpus);
  ASSERT_EQ(oracle.lists.size(), index.vocabulary_size());
  for (TokenId t = 0; t < index.vocabulary_size(); ++t) {
    SCOPED_TRACE(index.token_text(t));
    // Sequential: identical node and position streams.
    ListCursor rc(oracle.list(t));
    BlockListCursor bc(index.block_list(t));
    while (true) {
      const NodeId expected = rc.NextEntry();
      ASSERT_EQ(bc.NextEntry(), expected);
      if (expected == kInvalidNode) break;
      auto rp = rc.GetPositions();
      auto bp = bc.GetPositions();
      ASSERT_EQ(std::vector<PositionInfo>(rp.begin(), rp.end()),
                std::vector<PositionInfo>(bp.begin(), bp.end()));
    }
    // Interleaved seek/next: identical landing nodes.
    ListCursor rs(oracle.list(t));
    BlockListCursor bs(index.block_list(t));
    while (!rs.exhausted()) {
      if (rng.Bernoulli(0.5)) {
        const NodeId target = static_cast<NodeId>(rng.Uniform(
            static_cast<uint32_t>(corpus.num_nodes()) + 2));
        ASSERT_EQ(rs.SeekEntry(target), bs.SeekEntry(target));
      } else {
        ASSERT_EQ(rs.NextEntry(), bs.NextEntry());
      }
      if (!rs.exhausted()) {
        ASSERT_EQ(rs.GetPositions().size(), bs.GetPositions().size());
      }
    }
  }
  // IL_ANY too.
  ListCursor ra(&oracle.any_list);
  BlockListCursor ba(&index.block_any_list());
  while (true) {
    const NodeId expected = ra.NextEntry();
    ASSERT_EQ(ba.NextEntry(), expected);
    if (expected == kInvalidNode) break;
    ASSERT_EQ(ra.GetPositions().size(), ba.GetPositions().size());
  }
}

TEST_P(BlockResidentDifferential, BoolQueriesMatchRawOracle) {
  Rng rng(GetParam() * 101 + 7);
  Corpus corpus = RandomCorpus(&rng, 30, 6);
  RawPostingOracle oracle = BuildRawPostingOracle(corpus);
  InvertedIndex index = IndexBuilder::Build(corpus);
  InvertedIndex mmap_index =
      LoadMmapTwin(index, "bool_" + std::to_string(GetParam()));
  for (int trial = 0; trial < 8; ++trial) {
    LangExprPtr q = RandomBool(&rng, 3);
    const auto naive = NaiveNodes(corpus, q);
    for (ScoringKind scoring : kAllScoring) {
      for (CursorMode mode : {CursorMode::kSequential, CursorMode::kSeek,
                              CursorMode::kAdaptive}) {
        BoolEngine engine(&index, scoring, mode);
        BoolEngine mmap_engine(&mmap_index, scoring, mode);
        const auto nodes =
            ExpectBlockMatchesRawOracle(engine, mmap_engine, oracle, q, "BOOL");
        EXPECT_EQ(nodes, naive) << q->ToString();
      }
      CompEngine comp(&index, scoring);
      CompEngine mmap_comp(&mmap_index, scoring);
      const auto nodes =
          ExpectBlockMatchesRawOracle(comp, mmap_comp, oracle, q, "COMP");
      EXPECT_EQ(nodes, naive) << q->ToString();
    }
  }
}

TEST_P(BlockResidentDifferential, PpredQueriesMatchRawOracle) {
  Rng rng(GetParam() * 7919 + 3);
  Corpus corpus = RandomCorpus(&rng, 30, 7);
  RawPostingOracle oracle = BuildRawPostingOracle(corpus);
  InvertedIndex index = IndexBuilder::Build(corpus);
  InvertedIndex mmap_index =
      LoadMmapTwin(index, "ppred_" + std::to_string(GetParam()));
  for (int trial = 0; trial < 6; ++trial) {
    LangExprPtr q = RandomPipelined(&rng, /*allow_negative=*/false);
    const auto naive = NaiveNodes(corpus, q);
    for (ScoringKind scoring : kAllScoring) {
      for (CursorMode mode : {CursorMode::kSequential, CursorMode::kSeek,
                              CursorMode::kAdaptive}) {
        PpredEngine engine(&index, scoring, mode);
        PpredEngine mmap_engine(&mmap_index, scoring, mode);
        const auto nodes =
            ExpectBlockMatchesRawOracle(engine, mmap_engine, oracle, q, "PPRED");
        EXPECT_EQ(nodes, naive) << q->ToString();
      }
      CompEngine comp(&index, scoring);
      CompEngine mmap_comp(&mmap_index, scoring);
      ExpectBlockMatchesRawOracle(comp, mmap_comp, oracle, q, "COMP");
    }
  }
}

TEST_P(BlockResidentDifferential, NpredQueriesMatchRawOracle) {
  Rng rng(GetParam() * 104729 + 11);
  Corpus corpus = RandomCorpus(&rng, 25, 6);
  RawPostingOracle oracle = BuildRawPostingOracle(corpus);
  InvertedIndex index = IndexBuilder::Build(corpus);
  InvertedIndex mmap_index =
      LoadMmapTwin(index, "npred_" + std::to_string(GetParam()));
  for (int trial = 0; trial < 5; ++trial) {
    LangExprPtr q = RandomPipelined(&rng, /*allow_negative=*/true);
    const auto naive = NaiveNodes(corpus, q);
    for (ScoringKind scoring : kAllScoring) {
      for (CursorMode mode : {CursorMode::kSequential, CursorMode::kSeek,
                              CursorMode::kAdaptive}) {
        NpredEngine engine(&index, scoring,
                           NpredOrderingMode::kNecessaryPartialOrders, mode);
        NpredEngine mmap_engine(&mmap_index, scoring,
                                NpredOrderingMode::kNecessaryPartialOrders, mode);
        const auto nodes =
            ExpectBlockMatchesRawOracle(engine, mmap_engine, oracle, q, "NPRED");
        EXPECT_EQ(nodes, naive) << q->ToString();
      }
      CompEngine comp(&index, scoring);
      CompEngine mmap_comp(&mmap_index, scoring);
      ExpectBlockMatchesRawOracle(comp, mmap_comp, oracle, q, "COMP");
    }
  }
}

TEST_P(BlockResidentDifferential, CompOnlyQueriesMatchRawOracle) {
  // EVERY-quantified and complement-heavy queries force the materialized
  // COMP path (IL_ANY scans, set complements) — the algebra operators read
  // the block lists through OpScanToken/OpScanHasPos.
  Rng rng(GetParam() * 65537 + 13);
  Corpus corpus = RandomCorpus(&rng, 20, 5);
  RawPostingOracle oracle = BuildRawPostingOracle(corpus);
  InvertedIndex index = IndexBuilder::Build(corpus);
  InvertedIndex mmap_index =
      LoadMmapTwin(index, "comp_" + std::to_string(GetParam()));
  for (int trial = 0; trial < 5; ++trial) {
    LangExprPtr q;
    if (rng.Bernoulli(0.5)) {
      // EVERY p (p HAS t1 OR p HAS t2): all positions drawn from IL_ANY.
      q = LangExpr::Every("p",
                          LangExpr::Or(LangExpr::VarHasToken("p", Tok(&rng)),
                                       LangExpr::VarHasToken("p", Tok(&rng))));
    } else {
      q = LangExpr::And(LangExpr::Not(LangExpr::Token(Tok(&rng))),
                        LangExpr::Not(LangExpr::Token(Tok(&rng))));
    }
    const auto naive = NaiveNodes(corpus, q);
    for (ScoringKind scoring : kAllScoring) {
      CompEngine comp(&index, scoring);
      CompEngine mmap_comp(&mmap_index, scoring);
      const auto nodes =
          ExpectBlockMatchesRawOracle(comp, mmap_comp, oracle, q, "COMP");
      EXPECT_EQ(nodes, naive) << q->ToString();
    }
  }
}

// 10 seeds x (8 BOOL + 6 PPRED + 5 NPRED + 5 COMP-only) corpus/query
// combinations = 240, well past the >=50 acceptance bar; each combination
// is additionally evaluated across 3 scoring models and all three cursor
// modes (both forced modes plus the adaptive planner), so the planner's
// choices are pinned bit-identical to the fixed modes on every combo —
// and every evaluation is repeated on an mmap'd, lazily validated twin of
// the index (LoadMmapTwin), pinning the storage modes bit-identical too.
INSTANTIATE_TEST_SUITE_P(Seeds, BlockResidentDifferential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace fts
