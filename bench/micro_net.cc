// Network serving benchmarks over a loopback socket: wire serialization
// cost in isolation, round-trip latency of a synchronous client call
// (protocol + socket + service dispatch overhead vs the in-process
// service), and pipelined throughput with many requests in flight on one
// connection. On the 1-core CI runners the pipelined series measures
// protocol overhead, not parallel evaluation — read the qps counter
// relative to BM_LoopbackRoundTrip, not as a machine-scaling figure.

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"

#include <benchmark/benchmark.h>

namespace {

using fts::InvertedIndex;
using fts::QueryGenOptions;
using fts::QueryPolarity;
using fts::ScoringKind;
using fts::StatusOr;
using fts::benchutil::SharedIndex;
using fts::net::FtsClient;
using fts::net::FtsServer;
using fts::net::SearchRequest;
using fts::net::SearchResponse;

/// One started loopback server + client per benchmark binary run, shared
/// across series (the paper corpus behind it is the 6000-node default).
struct Loopback {
  Loopback() : server(MakeIndex(), MakeOptions()) {
    if (!server.Start().ok()) std::abort();
    FtsClient::Options copts;
    copts.port = server.port();
    client = std::make_unique<FtsClient>(copts);
  }

  static std::shared_ptr<const InvertedIndex> MakeIndex() {
    // SharedIndex owns the instance for the binary's lifetime; alias it
    // into the shared_ptr the server API wants.
    return {std::shared_ptr<const InvertedIndex>(),
            &SharedIndex(6000, 6)};
  }

  static FtsServer::Options MakeOptions() {
    FtsServer::Options options;
    options.service.num_workers = 1;
    return options;
  }

  FtsServer server;
  std::unique_ptr<FtsClient> client;
};

Loopback& SharedLoopback() {
  static Loopback* lb = new Loopback();
  return *lb;
}

std::string BoolQuery() {
  QueryGenOptions q;
  q.num_tokens = 3;
  q.num_predicates = 0;
  q.polarity = QueryPolarity::kNone;
  return GenerateQuery(q);
}

/// Pure serialization: encode + decode a mid-sized response, no sockets.
void BM_WireSearchResponseRoundtrip(benchmark::State& state) {
  SearchResponse resp;
  resp.engine = "BOOL";
  const size_t n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < n; ++i) {
    resp.nodes.push_back(i * 3);
    resp.scores.push_back(1.0 / static_cast<double>(i + 1));
  }
  for (auto _ : state) {
    const std::string frame = EncodeSearchResponse(resp);
    SearchResponse decoded;
    const fts::Status s = fts::net::DecodeSearchResponse(
        std::string_view(frame).substr(fts::net::kFrameHeaderBytes), &decoded);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(decoded.nodes.data());
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(EncodeSearchResponse(resp).size()));
}
BENCHMARK(BM_WireSearchResponseRoundtrip)->Arg(16)->Arg(1024)->ArgName("results");

/// Protocol floor: a ping round trip touches sockets and framing but no
/// query evaluation.
void BM_LoopbackPing(benchmark::State& state) {
  Loopback& lb = SharedLoopback();
  for (auto _ : state) {
    auto r = lb.client->Ping();
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->num_nodes);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LoopbackPing)->UseRealTime();

/// Synchronous query round trip: the number to compare against the
/// in-process micro_service figures — the delta is the serving tax
/// (framing, syscalls, response copy).
void BM_LoopbackRoundTrip(benchmark::State& state) {
  Loopback& lb = SharedLoopback();
  const std::string query = BoolQuery();
  for (auto _ : state) {
    auto r = lb.client->Search(query);
    if (!r.ok() || !r->status.ok()) {
      state.SkipWithError("search failed");
      return;
    }
    benchmark::DoNotOptimize(r->nodes.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LoopbackRoundTrip)->UseRealTime();

/// Pipelined throughput: state.range(0) requests in flight on one
/// connection per batch; qps counts completed searches per wall second.
void BM_LoopbackPipelinedQps(benchmark::State& state) {
  Loopback& lb = SharedLoopback();
  const std::string query = BoolQuery();
  const size_t depth = static_cast<size_t>(state.range(0));
  uint64_t completed = 0;
  for (auto _ : state) {
    std::vector<std::future<StatusOr<SearchResponse>>> inflight;
    inflight.reserve(depth);
    for (size_t i = 0; i < depth; ++i) {
      SearchRequest req;
      req.query = query;
      inflight.push_back(lb.client->SearchAsync(std::move(req)));
    }
    for (auto& f : inflight) {
      auto r = f.get();
      if (!r.ok() || !r->status.ok()) {
        state.SkipWithError("pipelined search failed");
        return;
      }
      ++completed;
    }
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(completed), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<int64_t>(completed));
}
BENCHMARK(BM_LoopbackPipelinedQps)->Arg(1)->Arg(8)->Arg(32)->ArgName("depth")
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) { return fts::benchutil::BenchMain(argc, argv); }
