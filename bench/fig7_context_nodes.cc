// Figure 7: scalability in the number of context nodes (2500 / 6000 /
// 10000, exactly the paper's sweep) at the default query (3 tokens,
// 2 predicates).

#include "bench_common.h"

namespace {

using fts::QueryGenOptions;
using fts::QueryPolarity;
using fts::benchutil::MakeEngine;
using fts::benchutil::RunQuery;
using fts::benchutil::SharedIndex;

constexpr uint32_t kOccurrences = 6;

void Fig7(benchmark::State& state, const char* engine_kind, QueryPolarity polarity) {
  const auto& index = SharedIndex(static_cast<uint32_t>(state.range(0)), kOccurrences);
  QueryGenOptions opts;
  opts.num_tokens = 3;
  opts.num_predicates = 2;
  opts.polarity = polarity;
  auto engine = MakeEngine(engine_kind, &index);
  RunQuery(state, *engine, GenerateQuery(opts));
}

#define FIG7_SWEEP ->Arg(2500)->Arg(6000)->Arg(10000)->Unit(benchmark::kMillisecond)

BENCHMARK_CAPTURE(Fig7, BOOL, "BOOL", QueryPolarity::kNone) FIG7_SWEEP;
BENCHMARK_CAPTURE(Fig7, PPRED_POS, "PPRED", QueryPolarity::kPositive) FIG7_SWEEP;
BENCHMARK_CAPTURE(Fig7, NPRED_POS, "NPRED", QueryPolarity::kPositive) FIG7_SWEEP;
BENCHMARK_CAPTURE(Fig7, NPRED_NEG, "NPRED", QueryPolarity::kNegative) FIG7_SWEEP;
BENCHMARK_CAPTURE(Fig7, COMP_POS, "COMP", QueryPolarity::kPositive) FIG7_SWEEP;
BENCHMARK_CAPTURE(Fig7, COMP_NEG, "COMP", QueryPolarity::kNegative) FIG7_SWEEP;

}  // namespace

int main(int argc, char** argv) {
  fts::benchutil::PrintFigureHeader(
      "Figure 7 — varying the number of context nodes (2500 / 6000 / 10000)",
      "BOOL and PPRED scale best (slow linear); NPRED acceptable (linear); "
      "COMP degrades fastest");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
