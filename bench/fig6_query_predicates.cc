// Figure 6: evaluation time while varying the number of query predicates
// (0..4; paper default 2) at 3 query tokens, 6000 context nodes. BOOL is
// reported only for the predicate-free point, as in the paper ("we only
// report BOOL for such queries").

#include "bench_common.h"

namespace {

using fts::QueryGenOptions;
using fts::QueryPolarity;
using fts::benchutil::MakeEngine;
using fts::benchutil::RunQuery;
using fts::benchutil::SharedIndex;

constexpr uint32_t kNodes = 6000;
constexpr uint32_t kOccurrences = 6;

void Fig6(benchmark::State& state, const char* engine_kind, QueryPolarity polarity) {
  const auto& index = SharedIndex(kNodes, kOccurrences);
  QueryGenOptions opts;
  opts.num_tokens = 3;
  opts.num_predicates = static_cast<uint32_t>(state.range(0));
  opts.polarity = opts.num_predicates == 0 ? QueryPolarity::kNone : polarity;
  auto engine = MakeEngine(engine_kind, &index);
  RunQuery(state, *engine, GenerateQuery(opts));
}

BENCHMARK_CAPTURE(Fig6, BOOL, "BOOL", QueryPolarity::kNone)
    ->Arg(0)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Fig6, PPRED_POS, "PPRED", QueryPolarity::kPositive)
    ->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Fig6, NPRED_POS, "NPRED", QueryPolarity::kPositive)
    ->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Fig6, NPRED_NEG, "NPRED", QueryPolarity::kNegative)
    ->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Fig6, COMP_POS, "COMP", QueryPolarity::kPositive)
    ->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Fig6, COMP_NEG, "COMP", QueryPolarity::kNegative)
    ->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  fts::benchutil::PrintFigureHeader(
      "Figure 6 — varying the number of query predicates (preds_Q = 0..4)",
      "all engines comparable at preds_Q = 0; PPRED stays near-flat; "
      "NPRED grows with the orderings the predicates induce; COMP pays "
      "full materialization, COMP-NEG worst (high selectivity)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
