// Ranked-retrieval benchmarks: block-max top-k early termination vs full
// evaluation over the paper-shaped corpus (BM_TopKVsFull — the acceptance
// bench for the ranked serving path). k=0 is the full-evaluation control:
// every posting of every query block is decoded and scored. Ranked series
// publish blocks_skipped_fraction — the share of candidate blocks the
// evaluator hopped on score bounds alone — which is the machine-independent
// half of the speedup (wall time is the other).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"
#include "eval/router.h"
#include "exec/exec_context.h"

namespace {

using fts::CursorMode;
using fts::ExecContext;
using fts::InvertedIndex;
using fts::QueryRouter;
using fts::ScoringKind;
using fts::benchutil::SharedIndex;

/// Scored serving mix over the planted topic tokens: long single lists
/// (the classic top-k win), unions (bound = combined bound, the harder
/// case), and one selective conjunction.
const std::vector<std::string>& ScoredMix() {
  static const std::vector<std::string> mix = {
      "'topic0'",
      "'topic1'",
      "'topic0' OR 'topic1'",
      "'topic2' OR 'topic3'",
      "'topic0' AND 'topic1'",
  };
  return mix;
}

/// One pass of the scored mix per iteration; state.range(0) is the
/// requested k (0 = unranked full evaluation), state.range(1) selects the
/// score model (0 = TF-IDF, 1 = probabilistic).
void BM_TopKVsFull(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  const size_t k = static_cast<size_t>(state.range(0));
  const ScoringKind scoring =
      state.range(1) == 0 ? ScoringKind::kTfIdf : ScoringKind::kProbabilistic;
  QueryRouter router(&index, scoring, CursorMode::kAdaptive);
  ExecContext ctx = router.MakeContext();
  ctx.set_top_k(k);
  for (auto _ : state) {
    for (const std::string& q : ScoredMix()) {
      auto r = router.Evaluate(q, ctx);
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(r->result.nodes.data());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ScoredMix().size()));
  // Decode-avoidance in one number: of the candidate blocks the queries
  // touched, what fraction was hopped on upper bounds alone? 0 for the
  // k=0 control by construction (full evaluation never score-skips).
  const fts::EvalCounters& c = ctx.counters();
  const double candidates =
      static_cast<double>(c.blocks_decoded + c.blocks_skipped_by_score);
  state.counters["blocks_skipped_fraction"] =
      candidates == 0.0
          ? 0.0
          : static_cast<double>(c.blocks_skipped_by_score) / candidates;
}
BENCHMARK(BM_TopKVsFull)
    ->ArgNames({"k", "prob"})
    ->Args({0, 0})
    ->Args({10, 0})
    ->Args({100, 0})
    ->Args({0, 1})
    ->Args({10, 1})
    ->Args({100, 1});

}  // namespace

int main(int argc, char** argv) { return fts::benchutil::BenchMain(argc, argv); }
