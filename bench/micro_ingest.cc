// Live-ingestion benchmarks for the segment architecture: sustained
// ingest throughput through IngestService (Add + auto-seal + generation
// publish, background merger compacting underneath) and query latency —
// mean and tail — while a writer churns generations at full speed. The
// p99 counter is the acceptance number for the snapshot handoff design:
// queries acquire a generation with one shared_ptr copy, so ingest,
// sealing, and merging must not put a lock or a stall on the query path.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "eval/searcher.h"
#include "exec/exec_context.h"
#include "exec/ingest_service.h"

#include <benchmark/benchmark.h>

namespace {

using fts::ExecContext;
using fts::IngestService;
using fts::Rng;
using fts::Searcher;
using fts::ZipfSampler;

/// Pre-generated documents over a 64-token Zipf vocabulary ("w0" the most
/// frequent), 8-24 tokens each — small enough to pre-build, shaped enough
/// that hot query tokens have dense, multi-block posting lists.
const std::vector<std::string>& SharedDocs() {
  static const std::vector<std::string>* docs = [] {
    Rng rng(271828);
    ZipfSampler zipf(64, 1.0);
    auto* out = new std::vector<std::string>();
    out->reserve(4096);
    for (size_t i = 0; i < 4096; ++i) {
      std::string doc;
      const uint64_t len = rng.UniformRange(8, 24);
      for (uint64_t t = 0; t < len; ++t) {
        if (!doc.empty()) doc += ' ';
        doc += "w" + std::to_string(zipf.Sample(&rng));
      }
      out->push_back(std::move(doc));
    }
    return out;
  }();
  return *docs;
}

/// Documents ingested per second, including seals (every state.range(0)
/// adds), generation publishes, and the background merger's compactions.
/// The service is recycled once the shared document set is exhausted so
/// the live corpus — and with it the O(corpus) publish/merge cost — stays
/// stationary across the run instead of growing without bound.
void BM_IngestThroughput(benchmark::State& state) {
  const std::vector<std::string>& docs = SharedDocs();
  IngestService::Options options;
  options.max_buffered_docs = static_cast<size_t>(state.range(0));
  options.merge_factor = 8;
  auto service = std::make_unique<IngestService>(options);
  size_t next = 0;
  for (auto _ : state) {
    if (next == docs.size()) {
      state.PauseTiming();
      service = std::make_unique<IngestService>(options);
      next = 0;
      state.ResumeTiming();
    }
    auto id = service->Add(docs[next++]);
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
  }
  if (!service->merger_status().ok()) {
    state.SkipWithError(service->merger_status().ToString().c_str());
    return;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["docs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IngestThroughput)->Arg(64)->Arg(512)->ArgName("seal");

/// Query latency under a full-speed writer: one thread Adds (with deletes
/// keeping the live corpus stationary and the merger compacting) while the
/// benchmark thread evaluates a hot conjunction against the generation it
/// acquires per query. Reports mean (the benchmark time), p50 and p99 —
/// the tail is the number that catches a query ever blocking on a seal,
/// a publish, or a compaction.
void BM_QueryUnderIngest(benchmark::State& state) {
  const std::vector<std::string>& docs = SharedDocs();
  IngestService::Options options;
  options.max_buffered_docs = 64;
  options.merge_factor = 8;
  IngestService service(options);
  for (size_t i = 0; i < 2048; ++i) {
    auto id = service.Add(docs[i]);
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
  }
  if (!service.Refresh().ok()) {
    state.SkipWithError("refresh failed");
    return;
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(314159);
    size_t next = 2048;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)service.Add(docs[next]);
      next = (next + 1) % docs.size();
      auto snapshot = service.snapshot();
      if (snapshot->live_nodes() > 3000 && snapshot->total_nodes() > 0) {
        // Ids are generation-relative; a concurrent compaction may
        // invalidate this one, which Delete rejects harmlessly.
        (void)service.Delete(rng.Uniform(snapshot->total_nodes()));
      }
    }
  });

  const std::string query = "'w0' AND 'w1'";
  ExecContext ctx;
  std::vector<double> latencies_us;
  latencies_us.reserve(1 << 16);
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    Searcher searcher(service.snapshot(),
                      {fts::ScoringKind::kTfIdf, fts::CursorMode::kAdaptive});
    auto r = searcher.Search(query, ctx);
    const auto end = std::chrono::steady_clock::now();
    if (!r.ok()) {
      stop.store(true);
      writer.join();
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->result.nodes.data());
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
  }
  stop.store(true);
  writer.join();

  std::sort(latencies_us.begin(), latencies_us.end());
  if (!latencies_us.empty()) {
    state.counters["p50_us"] = latencies_us[latencies_us.size() / 2];
    state.counters["p99_us"] = latencies_us[latencies_us.size() * 99 / 100];
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QueryUnderIngest)
    ->UseRealTime()
    ->MeasureProcessCPUTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) { return fts::benchutil::BenchMain(argc, argv); }
