// Figure 3: the complexity hierarchy, validated with machine-independent
// operation counts instead of wall time. For each engine the binary
// measures how the dominant cost counter responds to doubling (a) the data
// (entries per token) and (b) the query (number of tokens), and prints the
// observed growth factors next to the bounds the paper states:
//
//   BOOL       O(entries_per_token · toks_Q · (ops_Q+1))           [no preds]
//   PPRED      O(entries_per_token · pos_per_entry · toks_Q · ...)
//   NPRED      O(  "          · toks_Q! · ...)
//   COMP       O(cnodes · pos_per_cnode^toks_Q · ...)
//
// Growth factor ~2 on data doubling = linear; >> 2 on query growth for
// NPRED/COMP = the exponential term.

#include <cstdio>

#include "bench_common.h"
#include "lang/parser.h"

namespace {

using fts::Engine;
using fts::ParseQuery;
using fts::QueryGenOptions;
using fts::QueryPolarity;
using fts::SurfaceLanguage;
using fts::benchutil::MakeEngine;
using fts::benchutil::SharedIndex;

// Total list traffic: entries + positions + materialized tuples.
double CostOf(const Engine& engine, const std::string& query) {
  auto parsed = ParseQuery(query, SurfaceLanguage::kComp);
  if (!parsed.ok()) return -1;
  auto result = engine.Evaluate(*parsed);
  if (!result.ok()) return -1;
  const auto& c = result->counters;
  return static_cast<double>(c.entries_scanned + c.positions_scanned +
                             c.tuples_materialized);
}

std::string QueryFor(uint32_t toks, QueryPolarity pol) {
  QueryGenOptions opts;
  opts.num_tokens = toks;
  opts.num_predicates = pol == QueryPolarity::kNone ? 0 : 2;
  opts.polarity = pol;
  return GenerateQuery(opts);
}

struct Row {
  const char* name;
  const char* engine_kind;
  QueryPolarity polarity;
  const char* bound;
};

}  // namespace

int main() {
  fts::benchutil::PrintFigureHeader(
      "Figure 3 — complexity hierarchy, via operation counts",
      "data-doubling factor ~2 for every language (linear in inverted "
      "lists for BOOL/PPRED/NPRED); query-growth factor stays small for "
      "BOOL/PPRED and explodes for NPRED (toks_Q!) and COMP "
      "(pos_per_cnode^toks_Q)");

  const Row rows[] = {
      {"BOOL-NONEG", "BOOL", QueryPolarity::kNone,
       "entries_per_token * toks_Q * (ops_Q+1)"},
      {"PPRED", "PPRED", QueryPolarity::kPositive,
       "entries_per_token * pos_per_entry * toks_Q * (preds_Q+ops_Q+1)"},
      {"NPRED", "NPRED", QueryPolarity::kNegative,
       "... * min(narity^npreds_Q, toks_Q!) * (preds_Q+ops_Q+1)"},
      {"COMP", "COMP", QueryPolarity::kPositive,
       "cnodes * pos_per_cnode^toks_Q * (preds_Q+ops_Q+1)"},
  };

  // Data axis: double the corpus (2000 -> 4000 nodes; same occurrence
  // density). Query axis: 2 -> 4 tokens.
  const auto& small = SharedIndex(2000, 6);
  const auto& big = SharedIndex(4000, 6);

  std::printf("\n%-11s %14s %14s %10s | %14s %14s %10s\n", "language", "ops(2k nodes)",
              "ops(4k nodes)", "data x2", "ops(2 toks)", "ops(4 toks)", "query x2");
  std::printf("%.120s\n",
              "-----------------------------------------------------------------"
              "-----------------------------------------------------------------");
  for (const Row& row : rows) {
    auto engine_small = MakeEngine(row.engine_kind, &small);
    auto engine_big = MakeEngine(row.engine_kind, &big);
    const std::string q3 = QueryFor(3, row.polarity);
    const double data_small = CostOf(*engine_small, q3);
    const double data_big = CostOf(*engine_big, q3);
    const double query_small = CostOf(*engine_small, QueryFor(2, row.polarity));
    const double query_big = CostOf(*engine_small, QueryFor(4, row.polarity));
    std::printf("%-11s %14.0f %14.0f %9.2fx | %14.0f %14.0f %9.2fx\n", row.name,
                data_small, data_big, data_big / data_small, query_small, query_big,
                query_big / query_small);
    std::printf("            bound: %s\n", row.bound);
  }
  std::printf(
      "\nReading: 'data x2' near 2.0 confirms linearity in the inverted lists\n"
      "(all four languages); 'query x2' grows modestly for BOOL/PPRED but\n"
      "multiplies for NPRED (orderings) and COMP (join products), matching\n"
      "the Figure 3 containment of bounding boxes.\n");
  return 0;
}
