// Scoring ablation: Section 5.6.4 claims "the computation of scores can be
// done in constant time and does not affect the complexity of the query
// evaluation algorithm". This bench runs identical queries with scoring
// disabled / TF-IDF / probabilistic on each engine; the per-engine overhead
// should be a small constant factor.

#include "bench_common.h"

namespace {

using fts::QueryGenOptions;
using fts::QueryPolarity;
using fts::ScoringKind;
using fts::benchutil::MakeEngine;
using fts::benchutil::RunQuery;
using fts::benchutil::SharedIndex;

void Ablation(benchmark::State& state, const char* engine_kind,
              QueryPolarity polarity, ScoringKind scoring) {
  const auto& index = SharedIndex(6000, 6);
  QueryGenOptions opts;
  opts.num_tokens = 3;
  opts.num_predicates = polarity == QueryPolarity::kNone ? 0 : 2;
  opts.polarity = polarity;
  auto engine = MakeEngine(engine_kind, &index, scoring);
  RunQuery(state, *engine, GenerateQuery(opts));
}

#define SCORING_ROW(engine, pol)                                             \
  BENCHMARK_CAPTURE(Ablation, engine##_unscored, #engine, pol,               \
                    ScoringKind::kNone)->Unit(benchmark::kMillisecond);      \
  BENCHMARK_CAPTURE(Ablation, engine##_tfidf, #engine, pol,                  \
                    ScoringKind::kTfIdf)->Unit(benchmark::kMillisecond);     \
  BENCHMARK_CAPTURE(Ablation, engine##_probabilistic, #engine, pol,          \
                    ScoringKind::kProbabilistic)->Unit(benchmark::kMillisecond)

SCORING_ROW(BOOL, QueryPolarity::kNone);
SCORING_ROW(PPRED, QueryPolarity::kPositive);
SCORING_ROW(NPRED, QueryPolarity::kNegative);
SCORING_ROW(COMP, QueryPolarity::kPositive);

}  // namespace

int main(int argc, char** argv) {
  fts::benchutil::PrintFigureHeader(
      "Ablation — scoring overhead (Section 5.6.4 constant-time claim)",
      "scored vs unscored evaluation differs by a small constant factor on "
      "every engine; scoring never changes the asymptotic shape");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
