// Pair-index fast path vs the position pipeline on frequent-term phrase
// and NEAR/k operators — the pipeline's classic worst case (two huge
// driver lists, almost every decoded position discarded by the distance
// predicate). The pair-routed arm answers the same operators from the
// auxiliary (frequent, other) lists, whose length is the number of nodes
// where the terms actually co-occur; the differential suite pins both
// arms bit-identical, so the only thing that may differ here is cost.
// The counters tell the machine-independent story: the pipeline arm
// scans both full token lists and their positions, the pair arm decodes
// pair_entries co-occurrence records.

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eval/ppred_engine.h"
#include "lang/parser.h"
#include "index/index_builder.h"
#include "workload/corpus_gen.h"

namespace {

using fts::CursorMode;
using fts::IndexBuildOptions;
using fts::IndexBuilder;
using fts::InvertedIndex;
using fts::PairRouting;
using fts::PpredEngine;
using fts::ScoringKind;

const char kPhrase[] =
    "SOME p1 SOME p2 (p1 HAS 'topic0' AND p2 HAS 'topic1' AND "
    "odistance(p1, p2, 0))";

const char kNear[] =
    "SOME p1 SOME p2 (p1 HAS 'topic0' AND p2 HAS 'topic1' AND "
    "distance(p1, p2, 2))";

// The bench corpus doubles the paper's 6000 context nodes and stretches
// documents to 400-600 tokens. The planted topic tokens (df ~6000 each,
// comfortably inside the 128-term frequent head next to the Zipf
// background hitters) occur 4 times per planted document at uniform
// random slots: the pipeline arm must decode both full entry lists and
// every planted position, while the pair lists hold only the rare true
// co-occurrences within the +-(max_distance+1) window — the sparse-join
// regime the auxiliary index targets.
const InvertedIndex& PairedIndex() {
  static const InvertedIndex* index = [] {
    fts::CorpusGenOptions opts = fts::benchutil::BenchCorpusOptions(12000, 4);
    opts.min_doc_len = 400;
    opts.max_doc_len = 600;
    fts::Corpus corpus = fts::GenerateCorpus(opts);
    IndexBuildOptions build;
    build.pairs.frequent_terms = 128;
    build.pairs.max_distance = 2;
    auto* built = new InvertedIndex(IndexBuilder::Build(corpus, build));
    // One untimed pass over each arm's working set: the short smoke runs
    // in CI take so few iterations that first-touch page faults over the
    // freshly built lists would otherwise dominate their averages.
    for (const PairRouting routing : {PairRouting::kOff, PairRouting::kForce}) {
      PpredEngine engine(built, ScoringKind::kNone, CursorMode::kAdaptive);
      engine.set_pair_routing(routing);
      for (const char* query : {kPhrase, kNear}) {
        auto parsed = fts::ParseQuery(query, fts::SurfaceLanguage::kComp);
        if (parsed.ok()) (void)engine.Evaluate(*parsed);
      }
    }
    return built;
  }();
  return *index;
}

void RunWithRouting(benchmark::State& state, const char* query,
                    PairRouting routing, ScoringKind scoring) {
  const InvertedIndex& index = PairedIndex();
  PpredEngine engine(&index, scoring, CursorMode::kAdaptive);
  engine.set_pair_routing(routing);
  fts::benchutil::RunQuery(state, engine, query);
}

void BM_PhrasePipeline(benchmark::State& state) {
  RunWithRouting(state, kPhrase, PairRouting::kOff, ScoringKind::kNone);
}
BENCHMARK(BM_PhrasePipeline)->Unit(benchmark::kMillisecond);

void BM_PhrasePairIndex(benchmark::State& state) {
  RunWithRouting(state, kPhrase, PairRouting::kForce, ScoringKind::kNone);
}
BENCHMARK(BM_PhrasePairIndex)->Unit(benchmark::kMillisecond);

void BM_NearPipeline(benchmark::State& state) {
  RunWithRouting(state, kNear, PairRouting::kOff, ScoringKind::kNone);
}
BENCHMARK(BM_NearPipeline)->Unit(benchmark::kMillisecond);

void BM_NearPairIndex(benchmark::State& state) {
  RunWithRouting(state, kNear, PairRouting::kForce, ScoringKind::kNone);
}
BENCHMARK(BM_NearPairIndex)->Unit(benchmark::kMillisecond);

// Scored arms: the pair evaluator reproduces the pipeline's TF-IDF
// arithmetic from the packed tf headers — same result bits, same gap.
void BM_NearPipelineTfIdf(benchmark::State& state) {
  RunWithRouting(state, kNear, PairRouting::kOff, ScoringKind::kTfIdf);
}
BENCHMARK(BM_NearPipelineTfIdf)->Unit(benchmark::kMillisecond);

void BM_NearPairIndexTfIdf(benchmark::State& state) {
  RunWithRouting(state, kNear, PairRouting::kForce, ScoringKind::kTfIdf);
}
BENCHMARK(BM_NearPairIndexTfIdf)->Unit(benchmark::kMillisecond);

// A mixed workload: two frequent-pair operators the pair index wins and
// two rare-token proximity queries where the pair plan is not even
// eligible (neither side frequent) and the pipeline's short lists win.
// The oracle arm hard-codes the better plan per query; the adaptive arm
// must pick the same routes from the cost model alone and land within a
// few percent — its only overhead is the per-operator df arithmetic.
const char* kMixed[] = {
    kPhrase,
    "SOME p1 SOME p2 (p1 HAS 'topic2' AND p2 HAS 'topic3' AND "
    "distance(p1, p2, 2))",
    "SOME p1 SOME p2 (p1 HAS 'w9000' AND p2 HAS 'w9001' AND "
    "distance(p1, p2, 2))",
    "SOME p1 SOME p2 (p1 HAS 'w9002' AND p2 HAS 'w9003' AND "
    "odistance(p1, p2, 0))",
};
const PairRouting kMixedOracleRouting[] = {
    PairRouting::kForce, PairRouting::kForce,
    PairRouting::kOff, PairRouting::kOff};

void RunMixed(benchmark::State& state, bool oracle) {
  const InvertedIndex& index = PairedIndex();
  std::vector<std::unique_ptr<PpredEngine>> engines;
  std::vector<fts::LangExprPtr> parsed;
  for (size_t i = 0; i < 4; ++i) {
    auto engine = std::make_unique<PpredEngine>(&index, ScoringKind::kNone,
                                                CursorMode::kAdaptive);
    engine->set_pair_routing(oracle ? kMixedOracleRouting[i]
                                    : PairRouting::kAuto);
    engines.push_back(std::move(engine));
    auto query = fts::ParseQuery(kMixed[i], fts::SurfaceLanguage::kComp);
    if (!query.ok()) {
      state.SkipWithError(query.status().ToString().c_str());
      return;
    }
    parsed.push_back(std::move(*query));
  }
  size_t matches = 0;
  uint64_t pair_seeks = 0;
  for (auto _ : state) {
    matches = 0;
    pair_seeks = 0;
    for (size_t i = 0; i < 4; ++i) {
      auto result = engines[i]->Evaluate(parsed[i]);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(result->nodes.data());
      matches += result->nodes.size();
      pair_seeks += result->counters.pair_seeks;
    }
  }
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["pair_seeks"] = static_cast<double>(pair_seeks);
}

void BM_MixedOracle(benchmark::State& state) { RunMixed(state, true); }
BENCHMARK(BM_MixedOracle)->Unit(benchmark::kMillisecond);

void BM_MixedAdaptive(benchmark::State& state) { RunMixed(state, false); }
BENCHMARK(BM_MixedAdaptive)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  fts::benchutil::PrintFigureHeader(
      "micro: pair-index phrase/NEAR",
      "pair-routed arms >= 10x over the position pipeline on frequent-term "
      "operators; adaptive routing within a few percent of the per-query "
      "oracle on the mixed workload");
  return fts::benchutil::BenchMain(argc, argv);
}
