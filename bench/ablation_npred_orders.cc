// NPRED ordering ablation: Section 5.6.2 presents the simple algorithm that
// runs toks_Q! total-order threads, and remarks "our implementation
// generates only the necessary partial orders". This bench quantifies that
// optimization: the partial-order engine permutes only the variables that
// negative predicates mention, the total-order engine permutes all of them.

#include "bench_common.h"

namespace {

using fts::QueryGenOptions;
using fts::QueryPolarity;
using fts::benchutil::MakeEngine;
using fts::benchutil::RunQuery;
using fts::benchutil::SharedIndex;

// One negative predicate over 2 variables; total tokens vary 2..5, so the
// partial-order engine always runs 2 threads while the total-order engine
// runs toks_Q! threads.
void Orders(benchmark::State& state, const char* engine_kind) {
  const auto& index = SharedIndex(6000, 6);
  QueryGenOptions opts;
  opts.num_tokens = static_cast<uint32_t>(state.range(0));
  opts.num_predicates = 1;
  opts.polarity = QueryPolarity::kNegative;
  auto engine = MakeEngine(engine_kind, &index);
  RunQuery(state, *engine, GenerateQuery(opts));
}

BENCHMARK_CAPTURE(Orders, NPRED_partial, "NPRED")
    ->DenseRange(2, 5)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Orders, NPRED_total, "NPRED_TOTAL")
    ->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  fts::benchutil::PrintFigureHeader(
      "Ablation — NPRED total orders vs necessary partial orders (Sec 5.6.2)",
      "partial orders hold the thread count at (#negative-pred vars)! = 2 "
      "while total orders grow as toks_Q! — watch the 'orderings' counter");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
