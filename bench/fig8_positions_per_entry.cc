// Figure 8: scalability in the number of positions per inverted-list entry
// (the paper sweeps 5/25/125 on INEX; we sweep 3/6/12 on the synthetic
// corpus — the join products COMP materializes grow with the cube of this
// parameter at 3 query tokens, so the shape is visible at smaller values).

#include "bench_common.h"

namespace {

using fts::QueryGenOptions;
using fts::QueryPolarity;
using fts::benchutil::MakeEngine;
using fts::benchutil::RunQuery;
using fts::benchutil::SharedIndex;

constexpr uint32_t kNodes = 6000;

void Fig8(benchmark::State& state, const char* engine_kind, QueryPolarity polarity) {
  const auto& index = SharedIndex(kNodes, static_cast<uint32_t>(state.range(0)));
  QueryGenOptions opts;
  opts.num_tokens = 3;
  opts.num_predicates = 2;
  opts.polarity = polarity;
  auto engine = MakeEngine(engine_kind, &index);
  RunQuery(state, *engine, GenerateQuery(opts));
}

#define FIG8_SWEEP ->Arg(3)->Arg(6)->Arg(12)->Unit(benchmark::kMillisecond)

BENCHMARK_CAPTURE(Fig8, BOOL, "BOOL", QueryPolarity::kNone) FIG8_SWEEP;
BENCHMARK_CAPTURE(Fig8, PPRED_POS, "PPRED", QueryPolarity::kPositive) FIG8_SWEEP;
BENCHMARK_CAPTURE(Fig8, NPRED_POS, "NPRED", QueryPolarity::kPositive) FIG8_SWEEP;
BENCHMARK_CAPTURE(Fig8, NPRED_NEG, "NPRED", QueryPolarity::kNegative) FIG8_SWEEP;
BENCHMARK_CAPTURE(Fig8, COMP_POS, "COMP", QueryPolarity::kPositive) FIG8_SWEEP;
BENCHMARK_CAPTURE(Fig8, COMP_NEG, "COMP", QueryPolarity::kNegative) FIG8_SWEEP;

}  // namespace

int main(int argc, char** argv) {
  fts::benchutil::PrintFigureHeader(
      "Figure 8 — varying positions per inverted-list entry (3 / 6 / 12)",
      "BOOL and PPRED near-flat (linear in list size); NPRED a small "
      "increase; COMP grows with the per-node join product");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
