#include "bench_common.h"

#include <cstdio>
#include <map>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/varint_simd.h"
#include "eval/bool_engine.h"
#include "eval/comp_engine.h"
#include "eval/ppred_engine.h"
#include "index/block_posting_list.h"
#include "index/index_builder.h"
#include "lang/parser.h"

namespace fts::benchutil {

CorpusGenOptions BenchCorpusOptions(uint32_t cnodes, uint32_t occurrences) {
  CorpusGenOptions opts;
  opts.seed = 4242;
  opts.num_nodes = cnodes;
  opts.min_doc_len = 50;
  opts.max_doc_len = 300;
  opts.vocabulary = 20000;
  opts.zipf_skew = 1.0;
  opts.num_topic_tokens = 8;
  opts.topic_doc_fraction = 0.5;
  opts.topic_occurrences = occurrences;
  return opts;
}

const InvertedIndex& SharedIndex(uint32_t cnodes, uint32_t occurrences) {
  static std::mutex mu;
  static std::map<std::pair<uint32_t, uint32_t>, std::unique_ptr<InvertedIndex>>* cache =
      new std::map<std::pair<uint32_t, uint32_t>, std::unique_ptr<InvertedIndex>>();
  std::lock_guard<std::mutex> lock(mu);
  auto key = std::make_pair(cnodes, occurrences);
  auto it = cache->find(key);
  if (it == cache->end()) {
    Corpus corpus = GenerateCorpus(BenchCorpusOptions(cnodes, occurrences));
    auto index = std::make_unique<InvertedIndex>(IndexBuilder::Build(corpus));
    it = cache->emplace(key, std::move(index)).first;
  }
  return *it->second;
}

std::unique_ptr<Engine> MakeEngine(const std::string& kind, const InvertedIndex* index,
                                   ScoringKind scoring) {
  std::string base = kind;
  CursorMode mode = CursorMode::kSequential;
  const auto strip_suffix = [&base](std::string_view suffix) {
    if (base.size() > suffix.size() &&
        base.compare(base.size() - suffix.size(), suffix.size(), suffix) == 0) {
      base.resize(base.size() - suffix.size());
      return true;
    }
    return false;
  };
  if (strip_suffix("_SEEK")) {
    mode = CursorMode::kSeek;
  } else if (strip_suffix("_ADAPT")) {
    mode = CursorMode::kAdaptive;
  }
  if (base == "BOOL") return std::make_unique<BoolEngine>(index, scoring, mode);
  if (base == "PPRED") return std::make_unique<PpredEngine>(index, scoring, mode);
  if (base == "NPRED") {
    return std::make_unique<NpredEngine>(
        index, scoring, NpredOrderingMode::kNecessaryPartialOrders, mode);
  }
  if (base == "NPRED_TOTAL") {
    return std::make_unique<NpredEngine>(index, scoring,
                                         NpredOrderingMode::kAllTotalOrders, mode);
  }
  // COMP materializes relations and has no seek mode: reject "COMP_SEEK"
  // rather than silently running sequential under a seek label.
  if (base == "COMP" && mode == CursorMode::kSequential) {
    return std::make_unique<CompEngine>(index, scoring);
  }
  std::fprintf(stderr, "unknown engine kind: %s\n", kind.c_str());
  std::abort();
}

int BenchMain(int argc, char** argv) {
  std::string program = argc > 0 ? argv[0] : "bench";
  const size_t slash = program.find_last_of('/');
  if (slash != std::string::npos) program = program.substr(slash + 1);

  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::vector<std::string> args(argv, argv + argc);
  if (!has_out) {
    args.push_back("--benchmark_out=BENCH_" + program + ".json");
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (std::string& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());

  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  // Record which decode arm the dispatcher resolved to (and whether dense
  // bitset blocks are being built) in the JSON context, so a baseline file
  // always says which configuration produced it.
  benchmark::AddCustomContext("fts_decode_arm", DecodeArmName(ActiveDecodeArm()));
  benchmark::AddCustomContext(
      "fts_bitset_blocks",
      BlockPostingList::DenseBlocksEnabledByDefault() ? "on" : "off");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

void RunQuery(benchmark::State& state, const Engine& engine, const std::string& query) {
  auto parsed = ParseQuery(query, SurfaceLanguage::kComp);
  if (!parsed.ok()) {
    state.SkipWithError(parsed.status().ToString().c_str());
    return;
  }
  QueryResult last;
  for (auto _ : state) {
    auto result = engine.Evaluate(*parsed);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->nodes.data());
    last = std::move(*result);
  }
  state.counters["matches"] = static_cast<double>(last.nodes.size());
  state.counters["entries"] = static_cast<double>(last.counters.entries_scanned);
  state.counters["positions"] = static_cast<double>(last.counters.positions_scanned);
  state.counters["tuples"] = static_cast<double>(last.counters.tuples_materialized);
  state.counters["pred_evals"] = static_cast<double>(last.counters.predicate_evals);
  state.counters["orderings"] = static_cast<double>(last.counters.orderings_run);
  state.counters["simd_groups"] = static_cast<double>(last.counters.simd_groups_decoded);
  state.counters["bitset_ands"] =
      static_cast<double>(last.counters.bitset_blocks_intersected);
}

void PrintFigureHeader(const char* figure, const char* expectation) {
  std::printf("================================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper-reported shape: %s\n", expectation);
  std::printf("(absolute times differ from the paper's 2005 testbed; compare\n");
  std::printf(" series shapes and the machine-independent counters)\n");
  std::printf("================================================================\n");
}

}  // namespace fts::benchutil
