#include "bench_common.h"

#include <cstdio>
#include <map>
#include <mutex>

#include "eval/bool_engine.h"
#include "eval/comp_engine.h"
#include "eval/ppred_engine.h"
#include "index/index_builder.h"
#include "lang/parser.h"

namespace fts::benchutil {

CorpusGenOptions BenchCorpusOptions(uint32_t cnodes, uint32_t occurrences) {
  CorpusGenOptions opts;
  opts.seed = 4242;
  opts.num_nodes = cnodes;
  opts.min_doc_len = 50;
  opts.max_doc_len = 300;
  opts.vocabulary = 20000;
  opts.zipf_skew = 1.0;
  opts.num_topic_tokens = 8;
  opts.topic_doc_fraction = 0.5;
  opts.topic_occurrences = occurrences;
  return opts;
}

const InvertedIndex& SharedIndex(uint32_t cnodes, uint32_t occurrences) {
  static std::mutex mu;
  static std::map<std::pair<uint32_t, uint32_t>, std::unique_ptr<InvertedIndex>>* cache =
      new std::map<std::pair<uint32_t, uint32_t>, std::unique_ptr<InvertedIndex>>();
  std::lock_guard<std::mutex> lock(mu);
  auto key = std::make_pair(cnodes, occurrences);
  auto it = cache->find(key);
  if (it == cache->end()) {
    Corpus corpus = GenerateCorpus(BenchCorpusOptions(cnodes, occurrences));
    auto index = std::make_unique<InvertedIndex>(IndexBuilder::Build(corpus));
    it = cache->emplace(key, std::move(index)).first;
  }
  return *it->second;
}

std::unique_ptr<Engine> MakeEngine(const std::string& kind, const InvertedIndex* index,
                                   ScoringKind scoring) {
  if (kind == "BOOL") return std::make_unique<BoolEngine>(index, scoring);
  if (kind == "PPRED") return std::make_unique<PpredEngine>(index, scoring);
  if (kind == "NPRED") return std::make_unique<NpredEngine>(index, scoring);
  if (kind == "NPRED_TOTAL") {
    return std::make_unique<NpredEngine>(index, scoring,
                                         NpredOrderingMode::kAllTotalOrders);
  }
  if (kind == "COMP") return std::make_unique<CompEngine>(index, scoring);
  std::fprintf(stderr, "unknown engine kind: %s\n", kind.c_str());
  std::abort();
}

void RunQuery(benchmark::State& state, const Engine& engine, const std::string& query) {
  auto parsed = ParseQuery(query, SurfaceLanguage::kComp);
  if (!parsed.ok()) {
    state.SkipWithError(parsed.status().ToString().c_str());
    return;
  }
  QueryResult last;
  for (auto _ : state) {
    auto result = engine.Evaluate(*parsed);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->nodes.data());
    last = std::move(*result);
  }
  state.counters["matches"] = static_cast<double>(last.nodes.size());
  state.counters["entries"] = static_cast<double>(last.counters.entries_scanned);
  state.counters["positions"] = static_cast<double>(last.counters.positions_scanned);
  state.counters["tuples"] = static_cast<double>(last.counters.tuples_materialized);
  state.counters["pred_evals"] = static_cast<double>(last.counters.predicate_evals);
  state.counters["orderings"] = static_cast<double>(last.counters.orderings_run);
}

void PrintFigureHeader(const char* figure, const char* expectation) {
  std::printf("================================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper-reported shape: %s\n", expectation);
  std::printf("(absolute times differ from the paper's 2005 testbed; compare\n");
  std::printf(" series shapes and the machine-independent counters)\n");
  std::printf("================================================================\n");
}

}  // namespace fts::benchutil
