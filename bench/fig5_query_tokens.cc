// Figure 5: evaluation time while varying the number of query tokens
// (1..5; paper default 3), 6000 context nodes, 2 predicates where the
// engine supports them. Series: BOOL (predicate-free conjunctions),
// PPRED-POS, NPRED-POS, NPRED-NEG, COMP-POS, COMP-NEG.

#include "bench_common.h"

namespace {

using fts::QueryGenOptions;
using fts::QueryPolarity;
using fts::benchutil::MakeEngine;
using fts::benchutil::RunQuery;
using fts::benchutil::SharedIndex;

constexpr uint32_t kNodes = 6000;
constexpr uint32_t kOccurrences = 6;

void Fig5(benchmark::State& state, const char* engine_kind, QueryPolarity polarity) {
  const auto& index = SharedIndex(kNodes, kOccurrences);
  QueryGenOptions opts;
  opts.num_tokens = static_cast<uint32_t>(state.range(0));
  opts.num_predicates = 2;
  opts.polarity = polarity;
  auto engine = MakeEngine(engine_kind, &index);
  RunQuery(state, *engine, GenerateQuery(opts));
}

BENCHMARK_CAPTURE(Fig5, BOOL, "BOOL", QueryPolarity::kNone)
    ->DenseRange(1, 5)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Fig5, PPRED_POS, "PPRED", QueryPolarity::kPositive)
    ->DenseRange(1, 5)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Fig5, NPRED_POS, "NPRED", QueryPolarity::kPositive)
    ->DenseRange(1, 5)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Fig5, NPRED_NEG, "NPRED", QueryPolarity::kNegative)
    ->DenseRange(1, 5)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Fig5, COMP_POS, "COMP", QueryPolarity::kPositive)
    ->DenseRange(1, 5)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Fig5, COMP_NEG, "COMP", QueryPolarity::kNegative)
    ->DenseRange(1, 5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  fts::benchutil::PrintFigureHeader(
      "Figure 5 — varying the number of query tokens (toks_Q = 1..5)",
      "BOOL and PPRED grow slowly and linearly; NPRED and COMP grow "
      "super-linearly, COMP worst (especially COMP-NEG)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
