// Shared benchmark plumbing: cached synthetic corpora/indexes (paper-shaped
// defaults: 6000 context nodes, Zipf background vocabulary, planted topic
// tokens), engine construction by name, and a query-runner that reports the
// machine-independent cost counters alongside wall time.

#ifndef FTS_BENCH_BENCH_COMMON_H_
#define FTS_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "eval/engine.h"
#include "eval/npred_engine.h"
#include "index/inverted_index.h"
#include "workload/corpus_gen.h"
#include "workload/query_gen.h"

namespace fts::benchutil {

/// Paper-shaped corpus options: `cnodes` context nodes (default 6000 as in
/// Section 6.2) whose topic tokens appear in half the documents with
/// `occurrences` positions per containing document (the pos_per_entry
/// knob). Documents are 50-300 tokens over a 20k Zipf vocabulary.
CorpusGenOptions BenchCorpusOptions(uint32_t cnodes, uint32_t occurrences);

/// Lazily built, cached index for the given shape (benchmarks in one binary
/// share corpora across series).
const InvertedIndex& SharedIndex(uint32_t cnodes, uint32_t occurrences);

/// Engine factory: kind is "BOOL", "PPRED", "NPRED", "NPRED_TOTAL" (all
/// toks_Q! orderings) or "COMP". A "_SEEK" suffix (e.g. "BOOL_SEEK")
/// selects the skip-seeking cursors over the block-compressed lists and an
/// "_ADAPT" suffix the per-query adaptive planner; plain names keep the
/// paper-faithful sequential access pattern.
std::unique_ptr<Engine> MakeEngine(const std::string& kind, const InvertedIndex* index,
                                   ScoringKind scoring = ScoringKind::kNone);

/// Drop-in replacement for BENCHMARK_MAIN(): in addition to the console
/// report, writes machine-readable results to BENCH_<program>.json in the
/// working directory (google-benchmark's JSON schema) unless the caller
/// already passed --benchmark_out. Future PRs diff these files to track the
/// perf trajectory.
int BenchMain(int argc, char** argv);

/// Runs `query` on `engine` for each benchmark iteration and publishes the
/// evaluation counters (entries, positions, tuples, predicate evals,
/// orderings, matches) as benchmark counters.
void RunQuery(benchmark::State& state, const Engine& engine, const std::string& query);

/// Prints a figure banner: which paper figure this binary regenerates and
/// the qualitative shape the paper reports.
void PrintFigureHeader(const char* figure, const char* expectation);

}  // namespace fts::benchutil

#endif  // FTS_BENCH_BENCH_COMMON_H_
