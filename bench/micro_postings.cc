// Raw vs block-compressed postings: serialized bytes, sequential decode
// throughput, and seek latency. The counters published with each series
// document the machine-independent story: block seeks probe O(log #blocks)
// skip headers and decode a single block, while raw sequential access walks
// the whole prefix.

#include <string>

#include "bench_common.h"
#include "common/rng.h"
#include "index/block_posting_list.h"
#include "index/index_io.h"

namespace {

using fts::BlockListCursor;
using fts::BlockPostingList;
using fts::EvalCounters;
using fts::InvertedIndex;
using fts::ListCursor;
using fts::NodeId;
using fts::PostingList;
using fts::Rng;
using fts::benchutil::SharedIndex;

// Raw decoded twin of the hot list, materialized per call: the raw form is
// no longer resident in the index, so the raw-vs-block series price it as
// an explicit oracle copy.
PostingList TopicList(const InvertedIndex& index) {
  const BlockPostingList* list = index.block_list_for_text("topic0");
  return list ? list->Materialize() : PostingList();
}

const BlockPostingList& TopicBlockList(const InvertedIndex& index) {
  const BlockPostingList* list = index.block_list_for_text("topic0");
  static const BlockPostingList empty;
  return list ? *list : empty;
}

// Serialized footprint of one hot list, raw (v1 stream, approximated by the
// in-memory entry/position sizes it re-encodes) vs block-compressed.
void BM_SerializedBytes(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, static_cast<uint32_t>(state.range(0)));
  const PostingList& raw = TopicList(index);
  const BlockPostingList& block = TopicBlockList(index);
  std::string v1_blob, v2_blob;
  for (auto _ : state) {
    fts::SaveIndexToString(index, &v1_blob, fts::IndexFormat::kV1);
    fts::SaveIndexToString(index, &v2_blob, fts::IndexFormat::kV2);
    benchmark::DoNotOptimize(v1_blob.data());
    benchmark::DoNotOptimize(v2_blob.data());
  }
  // Raw in-memory footprint of the list vs its compressed twin.
  state.counters["list_raw_bytes"] = static_cast<double>(
      raw.num_entries() * sizeof(fts::PostingEntry) +
      raw.total_positions() * sizeof(fts::PositionInfo));
  state.counters["list_block_bytes"] = static_cast<double>(block.byte_size());
  state.counters["index_v1_bytes"] = static_cast<double>(v1_blob.size());
  state.counters["index_v2_bytes"] = static_cast<double>(v2_blob.size());
  state.counters["v1_over_v2"] =
      v2_blob.empty() ? 0.0
                      : static_cast<double>(v1_blob.size()) /
                            static_cast<double>(v2_blob.size());
}
BENCHMARK(BM_SerializedBytes)->Arg(6)->Unit(benchmark::kMillisecond);

// Full sequential decode of the hot list, raw cursor.
void BM_DecodeRawSequential(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, static_cast<uint32_t>(state.range(0)));
  const PostingList& raw = TopicList(index);
  uint64_t entries = 0;
  for (auto _ : state) {
    ListCursor cursor(&raw);
    while (cursor.NextEntry() != fts::kInvalidNode) {
      auto span = cursor.GetPositions();
      benchmark::DoNotOptimize(span.data());
      ++entries;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(entries));
}
BENCHMARK(BM_DecodeRawSequential)->Arg(6)->Arg(12);

// Full sequential decode of the hot list, block cursor (varint decoding).
void BM_DecodeBlockSequential(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, static_cast<uint32_t>(state.range(0)));
  const BlockPostingList& block = TopicBlockList(index);
  uint64_t entries = 0;
  for (auto _ : state) {
    BlockListCursor cursor(&block);
    while (cursor.NextEntry() != fts::kInvalidNode) {
      auto span = cursor.GetPositions();
      benchmark::DoNotOptimize(span.data());
      ++entries;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(entries));
}
BENCHMARK(BM_DecodeBlockSequential)->Arg(6)->Arg(12);

// One seek to a random node, fresh cursor each time: raw binary search.
void BM_SeekRaw(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  const PostingList& raw = TopicList(index);
  Rng rng(7);
  const NodeId max_node = static_cast<NodeId>(index.num_nodes());
  for (auto _ : state) {
    ListCursor cursor(&raw);
    benchmark::DoNotOptimize(cursor.SeekEntry(rng.Uniform(max_node)));
  }
}
BENCHMARK(BM_SeekRaw);

// One seek to a random node, fresh cursor each time: skip table + one block
// decode. The published counters show the sub-linear decode volume.
void BM_SeekBlock(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  const BlockPostingList& block = TopicBlockList(index);
  Rng rng(7);
  const NodeId max_node = static_cast<NodeId>(index.num_nodes());
  EvalCounters counters;
  uint64_t seeks = 0;
  for (auto _ : state) {
    BlockListCursor cursor(&block, &counters);
    benchmark::DoNotOptimize(cursor.SeekEntry(rng.Uniform(max_node)));
    ++seeks;
  }
  state.counters["entries_in_list"] = static_cast<double>(block.num_entries());
  state.counters["entries_decoded_per_seek"] =
      seeks == 0 ? 0.0
                 : static_cast<double>(counters.entries_decoded) /
                       static_cast<double>(seeks);
  state.counters["skip_checks_per_seek"] =
      seeks == 0 ? 0.0
                 : static_cast<double>(counters.skip_checks) /
                       static_cast<double>(seeks);
}
BENCHMARK(BM_SeekBlock);

// End-to-end effect on a selective conjunctive query: a rare Zipf-tail
// token AND a dense topic token. The sequential merge scans both lists end
// to end; the zig-zag seek path hops the dense list between the rare
// token's nodes, decoding only landing blocks.
void BM_SelectiveAnd(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  const bool seek = state.range(0) != 0;
  const std::string rare = "w" + std::to_string(state.range(1));
  auto engine = fts::benchutil::MakeEngine(seek ? "BOOL_SEEK" : "BOOL", &index);
  fts::benchutil::RunQuery(state, *engine, rare + " and topic1");
}
BENCHMARK(BM_SelectiveAnd)
    ->ArgsProduct({{0, 1}, {2000, 12000}})
    ->ArgNames({"seek", "rare_token"});

}  // namespace

int main(int argc, char** argv) { return fts::benchutil::BenchMain(argc, argv); }
