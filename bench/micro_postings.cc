// Raw vs block-compressed postings: serialized bytes, sequential decode
// throughput, and seek latency. The counters published with each series
// document the machine-independent story: block seeks probe O(log #blocks)
// skip headers and decode a single block, while raw sequential access walks
// the whole prefix.

#include <string>

#include "bench_common.h"
#include "common/rng.h"
#include "index/block_posting_list.h"
#include "index/decoded_block_cache.h"
#include "index/index_io.h"

namespace {

using fts::BlockListCursor;
using fts::BlockPostingList;
using fts::DecodedBlockCache;
using fts::EvalCounters;
using fts::InvertedIndex;
using fts::ListCursor;
using fts::NodeId;
using fts::PostingList;
using fts::Rng;
using fts::benchutil::SharedIndex;

// Raw decoded twin of the hot list, materialized per call: the raw form is
// no longer resident in the index, so the raw-vs-block series price it as
// an explicit oracle copy.
PostingList TopicList(const InvertedIndex& index) {
  const BlockPostingList* list = index.block_list_for_text("topic0");
  return list ? list->Materialize() : PostingList();
}

const BlockPostingList& TopicBlockList(const InvertedIndex& index) {
  const BlockPostingList* list = index.block_list_for_text("topic0");
  static const BlockPostingList empty;
  return list ? *list : empty;
}

// Serialized footprint of one hot list, raw (v1 stream, approximated by the
// in-memory entry/position sizes it re-encodes) vs block-compressed.
void BM_SerializedBytes(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, static_cast<uint32_t>(state.range(0)));
  const PostingList& raw = TopicList(index);
  const BlockPostingList& block = TopicBlockList(index);
  std::string v1_blob, v2_blob;
  for (auto _ : state) {
    fts::SaveIndexToString(index, &v1_blob, fts::IndexFormat::kV1);
    fts::SaveIndexToString(index, &v2_blob, fts::IndexFormat::kV2);
    benchmark::DoNotOptimize(v1_blob.data());
    benchmark::DoNotOptimize(v2_blob.data());
  }
  // Raw in-memory footprint of the list vs its compressed twin.
  state.counters["list_raw_bytes"] = static_cast<double>(
      raw.num_entries() * sizeof(fts::PostingEntry) +
      raw.total_positions() * sizeof(fts::PositionInfo));
  state.counters["list_block_bytes"] = static_cast<double>(block.byte_size());
  state.counters["index_v1_bytes"] = static_cast<double>(v1_blob.size());
  state.counters["index_v2_bytes"] = static_cast<double>(v2_blob.size());
  state.counters["v1_over_v2"] =
      v2_blob.empty() ? 0.0
                      : static_cast<double>(v1_blob.size()) /
                            static_cast<double>(v2_blob.size());
}
BENCHMARK(BM_SerializedBytes)->Arg(6)->Unit(benchmark::kMillisecond);

// Full sequential decode of the hot list, raw cursor.
void BM_DecodeRawSequential(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, static_cast<uint32_t>(state.range(0)));
  const PostingList& raw = TopicList(index);
  uint64_t entries = 0;
  for (auto _ : state) {
    ListCursor cursor(&raw);
    while (cursor.NextEntry() != fts::kInvalidNode) {
      auto span = cursor.GetPositions();
      benchmark::DoNotOptimize(span.data());
      ++entries;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(entries));
}
BENCHMARK(BM_DecodeRawSequential)->Arg(6)->Arg(12);

// Full sequential decode of the hot list, block cursor (varint decoding).
void BM_DecodeBlockSequential(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, static_cast<uint32_t>(state.range(0)));
  const BlockPostingList& block = TopicBlockList(index);
  uint64_t entries = 0;
  for (auto _ : state) {
    BlockListCursor cursor(&block);
    while (cursor.NextEntry() != fts::kInvalidNode) {
      auto span = cursor.GetPositions();
      benchmark::DoNotOptimize(span.data());
      ++entries;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(entries));
}
BENCHMARK(BM_DecodeBlockSequential)->Arg(6)->Arg(12);

// One seek to a random node, fresh cursor each time: raw binary search.
void BM_SeekRaw(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  const PostingList& raw = TopicList(index);
  Rng rng(7);
  const NodeId max_node = static_cast<NodeId>(index.num_nodes());
  for (auto _ : state) {
    ListCursor cursor(&raw);
    benchmark::DoNotOptimize(cursor.SeekEntry(rng.Uniform(max_node)));
  }
}
BENCHMARK(BM_SeekRaw);

// One seek to a random node, fresh cursor each time: skip table + one block
// decode. The published counters show the sub-linear decode volume.
void BM_SeekBlock(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  const BlockPostingList& block = TopicBlockList(index);
  Rng rng(7);
  const NodeId max_node = static_cast<NodeId>(index.num_nodes());
  EvalCounters counters;
  uint64_t seeks = 0;
  for (auto _ : state) {
    BlockListCursor cursor(&block, &counters);
    benchmark::DoNotOptimize(cursor.SeekEntry(rng.Uniform(max_node)));
    ++seeks;
  }
  state.counters["entries_in_list"] = static_cast<double>(block.num_entries());
  state.counters["entries_decoded_per_seek"] =
      seeks == 0 ? 0.0
                 : static_cast<double>(counters.entries_decoded) /
                       static_cast<double>(seeks);
  state.counters["skip_checks_per_seek"] =
      seeks == 0 ? 0.0
                 : static_cast<double>(counters.skip_checks) /
                       static_cast<double>(seeks);
}
BENCHMARK(BM_SeekBlock);

// Bulk header decode throughput: a full sequential walk of the hot list's
// entry headers (node ids + counts) through the cursor's one-tight-loop
// block decode, never touching position bytes. This is the node-level
// access pattern of BOOL merges and zig-zag alignment.
void BM_BulkDecode(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, static_cast<uint32_t>(state.range(0)));
  const BlockPostingList& block = TopicBlockList(index);
  EvalCounters counters;
  uint64_t entries = 0;
  for (auto _ : state) {
    BlockListCursor cursor(&block, &counters);
    while (cursor.NextEntry() != fts::kInvalidNode) {
      benchmark::DoNotOptimize(cursor.current_node());
      ++entries;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(entries));
  state.counters["blocks_bulk_decoded"] =
      static_cast<double>(counters.blocks_bulk_decoded);
}
BENCHMARK(BM_BulkDecode)->Arg(6)->Arg(12);

// Decoded-block cache: the NPRED access pattern — the same list scanned
// once per ordering thread. Each iteration scans the hot list `rescans`
// times; with a shared DecodedBlockCache (cache=1) every scan after the
// first serves its blocks from cache and decodes nothing.
void BM_DecodedBlockCache(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  const BlockPostingList& block = TopicBlockList(index);
  const bool use_cache = state.range(0) != 0;
  const int rescans = static_cast<int>(state.range(1));
  EvalCounters counters;
  for (auto _ : state) {
    DecodedBlockCache cache;
    for (int scan = 0; scan < rescans; ++scan) {
      BlockListCursor cursor(&block, &counters, use_cache ? &cache : nullptr);
      uint64_t sum = 0;
      while (cursor.NextEntry() != fts::kInvalidNode) sum += cursor.current_node();
      benchmark::DoNotOptimize(sum);
    }
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["cache_hits_per_iter"] =
      static_cast<double>(counters.cache_hits) / iters;
  state.counters["blocks_decoded_per_iter"] =
      static_cast<double>(counters.blocks_decoded) / iters;
}
BENCHMARK(BM_DecodedBlockCache)
    ->ArgsProduct({{0, 1}, {2, 6}})
    ->ArgNames({"cache", "rescans"});

// End-to-end effect on a selective conjunctive query: a rare Zipf-tail
// token AND a dense topic token. The sequential merge scans both lists end
// to end; the zig-zag seek path hops the dense list between the rare
// token's nodes, decoding only landing blocks.
void BM_SelectiveAnd(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  // mode: 0 = forced sequential, 1 = forced seek, 2 = adaptive planner.
  const char* kinds[] = {"BOOL", "BOOL_SEEK", "BOOL_ADAPT"};
  const std::string rare = "w" + std::to_string(state.range(1));
  auto engine =
      fts::benchutil::MakeEngine(kinds[state.range(0)], &index);
  fts::benchutil::RunQuery(state, *engine, rare + " and topic1");
}
BENCHMARK(BM_SelectiveAnd)
    ->ArgsProduct({{0, 1, 2}, {2000, 12000}})
    ->ArgNames({"mode", "rare_token"});

// AND of two dense topic tokens — the dense-clustered shape where both
// sides' blocks are bitset-encoded. In seek mode the zig-zag
// short-circuits to word-level bitset intersection (the bitset_ands
// counter proves it); sequential mode and varint-only builds
// (FTS_DISABLE_BITSET_BLOCKS=1) walk the same query entry-at-a-time, which
// is the comparison that prices the hybrid encoding.
void BM_DenseAnd(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  const char* kinds[] = {"BOOL", "BOOL_SEEK"};
  auto engine = fts::benchutil::MakeEngine(kinds[state.range(0)], &index);
  fts::benchutil::RunQuery(state, *engine, "topic0 and topic2");
}
BENCHMARK(BM_DenseAnd)->ArgsProduct({{0, 1}})->ArgNames({"mode"});

}  // namespace

int main(int argc, char** argv) { return fts::benchutil::BenchMain(argc, argv); }
