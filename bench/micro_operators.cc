// Operator microbenchmarks: materialized algebra operators vs their
// pipelined cursor counterparts on identical inputs — the per-operator view
// of the COMP vs PPRED gap.

#include "algebra/fta.h"
#include "bench_common.h"
#include "eval/pos_cursor.h"

namespace {

using fts::AlgebraPredicateCall;
using fts::EvalCounters;
using fts::EvaluateFta;
using fts::FtaExpr;
using fts::FtaExprPtr;
using fts::InvertedIndex;
using fts::PipelineContext;
using fts::benchutil::SharedIndex;

const fts::PositionPredicate* Pred(const char* name) {
  return fts::PredicateRegistry::Default().Find(name);
}

FtaExprPtr JoinSelectPlan(int64_t distance) {
  auto join = FtaExpr::Join(FtaExpr::Token("topic0"), FtaExpr::Token("topic1"));
  AlgebraPredicateCall call;
  call.pred = Pred("distance");
  call.cols = {0, 1};
  call.consts = {distance};
  auto sel = FtaExpr::Select(join, call);
  auto proj = FtaExpr::Project(*sel, {});
  return *proj;
}

void BM_MaterializedScan(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  for (auto _ : state) {
    auto rel = EvaluateFta(FtaExpr::Token("topic0"), index, nullptr, nullptr);
    benchmark::DoNotOptimize(rel->size());
  }
}
BENCHMARK(BM_MaterializedScan)->Unit(benchmark::kMillisecond);

void BM_MaterializedJoinSelect(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  auto plan = JoinSelectPlan(state.range(0));
  size_t matches = 0;
  for (auto _ : state) {
    auto rel = EvaluateFta(plan, index, nullptr, nullptr);
    matches = rel->size();
    benchmark::DoNotOptimize(matches);
  }
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_MaterializedJoinSelect)->Arg(5)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_PipelinedJoinSelect(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  auto plan = JoinSelectPlan(state.range(0));
  size_t matches = 0;
  for (auto _ : state) {
    PipelineContext ctx{&index, nullptr, nullptr};
    auto cursor = BuildPipeline(plan, ctx);
    matches = 0;
    while ((*cursor)->AdvanceNode() != fts::kInvalidNode) ++matches;
    benchmark::DoNotOptimize(matches);
  }
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_PipelinedJoinSelect)->Arg(5)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_MaterializedUnion(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  auto l = FtaExpr::Project(FtaExpr::Token("topic0"), {});
  auto r = FtaExpr::Project(FtaExpr::Token("topic1"), {});
  auto u = FtaExpr::Union(*l, *r);
  for (auto _ : state) {
    auto rel = EvaluateFta(*u, index, nullptr, nullptr);
    benchmark::DoNotOptimize(rel->size());
  }
}
BENCHMARK(BM_MaterializedUnion)->Unit(benchmark::kMillisecond);

void BM_MaterializedAntiJoin(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  auto r = FtaExpr::Project(FtaExpr::Token("topic1"), {});
  auto aj = FtaExpr::AntiJoin(FtaExpr::Token("topic0"), *r);
  for (auto _ : state) {
    auto rel = EvaluateFta(*aj, index, nullptr, nullptr);
    benchmark::DoNotOptimize(rel->size());
  }
}
BENCHMARK(BM_MaterializedAntiJoin)->Unit(benchmark::kMillisecond);

void BM_PipelinedCursorOpsPerPosition(benchmark::State& state) {
  // Cost of one AdvancePosition step on a deep plan (join + 2 selects).
  const InvertedIndex& index = SharedIndex(6000, 6);
  auto join = FtaExpr::Join(FtaExpr::Token("topic0"), FtaExpr::Token("topic1"));
  AlgebraPredicateCall c1;
  c1.pred = Pred("ordered");
  c1.cols = {0, 1};
  auto s1 = FtaExpr::Select(join, c1);
  AlgebraPredicateCall c2;
  c2.pred = Pred("distance");
  c2.cols = {0, 1};
  c2.consts = {30};
  auto s2 = FtaExpr::Select(*s1, c2);
  uint64_t ops = 0;
  for (auto _ : state) {
    EvalCounters counters;
    PipelineContext ctx{&index, nullptr, &counters};
    auto cursor = BuildPipeline(*s2, ctx);
    while ((*cursor)->AdvanceNode() != fts::kInvalidNode) {
    }
    ops += counters.cursor_ops;
  }
  state.counters["cursor_ops_per_iter"] =
      static_cast<double>(ops) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_PipelinedCursorOpsPerPosition)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return fts::benchutil::BenchMain(argc, argv); }
