// Substrate microbenchmarks: tokenizer, index construction, sequential
// block-cursor scans, resident-memory accounting, serialization round
// trips, eager-vs-mmap load paths, and the adaptive-vs-fixed cursor-mode
// comparison.

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <utility>

#include "bench_common.h"
#include "index/block_posting_list.h"
#include "index/index_builder.h"
#include "index/index_io.h"
#include "lang/parser.h"
#include "text/tokenizer.h"
#include "workload/query_gen.h"

namespace {

using fts::BlockListCursor;
using fts::BlockPostingList;
using fts::Corpus;
using fts::GenerateCorpus;
using fts::IndexBuilder;
using fts::InvertedIndex;
using fts::QueryGenOptions;
using fts::QueryPolarity;
using fts::Tokenizer;
using fts::benchutil::BenchCorpusOptions;
using fts::benchutil::MakeEngine;
using fts::benchutil::RunQuery;
using fts::benchutil::SharedIndex;

void BM_Tokenize(benchmark::State& state) {
  // A ~2.5KB paragraph, repeated to the requested size.
  std::string text;
  while (text.size() < static_cast<size_t>(state.range(0))) {
    text += "Usability of a software measures how well the software supports "
            "achieving an efficient software task completion. ";
  }
  Tokenizer tokenizer;
  for (auto _ : state) {
    auto tokens = tokenizer.Tokenize(text);
    benchmark::DoNotOptimize(tokens.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_Tokenize)->Arg(4 << 10)->Arg(64 << 10)->Arg(512 << 10);

void BM_IndexBuild(benchmark::State& state) {
  Corpus corpus =
      GenerateCorpus(BenchCorpusOptions(static_cast<uint32_t>(state.range(0)), 6));
  for (auto _ : state) {
    InvertedIndex index = IndexBuilder::Build(corpus);
    benchmark::DoNotOptimize(index.num_nodes());
  }
  state.counters["nodes"] = static_cast<double>(corpus.num_nodes());
}
BENCHMARK(BM_IndexBuild)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_ListCursorScan(benchmark::State& state) {
  // Sequential scan of the hot list through the resident block cursor —
  // the access path every engine's kSequential mode now takes.
  const InvertedIndex& index = SharedIndex(6000, static_cast<uint32_t>(state.range(0)));
  const BlockPostingList* list = index.block_list_for_text("topic0");
  uint64_t positions = 0;
  for (auto _ : state) {
    BlockListCursor cursor(list);
    while (cursor.NextEntry() != fts::kInvalidNode) {
      auto span = cursor.GetPositions();
      positions += span.size();
      benchmark::DoNotOptimize(span.data());
    }
  }
  state.counters["positions_per_scan"] =
      static_cast<double>(positions) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ListCursorScan)->Arg(6)->Arg(12);

void BM_AnyListScan(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  for (auto _ : state) {
    BlockListCursor cursor(&index.block_any_list());
    uint64_t count = 0;
    while (cursor.NextEntry() != fts::kInvalidNode) ++count;
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_AnyListScan);

void BM_IndexResidentBytes(benchmark::State& state) {
  // Resident footprint of the single block representation, against what the
  // pre-refactor dual-resident model (blocks + a raw decoded mirror) would
  // hold for the same corpus. The raw mirror is materialized transiently
  // here purely to price it.
  const InvertedIndex& index = SharedIndex(6000, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.MemoryUsage());
  }
  size_t raw_mirror = 0;
  for (fts::TokenId t = 0; t < index.vocabulary_size(); ++t) {
    const fts::PostingList raw = index.block_list(t)->Materialize();
    raw_mirror += raw.num_entries() * sizeof(fts::PostingEntry) +
                  raw.total_positions() * sizeof(fts::PositionInfo) +
                  sizeof(fts::PostingList);
  }
  {
    const fts::PostingList raw = index.block_any_list().Materialize();
    raw_mirror += raw.num_entries() * sizeof(fts::PostingEntry) +
                  raw.total_positions() * sizeof(fts::PositionInfo) +
                  sizeof(fts::PostingList);
  }
  const double resident = static_cast<double>(index.MemoryUsage());
  state.counters["resident_index_bytes"] = resident;
  state.counters["raw_mirror_bytes"] = static_cast<double>(raw_mirror);
  state.counters["dual_resident_bytes"] = resident + static_cast<double>(raw_mirror);
  state.counters["dual_over_block"] =
      resident == 0 ? 0.0 : (resident + static_cast<double>(raw_mirror)) / resident;
}
BENCHMARK(BM_IndexResidentBytes);

// ---------------------------------------------------------------------------
// Adaptive planner vs the two fixed cursor modes, over fig5-8-shaped
// workloads (paper defaults: 3 topic tokens, 2 predicates, 6000 nodes) plus
// the selective-AND shape where seeking shines. Args: mode (0 sequential,
// 1 seek, 2 adaptive). The acceptance bar is adaptive within 5% of the
// better fixed mode on every series.
// ---------------------------------------------------------------------------

const char* ModeSuffix(int mode) {
  return mode == 0 ? "" : (mode == 1 ? "_SEEK" : "_ADAPT");
}

void BM_AdaptiveVsFixed(benchmark::State& state, const char* base,
                        QueryPolarity polarity, uint32_t occurrences) {
  const InvertedIndex& index = SharedIndex(6000, occurrences);
  QueryGenOptions opts;
  opts.num_tokens = 3;
  opts.num_predicates = polarity == QueryPolarity::kNone ? 0 : 2;
  opts.polarity = polarity;
  const int mode = static_cast<int>(state.range(0));
  auto engine = MakeEngine(std::string(base) + ModeSuffix(mode), &index);
  RunQuery(state, *engine, GenerateQuery(opts));
}
BENCHMARK_CAPTURE(BM_AdaptiveVsFixed, BOOL_fig5, "BOOL", QueryPolarity::kNone, 6)
    ->DenseRange(0, 2)->ArgName("mode");
BENCHMARK_CAPTURE(BM_AdaptiveVsFixed, PPRED_fig6, "PPRED", QueryPolarity::kPositive, 6)
    ->DenseRange(0, 2)->ArgName("mode");
BENCHMARK_CAPTURE(BM_AdaptiveVsFixed, NPRED_fig6, "NPRED", QueryPolarity::kNegative, 6)
    ->DenseRange(0, 2)->ArgName("mode")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AdaptiveVsFixed, PPRED_fig8, "PPRED", QueryPolarity::kPositive, 12)
    ->DenseRange(0, 2)->ArgName("mode");

// Selective conjunction (the fig7-style sparse-driver shape): a Zipf-tail
// token AND a dense topic token, where seeking is the right call.
void BM_AdaptiveVsFixedSelective(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  auto engine = MakeEngine(std::string("BOOL") +
                               ModeSuffix(static_cast<int>(state.range(0))),
                           &index);
  RunQuery(state, *engine, "w6000 and topic0");
}
BENCHMARK(BM_AdaptiveVsFixedSelective)->DenseRange(0, 2)->ArgName("mode");

// ---------------------------------------------------------------------------
// Load-path benchmarks: eager heap load (read + full validation, O(file))
// vs mmap lazy load (header/directory only, O(header) — block payloads are
// first-touch validated when queries decode them). Args: context nodes;
// eager load time scales with the corpus, mmap load time should stay
// nearly flat across the sizes while resident bytes drop to the
// header/directory structures.
// ---------------------------------------------------------------------------

/// Shared per-shape v3 index file in the system temp dir, written once per
/// process (the file is intentionally left for the OS temp cleaner: later
/// iterations of other series reuse it through the static map).
const std::pair<std::string, size_t>& SharedIndexFile(uint32_t cnodes) {
  static std::map<uint32_t, std::pair<std::string, size_t>>* files =
      new std::map<uint32_t, std::pair<std::string, size_t>>();
  auto it = files->find(cnodes);
  if (it == files->end()) {
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("fts_micro_index_load_" + std::to_string(cnodes) + ".idx"))
            .string();
    fts::SaveIndexToFile(SharedIndex(cnodes, 6), path);
    it = files->emplace(cnodes, std::make_pair(path, std::filesystem::file_size(path)))
             .first;
  }
  return it->second;
}

void LoadBench(benchmark::State& state, fts::LoadOptions::Mode mode) {
  const auto& [path, bytes] = SharedIndexFile(static_cast<uint32_t>(state.range(0)));
  fts::LoadOptions options;
  options.mode = mode;
  InvertedIndex last;
  for (auto _ : state) {
    InvertedIndex loaded;
    if (!fts::LoadIndexFromFile(path, &loaded, options).ok()) {
      state.SkipWithError("load failed");
      return;
    }
    benchmark::DoNotOptimize(loaded.num_nodes());
    last = std::move(loaded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
  state.counters["file_bytes"] = static_cast<double>(bytes);
  state.counters["resident_bytes"] = static_cast<double>(last.MemoryUsage());
  state.counters["mapped_bytes"] = static_cast<double>(last.MappedBytes());
}

void BM_IndexLoadEager(benchmark::State& state) {
  LoadBench(state, fts::LoadOptions::Mode::kEager);
}
BENCHMARK(BM_IndexLoadEager)->Arg(1500)->Arg(6000)->Unit(benchmark::kMillisecond);

void BM_IndexLoadMmap(benchmark::State& state) {
  LoadBench(state, fts::LoadOptions::Mode::kMmap);
}
BENCHMARK(BM_IndexLoadMmap)->Arg(1500)->Arg(6000)->Unit(benchmark::kMillisecond);

// Cold start to first answer: load the index file and answer one selective
// AND. Eager mode pays a full-file read + validation before the first
// query can run; mmap mode pays the O(header) load plus first-touch
// validation of only the blocks the query actually lands in; mmap+prefault
// additionally walks every page at load time (MADV_WILLNEED + touch), the
// warm-up a service opts into so first queries never fault. With the page
// cache already warm (as here, right after writing the file) the prefault
// delta is the soft-fault cost alone; on a truly cold cache it is the
// file's IO moved out of query latency. Args: mode (0 eager, 1 mmap,
// 2 mmap+prefault).
void BM_ColdFirstQuery(benchmark::State& state) {
  const auto& [path, bytes] = SharedIndexFile(6000);
  fts::LoadOptions options;
  options.mode = state.range(0) == 0 ? fts::LoadOptions::Mode::kEager
                                     : fts::LoadOptions::Mode::kMmap;
  options.prefault = state.range(0) == 2;
  auto parsed = fts::ParseQuery("w6000 and topic0", fts::SurfaceLanguage::kComp);
  if (!parsed.ok()) {
    state.SkipWithError("bad query");
    return;
  }
  uint64_t first_touch = 0;
  for (auto _ : state) {
    InvertedIndex loaded;
    if (!fts::LoadIndexFromFile(path, &loaded, options).ok()) {
      state.SkipWithError("load failed");
      return;
    }
    auto engine = MakeEngine("BOOL_ADAPT", &loaded);
    auto result = engine->Evaluate(*parsed);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    first_touch += result->counters.first_touch_validations;
    benchmark::DoNotOptimize(result->nodes.data());
  }
  state.counters["file_bytes"] = static_cast<double>(bytes);
  state.counters["first_touch_blocks"] =
      static_cast<double>(first_touch) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ColdFirstQuery)->DenseRange(0, 2)->ArgName("mode")
    ->Unit(benchmark::kMillisecond);

void BM_IndexSerialize(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(2000, 6);
  std::string blob;
  for (auto _ : state) {
    fts::SaveIndexToString(index, &blob);
    benchmark::DoNotOptimize(blob.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_IndexSerialize)->Unit(benchmark::kMillisecond);

void BM_IndexDeserialize(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(2000, 6);
  std::string blob;
  fts::SaveIndexToString(index, &blob);
  for (auto _ : state) {
    InvertedIndex loaded;
    if (!fts::LoadIndexFromString(blob, &loaded).ok()) {
      state.SkipWithError("load failed");
      return;
    }
    benchmark::DoNotOptimize(loaded.num_nodes());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_IndexDeserialize)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return fts::benchutil::BenchMain(argc, argv); }
