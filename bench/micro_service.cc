// Concurrent-serving benchmarks: SearchService throughput scaling across
// worker counts (BM_ConcurrentQps — the acceptance bench for the
// worker-pool layer), per-query service overhead vs a direct router call,
// and the cross-query SharedBlockCache's effect on a repeated-query mix.
//
// Throughput benches measure wall time (UseRealTime): the work happens on
// the service's worker threads, so the benchmark thread's CPU time would
// only show submission cost. QPS scaling is inherently bounded by the
// machine's core count — on the 4-core CI runners 8 workers saturate
// around 4x; read the qps counter relative to the threads:1 series.

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eval/router.h"
#include "exec/search_service.h"
#include "index/index_io.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <map>

namespace {

using fts::InvertedIndex;
using fts::LoadOptions;
using fts::QueryGenOptions;
using fts::QueryPolarity;
using fts::QueryRouter;
using fts::SearchService;
using fts::benchutil::SharedIndex;

/// The serving mix: fig5-shaped BOOL conjunctions and fig6-shaped PPRED
/// predicate queries over the planted topic tokens, interleaved the way a
/// traffic mix would be. (NPRED's ordering enumeration is benchmarked by
/// the ablation binaries; at multi-ms per query it would drown the
/// scaling signal here.)
std::vector<std::string> ServingMix() {
  std::vector<std::string> mix;
  for (uint32_t first = 0; first < 4; ++first) {
    QueryGenOptions bool_query;
    bool_query.num_tokens = 3;
    bool_query.num_predicates = 0;
    bool_query.polarity = QueryPolarity::kNone;
    bool_query.first_topic = first;
    mix.push_back(GenerateQuery(bool_query));

    QueryGenOptions ppred_query;
    ppred_query.num_tokens = 3;
    ppred_query.num_predicates = 2;
    ppred_query.polarity = QueryPolarity::kPositive;
    ppred_query.first_topic = first;
    mix.push_back(GenerateQuery(ppred_query));
  }
  return mix;
}

/// One batch of the mix per iteration through a worker pool of
/// state.range(0) threads; qps = queries / wall second. The paper corpus
/// (6000 nodes) is shared across all series.
void BM_ConcurrentQps(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  SearchService::Options options;
  options.num_workers = static_cast<size_t>(state.range(0));
  options.mode = fts::CursorMode::kAdaptive;
  SearchService service(&index, options);

  // One batch = 4 copies of the 8-query mix, enough to keep every worker
  // busy within a batch.
  std::vector<std::string> batch;
  const std::vector<std::string> mix = ServingMix();
  for (int copy = 0; copy < 4; ++copy) {
    batch.insert(batch.end(), mix.begin(), mix.end());
  }

  uint64_t queries = 0;
  for (auto _ : state) {
    auto results = service.SearchBatch(batch);
    for (const auto& r : results) {
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    queries += results.size();
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(queries));
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(queries), benchmark::Counter::kIsRate);
  const auto m = service.metrics();
  state.counters["l2_hit_fraction"] =
      m.totals.shared_cache_hits + m.totals.shared_cache_misses == 0
          ? 0.0
          : static_cast<double>(m.totals.shared_cache_hits) /
                static_cast<double>(m.totals.shared_cache_hits +
                                    m.totals.shared_cache_misses);
}
BENCHMARK(BM_ConcurrentQps)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgName("threads")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

/// The same scaling series over an mmap-served index: cold traffic decodes
/// straight from the page cache, with first-touch validation and bulk
/// decode amortized across queries by the service's L2.
void BM_ConcurrentQpsMmap(benchmark::State& state) {
  static std::string* path = [] {
    auto* p = new std::string(
        (std::filesystem::temp_directory_path() / "fts_micro_service.idx")
            .string());
    fts::SaveIndexToFile(SharedIndex(6000, 6), *p);
    return p;
  }();
  LoadOptions load;
  load.mode = LoadOptions::Mode::kMmap;
  InvertedIndex index;
  if (!fts::LoadIndexFromFile(*path, &index, load).ok()) {
    state.SkipWithError("mmap load failed");
    return;
  }
  SearchService::Options options;
  options.num_workers = static_cast<size_t>(state.range(0));
  SearchService service(&index, options);
  const std::vector<std::string> batch = ServingMix();

  uint64_t queries = 0;
  for (auto _ : state) {
    auto results = service.SearchBatch(batch);
    for (const auto& r : results) {
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    queries += results.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(queries));
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(queries), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConcurrentQpsMmap)
    ->Arg(1)->Arg(8)
    ->ArgName("threads")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

/// Per-query service overhead: the same query through the pool (submit,
/// enqueue, worker wakeup, future) vs a direct router call on the
/// benchmark thread. The delta is the serving machinery's tax.
void BM_ServiceSearchLatency(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  SearchService::Options options;
  options.num_workers = 1;
  SearchService service(&index, options);
  const std::string query = "'topic0' AND 'topic1' AND 'topic2'";
  for (auto _ : state) {
    auto r = service.Search(query);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->result.nodes.data());
  }
}
BENCHMARK(BM_ServiceSearchLatency)->UseRealTime()->MeasureProcessCPUTime();

void BM_RouterDirectLatency(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  QueryRouter router(&index);
  fts::ExecContext ctx = router.MakeContext();
  const std::string query = "'topic0' AND 'topic1' AND 'topic2'";
  for (auto _ : state) {
    auto r = router.Evaluate(query, ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->result.nodes.data());
  }
}
BENCHMARK(BM_RouterDirectLatency);

/// Cross-query amortization in one number: the same query stream through
/// a router with and without the shared L2 (single thread, so the delta
/// is pure decode savings, no parallelism).
void BM_SharedCacheRepeatedQueries(benchmark::State& state) {
  const InvertedIndex& index = SharedIndex(6000, 6);
  const bool with_l2 = state.range(0) != 0;
  fts::RouterOptions options;
  if (with_l2) options.shared_cache = std::make_shared<fts::SharedBlockCache>();
  QueryRouter router(&index, options);
  const std::vector<std::string> mix = ServingMix();
  for (auto _ : state) {
    for (const std::string& q : mix) {
      auto r = router.Evaluate(q);
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(r->result.nodes.data());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(mix.size()));
}
BENCHMARK(BM_SharedCacheRepeatedQueries)
    ->Arg(0)->Arg(1)
    ->ArgName("l2");

}  // namespace

int main(int argc, char** argv) { return fts::benchutil::BenchMain(argc, argv); }
