// Per-query LRU cache of bulk-decoded posting blocks.
//
// Hot lists — stop-word-like tokens in a zig-zag AND, the lists an NPRED
// query re-scans once per ordering permutation, a token that appears twice
// in one query — would otherwise be block-decoded once per cursor. A
// DecodedBlockCache lets every BlockListCursor of one query evaluation
// share the decoded (ids + entry headers) form of a block, keyed by
// (list uid, block index) — the uid, not the address, so a cache that
// outlives a segment generation can never serve a retired list's blocks
// for a new list allocated at the same address. Entries are handed out as
// shared_ptr so a cached block stays valid for any cursor still reading it
// after eviction.
//
// The cache is deliberately small (default 128 blocks ≈ 16k entry headers)
// and scoped to a single ExecContext — one query, or one service worker's
// run of queries — which is always single-threaded, so it takes no locks.
// It is the L1 level of a two-level hierarchy: when a cross-query
// SharedBlockCache (L2, index/shared_block_cache.h) is attached via
// set_shared(), an L1 miss falls through to L2 before decoding, so hot
// blocks decode once per *process*, not once per query. Hits and misses
// are charged to EvalCounters::{cache_hits,cache_misses} (L1) and
// {shared_cache_hits,shared_cache_misses} (L2); only true misses pay
// decode work (blocks_decoded / blocks_bulk_decoded / entries_decoded).
// Cursors bypass L1 for lists with more blocks than its capacity — a
// sequential pass over such a list would cycle the LRU (every later
// re-read a miss) while paying allocation and bookkeeping per block — but
// still consult L2 for them when one is attached (cross-query reuse is
// exactly what long cold scans want); lists too big for L2 as well decode
// into the cursor arena.

#ifndef FTS_INDEX_DECODED_BLOCK_CACHE_H_
#define FTS_INDEX_DECODED_BLOCK_CACHE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "index/block_posting_list.h"

namespace fts {

class SharedBlockCache;  // index/shared_block_cache.h

/// One block's bulk-decoded entry headers (positions stay compressed; the
/// EntryRefs locate each entry's position bytes for lazy decode).
struct DecodedBlock {
  std::vector<BlockPostingList::EntryRef> entries;
};

/// Small LRU cache of DecodedBlocks shared by the cursors of one query.
class DecodedBlockCache {
 public:
  static constexpr size_t kDefaultCapacity = 128;

  explicit DecodedBlockCache(size_t capacity = kDefaultCapacity,
                             SharedBlockCache* shared = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity), shared_(shared) {}

  DecodedBlockCache(const DecodedBlockCache&) = delete;
  DecodedBlockCache& operator=(const DecodedBlockCache&) = delete;

  /// Attaches (or detaches, with nullptr) the cross-query L2 cache misses
  /// fall through to. The L2 must outlive every lookup made through this
  /// cache.
  void set_shared(SharedBlockCache* shared) { shared_ = shared; }
  SharedBlockCache* shared() const { return shared_; }

  /// Drops every cached block and zeroes the hit/miss tallies, keeping the
  /// allocated bucket arrays warm. Service workers call this between
  /// queries when per-query L1 semantics are wanted; by default a worker's
  /// ExecContext keeps its L1 across queries (same immutable index, still
  /// one thread).
  void Clear() {
    lru_.clear();
    map_.clear();
    hits_ = 0;
    misses_ = 0;
  }

  /// True when the distinct lists named by `tokens` (plus IL_ANY when
  /// `any_scans` > 0) together fit in `capacity` blocks — the precondition
  /// for the cache to hold a whole rescan working set. When they do not
  /// fit, every rescan cycles the LRU (all misses plus bookkeeping), so
  /// callers should not attach a cache.
  static bool FitsWorkingSet(const InvertedIndex& index,
                             std::span<const std::string> tokens, int any_scans,
                             size_t capacity = kDefaultCapacity);

  /// The single cache-attachment decision shared by every engine: attach
  /// for a query whose leaf scans read `tokens` (with `any_scans` IL_ANY
  /// reads) only when some list is read twice — a duplicated token, or
  /// more than one ANY scan — AND the working set fits (FitsWorkingSet).
  /// Single-scan queries skip the per-block bookkeeping entirely.
  static bool ShouldAttach(const InvertedIndex& index,
                           std::vector<std::string> tokens, int any_scans,
                           size_t capacity = kDefaultCapacity);

  /// Returns `block` of `list` decoded, from cache if present (charging a
  /// hit) or by bulk-decoding and inserting it (charging a miss plus the
  /// decode counters). Returns nullptr if the block is empty or malformed —
  /// callers treat that exactly like a failed direct decode. A malformed
  /// block (first-touch validation failure on a lazily loaded index)
  /// additionally reports its decode error through `status` when given.
  std::shared_ptr<const DecodedBlock> GetOrDecode(const BlockPostingList& list,
                                                  size_t block,
                                                  EvalCounters* counters,
                                                  Status* status = nullptr);

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  using Key = std::pair<uint64_t, size_t>;  // (list uid, block index)

  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Splitmix-style mix of the list uid and block index.
      uint64_t h = k.first ^
                   (static_cast<uint64_t>(k.second) * 0x9E3779B97F4A7C15ull);
      h ^= h >> 33;
      h *= 0xFF51AFD7ED558CCDull;
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };

  struct Slot {
    Key key;
    std::shared_ptr<const DecodedBlock> block;
  };

  size_t capacity_;
  SharedBlockCache* shared_;  // L2 fallthrough, nullable
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::list<Slot> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Slot>::iterator, KeyHash> map_;
};

}  // namespace fts

#endif  // FTS_INDEX_DECODED_BLOCK_CACHE_H_
