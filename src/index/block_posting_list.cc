#include "index/block_posting_list.h"

#include <algorithm>
#include <cassert>

#include "common/fnv.h"
#include "common/varint.h"
#include "index/decoded_block_cache.h"
#include "index/shared_block_cache.h"
#include "index/tombstone_set.h"

namespace fts {

BlockPostingList BlockPostingList::FromPostingList(const PostingList& raw,
                                                   uint32_t block_size) {
  BlockPostingList out(block_size);
  for (size_t i = 0; i < raw.num_entries(); ++i) {
    const PostingEntry& e = raw.entry(i);
    out.Append(e.node, raw.positions(e));
  }
  out.Finish();
  return out;
}

PostingList BlockPostingList::Materialize() const {
  PostingList out;
  std::vector<PostingEntry> entries;
  std::vector<PositionInfo> positions;
  for (size_t b = 0; b < num_blocks(); ++b) {
    Status s = DecodeBlock(b, &entries, &positions);
    assert(s.ok());
    (void)s;
    for (const PostingEntry& e : entries) {
      out.Append(e.node, {positions.data() + e.pos_begin, e.pos_count});
    }
  }
  return out;
}

void BlockPostingList::Append(NodeId node, std::span<const PositionInfo> positions) {
  assert(pending_.empty() || pending_.back().node < node);
  assert(skips_.empty() || !pending_.empty() || skips_.back().max_node < node);
  PendingEntry e;
  e.node = node;
  e.pos_begin = static_cast<uint32_t>(pending_positions_.size());
  e.pos_count = static_cast<uint32_t>(positions.size());
  pending_positions_.insert(pending_positions_.end(), positions.begin(),
                            positions.end());
  pending_.push_back(e);
  ++num_entries_;
  total_positions_ += positions.size();
  if (pending_.size() >= block_size_) FlushPending();
}

void BlockPostingList::FlushPending() {
  if (pending_.empty()) return;
  SkipEntry skip;
  skip.max_node = pending_.back().node;
  skip.byte_offset = static_cast<uint32_t>(owned_.size());
  skip.entry_count = static_cast<uint32_t>(pending_.size());
  for (const PendingEntry& e : pending_) {
    skip.max_tf = std::max(skip.max_tf, e.pos_count);
  }

  // First node of the block is absolute so blocks decode independently;
  // subsequent ids are strictly positive deltas. Each entry's positions
  // (offset/sentence/paragraph deltas, as in the v1 stream) sit behind a
  // byte-length so header-only decoding can hop over them.
  NodeId prev_node = 0;
  bool first = true;
  std::string pos_bytes;
  for (const PendingEntry& e : pending_) {
    PutVarint32(&owned_, first ? e.node : e.node - prev_node);
    first = false;
    prev_node = e.node;
    PutVarint32(&owned_, e.pos_count);
    pos_bytes.clear();
    uint32_t prev_off = 0, prev_sent = 0, prev_para = 0;
    for (uint32_t j = 0; j < e.pos_count; ++j) {
      const PositionInfo& p = pending_positions_[e.pos_begin + j];
      PutVarint32(&pos_bytes, p.offset - prev_off);
      PutVarint32(&pos_bytes, p.sentence - prev_sent);
      PutVarint32(&pos_bytes, p.paragraph - prev_para);
      prev_off = p.offset;
      prev_sent = p.sentence;
      prev_para = p.paragraph;
    }
    PutVarint32(&owned_, static_cast<uint32_t>(pos_bytes.size()));
    owned_.append(pos_bytes);
  }
  skips_.push_back(skip);
  pending_.clear();
  pending_positions_.clear();
}

size_t BlockPostingList::byte_size() const {
  // Skip table as serialized: delta-coded max_node + byte_offset delta +
  // entry_count, all varints. Recomputing the exact varint widths here keeps
  // the bench's "serialized bytes" number faithful without serializing.
  std::string scratch;
  NodeId prev_max = 0;
  uint32_t prev_off = 0;
  for (const SkipEntry& s : skips_) {
    PutVarint32(&scratch, s.max_node - prev_max);
    PutVarint32(&scratch, s.byte_offset - prev_off);
    PutVarint32(&scratch, s.entry_count);
    prev_max = s.max_node;
    prev_off = s.byte_offset;
  }
  return data().size() + scratch.size();
}

Status BlockPostingList::DecodeBlockEntries(size_t block,
                                            std::vector<EntryRef>* entries) const {
  if (block >= skips_.size()) {
    return Status::InvalidArgument("block index out of range");
  }
  const std::string_view payload = data();
  const SkipEntry& skip = skips_[block];
  if (skip.byte_offset > payload.size()) {
    return Status::Corruption("skip offset past payload");
  }
  const size_t end = block + 1 < skips_.size() ? skips_[block + 1].byte_offset
                                               : payload.size();
  // Each entry takes at least 3 bytes (node delta, count, position length);
  // bound before reserving so a crafted skip table cannot force a huge alloc.
  if (end < skip.byte_offset || end > payload.size() ||
      skip.entry_count > (end - skip.byte_offset) / 3 + 1) {
    return Status::Corruption("block entry count larger than block payload");
  }
  // First touch of a lazily validated block: verify the payload checksum
  // recorded in the (load-time-checksummed) skip directory before parsing
  // a single byte, so a flipped bit in an mmap'd file surfaces here as
  // Corruption rather than as structurally plausible garbage. Memoized:
  // once this decode succeeds end to end the block is marked verified and
  // later decodes skip the hash.
  const bool first_touch = block_verified_ != nullptr &&
      block_verified_[block].load(std::memory_order_acquire) == 0;
  if (first_touch && !block_checksums_.empty()) {
    if (Fnv1a32(payload.substr(skip.byte_offset, end - skip.byte_offset)) !=
        block_checksums_[block]) {
      return Status::Corruption("block payload checksum mismatch at first touch");
    }
  }
  entries->clear();
  entries->reserve(skip.entry_count);
  // Bulk path: one tight loop over the block's bytes through the pointer
  // varint decoders (one inline branch per header value in the common
  // one-byte case), hopping over position payloads via their byte length.
  const uint8_t* const base = reinterpret_cast<const uint8_t*>(payload.data());
  const uint8_t* p = base + skip.byte_offset;
  const uint8_t* const lim = base + end;
  NodeId prev_node = 0;
  for (uint32_t i = 0; i < skip.entry_count; ++i) {
    uint32_t node_delta, count, pos_len;
    if ((p = GetVarint32Ptr(p, lim, &node_delta)) == nullptr ||
        (p = GetVarint32Ptr(p, lim, &count)) == nullptr ||
        (p = GetVarint32Ptr(p, lim, &pos_len)) == nullptr) {
      return Status::Corruption("malformed posting block header");
    }
    const NodeId node = (i == 0) ? node_delta : prev_node + node_delta;
    if (i > 0 && (node_delta == 0 || node < prev_node)) {
      return Status::Corruption("non-increasing node ids in posting block");
    }
    if (i == 0 && block > 0 && node <= skips_[block - 1].max_node) {
      // Cross-block monotonicity, checked per block against the previous
      // skip header so lazily validated blocks need no neighbor decode.
      return Status::Corruption("non-increasing node ids across blocks");
    }
    prev_node = node;
    if (has_block_max_ && count > skip.max_tf) {
      // A crafted v4 file must not be able to understate a block's max_tf:
      // an entry whose position count exceeds the recorded block maximum
      // would make the block-max impact bound an under-estimate and let
      // top-k evaluation skip a true top result.
      return Status::Corruption("entry position count exceeds block max_tf");
    }
    if (pos_len > static_cast<size_t>(lim - p)) {
      return Status::Corruption("position bytes overrun posting block");
    }
    EntryRef e;
    e.header.node = node;
    e.header.pos_count = count;
    e.pos_byte_begin = static_cast<uint32_t>(p - base);
    e.pos_byte_len = pos_len;
    p += pos_len;
    entries->push_back(e);
  }
  if (p != lim) {
    return Status::Corruption("posting block length mismatch");
  }
  if (prev_node != skip.max_node) {
    return Status::Corruption("posting block max_node mismatch");
  }
  if (first_touch) {
    block_verified_[block].store(1, std::memory_order_release);
  }
  return Status::OK();
}

Status BlockPostingList::DecodePositions(const EntryRef& entry,
                                         std::vector<PositionInfo>* positions) const {
  const std::string_view payload = data();
  // Each position takes at least 3 bytes (three varints).
  if (entry.header.pos_count > entry.pos_byte_len / 3 + 1 ||
      entry.pos_byte_begin > payload.size() ||
      entry.pos_byte_len > payload.size() - entry.pos_byte_begin) {
    return Status::Corruption("position count larger than position bytes");
  }
  const uint32_t count = entry.header.pos_count;
  positions->resize(count);
  const uint8_t* const base = reinterpret_cast<const uint8_t*>(payload.data());
  const uint8_t* p = base + entry.pos_byte_begin;
  const uint8_t* const lim = p + entry.pos_byte_len;
  // Bulk-decode the delta triples in fixed-size chunks through the group
  // decoder (unchecked four-wide inner loop), then prefix-sum into the
  // output. The chunk buffer keeps the scratch stack-resident.
  uint32_t deltas[3 * 64];
  uint32_t off = 0, sent = 0, para = 0;
  uint32_t done = 0;
  while (done < count) {
    const uint32_t chunk = std::min(count - done, 64u);
    if ((p = GetVarint32Group(p, lim, deltas, 3 * chunk)) == nullptr) {
      return Status::Corruption("malformed position bytes");
    }
    for (uint32_t j = 0; j < chunk; ++j) {
      off += deltas[3 * j];
      sent += deltas[3 * j + 1];
      para += deltas[3 * j + 2];
      (*positions)[done + j] = PositionInfo{off, sent, para};
    }
    done += chunk;
  }
  if (p != lim) {
    return Status::Corruption("position bytes length mismatch");
  }
  return Status::OK();
}

Status BlockPostingList::DecodeBlock(size_t block,
                                     std::vector<PostingEntry>* entries,
                                     std::vector<PositionInfo>* positions) const {
  std::vector<EntryRef> refs;
  FTS_RETURN_IF_ERROR(DecodeBlockEntries(block, &refs));
  entries->clear();
  positions->clear();
  entries->reserve(refs.size());
  std::vector<PositionInfo> scratch;
  for (const EntryRef& ref : refs) {
    FTS_RETURN_IF_ERROR(DecodePositions(ref, &scratch));
    PostingEntry e = ref.header;
    e.pos_begin = static_cast<uint32_t>(positions->size());
    positions->insert(positions->end(), scratch.begin(), scratch.end());
    entries->push_back(e);
  }
  return Status::OK();
}

BlockPostingList BlockPostingList::FromParts(uint32_t block_size,
                                             uint64_t num_entries,
                                             uint64_t total_positions,
                                             std::vector<SkipEntry> skips,
                                             std::string data,
                                             bool has_block_max) {
  BlockPostingList out(block_size);
  out.num_entries_ = num_entries;
  out.total_positions_ = total_positions;
  out.skips_ = std::move(skips);
  out.owned_ = std::move(data);
  out.has_block_max_ = has_block_max;
  return out;
}

BlockPostingList BlockPostingList::FromParts(uint32_t block_size,
                                             uint64_t num_entries,
                                             uint64_t total_positions,
                                             std::vector<SkipEntry> skips,
                                             std::string_view data,
                                             std::vector<uint32_t> checksums,
                                             bool first_touch_validation,
                                             bool has_block_max) {
  BlockPostingList out(block_size);
  out.num_entries_ = num_entries;
  out.total_positions_ = total_positions;
  out.skips_ = std::move(skips);
  out.has_block_max_ = has_block_max;
  // An empty slice must still present a non-null view so data() does not
  // fall back to owned_ (harmless today, but keep the invariant tight).
  out.view_ = data.data() != nullptr ? data : std::string_view("", 0);
  out.block_checksums_ = std::move(checksums);
  if (first_touch_validation && !out.skips_.empty()) {
    out.block_verified_ =
        std::make_unique<std::atomic<uint8_t>[]>(out.skips_.size());
    for (size_t b = 0; b < out.skips_.size(); ++b) {
      out.block_verified_[b].store(0, std::memory_order_relaxed);
    }
  }
  return out;
}

uint64_t BlockPostingList::NextUid() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

BlockListCursor& BlockListCursor::operator=(BlockListCursor&& o) noexcept {
  list_ = o.list_;
  counters_ = o.counters_;
  cache_ = o.cache_;
  tombstones_ = o.tombstones_;
  const bool own_arena = o.entries_ == &o.arena_;
  arena_ = std::move(o.arena_);
  cached_ = std::move(o.cached_);
  entries_ = o.entries_ == nullptr ? nullptr
                                   : (own_arena ? &arena_ : &cached_->entries);
  positions_ = std::move(o.positions_);
  positions_for_ = o.positions_for_;
  block_ = o.block_;
  idx_ = o.idx_;
  started_ = o.started_;
  exhausted_ = o.exhausted_;
  node_ = o.node_;
  status_ = std::move(o.status_);
  return *this;
}

bool BlockListCursor::LoadBlock(size_t block) {
  const bool was_verified = list_->BlockVerified(block);
  // Lists with more blocks than the per-query cache can hold would cycle
  // its LRU on every sequential pass — all misses, plus allocation and
  // bookkeeping on each — so they bypass L1. When a cross-query L2 is
  // attached they still read through it (that is where cold mmap traffic
  // amortizes decode + first-touch validation across queries) unless they
  // would cycle the L2 too; only then does the cursor fall back to its
  // private arena.
  SharedBlockCache* shared = cache_ != nullptr ? cache_->shared() : nullptr;
  if (cache_ != nullptr && list_->num_blocks() <= cache_->capacity()) {
    Status s;
    cached_ = cache_->GetOrDecode(*list_, block, counters_, &s);
    if (cached_ == nullptr) {
      // Under first-touch validation a decode failure is lazily detected
      // corruption: record it and fail closed by exhausting.
      if (!s.ok() && status_.ok()) status_ = std::move(s);
      return false;
    }
    entries_ = &cached_->entries;
  } else if (shared != nullptr &&
             list_->num_blocks() <= shared->capacity_blocks()) {
    Status s;
    cached_ = shared->GetOrDecode(*list_, block, counters_, &s);
    if (cached_ == nullptr) {
      if (!s.ok() && status_.ok()) status_ = std::move(s);
      return false;
    }
    entries_ = &cached_->entries;
  } else {
    Status s = list_->DecodeBlockEntries(block, &arena_);
    if (!s.ok()) {
      if (status_.ok()) status_ = std::move(s);
      return false;
    }
    if (arena_.empty()) return false;
    if (counters_ != nullptr) {
      ++counters_->blocks_decoded;
      ++counters_->blocks_bulk_decoded;
      counters_->entries_decoded += arena_.size();
    }
    entries_ = &arena_;
  }
  if (counters_ != nullptr && !was_verified && list_->BlockVerified(block)) {
    ++counters_->first_touch_validations;
  }
  block_ = block;
  positions_for_ = SIZE_MAX;
  return true;
}

NodeId BlockListCursor::NextEntry() {
  NodeId n = NextEntryUnfiltered();
  while (tombstones_ != nullptr && n != kInvalidNode && tombstones_->Contains(n)) {
    n = NextEntryUnfiltered();
  }
  return n;
}

NodeId BlockListCursor::SeekEntry(NodeId target) {
  // A filtered cursor never rests on a tombstoned entry, so the
  // backward-seek early return inside SeekEntryUnfiltered stays sound.
  NodeId n = SeekEntryUnfiltered(target);
  while (tombstones_ != nullptr && n != kInvalidNode && tombstones_->Contains(n)) {
    n = NextEntryUnfiltered();
  }
  return n;
}

NodeId BlockListCursor::NextEntryUnfiltered() {
  if (exhausted_) return kInvalidNode;
  if (!started_) {
    started_ = true;
    if (list_ == nullptr || list_->num_blocks() == 0 || !LoadBlock(0)) {
      exhausted_ = true;
      node_ = kInvalidNode;
      return kInvalidNode;
    }
    idx_ = 0;
  } else if (idx_ + 1 < entries_->size()) {
    ++idx_;
  } else if (block_ + 1 < list_->num_blocks() && LoadBlock(block_ + 1)) {
    idx_ = 0;
  } else {
    exhausted_ = true;
    node_ = kInvalidNode;
    return kInvalidNode;
  }
  if (counters_ != nullptr) ++counters_->entries_scanned;
  node_ = (*entries_)[idx_].header.node;
  return node_;
}

NodeId BlockListCursor::SeekEntryUnfiltered(NodeId target) {
  if (exhausted_) return kInvalidNode;
  if (started_ && node_ != kInvalidNode && node_ >= target) {
    return node_;  // backward (or in-place) seeks do not move the cursor
  }
  if (list_ == nullptr || list_->num_blocks() == 0) {
    started_ = true;
    exhausted_ = true;
    node_ = kInvalidNode;
    return kInvalidNode;
  }
  // Binary search the skip headers for the first block whose max_node can
  // reach the target. Blocks before the current one need not be considered.
  size_t lo = started_ ? block_ : 0;
  size_t hi = list_->num_blocks();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (counters_ != nullptr) ++counters_->skip_checks;
    if (list_->skip(mid).max_node < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= list_->num_blocks()) {
    started_ = true;
    exhausted_ = true;
    node_ = kInvalidNode;
    return kInvalidNode;
  }
  const bool same_block = started_ && lo == block_;
  if (!same_block) {
    if (!LoadBlock(lo)) {
      started_ = true;
      exhausted_ = true;
      node_ = kInvalidNode;
      return kInvalidNode;
    }
    idx_ = 0;
  } else if (node_ != kInvalidNode) {
    // Resume within the already-decoded block, just past the current entry.
    ++idx_;
  }
  started_ = true;
  // The landing block's max_node >= target, so a match exists in it unless
  // we resumed mid-block past it (impossible: node_ < target guaranteed a
  // later entry in this block or a later block would have been selected).
  while (idx_ < entries_->size() && (*entries_)[idx_].header.node < target) ++idx_;
  if (idx_ >= entries_->size()) {
    exhausted_ = true;
    node_ = kInvalidNode;
    return kInvalidNode;
  }
  if (counters_ != nullptr) ++counters_->entries_scanned;
  node_ = (*entries_)[idx_].header.node;
  return node_;
}

std::span<const PositionInfo> BlockListCursor::GetPositions() {
  assert(started_ && !exhausted_);
  if (positions_for_ != idx_) {
    Status s = list_->DecodePositions((*entries_)[idx_], &positions_);
    if (!s.ok()) {
      // Structurally inconsistent position bytes (reachable only when a
      // crafted file defeats the checksums): report through status() and
      // hand back an empty PosList — fail closed, never partial garbage.
      positions_.clear();
      if (status_.ok()) status_ = std::move(s);
    }
    positions_for_ = idx_;
    if (counters_ != nullptr) counters_->positions_decoded += positions_.size();
  }
  return {positions_.data(), positions_.size()};
}

}  // namespace fts
