#include "index/block_posting_list.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/fnv.h"
#include "common/varint.h"
#include "common/varint_simd.h"
#include "index/decoded_block_cache.h"
#include "index/shared_block_cache.h"
#include "index/tombstone_set.h"

namespace fts {

namespace {

/// Bitset words are stored little-endian so files are byte-identical
/// across hosts; the shift loops compile to plain loads/stores on LE.
void PutFixed64Le(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint64_t LoadFixed64Le(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

std::atomic<bool>& DenseBlocksDefaultFlag() {
  static std::atomic<bool> flag = [] {
    const char* disable = std::getenv("FTS_DISABLE_BITSET_BLOCKS");
    return disable == nullptr || disable[0] != '1';
  }();
  return flag;
}

}  // namespace

bool BlockPostingList::DenseBlocksEnabledByDefault() {
  return DenseBlocksDefaultFlag().load(std::memory_order_relaxed);
}

bool BlockPostingList::SetDenseBlocksEnabledByDefault(bool enabled) {
  return DenseBlocksDefaultFlag().exchange(enabled, std::memory_order_relaxed);
}

BlockPostingList BlockPostingList::FromPostingList(const PostingList& raw,
                                                   uint32_t block_size) {
  BlockPostingList out(block_size);
  for (size_t i = 0; i < raw.num_entries(); ++i) {
    const PostingEntry& e = raw.entry(i);
    out.Append(e.node, raw.positions(e));
  }
  out.Finish();
  return out;
}

PostingList BlockPostingList::Materialize() const {
  PostingList out;
  std::vector<PostingEntry> entries;
  std::vector<PositionInfo> positions;
  for (size_t b = 0; b < num_blocks(); ++b) {
    Status s = DecodeBlock(b, &entries, &positions);
    assert(s.ok());
    (void)s;
    for (const PostingEntry& e : entries) {
      out.Append(e.node, {positions.data() + e.pos_begin, e.pos_count});
    }
  }
  return out;
}

BlockPostingList BlockPostingList::ToVarintOnly() const {
  BlockPostingList out(block_size_);
  out.dense_enabled_ = false;
  std::vector<PostingEntry> entries;
  std::vector<PositionInfo> positions;
  for (size_t b = 0; b < num_blocks(); ++b) {
    Status s = DecodeBlock(b, &entries, &positions);
    assert(s.ok());
    (void)s;
    for (const PostingEntry& e : entries) {
      out.Append(e.node, {positions.data() + e.pos_begin, e.pos_count});
    }
  }
  out.Finish();
  return out;
}

void BlockPostingList::Append(NodeId node, std::span<const PositionInfo> positions) {
  assert(pending_.empty() || pending_.back().node < node);
  assert(skips_.empty() || !pending_.empty() || skips_.back().max_node < node);
  PendingEntry e;
  e.node = node;
  e.pos_begin = static_cast<uint32_t>(pending_positions_.size());
  e.pos_count = static_cast<uint32_t>(positions.size());
  pending_positions_.insert(pending_positions_.end(), positions.begin(),
                            positions.end());
  pending_.push_back(e);
  ++num_entries_;
  total_positions_ += positions.size();
  if (pending_.size() >= block_size_) FlushPending();
}

void BlockPostingList::FlushPending() {
  if (pending_.empty()) return;
  SkipEntry skip;
  skip.max_node = pending_.back().node;
  skip.byte_offset = static_cast<uint32_t>(owned_.size());
  skip.entry_count = static_cast<uint32_t>(pending_.size());
  for (const PendingEntry& e : pending_) {
    skip.max_tf = std::max(skip.max_tf, e.pos_count);
  }

  // Dense classification: a block whose ids cover at least a quarter of
  // their span stores one bit per id in that span cheaper than one-byte
  // deltas would, and — the real prize — intersects against another dense
  // block with word ANDs instead of entry-at-a-time seeks.
  const uint64_t span =
      static_cast<uint64_t>(skip.max_node) - pending_.front().node + 1;
  if (dense_enabled_ && pending_.size() >= kMinDenseEntries &&
      span <= static_cast<uint64_t>(kDenseSpanFactor) * pending_.size()) {
    FlushPendingBitset(&skip);
    skips_.push_back(skip);
    pending_.clear();
    pending_positions_.clear();
    return;
  }

  // First node of the block is absolute so blocks decode independently;
  // subsequent ids are strictly positive deltas. Each entry's positions
  // (offset/sentence/paragraph deltas, as in the v1 stream) sit behind a
  // byte-length so header-only decoding can hop over them.
  NodeId prev_node = 0;
  bool first = true;
  std::string pos_bytes;
  for (const PendingEntry& e : pending_) {
    PutVarint32(&owned_, first ? e.node : e.node - prev_node);
    first = false;
    prev_node = e.node;
    PutVarint32(&owned_, e.pos_count);
    pos_bytes.clear();
    uint32_t prev_off = 0, prev_sent = 0, prev_para = 0;
    for (uint32_t j = 0; j < e.pos_count; ++j) {
      const PositionInfo& p = pending_positions_[e.pos_begin + j];
      PutVarint32(&pos_bytes, p.offset - prev_off);
      PutVarint32(&pos_bytes, p.sentence - prev_sent);
      PutVarint32(&pos_bytes, p.paragraph - prev_para);
      prev_off = p.offset;
      prev_sent = p.sentence;
      prev_para = p.paragraph;
    }
    PutVarint32(&owned_, static_cast<uint32_t>(pos_bytes.size()));
    owned_.append(pos_bytes);
  }
  skips_.push_back(skip);
  pending_.clear();
  pending_positions_.clear();
}

void BlockPostingList::FlushPendingBitset(SkipEntry* skip) {
  // Bitset block layout:
  //   base varint        absolute first node id (bit 0 is always set)
  //   nwords varint      number of 64-bit bitset words
  //   words              nwords little-endian uint64, bit i = id base+i
  //   counts             entry_count varints (per-entry position counts)
  //   pos_lens           entry_count varints (per-entry position byte len)
  //   pos bytes          concatenated per-entry position deltas (v1 coding)
  // The count and length streams are contiguous — unlike the interleaved
  // sparse layout — so DecodeBlockEntries runs them through the dispatched
  // (SIMD-capable) group decoder in bulk.
  skip->encoding = kEncodingBitset;
  const NodeId base = pending_.front().node;
  const uint64_t span = static_cast<uint64_t>(skip->max_node) - base + 1;
  const uint32_t nwords = static_cast<uint32_t>((span + 63) / 64);
  PutVarint32(&owned_, base);
  PutVarint32(&owned_, nwords);
  std::vector<uint64_t> words(nwords, 0);
  for (const PendingEntry& e : pending_) {
    const uint64_t bit = e.node - base;
    words[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
  for (uint32_t w = 0; w < nwords; ++w) PutFixed64Le(&owned_, words[w]);
  for (const PendingEntry& e : pending_) PutVarint32(&owned_, e.pos_count);
  std::string pos_bytes;
  std::string entry_bytes;
  for (const PendingEntry& e : pending_) {
    entry_bytes.clear();
    uint32_t prev_off = 0, prev_sent = 0, prev_para = 0;
    for (uint32_t j = 0; j < e.pos_count; ++j) {
      const PositionInfo& p = pending_positions_[e.pos_begin + j];
      PutVarint32(&entry_bytes, p.offset - prev_off);
      PutVarint32(&entry_bytes, p.sentence - prev_sent);
      PutVarint32(&entry_bytes, p.paragraph - prev_para);
      prev_off = p.offset;
      prev_sent = p.sentence;
      prev_para = p.paragraph;
    }
    PutVarint32(&owned_, static_cast<uint32_t>(entry_bytes.size()));
    pos_bytes.append(entry_bytes);
  }
  owned_.append(pos_bytes);
}

size_t BlockPostingList::byte_size() const {
  // Skip table as serialized: delta-coded max_node + byte_offset delta +
  // entry_count, all varints. Recomputing the exact varint widths here keeps
  // the bench's "serialized bytes" number faithful without serializing.
  std::string scratch;
  NodeId prev_max = 0;
  uint32_t prev_off = 0;
  for (const SkipEntry& s : skips_) {
    PutVarint32(&scratch, s.max_node - prev_max);
    PutVarint32(&scratch, s.byte_offset - prev_off);
    PutVarint32(&scratch, s.entry_count);
    prev_max = s.max_node;
    prev_off = s.byte_offset;
  }
  return data().size() + scratch.size();
}

Status BlockPostingList::DecodeBlockEntries(size_t block,
                                            std::vector<EntryRef>* entries,
                                            EvalCounters* counters) const {
  if (block >= skips_.size()) {
    return Status::InvalidArgument("block index out of range");
  }
  const std::string_view payload = data();
  const SkipEntry& skip = skips_[block];
  if (skip.byte_offset > payload.size()) {
    return Status::Corruption("skip offset past payload");
  }
  const size_t end = block + 1 < skips_.size() ? skips_[block + 1].byte_offset
                                               : payload.size();
  if (end < skip.byte_offset || end > payload.size()) {
    return Status::Corruption("block entry count larger than block payload");
  }
  // Bound the entry count by the block's byte budget before reserving so a
  // crafted skip table cannot force a huge alloc: a varint entry takes at
  // least 3 bytes (node delta, count, position length); a bitset entry at
  // least one bitset bit plus two stream bytes (the bit is the binding
  // constraint once the span check below runs).
  const size_t block_bytes = end - skip.byte_offset;
  if (skip.encoding == kEncodingVarint
          ? skip.entry_count > block_bytes / 3 + 1
          : skip.entry_count > block_bytes * 8) {
    return Status::Corruption("block entry count larger than block payload");
  }
  if (skip.encoding != kEncodingVarint && skip.encoding != kEncodingBitset) {
    return Status::Corruption("unknown block encoding");
  }
  // First touch of a lazily validated block: verify the payload checksum
  // recorded in the (load-time-checksummed) skip directory before parsing
  // a single byte, so a flipped bit in an mmap'd file surfaces here as
  // Corruption rather than as structurally plausible garbage. Memoized:
  // once this decode succeeds end to end the block is marked verified and
  // later decodes skip the hash.
  const bool first_touch = block_verified_ != nullptr &&
      block_verified_[block].load(std::memory_order_acquire) == 0;
  if (first_touch && !block_checksums_.empty()) {
    if (Fnv1a32(payload.substr(skip.byte_offset, end - skip.byte_offset)) !=
        block_checksums_[block]) {
      return Status::Corruption("block payload checksum mismatch at first touch");
    }
  }
  if (skip.encoding == kEncodingBitset) {
    FTS_RETURN_IF_ERROR(
        DecodeBitsetBlock(block, skip, payload, end, entries, counters));
    if (first_touch) {
      block_verified_[block].store(1, std::memory_order_release);
    }
    return Status::OK();
  }
  entries->clear();
  entries->reserve(skip.entry_count);
  // Bulk path: one tight loop over the block's bytes through the pointer
  // varint decoders (one inline branch per header value in the common
  // one-byte case), hopping over position payloads via their byte length.
  const uint8_t* const base = reinterpret_cast<const uint8_t*>(payload.data());
  const uint8_t* p = base + skip.byte_offset;
  const uint8_t* const lim = base + end;
  NodeId prev_node = 0;
  for (uint32_t i = 0; i < skip.entry_count; ++i) {
    uint32_t node_delta, count, pos_len;
    if ((p = GetVarint32Ptr(p, lim, &node_delta)) == nullptr ||
        (p = GetVarint32Ptr(p, lim, &count)) == nullptr ||
        (p = GetVarint32Ptr(p, lim, &pos_len)) == nullptr) {
      return Status::Corruption("malformed posting block header");
    }
    const NodeId node = (i == 0) ? node_delta : prev_node + node_delta;
    if (i > 0 && (node_delta == 0 || node < prev_node)) {
      return Status::Corruption("non-increasing node ids in posting block");
    }
    if (i == 0 && block > 0 && node <= skips_[block - 1].max_node) {
      // Cross-block monotonicity, checked per block against the previous
      // skip header so lazily validated blocks need no neighbor decode.
      return Status::Corruption("non-increasing node ids across blocks");
    }
    prev_node = node;
    if (has_block_max_ && count > skip.max_tf) {
      // A crafted v4 file must not be able to understate a block's max_tf:
      // an entry whose position count exceeds the recorded block maximum
      // would make the block-max impact bound an under-estimate and let
      // top-k evaluation skip a true top result.
      return Status::Corruption("entry position count exceeds block max_tf");
    }
    if (pos_len > static_cast<size_t>(lim - p)) {
      return Status::Corruption("position bytes overrun posting block");
    }
    EntryRef e;
    e.header.node = node;
    e.header.pos_count = count;
    e.pos_byte_begin = static_cast<uint32_t>(p - base);
    e.pos_byte_len = pos_len;
    p += pos_len;
    entries->push_back(e);
  }
  if (p != lim) {
    return Status::Corruption("posting block length mismatch");
  }
  if (prev_node != skip.max_node) {
    return Status::Corruption("posting block max_node mismatch");
  }
  if (first_touch) {
    block_verified_[block].store(1, std::memory_order_release);
  }
  return Status::OK();
}

Status BlockPostingList::DecodeBitsetBlock(size_t block, const SkipEntry& skip,
                                           std::string_view payload, size_t end,
                                           std::vector<EntryRef>* entries,
                                           EvalCounters* counters) const {
  const uint8_t* const base =
      reinterpret_cast<const uint8_t*>(payload.data());
  const uint8_t* p = base + skip.byte_offset;
  const uint8_t* const lim = base + end;
  uint32_t bset_base, nwords;
  if ((p = GetVarint32Ptr(p, lim, &bset_base)) == nullptr ||
      (p = GetVarint32Ptr(p, lim, &nwords)) == nullptr) {
    return Status::Corruption("malformed bitset block header");
  }
  if (nwords == 0 || nwords > static_cast<size_t>(lim - p) / 8) {
    return Status::Corruption("bitset words overrun block payload");
  }
  if (skip.max_node < bset_base) {
    return Status::Corruption("bitset base past block max_node");
  }
  // The word count is fully determined by the (directory-checksummed)
  // max_node: any disagreement is corruption, and with it checked, the
  // highest set bit is pinned to exactly max_node below.
  const uint64_t span = static_cast<uint64_t>(skip.max_node) - bset_base + 1;
  if (nwords != (span + 63) / 64) {
    return Status::Corruption("bitset word count disagrees with max_node");
  }
  if (block > 0 && bset_base <= skips_[block - 1].max_node) {
    return Status::Corruption("non-increasing node ids across blocks");
  }
  const uint8_t* const words = p;
  p += static_cast<size_t>(nwords) * 8;
  // Resize (not clear+push_back): EntryRef is trivial, so a reused arena
  // pays no per-entry size checks and no re-initialization; every field is
  // written below before anyone reads it.
  entries->resize(skip.entry_count);
  EntryRef* const es = entries->data();
  size_t k = 0;
  // Expand set bits to node ids. Strict invariants: bit 0 set (base is the
  // first entry), the last valid bit set (max_node is the last), no stray
  // bits past the span, and the popcount must equal the skip entry count —
  // a flipped bitset bit can only ever surface as Corruption.
  for (uint32_t w = 0; w < nwords; ++w) {
    uint64_t bits = LoadFixed64Le(words + 8 * static_cast<size_t>(w));
    if (w == 0 && (bits & 1) == 0) {
      return Status::Corruption("bitset base bit unset");
    }
    if (w == nwords - 1) {
      const unsigned valid = static_cast<unsigned>(span - uint64_t{64} * w);
      if (valid < 64 && (bits >> valid) != 0) {
        return Status::Corruption("stray bits past bitset span");
      }
      if (((bits >> (valid - 1)) & 1) == 0) {
        return Status::Corruption("bitset max_node bit unset");
      }
    }
    if (k + static_cast<size_t>(std::popcount(bits)) > skip.entry_count) {
      return Status::Corruption("bitset popcount disagrees with entry count");
    }
    const NodeId wbase = bset_base + 64 * w;
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      es[k++].header.node = wbase + static_cast<NodeId>(bit);
    }
  }
  if (k != skip.entry_count) {
    return Status::Corruption("bitset popcount disagrees with entry count");
  }
  // Per-entry position counts, then position byte lengths: contiguous
  // streams decoded in bulk through the dispatched (SIMD-capable) group
  // decoder — this is the entry-header decode the hybrid layout exists to
  // un-interleave.
  const bool simd = SimdDecodeActive();
  uint32_t buf[128];
  for (uint32_t done = 0; done < skip.entry_count;) {
    const uint32_t chunk = std::min(skip.entry_count - done, 128u);
    if ((p = GetVarint32GroupAuto(p, lim, buf, chunk)) == nullptr) {
      return Status::Corruption("malformed bitset count stream");
    }
    if (simd && counters != nullptr) ++counters->simd_groups_decoded;
    for (uint32_t j = 0; j < chunk; ++j) {
      if (has_block_max_ && buf[j] > skip.max_tf) {
        return Status::Corruption("entry position count exceeds block max_tf");
      }
      (*entries)[done + j].header.pos_count = buf[j];
    }
    done += chunk;
  }
  for (uint32_t done = 0; done < skip.entry_count;) {
    const uint32_t chunk = std::min(skip.entry_count - done, 128u);
    if ((p = GetVarint32GroupAuto(p, lim, buf, chunk)) == nullptr) {
      return Status::Corruption("malformed bitset length stream");
    }
    if (simd && counters != nullptr) ++counters->simd_groups_decoded;
    for (uint32_t j = 0; j < chunk; ++j) {
      (*entries)[done + j].pos_byte_len = buf[j];
    }
    done += chunk;
  }
  // Position bytes follow the length stream back to back; the lengths must
  // tile the remaining payload exactly.
  uint64_t pos_off = static_cast<uint64_t>(p - base);
  for (EntryRef& e : *entries) {
    e.pos_byte_begin = static_cast<uint32_t>(pos_off);
    pos_off += e.pos_byte_len;
    if (pos_off > end) {
      return Status::Corruption("position bytes overrun posting block");
    }
  }
  if (pos_off != end) {
    return Status::Corruption("posting block length mismatch");
  }
  return Status::OK();
}

Status BlockPostingList::DecodePositions(const EntryRef& entry,
                                         std::vector<PositionInfo>* positions,
                                         EvalCounters* counters) const {
  const std::string_view payload = data();
  // Each position takes at least 3 bytes (three varints).
  if (entry.header.pos_count > entry.pos_byte_len / 3 + 1 ||
      entry.pos_byte_begin > payload.size() ||
      entry.pos_byte_len > payload.size() - entry.pos_byte_begin) {
    return Status::Corruption("position count larger than position bytes");
  }
  const uint32_t count = entry.header.pos_count;
  positions->resize(count);
  const uint8_t* const base = reinterpret_cast<const uint8_t*>(payload.data());
  const uint8_t* p = base + entry.pos_byte_begin;
  const uint8_t* const lim = p + entry.pos_byte_len;
  // Bulk-decode the delta triples in fixed-size chunks through the
  // dispatched group decoder (pshufb shuffle-table kernel when a SIMD arm
  // is active, the unchecked four-wide scalar loop otherwise), then
  // prefix-sum into the output. The chunk buffer keeps the scratch
  // stack-resident.
  const bool simd = SimdDecodeActive();
  uint32_t deltas[3 * 64];
  uint32_t off = 0, sent = 0, para = 0;
  uint32_t done = 0;
  while (done < count) {
    const uint32_t chunk = std::min(count - done, 64u);
    if ((p = GetVarint32GroupAuto(p, lim, deltas, 3 * chunk)) == nullptr) {
      return Status::Corruption("malformed position bytes");
    }
    if (simd && counters != nullptr) ++counters->simd_groups_decoded;
    for (uint32_t j = 0; j < chunk; ++j) {
      off += deltas[3 * j];
      sent += deltas[3 * j + 1];
      para += deltas[3 * j + 2];
      (*positions)[done + j] = PositionInfo{off, sent, para};
    }
    done += chunk;
  }
  if (p != lim) {
    return Status::Corruption("position bytes length mismatch");
  }
  return Status::OK();
}

Status BlockPostingList::DecodeBlockPositionsBulk(
    std::span<const EntryRef> refs, size_t from, size_t to,
    std::vector<uint32_t>* delta_scratch, std::vector<PositionInfo>* positions,
    std::vector<uint32_t>* offsets, EvalCounters* counters) const {
  if (from >= to || to > refs.size()) {
    return Status::InvalidArgument("bulk position decode range out of block");
  }
  const std::string_view payload = data();
  const size_t n = to - from;
  offsets->resize(n + 1);
  uint32_t* const offs = offsets->data();
  uint64_t total = 0;
  uint64_t next_begin = refs[from].pos_byte_begin;
  // The same prechecks DecodePositions runs per entry, plus the tiling
  // requirement that makes one contiguous decode of the concatenated
  // region equivalent to per-entry decodes of its slices (tiling also
  // subsumes the per-entry begin bound: the region start and end are
  // range-checked once below).
  for (size_t i = from; i < to; ++i) {
    const EntryRef& e = refs[i];
    if (e.header.pos_count > e.pos_byte_len / 3 + 1 ||
        e.pos_byte_begin != next_begin) {
      return Status::Corruption("position count larger than position bytes");
    }
    next_begin += e.pos_byte_len;
    offs[i - from] = static_cast<uint32_t>(total);
    total += e.header.pos_count;
  }
  offs[n] = static_cast<uint32_t>(total);
  if (refs[from].pos_byte_begin > payload.size() ||
      next_begin > payload.size()) {
    return Status::Corruption("position count larger than position bytes");
  }
  // One slot of headroom each: the vectorized prefix pass below reads
  // 16-byte delta quads and writes 16-byte sum quads at a 12-byte stride,
  // so its last load/store reach one lane past the real data.
  positions->resize(total + 1);
  // Decode-and-prefix runs fused in L1-sized chunks: decoding the whole
  // region into a 3*total scratch first looked simpler but round-trips
  // every delta through L2 (written by the kernel, read back by the
  // prefix pass), which dominates once a block's positions outgrow L1.
  constexpr size_t kChunkValues = 3 * 512;
  delta_scratch->resize(kChunkValues + 1);
  const uint8_t* const base = reinterpret_cast<const uint8_t*>(payload.data());
  const uint8_t* p = base + refs[from].pos_byte_begin;
  const uint8_t* const region_end = base + next_begin;
  // The region decodes as one varint stream. The kernel limit is the
  // payload end, not the region end, so its 16/32-byte loads stay engaged
  // to the last value (reads stay inside the payload); the
  // exact-consumption check at the bottom is what pins the stream to the
  // region — a malformed stream that strays past an entry boundary lands
  // on the wrong total and is rejected, same failure class as the
  // per-entry path.
  const bool simd = SimdDecodeActive();
  size_t ei = from;           // entry whose positions are being emitted
  uint32_t done_in_entry = 0;  // positions already emitted for refs[ei]
  char* ob = reinterpret_cast<char*>(positions->data());
#if defined(__SSE2__)
  __m128i sum = _mm_setzero_si128();
#else
  uint32_t off = 0, sent = 0, para = 0;
#endif
  for (uint64_t left = total; left > 0;) {
    const size_t take = static_cast<size_t>(
        std::min<uint64_t>(left, kChunkValues / 3));
    p = GetVarint32GroupAuto(p, base + payload.size(), delta_scratch->data(),
                             3 * take);
    if (p == nullptr) {
      positions->resize(total);
      return Status::Corruption("position bytes length mismatch");
    }
    if (simd && counters != nullptr) ++counters->simd_groups_decoded;
    // Emit this chunk's positions, walking entry boundaries as they pass;
    // deltas reset per entry. A chunk boundary can split an entry, so the
    // running sums and the entry walk persist across iterations.
    const uint32_t* d = delta_scratch->data();
    for (size_t avail = take; avail > 0;) {
      while (refs[ei].header.pos_count == done_in_entry) {
        ++ei;
        done_in_entry = 0;
#if defined(__SSE2__)
        sum = _mm_setzero_si128();
#else
        off = sent = para = 0;
#endif
      }
      const uint32_t run = static_cast<uint32_t>(std::min<uint64_t>(
          refs[ei].header.pos_count - done_in_entry, avail));
      for (uint32_t r = 0; r < run; ++r, d += 3, ob += sizeof(PositionInfo)) {
#if defined(__SSE2__)
        // 16-byte load of the delta triple (lane 3 is the next triple's
        // first word), add onto the running sums, 16-byte store whose
        // stray lane the next store — or the arena headroom — absorbs.
        sum = _mm_add_epi32(
            sum, _mm_loadu_si128(reinterpret_cast<const __m128i*>(d)));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(ob), sum);
#else
        off += d[0];
        sent += d[1];
        para += d[2];
        *reinterpret_cast<PositionInfo*>(ob) = PositionInfo{off, sent, para};
#endif
      }
      done_in_entry += run;
      avail -= run;
    }
    left -= take;
  }
  positions->resize(total);  // drop the headroom slot; capacity kept
  if (p != region_end) {
    return Status::Corruption("position bytes length mismatch");
  }
  return Status::OK();
}

Status BlockPostingList::DecodeBlock(size_t block,
                                     std::vector<PostingEntry>* entries,
                                     std::vector<PositionInfo>* positions) const {
  std::vector<EntryRef> refs;
  FTS_RETURN_IF_ERROR(DecodeBlockEntries(block, &refs));
  entries->clear();
  positions->clear();
  entries->reserve(refs.size());
  std::vector<PositionInfo> scratch;
  for (const EntryRef& ref : refs) {
    FTS_RETURN_IF_ERROR(DecodePositions(ref, &scratch));
    PostingEntry e = ref.header;
    e.pos_begin = static_cast<uint32_t>(positions->size());
    positions->insert(positions->end(), scratch.begin(), scratch.end());
    entries->push_back(e);
  }
  return Status::OK();
}

BlockPostingList BlockPostingList::FromParts(uint32_t block_size,
                                             uint64_t num_entries,
                                             uint64_t total_positions,
                                             std::vector<SkipEntry> skips,
                                             std::string data,
                                             bool has_block_max) {
  BlockPostingList out(block_size);
  out.num_entries_ = num_entries;
  out.total_positions_ = total_positions;
  out.skips_ = std::move(skips);
  out.owned_ = std::move(data);
  out.has_block_max_ = has_block_max;
  return out;
}

BlockPostingList BlockPostingList::FromParts(uint32_t block_size,
                                             uint64_t num_entries,
                                             uint64_t total_positions,
                                             std::vector<SkipEntry> skips,
                                             std::string_view data,
                                             std::vector<uint32_t> checksums,
                                             bool first_touch_validation,
                                             bool has_block_max) {
  BlockPostingList out(block_size);
  out.num_entries_ = num_entries;
  out.total_positions_ = total_positions;
  out.skips_ = std::move(skips);
  out.has_block_max_ = has_block_max;
  // An empty slice must still present a non-null view so data() does not
  // fall back to owned_ (harmless today, but keep the invariant tight).
  out.view_ = data.data() != nullptr ? data : std::string_view("", 0);
  out.block_checksums_ = std::move(checksums);
  if (first_touch_validation && !out.skips_.empty()) {
    out.block_verified_ =
        std::make_unique<std::atomic<uint8_t>[]>(out.skips_.size());
    for (size_t b = 0; b < out.skips_.size(); ++b) {
      out.block_verified_[b].store(0, std::memory_order_relaxed);
    }
  }
  return out;
}

uint64_t BlockPostingList::NextUid() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

BlockListCursor& BlockListCursor::operator=(BlockListCursor&& o) noexcept {
  list_ = o.list_;
  counters_ = o.counters_;
  cache_ = o.cache_;
  tombstones_ = o.tombstones_;
  const bool own_arena = o.entries_ == &o.arena_;
  arena_ = std::move(o.arena_);
  cached_ = std::move(o.cached_);
  entries_ = o.entries_ == nullptr ? nullptr
                                   : (own_arena ? &arena_ : &cached_->entries);
  positions_ = std::move(o.positions_);
  positions_for_ = o.positions_for_;
  bulk_positions_ = std::move(o.bulk_positions_);
  bulk_offsets_ = std::move(o.bulk_offsets_);
  delta_scratch_ = std::move(o.delta_scratch_);
  bulk_block_ = o.bulk_block_;
  bulk_from_ = o.bulk_from_;
  bulk_to_ = o.bulk_to_;
  bulk_span_ = o.bulk_span_;
  last_pos_block_ = o.last_pos_block_;
  last_pos_idx_ = o.last_pos_idx_;
  block_ = o.block_;
  idx_ = o.idx_;
  started_ = o.started_;
  exhausted_ = o.exhausted_;
  node_ = o.node_;
  status_ = std::move(o.status_);
  return *this;
}

bool BlockListCursor::LoadBlock(size_t block) {
  const bool was_verified = list_->BlockVerified(block);
  // Lists with more blocks than the per-query cache can hold would cycle
  // its LRU on every sequential pass — all misses, plus allocation and
  // bookkeeping on each — so they bypass L1. When a cross-query L2 is
  // attached they still read through it (that is where cold mmap traffic
  // amortizes decode + first-touch validation across queries) unless they
  // would cycle the L2 too; only then does the cursor fall back to its
  // private arena.
  SharedBlockCache* shared = cache_ != nullptr ? cache_->shared() : nullptr;
  if (cache_ != nullptr && list_->num_blocks() <= cache_->capacity()) {
    Status s;
    cached_ = cache_->GetOrDecode(*list_, block, counters_, &s);
    if (cached_ == nullptr) {
      // Under first-touch validation a decode failure is lazily detected
      // corruption: record it and fail closed by exhausting.
      if (!s.ok() && status_.ok()) status_ = std::move(s);
      return false;
    }
    entries_ = &cached_->entries;
  } else if (shared != nullptr &&
             list_->num_blocks() <= shared->capacity_blocks()) {
    Status s;
    cached_ = shared->GetOrDecode(*list_, block, counters_, &s);
    if (cached_ == nullptr) {
      if (!s.ok() && status_.ok()) status_ = std::move(s);
      return false;
    }
    entries_ = &cached_->entries;
  } else {
    Status s = list_->DecodeBlockEntries(block, &arena_, counters_);
    if (!s.ok()) {
      if (status_.ok()) status_ = std::move(s);
      return false;
    }
    if (arena_.empty()) return false;
    if (counters_ != nullptr) {
      ++counters_->blocks_decoded;
      ++counters_->blocks_bulk_decoded;
      counters_->entries_decoded += arena_.size();
    }
    entries_ = &arena_;
  }
  if (counters_ != nullptr && !was_verified && list_->BlockVerified(block)) {
    ++counters_->first_touch_validations;
  }
  block_ = block;
  positions_for_ = SIZE_MAX;
  return true;
}

NodeId BlockListCursor::NextEntrySlow() {
  NodeId n = NextEntryUnfiltered();
  while (tombstones_ != nullptr && n != kInvalidNode && tombstones_->Contains(n)) {
    n = NextEntryUnfiltered();
  }
  return n;
}

NodeId BlockListCursor::SeekEntry(NodeId target) {
  // A filtered cursor never rests on a tombstoned entry, so the
  // backward-seek early return inside SeekEntryUnfiltered stays sound.
  NodeId n = SeekEntryUnfiltered(target);
  while (tombstones_ != nullptr && n != kInvalidNode && tombstones_->Contains(n)) {
    n = NextEntryUnfiltered();
  }
  return n;
}

NodeId BlockListCursor::NextEntryUnfiltered() {
  if (exhausted_) return kInvalidNode;
  if (!started_) {
    started_ = true;
    if (list_ == nullptr || list_->num_blocks() == 0 || !LoadBlock(0)) {
      exhausted_ = true;
      node_ = kInvalidNode;
      return kInvalidNode;
    }
    idx_ = 0;
  } else if (idx_ + 1 < entries_->size()) {
    ++idx_;
  } else if (block_ + 1 < list_->num_blocks() && LoadBlock(block_ + 1)) {
    idx_ = 0;
  } else {
    exhausted_ = true;
    node_ = kInvalidNode;
    return kInvalidNode;
  }
  if (counters_ != nullptr) ++counters_->entries_scanned;
  node_ = (*entries_)[idx_].header.node;
  return node_;
}

NodeId BlockListCursor::SeekEntryUnfiltered(NodeId target) {
  if (exhausted_) return kInvalidNode;
  if (started_ && node_ != kInvalidNode && node_ >= target) {
    return node_;  // backward (or in-place) seeks do not move the cursor
  }
  if (list_ == nullptr || list_->num_blocks() == 0) {
    started_ = true;
    exhausted_ = true;
    node_ = kInvalidNode;
    return kInvalidNode;
  }
  // Binary search the skip headers for the first block whose max_node can
  // reach the target. Blocks before the current one need not be considered.
  size_t lo = started_ ? block_ : 0;
  size_t hi = list_->num_blocks();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (counters_ != nullptr) ++counters_->skip_checks;
    if (list_->skip(mid).max_node < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= list_->num_blocks()) {
    started_ = true;
    exhausted_ = true;
    node_ = kInvalidNode;
    return kInvalidNode;
  }
  const bool same_block = started_ && lo == block_;
  if (!same_block) {
    if (!LoadBlock(lo)) {
      started_ = true;
      exhausted_ = true;
      node_ = kInvalidNode;
      return kInvalidNode;
    }
    idx_ = 0;
  } else if (node_ != kInvalidNode) {
    // Resume within the already-decoded block, just past the current entry.
    ++idx_;
  }
  started_ = true;
  // The landing block's max_node >= target, so a match exists in it unless
  // we resumed mid-block past it (impossible: node_ < target guaranteed a
  // later entry in this block or a later block would have been selected).
  while (idx_ < entries_->size() && (*entries_)[idx_].header.node < target) ++idx_;
  if (idx_ >= entries_->size()) {
    exhausted_ = true;
    node_ = kInvalidNode;
    return kInvalidNode;
  }
  if (counters_ != nullptr) ++counters_->entries_scanned;
  node_ = (*entries_)[idx_].header.node;
  return node_;
}

bool BlockListCursor::CurrentDenseBlock(DenseBlockView* view) const {
  if (!started_ || exhausted_ || list_ == nullptr) return false;
  const BlockPostingList::SkipEntry& skip = list_->skip(block_);
  if (skip.encoding != BlockPostingList::kEncodingBitset) return false;
  // The block was decoded — and, under lazy loading, first-touch validated
  // — to position the cursor on it, so re-reading the two framing varints
  // is safe; the defensive checks below only guard against logic drift.
  const std::string_view payload = list_->data();
  const uint8_t* const base =
      reinterpret_cast<const uint8_t*>(payload.data());
  const uint8_t* p = base + skip.byte_offset;
  const uint8_t* const lim = base + payload.size();
  uint32_t bset_base, nwords;
  if ((p = GetVarint32Ptr(p, lim, &bset_base)) == nullptr ||
      (p = GetVarint32Ptr(p, lim, &nwords)) == nullptr) {
    return false;
  }
  if (nwords == 0 || nwords > static_cast<size_t>(lim - p) / 8) return false;
  view->base = bset_base;
  view->max_node = skip.max_node;
  view->words = p;
  view->nwords = nwords;
  return true;
}

std::span<const PositionInfo> BlockListCursor::GetPositionsSlow() {
  assert(started_ && !exhausted_);
  if (positions_for_ != idx_) {
    // Two consecutive entries' positions in one block predict a
    // positions-heavy walk of the rest of it: decode the remaining tail in
    // one contiguous pass (bitset blocks concatenate position bytes
    // exactly so the SIMD kernel never stops at entry boundaries).
    // Selective access — one phrase match per block — never streaks, so it
    // keeps strict per-entry laziness.
    const bool consec = last_pos_block_ == block_ && last_pos_idx_ + 1 == idx_;
    streak_len_ = consec ? streak_len_ + 1 : 1;
    last_pos_block_ = block_;
    last_pos_idx_ = idx_;
    // `continuing` = the walk just crossed the end of the previous bulk
    // range (whose entries were served by the inline fast path, so
    // streak_len_ did not advance across them).
    const bool continuing = bulk_block_ == block_ && idx_ == bulk_to_;
    if ((continuing || streak_len_ >= kBulkStreakTrigger) &&
        idx_ + 1 < entries_->size() &&
        list_->skip(block_).encoding == BlockPostingList::kEncodingBitset) {
      // Geometric span growth: a continuing walk doubles the previous
      // span; a fresh streak starts small.
      const uint32_t span = continuing ? bulk_span_ * 2 : kBulkSpanInitial;
      const size_t to = std::min(entries_->size(), idx_ + span);
      if (list_->DecodeBlockPositionsBulk(block_entries(), idx_, to,
                                          &delta_scratch_, &bulk_positions_,
                                          &bulk_offsets_, counters_)
              .ok()) {
        bulk_block_ = block_;
        bulk_from_ = idx_;
        bulk_to_ = to;
        bulk_span_ = span;
        if (counters_ != nullptr) {
          counters_->positions_decoded += bulk_positions_.size();
        }
        return {bulk_positions_.data(), bulk_offsets_[1]};
      }
      // Bulk refused (structural anomaly): fall through so the per-entry
      // path re-surfaces the exact Corruption its first-touch checks
      // would have reported.
    }
    Status s = list_->DecodePositions((*entries_)[idx_], &positions_, counters_);
    if (!s.ok()) {
      // Structurally inconsistent position bytes (reachable only when a
      // crafted file defeats the checksums): report through status() and
      // hand back an empty PosList — fail closed, never partial garbage.
      positions_.clear();
      if (status_.ok()) status_ = std::move(s);
    }
    positions_for_ = idx_;
    if (counters_ != nullptr) counters_->positions_decoded += positions_.size();
  }
  return {positions_.data(), positions_.size()};
}

}  // namespace fts
