#include "index/segment.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "index/index_builder.h"
#include "index/index_io.h"

namespace fts {

std::shared_ptr<const InvertedIndex> SegmentBuffer::Seal(
    const IndexBuildOptions& options) {
  auto segment = std::make_shared<const InvertedIndex>(
      IndexBuilder::Build(corpus_, options));
  corpus_ = Corpus();
  return segment;
}

Status SaveSegmentAtomic(const InvertedIndex& segment, const std::string& path) {
  const std::string tmp = path + ".tmp";
  FTS_RETURN_IF_ERROR(SaveIndexToFile(segment, tmp));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return Status::IOError("rename " + tmp + " -> " + path + ": " +
                           std::strerror(err));
  }
  return Status::OK();
}

}  // namespace fts
