// Auxiliary (frequent-term, other-term) pair-key posting lists —
// Veretennikov's additional-index technique (arXiv:1812.07640) adapted to
// the block-posting architecture (docs/pair_index.md).
//
// Frequent-term phrase and NEAR/k queries are the position pipeline's
// classic worst case: both driver lists are huge and almost every decoded
// position is discarded by the distance predicate. A PairIndex stores, for
// the top-f most frequent terms, one auxiliary posting list per observed
// (frequent_term, other_term) pair. Each list entry is keyed by node id
// and carries every co-occurrence of the two terms within the configured
// distance window, so a phrase/NEAR operator over such a pair becomes a
// single skip-seekable list read whose length is the *result* size, not
// the driver-list size.
//
// Physically the pair lists are ordinary BlockPostingLists reusing the
// position-triple codec: entry positions[0] packs the two per-node term
// frequencies (needed to reproduce pipeline scores exactly), and each
// later triple is one co-occurrence record (offset of the key's first
// term, zig-zag-encoded signed offset delta to the second term, 0). The
// position codec encodes unsigned wrap-around deltas and never assumes
// monotonicity on decode, so arbitrary record streams round-trip
// losslessly — and the pair lists inherit varint/SIMD/hybrid block decode,
// per-block checksums, mmap loading with first-touch validation, and both
// block-cache levels for free. On disk they live in an optional v6 section
// (docs/index_format.md); a file without the section simply has the
// feature off.
//
// Soundness contract consumed by the planner (src/eval/pair_plan.h): a
// list stores *every* co-occurrence with |offset delta| <= max_distance+1,
// so for a query distance k <= max_distance the pair list is a complete
// substitute for the position pipeline — and an eligible pair whose key is
// absent provably matches nothing.

#ifndef FTS_INDEX_PAIR_INDEX_H_
#define FTS_INDEX_PAIR_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "index/block_posting_list.h"
#include "text/corpus.h"
#include "text/document.h"

namespace fts {

class InvertedIndex;

/// Build-time knobs; part of IndexBuildOptions (index/index_builder.h).
struct PairIndexOptions {
  /// Number of top-df terms to treat as frequent; 0 disables the pair
  /// index entirely (the default — building pair lists costs index size).
  size_t frequent_terms = 0;
  /// Largest NEAR/k distance the pair lists answer; records are stored for
  /// |offset delta| <= max_distance + 1, matching the distance predicate's
  /// `|off1 - off0| <= k + 1` convention, so max_distance = 0 is exactly a
  /// phrase (adjacent-pair) index.
  uint32_t max_distance = 5;
};

/// Canonical key of one pair list: `first` is the side that ranks higher
/// in the frequent-term list (lower rank number = more frequent); `second`
/// is the other term (frequent or not). first != second always.
struct PairTermKey {
  TokenId first = kInvalidToken;
  TokenId second = kInvalidToken;

  friend bool operator==(const PairTermKey&, const PairTermKey&) = default;
};

/// Immutable set of auxiliary pair lists attached to an InvertedIndex.
class PairIndex {
 public:
  static constexpr size_t kNotFrequent = static_cast<size_t>(-1);

  /// Builds the pair lists for `corpus`. `index` supplies the df ranking
  /// (block-list headers) and must already hold the finished token lists.
  /// Returns an empty PairIndex (num_keys() == 0) when opts.frequent_terms
  /// is 0 or nothing co-occurs.
  static PairIndex Build(const Corpus& corpus, const InvertedIndex& index,
                         const PairIndexOptions& opts);

  uint32_t max_distance() const { return max_distance_; }
  size_t num_frequent() const { return frequent_.size(); }
  const std::vector<TokenId>& frequent_terms() const { return frequent_; }
  size_t num_keys() const { return keys_.size(); }
  const PairTermKey& key(size_t i) const { return keys_[i]; }
  const BlockPostingList& list(size_t i) const { return lists_[i]; }

  /// Rank of `token` among the frequent terms (0 = most frequent), or
  /// kNotFrequent. Ranking is (df desc, token text asc) — deterministic
  /// for a given logical corpus, so every rebuild of the same documents
  /// canonicalizes keys identically.
  size_t rank(TokenId token) const {
    auto it = rank_.find(token);
    return it == rank_.end() ? kNotFrequent : it->second;
  }

  struct Lookup {
    /// False when neither side is frequent (or a == b): the pair index
    /// cannot answer this pair at any distance.
    bool eligible = false;
    /// True when the stored key is (b, a) — records describe (second,
    /// first) order relative to the query, so the evaluator mirrors
    /// deltas.
    bool swapped = false;
    /// The pair list, or nullptr. With eligible == true a null list means
    /// the two terms never co-occur within max_distance: provably empty.
    const BlockPostingList* list = nullptr;
  };

  /// Resolves query pair (a, b) to its canonical stored list.
  Lookup Find(TokenId a, TokenId b) const;

  /// Zig-zag coding for the signed offset deltas embedded in records.
  static uint32_t ZigZag(int32_t v) {
    return (static_cast<uint32_t>(v) << 1) ^ static_cast<uint32_t>(v >> 31);
  }
  static int32_t UnZigZag(uint32_t v) {
    return static_cast<int32_t>((v >> 1) ^ (~(v & 1) + 1));
  }

  /// Key under which this pair's df travels in the cross-shard df_by_text
  /// exchange (docs/serving.md). The separator byte cannot appear in
  /// tokenizer output, so pair keys can never collide with real tokens —
  /// and scoring only ever looks up real token texts, so the extra map
  /// entries are inert there.
  static std::string StatsKey(std::string_view first, std::string_view second) {
    std::string out;
    out.reserve(first.size() + second.size() + 1);
    out.append(first);
    out.push_back('\x1f');
    out.append(second);
    return out;
  }

  /// Resident heap footprint (same accounting rules as
  /// InvertedIndex::MemoryUsage).
  size_t MemoryUsage() const;

  /// Streams a full decode of every pair list, checking node-id
  /// monotonicity, node range, record well-formedness (the packed tf
  /// header plus at least one record per entry), and header totals.
  /// `cnodes` bounds the node ids, as in InvertedIndex::ValidateBlocks.
  Status Validate(uint64_t cnodes) const;

 private:
  friend struct IndexIoAccess;  // index_io.cc (de)serializers

  uint32_t max_distance_ = 0;
  std::vector<TokenId> frequent_;               // rank order
  std::unordered_map<TokenId, size_t> rank_;    // token -> rank
  std::vector<PairTermKey> keys_;               // sorted (first, second)
  std::vector<BlockPostingList> lists_;         // parallel to keys_
  std::unordered_map<uint64_t, size_t> slots_;  // packed key -> index

  static uint64_t PackKey(TokenId first, TokenId second) {
    return (static_cast<uint64_t>(first) << 32) | second;
  }

  /// Rebuilds rank_ and slots_ from frequent_/keys_ (loader path).
  void RebuildLookups();
};

}  // namespace fts

#endif  // FTS_INDEX_PAIR_INDEX_H_
