// Cross-query shared cache of bulk-decoded posting blocks (the L2 level
// of the two-level block-cache hierarchy; the per-query DecodedBlockCache
// is L1).
//
// Under concurrent serving, many queries evaluate over one shared,
// immutable InvertedIndex. The hot blocks — stop-word-like token lists,
// the IL_ANY prefix, the first blocks every zig-zag lands in — are
// re-decoded by every query that touches them, and on an mmap-served index
// each such decode may additionally pay first-touch checksum validation.
// A SharedBlockCache amortizes that work across queries: the first query
// to touch a block bulk-decodes (and, lazily loaded, validates) it once
// and publishes the decoded form; every later query on any thread gets it
// for a hash lookup.
//
// Concurrency model: the cache is sharded by key hash, one mutex per
// shard, so concurrent queries contend only when they hash to the same
// shard. Blocks are handed out as shared_ptr<const DecodedBlock>, so an
// eviction never invalidates a reader — a cursor holding the pointer keeps
// the block alive until it moves on. Decodes run *outside* the shard lock
// (two threads racing on the same cold block may both decode it; the
// duplicate work is benign, the loser adopts the winner's entry), so the
// lock is only ever held for map/LRU bookkeeping.
//
// Lifetime contract: keys are (list uid, block index). Uids are
// process-unique and never reused, so one cache may safely outlive any
// number of index generations (live ingestion swaps snapshots under a
// long-lived SearchService cache): entries of a retired segment's lists
// can never be served for new lists — they simply age out of the LRU.
// Entries hold EntryRef offsets (no pointers into payload bytes), so a
// stale entry is dead weight, not a dangling reference; cursors that *use*
// a block always hold the owning list alive through their snapshot.

#ifndef FTS_INDEX_SHARED_BLOCK_CACHE_H_
#define FTS_INDEX_SHARED_BLOCK_CACHE_H_

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "index/decoded_block_cache.h"

namespace fts {

/// Sharded, thread-safe LRU cache of DecodedBlocks shared by every query
/// (and every thread) evaluating over one index.
class SharedBlockCache {
 public:
  struct Options {
    /// Total block budget across all shards (≈ capacity * block_size entry
    /// headers resident; the 4096-block default is ~6 MB of EntryRefs on
    /// the bench corpus).
    size_t capacity_blocks = 4096;
    /// Shard count, rounded up to a power of two. More shards, less
    /// contention; per-shard LRU precision degrades gracefully.
    size_t shards = 16;
  };

  /// Aggregate statistics, readable concurrently with serving traffic.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t resident_blocks = 0;
    /// Decoded bytes resident across all shards — EntryRef storage counted
    /// by vector capacity, the same accounting rule as
    /// InvertedIndex::MemoryUsage. Eviction-driven, so it tracks what the
    /// cache holds *now*, not a high-water mark. Readers holding evicted
    /// blocks via shared_ptr are not counted (their memory is charged to
    /// the query keeping them alive).
    size_t resident_bytes = 0;
    /// Per-shard occupancy, index = shard number. Shard imbalance here
    /// (one shard pinned at capacity while others sit empty) is the
    /// monitoring signal that the key mix is skewed or the shard count is
    /// wrong for the workload.
    struct ShardStats {
      size_t keys = 0;
      size_t bytes = 0;
    };
    std::vector<ShardStats> shards;
  };

  SharedBlockCache() : SharedBlockCache(Options()) {}
  explicit SharedBlockCache(Options options);

  SharedBlockCache(const SharedBlockCache&) = delete;
  SharedBlockCache& operator=(const SharedBlockCache&) = delete;

  /// Returns `block` of `list` decoded, from the owning shard if cached
  /// (charging EvalCounters::shared_cache_hits) or by bulk-decoding outside
  /// the shard lock and publishing it (shared_cache_misses plus the decode
  /// counters). Returns nullptr for an empty or malformed block — a
  /// malformed block (lazily detected corruption) additionally reports its
  /// decode error through `status` when given, exactly like
  /// DecodedBlockCache::GetOrDecode. Safe to call from any thread.
  std::shared_ptr<const DecodedBlock> GetOrDecode(const BlockPostingList& list,
                                                  size_t block,
                                                  EvalCounters* counters,
                                                  Status* status = nullptr);

  /// Point-in-time aggregate across shards. Counters are relaxed atomics:
  /// the snapshot is consistent enough for monitoring, not a linearizable
  /// cut.
  Stats stats() const;

  /// Total blocks currently resident across all shards.
  size_t size() const;

  size_t capacity_blocks() const { return capacity_blocks_; }
  size_t num_shards() const { return shards_.size(); }

  /// Accounting size of one cached block (EntryRef storage by capacity
  /// plus the block struct itself) — the unit the resident-bytes gauges
  /// count in, exposed so monitoring tests can pin the arithmetic.
  static size_t BlockBytes(const DecodedBlock& block);

 private:
  using Key = std::pair<uint64_t, size_t>;  // (list uid, block index)

  /// Splitmix-style 64-bit mix of the list uid and block index (same
  /// shape as DecodedBlockCache's hash). Kept 64-bit so shard selection
  /// can use the top bits even where size_t is 32 bits.
  static uint64_t MixKey(const Key& k) {
    uint64_t h = k.first ^
                 (static_cast<uint64_t>(k.second) * 0x9E3779B97F4A7C15ull);
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    return h;
  }

  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(MixKey(k));
    }
  };

  struct Slot {
    Key key;
    std::shared_ptr<const DecodedBlock> block;
  };

  struct Shard {
    std::mutex mu;
    std::list<Slot> lru;  // front = most recently used
    std::unordered_map<Key, std::list<Slot>::iterator, KeyHash> map;
    /// Decoded bytes of the blocks in `lru`, maintained under `mu` on
    /// insert and evict.
    size_t bytes = 0;
  };

  Shard& ShardFor(const Key& key) {
    // The map hash consumes the low bits; shard selection uses the high
    // ones (of the full 64-bit mix) so the two partitions stay
    // independent.
    return *shards_[(MixKey(key) >> 48) & shard_mask_];
  }

  size_t capacity_blocks_;
  size_t per_shard_capacity_;
  size_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> evictions_{0};
};

}  // namespace fts

#endif  // FTS_INDEX_SHARED_BLOCK_CACHE_H_
