#include "index/index_snapshot.h"

#include <algorithm>
#include <cmath>

#include "index/block_posting_list.h"
#include "index/pair_index.h"

namespace fts {

namespace {

/// Token ids of `index` ordered by token text — the canonical scoring
/// order shared with IndexBuilder's norm loop.
std::vector<TokenId> TokensByText(const InvertedIndex& index) {
  std::vector<TokenId> toks(index.vocabulary_size());
  for (TokenId t = 0; t < toks.size(); ++t) toks[t] = t;
  std::sort(toks.begin(), toks.end(), [&index](TokenId a, TokenId b) {
    return index.token_text(a) < index.token_text(b);
  });
  return toks;
}

/// Pass 2 of the stats computation: per-segment global df projections and
/// global-idf norms, from an already-aggregated global df table. Factored
/// out of ComputeStats because a shard server re-runs exactly this pass
/// when a scatter-gather router pushes the cross-shard global table to it
/// (IndexSnapshot::CreateSharded) — the arithmetic below is the whole
/// bit-identical-scoring contract, so single-process and sharded snapshots
/// must share it verbatim.
Status ComputeSegmentStats(
    const std::vector<SegmentView>& segments, uint64_t live_nodes,
    const std::unordered_map<std::string, uint32_t>* df_by_text,
    std::vector<SegmentScoringStats>* stats) {
  const size_t num_segments = segments.size();
  std::vector<BlockPostingList::EntryRef> entries;
  stats->resize(num_segments);
  for (size_t s = 0; s < num_segments; ++s) {
    const InvertedIndex& idx = *segments[s].index;
    const TombstoneSet* dead = segments[s].tombstones;
    const TokenId vocab = static_cast<TokenId>(idx.vocabulary_size());
    SegmentScoringStats& st = (*stats)[s];
    st.live_nodes = live_nodes;
    st.df_by_text = df_by_text;
    st.global_df.assign(vocab, 0);
    for (TokenId t = 0; t < vocab; ++t) {
      const auto it = df_by_text->find(idx.token_text(t));
      st.global_df[t] = it == df_by_text->end() ? 0 : it->second;
    }

    std::vector<double> sum_sq(idx.num_nodes(), 0.0);
    for (const TokenId t : TokensByText(idx)) {
      const uint32_t df_global = st.global_df[t];
      if (df_global == 0) continue;  // every occurrence tombstoned
      const BlockPostingList* list = idx.block_list(t);
      if (list == nullptr || list->empty()) continue;
      const double df = static_cast<double>(df_global);
      const double idf = std::log(1.0 + static_cast<double>(live_nodes) / df);
      for (size_t b = 0; b < list->num_blocks(); ++b) {
        FTS_RETURN_IF_ERROR(list->DecodeBlockEntries(b, &entries));
        for (const BlockPostingList::EntryRef& e : entries) {
          const NodeId n = e.header.node;
          if (dead != nullptr && dead->Contains(n)) continue;
          const uint32_t uniq = idx.unique_tokens(n);
          const double tf = static_cast<double>(e.header.pos_count) / uniq;
          sum_sq[n] += tf * idf * tf * idf;
        }
      }
    }
    st.norms.assign(idx.num_nodes(), 1.0);
    for (NodeId n = 0; n < idx.num_nodes(); ++n) {
      if (dead != nullptr && dead->Contains(n)) continue;  // never scored
      st.norms[n] = sum_sq[n] > 0 ? std::sqrt(sum_sq[n]) : 1.0;
      // Same product expression TfIdfModel::LeafScore divides by, so the
      // minimum is an exact lower bound on any live denominator.
      const double un =
          std::max<uint32_t>(1, idx.unique_tokens(n)) * st.norms[n];
      st.min_uniq_norm = std::min(st.min_uniq_norm, un);
    }
  }
  return Status::OK();
}

/// Computes the global scoring stats over `segments` (header-only decode;
/// position bytes are never touched). Norm sums replicate IndexBuilder's
/// arithmetic exactly — same expressions, same sorted-token-text addition
/// order — with global live df / live_nodes substituted for the per-segment
/// statistics, so every score over the snapshot is bit-identical to a
/// single-shot build of the surviving documents.
Status ComputeStats(const std::vector<SegmentView>& segments,
                    uint64_t live_nodes,
                    std::unordered_map<std::string, uint32_t>* df_by_text,
                    std::vector<SegmentScoringStats>* stats) {
  const size_t num_segments = segments.size();
  std::vector<BlockPostingList::EntryRef> entries;

  // Pass 1: live df per (segment, local token), accumulated into the
  // global by-text table. Without tombstones the list header already *is*
  // the live df.
  std::vector<std::vector<uint32_t>> live_df(num_segments);
  for (size_t s = 0; s < num_segments; ++s) {
    const InvertedIndex& idx = *segments[s].index;
    const TombstoneSet* dead = segments[s].tombstones;
    const TokenId vocab = static_cast<TokenId>(idx.vocabulary_size());
    live_df[s].assign(vocab, 0);
    for (TokenId t = 0; t < vocab; ++t) {
      const BlockPostingList* list = idx.block_list(t);
      if (list == nullptr || list->empty()) continue;
      if (dead == nullptr) {
        live_df[s][t] = static_cast<uint32_t>(list->num_entries());
        continue;
      }
      uint32_t df = 0;
      for (size_t b = 0; b < list->num_blocks(); ++b) {
        FTS_RETURN_IF_ERROR(list->DecodeBlockEntries(b, &entries));
        for (const BlockPostingList::EntryRef& e : entries) {
          if (!dead->Contains(e.header.node)) ++df;
        }
      }
      live_df[s][t] = df;
    }
    for (TokenId t = 0; t < vocab; ++t) {
      if (live_df[s][t] != 0) (*df_by_text)[idx.token_text(t)] += live_df[s][t];
    }

    // Pair-list dfs ride the same by-text exchange under their
    // collision-proof StatsKey ('\x1f' separator — unreachable by
    // tokenizer output). Scoring never resolves these keys (pass 2 and
    // the models look up real token texts only); the multi-index planner
    // reads them as snapshot-global pair dfs.
    if (const PairIndex* pair = idx.pair_index()) {
      for (size_t k = 0; k < pair->num_keys(); ++k) {
        const BlockPostingList& list = pair->list(k);
        uint32_t df = 0;
        if (dead == nullptr) {
          df = static_cast<uint32_t>(list.num_entries());
        } else {
          for (size_t b = 0; b < list.num_blocks(); ++b) {
            FTS_RETURN_IF_ERROR(list.DecodeBlockEntries(b, &entries));
            for (const BlockPostingList::EntryRef& e : entries) {
              if (!dead->Contains(e.header.node)) ++df;
            }
          }
        }
        if (df == 0) continue;
        const PairTermKey& key = pair->key(k);
        (*df_by_text)[PairIndex::StatsKey(idx.token_text(key.first),
                                          idx.token_text(key.second))] += df;
      }
    }
  }

  // Pass 2: per-segment global df projections and global-idf norms.
  return ComputeSegmentStats(segments, live_nodes, df_by_text, stats);
}

}  // namespace

StatusOr<std::shared_ptr<const IndexSnapshot>> IndexSnapshot::Create(
    std::vector<std::shared_ptr<const InvertedIndex>> segments,
    std::vector<std::shared_ptr<const TombstoneSet>> tombstones,
    uint64_t generation) {
  std::shared_ptr<IndexSnapshot> snap(new IndexSnapshot());
  snap->generation_ = generation;
  snap->owned_ = std::move(segments);
  tombstones.resize(snap->owned_.size());
  // All-empty tombstone sets are "no deletes": cursors and the fast path
  // both key off null.
  for (std::shared_ptr<const TombstoneSet>& t : tombstones) {
    if (t != nullptr && t->empty()) t = nullptr;
  }
  snap->owned_tombstones_ = std::move(tombstones);

  bool any_deletes = false;
  NodeId base = 0;
  for (size_t i = 0; i < snap->owned_.size(); ++i) {
    const InvertedIndex* idx = snap->owned_[i].get();
    if (idx == nullptr) return Status::InvalidArgument("null segment");
    const TombstoneSet* dead = snap->owned_tombstones_[i].get();
    SegmentView view;
    view.index = idx;
    view.base = base;
    view.tombstones = dead;
    snap->segments_.push_back(view);
    base += static_cast<NodeId>(idx->num_nodes());
    snap->live_nodes_ +=
        idx->num_nodes() - (dead != nullptr ? dead->deleted_count() : 0);
    if (dead != nullptr) any_deletes = true;
  }
  snap->total_nodes_ = base;

  if (snap->segments_.size() > 1 || any_deletes) {
    FTS_RETURN_IF_ERROR(ComputeStats(snap->segments_, snap->live_nodes_,
                                     &snap->df_by_text_, &snap->stats_));
    for (size_t i = 0; i < snap->segments_.size(); ++i) {
      snap->segments_[i].scoring = &snap->stats_[i];
    }
  }
  return std::shared_ptr<const IndexSnapshot>(std::move(snap));
}

StatusOr<std::shared_ptr<const IndexSnapshot>> IndexSnapshot::CreateSharded(
    std::shared_ptr<const InvertedIndex> segment, uint64_t global_live_nodes,
    std::unordered_map<std::string, uint32_t> df_by_text,
    uint64_t generation) {
  if (segment == nullptr) return Status::InvalidArgument("null segment");
  std::shared_ptr<IndexSnapshot> snap(new IndexSnapshot());
  snap->generation_ = generation;
  snap->owned_.push_back(std::move(segment));
  snap->owned_tombstones_.resize(1);
  const InvertedIndex* idx = snap->owned_[0].get();
  SegmentView view;
  view.index = idx;
  snap->segments_.push_back(view);
  snap->total_nodes_ = idx->num_nodes();
  snap->live_nodes_ = idx->num_nodes();
  snap->df_by_text_ = std::move(df_by_text);
  // Rerun only pass 2 of the stats computation: the caller already
  // aggregated the cross-shard df table, and this shard's norms under the
  // global idf come out bit-identical to a single-index build of the full
  // corpus because the pass is shared verbatim with Create().
  FTS_RETURN_IF_ERROR(ComputeSegmentStats(snap->segments_, global_live_nodes,
                                          &snap->df_by_text_, &snap->stats_));
  snap->segments_[0].scoring = &snap->stats_[0];
  return std::shared_ptr<const IndexSnapshot>(std::move(snap));
}

std::shared_ptr<const IndexSnapshot> IndexSnapshot::ForIndex(
    const InvertedIndex* index) {
  std::shared_ptr<IndexSnapshot> snap(new IndexSnapshot());
  SegmentView view;
  view.index = index;
  snap->segments_.push_back(view);
  snap->total_nodes_ = index->num_nodes();
  snap->live_nodes_ = index->num_nodes();
  return snap;
}

}  // namespace fts
