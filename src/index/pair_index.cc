#include "index/pair_index.h"

#include <algorithm>
#include <map>

#include "index/inverted_index.h"

namespace fts {

PairIndex PairIndex::Build(const Corpus& corpus, const InvertedIndex& index,
                           const PairIndexOptions& opts) {
  PairIndex out;
  out.max_distance_ = opts.max_distance;
  if (opts.frequent_terms == 0) return out;

  // Frequent-term selection: top-f by (df desc, text asc). The text
  // tie-break makes the ranking — and therefore every canonical key
  // orientation — a function of the logical corpus alone, independent of
  // dictionary interning order.
  std::vector<TokenId> cands;
  for (TokenId t = 0; t < corpus.vocabulary_size(); ++t) {
    if (index.df(t) > 0) cands.push_back(t);
  }
  std::sort(cands.begin(), cands.end(), [&](TokenId a, TokenId b) {
    const uint32_t dfa = index.df(a), dfb = index.df(b);
    if (dfa != dfb) return dfa > dfb;
    return corpus.token_text(a) < corpus.token_text(b);
  });
  if (cands.size() > opts.frequent_terms) cands.resize(opts.frequent_terms);
  out.frequent_ = std::move(cands);
  out.RebuildLookups();

  // One pass over the corpus. Co-occurrences are found by the windowed
  // double loop (offsets are strictly increasing within a document, so the
  // inner loop is bounded by the window's token span); records accumulate
  // per (key, node) and flush to the key's building list in node order,
  // which is exactly the append order BlockPostingList requires. Ordered
  // maps keep both the per-node flush and the final key table sorted by
  // packed key, so keys_ comes out sorted with no extra pass.
  const uint32_t window = opts.max_distance + 1;
  std::map<uint64_t, BlockPostingList> building;
  std::map<uint64_t, std::vector<PositionInfo>> recs;
  std::unordered_map<TokenId, uint32_t> tf;
  std::vector<PositionInfo> entry;
  for (NodeId n = 0; n < corpus.num_nodes(); ++n) {
    const TokenizedDocument& doc = corpus.doc(n);
    recs.clear();
    tf.clear();
    for (const TokenId t : doc.tokens) ++tf[t];
    for (size_t i = 0; i < doc.size(); ++i) {
      const uint32_t off_i = doc.positions[i].offset;
      for (size_t j = i + 1;
           j < doc.size() && doc.positions[j].offset - off_i <= window; ++j) {
        const TokenId a = doc.tokens[i], b = doc.tokens[j];
        if (a == b) continue;
        const size_t ra = out.rank(a), rb = out.rank(b);
        if (ra == kNotFrequent && rb == kNotFrequent) continue;
        const uint32_t off_j = doc.positions[j].offset;
        const int32_t gap = static_cast<int32_t>(off_j - off_i);
        const bool a_first = ra < rb;
        const TokenId first = a_first ? a : b;
        const TokenId second = a_first ? b : a;
        recs[PackKey(first, second)].push_back(
            {a_first ? off_i : off_j,
             ZigZag(a_first ? gap : -gap), 0});
      }
    }
    for (auto& [key, rv] : recs) {
      std::sort(rv.begin(), rv.end(),
                [](const PositionInfo& x, const PositionInfo& y) {
                  if (x.offset != y.offset) return x.offset < y.offset;
                  return UnZigZag(x.sentence) < UnZigZag(y.sentence);
                });
      entry.clear();
      entry.push_back({tf[static_cast<TokenId>(key >> 32)],
                       tf[static_cast<TokenId>(key)], 0});
      entry.insert(entry.end(), rv.begin(), rv.end());
      building[key].Append(n, entry);
    }
  }

  out.keys_.reserve(building.size());
  out.lists_.reserve(building.size());
  for (auto& [key, list] : building) {
    list.Finish();
    out.keys_.push_back(
        {static_cast<TokenId>(key >> 32), static_cast<TokenId>(key)});
    out.lists_.push_back(std::move(list));
  }
  out.RebuildLookups();
  return out;
}

PairIndex::Lookup PairIndex::Find(TokenId a, TokenId b) const {
  Lookup out;
  if (a == b) return out;
  const size_t ra = rank(a), rb = rank(b);
  if (ra == kNotFrequent && rb == kNotFrequent) return out;
  out.eligible = true;
  out.swapped = !(ra < rb);
  const auto it =
      slots_.find(out.swapped ? PackKey(b, a) : PackKey(a, b));
  if (it != slots_.end()) out.list = &lists_[it->second];
  return out;
}

void PairIndex::RebuildLookups() {
  rank_.clear();
  rank_.reserve(frequent_.size());
  for (size_t r = 0; r < frequent_.size(); ++r) rank_.emplace(frequent_[r], r);
  slots_.clear();
  slots_.reserve(keys_.size());
  for (size_t i = 0; i < keys_.size(); ++i) {
    slots_.emplace(PackKey(keys_[i].first, keys_[i].second), i);
  }
}

size_t PairIndex::MemoryUsage() const {
  size_t bytes = sizeof(PairIndex);
  bytes += frequent_.capacity() * sizeof(TokenId);
  bytes += keys_.capacity() * sizeof(PairTermKey);
  bytes += lists_.capacity() * sizeof(BlockPostingList);
  for (const BlockPostingList& l : lists_) bytes += l.resident_bytes();
  bytes += rank_.bucket_count() * sizeof(void*) +
           rank_.size() * (sizeof(std::pair<TokenId, size_t>) + 2 * sizeof(void*));
  bytes += slots_.bucket_count() * sizeof(void*) +
           slots_.size() * (sizeof(std::pair<uint64_t, size_t>) + 2 * sizeof(void*));
  return bytes;
}

Status PairIndex::Validate(uint64_t cnodes) const {
  std::vector<PostingEntry> entries;
  std::vector<PositionInfo> positions;
  for (const BlockPostingList& l : lists_) {
    uint64_t total_entries = 0;
    uint64_t total_positions = 0;
    bool have_prev = false;
    NodeId prev = 0;
    for (size_t b = 0; b < l.num_blocks(); ++b) {
      FTS_RETURN_IF_ERROR(l.DecodeBlock(b, &entries, &positions));
      for (const PostingEntry& e : entries) {
        if (have_prev && e.node <= prev) {
          return Status::Corruption("non-increasing node ids in pair list");
        }
        if (e.node >= cnodes) {
          return Status::Corruption("pair-list node id out of range");
        }
        prev = e.node;
        have_prev = true;
        // Every entry is the packed tf header plus >= 1 record, and every
        // record's delta respects the build window — anything else cannot
        // have come from the builder.
        if (e.pos_count < 2) {
          return Status::Corruption("pair-list entry missing records");
        }
        const PositionInfo& h = positions[e.pos_begin];
        if (h.offset == 0 || h.sentence == 0) {
          return Status::Corruption("pair-list entry has zero term frequency");
        }
        for (uint32_t k = 1; k < e.pos_count; ++k) {
          const int64_t delta =
              UnZigZag(positions[e.pos_begin + k].sentence);
          if (delta == 0 || delta > static_cast<int64_t>(max_distance_) + 1 ||
              delta < -(static_cast<int64_t>(max_distance_) + 1)) {
            return Status::Corruption("pair-list record delta out of window");
          }
        }
      }
      total_entries += entries.size();
      total_positions += positions.size();
    }
    if (total_entries != l.num_entries()) {
      return Status::Corruption("pair-list entry total disagrees with header");
    }
    if (total_positions != l.total_positions()) {
      return Status::Corruption("pair-list position total disagrees with header");
    }
  }
  return Status::OK();
}

}  // namespace fts
