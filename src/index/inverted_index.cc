#include "index/inverted_index.h"

#include <algorithm>
#include <cassert>

#include "index/block_posting_list.h"
#include "index/index_source.h"
#include "index/pair_index.h"
#include "index/tombstone_set.h"

namespace fts {

InvertedIndex::InvertedIndex()
    : block_any_list_(std::make_unique<BlockPostingList>()) {}
InvertedIndex::~InvertedIndex() = default;
InvertedIndex::InvertedIndex(InvertedIndex&&) noexcept = default;
InvertedIndex& InvertedIndex::operator=(InvertedIndex&&) noexcept = default;

void PostingList::Append(NodeId node, std::span<const PositionInfo> positions) {
  assert(entries_.empty() || entries_.back().node < node);
  PostingEntry e;
  e.node = node;
  e.pos_begin = static_cast<uint32_t>(positions_.size());
  e.pos_count = static_cast<uint32_t>(positions.size());
  positions_.insert(positions_.end(), positions.begin(), positions.end());
  entries_.push_back(e);
}

NodeId ListCursor::SeekEntry(NodeId target) {
  // A filtered cursor never rests on a tombstoned entry, so the
  // backward-seek early return inside SeekEntryUnfiltered stays sound.
  NodeId n = SeekEntryUnfiltered(target);
  while (tombstones_ != nullptr && n != kInvalidNode && tombstones_->Contains(n)) {
    n = NextEntryUnfiltered();
  }
  return n;
}

NodeId ListCursor::NextEntry() {
  NodeId n = NextEntryUnfiltered();
  while (tombstones_ != nullptr && n != kInvalidNode && tombstones_->Contains(n)) {
    n = NextEntryUnfiltered();
  }
  return n;
}

NodeId ListCursor::SeekEntryUnfiltered(NodeId target) {
  if (exhausted_) return kInvalidNode;
  if (started_ && node_ != kInvalidNode && node_ >= target) {
    return node_;  // backward (or in-place) seeks do not move the cursor
  }
  if (list_ == nullptr || list_->num_entries() == 0) {
    started_ = true;
    exhausted_ = true;
    node_ = kInvalidNode;
    return kInvalidNode;
  }
  // Binary search over the remaining entries for the first node >= target.
  size_t lo = started_ ? idx_ + 1 : 0;
  size_t hi = list_->num_entries();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (counters_ != nullptr) ++counters_->skip_checks;
    if (list_->entry(mid).node < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  started_ = true;
  if (lo >= list_->num_entries()) {
    exhausted_ = true;
    node_ = kInvalidNode;
    return kInvalidNode;
  }
  idx_ = lo;
  if (counters_ != nullptr) ++counters_->entries_scanned;
  node_ = list_->entry(idx_).node;
  return node_;
}

NodeId ListCursor::NextEntryUnfiltered() {
  if (exhausted_) return kInvalidNode;
  if (started_) {
    ++idx_;
  } else {
    started_ = true;
  }
  if (list_ == nullptr || idx_ >= list_->num_entries()) {
    exhausted_ = true;
    node_ = kInvalidNode;
    return kInvalidNode;
  }
  if (counters_ != nullptr) ++counters_->entries_scanned;
  node_ = list_->entry(idx_).node;
  return node_;
}

std::span<const PositionInfo> ListCursor::GetPositions() {
  assert(started_ && !exhausted_ && list_ != nullptr);
  // Positions are charged to EvalCounters by the consumer as they are
  // actually read (the pipelined engines may skip most of an entry).
  return list_->positions(list_->entry(idx_));
}

std::string IndexStats::ToString() const {
  return "cnodes=" + std::to_string(cnodes) +
         " total_positions=" + std::to_string(total_positions) +
         " pos_per_cnode=" + std::to_string(pos_per_cnode) +
         " entries_per_token=" + std::to_string(entries_per_token) +
         " pos_per_entry=" + std::to_string(pos_per_entry) +
         " avg_pos_per_cnode=" + std::to_string(avg_pos_per_cnode) +
         " avg_entries_per_token=" + std::to_string(avg_entries_per_token) +
         " avg_pos_per_entry=" + std::to_string(avg_pos_per_entry);
}

const BlockPostingList* InvertedIndex::block_list(TokenId token) const {
  return token < block_lists_.size() ? &block_lists_[token] : nullptr;
}

const BlockPostingList* InvertedIndex::block_list_for_text(
    std::string_view token) const {
  TokenId id = LookupToken(token);
  return id == kInvalidToken ? nullptr : block_list(id);
}

const BlockPostingList& InvertedIndex::block_any_list() const {
  return *block_any_list_;
}

uint32_t InvertedIndex::df(TokenId token) const {
  const BlockPostingList* l = block_list(token);
  return l ? static_cast<uint32_t>(l->num_entries()) : 0;
}

IndexStorage InvertedIndex::storage() const {
  if (source_ == nullptr) return IndexStorage::kOwned;
  return source_->is_mapped() ? IndexStorage::kMapped : IndexStorage::kHeapBuffer;
}

size_t InvertedIndex::MappedBytes() const {
  return source_ != nullptr && source_->is_mapped() ? source_->size() : 0;
}

size_t InvertedIndex::MemoryUsage() const {
  size_t bytes = sizeof(InvertedIndex);
  // A heap source buffer is resident in full (the lists view into it); an
  // mmap'd source is page-cache backed and excluded (see MappedBytes()).
  if (source_ != nullptr && !source_->is_mapped()) bytes += source_->size();
  bytes += block_lists_.capacity() * sizeof(BlockPostingList);
  for (const BlockPostingList& l : block_lists_) bytes += l.resident_bytes();
  bytes += sizeof(BlockPostingList) + block_any_list_->resident_bytes();
  bytes += token_texts_.capacity() * sizeof(std::string);
  for (const std::string& t : token_texts_) bytes += t.capacity();
  // Hash-map accounting is approximate: buckets plus one heap node per
  // entry (key string + id + chain pointers).
  bytes += token_ids_.bucket_count() * sizeof(void*);
  for (const auto& [text, id] : token_ids_) {
    bytes += sizeof(std::pair<const std::string, TokenId>) + text.capacity() +
             2 * sizeof(void*);
  }
  bytes += unique_tokens_.capacity() * sizeof(uint32_t);
  bytes += node_norms_.capacity() * sizeof(double);
  if (pair_index_ != nullptr) bytes += pair_index_->MemoryUsage();
  return bytes;
}

Status InvertedIndex::ValidateBlocks() const {
  const uint64_t cnodes = stats_.cnodes;
  const auto validate = [cnodes](const BlockPostingList& block) {
    std::vector<PostingEntry> entries;
    std::vector<PositionInfo> positions;
    uint64_t total_entries = 0;
    uint64_t total_positions = 0;
    bool have_prev = false;
    NodeId prev = 0;
    for (size_t b = 0; b < block.num_blocks(); ++b) {
      FTS_RETURN_IF_ERROR(block.DecodeBlock(b, &entries, &positions));
      for (const PostingEntry& e : entries) {
        if (have_prev && e.node <= prev) {
          return Status::Corruption("non-increasing node ids across blocks");
        }
        // Node ids index the per-node scalar tables (unique_tokens_,
        // node_norms_) during scoring; an out-of-range id must never
        // survive loading.
        if (e.node >= cnodes) {
          return Status::Corruption("posting node id out of range");
        }
        prev = e.node;
        have_prev = true;
      }
      total_entries += entries.size();
      total_positions += positions.size();
    }
    if (total_entries != block.num_entries()) {
      return Status::Corruption("block entry total disagrees with list header");
    }
    if (total_positions != block.total_positions()) {
      return Status::Corruption("block position total disagrees with list header");
    }
    return Status::OK();
  };
  for (const BlockPostingList& l : block_lists_) {
    FTS_RETURN_IF_ERROR(validate(l));
  }
  FTS_RETURN_IF_ERROR(validate(*block_any_list_));
  if (pair_index_ != nullptr) {
    FTS_RETURN_IF_ERROR(pair_index_->Validate(cnodes));
  }
  return Status::OK();
}

void InvertedIndex::RecomputeMinUniqNorm() {
  // The same product every TF-IDF LeafScore divides by — computed with the
  // identical expression so the minimum is an exact lower bound on any
  // denominator, making the derived impact upper bounds sound under IEEE
  // rounding (correctly rounded ops are monotone).
  double min_un = std::numeric_limits<double>::infinity();
  for (NodeId n = 0; n < node_norms_.size(); ++n) {
    const double un = std::max<uint32_t>(1, unique_tokens_[n]) * node_norms_[n];
    min_un = std::min(min_un, un);
  }
  min_uniq_norm_ = min_un;
}

TokenId InvertedIndex::LookupToken(std::string_view token) const {
  auto it = token_ids_.find(std::string(token));
  return it == token_ids_.end() ? kInvalidToken : it->second;
}

}  // namespace fts
