#include "index/inverted_index.h"

#include <cassert>

namespace fts {

void PostingList::Append(NodeId node, std::span<const PositionInfo> positions) {
  assert(entries_.empty() || entries_.back().node < node);
  PostingEntry e;
  e.node = node;
  e.pos_begin = static_cast<uint32_t>(positions_.size());
  e.pos_count = static_cast<uint32_t>(positions.size());
  positions_.insert(positions_.end(), positions.begin(), positions.end());
  entries_.push_back(e);
}

NodeId ListCursor::NextEntry() {
  if (exhausted_) return kInvalidNode;
  if (started_) {
    ++idx_;
  } else {
    started_ = true;
  }
  if (list_ == nullptr || idx_ >= list_->num_entries()) {
    exhausted_ = true;
    node_ = kInvalidNode;
    return kInvalidNode;
  }
  if (counters_ != nullptr) ++counters_->entries_scanned;
  node_ = list_->entry(idx_).node;
  return node_;
}

std::span<const PositionInfo> ListCursor::GetPositions() {
  assert(started_ && !exhausted_ && list_ != nullptr);
  // Positions are charged to EvalCounters by the consumer as they are
  // actually read (the pipelined engines may skip most of an entry).
  return list_->positions(list_->entry(idx_));
}

std::string IndexStats::ToString() const {
  return "cnodes=" + std::to_string(cnodes) +
         " total_positions=" + std::to_string(total_positions) +
         " pos_per_cnode=" + std::to_string(pos_per_cnode) +
         " entries_per_token=" + std::to_string(entries_per_token) +
         " pos_per_entry=" + std::to_string(pos_per_entry) +
         " avg_pos_per_cnode=" + std::to_string(avg_pos_per_cnode) +
         " avg_entries_per_token=" + std::to_string(avg_entries_per_token) +
         " avg_pos_per_entry=" + std::to_string(avg_pos_per_entry);
}

const PostingList* InvertedIndex::list_for_text(std::string_view token) const {
  TokenId id = LookupToken(token);
  return id == kInvalidToken ? nullptr : list(id);
}

TokenId InvertedIndex::LookupToken(std::string_view token) const {
  auto it = token_ids_.find(std::string(token));
  return it == token_ids_.end() ? kInvalidToken : it->second;
}

}  // namespace fts
