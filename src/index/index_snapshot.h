// IndexSnapshot: one refcounted generation of the segment architecture
// (docs/ingestion.md).
//
// A snapshot is an immutable, ordered set of sealed segments (each an
// ordinary InvertedIndex) plus per-segment tombstone bitmaps. Queries
// evaluate per segment over disjoint doc-id sub-spaces — segment i owns
// the global ids [base_i, base_i + num_nodes_i) — and results concatenate
// into one globally ascending answer (src/eval/searcher.h). Writers never
// mutate a published snapshot: ingest seals a new segment (or marks
// tombstones in a copied bitmap) and atomically publishes a *new*
// generation; readers that acquired the old shared_ptr keep evaluating
// against it, and the old generation retires when its last query drains.
//
// Scoring stays bit-identical to a single-shot build of the surviving
// documents: TF-IDF idf and node norms depend on corpus-global document
// frequencies, so Create() precomputes SnapshotScoringStats — global live
// df per token and per-segment node norms recomputed under global idf, in
// the same canonical sorted-token-text summation order IndexBuilder uses —
// and the score models read them instead of the per-segment statistics.
// The single-segment, no-tombstone case (ForIndex, and every pre-segment
// caller) skips the stats entirely and evaluates exactly as before.

#ifndef FTS_INDEX_INDEX_SNAPSHOT_H_
#define FTS_INDEX_INDEX_SNAPSHOT_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "index/inverted_index.h"
#include "index/tombstone_set.h"

namespace fts {

/// Corpus-global scoring inputs for one segment of a snapshot, precomputed
/// at snapshot creation. Null on the single-segment fast path (the score
/// models then read the segment's own statistics, which *are* global).
struct SegmentScoringStats {
  /// Live (non-tombstoned) nodes across the whole snapshot — the scoring
  /// db_size that replaces InvertedIndex::num_nodes().
  uint64_t live_nodes = 0;
  /// Global live document frequency by this segment's local TokenId.
  std::vector<uint32_t> global_df;
  /// Node norms by local NodeId, recomputed with global idf in canonical
  /// sorted-token-text order (bit-identical to what IndexBuilder would
  /// compute for the merged surviving corpus).
  std::vector<double> norms;
  /// Global live df by token text, for query tokens that are
  /// out-of-vocabulary in this segment but live elsewhere (they still
  /// contribute idf to the query norm). Owned by the snapshot.
  const std::unordered_map<std::string, uint32_t>* df_by_text = nullptr;
  /// Minimum over this segment's *live* nodes of max(1, unique_tokens(n))
  /// * norms[n] — the smallest denominator a TF-IDF LeafScore over this
  /// segment can see under the global stats. Block-max top-k divides by it
  /// to bound per-block impact; tombstoned nodes are excluded (their norms
  /// are placeholders and they are never scored), which can only raise the
  /// minimum and tighten — never unsound-en — the bound. +infinity when
  /// the segment has no live node.
  double min_uniq_norm = std::numeric_limits<double>::infinity();
};

/// One segment as seen by the read path.
struct SegmentView {
  const InvertedIndex* index = nullptr;
  /// Global id of this segment's local node 0; bases are disjoint and
  /// strictly increasing in segment order.
  NodeId base = 0;
  /// Delete bitmap over local node ids; null when nothing is deleted.
  const TombstoneSet* tombstones = nullptr;
  /// Global scoring inputs; null on the single-segment fast path.
  const SegmentScoringStats* scoring = nullptr;
};

/// An immutable, refcounted generation: hold it via shared_ptr for the
/// duration of a query and every segment it references stays alive.
class IndexSnapshot {
 public:
  /// Builds a snapshot over `segments` (shared ownership) with optional
  /// per-segment `tombstones` (the vector may be shorter than `segments`;
  /// missing or null entries mean no deletes). Computes the global scoring
  /// stats unless the snapshot degenerates to one segment without deletes.
  /// Fails with Corruption if a lazily validated segment's payload is
  /// malformed (stats computation decodes every entry header once).
  static StatusOr<std::shared_ptr<const IndexSnapshot>> Create(
      std::vector<std::shared_ptr<const InvertedIndex>> segments,
      std::vector<std::shared_ptr<const TombstoneSet>> tombstones = {},
      uint64_t generation = 0);

  /// One shard of a document-partitioned corpus, scored with corpus-global
  /// statistics supplied by a scatter-gather router (docs/serving.md): the
  /// snapshot holds `segment` alone, but its norms and idf are recomputed
  /// under `global_live_nodes` and the cross-shard `df_by_text` table —
  /// the same pass-2 arithmetic Create() runs — so this shard's scores are
  /// bit-identical to the corresponding rows of a single-index build of
  /// the full corpus. total_nodes()/live_nodes() stay local (the shard's
  /// own id space); only the scoring inputs are global.
  static StatusOr<std::shared_ptr<const IndexSnapshot>> CreateSharded(
      std::shared_ptr<const InvertedIndex> segment, uint64_t global_live_nodes,
      std::unordered_map<std::string, uint32_t> df_by_text,
      uint64_t generation = 0);

  /// Borrowed single-segment snapshot over an externally owned index —
  /// the bridge for every pre-snapshot caller (QueryRouter over one
  /// InvertedIndex). `index` must outlive the snapshot. No stats, no
  /// tombstones: evaluation is bit-for-bit the pre-segment read path.
  static std::shared_ptr<const IndexSnapshot> ForIndex(const InvertedIndex* index);

  size_t num_segments() const { return segments_.size(); }
  const SegmentView& segment(size_t i) const { return segments_[i]; }
  const std::vector<SegmentView>& segments() const { return segments_; }

  uint64_t generation() const { return generation_; }
  /// Total id space (live + tombstoned) — the base that a next segment
  /// would get.
  uint64_t total_nodes() const { return total_nodes_; }
  uint64_t live_nodes() const { return live_nodes_; }

 private:
  IndexSnapshot() = default;

  std::vector<SegmentView> segments_;
  std::vector<std::shared_ptr<const InvertedIndex>> owned_;
  std::vector<std::shared_ptr<const TombstoneSet>> owned_tombstones_;
  std::vector<SegmentScoringStats> stats_;  // parallel to segments_ when present
  std::unordered_map<std::string, uint32_t> df_by_text_;
  uint64_t generation_ = 0;
  uint64_t total_nodes_ = 0;
  uint64_t live_nodes_ = 0;
};

/// Anything that can hand out the current generation: an IngestService
/// under live writes, or a static wrapper over one loaded index. snapshot()
/// must be safe to call from any thread and O(1) — a query acquires the
/// generation by copying the shared_ptr and holds it until it drains.
class SnapshotSource {
 public:
  virtual ~SnapshotSource() = default;
  virtual std::shared_ptr<const IndexSnapshot> snapshot() const = 0;
};

/// A SnapshotSource pinned to one immutable snapshot (no generations).
class StaticSnapshotSource : public SnapshotSource {
 public:
  explicit StaticSnapshotSource(std::shared_ptr<const IndexSnapshot> snapshot)
      : snapshot_(std::move(snapshot)) {}
  std::shared_ptr<const IndexSnapshot> snapshot() const override {
    return snapshot_;
  }

 private:
  std::shared_ptr<const IndexSnapshot> snapshot_;
};

}  // namespace fts

#endif  // FTS_INDEX_INDEX_SNAPSHOT_H_
