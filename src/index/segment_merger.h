// Background segment compaction (the merge half of docs/ingestion.md).
//
// MergeSegments rebuilds: it reconstructs every surviving document's token
// stream from the input segments' posting lists, feeds them — in segment
// order, skipping tombstoned nodes — into one merged Corpus, and runs
// IndexBuilder over it. The merged segment is therefore *exactly* the
// index a single-shot build of the surviving documents would produce
// (same lists, same statistics, same norms bit-for-bit), which is what the
// multi-segment differential harness pins. Node ids are renumbered densely
// in the merged segment (Lucene semantics: ids are generation-relative;
// the snapshot's segment bases, not the ids themselves, are stable).

#ifndef FTS_INDEX_SEGMENT_MERGER_H_
#define FTS_INDEX_SEGMENT_MERGER_H_

#include <vector>

#include "common/status.h"
#include "index/index_builder.h"
#include "index/index_snapshot.h"
#include "index/inverted_index.h"

namespace fts {

/// Merges `segments` (with their tombstones) into one segment holding only
/// the live documents, renumbered densely in segment order. Fails with
/// Corruption if a lazily validated input's payload is malformed.
/// `options` rides through to IndexBuilder, so a compaction rebuilds the
/// pair lists over the merged corpus (per-segment pair lists cannot be
/// concatenated — frequent-term ranks shift as dfs merge).
StatusOr<InvertedIndex> MergeSegments(const std::vector<SegmentView>& segments,
                                      const IndexBuildOptions& options = {});

}  // namespace fts

#endif  // FTS_INDEX_SEGMENT_MERGER_H_
