// Builds an InvertedIndex from a Corpus, computing the per-token inverted
// lists, IL_ANY, corpus shape statistics, and the TF-IDF normalization
// inputs (document frequencies enter via list sizes; unique-token counts and
// L2 norms are precomputed here, matching the paper's observation that "all
// of the scoring information in R_t can be precomputed", Section 3.1).
//
// Lists are encoded straight into their block-compressed resident form; the
// raw uncompressed twin exists only as the differential-test oracle
// (testing/raw_posting_oracle.h).

#ifndef FTS_INDEX_INDEX_BUILDER_H_
#define FTS_INDEX_INDEX_BUILDER_H_

#include "index/inverted_index.h"
#include "text/corpus.h"

namespace fts {

/// One-shot index construction.
class IndexBuilder {
 public:
  /// Builds the complete index for `corpus`. Token ids in the index match
  /// the corpus dictionary ids.
  static InvertedIndex Build(const Corpus& corpus);
};

}  // namespace fts

#endif  // FTS_INDEX_INDEX_BUILDER_H_
