// Builds an InvertedIndex from a Corpus, computing the per-token inverted
// lists, IL_ANY, corpus shape statistics, and the TF-IDF normalization
// inputs (document frequencies enter via list sizes; unique-token counts and
// L2 norms are precomputed here, matching the paper's observation that "all
// of the scoring information in R_t can be precomputed", Section 3.1).
//
// Lists are encoded straight into their block-compressed resident form; the
// raw uncompressed twin exists only as the differential-test oracle
// (testing/raw_posting_oracle.h).

#ifndef FTS_INDEX_INDEX_BUILDER_H_
#define FTS_INDEX_INDEX_BUILDER_H_

#include "index/inverted_index.h"
#include "index/pair_index.h"
#include "text/corpus.h"

namespace fts {

/// Build-time configuration. Defaults reproduce the classic index exactly
/// (no auxiliary structures).
struct IndexBuildOptions {
  /// Frequent-term pair-list construction (index/pair_index.h);
  /// pairs.frequent_terms == 0 (the default) builds no pair index.
  PairIndexOptions pairs;
};

/// One-shot index construction.
class IndexBuilder {
 public:
  /// Builds the complete index for `corpus`. Token ids in the index match
  /// the corpus dictionary ids.
  static InvertedIndex Build(const Corpus& corpus);

  /// As above, additionally building whatever IndexBuildOptions asks for
  /// (pair lists never perturb the classic sections: token lists, IL_ANY,
  /// norms, and IndexStats are bit-identical with or without them).
  static InvertedIndex Build(const Corpus& corpus,
                             const IndexBuildOptions& options);
};

}  // namespace fts

#endif  // FTS_INDEX_INDEX_BUILDER_H_
