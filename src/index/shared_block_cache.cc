#include "index/shared_block_cache.h"

#include "index/block_posting_list.h"

namespace fts {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SharedBlockCache::SharedBlockCache(Options options) {
  const size_t shards = RoundUpPow2(options.shards == 0 ? 1 : options.shards);
  capacity_blocks_ =
      options.capacity_blocks < shards ? shards : options.capacity_blocks;
  per_shard_capacity_ = capacity_blocks_ / shards;
  shard_mask_ = shards - 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const DecodedBlock> SharedBlockCache::GetOrDecode(
    const BlockPostingList& list, size_t block, EvalCounters* counters,
    Status* status) {
  const Key key{list.uid(), block};
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (counters != nullptr) ++counters->shared_cache_hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->block;
    }
  }

  // Miss: decode outside the lock so a slow (cold, first-touch validated)
  // decode never serializes the shard. Two threads racing here both decode;
  // the insert below resolves the race in favor of whichever published
  // first.
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (counters != nullptr) ++counters->shared_cache_misses;
  auto decoded = std::make_shared<DecodedBlock>();
  Status s = list.DecodeBlockEntries(block, &decoded->entries, counters);
  if (!s.ok()) {
    if (status != nullptr && status->ok()) *status = std::move(s);
    return nullptr;
  }
  if (decoded->entries.empty()) return nullptr;
  if (counters != nullptr) {
    ++counters->blocks_decoded;
    ++counters->blocks_bulk_decoded;
    counters->entries_decoded += decoded->entries.size();
  }

  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Lost the decode race: adopt the published block (identical contents,
    // the index is immutable) and drop ours.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->block;
  }
  if (shard.map.size() >= per_shard_capacity_ && !shard.lru.empty()) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    shard.bytes -= BlockBytes(*shard.lru.back().block);
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
  }
  shard.bytes += BlockBytes(*decoded);
  shard.lru.push_front(Slot{key, decoded});
  shard.map.emplace(key, shard.lru.begin());
  return decoded;
}

size_t SharedBlockCache::BlockBytes(const DecodedBlock& block) {
  return sizeof(DecodedBlock) +
         block.entries.capacity() * sizeof(BlockPostingList::EntryRef);
}

SharedBlockCache::Stats SharedBlockCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.shards.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    out.shards[i].keys = shards_[i]->map.size();
    out.shards[i].bytes = shards_[i]->bytes;
    out.resident_blocks += out.shards[i].keys;
    out.resident_bytes += out.shards[i].bytes;
  }
  return out;
}

size_t SharedBlockCache::size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->map.size();
  }
  return n;
}

}  // namespace fts
