#include "index/index_builder.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace fts {

InvertedIndex IndexBuilder::Build(const Corpus& corpus) {
  InvertedIndex index;
  const size_t num_nodes = corpus.num_nodes();
  const size_t vocab = corpus.vocabulary_size();

  index.token_texts_.reserve(vocab);
  for (TokenId t = 0; t < vocab; ++t) {
    index.token_texts_.push_back(corpus.token_text(t));
    index.token_ids_.emplace(corpus.token_text(t), t);
  }
  index.lists_.resize(vocab);
  index.unique_tokens_.assign(num_nodes, 0);
  index.node_norms_.assign(num_nodes, 0.0);

  // Per-node occurrence counts, reused across nodes to compute unique-token
  // counts and (after df is known) TF-IDF norms.
  std::vector<std::map<TokenId, std::vector<PositionInfo>>> per_node(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    const TokenizedDocument& doc = corpus.doc(n);
    auto& occ = per_node[n];
    for (size_t i = 0; i < doc.size(); ++i) {
      occ[doc.tokens[i]].push_back(doc.positions[i]);
    }
    index.unique_tokens_[n] = static_cast<uint32_t>(occ.size());
    for (const auto& [tok, positions] : occ) {
      index.lists_[tok].Append(n, positions);
    }
    if (!doc.positions.empty()) {
      index.any_list_.Append(n, doc.positions);
    }
  }

  // TF-IDF norms: ||n||_2 = sqrt(sum_t (tf(n,t) * idf(t))^2) using the
  // paper's formulae tf = occurs/unique_tokens, idf = ln(1 + db_size/df).
  for (NodeId n = 0; n < num_nodes; ++n) {
    const uint32_t uniq = index.unique_tokens_[n];
    if (uniq == 0) {
      index.node_norms_[n] = 1.0;  // empty node: neutral norm, never scored
      continue;
    }
    double sum_sq = 0;
    for (const auto& [tok, positions] : per_node[n]) {
      const double df = static_cast<double>(index.lists_[tok].num_entries());
      const double idf = std::log(1.0 + static_cast<double>(num_nodes) / df);
      const double tf = static_cast<double>(positions.size()) / uniq;
      sum_sq += tf * idf * tf * idf;
    }
    index.node_norms_[n] = sum_sq > 0 ? std::sqrt(sum_sq) : 1.0;
  }

  // Corpus shape statistics (paper Section 5.1.2 parameters).
  IndexStats& s = index.stats_;
  s.cnodes = num_nodes;
  uint64_t total_entries = 0;
  uint64_t nonempty_lists = 0;
  for (const PostingList& l : index.lists_) {
    if (l.empty()) continue;
    ++nonempty_lists;
    total_entries += l.num_entries();
    s.entries_per_token =
        std::max(s.entries_per_token, static_cast<uint32_t>(l.num_entries()));
    for (size_t i = 0; i < l.num_entries(); ++i) {
      s.pos_per_entry = std::max(s.pos_per_entry, l.entry(i).pos_count);
    }
  }
  for (size_t i = 0; i < index.any_list_.num_entries(); ++i) {
    const PostingEntry& e = index.any_list_.entry(i);
    s.total_positions += e.pos_count;
    s.pos_per_cnode = std::max(s.pos_per_cnode, e.pos_count);
  }
  s.avg_pos_per_cnode =
      num_nodes == 0 ? 0 : static_cast<double>(s.total_positions) / num_nodes;
  s.avg_entries_per_token =
      nonempty_lists == 0 ? 0 : static_cast<double>(total_entries) / nonempty_lists;
  s.avg_pos_per_entry =
      total_entries == 0 ? 0 : static_cast<double>(s.total_positions) / total_entries;

  // Compressed, skip-seekable twins of every list (seek-enabled engines and
  // the v2 on-disk format read these).
  index.RebuildBlockLists();
  return index;
}

}  // namespace fts
