#include "index/index_builder.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "index/block_posting_list.h"

namespace fts {

namespace {

/// Per-node occurrence map: token -> positions, ordered by token id so
/// appends hit each inverted list in node order.
using NodeOccurrences = std::map<TokenId, std::vector<PositionInfo>>;

NodeOccurrences CollectOccurrences(const TokenizedDocument& doc) {
  NodeOccurrences occ;
  for (size_t i = 0; i < doc.size(); ++i) {
    occ[doc.tokens[i]].push_back(doc.positions[i]);
  }
  return occ;
}

}  // namespace

InvertedIndex IndexBuilder::Build(const Corpus& corpus) {
  return Build(corpus, IndexBuildOptions{});
}

InvertedIndex IndexBuilder::Build(const Corpus& corpus,
                                  const IndexBuildOptions& options) {
  InvertedIndex index;
  const size_t num_nodes = corpus.num_nodes();
  const size_t vocab = corpus.vocabulary_size();

  index.token_texts_.reserve(vocab);
  for (TokenId t = 0; t < vocab; ++t) {
    index.token_texts_.push_back(corpus.token_text(t));
    index.token_ids_.emplace(corpus.token_text(t), t);
  }
  index.block_lists_.resize(vocab);
  index.unique_tokens_.assign(num_nodes, 0);
  index.node_norms_.assign(num_nodes, 0.0);

  // Encode each list directly into its block-compressed resident form,
  // tracking the per-entry shape statistics as entries stream by (the
  // compressed form only exposes them again via a decode). Per-node
  // occurrence maps are kept so TF-IDF norms can be computed once document
  // frequencies are known.
  IndexStats& s = index.stats_;
  std::vector<NodeOccurrences> per_node(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    const TokenizedDocument& doc = corpus.doc(n);
    per_node[n] = CollectOccurrences(doc);
    index.unique_tokens_[n] = static_cast<uint32_t>(per_node[n].size());
    for (const auto& [tok, positions] : per_node[n]) {
      index.block_lists_[tok].Append(n, positions);
      s.pos_per_entry =
          std::max(s.pos_per_entry, static_cast<uint32_t>(positions.size()));
    }
    if (!doc.positions.empty()) {
      index.block_any_list_->Append(n, doc.positions);
      s.total_positions += doc.positions.size();
      s.pos_per_cnode = std::max(s.pos_per_cnode,
                                 static_cast<uint32_t>(doc.positions.size()));
    }
  }
  for (BlockPostingList& l : index.block_lists_) l.Finish();
  index.block_any_list_->Finish();

  // TF-IDF norms: ||n||_2 = sqrt(sum_t (tf(n,t) * idf(t))^2) using the
  // paper's formulae tf = occurs/unique_tokens, idf = ln(1 + db_size/df).
  // df comes from the block-list headers (no payload decode). The sum runs
  // in *sorted token text* order — a canonical order independent of
  // dictionary interning — so the floating-point addition sequence is
  // identical wherever the same logical corpus is indexed. Segment-level
  // snapshot stats (index/index_snapshot.h) recompute norms with global
  // document frequencies in the same order, which is what makes
  // multi-segment scores bit-identical to a single-shot build.
  std::vector<TokenId> sorted_toks;
  for (NodeId n = 0; n < num_nodes; ++n) {
    const uint32_t uniq = index.unique_tokens_[n];
    if (uniq == 0) {
      index.node_norms_[n] = 1.0;  // empty node: neutral norm, never scored
      continue;
    }
    sorted_toks.clear();
    for (const auto& [tok, positions] : per_node[n]) sorted_toks.push_back(tok);
    std::sort(sorted_toks.begin(), sorted_toks.end(),
              [&corpus](TokenId a, TokenId b) {
                return corpus.token_text(a) < corpus.token_text(b);
              });
    double sum_sq = 0;
    for (const TokenId tok : sorted_toks) {
      const std::vector<PositionInfo>& positions = per_node[n][tok];
      const double df = static_cast<double>(index.block_lists_[tok].num_entries());
      const double idf = std::log(1.0 + static_cast<double>(num_nodes) / df);
      const double tf = static_cast<double>(positions.size()) / uniq;
      sum_sq += tf * idf * tf * idf;
    }
    index.node_norms_[n] = sum_sq > 0 ? std::sqrt(sum_sq) : 1.0;
  }
  index.RecomputeMinUniqNorm();

  // Remaining corpus shape statistics (paper Section 5.1.2 parameters).
  s.cnodes = num_nodes;
  uint64_t total_entries = 0;
  uint64_t nonempty_lists = 0;
  for (const BlockPostingList& l : index.block_lists_) {
    if (l.empty()) continue;
    ++nonempty_lists;
    total_entries += l.num_entries();
    s.entries_per_token =
        std::max(s.entries_per_token, static_cast<uint32_t>(l.num_entries()));
  }
  s.avg_pos_per_cnode =
      num_nodes == 0 ? 0 : static_cast<double>(s.total_positions) / num_nodes;
  s.avg_entries_per_token =
      nonempty_lists == 0 ? 0 : static_cast<double>(total_entries) / nonempty_lists;
  s.avg_pos_per_entry =
      total_entries == 0 ? 0 : static_cast<double>(s.total_positions) / total_entries;

  // Auxiliary pair lists last: their frequent-term ranking reads the
  // finished token-list dfs, and nothing above depends on them.
  if (options.pairs.frequent_terms > 0) {
    index.pair_index_ = std::make_unique<PairIndex>(
        PairIndex::Build(corpus, index, options.pairs));
    if (index.pair_index_->num_keys() == 0) index.pair_index_.reset();
  }

  return index;
}

}  // namespace fts
