#include "index/segment_merger.h"

#include <algorithm>
#include <string>
#include <utility>

#include "index/block_posting_list.h"
#include "index/index_builder.h"
#include "text/corpus.h"

namespace fts {

namespace {

/// One reconstructed token occurrence within a node.
struct Occurrence {
  PositionInfo position;
  TokenId token = kInvalidToken;  // id in the *source* segment's dictionary
};

}  // namespace

StatusOr<InvertedIndex> MergeSegments(const std::vector<SegmentView>& segments,
                                      const IndexBuildOptions& options) {
  Corpus merged;
  std::vector<PostingEntry> entries;
  std::vector<PositionInfo> positions;
  for (const SegmentView& seg : segments) {
    const InvertedIndex& idx = *seg.index;
    const TombstoneSet* dead = seg.tombstones;

    // Invert the inversion: gather every (position, token) pair per node
    // from the token lists, then re-emit each live node's stream in
    // position order.
    std::vector<std::vector<Occurrence>> occ(idx.num_nodes());
    const TokenId vocab = static_cast<TokenId>(idx.vocabulary_size());
    for (TokenId t = 0; t < vocab; ++t) {
      const BlockPostingList* list = idx.block_list(t);
      if (list == nullptr || list->empty()) continue;
      for (size_t b = 0; b < list->num_blocks(); ++b) {
        FTS_RETURN_IF_ERROR(list->DecodeBlock(b, &entries, &positions));
        for (const PostingEntry& e : entries) {
          if (dead != nullptr && dead->Contains(e.node)) continue;
          for (uint32_t p = 0; p < e.pos_count; ++p) {
            occ[e.node].push_back({positions[e.pos_begin + p], t});
          }
        }
      }
    }

    std::vector<std::string> tokens;
    std::vector<PositionInfo> node_positions;
    for (NodeId n = 0; n < idx.num_nodes(); ++n) {
      if (dead != nullptr && dead->Contains(n)) continue;
      std::vector<Occurrence>& node_occ = occ[n];
      std::sort(node_occ.begin(), node_occ.end(),
                [](const Occurrence& a, const Occurrence& b) {
                  return a.position.offset < b.position.offset;
                });
      tokens.clear();
      node_positions.clear();
      tokens.reserve(node_occ.size());
      node_positions.reserve(node_occ.size());
      for (const Occurrence& o : node_occ) {
        tokens.push_back(idx.token_text(o.token));
        node_positions.push_back(o.position);
      }
      FTS_RETURN_IF_ERROR(
          merged.AddTokensWithPositions(tokens, node_positions).status());
    }
  }
  return IndexBuilder::Build(merged, options);
}

}  // namespace fts
