#include "index/index_io.h"

#include <bit>
#include <cstring>
#include <fstream>

#include "common/varint.h"
#include "index/block_posting_list.h"

namespace fts {

namespace {

constexpr char kMagicV1[8] = {'F', 'T', 'S', 'I', 'D', 'X', '1', '\0'};
constexpr char kMagicV2[8] = {'F', 'T', 'S', 'I', 'D', 'X', '2', '\0'};
constexpr size_t kMagicSize = sizeof(kMagicV1);

uint64_t Fnv1a(const std::string& data, size_t begin, size_t end) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = begin; i < end; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void PutFixed64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

Status GetFixed64(const std::string& data, size_t* offset, uint64_t* v) {
  if (*offset + 8 > data.size()) {
    return Status::Corruption("truncated fixed64 at offset " + std::to_string(*offset));
  }
  std::memcpy(v, data.data() + *offset, 8);
  *offset += 8;
  return Status::OK();
}

void PutDouble(std::string* out, double d) {
  PutFixed64(out, std::bit_cast<uint64_t>(d));
}

Status GetDouble(const std::string& data, size_t* offset, double* d) {
  uint64_t bits;
  FTS_RETURN_IF_ERROR(GetFixed64(data, offset, &bits));
  *d = std::bit_cast<double>(bits);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// v1 posting lists: flat delta-coded entry stream.
// ---------------------------------------------------------------------------

void PutPostingList(std::string* out, const PostingList& list) {
  PutVarint64(out, list.num_entries());
  NodeId prev_node = 0;
  for (size_t i = 0; i < list.num_entries(); ++i) {
    const PostingEntry& e = list.entry(i);
    PutVarint32(out, e.node - prev_node);  // first entry: absolute id
    prev_node = e.node;
    auto positions = list.positions(e);
    PutVarint32(out, e.pos_count);
    uint32_t prev_off = 0, prev_sent = 0, prev_para = 0;
    for (const PositionInfo& p : positions) {
      PutVarint32(out, p.offset - prev_off);
      PutVarint32(out, p.sentence - prev_sent);
      PutVarint32(out, p.paragraph - prev_para);
      prev_off = p.offset;
      prev_sent = p.sentence;
      prev_para = p.paragraph;
    }
  }
}

Status GetPostingList(const std::string& data, size_t* offset, PostingList* list) {
  uint64_t num_entries;
  FTS_RETURN_IF_ERROR(GetVarint64(data, offset, &num_entries));
  NodeId prev_node = 0;
  std::vector<PositionInfo> positions;
  for (uint64_t i = 0; i < num_entries; ++i) {
    uint32_t node_delta, count;
    FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &node_delta));
    NodeId node = (i == 0) ? node_delta : prev_node + node_delta;
    if (i > 0 && (node_delta == 0 || node < prev_node)) {
      return Status::Corruption("non-increasing node ids in posting list");
    }
    prev_node = node;
    FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &count));
    // Each position takes at least 3 bytes; bound before reserving.
    if (count > (data.size() - *offset) / 3) {
      return Status::Corruption("position count larger than remaining input");
    }
    positions.clear();
    positions.reserve(count);
    uint32_t off = 0, sent = 0, para = 0;
    for (uint32_t j = 0; j < count; ++j) {
      uint32_t d_off, d_sent, d_para;
      FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &d_off));
      FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &d_sent));
      FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &d_para));
      off += d_off;
      sent += d_sent;
      para += d_para;
      positions.push_back(PositionInfo{off, sent, para});
    }
    list->Append(node, positions);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// v2 posting lists: block-compressed payload + skip table, dumped verbatim
// from / adopted verbatim into BlockPostingList.
// ---------------------------------------------------------------------------

void PutBlockPostingList(std::string* out, const BlockPostingList& list) {
  PutVarint64(out, list.num_entries());
  PutVarint64(out, list.total_positions());
  PutVarint32(out, list.block_size());
  PutVarint64(out, list.num_blocks());
  NodeId prev_max = 0;
  uint32_t prev_off = 0;
  for (const BlockPostingList::SkipEntry& s : list.skips()) {
    PutVarint32(out, s.max_node - prev_max);
    PutVarint32(out, s.byte_offset - prev_off);
    PutVarint32(out, s.entry_count);
    prev_max = s.max_node;
    prev_off = s.byte_offset;
  }
  PutVarint64(out, list.data().size());
  out->append(list.data());
}

Status GetBlockPostingList(const std::string& data, size_t* offset,
                           BlockPostingList* list) {
  uint64_t num_entries, total_positions, num_blocks, data_size;
  uint32_t block_size;
  FTS_RETURN_IF_ERROR(GetVarint64(data, offset, &num_entries));
  FTS_RETURN_IF_ERROR(GetVarint64(data, offset, &total_positions));
  FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &block_size));
  FTS_RETURN_IF_ERROR(GetVarint64(data, offset, &num_blocks));
  if (block_size == 0 && num_blocks > 0) {
    return Status::Corruption("zero block size in nonempty block list");
  }
  // Each skip entry takes at least 3 bytes; bound the count by the remaining
  // input before reserving, so a crafted header cannot force a huge alloc.
  if (num_blocks > (data.size() - *offset) / 3) {
    return Status::Corruption("skip table larger than remaining input");
  }
  std::vector<BlockPostingList::SkipEntry> skips;
  skips.reserve(num_blocks);
  NodeId prev_max = 0;
  uint32_t prev_off = 0;
  uint64_t skipped_entries = 0;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    uint32_t d_max, d_off, count;
    FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &d_max));
    FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &d_off));
    FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &count));
    BlockPostingList::SkipEntry s;
    s.max_node = prev_max + d_max;
    s.byte_offset = prev_off + d_off;
    s.entry_count = count;
    if (b > 0 && (d_max == 0 || d_off == 0)) {
      return Status::Corruption("non-increasing skip table");
    }
    if (count == 0 || count > block_size) {
      return Status::Corruption("bad block entry count");
    }
    prev_max = s.max_node;
    prev_off = s.byte_offset;
    skipped_entries += count;
    skips.push_back(s);
  }
  if (skipped_entries != num_entries) {
    return Status::Corruption("skip table entry counts disagree with header");
  }
  FTS_RETURN_IF_ERROR(GetVarint64(data, offset, &data_size));
  if (data_size > data.size() - *offset) {  // subtract, don't add: no overflow
    return Status::Corruption("truncated block payload");
  }
  if (num_blocks > 0 && skips.back().byte_offset >= data_size) {
    return Status::Corruption("skip table points past block payload");
  }
  *list = BlockPostingList::FromParts(
      block_size == 0 ? BlockPostingList::kDefaultBlockSize : block_size,
      num_entries, total_positions, std::move(skips),
      data.substr(*offset, data_size));
  *offset += data_size;
  return Status::OK();
}

void PutCommonSections(const InvertedIndex& index, std::string* out) {
  // Statistics.
  const IndexStats& s = index.stats();
  PutVarint64(out, s.cnodes);
  PutVarint64(out, s.total_positions);
  PutVarint32(out, s.pos_per_cnode);
  PutVarint32(out, s.entries_per_token);
  PutVarint32(out, s.pos_per_entry);
  PutDouble(out, s.avg_pos_per_cnode);
  PutDouble(out, s.avg_entries_per_token);
  PutDouble(out, s.avg_pos_per_entry);

  // Per-node scalars.
  for (NodeId n = 0; n < s.cnodes; ++n) {
    PutVarint32(out, index.unique_tokens(n));
    PutDouble(out, index.node_norm(n));
  }

  // Dictionary.
  PutVarint64(out, index.vocabulary_size());
  for (TokenId t = 0; t < index.vocabulary_size(); ++t) {
    const std::string& text = index.token_text(t);
    PutVarint64(out, text.size());
    out->append(text);
  }
}

}  // namespace

void SaveIndexToString(const InvertedIndex& index, std::string* out,
                       IndexFormat format) {
  out->clear();
  out->append(format == IndexFormat::kV1 ? kMagicV1 : kMagicV2, kMagicSize);
  PutCommonSections(index, out);

  if (format == IndexFormat::kV1) {
    // The flat v1 stream is produced from a per-list transient decode; the
    // raw form is never resident in the index.
    for (TokenId t = 0; t < index.vocabulary_size(); ++t) {
      PutPostingList(out, index.block_list(t)->Materialize());
    }
    PutPostingList(out, index.block_any_list().Materialize());
  } else {
    for (TokenId t = 0; t < index.vocabulary_size(); ++t) {
      PutBlockPostingList(out, *index.block_list(t));
    }
    PutBlockPostingList(out, index.block_any_list());
  }

  PutFixed64(out, Fnv1a(*out, kMagicSize, out->size()));
}

Status LoadIndexFromString(const std::string& data, InvertedIndex* out) {
  if (data.size() < kMagicSize + 8) {
    return Status::Corruption("bad index magic");
  }
  const bool is_v1 = std::memcmp(data.data(), kMagicV1, kMagicSize) == 0;
  const bool is_v2 = std::memcmp(data.data(), kMagicV2, kMagicSize) == 0;
  if (!is_v1 && !is_v2) {
    return Status::Corruption("bad index magic");
  }
  const size_t body_end = data.size() - 8;
  {
    size_t coff = body_end;
    uint64_t stored;
    FTS_RETURN_IF_ERROR(GetFixed64(data, &coff, &stored));
    if (stored != Fnv1a(data, kMagicSize, body_end)) {
      return Status::Corruption("index checksum mismatch");
    }
  }

  InvertedIndex index;
  size_t offset = kMagicSize;
  IndexStats& s = index.stats_;
  FTS_RETURN_IF_ERROR(GetVarint64(data, &offset, &s.cnodes));
  FTS_RETURN_IF_ERROR(GetVarint64(data, &offset, &s.total_positions));
  FTS_RETURN_IF_ERROR(GetVarint32(data, &offset, &s.pos_per_cnode));
  FTS_RETURN_IF_ERROR(GetVarint32(data, &offset, &s.entries_per_token));
  FTS_RETURN_IF_ERROR(GetVarint32(data, &offset, &s.pos_per_entry));
  FTS_RETURN_IF_ERROR(GetDouble(data, &offset, &s.avg_pos_per_cnode));
  FTS_RETURN_IF_ERROR(GetDouble(data, &offset, &s.avg_entries_per_token));
  FTS_RETURN_IF_ERROR(GetDouble(data, &offset, &s.avg_pos_per_entry));

  // Bound every count read from the file by the bytes that could encode it
  // before sizing containers: the checksum is recomputable by an attacker,
  // so a crafted header must fail with Corruption, not a giant allocation.
  if (s.cnodes > (body_end - offset) / 9) {  // >= 1 varint + 8-byte double each
    return Status::Corruption("node count larger than remaining input");
  }
  index.unique_tokens_.resize(s.cnodes);
  index.node_norms_.resize(s.cnodes);
  for (uint64_t n = 0; n < s.cnodes; ++n) {
    FTS_RETURN_IF_ERROR(GetVarint32(data, &offset, &index.unique_tokens_[n]));
    FTS_RETURN_IF_ERROR(GetDouble(data, &offset, &index.node_norms_[n]));
  }

  uint64_t vocab;
  FTS_RETURN_IF_ERROR(GetVarint64(data, &offset, &vocab));
  if (vocab > body_end - offset) {  // >= 1 length byte per token
    return Status::Corruption("vocabulary larger than remaining input");
  }
  index.token_texts_.reserve(vocab);
  for (uint64_t t = 0; t < vocab; ++t) {
    uint64_t len;
    FTS_RETURN_IF_ERROR(GetVarint64(data, &offset, &len));
    if (len > body_end - offset) {  // subtract, don't add: no overflow
      return Status::Corruption("truncated dictionary string");
    }
    index.token_texts_.emplace_back(data.substr(offset, len));
    index.token_ids_.emplace(index.token_texts_.back(), static_cast<TokenId>(t));
    offset += len;
  }

  if (is_v1) {
    // Decode each flat stream into a raw transient and re-encode it into
    // the block-resident form, one list at a time (peak extra memory is a
    // single decoded list, not a mirror of the index).
    index.block_lists_.resize(vocab);
    for (uint64_t t = 0; t < vocab; ++t) {
      PostingList raw;
      FTS_RETURN_IF_ERROR(GetPostingList(data, &offset, &raw));
      index.block_lists_[t] = BlockPostingList::FromPostingList(raw);
    }
    PostingList any;
    FTS_RETURN_IF_ERROR(GetPostingList(data, &offset, &any));
    *index.block_any_list_ = BlockPostingList::FromPostingList(any);
    // Same guarantees as the v2 path: in particular, node ids must stay
    // below cnodes so per-node scalar lookups can never go out of range.
    FTS_RETURN_IF_ERROR(index.ValidateBlocks());
  } else {
    index.block_lists_.resize(vocab);
    for (uint64_t t = 0; t < vocab; ++t) {
      FTS_RETURN_IF_ERROR(GetBlockPostingList(data, &offset, &index.block_lists_[t]));
    }
    FTS_RETURN_IF_ERROR(GetBlockPostingList(data, &offset, index.block_any_list_.get()));
    // Adopted payloads are fully validated up front (streaming, transient)
    // so query-time cursors never touch malformed bytes.
    FTS_RETURN_IF_ERROR(index.ValidateBlocks());
  }

  if (offset != body_end) {
    return Status::Corruption("trailing bytes in index payload");
  }
  *out = std::move(index);
  return Status::OK();
}

Status SaveIndexToFile(const InvertedIndex& index, const std::string& path,
                       IndexFormat format) {
  std::string data;
  SaveIndexToString(index, &data, format);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::IOError("cannot open for write: " + path);
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!f) return Status::IOError("short write: " + path);
  return Status::OK();
}

Status LoadIndexFromFile(const std::string& path, InvertedIndex* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open for read: " + path);
  std::string data((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  return LoadIndexFromString(data, out);
}

}  // namespace fts
