#include "index/index_io.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "common/fnv.h"
#include "common/varint.h"
#include "index/block_posting_list.h"
#include "index/index_source.h"
#include "index/pair_index.h"

namespace fts {

namespace {

constexpr char kMagicV1[8] = {'F', 'T', 'S', 'I', 'D', 'X', '1', '\0'};
constexpr char kMagicV2[8] = {'F', 'T', 'S', 'I', 'D', 'X', '2', '\0'};
constexpr char kMagicV3[8] = {'F', 'T', 'S', 'I', 'D', 'X', '3', '\0'};
constexpr char kMagicV4[8] = {'F', 'T', 'S', 'I', 'D', 'X', '4', '\0'};
constexpr char kMagicV5[8] = {'F', 'T', 'S', 'I', 'D', 'X', '5', '\0'};
constexpr char kMagicV6[8] = {'F', 'T', 'S', 'I', 'D', 'X', '6', '\0'};
constexpr size_t kMagicSize = sizeof(kMagicV1);
constexpr size_t kTrailerSize = 8;  // fixed64 checksum
/// The smallest byte count any version can occupy: magic + trailer. Inputs
/// below this are rejected before any section parsing runs.
constexpr size_t kMinFileSize = kMagicSize + kTrailerSize;

void PutFixed64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

Status GetFixed64(std::string_view data, size_t* offset, uint64_t* v) {
  if (*offset + 8 > data.size()) {
    return Status::Corruption("truncated fixed64 at offset " + std::to_string(*offset));
  }
  std::memcpy(v, data.data() + *offset, 8);
  *offset += 8;
  return Status::OK();
}

void PutDouble(std::string* out, double d) {
  PutFixed64(out, std::bit_cast<uint64_t>(d));
}

Status GetDouble(std::string_view data, size_t* offset, double* d) {
  uint64_t bits;
  FTS_RETURN_IF_ERROR(GetFixed64(data, offset, &bits));
  *d = std::bit_cast<double>(bits);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// v1 posting lists: flat delta-coded entry stream.
// ---------------------------------------------------------------------------

void PutPostingList(std::string* out, const PostingList& list) {
  PutVarint64(out, list.num_entries());
  NodeId prev_node = 0;
  for (size_t i = 0; i < list.num_entries(); ++i) {
    const PostingEntry& e = list.entry(i);
    PutVarint32(out, e.node - prev_node);  // first entry: absolute id
    prev_node = e.node;
    auto positions = list.positions(e);
    PutVarint32(out, e.pos_count);
    uint32_t prev_off = 0, prev_sent = 0, prev_para = 0;
    for (const PositionInfo& p : positions) {
      PutVarint32(out, p.offset - prev_off);
      PutVarint32(out, p.sentence - prev_sent);
      PutVarint32(out, p.paragraph - prev_para);
      prev_off = p.offset;
      prev_sent = p.sentence;
      prev_para = p.paragraph;
    }
  }
}

Status GetPostingList(std::string_view data, size_t* offset, PostingList* list) {
  uint64_t num_entries;
  FTS_RETURN_IF_ERROR(GetVarint64(data, offset, &num_entries));
  NodeId prev_node = 0;
  std::vector<PositionInfo> positions;
  for (uint64_t i = 0; i < num_entries; ++i) {
    uint32_t node_delta, count;
    FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &node_delta));
    NodeId node = (i == 0) ? node_delta : prev_node + node_delta;
    if (i > 0 && (node_delta == 0 || node < prev_node)) {
      return Status::Corruption("non-increasing node ids in posting list");
    }
    prev_node = node;
    FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &count));
    // Each position takes at least 3 bytes; bound before reserving.
    if (count > (data.size() - *offset) / 3) {
      return Status::Corruption("position count larger than remaining input");
    }
    positions.clear();
    positions.reserve(count);
    uint32_t off = 0, sent = 0, para = 0;
    for (uint32_t j = 0; j < count; ++j) {
      uint32_t d_off, d_sent, d_para;
      FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &d_off));
      FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &d_sent));
      FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &d_para));
      off += d_off;
      sent += d_sent;
      para += d_para;
      positions.push_back(PositionInfo{off, sent, para});
    }
    list->Append(node, positions);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// v2..v5 posting lists: block-compressed payload + skip table, dumped
// verbatim from / adopted verbatim into BlockPostingList. v3 extends each
// skip entry with the block's FNV-1a32 payload checksum and records where
// payload bytes sit (the trailer checksum hops over them); v4 additionally
// appends the block's max_tf (largest per-entry position count), the
// block-max statistic top-k evaluation turns into impact upper bounds; v5
// appends the block's encoding tag (varint-delta vs fixed-width bitset).
// ---------------------------------------------------------------------------

/// Byte range of one list's payload within the serialized output.
struct PayloadRange {
  size_t begin = 0;
  size_t end = 0;
};

void PutBlockPostingList(std::string* out, const BlockPostingList& list,
                         bool with_checksums, bool with_block_max,
                         bool with_encoding,
                         std::vector<PayloadRange>* payload_ranges) {
  PutVarint64(out, list.num_entries());
  PutVarint64(out, list.total_positions());
  PutVarint32(out, list.block_size());
  PutVarint64(out, list.num_blocks());
  const std::string_view payload = list.data();
  NodeId prev_max = 0;
  uint32_t prev_off = 0;
  for (size_t b = 0; b < list.num_blocks(); ++b) {
    const BlockPostingList::SkipEntry& s = list.skip(b);
    PutVarint32(out, s.max_node - prev_max);
    PutVarint32(out, s.byte_offset - prev_off);
    PutVarint32(out, s.entry_count);
    if (with_checksums) {
      const size_t end = b + 1 < list.num_blocks() ? list.skip(b + 1).byte_offset
                                                   : payload.size();
      PutVarint32(out, Fnv1a32(payload.substr(s.byte_offset, end - s.byte_offset)));
    }
    if (with_block_max) PutVarint32(out, s.max_tf);
    // The encoding tag lives in the directory, so the v5 trailer hash
    // covers it: a flipped tag is Corruption at load, never a block parsed
    // under the wrong layout.
    if (with_encoding) PutVarint32(out, s.encoding);
    prev_max = s.max_node;
    prev_off = s.byte_offset;
  }
  PutVarint64(out, payload.size());
  if (payload_ranges != nullptr) {
    payload_ranges->push_back({out->size(), out->size() + payload.size()});
  }
  out->append(payload);
}

/// Parsed directory of one serialized block list; the payload is left in
/// place (only its range is recorded).
struct BlockListDirectory {
  uint64_t num_entries = 0;
  uint64_t total_positions = 0;
  uint32_t block_size = 0;
  std::vector<BlockPostingList::SkipEntry> skips;
  std::vector<uint32_t> checksums;  // v3 only
  size_t payload_begin = 0;
  size_t payload_size = 0;
};

/// Parses one list's directory (v2..v5 share everything except the
/// per-block checksum, max_tf and encoding fields) and skips its payload,
/// leaving
/// `*offset` past the list. Every count is bounded by the remaining input
/// before sizing containers: the envelope checksum is recomputable by an
/// attacker, so a crafted header must fail with Corruption, not a giant
/// allocation.
Status GetBlockListDirectory(std::string_view data, size_t* offset,
                             bool with_checksums, bool with_block_max,
                             bool with_encoding, uint64_t cnodes,
                             BlockListDirectory* dir) {
  uint64_t num_blocks;
  FTS_RETURN_IF_ERROR(GetVarint64(data, offset, &dir->num_entries));
  FTS_RETURN_IF_ERROR(GetVarint64(data, offset, &dir->total_positions));
  FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &dir->block_size));
  FTS_RETURN_IF_ERROR(GetVarint64(data, offset, &num_blocks));
  if (dir->block_size == 0 && num_blocks > 0) {
    return Status::Corruption("zero block size in nonempty block list");
  }
  // Each skip entry takes at least 3 (v2), 4 (v3), 5 (v4) or 6 (v5) bytes.
  const size_t min_entry_bytes = (with_checksums ? 4u : 3u) +
                                 (with_block_max ? 1u : 0u) +
                                 (with_encoding ? 1u : 0u);
  if (num_blocks > (data.size() - *offset) / min_entry_bytes) {
    return Status::Corruption("skip table larger than remaining input");
  }
  dir->skips.reserve(num_blocks);
  if (with_checksums) dir->checksums.reserve(num_blocks);
  NodeId prev_max = 0;
  uint32_t prev_off = 0;
  uint64_t skipped_entries = 0;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    uint32_t d_max, d_off, count;
    FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &d_max));
    FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &d_off));
    FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &count));
    if (with_checksums) {
      uint32_t checksum;
      FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &checksum));
      dir->checksums.push_back(checksum);
    }
    BlockPostingList::SkipEntry s;
    if (with_block_max) {
      FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &s.max_tf));
    }
    if (with_encoding) {
      uint32_t encoding;
      FTS_RETURN_IF_ERROR(GetVarint32(data, offset, &encoding));
      if (encoding > BlockPostingList::kEncodingBitset) {
        return Status::Corruption("unknown block encoding tag");
      }
      s.encoding = static_cast<uint8_t>(encoding);
    }
    s.max_node = prev_max + d_max;
    s.byte_offset = prev_off + d_off;
    s.entry_count = count;
    if (b > 0 && (d_max == 0 || d_off == 0)) {
      return Status::Corruption("non-increasing skip table");
    }
    if (count == 0 || count > dir->block_size) {
      return Status::Corruption("bad block entry count");
    }
    prev_max = s.max_node;
    prev_off = s.byte_offset;
    skipped_entries += count;
    dir->skips.push_back(s);
  }
  if (skipped_entries != dir->num_entries) {
    return Status::Corruption("skip table entry counts disagree with header");
  }
  // Every node id in a valid block is <= its skip max_node, so checking the
  // last block's max here guarantees the ids stay below cnodes (they index
  // the per-node scalar tables during scoring) even when the block bodies
  // are only validated lazily on first touch.
  if (!dir->skips.empty() && dir->skips.back().max_node >= cnodes) {
    return Status::Corruption("posting node id out of range");
  }
  uint64_t data_size;
  FTS_RETURN_IF_ERROR(GetVarint64(data, offset, &data_size));
  if (data_size > data.size() - *offset) {  // subtract, don't add: no overflow
    return Status::Corruption("truncated block payload");
  }
  if (!dir->skips.empty() && dir->skips.back().byte_offset >= data_size) {
    return Status::Corruption("skip table points past block payload");
  }
  dir->payload_begin = *offset;
  dir->payload_size = data_size;
  *offset += data_size;
  return Status::OK();
}

void PutCommonSections(const InvertedIndex& index, std::string* out) {
  // Statistics.
  const IndexStats& s = index.stats();
  PutVarint64(out, s.cnodes);
  PutVarint64(out, s.total_positions);
  PutVarint32(out, s.pos_per_cnode);
  PutVarint32(out, s.entries_per_token);
  PutVarint32(out, s.pos_per_entry);
  PutDouble(out, s.avg_pos_per_cnode);
  PutDouble(out, s.avg_entries_per_token);
  PutDouble(out, s.avg_pos_per_entry);

  // Per-node scalars.
  for (NodeId n = 0; n < s.cnodes; ++n) {
    PutVarint32(out, index.unique_tokens(n));
    PutDouble(out, index.node_norm(n));
  }

  // Dictionary.
  PutVarint64(out, index.vocabulary_size());
  for (TokenId t = 0; t < index.vocabulary_size(); ++t) {
    const std::string& text = index.token_text(t);
    PutVarint64(out, text.size());
    out->append(text);
  }
}

}  // namespace

// Loader backdoor into InvertedIndex privates (declared friend there); all
// deserialization paths funnel through Load().
struct IndexIoAccess {
  static Status Load(std::shared_ptr<IndexSource> source, bool prefer_lazy,
                     InvertedIndex* out);
};

Status IndexIoAccess::Load(std::shared_ptr<IndexSource> source,
                           bool prefer_lazy, InvertedIndex* out) {
  const std::string_view data = source->view();
  if (data.size() < kMinFileSize) {
    return Status::Corruption("index data smaller than the fixed envelope (" +
                              std::to_string(data.size()) + " < " +
                              std::to_string(kMinFileSize) + " bytes)");
  }
  const bool is_v1 = std::memcmp(data.data(), kMagicV1, kMagicSize) == 0;
  const bool is_v2 = std::memcmp(data.data(), kMagicV2, kMagicSize) == 0;
  const bool is_v3 = std::memcmp(data.data(), kMagicV3, kMagicSize) == 0;
  const bool is_v4 = std::memcmp(data.data(), kMagicV4, kMagicSize) == 0;
  const bool is_v5 = std::memcmp(data.data(), kMagicV5, kMagicSize) == 0;
  const bool is_v6 = std::memcmp(data.data(), kMagicV6, kMagicSize) == 0;
  if (!is_v1 && !is_v2 && !is_v3 && !is_v4 && !is_v5 && !is_v6) {
    return Status::Corruption("bad index magic");
  }
  // v3+ share the lazy-loadable envelope (header-only trailer hash,
  // per-block checksums); v4 adds max_tf per skip entry, v5 the per-block
  // encoding tag, v6 the optional pair-index section.
  const bool header_hashed = is_v3 || is_v4 || is_v5 || is_v6;
  const bool with_block_max = is_v4 || is_v5 || is_v6;
  const size_t body_end = data.size() - kTrailerSize;

  // v1/v2 carry a whole-body checksum: verify it up front (this reads the
  // entire input, so these versions never load lazily). The v3/v4 trailer
  // covers only header/directory bytes; it is accumulated during the parse
  // below, hopping over payload ranges without touching them.
  if (!header_hashed) {
    size_t coff = body_end;
    uint64_t stored;
    FTS_RETURN_IF_ERROR(GetFixed64(data, &coff, &stored));
    if (stored != Fnv1a64(data.substr(kMagicSize, body_end - kMagicSize))) {
      return Status::Corruption("index checksum mismatch");
    }
  }
  uint64_t header_hash = kFnv1aSeed;
  size_t hash_mark = kMagicSize;  // next byte not yet folded into header_hash

  InvertedIndex index;
  size_t offset = kMagicSize;
  IndexStats& s = index.stats_;
  FTS_RETURN_IF_ERROR(GetVarint64(data, &offset, &s.cnodes));
  FTS_RETURN_IF_ERROR(GetVarint64(data, &offset, &s.total_positions));
  FTS_RETURN_IF_ERROR(GetVarint32(data, &offset, &s.pos_per_cnode));
  FTS_RETURN_IF_ERROR(GetVarint32(data, &offset, &s.entries_per_token));
  FTS_RETURN_IF_ERROR(GetVarint32(data, &offset, &s.pos_per_entry));
  FTS_RETURN_IF_ERROR(GetDouble(data, &offset, &s.avg_pos_per_cnode));
  FTS_RETURN_IF_ERROR(GetDouble(data, &offset, &s.avg_entries_per_token));
  FTS_RETURN_IF_ERROR(GetDouble(data, &offset, &s.avg_pos_per_entry));

  // Bound every count read from the file by the bytes that could encode it
  // before sizing containers: the checksum is recomputable by an attacker,
  // so a crafted header must fail with Corruption, not a giant allocation.
  if (s.cnodes > (body_end - offset) / 9) {  // >= 1 varint + 8-byte double each
    return Status::Corruption("node count larger than remaining input");
  }
  index.unique_tokens_.resize(s.cnodes);
  index.node_norms_.resize(s.cnodes);
  for (uint64_t n = 0; n < s.cnodes; ++n) {
    FTS_RETURN_IF_ERROR(GetVarint32(data, &offset, &index.unique_tokens_[n]));
    FTS_RETURN_IF_ERROR(GetDouble(data, &offset, &index.node_norms_[n]));
  }

  uint64_t vocab;
  FTS_RETURN_IF_ERROR(GetVarint64(data, &offset, &vocab));
  if (vocab > body_end - offset) {  // >= 1 length byte per token
    return Status::Corruption("vocabulary larger than remaining input");
  }
  index.token_texts_.reserve(vocab);
  for (uint64_t t = 0; t < vocab; ++t) {
    uint64_t len;
    FTS_RETURN_IF_ERROR(GetVarint64(data, &offset, &len));
    if (len > body_end - offset) {  // subtract, don't add: no overflow
      return Status::Corruption("truncated dictionary string");
    }
    index.token_texts_.emplace_back(data.substr(offset, len));
    index.token_ids_.emplace(index.token_texts_.back(), static_cast<TokenId>(t));
    offset += len;
  }

  if (is_v1) {
    // Decode each flat stream into a raw transient and re-encode it into
    // the block-resident form, one list at a time (peak extra memory is a
    // single decoded list, not a mirror of the index). The re-encoded
    // lists own their bytes, so the source is not retained.
    index.block_lists_.resize(vocab);
    for (uint64_t t = 0; t < vocab; ++t) {
      PostingList raw;
      FTS_RETURN_IF_ERROR(GetPostingList(data, &offset, &raw));
      index.block_lists_[t] = BlockPostingList::FromPostingList(raw);
    }
    PostingList any;
    FTS_RETURN_IF_ERROR(GetPostingList(data, &offset, &any));
    *index.block_any_list_ = BlockPostingList::FromPostingList(any);
    // Same guarantees as the v2 path: in particular, node ids must stay
    // below cnodes so per-node scalar lookups can never go out of range.
    FTS_RETURN_IF_ERROR(index.ValidateBlocks());
  } else {
    const bool with_checksums = header_hashed;
    const bool lazy = header_hashed && prefer_lazy;
    const auto adopt = [&](BlockPostingList* list) -> Status {
      BlockListDirectory dir;
      FTS_RETURN_IF_ERROR(GetBlockListDirectory(
          data, &offset, with_checksums, with_block_max,
          /*with_encoding=*/is_v5 || is_v6, s.cnodes, &dir));
      if (header_hashed) {
        // Fold the header/directory bytes since the last payload into the
        // trailer hash, then hop over this list's payload untouched.
        header_hash = Fnv1aAccumulate(
            header_hash, data.substr(hash_mark, dir.payload_begin - hash_mark));
        hash_mark = dir.payload_begin + dir.payload_size;
      }
      *list = BlockPostingList::FromParts(
          dir.block_size == 0 ? BlockPostingList::kDefaultBlockSize
                              : dir.block_size,
          dir.num_entries, dir.total_positions, std::move(dir.skips),
          data.substr(dir.payload_begin, dir.payload_size),
          std::move(dir.checksums),
          /*first_touch_validation=*/with_checksums,
          /*has_block_max=*/with_block_max);
      return Status::OK();
    };
    index.block_lists_.resize(vocab);
    for (uint64_t t = 0; t < vocab; ++t) {
      FTS_RETURN_IF_ERROR(adopt(&index.block_lists_[t]));
    }
    FTS_RETURN_IF_ERROR(adopt(index.block_any_list_.get()));
    if (is_v6) {
      // Optional pair-index section: frequent-term table (rank order),
      // then the sorted canonical key table with each key's list inline.
      // Every structural invariant Find()/the planner rely on is enforced
      // here; the lists themselves get the same directory checks and
      // (lazy or eager) payload validation as any other list.
      uint32_t max_distance;
      uint64_t num_frequent;
      FTS_RETURN_IF_ERROR(GetVarint32(data, &offset, &max_distance));
      FTS_RETURN_IF_ERROR(GetVarint64(data, &offset, &num_frequent));
      if (num_frequent > body_end - offset) {  // >= 1 byte per id
        return Status::Corruption("pair frequent table larger than input");
      }
      auto pair = std::make_unique<PairIndex>();
      pair->max_distance_ = max_distance;
      pair->frequent_.reserve(num_frequent);
      for (uint64_t i = 0; i < num_frequent; ++i) {
        uint32_t tok;
        FTS_RETURN_IF_ERROR(GetVarint32(data, &offset, &tok));
        if (tok >= vocab) {
          return Status::Corruption("pair frequent token out of vocabulary");
        }
        pair->frequent_.push_back(tok);
      }
      pair->RebuildLookups();
      if (pair->rank_.size() != pair->frequent_.size()) {
        return Status::Corruption("duplicate pair frequent token");
      }
      uint64_t num_keys;
      FTS_RETURN_IF_ERROR(GetVarint64(data, &offset, &num_keys));
      if (num_keys > (body_end - offset) / 2) {  // >= 2 bytes per key
        return Status::Corruption("pair key table larger than input");
      }
      if (num_keys > 0 && num_frequent == 0) {
        return Status::Corruption("pair keys without frequent table");
      }
      pair->keys_.reserve(num_keys);
      pair->lists_.resize(num_keys);
      TokenId prev_first = 0;
      TokenId prev_second = 0;
      for (uint64_t i = 0; i < num_keys; ++i) {
        uint32_t d_first, second;
        FTS_RETURN_IF_ERROR(GetVarint32(data, &offset, &d_first));
        FTS_RETURN_IF_ERROR(GetVarint32(data, &offset, &second));
        const TokenId first = prev_first + d_first;
        if (first >= vocab || second >= vocab || first == second) {
          return Status::Corruption("bad pair key");
        }
        if (i > 0 && d_first == 0 && second <= prev_second) {
          return Status::Corruption("non-increasing pair key table");
        }
        // Canonical orientation: `first` must be frequent, and when both
        // sides are frequent the better-ranked one leads — the exact rule
        // Find() canonicalizes queries with.
        const size_t rf = pair->rank(first);
        if (rf == PairIndex::kNotFrequent || pair->rank(second) < rf) {
          return Status::Corruption("non-canonical pair key orientation");
        }
        prev_first = first;
        prev_second = second;
        pair->keys_.push_back({first, second});
        FTS_RETURN_IF_ERROR(adopt(&pair->lists_[i]));
      }
      pair->RebuildLookups();
      if (!pair->keys_.empty()) index.pair_index_ = std::move(pair);
    }
    if (header_hashed) {
      if (offset != body_end) {
        return Status::Corruption("trailing bytes in index payload");
      }
      header_hash = Fnv1aAccumulate(header_hash,
                                    data.substr(hash_mark, body_end - hash_mark));
      size_t coff = body_end;
      uint64_t stored;
      FTS_RETURN_IF_ERROR(GetFixed64(data, &coff, &stored));
      if (stored != header_hash) {
        return Status::Corruption("index header checksum mismatch");
      }
    }
    index.source_ = source;  // lists view into it from here on
    if (lazy) {
      // O(header) load: per-block structure and payload checksums are
      // verified on first decode instead (memoized in BlockPostingList).
      index.lazy_validation_ = true;
    } else {
      // Adopted payloads are fully validated up front (streaming, O(block)
      // scratch) so query-time cursors never touch malformed bytes.
      FTS_RETURN_IF_ERROR(index.ValidateBlocks());
    }
  }

  if (offset != body_end) {
    return Status::Corruption("trailing bytes in index payload");
  }
  // The per-node scalars are now final: refresh the derived minimum the
  // score models use for impact upper bounds.
  index.RecomputeMinUniqNorm();
  *out = std::move(index);
  return Status::OK();
}

void SaveIndexToString(const InvertedIndex& index, std::string* out,
                       IndexFormat format) {
  out->clear();
  const char* magic = kMagicV6;
  if (format == IndexFormat::kV1) magic = kMagicV1;
  if (format == IndexFormat::kV2) magic = kMagicV2;
  if (format == IndexFormat::kV3) magic = kMagicV3;
  if (format == IndexFormat::kV4) magic = kMagicV4;
  if (format == IndexFormat::kV5) magic = kMagicV5;
  out->append(magic, kMagicSize);
  PutCommonSections(index, out);

  const bool with_encoding =
      format == IndexFormat::kV5 || format == IndexFormat::kV6;
  const bool with_block_max = format == IndexFormat::kV4 || with_encoding;
  const bool with_checksums = format == IndexFormat::kV3 || with_block_max;
  std::vector<PayloadRange> payload_ranges;
  if (format == IndexFormat::kV1) {
    // The flat v1 stream is produced from a per-list transient decode; the
    // raw form is never resident in the index.
    for (TokenId t = 0; t < index.vocabulary_size(); ++t) {
      PutPostingList(out, index.block_list(t)->Materialize());
    }
    PutPostingList(out, index.block_any_list().Materialize());
  } else {
    // Only the v5 directory can describe bitset blocks; saving a hybrid
    // list under an older magic transcodes it to all-varint first so every
    // v<=4 file stays parseable by v<=4 readers.
    const auto put_list = [&](const BlockPostingList& list) {
      if (!with_encoding && list.has_bitset_blocks()) {
        PutBlockPostingList(out, list.ToVarintOnly(), with_checksums,
                            with_block_max, with_encoding,
                            with_checksums ? &payload_ranges : nullptr);
      } else {
        PutBlockPostingList(out, list, with_checksums, with_block_max,
                            with_encoding,
                            with_checksums ? &payload_ranges : nullptr);
      }
    };
    for (TokenId t = 0; t < index.vocabulary_size(); ++t) {
      put_list(*index.block_list(t));
    }
    put_list(index.block_any_list());
    if (format == IndexFormat::kV6) {
      // Pair-index section: an index without one writes the empty shape
      // (max_distance 0, no frequent terms, no keys) so the loader needs
      // no presence flag. Saving to v<=5 drops the section entirely.
      const PairIndex* pair = index.pair_index();
      PutVarint32(out, pair != nullptr ? pair->max_distance() : 0);
      PutVarint64(out, pair != nullptr ? pair->num_frequent() : 0);
      if (pair != nullptr) {
        for (const TokenId t : pair->frequent_terms()) PutVarint32(out, t);
      }
      PutVarint64(out, pair != nullptr ? pair->num_keys() : 0);
      if (pair != nullptr) {
        TokenId prev_first = 0;
        for (size_t i = 0; i < pair->num_keys(); ++i) {
          const PairTermKey& k = pair->key(i);
          PutVarint32(out, k.first - prev_first);
          PutVarint32(out, k.second);
          prev_first = k.first;
          put_list(pair->list(i));
        }
      }
    }
  }

  if (with_checksums) {
    // v3/v4/v5 trailer: header/directory bytes only — block payloads are
    // covered by their per-block checksums, so a lazy loader can verify
    // everything it eagerly reads without touching payload bytes.
    uint64_t hash = kFnv1aSeed;
    size_t mark = kMagicSize;
    for (const PayloadRange& r : payload_ranges) {
      hash = Fnv1aAccumulate(hash, std::string_view(*out).substr(mark, r.begin - mark));
      mark = r.end;
    }
    hash = Fnv1aAccumulate(hash, std::string_view(*out).substr(mark));
    PutFixed64(out, hash);
  } else {
    PutFixed64(out, Fnv1a64(std::string_view(*out).substr(kMagicSize)));
  }
}

Status LoadIndexFromString(const std::string& data, InvertedIndex* out) {
  // One heap copy of the whole input; the loaded lists view into it rather
  // than holding per-list payload copies.
  return IndexIoAccess::Load(IndexSource::FromString(data),
                             /*prefer_lazy=*/false, out);
}

Status SaveIndexToFile(const InvertedIndex& index, const std::string& path,
                       IndexFormat format) {
  std::string data;
  SaveIndexToString(index, &data, format);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::IOError("cannot open for write: " + path);
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!f) return Status::IOError("short write: " + path);
  return Status::OK();
}

Status LoadIndexFromFile(const std::string& path, InvertedIndex* out,
                         const LoadOptions& options) {
  if (options.mode == LoadOptions::Mode::kMmap) {
    // IOError (cannot open/stat/map) stays distinct from Corruption (opened
    // but not a parseable index). A v3/v4 file loads lazily in O(header);
    // v1/v2 files validate eagerly over the mapping.
    FTS_ASSIGN_OR_RETURN(std::shared_ptr<IndexSource> source,
                         IndexSource::MapFile(path));
    // The load parses (and for v1/v2 fully validates) front to back:
    // sequential readahead helps. Hints are best-effort, failures ignored.
    (void)source->Advise(AccessHint::kSequential);
    FTS_RETURN_IF_ERROR(
        IndexIoAccess::Load(source, /*prefer_lazy=*/true, out));
    if (options.prefault) {
      // Warm-up: pay the whole file's fault-in now, not on first queries.
      // Best-effort like the other hints — the index is already loaded and
      // valid, so a failed madvise must not turn a good load into an error.
      (void)source->Prefault();
    } else {
      // Serving reads hop between blocks via the skip tables; linear
      // readahead would drag in pages queries never touch.
      (void)source->Advise(AccessHint::kRandom);
    }
    return Status::OK();
  }
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open for read: " + path);
  std::string data((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  if (!f.good() && !f.eof()) return Status::IOError("read failed: " + path);
  return IndexIoAccess::Load(IndexSource::FromString(std::move(data)),
                             /*prefer_lazy=*/false, out);
}

StatusOr<std::shared_ptr<const IndexSnapshot>> LoadSnapshotFromFile(
    const std::string& path, const LoadOptions& options) {
  auto index = std::make_shared<InvertedIndex>();
  FTS_RETURN_IF_ERROR(LoadIndexFromFile(path, index.get(), options));
  return IndexSnapshot::Create({std::move(index)});
}

}  // namespace fts
