// IndexSource: the byte storage an InvertedIndex's posting payloads live
// in. Loaded indexes no longer copy each list's compressed payload into an
// owned string; instead every BlockPostingList holds a string_view slice
// into one shared IndexSource, which either
//
//   - owns a heap buffer (the LoadIndexFromString path, kept for non-file
//     inputs and as the portable fallback), or
//   - wraps an mmap'd read-only file region, so block payloads are backed
//     by the page cache and fault in lazily on first decode — untouched
//     lists never become resident at all.
//
// The InvertedIndex keeps the source alive via shared_ptr for as long as
// any list views into it. Mapping is PRIVATE + read-only; the file must
// not be rewritten in place while mapped (write-then-rename replacement is
// safe — the mapping pins the old inode).

#ifndef FTS_INDEX_INDEX_SOURCE_H_
#define FTS_INDEX_INDEX_SOURCE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace fts {

/// Access-pattern hint for a mapped source (madvise on POSIX; a no-op on
/// heap sources and platforms without madvise — hints are best-effort by
/// definition).
enum class AccessHint {
  /// Default kernel readahead.
  kNormal,
  /// Aggressive readahead: the caller will stream the region front to
  /// back (load-time header parse, eager validation over a mapping).
  kSequential,
  /// Readahead is more likely to hurt than help: block-seek query traffic
  /// touches scattered pages.
  kRandom,
  /// Start paging the whole region in asynchronously (cheap warm-up; see
  /// Prefault for the synchronous guarantee).
  kWillNeed,
};

class IndexSource {
 public:
  /// Wraps a heap-owned copy of `data`.
  static std::shared_ptr<IndexSource> FromString(std::string data) {
    return std::shared_ptr<IndexSource>(new IndexSource(std::move(data)));
  }

  /// Memory-maps `path` read-only. Returns IOError when the file cannot be
  /// opened or mapped (distinct from Corruption: nothing was parsed yet),
  /// and Unsupported on platforms without mmap.
  static StatusOr<std::shared_ptr<IndexSource>> MapFile(const std::string& path);

  ~IndexSource();

  IndexSource(const IndexSource&) = delete;
  IndexSource& operator=(const IndexSource&) = delete;

  /// The full byte range of the source. Stable for the source's lifetime.
  std::string_view view() const {
    return mapped_ != nullptr ? std::string_view(mapped_, mapped_size_)
                              : std::string_view(owned_);
  }

  size_t size() const { return view().size(); }

  /// True when the bytes are a file mapping (page-cache resident) rather
  /// than a heap buffer.
  bool is_mapped() const { return mapped_ != nullptr; }

  /// Advises the kernel about the upcoming access pattern over the
  /// mapping. No-op (OK) for heap sources; IOError only if madvise itself
  /// rejects the call. Lazy loads advise kSequential for the header parse
  /// and kRandom for the block-seek serving phase that follows.
  Status Advise(AccessHint hint) const;

  /// Synchronously faults every page of the mapping into the page cache
  /// (reads one byte per page after a kWillNeed hint), so a service can
  /// pay cold-start IO at load time instead of on first queries. No-op for
  /// heap sources. Opt in via LoadOptions::prefault.
  Status Prefault() const;

 private:
  explicit IndexSource(std::string data) : owned_(std::move(data)) {}
  IndexSource(const char* mapped, size_t size)
      : mapped_(mapped), mapped_size_(size) {}

  std::string owned_;               // heap mode
  const char* mapped_ = nullptr;    // mmap mode
  size_t mapped_size_ = 0;
};

}  // namespace fts

#endif  // FTS_INDEX_INDEX_SOURCE_H_
