// IndexSource: the byte storage an InvertedIndex's posting payloads live
// in. Loaded indexes no longer copy each list's compressed payload into an
// owned string; instead every BlockPostingList holds a string_view slice
// into one shared IndexSource, which either
//
//   - owns a heap buffer (the LoadIndexFromString path, kept for non-file
//     inputs and as the portable fallback), or
//   - wraps an mmap'd read-only file region, so block payloads are backed
//     by the page cache and fault in lazily on first decode — untouched
//     lists never become resident at all.
//
// The InvertedIndex keeps the source alive via shared_ptr for as long as
// any list views into it. Mapping is PRIVATE + read-only; the file must
// not be rewritten in place while mapped (write-then-rename replacement is
// safe — the mapping pins the old inode).

#ifndef FTS_INDEX_INDEX_SOURCE_H_
#define FTS_INDEX_INDEX_SOURCE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace fts {

class IndexSource {
 public:
  /// Wraps a heap-owned copy of `data`.
  static std::shared_ptr<IndexSource> FromString(std::string data) {
    return std::shared_ptr<IndexSource>(new IndexSource(std::move(data)));
  }

  /// Memory-maps `path` read-only. Returns IOError when the file cannot be
  /// opened or mapped (distinct from Corruption: nothing was parsed yet),
  /// and Unsupported on platforms without mmap.
  static StatusOr<std::shared_ptr<IndexSource>> MapFile(const std::string& path);

  ~IndexSource();

  IndexSource(const IndexSource&) = delete;
  IndexSource& operator=(const IndexSource&) = delete;

  /// The full byte range of the source. Stable for the source's lifetime.
  std::string_view view() const {
    return mapped_ != nullptr ? std::string_view(mapped_, mapped_size_)
                              : std::string_view(owned_);
  }

  size_t size() const { return view().size(); }

  /// True when the bytes are a file mapping (page-cache resident) rather
  /// than a heap buffer.
  bool is_mapped() const { return mapped_ != nullptr; }

 private:
  explicit IndexSource(std::string data) : owned_(std::move(data)) {}
  IndexSource(const char* mapped, size_t size)
      : mapped_(mapped), mapped_size_(size) {}

  std::string owned_;               // heap mode
  const char* mapped_ = nullptr;    // mmap mode
  size_t mapped_size_ = 0;
};

}  // namespace fts

#endif  // FTS_INDEX_INDEX_SOURCE_H_
