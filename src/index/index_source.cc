#include "index/index_source.h"

#if defined(__unix__) || defined(__APPLE__)
#define FTS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace fts {

#if FTS_HAVE_MMAP

StatusOr<std::shared_ptr<IndexSource>> IndexSource::MapFile(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open for read: " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat: " + path + ": " + std::strerror(err));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    // mmap of length 0 is EINVAL; an empty file cannot be a valid index
    // anyway, but that is the parser's verdict (Corruption), not an IO
    // failure — hand it an empty heap source.
    ::close(fd);
    return std::shared_ptr<IndexSource>(FromString(std::string()));
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_err = errno;
  ::close(fd);  // the mapping keeps its own reference to the inode
  if (addr == MAP_FAILED) {
    return Status::IOError("cannot mmap: " + path + ": " +
                           std::strerror(map_err));
  }
  return std::shared_ptr<IndexSource>(
      new IndexSource(static_cast<const char*>(addr), size));
}

IndexSource::~IndexSource() {
  if (mapped_ != nullptr) {
    ::munmap(const_cast<char*>(mapped_), mapped_size_);
  }
}

#else  // !FTS_HAVE_MMAP

StatusOr<std::shared_ptr<IndexSource>> IndexSource::MapFile(
    const std::string& path) {
  (void)path;
  return Status::Unsupported("mmap index loading is not available on this platform");
}

IndexSource::~IndexSource() = default;

#endif  // FTS_HAVE_MMAP

}  // namespace fts
