#include "index/index_source.h"

#if defined(__unix__) || defined(__APPLE__)
#define FTS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace fts {

#if FTS_HAVE_MMAP

StatusOr<std::shared_ptr<IndexSource>> IndexSource::MapFile(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open for read: " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat: " + path + ": " + std::strerror(err));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    // mmap of length 0 is EINVAL; an empty file cannot be a valid index
    // anyway, but that is the parser's verdict (Corruption), not an IO
    // failure — hand it an empty heap source.
    ::close(fd);
    return std::shared_ptr<IndexSource>(FromString(std::string()));
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_err = errno;
  ::close(fd);  // the mapping keeps its own reference to the inode
  if (addr == MAP_FAILED) {
    return Status::IOError("cannot mmap: " + path + ": " +
                           std::strerror(map_err));
  }
  return std::shared_ptr<IndexSource>(
      new IndexSource(static_cast<const char*>(addr), size));
}

IndexSource::~IndexSource() {
  if (mapped_ != nullptr) {
    ::munmap(const_cast<char*>(mapped_), mapped_size_);
  }
}

Status IndexSource::Advise(AccessHint hint) const {
  if (mapped_ == nullptr || mapped_size_ == 0) return Status::OK();
  int advice = MADV_NORMAL;
  switch (hint) {
    case AccessHint::kNormal:
      advice = MADV_NORMAL;
      break;
    case AccessHint::kSequential:
      advice = MADV_SEQUENTIAL;
      break;
    case AccessHint::kRandom:
      advice = MADV_RANDOM;
      break;
    case AccessHint::kWillNeed:
      advice = MADV_WILLNEED;
      break;
  }
  if (::madvise(const_cast<char*>(mapped_), mapped_size_, advice) != 0) {
    return Status::IOError(std::string("madvise failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status IndexSource::Prefault() const {
  if (mapped_ == nullptr || mapped_size_ == 0) return Status::OK();
  // Kick off asynchronous readahead for the whole region, then touch one
  // byte per page so every page is synchronously resident on return. The
  // reads are through volatile so the loop cannot be optimized away; the
  // page size query never fails on platforms that got this far.
  FTS_RETURN_IF_ERROR(Advise(AccessHint::kWillNeed));
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const volatile char* p = mapped_;
  unsigned char sink = 0;
  for (size_t off = 0; off < mapped_size_; off += page) {
    sink ^= static_cast<unsigned char>(p[off]);
  }
  sink ^= static_cast<unsigned char>(p[mapped_size_ - 1]);
  (void)sink;
  return Status::OK();
}

#else  // !FTS_HAVE_MMAP

StatusOr<std::shared_ptr<IndexSource>> IndexSource::MapFile(
    const std::string& path) {
  (void)path;
  return Status::Unsupported("mmap index loading is not available on this platform");
}

IndexSource::~IndexSource() = default;

Status IndexSource::Advise(AccessHint hint) const {
  (void)hint;
  return Status::OK();
}

Status IndexSource::Prefault() const { return Status::OK(); }

#endif  // FTS_HAVE_MMAP

}  // namespace fts
