// Binary serialization of InvertedIndex.
//
// Format (version 1): a "FTSIDX1\0" magic, followed by varint-encoded
// sections. Node ids are delta-coded across entries and position offsets
// delta-coded within entries; sentence/paragraph ordinals are delta-coded
// against the previous position. Doubles are stored as fixed 64-bit IEEE
// bits. A trailing 64-bit FNV-1a checksum detects truncation/corruption.

#ifndef FTS_INDEX_INDEX_IO_H_
#define FTS_INDEX_INDEX_IO_H_

#include <string>

#include "common/status.h"
#include "index/inverted_index.h"

namespace fts {

/// Serializes `index` into `out` (replacing its contents).
void SaveIndexToString(const InvertedIndex& index, std::string* out);

/// Deserializes an index previously produced by SaveIndexToString.
Status LoadIndexFromString(const std::string& data, InvertedIndex* out);

/// Writes the serialized index to `path` (atomic rename not attempted).
Status SaveIndexToFile(const InvertedIndex& index, const std::string& path);

/// Reads and deserializes an index from `path`.
Status LoadIndexFromFile(const std::string& path, InvertedIndex* out);

}  // namespace fts

#endif  // FTS_INDEX_INDEX_IO_H_
