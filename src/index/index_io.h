// Binary serialization of InvertedIndex.
//
// Six versions share a common envelope — an 8-byte magic whose 7th byte
// is the version digit and varint-coded sections:
//
//   v1 ("FTSIDX1\0"): posting lists as flat delta-coded entry streams;
//       trailing FNV-1a 64 checksum over the whole body.
//   v2 ("FTSIDX2\0"): posting lists in the block-compressed skip-seekable
//       layout of BlockPostingList; whole-body trailing checksum. Loading
//       adopts the compressed blocks directly — no per-entry re-encode —
//       then fully validates them before any cursor reads them.
//   v3 ("FTSIDX3\0"): the v2 block layout plus a per-block
//       FNV-1a32 payload checksum in each skip entry; the trailing
//       checksum covers only the header and directory bytes (everything
//       except block payloads). That split is what makes lazy loading
//       sound: an mmap load verifies the header/directory in O(header)
//       without touching a single payload byte, and each block's checksum
//       and structure are verified on its first decode instead
//       (first-touch validation, memoized per block).
//   v4 ("FTSIDX4\0"): v3 plus a block-max statistic — each skip entry
//       additionally records max_tf, the largest per-entry position count
//       in its block. Score models turn it into a per-block impact upper
//       bound, so top-k evaluation can skip blocks that cannot beat the
//       heap threshold (docs/index_format.md). The lazy loading story is
//       identical to v3; the trailer hash covers the max_tf bytes (they
//       live in the directory). v2/v3 files still load, with
//       has_block_max() false — block-max evaluation then falls back to
//       full evaluation for those lists.
//   v5 ("FTSIDX5\0"): v4 plus a per-block encoding tag in
//       each skip entry, enabling the hybrid block representation of
//       BlockPostingList — dense blocks stored as fixed-width bitsets
//       (word-AND intersectable), sparse blocks staying varint-delta. The
//       tag lives in the directory, so it is covered by the trailer hash
//       and a flipped tag surfaces as Corruption at load. v1–v4 files
//       still load (every block varint-coded); saving to a v<=4 format
//       transcodes any bitset blocks back to varint, so an old magic
//       never fronts a payload old readers cannot parse.
//   v6 ("FTSIDX6\0", the default): v5 plus an *optional* pair-index
//       section after IL_ANY — the auxiliary (frequent-term, other-term)
//       lists of index/pair_index.h, serialized with the same per-list
//       block directory (per-block checksums, max_tf, encoding tags) as
//       every other list, so they lazy-load and first-touch validate
//       identically. An index without a pair index writes an empty
//       section; saving to v<=5 drops the section entirely (old readers
//       parse the file unchanged, the feature is simply off).
//
// Loading sniffs the magic and accepts all six; any path leaves the
// block lists as the index's only representation, viewing their payload
// bytes out of one shared IndexSource (heap buffer or mmap'd file region)
// instead of holding per-list copies.

#ifndef FTS_INDEX_INDEX_IO_H_
#define FTS_INDEX_INDEX_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "index/index_snapshot.h"
#include "index/inverted_index.h"

namespace fts {

/// On-disk format version selector for Save*.
enum class IndexFormat {
  kV1 = 1,  ///< flat posting streams (legacy)
  kV2 = 2,  ///< block-compressed postings, whole-body checksum
  kV3 = 3,  ///< block-compressed + per-block checksums, lazy-loadable
  kV4 = 4,  ///< v3 + per-block max_tf for block-max top-k skipping
  kV5 = 5,  ///< v4 + per-block encoding tag (hybrid bitset/varint)
  kV6 = 6,  ///< v5 + optional pair-index section (default)
};

/// How LoadIndexFromFile materializes the file.
struct LoadOptions {
  enum class Mode {
    /// Read the whole file into a heap buffer and validate every block up
    /// front. Always available; the only mode for non-file inputs.
    kEager,
    /// mmap the file read-only and decode blocks straight from the
    /// mapping. v3/v4/v5 files load in O(header) time with first-touch
    /// validation; v1/v2 files fall back to full eager validation over
    /// the mapping (their whole-body checksum must be read anyway), still
    /// avoiding the heap copy of payload bytes. The mapping is advised
    /// MADV_SEQUENTIAL for the load-time parse and MADV_RANDOM for the
    /// block-seek serving phase that follows.
    kMmap,
  };
  Mode mode = Mode::kEager;
  /// Opt-in warm-up for kMmap: after a successful load, fault every page
  /// of the mapping into the page cache (MADV_WILLNEED + a synchronous
  /// touch of each page) so cold-start IO is paid once at load time
  /// instead of by the first queries to land in each block. Trades load
  /// latency (and resident page-cache footprint) for first-query latency —
  /// see BM_ColdFirstQuery's prefault mode. Ignored for kEager, which
  /// reads the whole file anyway.
  bool prefault = false;
};

/// Serializes `index` into `out` (replacing its contents).
void SaveIndexToString(const InvertedIndex& index, std::string* out,
                       IndexFormat format = IndexFormat::kV6);

/// Deserializes an index previously produced by SaveIndexToString (any
/// format version; detected from the magic). The index copies `data` into
/// an owned heap buffer once and views posting payloads out of it.
Status LoadIndexFromString(const std::string& data, InvertedIndex* out);

/// Writes the serialized index to `path` (atomic rename not attempted; see
/// docs/index_format.md for the write-then-rename recommendation when the
/// file may be mmap-loaded concurrently).
Status SaveIndexToFile(const InvertedIndex& index, const std::string& path,
                       IndexFormat format = IndexFormat::kV6);

/// Reads and deserializes an index from `path`. Returns IOError when the
/// file cannot be opened or read at all, and Corruption when it opens but
/// is not a parseable index — including files smaller than the fixed
/// envelope (magic + trailer), which are rejected with a distinct message
/// before any section parsing runs.
///
/// Deprecated shim for new read-path code: prefer LoadSnapshotFromFile,
/// which returns the owned one-segment IndexSnapshot the snapshot entry
/// points (Searcher, SearchService) consume directly. This variant
/// survives for callers managing index lifetime themselves.
Status LoadIndexFromFile(const std::string& path, InvertedIndex* out,
                         const LoadOptions& options = {});

/// Loads `path` (same formats and `options` semantics as LoadIndexFromFile)
/// and wraps it as an owned one-segment IndexSnapshot — the generation a
/// Searcher or SearchService serves directly. The snapshot owns the index;
/// the last holder (snapshot or draining query) frees it.
StatusOr<std::shared_ptr<const IndexSnapshot>> LoadSnapshotFromFile(
    const std::string& path, const LoadOptions& options = {});

}  // namespace fts

#endif  // FTS_INDEX_INDEX_IO_H_
