// Binary serialization of InvertedIndex.
//
// Two versions share a common envelope — an 8-byte magic whose 7th byte is
// the version digit, varint-coded sections, and a trailing 64-bit FNV-1a
// checksum that detects truncation/corruption:
//
//   v1 ("FTSIDX1\0"): posting lists as flat delta-coded entry streams.
//   v2 ("FTSIDX2\0"): posting lists in the block-compressed skip-seekable
//       layout of BlockPostingList (see docs/index_format.md). Loading v2
//       adopts the compressed blocks directly — no per-entry re-encode —
//       then fully validates them (streaming, O(block) scratch) so a blob
//       that checksums correctly but is structurally malformed still
//       fails with Corruption before any cursor reads it.
//
// Saving defaults to v2; v1 output is kept for compatibility and size
// comparison (v1 writes re-materialize each list transiently — the raw
// form is not resident). Loading sniffs the magic and accepts both;
// either path leaves the block lists as the index's only representation.

#ifndef FTS_INDEX_INDEX_IO_H_
#define FTS_INDEX_INDEX_IO_H_

#include <string>

#include "common/status.h"
#include "index/inverted_index.h"

namespace fts {

/// On-disk format version selector for Save*.
enum class IndexFormat {
  kV1 = 1,  ///< flat posting streams (legacy)
  kV2 = 2,  ///< block-compressed, skip-seekable postings (default)
};

/// Serializes `index` into `out` (replacing its contents).
void SaveIndexToString(const InvertedIndex& index, std::string* out,
                       IndexFormat format = IndexFormat::kV2);

/// Deserializes an index previously produced by SaveIndexToString (either
/// format version; detected from the magic).
Status LoadIndexFromString(const std::string& data, InvertedIndex* out);

/// Writes the serialized index to `path` (atomic rename not attempted).
Status SaveIndexToFile(const InvertedIndex& index, const std::string& path,
                       IndexFormat format = IndexFormat::kV2);

/// Reads and deserializes an index from `path`.
Status LoadIndexFromFile(const std::string& path, InvertedIndex* out);

}  // namespace fts

#endif  // FTS_INDEX_INDEX_IO_H_
