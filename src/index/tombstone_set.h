// Per-segment delete bitmap (the "tombstones" of the segment architecture,
// docs/ingestion.md).
//
// A TombstoneSet marks local node ids of one immutable segment as deleted.
// Deletes never rewrite a sealed segment: the writer publishes a new
// generation whose snapshot carries an updated TombstoneSet, and cursors
// filter tombstoned entries at iteration time (BlockListCursor/ListCursor
// skip them before the engines ever see the node). A set is mutable only
// while the writer assembles the next generation; once referenced by a
// published IndexSnapshot it is immutable and may be read from any number
// of query threads concurrently.

#ifndef FTS_INDEX_TOMBSTONE_SET_H_
#define FTS_INDEX_TOMBSTONE_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "text/document.h"

namespace fts {

/// Bitmap over one segment's local node-id space.
class TombstoneSet {
 public:
  TombstoneSet() = default;
  explicit TombstoneSet(size_t num_nodes)
      : num_nodes_(num_nodes), bits_((num_nodes + 63) / 64, 0) {}

  /// Marks local node `n` deleted; idempotent. `n` must be < num_nodes().
  void MarkDeleted(NodeId n) {
    uint64_t& word = bits_[n >> 6];
    const uint64_t mask = uint64_t{1} << (n & 63);
    if ((word & mask) == 0) {
      word |= mask;
      ++deleted_count_;
    }
  }

  /// True when local node `n` is tombstoned. Hot path: called per posting
  /// entry by filtering cursors.
  bool Contains(NodeId n) const {
    return (bits_[n >> 6] >> (n & 63)) & 1;
  }

  size_t num_nodes() const { return num_nodes_; }
  size_t deleted_count() const { return deleted_count_; }
  size_t live_count() const { return num_nodes_ - deleted_count_; }
  bool empty() const { return deleted_count_ == 0; }

 private:
  size_t num_nodes_ = 0;
  size_t deleted_count_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace fts

#endif  // FTS_INDEX_TOMBSTONE_SET_H_
