// Block-compressed, skip-seekable posting storage (the v2 index layout).
//
// A BlockPostingList stores the same logical (cn, PosList) sequence as a
// PostingList, but packed into fixed-size blocks (kDefaultBlockSize entries)
// of varint-coded deltas: node ids are delta-coded within a block (first id
// absolute, so every block decodes independently), and positions are coded
// as in the v1 stream (offset/sentence/paragraph deltas) behind a per-entry
// byte-length, so entry headers decode without touching position bytes.
// Each block is fronted by a skip header (max_node, byte_offset,
// entry_count), so a cursor can locate the unique block that may contain a
// target node with a binary search over headers and decode only that block
// — O(log #blocks) probes plus one block decode, instead of a linear scan
// of the whole list.
//
// BlockListCursor exposes the sequential API of ListCursor (NextEntry /
// GetPositions) plus SeekEntry(target). Entry headers (node id, position
// count) are bulk-decoded a block at a time — one tight loop over the
// pointer varint primitives (common/varint.h) into a reusable arena or a
// shared DecodedBlockCache (index/decoded_block_cache.h) — and an entry's
// PosList is decoded lazily on first GetPositions(), so node-level
// evaluation (BOOL merges, zig-zag alignment) never pays for position
// bytes it skips. All block decodes, cache hits/misses, and skip probes
// are charged to EvalCounters so benchmarks can separate the paper's
// sequential-access model from the skip machinery.

#ifndef FTS_INDEX_BLOCK_POSTING_LIST_H_
#define FTS_INDEX_BLOCK_POSTING_LIST_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "index/inverted_index.h"

namespace fts {

/// Compressed counterpart of PostingList. Immutable once built (append-only
/// while building; appends must use strictly increasing node ids).
class BlockPostingList {
 public:
  static constexpr uint32_t kDefaultBlockSize = 128;

  /// Skip header of one block. `byte_offset` points at the block's first
  /// byte inside data(); `max_node` is the id of its last entry.
  struct SkipEntry {
    NodeId max_node = 0;
    uint32_t byte_offset = 0;
    uint32_t entry_count = 0;
  };

  explicit BlockPostingList(uint32_t block_size = kDefaultBlockSize)
      : block_size_(block_size == 0 ? kDefaultBlockSize : block_size) {}

  /// Compresses an existing raw list.
  static BlockPostingList FromPostingList(const PostingList& raw,
                                          uint32_t block_size = kDefaultBlockSize);

  /// Decompresses back to the raw random-access form.
  PostingList Materialize() const;

  /// Appends one entry; node ids must be strictly increasing. Call Finish()
  /// after the last Append to flush the tail block.
  void Append(NodeId node, std::span<const PositionInfo> positions);

  /// Flushes the partially filled tail block, if any, and releases the
  /// builder buffers (the list is typically immutable afterwards; further
  /// Appends still work, reallocating as needed). Idempotent.
  void Finish() {
    FlushPending();
    std::vector<PendingEntry>().swap(pending_);
    std::vector<PositionInfo>().swap(pending_positions_);
  }

  size_t num_entries() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }
  size_t total_positions() const { return total_positions_; }
  uint32_t block_size() const { return block_size_; }
  size_t num_blocks() const { return skips_.size(); }
  const SkipEntry& skip(size_t block) const { return skips_[block]; }
  const std::vector<SkipEntry>& skips() const { return skips_; }

  /// Compressed payload (concatenated block bytes).
  const std::string& data() const { return data_; }

  /// Total compressed footprint: payload plus skip-table bytes as laid out
  /// on disk (the serialized v2 size of this list, minus framing varints).
  size_t byte_size() const;

  /// Resident heap footprint of this list in bytes (payload + skip table
  /// capacities). This is what the list costs while the index is loaded —
  /// the memory-accounting input of InvertedIndex::MemoryUsage().
  size_t resident_bytes() const {
    return data_.capacity() + skips_.capacity() * sizeof(SkipEntry) +
           pending_.capacity() * sizeof(PendingEntry) +
           pending_positions_.capacity() * sizeof(PositionInfo);
  }

  /// One decoded entry header plus the location of its (still compressed)
  /// position bytes within data().
  struct EntryRef {
    PostingEntry header;      // node + pos_count (pos_begin unused)
    uint32_t pos_byte_begin;  // offset of the entry's position bytes
    uint32_t pos_byte_len;    // length of the entry's position bytes
  };

  /// Decodes block `block` into `entries`/`positions` (replacing their
  /// contents; entries' pos_begin index into `positions`). Returns
  /// Corruption on malformed payload bytes.
  Status DecodeBlock(size_t block, std::vector<PostingEntry>* entries,
                     std::vector<PositionInfo>* positions) const;

  /// Decodes only block `block`'s entry headers (node ids, position
  /// counts), skipping position bytes entirely.
  Status DecodeBlockEntries(size_t block, std::vector<EntryRef>* entries) const;

  /// Decodes the PosList of one entry previously returned by
  /// DecodeBlockEntries (replacing `positions`).
  Status DecodePositions(const EntryRef& entry,
                         std::vector<PositionInfo>* positions) const;

  /// Reassembles a list from its serialized parts (index_io v2 load path).
  /// The skip table and payload are validated lazily by DecodeBlock.
  static BlockPostingList FromParts(uint32_t block_size, uint64_t num_entries,
                                    uint64_t total_positions,
                                    std::vector<SkipEntry> skips, std::string data);

 private:
  void FlushPending();

  uint32_t block_size_;
  size_t num_entries_ = 0;
  size_t total_positions_ = 0;
  std::string data_;
  std::vector<SkipEntry> skips_;

  // Entries accumulated for the block currently being built.
  struct PendingEntry {
    NodeId node;
    uint32_t pos_begin;
    uint32_t pos_count;
  };
  std::vector<PendingEntry> pending_;
  std::vector<PositionInfo> pending_positions_;
};

struct DecodedBlock;      // index/decoded_block_cache.h
class DecodedBlockCache;  // index/decoded_block_cache.h

/// Cursor over a BlockPostingList: the sequential ListCursor API plus
/// skip-based seeking. Entry headers are bulk-decoded one block at a time
/// — one tight pointer-varint loop per block — into either a reusable
/// cursor-owned arena or, when a DecodedBlockCache is attached, a cached
/// block shared by every cursor of the query. PosLists decode lazily per
/// entry. GetPositions() spans stay valid until the cursor moves to a
/// different entry.
class BlockListCursor {
 public:
  /// `list` may be null (OOV token): the cursor is immediately exhausted.
  /// `cache`, when non-null, must outlive the cursor; block loads are then
  /// served from / inserted into it.
  explicit BlockListCursor(const BlockPostingList* list,
                           EvalCounters* counters = nullptr,
                           DecodedBlockCache* cache = nullptr)
      : list_(list), counters_(counters), cache_(cache) {}

  // Move-only: `entries_` may point into the cursor's own arena, so the
  // (out-of-line) move re-anchors it and copies are disallowed.
  BlockListCursor(BlockListCursor&& o) noexcept { *this = std::move(o); }
  BlockListCursor& operator=(BlockListCursor&& o) noexcept;
  BlockListCursor(const BlockListCursor&) = delete;
  BlockListCursor& operator=(const BlockListCursor&) = delete;

  /// Advances to the next entry and returns its node id, or kInvalidNode
  /// when the list is exhausted. The first call lands on the first entry.
  NodeId NextEntry();

  /// Positions the cursor on the first entry with node id >= `target` and
  /// returns that id (kInvalidNode if no such entry). Starts the cursor if
  /// needed. Seeking backwards is rejected: if the current entry already
  /// has node id >= target the cursor does not move.
  NodeId SeekEntry(NodeId target);

  /// PosList of the current entry (decoded on first call per entry); the
  /// cursor must be on an entry.
  std::span<const PositionInfo> GetPositions();

  /// Position count of the current entry — free, no position decode.
  uint32_t pos_count() const { return (*entries_)[idx_].header.pos_count; }

  NodeId current_node() const { return node_; }
  bool exhausted() const { return exhausted_; }

 private:
  /// Bulk-decodes block `block`'s entry headers (through the cache when one
  /// is attached) and parks the cursor before its first entry. Position
  /// bytes stay untouched until GetPositions().
  bool LoadBlock(size_t block);

  const BlockPostingList* list_;
  EvalCounters* counters_;
  DecodedBlockCache* cache_;
  /// Current block's decoded headers: points into `arena_` (uncached) or
  /// into `cached_` (cache-served; the shared_ptr keeps it alive across
  /// eviction).
  const std::vector<BlockPostingList::EntryRef>* entries_ = nullptr;
  std::vector<BlockPostingList::EntryRef> arena_;  // reusable decode arena
  std::shared_ptr<const DecodedBlock> cached_;
  std::vector<PositionInfo> positions_;  // lazily decoded, current entry only
  size_t positions_for_ = SIZE_MAX;      // idx_ the cache was decoded for
  size_t block_ = 0;      // decoded block index (valid when started_)
  size_t idx_ = 0;        // entry index within the decoded block
  bool started_ = false;
  bool exhausted_ = false;
  NodeId node_ = kInvalidNode;
};

}  // namespace fts

#endif  // FTS_INDEX_BLOCK_POSTING_LIST_H_
