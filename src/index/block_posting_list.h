// Block-compressed, skip-seekable posting storage (the v2..v5 index layouts).
//
// A BlockPostingList stores the same logical (cn, PosList) sequence as a
// PostingList, but packed into fixed-size blocks (kDefaultBlockSize entries)
// of varint-coded deltas: node ids are delta-coded within a block (first id
// absolute, so every block decodes independently), and positions are coded
// as in the v1 stream (offset/sentence/paragraph deltas) behind a per-entry
// byte-length, so entry headers decode without touching position bytes.
// Each block is fronted by a skip header (max_node, byte_offset,
// entry_count), so a cursor can locate the unique block that may contain a
// target node with a binary search over headers and decode only that block
// — O(log #blocks) probes plus one block decode, instead of a linear scan
// of the whole list.
//
// BlockListCursor exposes the sequential API of ListCursor (NextEntry /
// GetPositions) plus SeekEntry(target). Entry headers (node id, position
// count) are bulk-decoded a block at a time — one tight loop over the
// pointer varint primitives (common/varint.h) into a reusable arena or a
// shared DecodedBlockCache (index/decoded_block_cache.h) — and an entry's
// PosList is decoded lazily on first GetPositions(), so node-level
// evaluation (BOOL merges, zig-zag alignment) never pays for position
// bytes it skips. All block decodes, cache hits/misses, and skip probes
// are charged to EvalCounters so benchmarks can separate the paper's
// sequential-access model from the skip machinery.
//
// Payload bytes are either owned (built lists) or a string_view slice of
// the index's shared IndexSource (loaded lists — heap buffer or mmap'd
// file region). Lists loaded lazily from a v3 file carry per-block
// checksums and validate each block — checksum plus structure — on its
// first decode, memoized per block; a first-touch failure is reported
// through the cursor's sticky status() and the cursor fails closed.

#ifndef FTS_INDEX_BLOCK_POSTING_LIST_H_
#define FTS_INDEX_BLOCK_POSTING_LIST_H_

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "index/inverted_index.h"

namespace fts {

/// Compressed counterpart of PostingList. Immutable once built (append-only
/// while building; appends must use strictly increasing node ids).
class BlockPostingList {
 public:
  static constexpr uint32_t kDefaultBlockSize = 128;

  /// Per-block payload encodings (the v5 hybrid format). The builder
  /// classifies each sealed block: sparse blocks keep the varint-delta
  /// layout; blocks whose id span is within kDenseSpanFactor of their
  /// entry count become fixed-width bitset blocks — a base id plus
  /// little-endian 64-bit words with one bit per present id, followed by
  /// the per-entry position-count stream, position-byte-length stream and
  /// concatenated position bytes. Bitset blocks decode by bit expansion
  /// (and AND at word level in the BOOL zig-zag fast path); cursors,
  /// caches, block-max and tombstones are all encoding-transparent.
  static constexpr uint8_t kEncodingVarint = 0;
  static constexpr uint8_t kEncodingBitset = 1;

  /// Dense classification: at least this many entries spanning at most
  /// kDenseSpanFactor * entry_count ids (>= 1/4 of the span present).
  static constexpr uint32_t kMinDenseEntries = 16;
  static constexpr uint32_t kDenseSpanFactor = 4;

  /// Skip header of one block. `byte_offset` points at the block's first
  /// byte inside data(); `max_node` is the id of its last entry. `max_tf`
  /// is the largest per-entry position count in the block — the block-max
  /// statistic score models turn into an impact upper bound so top-k
  /// evaluation can skip blocks that cannot beat the heap threshold. It is
  /// populated by the builder and by v4/v5 loads; v2/v3 loads leave it 0
  /// and clear has_block_max(), which disables score-based skipping for
  /// the list (full evaluation fallback). `encoding` selects the block's
  /// payload layout (kEncodingVarint / kEncodingBitset); it is serialized
  /// only by the v5 format — every block of a v<=4 file is varint-coded.
  struct SkipEntry {
    NodeId max_node = 0;
    uint32_t byte_offset = 0;
    uint32_t entry_count = 0;
    uint32_t max_tf = 0;
    uint8_t encoding = kEncodingVarint;
  };

  /// Process-wide default for whether the builder may emit bitset blocks.
  /// Initialized once from the environment (FTS_DISABLE_BITSET_BLOCKS=1
  /// pins everything to varint — the differential axis that proves the
  /// hybrid format changes no result). Returns the previous value so tests
  /// can restore it.
  static bool SetDenseBlocksEnabledByDefault(bool enabled);
  static bool DenseBlocksEnabledByDefault();

  /// Per-list override of the process default; only affects blocks sealed
  /// after the call (set it before the first Append).
  void set_dense_blocks(bool enabled) { dense_enabled_ = enabled; }

  /// True when any block of this list is bitset-encoded. Legacy (v<=4)
  /// saves must transcode such lists to all-varint first — an old magic
  /// must never front a payload old readers cannot parse.
  bool has_bitset_blocks() const {
    for (const SkipEntry& s : skips_) {
      if (s.encoding != kEncodingVarint) return true;
    }
    return false;
  }

  /// Re-encodes this list with bitset blocks disabled (identical logical
  /// contents, every block varint-coded). Used by the v<=4 save paths and
  /// the encoding-differential tests.
  BlockPostingList ToVarintOnly() const;

  explicit BlockPostingList(uint32_t block_size = kDefaultBlockSize)
      : block_size_(block_size == 0 ? kDefaultBlockSize : block_size) {}

  /// Compresses an existing raw list.
  static BlockPostingList FromPostingList(const PostingList& raw,
                                          uint32_t block_size = kDefaultBlockSize);

  /// Decompresses back to the raw random-access form.
  PostingList Materialize() const;

  /// Appends one entry; node ids must be strictly increasing. Call Finish()
  /// after the last Append to flush the tail block.
  void Append(NodeId node, std::span<const PositionInfo> positions);

  /// Flushes the partially filled tail block, if any, and releases the
  /// builder buffers (the list is typically immutable afterwards; further
  /// Appends still work, reallocating as needed). Idempotent.
  void Finish() {
    FlushPending();
    std::vector<PendingEntry>().swap(pending_);
    std::vector<PositionInfo>().swap(pending_positions_);
  }

  size_t num_entries() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }
  size_t total_positions() const { return total_positions_; }
  uint32_t block_size() const { return block_size_; }
  size_t num_blocks() const { return skips_.size(); }
  const SkipEntry& skip(size_t block) const { return skips_[block]; }
  const std::vector<SkipEntry>& skips() const { return skips_; }

  /// True when every skip entry carries a trustworthy max_tf (built lists
  /// and v4 loads). False for v2/v3 loads, whose skip directories predate
  /// the statistic — block-max evaluation must then treat every block's
  /// impact upper bound as unbounded (full evaluation fallback).
  bool has_block_max() const { return has_block_max_; }

  /// Compressed payload (concatenated block bytes). Built lists own their
  /// bytes; loaded lists borrow a slice of the index's IndexSource (heap
  /// buffer or mmap'd file region), which the owning InvertedIndex keeps
  /// alive.
  std::string_view data() const {
    return view_.data() != nullptr ? view_ : std::string_view(owned_);
  }

  /// Total compressed footprint: payload plus skip-table bytes as laid out
  /// on disk (the serialized v2 size of this list, minus framing varints).
  size_t byte_size() const;

  /// Resident heap footprint of this list in bytes (owned payload + skip
  /// table + validation bookkeeping capacities). This is what the list
  /// costs while the index is loaded — the memory-accounting input of
  /// InvertedIndex::MemoryUsage(). Payload bytes borrowed from an
  /// IndexSource are charged to the source, not to the list.
  size_t resident_bytes() const {
    return owned_.capacity() + skips_.capacity() * sizeof(SkipEntry) +
           block_checksums_.capacity() * sizeof(uint32_t) +
           (block_verified_ != nullptr ? skips_.size() : 0) +
           pending_.capacity() * sizeof(PendingEntry) +
           pending_positions_.capacity() * sizeof(PositionInfo);
  }

  /// One decoded entry header plus the location of its (still compressed)
  /// position bytes within data().
  struct EntryRef {
    PostingEntry header;      // node + pos_count (pos_begin unused)
    uint32_t pos_byte_begin;  // offset of the entry's position bytes
    uint32_t pos_byte_len;    // length of the entry's position bytes
  };

  /// Decodes block `block` into `entries`/`positions` (replacing their
  /// contents; entries' pos_begin index into `positions`). Returns
  /// Corruption on malformed payload bytes.
  Status DecodeBlock(size_t block, std::vector<PostingEntry>* entries,
                     std::vector<PositionInfo>* positions) const;

  /// Decodes only block `block`'s entry headers (node ids, position
  /// counts), skipping position bytes entirely. Under first-touch
  /// validation this additionally verifies the block's payload checksum
  /// and structural invariants on its first decode and memoizes success
  /// per block, so the bulk-decode hot path and the DecodedBlockCache pay
  /// the checksum once per block per index lifetime. `counters`, when
  /// non-null, is charged simd_groups_decoded for each bulk group decode
  /// the dispatched SIMD arm performed.
  Status DecodeBlockEntries(size_t block, std::vector<EntryRef>* entries,
                            EvalCounters* counters = nullptr) const;

  /// Decodes the PosList of one entry previously returned by
  /// DecodeBlockEntries (replacing `positions`).
  Status DecodePositions(const EntryRef& entry,
                         std::vector<PositionInfo>* positions,
                         EvalCounters* counters = nullptr) const;

  /// Decodes the PosLists of every entry in `refs[from..to)` — a slice of
  /// one decoded block's entries — in a single pass: the regions must tile
  /// back to back (true by construction for bitset blocks, whose layout
  /// concatenates all position bytes exactly so this pass can run the
  /// dispatched group decoder at full width instead of stopping at every
  /// ~17-byte entry boundary). On success `positions` holds the
  /// concatenated PosLists and `offsets[i]`/`offsets[i+1]` bound entry
  /// `from + i`'s slice. Returns non-OK on any structural anomaly without
  /// any partial contract: callers fall back to the per-entry
  /// DecodePositions path, whose exact first-touch checks re-surface the
  /// same Corruption. `delta_scratch` is caller-owned reusable scratch.
  Status DecodeBlockPositionsBulk(std::span<const EntryRef> refs, size_t from,
                                  size_t to,
                                  std::vector<uint32_t>* delta_scratch,
                                  std::vector<PositionInfo>* positions,
                                  std::vector<uint32_t>* offsets,
                                  EvalCounters* counters = nullptr) const;

  /// Reassembles a list from its serialized parts with an owned payload
  /// copy (index_io v1 re-encode helpers and tests). `has_block_max`
  /// declares whether the skip entries carry valid max_tf values.
  static BlockPostingList FromParts(uint32_t block_size, uint64_t num_entries,
                                    uint64_t total_positions,
                                    std::vector<SkipEntry> skips, std::string data,
                                    bool has_block_max = false);

  /// Reassembles a list whose payload is a borrowed slice of an
  /// IndexSource (the v2/v3 load paths). `checksums`, when non-empty, is
  /// the per-block FNV-1a32 payload checksum table of the v3 format; with
  /// `first_touch_validation` set, each block's checksum and structure are
  /// verified on its first decode (memoized — see DecodeBlockEntries)
  /// instead of at load time. Without it, checksums are verified by the
  /// load-time ValidateBlocks pass and queries never re-check.
  static BlockPostingList FromParts(uint32_t block_size, uint64_t num_entries,
                                    uint64_t total_positions,
                                    std::vector<SkipEntry> skips,
                                    std::string_view data,
                                    std::vector<uint32_t> checksums,
                                    bool first_touch_validation,
                                    bool has_block_max = false);

  /// True when block `block` has already passed (or never needs) first-touch
  /// validation. Cursors use the transition to charge
  /// EvalCounters::first_touch_validations.
  bool BlockVerified(size_t block) const {
    return block_verified_ == nullptr ||
           block_verified_[block].load(std::memory_order_acquire) != 0;
  }

  /// Process-unique id of this list, stable across moves (the moved-to list
  /// keeps the id; a moved-from list is dead). Decoded-block caches key on
  /// (uid, block) instead of the object address so that once a segment
  /// generation retires and its heap is reused, a new list at the same
  /// address can never be served another list's cached blocks. Uids are
  /// never reused within a process.
  uint64_t uid() const { return uid_; }

 private:
  void FlushPending();
  void FlushPendingBitset(SkipEntry* skip);
  Status DecodeBitsetBlock(size_t block, const SkipEntry& skip,
                           std::string_view payload, size_t end,
                           std::vector<EntryRef>* entries,
                           EvalCounters* counters) const;
  static uint64_t NextUid();

  uint32_t block_size_;
  /// Whether FlushPending may classify blocks as dense (bitset-encoded).
  bool dense_enabled_ = DenseBlocksEnabledByDefault();
  uint64_t uid_ = NextUid();
  size_t num_entries_ = 0;
  size_t total_positions_ = 0;
  /// Built lists always compute max_tf; FromParts loads declare it.
  bool has_block_max_ = true;
  /// Built (and v1-re-encoded) lists own their payload here; loaded lists
  /// leave it empty and set view_ instead.
  std::string owned_;
  /// Borrowed payload slice into the owning index's IndexSource.
  std::string_view view_;
  std::vector<SkipEntry> skips_;
  /// v3 per-block payload checksums (FNV-1a32); empty for built lists and
  /// v1/v2 loads (those validate eagerly under the envelope checksum).
  std::vector<uint32_t> block_checksums_;
  /// First-touch validation memo, one flag per block; null when every block
  /// is already trusted (built lists, eagerly validated loads). Atomic so
  /// concurrent read-only queries over a shared index may race benignly on
  /// the memo without UB.
  mutable std::unique_ptr<std::atomic<uint8_t>[]> block_verified_;

  // Entries accumulated for the block currently being built.
  struct PendingEntry {
    NodeId node;
    uint32_t pos_begin;
    uint32_t pos_count;
  };
  std::vector<PendingEntry> pending_;
  std::vector<PositionInfo> pending_positions_;
};

struct DecodedBlock;      // index/decoded_block_cache.h
class DecodedBlockCache;  // index/decoded_block_cache.h
class TombstoneSet;       // index/tombstone_set.h

/// Cursor over a BlockPostingList: the sequential ListCursor API plus
/// skip-based seeking. Entry headers are bulk-decoded one block at a time
/// — one tight pointer-varint loop per block — into either a reusable
/// cursor-owned arena or, when a DecodedBlockCache is attached, a cached
/// block shared by every cursor of the query. PosLists decode lazily per
/// entry. GetPositions() spans stay valid until the cursor moves to a
/// different entry.
class BlockListCursor {
 public:
  /// `list` may be null (OOV token): the cursor is immediately exhausted.
  /// `cache`, when non-null, must outlive the cursor; block loads are then
  /// served from / inserted into it. `tombstones`, when non-null, filters
  /// deleted entries at the cursor level: NextEntry/SeekEntry skip
  /// tombstoned node ids, so the cursor never rests on a deleted entry and
  /// engines above see only live nodes (docs/ingestion.md).
  explicit BlockListCursor(const BlockPostingList* list,
                           EvalCounters* counters = nullptr,
                           DecodedBlockCache* cache = nullptr,
                           const TombstoneSet* tombstones = nullptr)
      : list_(list), counters_(counters), cache_(cache),
        tombstones_(tombstones) {}

  // Move-only: `entries_` may point into the cursor's own arena, so the
  // (out-of-line) move re-anchors it and copies are disallowed.
  BlockListCursor(BlockListCursor&& o) noexcept { *this = std::move(o); }
  BlockListCursor& operator=(BlockListCursor&& o) noexcept;
  BlockListCursor(const BlockListCursor&) = delete;
  BlockListCursor& operator=(const BlockListCursor&) = delete;

  /// Advances to the next entry and returns its node id, or kInvalidNode
  /// when the list is exhausted. The first call lands on the first entry.
  /// The within-block advance is inlined — sequential walks pay one branch
  /// and an array load per entry; block transitions, cursor start and
  /// tombstone filtering take the out-of-line slow path.
  NodeId NextEntry() {
    if (tombstones_ == nullptr && started_ && !exhausted_ &&
        idx_ + 1 < entries_->size()) {
      ++idx_;
      if (counters_ != nullptr) ++counters_->entries_scanned;
      return node_ = (*entries_)[idx_].header.node;
    }
    return NextEntrySlow();
  }

  /// Positions the cursor on the first entry with node id >= `target` and
  /// returns that id (kInvalidNode if no such entry). Starts the cursor if
  /// needed. Seeking backwards is rejected: if the current entry already
  /// has node id >= target the cursor does not move.
  NodeId SeekEntry(NodeId target);

  /// PosList of the current entry (decoded on first call per entry); the
  /// cursor must be on an entry. Returns an empty span (and sets status())
  /// if the position bytes fail first-touch validation. Serving from the
  /// whole-block bulk arena is inlined (two loads); everything else —
  /// per-entry decode, streak detection, the bulk decode itself — is
  /// out of line.
  std::span<const PositionInfo> GetPositions() {
    if (bulk_block_ == block_ && idx_ >= bulk_from_ && idx_ < bulk_to_) {
      const size_t rel = idx_ - bulk_from_;
      return {bulk_positions_.data() + bulk_offsets_[rel],
              bulk_offsets_[rel + 1] - bulk_offsets_[rel]};
    }
    return GetPositionsSlow();
  }

  /// Position count of the current entry — free, no position decode.
  uint32_t pos_count() const { return (*entries_)[idx_].header.pos_count; }

  NodeId current_node() const { return node_; }
  bool exhausted() const { return exhausted_; }

  /// Index of the block the cursor currently has decoded, or SIZE_MAX when
  /// the cursor has not started or is exhausted. Block-max evaluation uses
  /// this to avoid charging the resident block to blocks_skipped_by_score.
  size_t current_block() const {
    return started_ && !exhausted_ ? block_ : SIZE_MAX;
  }

  /// Raw bitset view of the cursor's current block when (and only when) it
  /// is bitset-encoded: `words` points at `nwords` unaligned little-endian
  /// 64-bit words whose bit i stands for node id `base + i`. Valid while
  /// the cursor stays on this block (the block has already been decoded —
  /// and first-touch validated — to position the cursor here). The BOOL
  /// zig-zag AND fast path intersects two of these at word level.
  struct DenseBlockView {
    NodeId base = 0;
    NodeId max_node = 0;
    const uint8_t* words = nullptr;
    size_t nwords = 0;
  };
  bool CurrentDenseBlock(DenseBlockView* view) const;

  /// Decoded entry headers of the current block (all entries, tombstoned
  /// included — tombstones filter cursor movement, not decode). The dense
  /// AND fast path maps bitset ranks onto this span for pos_count lookups.
  std::span<const BlockPostingList::EntryRef> block_entries() const {
    return entries_ != nullptr
               ? std::span<const BlockPostingList::EntryRef>(entries_->data(),
                                                             entries_->size())
               : std::span<const BlockPostingList::EntryRef>();
  }

  /// The tombstone filter this cursor applies (null = none). Exposed so
  /// word-level intersection can apply the same filtering the movement
  /// primitives would.
  const TombstoneSet* tombstone_filter() const { return tombstones_; }

  /// Sticky decode status. Under first-touch validation a block decode can
  /// fail at query time (lazily detected corruption); the cursor then
  /// reports exhaustion — failing closed, never returning partial garbage
  /// — and records the error here. Engines check it after draining a
  /// cursor and propagate it out of Evaluate().
  const Status& status() const { return status_; }

 private:
  /// Bulk-decodes block `block`'s entry headers (through the cache when one
  /// is attached) and parks the cursor before its first entry. Position
  /// bytes stay untouched until GetPositions().
  bool LoadBlock(size_t block);

  /// The unfiltered movement primitives; NextEntry/SeekEntry wrap them in a
  /// tombstone-skipping loop.
  NodeId NextEntryUnfiltered();
  NodeId SeekEntryUnfiltered(NodeId target);

  /// Out-of-line complements of the inlined fast paths above.
  NodeId NextEntrySlow();
  std::span<const PositionInfo> GetPositionsSlow();

  const BlockPostingList* list_;
  EvalCounters* counters_;
  DecodedBlockCache* cache_;
  const TombstoneSet* tombstones_ = nullptr;
  /// Current block's decoded headers: points into `arena_` (uncached) or
  /// into `cached_` (cache-served; the shared_ptr keeps it alive across
  /// eviction).
  const std::vector<BlockPostingList::EntryRef>* entries_ = nullptr;
  std::vector<BlockPostingList::EntryRef> arena_;  // reusable decode arena
  std::shared_ptr<const DecodedBlock> cached_;
  std::vector<PositionInfo> positions_;  // lazily decoded, current entry only
  size_t positions_for_ = SIZE_MAX;      // idx_ the cache was decoded for
  /// Bulk position arena: when GetPositions is called for
  /// kBulkStreakTrigger consecutive entries of one bitset block — the
  /// signature of a positions-heavy walk — a bounded span of the block's
  /// following PosLists decodes in one contiguous SIMD pass into these
  /// (offsets_[rel]..offsets_[rel+1] slice per entry). Spans start small
  /// and double each time the walk crosses bulk_to_: a full-block walk
  /// converges to a handful of wide decodes, while an adaptive zig-zag
  /// that streaks briefly and then skips away wastes at most one small
  /// span — measured on the fig6/fig8 predicate workloads, whose streaks
  /// run ~2 entries, a 2-entry trigger with unbounded spans cost ~20%.
  /// Selective access never triggers it, keeping per-entry laziness for
  /// one-match-per-block patterns.
  static constexpr uint32_t kBulkStreakTrigger = 3;
  static constexpr uint32_t kBulkSpanInitial = 8;
  std::vector<PositionInfo> bulk_positions_;
  std::vector<uint32_t> bulk_offsets_;
  std::vector<uint32_t> delta_scratch_;
  size_t bulk_block_ = SIZE_MAX;    // block_ the bulk arena covers
  size_t bulk_from_ = 0;            // first entry index it covers
  size_t bulk_to_ = 0;              // one past the last entry it covers
  uint32_t bulk_span_ = 0;          // entries the last bulk decode took
  size_t last_pos_block_ = SIZE_MAX;  // previous GetPositions target
  size_t last_pos_idx_ = SIZE_MAX;
  uint32_t streak_len_ = 0;         // consecutive-entry GetPositions run
  size_t block_ = 0;      // decoded block index (valid when started_)
  size_t idx_ = 0;        // entry index within the decoded block
  bool started_ = false;
  bool exhausted_ = false;
  NodeId node_ = kInvalidNode;
  Status status_;  // sticky first decode/validation error
};

}  // namespace fts

#endif  // FTS_INDEX_BLOCK_POSTING_LIST_H_
