// Inverted index: the physical data model of paper Section 5.1.2.
//
// For each token `tok` appearing in the corpus there is an inverted list
// IL_tok of entries (cn, PosList), ordered by context-node id, with PosList
// ordered by position. IL_ANY holds every position of every node. Lists are
// accessed strictly sequentially through cursors that expose exactly the
// two operations the paper's cost model allows: nextEntry() and
// getPositions(), both O(1) amortized.
//
// The only *resident* list representation is the block-compressed,
// skip-seekable BlockPostingList (index/block_posting_list.h): every engine
// — the BOOL merges, the pipelined PPRED/NPRED cursors, materialized COMP
// scans, and the scoring models — reads through BlockListCursor, with df
// and entry counts served from block headers and positions decoded lazily.
// The raw random-access PostingList below survives only as a build/load
// transient and as the oracle representation for differential tests
// (RawPostingOracle); an InvertedIndex never holds one.
//
// The index is self-contained (owns its dictionary and statistics) so it can
// be serialized and queried without the originating Corpus.

#ifndef FTS_INDEX_INVERTED_INDEX_H_
#define FTS_INDEX_INVERTED_INDEX_H_

#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "text/document.h"

namespace fts {

class TombstoneSet;  // index/tombstone_set.h

/// One (cn, PosList) pair of an inverted list. Positions live in the owning
/// PostingList's shared arena; the entry stores the [pos_begin, pos_begin +
/// pos_count) slice.
struct PostingEntry {
  NodeId node = kInvalidNode;
  uint32_t pos_begin = 0;
  uint32_t pos_count = 0;
};

/// An inverted list in raw random-access form: entries sorted by node id,
/// positions sorted by offset within each entry. Corresponds to the FTA
/// relation R_token (and IL_ANY for the ANY list). This form is never
/// resident in an InvertedIndex — it exists as a build/serialization
/// transient and as the differential-test oracle representation.
class PostingList {
 public:
  size_t num_entries() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const PostingEntry& entry(size_t i) const { return entries_[i]; }

  /// The PosList of `e`. Valid as long as this list is alive.
  std::span<const PositionInfo> positions(const PostingEntry& e) const {
    return {positions_.data() + e.pos_begin, e.pos_count};
  }

  /// Total positions across all entries.
  size_t total_positions() const { return positions_.size(); }

  /// Appends an entry; nodes must be appended in strictly increasing order
  /// with offsets strictly increasing inside the entry (checked by builder).
  void Append(NodeId node, std::span<const PositionInfo> positions);

 private:
  std::vector<PostingEntry> entries_;
  std::vector<PositionInfo> positions_;
};

/// Sequential cursor over a raw PostingList (paper Section 5.1.2). All
/// accesses are counted into `counters` (if provided) so engines report the
/// exact number of sequential list operations performed. Production engines
/// read BlockListCursor instead; this cursor drives the raw-oracle side of
/// differential tests through the very same engine code.
class ListCursor {
 public:
  /// `list` may be null (empty token): the cursor is immediately exhausted.
  /// `tombstones`, when non-null, filters deleted entries: the cursor skips
  /// tombstoned node ids and never rests on one, mirroring
  /// BlockListCursor's filtering so both sides of a differential run see
  /// identical live streams.
  explicit ListCursor(const PostingList* list, EvalCounters* counters = nullptr,
                      const TombstoneSet* tombstones = nullptr)
      : list_(list), counters_(counters), tombstones_(tombstones) {}

  /// Advances to the next entry and returns its node id, or kInvalidNode
  /// when the list is exhausted. The first call lands on the first entry.
  NodeId NextEntry();

  /// Positions the cursor on the first entry with node id >= `target` and
  /// returns that id (kInvalidNode if none remains). Starts the cursor if
  /// needed; backward seeks do not move it. This is outside the paper's
  /// sequential cost model: the binary-search probes are charged to
  /// EvalCounters::skip_checks and only the landing entry to
  /// entries_scanned (see BlockListCursor for the compressed analogue).
  NodeId SeekEntry(NodeId target);

  /// PosList of the current entry; NextEntry() must have returned a node.
  std::span<const PositionInfo> GetPositions();

  /// Position count of the current entry without reading the PosList.
  uint32_t pos_count() const { return list_->entry(idx_).pos_count; }

  /// Node id of the current entry (kInvalidNode before first NextEntry()
  /// or after exhaustion).
  NodeId current_node() const { return node_; }

  bool exhausted() const { return exhausted_; }

  /// Raw lists are in-memory and never fail to decode; provided so the
  /// engines' templated merge code can check cursor status uniformly with
  /// BlockListCursor (whose first-touch decodes can surface Corruption).
  const Status& status() const {
    static const Status kOk;
    return kOk;
  }

 private:
  NodeId NextEntryUnfiltered();
  NodeId SeekEntryUnfiltered(NodeId target);

  const PostingList* list_;
  EvalCounters* counters_;
  const TombstoneSet* tombstones_ = nullptr;
  size_t idx_ = 0;
  bool started_ = false;
  bool exhausted_ = false;
  NodeId node_ = kInvalidNode;
};

/// Raw-representation oracle table for differential tests — defined in
/// testing/raw_posting_oracle.h; engines hold only a pointer to one.
struct RawPostingOracle;

/// Corpus shape parameters from the paper's complexity model (Section 5.1.2
/// and Section 6.2). Max values are the conservative parameters used in the
/// complexity bounds; averages are reported for context.
struct IndexStats {
  uint64_t cnodes = 0;               ///< |N|
  uint64_t total_positions = 0;      ///< sum of node lengths
  uint32_t pos_per_cnode = 0;        ///< max positions in a node
  uint32_t entries_per_token = 0;    ///< max entries in a token list
  uint32_t pos_per_entry = 0;        ///< max positions in a list entry
  double avg_pos_per_cnode = 0;
  double avg_entries_per_token = 0;
  double avg_pos_per_entry = 0;

  std::string ToString() const;
};

class BlockPostingList;  // index/block_posting_list.h
class IndexSource;       // index/index_source.h
class PairIndex;         // index/pair_index.h

/// Where a loaded index's posting payload bytes live (see
/// index/index_source.h and docs/index_format.md for the full matrix).
enum class IndexStorage {
  /// Lists own their bytes (built in memory, or v1 loads that re-encode).
  kOwned,
  /// Lists view into one shared heap buffer (LoadIndexFromString, eager
  /// LoadIndexFromFile).
  kHeapBuffer,
  /// Lists view into an mmap'd read-only file region; block payloads are
  /// page-cache resident and fault in on first decode.
  kMapped,
};

/// Immutable inverted index over a corpus. Build with IndexBuilder; persist
/// with SaveIndex/LoadIndex (index/index_io.h).
///
/// Every list is resident exclusively in its block-compressed,
/// skip-seekable form (BlockPostingList). Engines in both cursor modes read
/// through BlockListCursor — kSequential is plain NextEntry() iteration
/// over the decoded blocks, kSeek additionally uses the skip tables — and
/// document frequencies come from the block headers without decoding any
/// payload. There is no decoded mirror: raw PostingLists exist only as
/// build/load transients and as the differential-test oracle.
class InvertedIndex {
 public:
  InvertedIndex();
  ~InvertedIndex();
  InvertedIndex(InvertedIndex&&) noexcept;
  InvertedIndex& operator=(InvertedIndex&&) noexcept;

  /// Block-compressed list for a token id; nullptr if out of range (OOV
  /// tokens have empty, not missing, semantics: queries on them match
  /// nothing).
  const BlockPostingList* block_list(TokenId token) const;

  /// Block-compressed list by token text (normalized spelling); nullptr if
  /// OOV.
  const BlockPostingList* block_list_for_text(std::string_view token) const;

  /// Block-compressed IL_ANY: one entry per context node holding all its
  /// positions.
  const BlockPostingList& block_any_list() const;

  /// Dictionary lookups.
  TokenId LookupToken(std::string_view token) const;
  const std::string& token_text(TokenId id) const { return token_texts_[id]; }
  size_t vocabulary_size() const { return token_texts_.size(); }

  size_t num_nodes() const { return stats_.cnodes; }
  const IndexStats& stats() const { return stats_; }

  /// Document frequency of `token`: number of nodes containing it. Served
  /// from the block-list header — no block payload is decoded.
  uint32_t df(TokenId token) const;

  /// Number of distinct tokens in node `n` (TF-IDF normalization input).
  uint32_t unique_tokens(NodeId n) const { return unique_tokens_[n]; }

  /// L2 norm of node `n`'s TF-IDF vector (||n||_2 in paper Section 3.1).
  double node_norm(NodeId n) const { return node_norms_[n]; }

  /// Minimum over all nodes of max(1, unique_tokens(n)) * node_norm(n) —
  /// the smallest denominator any TF-IDF LeafScore can see. Score models
  /// divide by it to turn a block's max_tf into a sound per-block impact
  /// upper bound. +infinity for an empty index (no node, no bound needed).
  double min_uniq_norm() const { return min_uniq_norm_; }

  /// Resident heap footprint of the index in bytes: compressed posting
  /// payloads (owned or in the heap source buffer) + skip tables +
  /// dictionary + per-node scalars. Counted from container capacities, so
  /// it reflects what the process actually holds. Mmap'd payload bytes are
  /// NOT included — they are page-cache backed and reclaimable; see
  /// MappedBytes().
  size_t MemoryUsage() const;

  /// Where the posting payload bytes live.
  IndexStorage storage() const;

  /// Size of the mmap'd file region backing this index (0 unless
  /// storage() == kMapped).
  size_t MappedBytes() const;

  /// True when per-block validation is deferred to first decode (lazy mmap
  /// loads of the v3 format) rather than performed at load time.
  bool lazy_validation() const { return lazy_validation_; }

  /// Auxiliary (frequent-term, other-term) pair lists for fast phrase and
  /// NEAR/k evaluation (index/pair_index.h), or nullptr when the index was
  /// built (or loaded) without them — the planner then always uses the
  /// position pipeline.
  const PairIndex* pair_index() const { return pair_index_.get(); }

 private:
  friend class IndexBuilder;
  friend struct IndexIoAccess;  // index_io.cc loaders

  /// Fully validates every resident block list by streaming a decode of all
  /// entry headers and position payloads (transient, O(block) memory):
  /// node ids must increase across blocks and the decoded entry/position
  /// totals must match the list headers. Returns Corruption on any
  /// malformed payload, so cursors never see invalid bytes at query time.
  Status ValidateBlocks() const;

  /// Refreshes min_uniq_norm_ from the per-node scalar tables; called by
  /// the builder after computing norms and by the loaders after parsing
  /// the scalar section.
  void RecomputeMinUniqNorm();

  std::vector<BlockPostingList> block_lists_;          // indexed by TokenId
  std::unique_ptr<BlockPostingList> block_any_list_;   // compressed IL_ANY
  std::unique_ptr<PairIndex> pair_index_;              // nullable
  std::vector<std::string> token_texts_;    // TokenId -> spelling
  std::unordered_map<std::string, TokenId> token_ids_;
  std::vector<uint32_t> unique_tokens_;     // NodeId -> distinct token count
  std::vector<double> node_norms_;          // NodeId -> ||n||_2
  double min_uniq_norm_ = std::numeric_limits<double>::infinity();
  IndexStats stats_;
  /// Byte storage the lists' data() views borrow from (null when every
  /// list owns its bytes). Shared so moves/loans never dangle.
  std::shared_ptr<IndexSource> source_;
  bool lazy_validation_ = false;
};

}  // namespace fts

#endif  // FTS_INDEX_INVERTED_INDEX_H_
