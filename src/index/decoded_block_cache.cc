#include "index/decoded_block_cache.h"

#include <algorithm>
#include <cassert>

#include "index/shared_block_cache.h"

namespace fts {

bool DecodedBlockCache::FitsWorkingSet(const InvertedIndex& index,
                                       std::span<const std::string> tokens,
                                       int any_scans, size_t capacity) {
  size_t blocks = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    // Count each distinct list once (callers pass tokens sorted or small).
    bool seen = false;
    for (size_t j = 0; j < i; ++j) {
      if (tokens[j] == tokens[i]) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    const BlockPostingList* list = index.block_list_for_text(tokens[i]);
    if (list != nullptr) blocks += list->num_blocks();
  }
  if (any_scans > 0) blocks += index.block_any_list().num_blocks();
  return blocks <= capacity;
}

bool DecodedBlockCache::ShouldAttach(const InvertedIndex& index,
                                     std::vector<std::string> tokens,
                                     int any_scans, size_t capacity) {
  std::sort(tokens.begin(), tokens.end());
  const bool repeated =
      any_scans > 1 ||
      std::adjacent_find(tokens.begin(), tokens.end()) != tokens.end();
  if (!repeated) return false;
  return FitsWorkingSet(index, tokens, any_scans, capacity);
}

std::shared_ptr<const DecodedBlock> DecodedBlockCache::GetOrDecode(
    const BlockPostingList& list, size_t block, EvalCounters* counters,
    Status* status) {
  const Key key{list.uid(), block};
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++hits_;
    if (counters != nullptr) ++counters->cache_hits;
    // Refresh LRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->block;
  }

  ++misses_;
  if (counters != nullptr) ++counters->cache_misses;

  std::shared_ptr<const DecodedBlock> decoded;
  if (shared_ != nullptr) {
    // Two-level lookup: an L1 miss consults the cross-query L2 before
    // decoding, so blocks another query already paid for are adopted into
    // this query's L1 without any decode work.
    decoded = shared_->GetOrDecode(list, block, counters, status);
    if (decoded == nullptr) return nullptr;
  } else {
    auto fresh = std::make_shared<DecodedBlock>();
    Status s = list.DecodeBlockEntries(block, &fresh->entries, counters);
    if (!s.ok()) {
      // Lazily detected corruption (first-touch validation on an mmap'd
      // index): reported like a failed direct decode — the cursor exhausts
      // and carries the status up to its engine.
      if (status != nullptr && status->ok()) *status = std::move(s);
      return nullptr;
    }
    if (fresh->entries.empty()) return nullptr;
    if (counters != nullptr) {
      ++counters->blocks_decoded;
      ++counters->blocks_bulk_decoded;
      counters->entries_decoded += fresh->entries.size();
    }
    decoded = std::move(fresh);
  }

  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front(Slot{key, decoded});
  map_.emplace(key, lru_.begin());
  return decoded;
}

}  // namespace fts
