// Writer-side segment building (the ingest half of docs/ingestion.md).
//
// A SegmentBuffer accumulates documents in memory (an ordinary Corpus);
// Seal() runs IndexBuilder over it and hands back an immutable segment —
// just an InvertedIndex, so a sealed segment serializes, mmaps, caches and
// evaluates exactly like a one-shot index. Durability is write-then-
// rename: SaveSegmentAtomic serializes to `<path>.tmp` and renames into
// place, so a crash mid-flush leaves either the old file or no file, never
// a torn one.

#ifndef FTS_INDEX_SEGMENT_H_
#define FTS_INDEX_SEGMENT_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "index/index_builder.h"
#include "index/inverted_index.h"
#include "text/corpus.h"

namespace fts {

/// In-memory accumulation buffer for the segment under construction. Not
/// thread-safe: the owning writer (IngestService) serializes access.
class SegmentBuffer {
 public:
  /// Appends one document (tokenizing it) and returns its id local to this
  /// segment.
  NodeId Add(std::string_view text) { return corpus_.AddDocument(text); }

  size_t num_docs() const { return corpus_.num_nodes(); }
  bool empty() const { return corpus_.num_nodes() == 0; }
  const Corpus& corpus() const { return corpus_; }

  /// Builds the immutable segment for everything added so far and resets
  /// the buffer for the next segment. `options` rides through to
  /// IndexBuilder — a sealed segment carries pair lists exactly when its
  /// owner asks for them.
  std::shared_ptr<const InvertedIndex> Seal(
      const IndexBuildOptions& options = {});

 private:
  Corpus corpus_;
};

/// Serializes `segment` to `path` crash-consistently: writes `<path>.tmp`
/// and renames it into place (rename(2) is atomic within a filesystem).
Status SaveSegmentAtomic(const InvertedIndex& segment, const std::string& path);

}  // namespace fts

#endif  // FTS_INDEX_SEGMENT_H_
