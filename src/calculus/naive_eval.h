// Reference evaluator for FTC queries: direct first-order-logic evaluation
// per context node, quantifying over the node's positions.
//
// Deliberately simple and obviously correct — it is the oracle against which
// every optimized engine (BOOL merge, PPRED/NPRED pipelines, COMP algebra)
// is differentially tested. Its complexity is O(pos_per_cnode^quantifiers)
// per node, so only use it on small corpora.

#ifndef FTS_CALCULUS_NAIVE_EVAL_H_
#define FTS_CALCULUS_NAIVE_EVAL_H_

#include <vector>

#include "calculus/ftc.h"
#include "common/status.h"
#include "text/corpus.h"

namespace fts {

/// Evaluates FTC queries by brute force over a Corpus.
class NaiveCalculusEvaluator {
 public:
  /// `corpus` must outlive the evaluator.
  explicit NaiveCalculusEvaluator(const Corpus* corpus) : corpus_(corpus) {}

  /// Nodes satisfying `q`, in increasing id order.
  StatusOr<std::vector<NodeId>> Evaluate(const CalcQuery& q) const;

  /// Truth value of a closed expression on one node.
  StatusOr<bool> EvalOnNode(const CalcExprPtr& e, NodeId node) const;

 private:
  const Corpus* corpus_;
};

}  // namespace fts

#endif  // FTS_CALCULUS_NAIVE_EVAL_H_
