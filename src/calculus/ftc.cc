#include "calculus/ftc.h"

namespace fts {

// The private constructor is only reachable from the factories, which fully
// initialize each node before handing out the immutable pointer.

CalcExprPtr CalcExpr::HasPos(VarId var) {
  auto e = std::shared_ptr<CalcExpr>(new CalcExpr());
  e->kind_ = Kind::kHasPos;
  e->var_ = var;
  return e;
}

CalcExprPtr CalcExpr::HasToken(VarId var, std::string token) {
  auto e = std::shared_ptr<CalcExpr>(new CalcExpr());
  e->kind_ = Kind::kHasToken;
  e->var_ = var;
  e->token_ = std::move(token);
  return e;
}

CalcExprPtr CalcExpr::Pred(const PositionPredicate* pred, std::vector<VarId> vars,
                           std::vector<int64_t> consts) {
  auto e = std::shared_ptr<CalcExpr>(new CalcExpr());
  e->kind_ = Kind::kPred;
  e->pred_.pred = pred;
  e->pred_.vars = std::move(vars);
  e->pred_.consts = std::move(consts);
  return e;
}

CalcExprPtr CalcExpr::Not(CalcExprPtr child) {
  auto e = std::shared_ptr<CalcExpr>(new CalcExpr());
  e->kind_ = Kind::kNot;
  e->left_ = std::move(child);
  return e;
}

CalcExprPtr CalcExpr::And(CalcExprPtr l, CalcExprPtr r) {
  auto e = std::shared_ptr<CalcExpr>(new CalcExpr());
  e->kind_ = Kind::kAnd;
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return e;
}

CalcExprPtr CalcExpr::Or(CalcExprPtr l, CalcExprPtr r) {
  auto e = std::shared_ptr<CalcExpr>(new CalcExpr());
  e->kind_ = Kind::kOr;
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return e;
}

CalcExprPtr CalcExpr::Exists(VarId var, CalcExprPtr body) {
  auto e = std::shared_ptr<CalcExpr>(new CalcExpr());
  e->kind_ = Kind::kExists;
  e->var_ = var;
  e->left_ = std::move(body);
  return e;
}

CalcExprPtr CalcExpr::ForAll(VarId var, CalcExprPtr body) {
  auto e = std::shared_ptr<CalcExpr>(new CalcExpr());
  e->kind_ = Kind::kForAll;
  e->var_ = var;
  e->left_ = std::move(body);
  return e;
}

std::string CalcExpr::ToString() const {
  switch (kind_) {
    case Kind::kHasPos:
      return "hasPos(n,p" + std::to_string(var_) + ")";
    case Kind::kHasToken:
      return "hasToken(p" + std::to_string(var_) + ",'" + token_ + "')";
    case Kind::kPred: {
      std::string out(pred_.pred->name());
      out += "(";
      bool first = true;
      for (VarId v : pred_.vars) {
        if (!first) out += ",";
        first = false;
        out += "p" + std::to_string(v);
      }
      for (int64_t c : pred_.consts) {
        out += "," + std::to_string(c);
      }
      out += ")";
      return out;
    }
    case Kind::kNot:
      return "not(" + left_->ToString() + ")";
    case Kind::kAnd:
      return "(" + left_->ToString() + " and " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " or " + right_->ToString() + ")";
    case Kind::kExists:
      return "exists p" + std::to_string(var_) + "(" + left_->ToString() + ")";
    case Kind::kForAll:
      return "forall p" + std::to_string(var_) + "(" + left_->ToString() + ")";
  }
  return "?";
}

std::string CalcQuery::ToString() const {
  return "{node | SearchContext(node) and " +
         (expr ? expr->ToString() : std::string("true")) + "}";
}

}  // namespace fts
