#include "calculus/naive_eval.h"

#include <unordered_map>

#include "calculus/analysis.h"

namespace fts {

namespace {

// Environment binding in-scope variables to positions (by index into the
// node's position array, so hasToken can read the parallel token array).
using Env = std::unordered_map<VarId, size_t>;

bool EvalRec(const CalcExprPtr& e, const TokenizedDocument& doc, const Corpus& corpus,
             Env* env) {
  switch (e->kind()) {
    case CalcExpr::Kind::kHasPos:
      // A bound variable always denotes a position of this node (the safe
      // quantifier forms guarantee it), so hasPos is true whenever bound.
      return env->count(e->var()) > 0;
    case CalcExpr::Kind::kHasToken: {
      auto it = env->find(e->var());
      if (it == env->end()) return false;
      TokenId want = corpus.LookupToken(e->token());
      if (want == kInvalidToken) return false;
      return doc.tokens[it->second] == want;
    }
    case CalcExpr::Kind::kPred: {
      std::vector<PositionInfo> args;
      args.reserve(e->pred().vars.size());
      for (VarId v : e->pred().vars) {
        auto it = env->find(v);
        if (it == env->end()) return false;
        args.push_back(doc.positions[it->second]);
      }
      return e->pred().pred->Eval(args, e->pred().consts);
    }
    case CalcExpr::Kind::kNot:
      return !EvalRec(e->child(), doc, corpus, env);
    case CalcExpr::Kind::kAnd:
      return EvalRec(e->left(), doc, corpus, env) &&
             EvalRec(e->right(), doc, corpus, env);
    case CalcExpr::Kind::kOr:
      return EvalRec(e->left(), doc, corpus, env) ||
             EvalRec(e->right(), doc, corpus, env);
    case CalcExpr::Kind::kExists: {
      for (size_t i = 0; i < doc.positions.size(); ++i) {
        (*env)[e->var()] = i;
        if (EvalRec(e->child(), doc, corpus, env)) {
          env->erase(e->var());
          return true;
        }
      }
      env->erase(e->var());
      return false;
    }
    case CalcExpr::Kind::kForAll: {
      for (size_t i = 0; i < doc.positions.size(); ++i) {
        (*env)[e->var()] = i;
        if (!EvalRec(e->child(), doc, corpus, env)) {
          env->erase(e->var());
          return false;
        }
      }
      env->erase(e->var());
      return true;
    }
  }
  return false;
}

}  // namespace

StatusOr<std::vector<NodeId>> NaiveCalculusEvaluator::Evaluate(const CalcQuery& q) const {
  FTS_RETURN_IF_ERROR(ValidateQuery(q));
  std::vector<NodeId> out;
  for (NodeId n = 0; n < corpus_->num_nodes(); ++n) {
    Env env;
    if (EvalRec(q.expr, corpus_->doc(n), *corpus_, &env)) out.push_back(n);
  }
  return out;
}

StatusOr<bool> NaiveCalculusEvaluator::EvalOnNode(const CalcExprPtr& e,
                                                  NodeId node) const {
  if (!e) return Status::InvalidArgument("null expression");
  if (node >= corpus_->num_nodes()) {
    return Status::InvalidArgument("node id out of range");
  }
  std::set<VarId> free = FreeVars(e);
  if (!free.empty()) {
    return Status::InvalidArgument("expression has free variables");
  }
  Env env;
  return EvalRec(e, corpus_->doc(node), *corpus_, &env);
}

}  // namespace fts
