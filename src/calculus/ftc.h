// Full-Text Calculus (FTC), paper Section 2.2.
//
// A calculus query is { node | SearchContext(node) ∧ QueryExpr(node) } where
// QueryExpr is a first-order formula over position variables built from:
//
//   hasPos(node, v)        — v ranges over Positions(node)
//   hasToken(v, 'tok')     — Token(v) = tok
//   pred(v1..vm, c1..cq)   — extensible position predicates
//   ¬e, e1 ∧ e2, e1 ∨ e2
//   ∃v (hasPos(node,v) ∧ e)        (safe existential)
//   ∀v (hasPos(node,v) ⇒ e)        (safe universal)
//
// The quantifier forms bake in the paper's safety requirement: quantified
// variables only range over the positions of the context node, so every
// query is evaluable from the node's own positions and tokens.
//
// Expressions are immutable and shared (shared_ptr<const CalcExpr>); the
// factory functions below are the only way to build them.

#ifndef FTS_CALCULUS_FTC_H_
#define FTS_CALCULUS_FTC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "predicates/predicate.h"

namespace fts {

/// A position variable. Ids are arbitrary but must be unique per binder
/// within one query (the translators guarantee this).
using VarId = uint32_t;

class CalcExpr;
using CalcExprPtr = std::shared_ptr<const CalcExpr>;

/// An application of a position predicate to calculus variables.
struct CalcPredicateCall {
  const PositionPredicate* pred = nullptr;
  std::vector<VarId> vars;
  std::vector<int64_t> consts;
};

/// Immutable FTC formula node.
class CalcExpr {
 public:
  enum class Kind {
    kHasPos,    ///< hasPos(node, var)
    kHasToken,  ///< hasToken(var, token)
    kPred,      ///< pred(vars..., consts...)
    kNot,       ///< ¬ child
    kAnd,       ///< left ∧ right
    kOr,        ///< left ∨ right
    kExists,    ///< ∃var (hasPos(node,var) ∧ child)
    kForAll,    ///< ∀var (hasPos(node,var) ⇒ child)
  };

  Kind kind() const { return kind_; }
  VarId var() const { return var_; }
  const std::string& token() const { return token_; }
  const CalcPredicateCall& pred() const { return pred_; }
  const CalcExprPtr& child() const { return left_; }
  const CalcExprPtr& left() const { return left_; }
  const CalcExprPtr& right() const { return right_; }

  /// Human-readable rendering, e.g. "∃p1(hasToken(p1,'test') ∧ ...)"
  /// printed with ASCII connectives (exists/forall/and/or/not).
  std::string ToString() const;

  // Factories.
  static CalcExprPtr HasPos(VarId var);
  static CalcExprPtr HasToken(VarId var, std::string token);
  static CalcExprPtr Pred(const PositionPredicate* pred, std::vector<VarId> vars,
                          std::vector<int64_t> consts);
  static CalcExprPtr Not(CalcExprPtr e);
  static CalcExprPtr And(CalcExprPtr l, CalcExprPtr r);
  static CalcExprPtr Or(CalcExprPtr l, CalcExprPtr r);
  static CalcExprPtr Exists(VarId var, CalcExprPtr body);
  static CalcExprPtr ForAll(VarId var, CalcExprPtr body);

 private:
  CalcExpr() = default;

  Kind kind_;
  VarId var_ = 0;
  std::string token_;
  CalcPredicateCall pred_;
  CalcExprPtr left_, right_;
};

/// A complete calculus query: { node | SearchContext(node) ∧ expr(node) }.
/// `expr` must be closed (no free position variables); Validate() checks.
struct CalcQuery {
  CalcExprPtr expr;

  std::string ToString() const;
};

}  // namespace fts

#endif  // FTS_CALCULUS_FTC_H_
