// Static analysis over FTC formulas: free variables, token collection,
// validation, and the normalizations used by the compiler and classifiers
// (∀ desugaring and negation sinking).

#ifndef FTS_CALCULUS_ANALYSIS_H_
#define FTS_CALCULUS_ANALYSIS_H_

#include <set>
#include <string>
#include <vector>

#include "calculus/ftc.h"
#include "common/status.h"

namespace fts {

/// Free position variables of `e` (variables used but not bound by an
/// enclosing quantifier).
std::set<VarId> FreeVars(const CalcExprPtr& e);

/// Distinct token literals mentioned anywhere in `e` (the set T_Q used in
/// the incompleteness proofs and the toks_Q complexity parameter).
std::set<std::string> CollectTokens(const CalcExprPtr& e);

/// Query size parameters of paper Section 5.1.1.
struct QueryShape {
  uint32_t toks = 0;   ///< toks_Q: token literals + ANY occurrences
  uint32_t preds = 0;  ///< preds_Q: predicate applications
  uint32_t ops = 0;    ///< ops_Q: NOT/AND/OR/SOME/EVERY operations
};

/// Computes toks_Q / preds_Q / ops_Q for a formula. hasPos counts as the
/// universal token ANY when it appears outside its binding quantifier sugar.
QueryShape ComputeQueryShape(const CalcExprPtr& e);

/// Validates a complete query: expression present, no free variables, no
/// rebinding of an in-scope variable, predicate signatures respected.
Status ValidateQuery(const CalcQuery& q);

/// Replaces every ∀v(body) with ¬∃v(¬body). The result is logically
/// equivalent and contains no kForAll nodes.
CalcExprPtr DesugarForAll(const CalcExprPtr& e);

/// Largest VarId mentioned in `e` plus one (safe fresh-variable start).
VarId NextFreeVarId(const CalcExprPtr& e);

}  // namespace fts

#endif  // FTS_CALCULUS_ANALYSIS_H_
