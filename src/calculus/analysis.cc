#include "calculus/analysis.h"

#include <algorithm>

namespace fts {

namespace {

void FreeVarsImpl(const CalcExprPtr& e, std::set<VarId>* bound, std::set<VarId>* out) {
  if (!e) return;
  switch (e->kind()) {
    case CalcExpr::Kind::kHasPos:
    case CalcExpr::Kind::kHasToken:
      if (!bound->count(e->var())) out->insert(e->var());
      return;
    case CalcExpr::Kind::kPred:
      for (VarId v : e->pred().vars) {
        if (!bound->count(v)) out->insert(v);
      }
      return;
    case CalcExpr::Kind::kNot:
      FreeVarsImpl(e->child(), bound, out);
      return;
    case CalcExpr::Kind::kAnd:
    case CalcExpr::Kind::kOr:
      FreeVarsImpl(e->left(), bound, out);
      FreeVarsImpl(e->right(), bound, out);
      return;
    case CalcExpr::Kind::kExists:
    case CalcExpr::Kind::kForAll: {
      const bool inserted = bound->insert(e->var()).second;
      FreeVarsImpl(e->child(), bound, out);
      if (inserted) bound->erase(e->var());
      return;
    }
  }
}

}  // namespace

std::set<VarId> FreeVars(const CalcExprPtr& e) {
  std::set<VarId> bound, out;
  FreeVarsImpl(e, &bound, &out);
  return out;
}

std::set<std::string> CollectTokens(const CalcExprPtr& e) {
  std::set<std::string> out;
  if (!e) return out;
  switch (e->kind()) {
    case CalcExpr::Kind::kHasToken:
      out.insert(e->token());
      return out;
    case CalcExpr::Kind::kHasPos:
    case CalcExpr::Kind::kPred:
      return out;
    case CalcExpr::Kind::kNot:
    case CalcExpr::Kind::kExists:
    case CalcExpr::Kind::kForAll:
      return CollectTokens(e->child());
    case CalcExpr::Kind::kAnd:
    case CalcExpr::Kind::kOr: {
      out = CollectTokens(e->left());
      auto r = CollectTokens(e->right());
      out.insert(r.begin(), r.end());
      return out;
    }
  }
  return out;
}

namespace {
void ShapeImpl(const CalcExprPtr& e, QueryShape* s) {
  if (!e) return;
  switch (e->kind()) {
    case CalcExpr::Kind::kHasPos:
      ++s->toks;  // hasPos is the calculus form of the universal token ANY
      return;
    case CalcExpr::Kind::kHasToken:
      ++s->toks;
      return;
    case CalcExpr::Kind::kPred:
      ++s->preds;
      return;
    case CalcExpr::Kind::kNot:
      ++s->ops;
      ShapeImpl(e->child(), s);
      return;
    case CalcExpr::Kind::kAnd:
    case CalcExpr::Kind::kOr:
      ++s->ops;
      ShapeImpl(e->left(), s);
      ShapeImpl(e->right(), s);
      return;
    case CalcExpr::Kind::kExists:
    case CalcExpr::Kind::kForAll:
      ++s->ops;
      ShapeImpl(e->child(), s);
      return;
  }
}

Status ValidateImpl(const CalcExprPtr& e, std::set<VarId>* bound) {
  if (!e) return Status::InvalidArgument("null expression node");
  switch (e->kind()) {
    case CalcExpr::Kind::kHasPos:
    case CalcExpr::Kind::kHasToken:
      return Status::OK();
    case CalcExpr::Kind::kPred: {
      if (e->pred().pred == nullptr) {
        return Status::InvalidArgument("predicate call with null predicate");
      }
      return e->pred().pred->ValidateSignature(e->pred().vars.size(),
                                               e->pred().consts.size());
    }
    case CalcExpr::Kind::kNot:
      return ValidateImpl(e->child(), bound);
    case CalcExpr::Kind::kAnd:
    case CalcExpr::Kind::kOr:
      FTS_RETURN_IF_ERROR(ValidateImpl(e->left(), bound));
      return ValidateImpl(e->right(), bound);
    case CalcExpr::Kind::kExists:
    case CalcExpr::Kind::kForAll: {
      if (!bound->insert(e->var()).second) {
        return Status::InvalidArgument("variable p" + std::to_string(e->var()) +
                                       " rebound by nested quantifier");
      }
      Status s = ValidateImpl(e->child(), bound);
      bound->erase(e->var());
      return s;
    }
  }
  return Status::Internal("unreachable expression kind");
}
}  // namespace

QueryShape ComputeQueryShape(const CalcExprPtr& e) {
  QueryShape s;
  ShapeImpl(e, &s);
  return s;
}

Status ValidateQuery(const CalcQuery& q) {
  if (!q.expr) return Status::InvalidArgument("query has no expression");
  std::set<VarId> bound;
  FTS_RETURN_IF_ERROR(ValidateImpl(q.expr, &bound));
  std::set<VarId> free = FreeVars(q.expr);
  if (!free.empty()) {
    return Status::InvalidArgument("query expression has free position variable p" +
                                   std::to_string(*free.begin()));
  }
  return Status::OK();
}

CalcExprPtr DesugarForAll(const CalcExprPtr& e) {
  if (!e) return e;
  switch (e->kind()) {
    case CalcExpr::Kind::kHasPos:
    case CalcExpr::Kind::kHasToken:
    case CalcExpr::Kind::kPred:
      return e;
    case CalcExpr::Kind::kNot:
      return CalcExpr::Not(DesugarForAll(e->child()));
    case CalcExpr::Kind::kAnd:
      return CalcExpr::And(DesugarForAll(e->left()), DesugarForAll(e->right()));
    case CalcExpr::Kind::kOr:
      return CalcExpr::Or(DesugarForAll(e->left()), DesugarForAll(e->right()));
    case CalcExpr::Kind::kExists:
      return CalcExpr::Exists(e->var(), DesugarForAll(e->child()));
    case CalcExpr::Kind::kForAll:
      // ∀v(hasPos ⇒ B)  ≡  ¬∃v(hasPos ∧ ¬B)
      return CalcExpr::Not(
          CalcExpr::Exists(e->var(), CalcExpr::Not(DesugarForAll(e->child()))));
  }
  return e;
}

namespace {
void MaxVarImpl(const CalcExprPtr& e, VarId* mx) {
  if (!e) return;
  switch (e->kind()) {
    case CalcExpr::Kind::kHasPos:
    case CalcExpr::Kind::kHasToken:
      *mx = std::max(*mx, e->var() + 1);
      return;
    case CalcExpr::Kind::kPred:
      for (VarId v : e->pred().vars) *mx = std::max(*mx, v + 1);
      return;
    case CalcExpr::Kind::kNot:
      MaxVarImpl(e->child(), mx);
      return;
    case CalcExpr::Kind::kAnd:
    case CalcExpr::Kind::kOr:
      MaxVarImpl(e->left(), mx);
      MaxVarImpl(e->right(), mx);
      return;
    case CalcExpr::Kind::kExists:
    case CalcExpr::Kind::kForAll:
      *mx = std::max(*mx, e->var() + 1);
      MaxVarImpl(e->child(), mx);
      return;
  }
}
}  // namespace

VarId NextFreeVarId(const CalcExprPtr& e) {
  VarId mx = 0;
  MaxVarImpl(e, &mx);
  return mx;
}

}  // namespace fts
