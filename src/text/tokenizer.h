// Text tokenization with sentence and paragraph tracking.
//
// The tokenizer turns raw text into the (token, position) stream of the
// full-text model. Tokens are maximal runs of alphanumeric characters,
// case-folded by default. Sentence boundaries are '.', '!', '?';
// paragraph boundaries are blank lines. Both are recorded in the emitted
// PositionInfo so structural predicates can be evaluated later.

#ifndef FTS_TEXT_TOKENIZER_H_
#define FTS_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/document.h"

namespace fts {

/// Tokenizer configuration.
struct TokenizerOptions {
  /// Case-fold tokens to lower case (standard IR practice).
  bool lowercase = true;
  /// Treat digits as token characters.
  bool keep_numbers = true;
};

/// A single token occurrence produced by the tokenizer.
struct RawToken {
  std::string text;
  PositionInfo position;
};

/// Splits text into tokens with sentence/paragraph-annotated positions.
/// Stateless and reusable across documents; not thread-hostile (const calls
/// are safe concurrently).
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {}) : options_(options) {}

  /// Tokenizes `text`. Offsets are consecutive from 0; sentence and
  /// paragraph ordinals increase at boundary characters.
  std::vector<RawToken> Tokenize(std::string_view text) const;

  /// Normalizes a query-side token the same way document tokens are
  /// normalized (case folding), so query terms match indexed terms.
  std::string Normalize(std::string_view token) const;

 private:
  TokenizerOptions options_;
};

}  // namespace fts

#endif  // FTS_TEXT_TOKENIZER_H_
