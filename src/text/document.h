// Core value types of the full-text model (paper Section 2.1):
//
//   N : context nodes    -> NodeId
//   P : positions        -> PositionInfo (token offset + sentence/paragraph)
//   T : tokens           -> TokenId into the corpus dictionary
//
// The paper models Positions : N -> 2^P and Token : P -> T. We realize a
// context node as a TokenizedDocument: the i-th token occupies offset i, and
// each position additionally records its sentence and paragraph ordinal so
// that structural predicates (samepara, samesentence) are expressible, as
// Section 2.1.1 anticipates ("more expressive positions ... will enable more
// sophisticated predicates").

#ifndef FTS_TEXT_DOCUMENT_H_
#define FTS_TEXT_DOCUMENT_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace fts {

/// Identifier of a context node (document, tuple, or XML element).
using NodeId = uint32_t;

/// Identifier of a token in the corpus dictionary.
using TokenId = uint32_t;

/// Sentinel NodeId meaning "no node" / end of stream.
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel TokenId for tokens absent from a dictionary.
inline constexpr TokenId kInvalidToken = std::numeric_limits<TokenId>::max();

/// A position within a context node. `offset` is the 0-based token ordinal
/// (the "(n)" annotations in the paper's Figure 1); `sentence` and
/// `paragraph` are 0-based structural ordinals used by samesentence /
/// samepara predicates. Ordering of positions is ordering of offsets.
struct PositionInfo {
  uint32_t offset = 0;
  uint32_t sentence = 0;
  uint32_t paragraph = 0;

  friend bool operator==(const PositionInfo&, const PositionInfo&) = default;
  friend auto operator<=>(const PositionInfo& a, const PositionInfo& b) {
    return a.offset <=> b.offset;
  }
};

/// Sentinel offset used by cursor APIs to mean "past the end".
inline constexpr uint32_t kInvalidOffset = std::numeric_limits<uint32_t>::max();

/// One context node after tokenization: parallel arrays of token ids and
/// their positions. tokens[i] is the token at positions[i] (and
/// positions[i].offset == i by construction).
struct TokenizedDocument {
  std::vector<TokenId> tokens;
  std::vector<PositionInfo> positions;

  size_t size() const { return tokens.size(); }
  bool empty() const { return tokens.empty(); }
};

}  // namespace fts

#endif  // FTS_TEXT_DOCUMENT_H_
