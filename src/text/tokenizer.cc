#include "text/tokenizer.h"

#include <cctype>

namespace fts {

namespace {
bool IsTokenChar(char c, const TokenizerOptions& opts) {
  unsigned char uc = static_cast<unsigned char>(c);
  if (std::isalpha(uc)) return true;
  if (opts.keep_numbers && std::isdigit(uc)) return true;
  return false;
}

bool IsSentenceBoundary(char c) { return c == '.' || c == '!' || c == '?'; }
}  // namespace

std::vector<RawToken> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<RawToken> out;
  uint32_t offset = 0;
  uint32_t sentence = 0;
  uint32_t paragraph = 0;
  bool token_seen_in_sentence = false;
  bool token_seen_in_paragraph = false;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (IsTokenChar(c, options_)) {
      size_t start = i;
      while (i < n && IsTokenChar(text[i], options_)) ++i;
      std::string tok(text.substr(start, i - start));
      if (options_.lowercase) {
        for (char& ch : tok) {
          ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
        }
      }
      out.push_back(RawToken{std::move(tok), PositionInfo{offset, sentence, paragraph}});
      ++offset;
      token_seen_in_sentence = true;
      token_seen_in_paragraph = true;
      continue;
    }
    if (IsSentenceBoundary(c) && token_seen_in_sentence) {
      ++sentence;
      token_seen_in_sentence = false;
    }
    // A blank line (two newlines separated only by spaces/tabs) starts a new
    // paragraph; a paragraph break also breaks the sentence.
    if (c == '\n') {
      size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t' || text[j] == '\r')) ++j;
      if (j < n && text[j] == '\n' && token_seen_in_paragraph) {
        ++paragraph;
        token_seen_in_paragraph = false;
        if (token_seen_in_sentence) {
          ++sentence;
          token_seen_in_sentence = false;
        }
        i = j;
      }
    }
    ++i;
  }
  return out;
}

std::string Tokenizer::Normalize(std::string_view token) const {
  std::string out(token);
  if (options_.lowercase) {
    for (char& ch : out) {
      ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    }
  }
  return out;
}

}  // namespace fts
