// The Corpus owns the dictionary (token string <-> TokenId) and the set of
// tokenized context nodes. It is the in-memory realization of the paper's
// full-text model: Positions(n) and Token(p) are answered directly from the
// stored TokenizedDocuments; the inverted index (src/index) is a derived,
// query-optimized view of the same data.

#ifndef FTS_TEXT_CORPUS_H_
#define FTS_TEXT_CORPUS_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "text/document.h"
#include "text/tokenizer.h"

namespace fts {

/// A collection of tokenized context nodes plus their shared dictionary.
class Corpus {
 public:
  Corpus() = default;

  /// Adds a context node from raw text (tokenizing it) and returns its id.
  NodeId AddDocument(std::string_view text);

  /// Adds a context node from a pre-analyzed token stream (as produced by
  /// Analyzer::AnalyzeDocument); offsets may have gaps where stop-words
  /// were removed.
  NodeId AddAnalyzedDocument(const std::vector<RawToken>& tokens);

  /// Adds a context node from pre-tokenized content. `tokens` are token
  /// strings in position order; positions default to consecutive offsets in
  /// a single sentence/paragraph.
  NodeId AddTokens(const std::vector<std::string>& tokens);

  /// Adds a context node with explicit per-token positions. `tokens` and
  /// `positions` must be the same length with strictly increasing offsets.
  StatusOr<NodeId> AddTokensWithPositions(const std::vector<std::string>& tokens,
                                          const std::vector<PositionInfo>& positions);

  /// Number of context nodes (|N|, the paper's `cnodes`).
  size_t num_nodes() const { return docs_.size(); }

  /// Number of distinct tokens across all nodes (|T| restricted to the
  /// corpus, which is the finite set physically instantiated; Section 2.3).
  size_t vocabulary_size() const { return id_to_token_.size(); }

  /// The tokenized content of node `id`; id must be < num_nodes().
  const TokenizedDocument& doc(NodeId id) const { return docs_[id]; }

  /// A new corpus holding nodes [begin, end) with a fresh dictionary
  /// (token ids are re-interned in first-sight order; spellings and
  /// positions are copied verbatim, with no re-normalization). This is the
  /// document-partitioning primitive for sharding: node `begin + i` of
  /// this corpus becomes node `i` of the slice, so a router that assigns
  /// the slice a doc-id base of `begin` reconstructs the original ids
  /// exactly (docs/serving.md).
  StatusOr<Corpus> Slice(NodeId begin, NodeId end) const;

  /// Interns `token`, assigning a fresh id on first sight.
  TokenId InternToken(std::string_view token);

  /// Looks up `token` without interning; kInvalidToken if absent.
  TokenId LookupToken(std::string_view token) const;

  /// The spelling of token `id`; id must be a valid TokenId.
  const std::string& token_text(TokenId id) const { return id_to_token_[id]; }

  const Tokenizer& tokenizer() const { return tokenizer_; }

 private:
  Tokenizer tokenizer_;
  std::vector<TokenizedDocument> docs_;
  std::unordered_map<std::string, TokenId> token_to_id_;
  std::vector<std::string> id_to_token_;
};

}  // namespace fts

#endif  // FTS_TEXT_CORPUS_H_
