// Token analysis beyond raw tokenization: stemming, stop-word removal, and
// thesaurus expansion — the "new full-text primitives" the paper's
// conclusion plans to add (Section 8).
//
// Design: analysis composes *around* the formal model rather than changing
// it. Document-side, the Analyzer normalizes tokens before interning
// (stemming, optional stop-word dropping — positions of dropped tokens are
// preserved so proximity semantics stay meaningful). Query-side,
// RewriteQuery maps a parsed query onto the analyzed token space: token
// atoms are stemmed, stop-word-only atoms are pruned from conjunctions,
// and thesaurus synonyms expand a token atom into a disjunction — all
// expressible inside COMP, so the calculus, algebra, and engines are
// untouched.

#ifndef FTS_TEXT_ANALYZER_H_
#define FTS_TEXT_ANALYZER_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "lang/ast.h"
#include "text/tokenizer.h"

namespace fts {

/// Suffix-stripping stemmer in the spirit of Porter's algorithm step 1
/// (plurals, -ed/-ing) plus a table of common derivational suffixes. Not a
/// full Porter implementation, but deterministic, conservative (never stems
/// below 3 characters) and idempotent on its own output for common English.
class Stemmer {
 public:
  /// Stems one lower-case token.
  static std::string Stem(std::string_view token);
};

/// A set of tokens excluded from indexing and pruned from queries.
class StopwordSet {
 public:
  /// The default English list (articles, pronouns, auxiliaries, ...).
  static const StopwordSet& DefaultEnglish();

  StopwordSet() = default;
  explicit StopwordSet(std::vector<std::string> words);

  bool Contains(std::string_view token) const;
  size_t size() const { return words_.size(); }

 private:
  std::set<std::string, std::less<>> words_;
};

/// Synonym groups for query-side expansion. Symmetric: every member of a
/// group expands to the whole group.
class Thesaurus {
 public:
  /// Registers a synonym group, e.g. {"fast", "quick", "rapid"}. Tokens are
  /// stored as given (callers should pre-normalize/stem consistently).
  void AddGroup(std::vector<std::string> group);

  /// All synonyms of `token` including itself; just {token} if unknown.
  std::vector<std::string> Expand(std::string_view token) const;

  size_t num_groups() const { return groups_.size(); }

 private:
  std::vector<std::vector<std::string>> groups_;
  std::map<std::string, size_t, std::less<>> index_;
};

/// Analysis configuration shared by document and query sides.
struct AnalyzerOptions {
  bool stem = true;
  bool remove_stopwords = true;
};

/// Applies tokenization + analysis to documents, producing the token/
/// position stream to index. Dropped stop-words leave gaps in the offsets,
/// preserving the distances between surviving tokens.
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {},
                    const StopwordSet* stopwords = &StopwordSet::DefaultEnglish())
      : options_(options), stopwords_(stopwords) {}

  /// Tokenizes and analyzes document text.
  std::vector<RawToken> AnalyzeDocument(std::string_view text) const;

  /// Normalizes one query-side token (case-fold + stem). Returns the empty
  /// string for stop-words when removal is enabled.
  std::string AnalyzeQueryToken(std::string_view token) const;

  /// Case-folds and stop-word-filters without stemming (thesaurus lookup
  /// happens in this space, before stemming).
  std::string NormalizeQueryToken(std::string_view token) const;

  const AnalyzerOptions& options() const { return options_; }

 private:
  Tokenizer tokenizer_;
  AnalyzerOptions options_;
  const StopwordSet* stopwords_;
};

/// Rewrites a parsed query onto the analyzed token space: stems token
/// atoms, expands them through `thesaurus` (nullable) into disjunctions,
/// and prunes stop-word atoms from conjunctions (a stop-word-only query is
/// an error). Structure (NOT/AND/OR/SOME/EVERY/predicates) is preserved.
StatusOr<LangExprPtr> RewriteQuery(const LangExprPtr& query, const Analyzer& analyzer,
                                   const Thesaurus* thesaurus = nullptr);

}  // namespace fts

#endif  // FTS_TEXT_ANALYZER_H_
