#include "text/corpus.h"

namespace fts {

NodeId Corpus::AddDocument(std::string_view text) {
  TokenizedDocument doc;
  for (RawToken& raw : tokenizer_.Tokenize(text)) {
    doc.tokens.push_back(InternToken(raw.text));
    doc.positions.push_back(raw.position);
  }
  docs_.push_back(std::move(doc));
  return static_cast<NodeId>(docs_.size() - 1);
}

NodeId Corpus::AddAnalyzedDocument(const std::vector<RawToken>& tokens) {
  TokenizedDocument doc;
  for (const RawToken& raw : tokens) {
    doc.tokens.push_back(InternToken(raw.text));
    doc.positions.push_back(raw.position);
  }
  docs_.push_back(std::move(doc));
  return static_cast<NodeId>(docs_.size() - 1);
}

NodeId Corpus::AddTokens(const std::vector<std::string>& tokens) {
  TokenizedDocument doc;
  uint32_t offset = 0;
  for (const std::string& tok : tokens) {
    doc.tokens.push_back(InternToken(tokenizer_.Normalize(tok)));
    doc.positions.push_back(PositionInfo{offset++, 0, 0});
  }
  docs_.push_back(std::move(doc));
  return static_cast<NodeId>(docs_.size() - 1);
}

StatusOr<NodeId> Corpus::AddTokensWithPositions(const std::vector<std::string>& tokens,
                                                const std::vector<PositionInfo>&
                                                    positions) {
  if (tokens.size() != positions.size()) {
    return Status::InvalidArgument("tokens/positions size mismatch: " +
                                   std::to_string(tokens.size()) + " vs " +
                                   std::to_string(positions.size()));
  }
  for (size_t i = 1; i < positions.size(); ++i) {
    if (positions[i].offset <= positions[i - 1].offset) {
      return Status::InvalidArgument("position offsets must be strictly increasing");
    }
  }
  TokenizedDocument doc;
  for (size_t i = 0; i < tokens.size(); ++i) {
    doc.tokens.push_back(InternToken(tokenizer_.Normalize(tokens[i])));
    doc.positions.push_back(positions[i]);
  }
  docs_.push_back(std::move(doc));
  return static_cast<NodeId>(docs_.size() - 1);
}

StatusOr<Corpus> Corpus::Slice(NodeId begin, NodeId end) const {
  if (begin > end || end > docs_.size()) {
    return Status::InvalidArgument(
        "corpus slice [" + std::to_string(begin) + ", " + std::to_string(end) +
        ") out of range for " + std::to_string(docs_.size()) + " nodes");
  }
  Corpus out;
  out.docs_.reserve(end - begin);
  for (NodeId n = begin; n < end; ++n) {
    const TokenizedDocument& src = docs_[n];
    TokenizedDocument doc;
    doc.tokens.reserve(src.tokens.size());
    // Intern by spelling, not by copying ids: the slice's dictionary is
    // dense over only the tokens its documents actually contain.
    for (const TokenId t : src.tokens) {
      doc.tokens.push_back(out.InternToken(id_to_token_[t]));
    }
    doc.positions = src.positions;
    out.docs_.push_back(std::move(doc));
  }
  return out;
}

TokenId Corpus::InternToken(std::string_view token) {
  auto it = token_to_id_.find(std::string(token));
  if (it != token_to_id_.end()) return it->second;
  TokenId id = static_cast<TokenId>(id_to_token_.size());
  id_to_token_.emplace_back(token);
  token_to_id_.emplace(id_to_token_.back(), id);
  return id;
}

TokenId Corpus::LookupToken(std::string_view token) const {
  auto it = token_to_id_.find(std::string(token));
  return it == token_to_id_.end() ? kInvalidToken : it->second;
}

}  // namespace fts
