#include "text/analyzer.h"

#include <algorithm>

namespace fts {

namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

bool HasVowel(std::string_view s) {
  return std::any_of(s.begin(), s.end(), IsVowel);
}

}  // namespace

std::string Stemmer::Stem(std::string_view token) {
  std::string w(token);
  if (w.size() < 4) return w;

  // Step 1a: plurals.
  if (EndsWith(w, "sses")) {
    w.resize(w.size() - 2);  // caresses -> caress
  } else if (EndsWith(w, "ies")) {
    w.resize(w.size() - 2);  // ponies -> poni
  } else if (EndsWith(w, "xes") || EndsWith(w, "zes") || EndsWith(w, "ches") ||
             EndsWith(w, "shes")) {
    w.resize(w.size() - 2);  // indexes -> index, churches -> church
  } else if (EndsWith(w, "ss")) {
    // keep: caress
  } else if (EndsWith(w, "s") && w.size() > 3) {
    w.resize(w.size() - 1);  // cats -> cat
  }

  // Step 1b: -ed / -ing, only when a vowel remains in the stem.
  auto strip_if_vowel_stem = [&w](std::string_view suffix) {
    if (!EndsWith(w, suffix)) return false;
    std::string_view stem(w.data(), w.size() - suffix.size());
    if (stem.size() < 2 || !HasVowel(stem)) return false;
    w.resize(stem.size());
    return true;
  };
  bool stripped = strip_if_vowel_stem("ing") || strip_if_vowel_stem("ed");
  if (stripped) {
    // Restore 'e' for -ate/-ble/-ize shapes and undo doubled consonants.
    if (EndsWith(w, "at") || EndsWith(w, "bl") || EndsWith(w, "iz")) {
      w.push_back('e');  // relat(ed) -> relate
    } else if (w.size() >= 2 && w[w.size() - 1] == w[w.size() - 2] &&
               !IsVowel(w.back()) && w.back() != 'l' && w.back() != 's' &&
               w.back() != 'z') {
      w.resize(w.size() - 1);  // hopp(ing) -> hop
    }
  }

  // Step 1c: terminal y -> i after a vowel-bearing stem.
  if (w.size() > 3 && w.back() == 'y' &&
      HasVowel(std::string_view(w.data(), w.size() - 1))) {
    w.back() = 'i';  // happy -> happi (matches 'happiness' family)
  }

  // A slice of Porter step 2/3: common derivational suffixes.
  struct Rule {
    const char* suffix;
    const char* replacement;
  };
  static const Rule kRules[] = {
      {"ational", "ate"}, {"ization", "ize"}, {"fulness", "ful"},
      {"iveness", "ive"}, {"ousness", "ous"}, {"biliti", "ble"},
      {"iviti", "ive"},   {"aliti", "al"},    {"ation", "ate"},
      {"izer", "ize"},    {"alism", "al"},    {"ness", ""},
      {"ment", ""},       {"abli", "able"},   {"alli", "al"},
      {"entli", "ent"},   {"ousli", "ous"},   {"tional", "tion"},
  };
  for (const Rule& rule : kRules) {
    const std::string_view suffix(rule.suffix);
    if (!EndsWith(w, suffix)) continue;
    const size_t stem_len = w.size() - suffix.size();
    if (stem_len < 3) continue;
    w.resize(stem_len);
    w += rule.replacement;
    break;
  }

  // Step 5a (final e): long stems drop a trailing 'e', which is what makes
  // families like complete/completes/completed converge.
  if (w.size() > 5 && w.back() == 'e') w.resize(w.size() - 1);
  return w;
}

StopwordSet::StopwordSet(std::vector<std::string> words) {
  for (std::string& word : words) words_.insert(std::move(word));
}

const StopwordSet& StopwordSet::DefaultEnglish() {
  static const StopwordSet* set = new StopwordSet(std::vector<std::string>{
      "a",    "an",   "and",  "are",  "as",    "at",   "be",   "but", "by",
      "for",  "from", "had",  "has",  "have",  "he",   "her",  "his", "how",
      "i",    "if",   "in",   "into", "is",    "it",   "its",  "no",  "not",
      "of",   "on",   "or",   "she",  "so",    "such", "that", "the", "their",
      "then", "they", "this", "to",   "was",   "we",   "well", "were", "what",
      "when", "which", "who", "will", "with",  "you"});
  return *set;
}

bool StopwordSet::Contains(std::string_view token) const {
  return words_.find(token) != words_.end();
}

void Thesaurus::AddGroup(std::vector<std::string> group) {
  const size_t id = groups_.size();
  for (const std::string& word : group) index_.emplace(word, id);
  groups_.push_back(std::move(group));
}

std::vector<std::string> Thesaurus::Expand(std::string_view token) const {
  auto it = index_.find(token);
  if (it == index_.end()) return {std::string(token)};
  std::vector<std::string> out = groups_[it->second];
  if (std::find(out.begin(), out.end(), std::string(token)) == out.end()) {
    out.insert(out.begin(), std::string(token));
  }
  return out;
}

std::vector<RawToken> Analyzer::AnalyzeDocument(std::string_view text) const {
  std::vector<RawToken> out;
  for (RawToken& raw : tokenizer_.Tokenize(text)) {
    if (options_.remove_stopwords && stopwords_->Contains(raw.text)) continue;
    if (options_.stem) raw.text = Stemmer::Stem(raw.text);
    out.push_back(std::move(raw));
  }
  return out;
}

std::string Analyzer::AnalyzeQueryToken(std::string_view token) const {
  std::string normalized = NormalizeQueryToken(token);
  if (normalized.empty()) return normalized;
  return options_.stem ? Stemmer::Stem(normalized) : normalized;
}

std::string Analyzer::NormalizeQueryToken(std::string_view token) const {
  std::string normalized = tokenizer_.Normalize(token);
  if (options_.remove_stopwords && stopwords_->Contains(normalized)) return "";
  return normalized;
}

namespace {

/// Expands one normalized (unstemmed) token through the thesaurus, then
/// stems every synonym into the indexed token space, producing a token-atom
/// disjunction (plain token or var HAS chain).
LangExprPtr ExpandAtom(const std::string& var, const std::string& normalized,
                       const Analyzer& analyzer, const Thesaurus* thesaurus) {
  std::vector<std::string> forms =
      thesaurus ? thesaurus->Expand(normalized)
                : std::vector<std::string>{normalized};
  std::vector<std::string> analyzed;
  for (const std::string& form : forms) {
    std::string stemmed =
        analyzer.options().stem ? Stemmer::Stem(form) : form;
    if (std::find(analyzed.begin(), analyzed.end(), stemmed) == analyzed.end()) {
      analyzed.push_back(std::move(stemmed));
    }
  }
  LangExprPtr out;
  for (const std::string& form : analyzed) {
    LangExprPtr atom = var.empty() ? LangExpr::Token(form)
                                   : LangExpr::VarHasToken(var, form);
    out = out ? LangExpr::Or(std::move(out), std::move(atom)) : atom;
  }
  return out;
}

/// nullptr result = "this subtree was a stop-word atom; prune it".
StatusOr<LangExprPtr> RewriteRec(const LangExprPtr& e, const Analyzer& analyzer,
                                 const Thesaurus* thesaurus) {
  switch (e->kind()) {
    case LangExpr::Kind::kToken: {
      const std::string normalized = analyzer.NormalizeQueryToken(e->token());
      if (normalized.empty()) return LangExprPtr(nullptr);
      return ExpandAtom("", normalized, analyzer, thesaurus);
    }
    case LangExpr::Kind::kVarHasToken: {
      const std::string normalized = analyzer.NormalizeQueryToken(e->token());
      if (normalized.empty()) return LangExprPtr(nullptr);
      return ExpandAtom(e->var(), normalized, analyzer, thesaurus);
    }
    case LangExpr::Kind::kAny:
    case LangExpr::Kind::kVarHasAny:
    case LangExpr::Kind::kPred:
      return e;
    case LangExpr::Kind::kDist: {
      // Analyze both operands; a pruned operand widens to ANY.
      std::string t1 = e->dist_tok1().empty()
                           ? std::string()
                           : analyzer.AnalyzeQueryToken(e->dist_tok1());
      std::string t2 = e->dist_tok2().empty()
                           ? std::string()
                           : analyzer.AnalyzeQueryToken(e->dist_tok2());
      return LangExprPtr(LangExpr::Dist(std::move(t1), std::move(t2),
                                        e->dist_limit()));
    }
    case LangExpr::Kind::kNot: {
      FTS_ASSIGN_OR_RETURN(LangExprPtr c, RewriteRec(e->child(), analyzer, thesaurus));
      if (!c) return LangExprPtr(nullptr);  // NOT stop-word: prune whole atom
      return LangExprPtr(LangExpr::Not(std::move(c)));
    }
    case LangExpr::Kind::kAnd: {
      FTS_ASSIGN_OR_RETURN(LangExprPtr l, RewriteRec(e->left(), analyzer, thesaurus));
      FTS_ASSIGN_OR_RETURN(LangExprPtr r, RewriteRec(e->right(), analyzer, thesaurus));
      if (!l) return r;
      if (!r) return l;
      return LangExprPtr(LangExpr::And(std::move(l), std::move(r)));
    }
    case LangExpr::Kind::kOr: {
      FTS_ASSIGN_OR_RETURN(LangExprPtr l, RewriteRec(e->left(), analyzer, thesaurus));
      FTS_ASSIGN_OR_RETURN(LangExprPtr r, RewriteRec(e->right(), analyzer, thesaurus));
      if (!l) return r;
      if (!r) return l;
      return LangExprPtr(LangExpr::Or(std::move(l), std::move(r)));
    }
    case LangExpr::Kind::kSome:
    case LangExpr::Kind::kEvery: {
      FTS_ASSIGN_OR_RETURN(LangExprPtr c, RewriteRec(e->child(), analyzer, thesaurus));
      if (!c) return LangExprPtr(nullptr);
      return e->kind() == LangExpr::Kind::kSome
                 ? LangExprPtr(LangExpr::Some(e->var(), std::move(c)))
                 : LangExprPtr(LangExpr::Every(e->var(), std::move(c)));
    }
  }
  return Status::Internal("unreachable surface kind");
}

}  // namespace

StatusOr<LangExprPtr> RewriteQuery(const LangExprPtr& query, const Analyzer& analyzer,
                                   const Thesaurus* thesaurus) {
  if (!query) return Status::InvalidArgument("null query");
  FTS_ASSIGN_OR_RETURN(LangExprPtr out, RewriteRec(query, analyzer, thesaurus));
  if (!out) {
    return Status::InvalidArgument(
        "query consists entirely of stop-words after analysis");
  }
  return out;
}

}  // namespace fts
