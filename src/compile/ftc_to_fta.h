// FTC -> FTA compilation (the constructive direction of Theorem 1 used by
// the COMP engine, paper Section 5.4 and Lemma 2).
//
// The compiler follows Lemma 2's structural recursion but applies two
// standard rewrites so the generated plans look like the paper's Figure 4
// rather than towers of HasPos scans:
//
//  * selection pushdown: inside a conjunction, predicates become σ over the
//    join of the conjuncts that bind their variables (HasPos is only joined
//    in for variables no other conjunct binds);
//  * projection pushdown: every ∃ projects its variable away immediately,
//    so intermediate relations carry only live columns (Section 5.5.3's
//    "rewritten to push down projections").
//
// Shared variables between conjuncts are equated with the internal samepos
// predicate, since the FTA join compares CNode only.

#ifndef FTS_COMPILE_FTC_TO_FTA_H_
#define FTS_COMPILE_FTC_TO_FTA_H_

#include <vector>

#include "algebra/fta.h"
#include "calculus/ftc.h"
#include "common/status.h"

namespace fts {

/// An algebra expression together with the calculus variable carried by
/// each position column. Invariant: cols are sorted by VarId and distinct.
struct CompiledExpr {
  FtaExprPtr expr;
  std::vector<VarId> cols;
};

/// Compiles a closed calculus query into a zero-column algebra expression
/// whose evaluation yields exactly the satisfying nodes.
StatusOr<FtaExprPtr> CompileQuery(const CalcQuery& query);

/// Compiles an arbitrary (possibly open) calculus expression into an
/// algebra expression over its free variables. Exposed for tests.
StatusOr<CompiledExpr> CompileExpr(const CalcExprPtr& expr);

}  // namespace fts

#endif  // FTS_COMPILE_FTC_TO_FTA_H_
