// FTA -> FTC translation (Lemma 1, the other half of Theorem 1).
//
// For an algebra expression evaluating to R(CNode, att1..attk) the
// translator produces a calculus formula over k designated free variables —
// one per column — such that { (n, p1..pk) | SearchContext(n) ∧ ⋀ hasPos ∧
// CalcExpr } equals R. Applied to a zero-column algebra query it yields a
// closed calculus query, which the round-trip equivalence tests evaluate
// with the naive oracle.

#ifndef FTS_COMPILE_FTA_TO_FTC_H_
#define FTS_COMPILE_FTA_TO_FTC_H_

#include <vector>

#include "algebra/fta.h"
#include "calculus/ftc.h"
#include "common/status.h"

namespace fts {

/// Translates `expr` into a calculus formula whose free variables are
/// `out_vars` (one per column, in column order). `out_vars.size()` must
/// equal expr->num_cols(); `*next_fresh` supplies fresh variable ids for
/// projected-away columns and must exceed every id in out_vars.
StatusOr<CalcExprPtr> TranslateFtaToCalc(const FtaExprPtr& expr,
                                         const std::vector<VarId>& out_vars,
                                         VarId* next_fresh);

/// Translates a zero-column algebra query into a closed calculus query.
StatusOr<CalcQuery> TranslateFtaQuery(const FtaExprPtr& expr);

}  // namespace fts

#endif  // FTS_COMPILE_FTA_TO_FTC_H_
