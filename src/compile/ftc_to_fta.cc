#include "compile/ftc_to_fta.h"

#include <algorithm>
#include <set>

#include "calculus/analysis.h"

namespace fts {

namespace {

const PositionPredicate* SamePos() {
  static const PositionPredicate* p = PredicateRegistry::Default().Find("samepos");
  return p;
}

int FindCol(const std::vector<VarId>& cols, VarId v) {
  auto it = std::find(cols.begin(), cols.end(), v);
  return it == cols.end() ? -1 : static_cast<int>(it - cols.begin());
}

/// Intermediate compilation result. `expr == nullptr` denotes the neutral
/// ("true") relation. `deferred` holds quantifier-bound variables whose
/// projection is postponed because a floating predicate still references
/// them; they are physically present in `cols`.
struct PartialExpr {
  FtaExprPtr expr;
  std::vector<VarId> cols;          // sorted, distinct
  std::set<VarId> deferred;
};

/// Predicates not yet applied because their variables are not all bound to
/// relation columns at the current scope. They float upward until covered.
using PendingPreds = std::vector<CalcPredicateCall>;

/// Natural join: FTA join on CNode + samepos selections on shared variables
/// + projection to distinct, VarId-sorted columns. Neutral inputs pass
/// through.
StatusOr<PartialExpr> NaturalJoin(const PartialExpr& a, const PartialExpr& b) {
  if (a.expr == nullptr) return b;
  if (b.expr == nullptr) return a;
  FtaExprPtr expr = FtaExpr::Join(a.expr, b.expr);
  for (size_t i = 0; i < b.cols.size(); ++i) {
    int ai = FindCol(a.cols, b.cols[i]);
    if (ai < 0) continue;
    AlgebraPredicateCall call;
    call.pred = SamePos();
    call.cols = {ai, static_cast<int>(a.cols.size() + i)};
    FTS_ASSIGN_OR_RETURN(expr, FtaExpr::Select(std::move(expr), std::move(call)));
  }
  std::vector<VarId> vars;
  std::set_union(a.cols.begin(), a.cols.end(), b.cols.begin(), b.cols.end(),
                 std::back_inserter(vars));
  std::vector<int> keep;
  keep.reserve(vars.size());
  for (VarId v : vars) {
    int ai = FindCol(a.cols, v);
    keep.push_back(ai >= 0 ? ai
                           : static_cast<int>(a.cols.size()) + FindCol(b.cols, v));
  }
  FTS_ASSIGN_OR_RETURN(expr, FtaExpr::Project(std::move(expr), std::move(keep)));
  PartialExpr out{std::move(expr), std::move(vars), a.deferred};
  out.deferred.insert(b.deferred.begin(), b.deferred.end());
  return out;
}

/// Extends `in` with a HasPos column for every variable of `want` it lacks.
StatusOr<PartialExpr> PadVars(PartialExpr in, const std::set<VarId>& want) {
  for (VarId v : want) {
    if (in.expr != nullptr && FindCol(in.cols, v) >= 0) continue;
    PartialExpr pos{FtaExpr::HasPos(), {v}, {}};
    FTS_ASSIGN_OR_RETURN(in, NaturalJoin(in, pos));
  }
  return in;
}

/// Applies one predicate as a selection, padding missing variables.
StatusOr<PartialExpr> ApplyPredicate(PartialExpr in, const CalcPredicateCall& call) {
  std::set<VarId> vars(call.vars.begin(), call.vars.end());
  FTS_ASSIGN_OR_RETURN(in, PadVars(std::move(in), vars));
  AlgebraPredicateCall ac;
  ac.pred = call.pred;
  ac.consts = call.consts;
  ac.cols.reserve(call.vars.size());
  for (VarId v : call.vars) ac.cols.push_back(FindCol(in.cols, v));
  FTS_ASSIGN_OR_RETURN(FtaExprPtr sel, FtaExpr::Select(in.expr, std::move(ac)));
  return PartialExpr{std::move(sel), in.cols, in.deferred};
}

bool Covered(const PartialExpr& acc, const CalcPredicateCall& call) {
  if (acc.expr == nullptr) return false;
  for (VarId v : call.vars) {
    if (FindCol(acc.cols, v) < 0) return false;
  }
  return true;
}

/// Projects out every deferred variable no pending predicate references.
StatusOr<PartialExpr> ResolveDeferred(PartialExpr acc, const PendingPreds& pending) {
  if (acc.deferred.empty() || acc.expr == nullptr) return acc;
  std::set<VarId> still_needed;
  for (const CalcPredicateCall& call : pending) {
    still_needed.insert(call.vars.begin(), call.vars.end());
  }
  std::vector<int> keep;
  std::vector<VarId> cols;
  std::set<VarId> deferred;
  for (size_t i = 0; i < acc.cols.size(); ++i) {
    const VarId v = acc.cols[i];
    if (acc.deferred.count(v) && !still_needed.count(v)) continue;  // drop
    keep.push_back(static_cast<int>(i));
    cols.push_back(v);
    if (acc.deferred.count(v)) deferred.insert(v);
  }
  if (cols.size() == acc.cols.size()) return acc;  // nothing resolvable
  FTS_ASSIGN_OR_RETURN(FtaExprPtr p, FtaExpr::Project(acc.expr, std::move(keep)));
  return PartialExpr{std::move(p), std::move(cols), std::move(deferred)};
}

/// Applies every pending predicate whose variables are covered (or all of
/// them when `force` is set, padding with HasPos). Positive predicates are
/// applied before negative/general ones so that NPRED's `le` ordering
/// selections sit beneath negative-predicate selections. Resolves deferred
/// projections afterwards.
StatusOr<PartialExpr> TryApplyPending(PartialExpr acc, PendingPreds* pending,
                                      bool force) {
  auto pass = [&](bool positives) -> Status {
    for (size_t i = 0; i < pending->size();) {
      const CalcPredicateCall& call = (*pending)[i];
      const bool is_positive = call.pred->cls() == PredicateClass::kPositive;
      if (is_positive != positives || (!force && !Covered(acc, call))) {
        ++i;
        continue;
      }
      FTS_ASSIGN_OR_RETURN(acc, ApplyPredicate(std::move(acc), call));
      pending->erase(pending->begin() + static_cast<long>(i));
    }
    return Status::OK();
  };
  FTS_RETURN_IF_ERROR(pass(true));
  FTS_RETURN_IF_ERROR(pass(false));
  return ResolveDeferred(std::move(acc), *pending);
}

StatusOr<PartialExpr> CompileRec(const CalcExprPtr& e, PendingPreds* pending);

/// Compiles a subformula in a fresh predicate scope: everything pending is
/// forced and every deferral resolved before the result crosses a ∨ / ¬
/// boundary (floating predicates across those would change semantics).
StatusOr<PartialExpr> CompileSealed(const CalcExprPtr& e) {
  PendingPreds pending;
  FTS_ASSIGN_OR_RETURN(PartialExpr out, CompileRec(e, &pending));
  FTS_ASSIGN_OR_RETURN(out, TryApplyPending(std::move(out), &pending, /*force=*/true));
  if (!pending.empty()) {
    return Status::Internal("forced application left pending predicates");
  }
  return out;
}

void FlattenAnd(const CalcExprPtr& e, std::vector<CalcExprPtr>* out) {
  if (e->kind() == CalcExpr::Kind::kAnd) {
    FlattenAnd(e->left(), out);
    FlattenAnd(e->right(), out);
  } else {
    out->push_back(e);
  }
}

/// The relation of all (node, p_1..p_k) combinations over variables `vars`.
StatusOr<PartialExpr> PosUniverse(const std::set<VarId>& vars) {
  PartialExpr out;
  for (VarId v : vars) {
    PartialExpr pos{FtaExpr::HasPos(), {v}, {}};
    FTS_ASSIGN_OR_RETURN(out, NaturalJoin(out, pos));
  }
  return out;
}

StatusOr<PartialExpr> CompileAnd(const CalcExprPtr& e, PendingPreds* pending) {
  std::vector<CalcExprPtr> conjuncts;
  FlattenAnd(e, &conjuncts);

  std::vector<CalcExprPtr> relational;
  std::vector<CalcExprPtr> closed_nots;
  for (const CalcExprPtr& c : conjuncts) {
    if (c->kind() == CalcExpr::Kind::kPred) {
      pending->push_back(c->pred());
    } else if (c->kind() == CalcExpr::Kind::kNot && FreeVars(c->child()).empty()) {
      closed_nots.push_back(c);
    } else {
      relational.push_back(c);
    }
  }
  // Open negations join last (their universes are expensive).
  std::stable_partition(relational.begin(), relational.end(), [](const CalcExprPtr& c) {
    return c->kind() != CalcExpr::Kind::kNot;
  });

  PartialExpr acc;
  for (const CalcExprPtr& c : relational) {
    FTS_ASSIGN_OR_RETURN(PartialExpr part, CompileRec(c, pending));
    FTS_ASSIGN_OR_RETURN(acc, NaturalJoin(acc, part));
  }
  FTS_ASSIGN_OR_RETURN(acc, TryApplyPending(std::move(acc), pending, /*force=*/false));

  for (const CalcExprPtr& c : closed_nots) {
    FTS_ASSIGN_OR_RETURN(PartialExpr body, CompileSealed(c->child()));
    if (!body.cols.empty()) {
      return Status::Internal("closed negation compiled to open relation");
    }
    if (acc.expr == nullptr) {
      FTS_ASSIGN_OR_RETURN(FtaExprPtr d,
                           FtaExpr::Difference(FtaExpr::SearchContext(), body.expr));
      acc = PartialExpr{std::move(d), {}, {}};
      continue;
    }
    FTS_ASSIGN_OR_RETURN(FtaExprPtr aj, FtaExpr::AntiJoin(acc.expr, body.expr));
    acc = PartialExpr{std::move(aj), acc.cols, acc.deferred};
  }
  return acc;
}

StatusOr<PartialExpr> CompileRec(const CalcExprPtr& e, PendingPreds* pending) {
  switch (e->kind()) {
    case CalcExpr::Kind::kHasPos:
      return PartialExpr{FtaExpr::HasPos(), {e->var()}, {}};
    case CalcExpr::Kind::kHasToken:
      return PartialExpr{FtaExpr::Token(e->token()), {e->var()}, {}};
    case CalcExpr::Kind::kPred:
      pending->push_back(e->pred());
      return PartialExpr{};
    case CalcExpr::Kind::kAnd:
      return CompileAnd(e, pending);
    case CalcExpr::Kind::kOr: {
      FTS_ASSIGN_OR_RETURN(PartialExpr l, CompileSealed(e->left()));
      FTS_ASSIGN_OR_RETURN(PartialExpr r, CompileSealed(e->right()));
      std::set<VarId> want(l.cols.begin(), l.cols.end());
      want.insert(r.cols.begin(), r.cols.end());
      if (l.expr == nullptr || r.expr == nullptr) {
        // A neutral branch makes the disjunction neutral over `want`.
        return PosUniverse(want);
      }
      FTS_ASSIGN_OR_RETURN(l, PadVars(std::move(l), want));
      FTS_ASSIGN_OR_RETURN(r, PadVars(std::move(r), want));
      FTS_ASSIGN_OR_RETURN(FtaExprPtr u, FtaExpr::Union(l.expr, r.expr));
      return PartialExpr{std::move(u), l.cols, {}};
    }
    case CalcExpr::Kind::kNot: {
      FTS_ASSIGN_OR_RETURN(PartialExpr b, CompileSealed(e->child()));
      if (b.expr == nullptr) {
        return Status::Unsupported("negation of an unconstrained formula");
      }
      if (b.cols.empty()) {
        FTS_ASSIGN_OR_RETURN(FtaExprPtr d,
                             FtaExpr::Difference(FtaExpr::SearchContext(), b.expr));
        return PartialExpr{std::move(d), {}, {}};
      }
      std::set<VarId> vars(b.cols.begin(), b.cols.end());
      FTS_ASSIGN_OR_RETURN(PartialExpr universe, PosUniverse(vars));
      FTS_ASSIGN_OR_RETURN(FtaExprPtr d, FtaExpr::Difference(universe.expr, b.expr));
      return PartialExpr{std::move(d), universe.cols, {}};
    }
    case CalcExpr::Kind::kExists: {
      FTS_ASSIGN_OR_RETURN(PartialExpr b, CompileRec(e->child(), pending));
      const VarId v = e->var();
      bool referenced = false;
      for (const CalcPredicateCall& call : *pending) {
        if (std::find(call.vars.begin(), call.vars.end(), v) != call.vars.end()) {
          referenced = true;
          break;
        }
      }
      int ci = b.expr == nullptr ? -1 : FindCol(b.cols, v);
      if (referenced) {
        if (ci < 0) {
          // Bind the variable physically so the floating predicate can
          // apply at an outer scope; defer its projection.
          PartialExpr pos{FtaExpr::HasPos(), {v}, {}};
          FTS_ASSIGN_OR_RETURN(b, NaturalJoin(b, pos));
        }
        b.deferred.insert(v);
        return b;
      }
      if (ci < 0) {
        // The body never mentions v: ∃v(hasPos ∧ B) ≡ B on non-empty nodes.
        FTS_ASSIGN_OR_RETURN(FtaExprPtr nonempty,
                             FtaExpr::Project(FtaExpr::HasPos(), {}));
        return NaturalJoin(b, PartialExpr{std::move(nonempty), {}, {}});
      }
      std::vector<int> keep;
      std::vector<VarId> cols;
      for (size_t i = 0; i < b.cols.size(); ++i) {
        if (static_cast<int>(i) == ci) continue;
        keep.push_back(static_cast<int>(i));
        cols.push_back(b.cols[i]);
      }
      FTS_ASSIGN_OR_RETURN(FtaExprPtr p, FtaExpr::Project(b.expr, std::move(keep)));
      return PartialExpr{std::move(p), std::move(cols), b.deferred};
    }
    case CalcExpr::Kind::kForAll:
      return Status::Internal("kForAll must be desugared before compilation");
  }
  return Status::Internal("unreachable calculus kind");
}

}  // namespace

StatusOr<FtaExprPtr> CompileQuery(const CalcQuery& query) {
  FTS_RETURN_IF_ERROR(ValidateQuery(query));
  CalcExprPtr expr = DesugarForAll(query.expr);
  FTS_ASSIGN_OR_RETURN(PartialExpr c, CompileSealed(expr));
  if (c.expr == nullptr) {
    // An unconstrained query matches every context node.
    return FtaExpr::SearchContext();
  }
  if (!c.cols.empty()) {
    return Status::Internal("closed query compiled to open relation");
  }
  return c.expr;
}

StatusOr<CompiledExpr> CompileExpr(const CalcExprPtr& expr) {
  if (!expr) return Status::InvalidArgument("null calculus expression");
  PendingPreds pending;
  FTS_ASSIGN_OR_RETURN(PartialExpr out, CompileRec(DesugarForAll(expr), &pending));
  FTS_ASSIGN_OR_RETURN(out, TryApplyPending(std::move(out), &pending, /*force=*/true));
  if (out.expr == nullptr) {
    return Status::Unsupported("expression compiles to the neutral relation");
  }
  return CompiledExpr{out.expr, out.cols};
}

}  // namespace fts
