#include "compile/fta_to_ftc.h"

#include <set>

namespace fts {

namespace {

/// A closed formula that is true on every context node ("SearchContext" has
/// no position constraint): ∃v hasPos ∨ ¬∃v hasPos.
CalcExprPtr TrueFormula(VarId* next_fresh) {
  VarId v1 = (*next_fresh)++;
  VarId v2 = (*next_fresh)++;
  return CalcExpr::Or(CalcExpr::Exists(v1, CalcExpr::HasPos(v1)),
                      CalcExpr::Not(CalcExpr::Exists(v2, CalcExpr::HasPos(v2))));
}

}  // namespace

StatusOr<CalcExprPtr> TranslateFtaToCalc(const FtaExprPtr& expr,
                                         const std::vector<VarId>& out_vars,
                                         VarId* next_fresh) {
  if (!expr) return Status::InvalidArgument("null algebra expression");
  if (out_vars.size() != expr->num_cols()) {
    return Status::InvalidArgument("out_vars size " + std::to_string(out_vars.size()) +
                                   " does not match expression columns " +
                                   std::to_string(expr->num_cols()));
  }
  switch (expr->kind()) {
    case FtaExpr::Kind::kSearchContext:
      return TrueFormula(next_fresh);
    case FtaExpr::Kind::kHasPos:
      return CalcExpr::HasPos(out_vars[0]);
    case FtaExpr::Kind::kToken:
      return CalcExpr::HasToken(out_vars[0], expr->token());
    case FtaExpr::Kind::kProject: {
      const FtaExprPtr& child = expr->child();
      std::vector<VarId> child_vars(child->num_cols(), 0);
      std::vector<bool> kept(child->num_cols(), false);
      for (size_t i = 0; i < expr->project_cols().size(); ++i) {
        const int c = expr->project_cols()[i];
        if (kept[c]) {
          return Status::Unsupported(
              "projection duplicating a column cannot be translated");
        }
        kept[c] = true;
        child_vars[c] = out_vars[i];
      }
      std::vector<VarId> dropped;
      for (size_t c = 0; c < child_vars.size(); ++c) {
        if (!kept[c]) {
          child_vars[c] = (*next_fresh)++;
          dropped.push_back(child_vars[c]);
        }
      }
      FTS_ASSIGN_OR_RETURN(CalcExprPtr body,
                           TranslateFtaToCalc(child, child_vars, next_fresh));
      // Innermost dropped variable quantified first.
      for (auto it = dropped.rbegin(); it != dropped.rend(); ++it) {
        body = CalcExpr::Exists(*it, std::move(body));
      }
      return body;
    }
    case FtaExpr::Kind::kJoin: {
      const size_t lc = expr->left()->num_cols();
      std::vector<VarId> lv(out_vars.begin(), out_vars.begin() + lc);
      std::vector<VarId> rv(out_vars.begin() + lc, out_vars.end());
      FTS_ASSIGN_OR_RETURN(CalcExprPtr l,
                           TranslateFtaToCalc(expr->left(), lv, next_fresh));
      FTS_ASSIGN_OR_RETURN(CalcExprPtr r,
                           TranslateFtaToCalc(expr->right(), rv, next_fresh));
      return CalcExpr::And(std::move(l), std::move(r));
    }
    case FtaExpr::Kind::kSelect: {
      FTS_ASSIGN_OR_RETURN(CalcExprPtr body,
                           TranslateFtaToCalc(expr->child(), out_vars, next_fresh));
      std::vector<VarId> pred_vars;
      pred_vars.reserve(expr->pred().cols.size());
      for (int c : expr->pred().cols) pred_vars.push_back(out_vars[c]);
      CalcExprPtr p = CalcExpr::Pred(expr->pred().pred, std::move(pred_vars),
                                     expr->pred().consts);
      return CalcExpr::And(std::move(body), std::move(p));
    }
    case FtaExpr::Kind::kUnion: {
      FTS_ASSIGN_OR_RETURN(CalcExprPtr l,
                           TranslateFtaToCalc(expr->left(), out_vars, next_fresh));
      FTS_ASSIGN_OR_RETURN(CalcExprPtr r,
                           TranslateFtaToCalc(expr->right(), out_vars, next_fresh));
      return CalcExpr::Or(std::move(l), std::move(r));
    }
    case FtaExpr::Kind::kIntersect: {
      FTS_ASSIGN_OR_RETURN(CalcExprPtr l,
                           TranslateFtaToCalc(expr->left(), out_vars, next_fresh));
      FTS_ASSIGN_OR_RETURN(CalcExprPtr r,
                           TranslateFtaToCalc(expr->right(), out_vars, next_fresh));
      return CalcExpr::And(std::move(l), std::move(r));
    }
    case FtaExpr::Kind::kAntiJoin: {
      FTS_ASSIGN_OR_RETURN(CalcExprPtr l,
                           TranslateFtaToCalc(expr->left(), out_vars, next_fresh));
      FTS_ASSIGN_OR_RETURN(CalcExprPtr r,
                           TranslateFtaToCalc(expr->right(), {}, next_fresh));
      return CalcExpr::And(std::move(l), CalcExpr::Not(std::move(r)));
    }
    case FtaExpr::Kind::kDifference: {
      FTS_ASSIGN_OR_RETURN(CalcExprPtr l,
                           TranslateFtaToCalc(expr->left(), out_vars, next_fresh));
      FTS_ASSIGN_OR_RETURN(CalcExprPtr r,
                           TranslateFtaToCalc(expr->right(), out_vars, next_fresh));
      return CalcExpr::And(std::move(l), CalcExpr::Not(std::move(r)));
    }
  }
  return Status::Internal("unreachable algebra kind");
}

StatusOr<CalcQuery> TranslateFtaQuery(const FtaExprPtr& expr) {
  if (!expr) return Status::InvalidArgument("null algebra expression");
  if (expr->num_cols() != 0) {
    return Status::InvalidArgument(
        "algebra queries must produce a single-attribute (CNode) relation");
  }
  VarId fresh = 0;
  FTS_ASSIGN_OR_RETURN(CalcExprPtr body, TranslateFtaToCalc(expr, {}, &fresh));
  return CalcQuery{std::move(body)};
}

}  // namespace fts
