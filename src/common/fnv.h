// FNV-1a hashing shared by the index envelope checksum and the per-block
// payload checksums of the v3 on-disk format. The streaming form lets the
// v3 writer/loader checksum the header and directory regions of a file
// while hopping over (never touching) the block payload bytes in between.

#ifndef FTS_COMMON_FNV_H_
#define FTS_COMMON_FNV_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fts {

inline constexpr uint64_t kFnv1aSeed = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnv1aPrime = 0x100000001b3ULL;

/// Folds `data` into a running FNV-1a 64 state (start from kFnv1aSeed).
inline uint64_t Fnv1aAccumulate(uint64_t state, std::string_view data) {
  for (char c : data) {
    state ^= static_cast<uint8_t>(c);
    state *= kFnv1aPrime;
  }
  return state;
}

/// One-shot FNV-1a 64 of `data`.
inline uint64_t Fnv1a64(std::string_view data) {
  return Fnv1aAccumulate(kFnv1aSeed, data);
}

/// 32-bit digest via xor-folding the 64-bit hash — the per-block payload
/// checksum of the v3 index format (4 bytes a block keeps the skip
/// directory small while still catching any single-bit payload flip).
inline uint32_t Fnv1a32(std::string_view data) {
  const uint64_t h = Fnv1a64(data);
  return static_cast<uint32_t>(h ^ (h >> 32));
}

}  // namespace fts

#endif  // FTS_COMMON_FNV_H_
