// Status and StatusOr: exception-free error handling for the ftsearch
// library, in the style of Arrow / RocksDB / absl.
//
// All fallible public APIs return Status (or StatusOr<T> when they also
// produce a value). Ok() is the success singleton; error statuses carry a
// code and a human-readable message (for parsers, the message embeds the
// offending query offset).

#ifndef FTS_COMMON_STATUS_H_
#define FTS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace fts {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (bad query text, bad parameters)
  kNotFound,          ///< referenced entity does not exist (token, predicate)
  kUnsupported,       ///< operation outside the implemented language subset
  kCorruption,        ///< persistent index data failed validation
  kIOError,           ///< underlying file operation failed
  kInternal,          ///< invariant violation inside the library
  kDeadlineExceeded,  ///< the query's ExecContext deadline expired mid-flight
  kUnavailable,       ///< service not accepting work (shut down / draining)
};

/// Returns the canonical spelling of a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus (for errors) a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  /// Success singleton.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<Code>: <message>"; intended for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status. Dereferencing a non-OK
/// StatusOr is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (success).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from an error status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace fts

/// Propagates an error status to the caller; evaluates `expr` once.
#define FTS_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::fts::Status _fts_status = (expr);            \
    if (!_fts_status.ok()) return _fts_status;     \
  } while (0)

/// Assigns the value of a StatusOr expression to `lhs`, or propagates the
/// error. `lhs` may be a declaration, e.g. FTS_ASSIGN_OR_RETURN(auto x, F()).
#define FTS_ASSIGN_OR_RETURN(lhs, expr)                      \
  FTS_ASSIGN_OR_RETURN_IMPL_(FTS_CONCAT_(_fts_sor, __LINE__), lhs, expr)

#define FTS_CONCAT_INNER_(a, b) a##b
#define FTS_CONCAT_(a, b) FTS_CONCAT_INNER_(a, b)
#define FTS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)           \
  auto tmp = (expr);                                         \
  if (!tmp.ok()) return tmp.status();                        \
  lhs = std::move(tmp).value()

#endif  // FTS_COMMON_STATUS_H_
