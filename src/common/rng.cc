#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fts {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return lo + Uniform(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(size_t rank) const {
  assert(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace fts
