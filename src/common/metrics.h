// Machine-independent cost counters collected during query evaluation.
//
// The paper's complexity model (Section 5.1) counts sequential inverted-list
// accesses; these counters let the benchmark harness validate the *shape* of
// the complexity hierarchy (Figure 3) without depending on wall-clock noise.

#ifndef FTS_COMMON_METRICS_H_
#define FTS_COMMON_METRICS_H_

#include <cstdint>
#include <string>

namespace fts {

/// Per-query evaluation cost counters. Every engine resets and fills one of
/// these for each Evaluate() call; all counters are cumulative within a call.
struct EvalCounters {
  /// Inverted-list entries visited via nextEntry() (one per (node, token)).
  uint64_t entries_scanned = 0;
  /// Individual positions read from PosLists.
  uint64_t positions_scanned = 0;
  /// Tuples materialized by the algebra engine (COMP only; pipelined
  /// engines materialize nothing).
  uint64_t tuples_materialized = 0;
  /// Position-predicate evaluations.
  uint64_t predicate_evals = 0;
  /// advanceNode/advancePosition calls on pipelined cursors.
  uint64_t cursor_ops = 0;
  /// Ordering permutations executed (NPRED only; 1 for everything else).
  uint64_t orderings_run = 0;
  /// Skip-header probes made by SeekEntry (binary-search steps over the
  /// block skip table, or over raw entries for uncompressed lists). These
  /// are *not* sequential accesses in the paper's model; they are reported
  /// separately so the paper's operation-count figures stay honest.
  uint64_t skip_checks = 0;
  /// Compressed blocks decoded by block cursors (sequential or seek).
  uint64_t blocks_decoded = 0;
  /// Posting entries decoded from compressed blocks. A seek that lands in
  /// one block decodes one block's worth, independent of list length.
  uint64_t entries_decoded = 0;
  /// Positions decoded from compressed PosList payloads (charged on the
  /// first GetPositions() of an entry). Node-level work — df lookups, BOOL
  /// merges, zig-zag alignment — keeps this at zero.
  uint64_t positions_decoded = 0;
  /// Blocks whose ids + entry headers were decoded in one bulk pass through
  /// the group varint decoder (every cursor block load takes this path; a
  /// cache hit does not).
  uint64_t blocks_bulk_decoded = 0;
  /// Decoded-block cache hits: block loads served from a per-query (L1)
  /// DecodedBlockCache without decoding anything.
  uint64_t cache_hits = 0;
  /// Decoded-block cache misses: block loads that decoded and inserted (or,
  /// with an L2 attached, fell through to it).
  uint64_t cache_misses = 0;
  /// Cross-query SharedBlockCache (L2) hits: block loads served from the
  /// shard maps without decoding — typically blocks another query already
  /// paid to bulk-decode (and, on mmap-served indexes, first-touch
  /// validate).
  uint64_t shared_cache_hits = 0;
  /// Cross-query SharedBlockCache (L2) misses: block loads that decoded and
  /// published the block for later queries.
  uint64_t shared_cache_misses = 0;
  /// Blocks that passed first-touch validation (checksum + structure) while
  /// this query was running — nonzero only on the first queries after a
  /// lazy (mmap) index load; once a block's validation is memoized, later
  /// decodes charge nothing here.
  uint64_t first_touch_validations = 0;
  /// Blocks a block-max top-k evaluation hopped over because their summed
  /// impact upper bounds could not beat the heap threshold — blocks that a
  /// full evaluation would have decoded and this query never did. The
  /// early-termination win in one number.
  uint64_t blocks_skipped_by_score = 0;
  /// Varint groups decoded through a SIMD arm (one per bulk group-decoder
  /// call — entry-header streams, position-triple chunks, bitset-block
  /// count/length streams). Zero when the scalar arm is dispatched
  /// (FTS_FORCE_SCALAR_DECODE=1 or no SSSE3), so tests can assert the
  /// intended arm actually ran.
  uint64_t simd_groups_decoded = 0;
  /// Dense (bitset-encoded) block pairs intersected at word level by the
  /// BOOL zig-zag AND fast path instead of entry-at-a-time seeking.
  uint64_t bitset_blocks_intersected = 0;
  /// Phrase/NEAR operators the multi-index planner routed to an auxiliary
  /// (frequent-term, other-term) pair list instead of the position
  /// pipeline (docs/pair_index.md). One per routed operator, including
  /// routes that prove the result empty without touching a list.
  uint64_t pair_seeks = 0;
  /// Pair-list entries (one per matching node) walked by routed operators.
  /// The pair-path analogue of entries_scanned; the ratio against the
  /// pipeline's entries_scanned on the same query is the win.
  uint64_t pair_entries_decoded = 0;

  void Reset() { *this = EvalCounters{}; }

  /// Field-wise accumulation — the one aggregation routine shared by the
  /// NPRED per-ordering loop, ExecContext, and service-level metrics, so no
  /// caller hand-copies field sums (and a new counter added here propagates
  /// everywhere automatically).
  void MergeFrom(const EvalCounters& o) { *this += o; }

  EvalCounters& operator+=(const EvalCounters& o) {
    entries_scanned += o.entries_scanned;
    positions_scanned += o.positions_scanned;
    tuples_materialized += o.tuples_materialized;
    predicate_evals += o.predicate_evals;
    cursor_ops += o.cursor_ops;
    orderings_run += o.orderings_run;
    skip_checks += o.skip_checks;
    blocks_decoded += o.blocks_decoded;
    entries_decoded += o.entries_decoded;
    positions_decoded += o.positions_decoded;
    blocks_bulk_decoded += o.blocks_bulk_decoded;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    shared_cache_hits += o.shared_cache_hits;
    shared_cache_misses += o.shared_cache_misses;
    first_touch_validations += o.first_touch_validations;
    blocks_skipped_by_score += o.blocks_skipped_by_score;
    simd_groups_decoded += o.simd_groups_decoded;
    bitset_blocks_intersected += o.bitset_blocks_intersected;
    pair_seeks += o.pair_seeks;
    pair_entries_decoded += o.pair_entries_decoded;
    return *this;
  }

  std::string ToString() const {
    return "entries=" + std::to_string(entries_scanned) +
           " positions=" + std::to_string(positions_scanned) +
           " tuples=" + std::to_string(tuples_materialized) +
           " preds=" + std::to_string(predicate_evals) +
           " cursor_ops=" + std::to_string(cursor_ops) +
           " orderings=" + std::to_string(orderings_run) +
           " skip_checks=" + std::to_string(skip_checks) +
           " blocks_decoded=" + std::to_string(blocks_decoded) +
           " entries_decoded=" + std::to_string(entries_decoded) +
           " positions_decoded=" + std::to_string(positions_decoded) +
           " blocks_bulk_decoded=" + std::to_string(blocks_bulk_decoded) +
           " cache_hits=" + std::to_string(cache_hits) +
           " cache_misses=" + std::to_string(cache_misses) +
           " l2_hits=" + std::to_string(shared_cache_hits) +
           " l2_misses=" + std::to_string(shared_cache_misses) +
           " first_touch=" + std::to_string(first_touch_validations) +
           " blocks_skipped_by_score=" + std::to_string(blocks_skipped_by_score) +
           " simd_groups=" + std::to_string(simd_groups_decoded) +
           " bitset_ands=" + std::to_string(bitset_blocks_intersected) +
           " pair_seeks=" + std::to_string(pair_seeks) +
           " pair_entries=" + std::to_string(pair_entries_decoded);
  }
};

}  // namespace fts

#endif  // FTS_COMMON_METRICS_H_
