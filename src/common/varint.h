// LEB128-style variable-length integer coding used by the on-disk inverted
// index format. Posting lists store node ids and position offsets as deltas,
// so most values fit in one or two bytes.
//
// Two decode tiers are provided. The Status-returning GetVarint* functions
// are the convenient form used on cold paths (index load framing, skip
// tables). The pointer-based GetVarint32Ptr / GetVarint32Group family is
// the hot-path form used by the bulk block decoder: one-byte values decode
// inline with a single branch, the multi-byte tail is an out-of-line
// unrolled loop, and malformed input (truncation, >32-bit value) is
// reported as a null pointer instead of a Status allocation.

#ifndef FTS_COMMON_VARINT_H_
#define FTS_COMMON_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace fts {

/// Appends `value` to `out` as an unsigned LEB128 varint (1..10 bytes).
void PutVarint64(std::string* out, uint64_t value);

/// Appends `value` as a 32-bit varint (1..5 bytes).
void PutVarint32(std::string* out, uint32_t value);

/// Decodes a varint from `data` starting at `*offset`, advancing `*offset`
/// past the encoded bytes. Returns Corruption if the input is truncated or
/// the encoding exceeds 10 bytes. Taking a string_view lets the index
/// loader parse borrowed buffers (an mmap'd file region) without copying.
Status GetVarint64(std::string_view data, size_t* offset, uint64_t* value);

/// 32-bit variant of GetVarint64; fails on values that overflow 32 bits.
Status GetVarint32(std::string_view data, size_t* offset, uint32_t* value);

/// Out-of-line continuation of GetVarint32Ptr for multi-byte values: an
/// unrolled decode of up to 5 bytes. Returns the pointer past the varint,
/// or nullptr on truncated input / values that overflow 32 bits.
const uint8_t* GetVarint32PtrFallback(const uint8_t* p, const uint8_t* limit,
                                      uint32_t* value);

/// Hot-path decode of one varint32 from [p, limit). One-byte values (the
/// overwhelmingly common case for block-local deltas) take a single inline
/// branch. Returns the pointer past the varint, or nullptr on malformed
/// input (truncation, overflow past 32 bits).
inline const uint8_t* GetVarint32Ptr(const uint8_t* p, const uint8_t* limit,
                                     uint32_t* value) {
  if (p < limit) {
    const uint32_t result = *p;
    if ((result & 0x80) == 0) {
      *value = result;
      return p + 1;
    }
  }
  return GetVarint32PtrFallback(p, limit, value);
}

/// Group decode of `count` varint32s from [p, limit) into out[0..count).
/// While at least four maximal-width varints' worth of bytes remain, the
/// inner loop decodes four values per iteration without per-byte limit
/// checks (the word-at-a-time fast path of the bulk block decoder); the
/// tail falls back to the checked decoder. Returns the pointer past the
/// last varint, or nullptr on malformed input.
const uint8_t* GetVarint32Group(const uint8_t* p, const uint8_t* limit,
                                uint32_t* out, size_t count);

}  // namespace fts

#endif  // FTS_COMMON_VARINT_H_
