// LEB128-style variable-length integer coding used by the on-disk inverted
// index format. Posting lists store node ids and position offsets as deltas,
// so most values fit in one or two bytes.

#ifndef FTS_COMMON_VARINT_H_
#define FTS_COMMON_VARINT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace fts {

/// Appends `value` to `out` as an unsigned LEB128 varint (1..10 bytes).
void PutVarint64(std::string* out, uint64_t value);

/// Appends `value` as a 32-bit varint (1..5 bytes).
void PutVarint32(std::string* out, uint32_t value);

/// Decodes a varint from `data` starting at `*offset`, advancing `*offset`
/// past the encoded bytes. Returns Corruption if the input is truncated or
/// the encoding exceeds 10 bytes.
Status GetVarint64(const std::string& data, size_t* offset, uint64_t* value);

/// 32-bit variant of GetVarint64; fails on values that overflow 32 bits.
Status GetVarint32(const std::string& data, size_t* offset, uint32_t* value);

}  // namespace fts

#endif  // FTS_COMMON_VARINT_H_
