// Seeded pseudo-random number generation for workload synthesis.
//
// Everything driven by Rng is deterministic given the seed, which makes the
// synthetic corpora and query workloads in src/workload reproducible across
// runs and machines (the benchmark harness depends on this).

#ifndef FTS_COMMON_RNG_H_
#define FTS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fts {

/// Deterministic 64-bit PRNG (splitmix64-seeded xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound); bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t state_[4];
};

/// Samples ranks from a Zipf(s) distribution over {0, ..., n-1} using a
/// precomputed inverse-CDF table; rank 0 is the most frequent outcome.
/// Matches the frequency shape of natural-language vocabularies, which is
/// what controls inverted-list entry counts in the paper's experiments.
class ZipfSampler {
 public:
  /// `n` is the universe size, `s` the skew exponent (s=1.0 ~ English text).
  ZipfSampler(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of `rank` under this distribution.
  double Probability(size_t rank) const;

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

}  // namespace fts

#endif  // FTS_COMMON_RNG_H_
