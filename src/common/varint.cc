#include "common/varint.h"

#include <limits>

namespace fts {

void PutVarint64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void PutVarint32(std::string* out, uint32_t value) {
  PutVarint64(out, value);
}

Status GetVarint64(std::string_view data, size_t* offset, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  size_t pos = *offset;
  while (true) {
    if (pos >= data.size()) {
      return Status::Corruption("truncated varint at offset " + std::to_string(*offset));
    }
    if (shift >= 64) {
      return Status::Corruption("varint too long at offset " + std::to_string(*offset));
    }
    uint8_t byte = static_cast<uint8_t>(data[pos++]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *offset = pos;
  *value = result;
  return Status::OK();
}

Status GetVarint32(std::string_view data, size_t* offset, uint32_t* value) {
  uint64_t wide = 0;
  FTS_RETURN_IF_ERROR(GetVarint64(data, offset, &wide));
  if (wide > std::numeric_limits<uint32_t>::max()) {
    return Status::Corruption("varint32 overflow at offset " + std::to_string(*offset));
  }
  *value = static_cast<uint32_t>(wide);
  return Status::OK();
}

const uint8_t* GetVarint32PtrFallback(const uint8_t* p, const uint8_t* limit,
                                      uint32_t* value) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && p < limit; shift += 7) {
    const uint32_t byte = *p++;
    if (byte & 0x80) {
      // The fifth byte carries bits 28..31 plus a continuation flag; either
      // a set flag or payload bits above bit 31 means the value overflows
      // 32 bits (the encoder never emits such sequences for uint32_t).
      if (shift == 28) return nullptr;
      result |= (byte & 0x7F) << shift;
    } else {
      if (shift == 28 && byte > 0x0F) return nullptr;
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;  // truncated
}

namespace {

/// Decodes one varint32 with no limit checks: the caller has proven at
/// least 5 readable bytes remain. Overlong (>5 byte) encodings still fail.
inline const uint8_t* GetVarint32Unchecked(const uint8_t* p, uint32_t* value) {
  uint32_t byte = *p;
  if ((byte & 0x80) == 0) {  // 1 byte: block-local deltas live here
    *value = byte;
    return p + 1;
  }
  uint32_t result = byte & 0x7F;
  byte = p[1];
  if ((byte & 0x80) == 0) {  // 2 bytes
    *value = result | (byte << 7);
    return p + 2;
  }
  result |= (byte & 0x7F) << 7;
  byte = p[2];
  if ((byte & 0x80) == 0) {
    *value = result | (byte << 14);
    return p + 3;
  }
  result |= (byte & 0x7F) << 14;
  byte = p[3];
  if ((byte & 0x80) == 0) {
    *value = result | (byte << 21);
    return p + 4;
  }
  result |= (byte & 0x7F) << 21;
  byte = p[4];
  if ((byte & 0x80) != 0 || byte > 0x0F) return nullptr;  // overflow
  *value = result | (byte << 28);
  return p + 5;
}

}  // namespace

const uint8_t* GetVarint32Group(const uint8_t* p, const uint8_t* limit,
                                uint32_t* out, size_t count) {
  constexpr size_t kMaxVarint32Bytes = 5;
  size_t i = 0;
  // Unrolled fast loop: four unchecked decodes per iteration as long as
  // even four maximal-width varints cannot run past `limit`.
  while (i + 4 <= count &&
         limit - p >= static_cast<std::ptrdiff_t>(4 * kMaxVarint32Bytes)) {
    p = GetVarint32Unchecked(p, &out[i]);
    if (p == nullptr) return nullptr;
    p = GetVarint32Unchecked(p, &out[i + 1]);
    if (p == nullptr) return nullptr;
    p = GetVarint32Unchecked(p, &out[i + 2]);
    if (p == nullptr) return nullptr;
    p = GetVarint32Unchecked(p, &out[i + 3]);
    if (p == nullptr) return nullptr;
    i += 4;
  }
  for (; i < count; ++i) {
    p = GetVarint32Ptr(p, limit, &out[i]);
    if (p == nullptr) return nullptr;
  }
  return p;
}

}  // namespace fts
