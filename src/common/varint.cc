#include "common/varint.h"

#include <limits>

namespace fts {

void PutVarint64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void PutVarint32(std::string* out, uint32_t value) {
  PutVarint64(out, value);
}

Status GetVarint64(const std::string& data, size_t* offset, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  size_t pos = *offset;
  while (true) {
    if (pos >= data.size()) {
      return Status::Corruption("truncated varint at offset " + std::to_string(*offset));
    }
    if (shift >= 64) {
      return Status::Corruption("varint too long at offset " + std::to_string(*offset));
    }
    uint8_t byte = static_cast<uint8_t>(data[pos++]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *offset = pos;
  *value = result;
  return Status::OK();
}

Status GetVarint32(const std::string& data, size_t* offset, uint32_t* value) {
  uint64_t wide = 0;
  FTS_RETURN_IF_ERROR(GetVarint64(data, offset, &wide));
  if (wide > std::numeric_limits<uint32_t>::max()) {
    return Status::Corruption("varint32 overflow at offset " + std::to_string(*offset));
  }
  *value = static_cast<uint32_t>(wide);
  return Status::OK();
}

}  // namespace fts
