#include "common/status.h"

namespace fts {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace fts
