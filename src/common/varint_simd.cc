#include "common/varint_simd.h"

#include <cstdlib>
#include <cstring>

#include "common/varint.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define FTS_VARINT_SIMD_X86 1
#include <immintrin.h>
#else
#define FTS_VARINT_SIMD_X86 0
#endif

namespace fts {

bool CpuSupportsSsse3() {
#if FTS_VARINT_SIMD_X86
  return __builtin_cpu_supports("ssse3") != 0;
#else
  return false;
#endif
}

bool CpuSupportsAvx2() {
#if FTS_VARINT_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

#if FTS_VARINT_SIMD_X86

namespace {

/// Shuffle table indexed by the low 12 continuation bits of a 16-byte
/// load's movemask. Each entry gathers up to eight 1..2-byte varints into
/// eight 16-bit lanes: the low control byte selects the varint's first
/// byte, the high control byte its second byte (0x80 = none, pshufb zeroes
/// the lane). Only the 12-bit window is trusted — a varint needs its
/// terminator's continuation bit inside the mask to be decoded, so entries
/// never reference bytes 12..15 and `consumed` stays <= 12. A varint of 3+
/// bytes (two consecutive continuation bits) stops the entry early; num==0
/// then routes the first varint through the checked scalar decoder, which
/// is where the 5-byte overflow rejection lives.
struct ShuffleTable {
  alignas(16) uint8_t control[4096][16];
  uint8_t num[4096];       // varints gathered (0..8)
  uint8_t consumed[4096];  // input bytes consumed (0..12)
};

const ShuffleTable* BuildShuffleTable() {
  static const ShuffleTable* table = [] {
    auto* t = new ShuffleTable();
    for (uint32_t mask = 0; mask < 4096; ++mask) {
      std::memset(t->control[mask], 0x80, 16);
      uint8_t num = 0;
      uint8_t pos = 0;
      while (num < 8 && pos < 12) {
        if (((mask >> pos) & 1u) == 0) {  // 1-byte varint
          t->control[mask][2 * num] = pos;
          pos += 1;
        } else if (pos + 1 < 12 && ((mask >> (pos + 1)) & 1u) == 0) {
          t->control[mask][2 * num] = pos;  // 2-byte varint
          t->control[mask][2 * num + 1] = static_cast<uint8_t>(pos + 1);
          pos += 2;
        } else {
          break;  // 3+-byte varint or terminator outside the window
        }
        ++num;
      }
      t->num[mask] = num;
      t->consumed[mask] = pos;
    }
    return t;
  }();
  return table;
}

}  // namespace

__attribute__((target("ssse3"))) const uint8_t* GetVarint32GroupSsse3(
    const uint8_t* p, const uint8_t* limit, uint32_t* out, size_t count) {
  const ShuffleTable* tab = BuildShuffleTable();
  const __m128i zero = _mm_setzero_si128();
  const __m128i low7 = _mm_set1_epi16(0x007F);
  const __m128i high7 = _mm_set1_epi16(0x3F80);
  size_t i = 0;
  while (i + 8 <= count && limit - p >= 16) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const uint32_t mask =
        static_cast<uint32_t>(_mm_movemask_epi8(chunk)) & 0xFFFFu;
    if (mask == 0 && i + 16 <= count) {
      // 16 one-byte values: widen straight to uint32 lanes.
      const __m128i lo = _mm_unpacklo_epi8(chunk, zero);
      const __m128i hi = _mm_unpackhi_epi8(chunk, zero);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                       _mm_unpacklo_epi16(lo, zero));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                       _mm_unpackhi_epi16(lo, zero));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 8),
                       _mm_unpacklo_epi16(hi, zero));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 12),
                       _mm_unpackhi_epi16(hi, zero));
      p += 16;
      i += 16;
      continue;
    }
    const uint32_t m12 = mask & 0xFFFu;
    const uint8_t num = tab->num[m12];
    if (num == 0) {
      // First varint spans 3+ bytes (or is malformed): checked scalar
      // decode of that one varint, then re-enter the vector loop.
      p = GetVarint32Ptr(p, limit, &out[i]);
      if (p == nullptr) return nullptr;
      ++i;
      continue;
    }
    const __m128i ctl = _mm_load_si128(
        reinterpret_cast<const __m128i*>(tab->control[m12]));
    const __m128i lanes = _mm_shuffle_epi8(chunk, ctl);
    // lane = b0 | b1<<8; value = (b0 & 0x7F) | (b1 << 7).
    const __m128i vals =
        _mm_or_si128(_mm_and_si128(lanes, low7),
                     _mm_and_si128(_mm_srli_epi16(lanes, 1), high7));
    // Store all 8 widened lanes (i + 8 <= count); lanes past `num` hold
    // garbage and are overwritten by the next iteration or the tail.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_unpacklo_epi16(vals, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                     _mm_unpackhi_epi16(vals, zero));
    i += num;
    p += tab->consumed[m12];
  }
  for (; i < count; ++i) {
    p = GetVarint32Ptr(p, limit, &out[i]);
    if (p == nullptr) return nullptr;
  }
  return p;
}

__attribute__((target("avx2"))) const uint8_t* GetVarint32GroupAvx2(
    const uint8_t* p, const uint8_t* limit, uint32_t* out, size_t count) {
  const ShuffleTable* tab = BuildShuffleTable();
  const __m128i zero = _mm_setzero_si128();
  const __m128i low7 = _mm_set1_epi16(0x007F);
  const __m128i high7 = _mm_set1_epi16(0x3F80);
  size_t i = 0;
  while (i + 8 <= count && limit - p >= 16) {
    if (limit - p >= 32 && i + 32 <= count) {
      const __m256i wide =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
      if (_mm256_movemask_epi8(wide) == 0) {
        // 32 one-byte values in a row — the overwhelmingly common shape of
        // block-local deltas — widen four 8-byte lanes to uint32.
        const __m128i lo = _mm256_castsi256_si128(wide);
        const __m128i hi = _mm256_extracti128_si256(wide, 1);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm256_cvtepu8_epi32(lo));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 8),
                            _mm256_cvtepu8_epi32(_mm_srli_si128(lo, 8)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 16),
                            _mm256_cvtepu8_epi32(hi));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 24),
                            _mm256_cvtepu8_epi32(_mm_srli_si128(hi, 8)));
        p += 32;
        i += 32;
        continue;
      }
    }
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const uint32_t mask =
        static_cast<uint32_t>(_mm_movemask_epi8(chunk)) & 0xFFFFu;
    if (mask == 0 && i + 16 <= count) {
      const __m128i lo = _mm_unpacklo_epi8(chunk, zero);
      const __m128i hi = _mm_unpackhi_epi8(chunk, zero);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                       _mm_unpacklo_epi16(lo, zero));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                       _mm_unpackhi_epi16(lo, zero));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 8),
                       _mm_unpacklo_epi16(hi, zero));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 12),
                       _mm_unpackhi_epi16(hi, zero));
      p += 16;
      i += 16;
      continue;
    }
    const uint32_t m12 = mask & 0xFFFu;
    const uint8_t num = tab->num[m12];
    if (num == 0) {
      p = GetVarint32Ptr(p, limit, &out[i]);
      if (p == nullptr) return nullptr;
      ++i;
      continue;
    }
    const __m128i ctl = _mm_load_si128(
        reinterpret_cast<const __m128i*>(tab->control[m12]));
    const __m128i lanes = _mm_shuffle_epi8(chunk, ctl);
    const __m128i vals =
        _mm_or_si128(_mm_and_si128(lanes, low7),
                     _mm_and_si128(_mm_srli_epi16(lanes, 1), high7));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_unpacklo_epi16(vals, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                     _mm_unpackhi_epi16(vals, zero));
    i += num;
    p += tab->consumed[m12];
  }
  for (; i < count; ++i) {
    p = GetVarint32Ptr(p, limit, &out[i]);
    if (p == nullptr) return nullptr;
  }
  return p;
}

#else  // !FTS_VARINT_SIMD_X86

const uint8_t* GetVarint32GroupSsse3(const uint8_t* p, const uint8_t* limit,
                                     uint32_t* out, size_t count) {
  return GetVarint32Group(p, limit, out, count);
}

const uint8_t* GetVarint32GroupAvx2(const uint8_t* p, const uint8_t* limit,
                                    uint32_t* out, size_t count) {
  return GetVarint32Group(p, limit, out, count);
}

#endif  // FTS_VARINT_SIMD_X86

namespace {

using Varint32GroupFn = const uint8_t* (*)(const uint8_t*, const uint8_t*,
                                           uint32_t*, size_t);

struct DecodeDispatch {
  DecodeArm arm;
  Varint32GroupFn fn;
};

DecodeDispatch ResolveDispatch() {
  const char* force = std::getenv("FTS_FORCE_SCALAR_DECODE");
  if (force != nullptr && force[0] == '1') {
    return {DecodeArm::kScalar, &GetVarint32Group};
  }
  if (CpuSupportsAvx2()) return {DecodeArm::kAvx2, &GetVarint32GroupAvx2};
  if (CpuSupportsSsse3()) return {DecodeArm::kSsse3, &GetVarint32GroupSsse3};
  return {DecodeArm::kScalar, &GetVarint32Group};
}

const DecodeDispatch& Dispatch() {
  static const DecodeDispatch dispatch = ResolveDispatch();
  return dispatch;
}

}  // namespace

DecodeArm ActiveDecodeArm() { return Dispatch().arm; }

const char* DecodeArmName(DecodeArm arm) {
  switch (arm) {
    case DecodeArm::kScalar:
      return "scalar";
    case DecodeArm::kSsse3:
      return "ssse3";
    case DecodeArm::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const uint8_t* GetVarint32GroupAuto(const uint8_t* p, const uint8_t* limit,
                                    uint32_t* out, size_t count) {
  return Dispatch().fn(p, limit, out, count);
}

}  // namespace fts
