// Runtime-dispatched SIMD group-varint decoding.
//
// GetVarint32Group (common/varint.h) is the scalar bulk decoder used by the
// block posting-list hot paths. This header adds pshufb shuffle-table
// variants of the same contract (masked-VByte style): a 16-byte load's
// continuation-bit movemask indexes a precomputed table whose shuffle
// control gathers up to eight 1..2-byte varints into 16-bit lanes at once;
// longer (3..5 byte) varints and everything near `limit` fall back to the
// checked scalar primitives, so the SIMD arms accept and reject *exactly*
// the byte sequences the scalar decoder does — truncation and 5-byte
// overflow handling included. That equivalence is pinned by
// tests/varint_test.cc differentials.
//
// The arm is chosen once per process from cpuid (AVX2 > SSSE3 > scalar) and
// can be pinned to scalar with FTS_FORCE_SCALAR_DECODE=1 in the environment
// — the CI leg that keeps the portable arm honest on SIMD-capable runners.
// Callers on the decode hot path go through GetVarint32GroupAuto, which
// calls through the resolved arm; ActiveDecodeArm()/DecodeArmName() expose
// the decision for bench context and diagnostics.

#ifndef FTS_COMMON_VARINT_SIMD_H_
#define FTS_COMMON_VARINT_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace fts {

/// Which group-decode implementation GetVarint32GroupAuto dispatches to.
enum class DecodeArm {
  kScalar,  ///< GetVarint32Group (portable fallback / forced via env)
  kSsse3,   ///< 16-byte pshufb shuffle-table kernel
  kAvx2,    ///< SSSE3 kernel + 32-byte all-one-byte fast path
};

/// The arm resolved once at first use from FTS_FORCE_SCALAR_DECODE and
/// cpuid; stable for the process lifetime.
DecodeArm ActiveDecodeArm();

/// Human-readable arm name ("scalar", "ssse3", "avx2") for bench context.
const char* DecodeArmName(DecodeArm arm);

/// True when the dispatched arm is a SIMD kernel (counters charge
/// EvalCounters::simd_groups_decoded only then).
inline bool SimdDecodeActive() { return ActiveDecodeArm() != DecodeArm::kScalar; }

/// CPU capability probes (false on non-x86 builds). Exposed so the
/// differential tests can skip arms the machine cannot run.
bool CpuSupportsSsse3();
bool CpuSupportsAvx2();

/// SIMD arms of GetVarint32Group, same contract: decode `count` varint32s
/// from [p, limit) into out[0..count), returning the pointer past the last
/// varint or nullptr on malformed input (truncation, >32-bit value). On
/// builds without x86 target support they forward to the scalar decoder.
/// Callers must check the matching CpuSupports* before invoking directly;
/// normal code goes through GetVarint32GroupAuto.
const uint8_t* GetVarint32GroupSsse3(const uint8_t* p, const uint8_t* limit,
                                     uint32_t* out, size_t count);
const uint8_t* GetVarint32GroupAvx2(const uint8_t* p, const uint8_t* limit,
                                    uint32_t* out, size_t count);

/// Group decode through the dispatched arm (function pointer resolved once).
const uint8_t* GetVarint32GroupAuto(const uint8_t* p, const uint8_t* limit,
                                    uint32_t* out, size_t count);

}  // namespace fts

#endif  // FTS_COMMON_VARINT_SIMD_H_
