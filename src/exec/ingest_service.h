// IngestService: the live write path of the segment architecture
// (docs/ingestion.md).
//
// Writers append documents to an in-memory SegmentBuffer; when the buffer
// fills (or on an explicit Refresh) it is sealed through the ordinary
// IndexBuilder into an immutable segment and a new IndexSnapshot
// generation is published. Deletes mark tombstones in a copied bitmap —
// published generations are never mutated. A background merger compacts
// the segment list (dropping tombstoned documents) when it grows past the
// merge factor.
//
// Concurrency contract: one writer mutex serializes every mutation (Add,
// Delete, Refresh, Compact, and the background merge), and is never held
// while a query runs. snapshot() — the read side — only takes a leaf
// mutex long enough to copy a shared_ptr, so queries acquire a generation
// in O(1) and never block on ingest, sealing, or merging. A generation
// retires (frees its segments) when the last query holding it drains.

#ifndef FTS_EXEC_INGEST_SERVICE_H_
#define FTS_EXEC_INGEST_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "index/index_snapshot.h"
#include "index/segment.h"

namespace fts {

class IngestService : public SnapshotSource {
 public:
  struct Options {
    /// Seal the in-memory buffer into a segment (and publish a new
    /// generation) when it reaches this many documents; Refresh() seals
    /// earlier on demand.
    size_t max_buffered_docs = 1024;
    /// The background merger compacts the whole segment list into one
    /// segment when the snapshot holds more than this many segments.
    size_t merge_factor = 8;
    /// When non-empty, every sealed segment is also flushed to
    /// `<spill_dir>/segment-<seal#>.fts` as an ordinary v3 index file,
    /// crash-consistently (write-then-rename; see SaveSegmentAtomic).
    std::string spill_dir;
    /// IndexBuilder knobs applied to every seal and compaction. With
    /// build.pairs.frequent_terms > 0 each sealed segment carries its own
    /// pair lists and Compact() rebuilds them over the merged corpus.
    IndexBuildOptions build;
  };

  IngestService();
  explicit IngestService(Options options);
  ~IngestService() override;

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  /// The current published generation; O(1) and safe from any thread.
  std::shared_ptr<const IndexSnapshot> snapshot() const override;

  /// Appends one document (tokenizing it) and returns the global id it
  /// will carry once visible — the document becomes queryable at the next
  /// seal (auto or Refresh). Ids are generation-relative (Lucene
  /// semantics): a compaction renumbers survivors densely, so hold ids
  /// only as long as the generation they came from. A non-OK status means
  /// an auto-seal's spill write failed — the document is ingested and will
  /// be served from memory, but its segment is not on disk.
  StatusOr<uint64_t> Add(std::string_view text);

  /// Marks the document `global_id` of the *current* generation deleted
  /// and publishes the new generation. Documents still in the unsealed
  /// buffer are not addressable (Refresh first). Deleting an already
  /// deleted id is a harmless no-op.
  Status Delete(uint64_t global_id);

  /// Seals any buffered documents into a segment and publishes a new
  /// generation making them visible. No-op when the buffer is empty.
  Status Refresh();

  /// Synchronously merges all segments into one — dropping tombstoned
  /// documents and renumbering survivors densely — and publishes the
  /// compacted generation.
  Status Compact();

  /// First error the background merger hit, OK while none: compaction is
  /// asynchronous, so its failures surface here (and the service keeps
  /// serving the unmerged segments).
  Status merger_status() const;

 private:
  /// Seals the buffer and publishes; caller holds write_mu_.
  Status SealLocked();
  /// Merges everything into one segment and publishes; caller holds
  /// write_mu_.
  Status CompactLocked();
  /// Publishes the current segment/tombstone state as a new generation;
  /// caller holds write_mu_. The snapshot build (stats over the new
  /// segment list) runs before the leaf lock: snapshot_mu_ is only held
  /// for the pointer swap.
  Status PublishLocked();
  void MergerLoop();

  Options options_;

  /// Serializes writers and the merger; never held while a query runs.
  mutable std::mutex write_mu_;
  SegmentBuffer buffer_;
  std::vector<std::shared_ptr<const InvertedIndex>> segments_;
  std::vector<std::shared_ptr<const TombstoneSet>> tombstones_;
  uint64_t generation_ = 0;
  uint64_t seals_ = 0;  // names spilled segment files
  uint64_t published_total_ = 0;  // id space of the published generation
  Status merger_status_;
  bool stop_ = false;

  std::condition_variable merge_cv_;
  std::thread merger_;

  /// Leaf lock guarding only the published pointer (held for shared_ptr
  /// copies and swaps, nothing else).
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const IndexSnapshot> snapshot_;
};

}  // namespace fts

#endif  // FTS_EXEC_INGEST_SERVICE_H_
