// Cost-based admission control for the serving layer (docs/serving.md).
//
// A server under load has two bad options for an expensive query: queue it
// (it occupies a worker for a long time, inflating every later query's
// latency) or let back-pressure block the connection. Admission control
// adds the third: estimate the query's evaluation cost *before* it enters
// the SearchService queue, from the same df statistics the adaptive
// planner reads, and shed it with Unavailable when the queue is already
// under pressure. Cheap queries are never shed — under pressure they are
// exactly the ones worth serving — and nothing is shed while the queue is
// shallow, so an idle server accepts arbitrarily expensive queries.
//
// The cost model reuses the planner's machinery: leaf document frequencies
// summed across the snapshot's segments feed PlanFromDfs — when it plans a
// seek-driven join, the cost is the driver's df (blocks actually landed
// in), otherwise the sum of the lists a sequential pass must scan — and
// the estimate is then scaled by the query's LanguageClass (NPRED re-scans
// per ordering, COMP materializes; both cost multiples of a BOOL merge
// over the same lists).

#ifndef FTS_EXEC_ADMISSION_H_
#define FTS_EXEC_ADMISSION_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "index/index_snapshot.h"
#include "lang/classify.h"

namespace fts {

struct AdmissionOptions {
  /// Master switch; disabled means Assess always admits (cost still
  /// reported, for metrics).
  bool enabled = false;
  /// Queue pressure threshold as a fraction of the SearchService queue
  /// capacity: shedding engages only when depth/capacity >= this.
  double pressure_fraction = 0.5;
  /// Cost ceiling applied under pressure; 0 = shed nothing on cost (the
  /// controller then never rejects). The unit is "posting entries
  /// touched", comparable across queries on one snapshot.
  uint64_t max_cost = 0;
};

/// Verdict for one query against one snapshot generation.
struct AdmissionDecision {
  /// False = shed: the caller answers Unavailable without enqueueing.
  bool admit = true;
  /// Estimated posting entries touched (language-class scaled).
  uint64_t cost = 0;
  LanguageClass language_class = LanguageClass::kComp;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}

  /// Parses and costs `query` against `snapshot`, then decides admission
  /// given the submission queue's current depth and capacity. A parse
  /// failure is returned as-is (the query would fail identically inside
  /// the service; rejecting here keeps it out of the queue). Thread-safe:
  /// the controller is stateless beyond its options.
  StatusOr<AdmissionDecision> Assess(std::string_view query,
                                     const IndexSnapshot& snapshot,
                                     size_t queue_depth,
                                     size_t queue_capacity) const;

  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
};

}  // namespace fts

#endif  // FTS_EXEC_ADMISSION_H_
