// ExecContext: the explicit per-query execution state of one evaluation.
//
// Before this layer existed, every engine's Evaluate() conjured its own
// per-query state ad hoc — a DecodedBlockCache on the stack, counters
// inside the result, no way to bound a query's runtime — which made the
// evaluation path impossible to reason about under concurrency and left
// nowhere to hang cross-query facilities. An ExecContext makes that state
// explicit and caller-owned:
//
//   - counters        cumulative EvalCounters for everything run under the
//                     context (engines additionally report the per-query
//                     delta in QueryResult::counters)
//   - L1 block cache  the per-query DecodedBlockCache, created once per
//                     context and attached to cursors per the cache policy
//                     instead of being re-constructed inside each engine
//   - L2 handle       an optional cross-query SharedBlockCache the L1
//                     falls through to (attached at router/service scope)
//   - deadline        an optional wall-clock bound; engines check it at
//                     operator granularity and return DeadlineExceeded
//
// Threading model: an ExecContext is single-threaded — one context, one
// thread, one query at a time. Contexts are cheap to create per query; a
// service worker may instead keep one context across queries (the L1 then
// acts as a worker-local warm cache over the same immutable index, which
// is safe for exactly the reason the L2 is: results never depend on cache
// state). The index, engines, router, and L2 they reference are all safe
// to share across many contexts on many threads — see docs/threading.md.

#ifndef FTS_EXEC_EXEC_CONTEXT_H_
#define FTS_EXEC_EXEC_CONTEXT_H_

#include <chrono>

#include "common/metrics.h"
#include "common/status.h"
#include "index/decoded_block_cache.h"
#include "index/shared_block_cache.h"

namespace fts {

/// Optional wall-clock bound on a query. Cheap to copy; unset by default.
/// Expiry checks are made at operator granularity (per BOOL/COMP operator,
/// per NPRED ordering, every few thousand pipelined nodes), so overruns are
/// bounded by one operator step, not detected mid-block.
class Deadline {
 public:
  Deadline() = default;

  /// A deadline `d` from now.
  static Deadline After(std::chrono::nanoseconds d) {
    Deadline out;
    out.at_ = std::chrono::steady_clock::now() + d;
    out.set_ = true;
    return out;
  }

  bool set() const { return set_; }

  bool Expired() const {
    return set_ && std::chrono::steady_clock::now() >= at_;
  }

  /// OK while unset or unexpired; DeadlineExceeded once past.
  Status Check() const {
    if (Expired()) return Status::DeadlineExceeded("query deadline expired");
    return Status::OK();
  }

 private:
  std::chrono::steady_clock::time_point at_{};
  bool set_ = false;
};

/// Knobs an ExecContext is created with.
struct ExecOptions {
  /// How engines attach the per-query L1 cache to their cursors.
  enum class L1Policy {
    /// Attach when it pays: some list is read twice and the working set
    /// fits (DecodedBlockCache::ShouldAttach), or an L2 is present (the L1
    /// is then the fast path in front of the shard locks).
    kAuto,
    /// Never attach; cursors decode into their private arenas. Forced
    /// sequential runs that must reproduce the paper's exact decode counts
    /// use this.
    kOff,
  };

  L1Policy l1_policy = L1Policy::kAuto;
  /// L1 capacity in blocks.
  size_t l1_capacity = DecodedBlockCache::kDefaultCapacity;
  /// Cross-query L2 the context's L1 falls through to (nullable; must
  /// outlive the context).
  SharedBlockCache* shared_cache = nullptr;
  /// Optional wall-clock bound; Deadline() means unbounded.
  Deadline deadline;
  /// Ranked-retrieval request: when nonzero, the Searcher returns only the
  /// top_k highest-scoring results (rank order; see Searcher::SearchParsed)
  /// and scored evaluation may terminate early via block-max skipping. 0 =
  /// full results, the pre-top-k behavior.
  size_t top_k = 0;
};

/// Per-query execution state threaded from the router (or a SearchService
/// worker) through the engines down to every cursor. Single-threaded; see
/// file header for the ownership and reuse rules.
class ExecContext {
 public:
  ExecContext() : ExecContext(ExecOptions()) {}
  explicit ExecContext(ExecOptions options)
      : options_(options), l1_(options.l1_capacity, options.shared_cache) {}

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Cumulative counters for everything evaluated under this context.
  /// Engines MergeFrom() their per-query counters here at the end of each
  /// Evaluate(); per-query deltas live in QueryResult::counters.
  EvalCounters& counters() { return counters_; }
  const EvalCounters& counters() const { return counters_; }

  /// The per-query (L1) decoded-block cache. Engines attach it to cursors
  /// per the L1 policy; callers normally never touch it directly.
  DecodedBlockCache& l1_cache() { return l1_; }

  ExecOptions::L1Policy l1_policy() const { return options_.l1_policy; }
  SharedBlockCache* shared_cache() const { return options_.shared_cache; }

  const Deadline& deadline() const { return options_.deadline; }
  void set_deadline(Deadline d) { options_.deadline = d; }

  /// Requested result count for ranked retrieval; 0 = unranked/full.
  size_t top_k() const { return options_.top_k; }
  void set_top_k(size_t k) { options_.top_k = k; }

  /// True when engines should attach the L1 cache for a plan where
  /// `repeated_scans` says some list is read twice (and fits). With an L2
  /// attached the answer is yes even without repeats: single-scan queries
  /// still want the cross-query reuse, and the L1 in front of it dedupes
  /// shard-lock traffic within the query.
  bool WantCache(bool repeated_scans) const {
    if (options_.l1_policy == ExecOptions::L1Policy::kOff) return false;
    return repeated_scans || options_.shared_cache != nullptr;
  }

  /// Resets per-query state for reuse: zeroes the counters, empties the
  /// L1, and clears any deadline (a stale expired deadline would fail
  /// every later query instantly). A worker serving one index does NOT
  /// need this between queries — keeping the L1 warm is the point of
  /// reusing a context. Switching indexes (or snapshot generations) under
  /// one context is safe without a reset too: cache keys are
  /// process-unique list uids, never reused, so stale entries are dead
  /// weight that ages out of the LRU rather than a correctness hazard —
  /// reset anyway to reclaim their memory eagerly.
  void Reset() {
    counters_.Reset();
    l1_.Clear();
    options_.deadline = Deadline();
    options_.top_k = 0;
  }

 private:
  ExecOptions options_;
  EvalCounters counters_;
  DecodedBlockCache l1_;
};

}  // namespace fts

#endif  // FTS_EXEC_EXEC_CONTEXT_H_
