#include "exec/ingest_service.h"

#include <algorithm>
#include <utility>

#include "index/segment_merger.h"

namespace fts {

IngestService::IngestService() : IngestService(Options()) {}

IngestService::IngestService(Options options) : options_(std::move(options)) {
  if (options_.max_buffered_docs == 0) options_.max_buffered_docs = 1;
  if (options_.merge_factor < 2) options_.merge_factor = 2;
  // The empty generation 0: queries served before the first seal see an
  // empty corpus, not an error. Creating an empty snapshot cannot fail.
  snapshot_ = std::move(IndexSnapshot::Create({}, {}, 0)).value();
  merger_ = std::thread([this] { MergerLoop(); });
}

IngestService::~IngestService() {
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    stop_ = true;
  }
  merge_cv_.notify_all();
  if (merger_.joinable()) merger_.join();
}

std::shared_ptr<const IndexSnapshot> IngestService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

StatusOr<uint64_t> IngestService::Add(std::string_view text) {
  std::lock_guard<std::mutex> lock(write_mu_);
  const uint64_t id = published_total_ + buffer_.num_docs();
  buffer_.Add(text);
  if (buffer_.num_docs() >= options_.max_buffered_docs) {
    FTS_RETURN_IF_ERROR(SealLocked());
  }
  return id;
}

Status IngestService::Delete(uint64_t global_id) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (global_id >= published_total_) {
    return Status::InvalidArgument(
        "document " + std::to_string(global_id) +
        " is not in the published generation (buffered documents become "
        "addressable after Refresh)");
  }
  // Locate the owning segment by its base range.
  uint64_t base = 0;
  size_t seg = 0;
  while (global_id >= base + segments_[seg]->num_nodes()) {
    base += segments_[seg]->num_nodes();
    ++seg;
  }
  const NodeId local = static_cast<NodeId>(global_id - base);
  // Copy-on-write: generations already published keep reading their own
  // bitmap; only the next generation sees the new tombstone.
  auto updated = tombstones_[seg] != nullptr
                     ? std::make_shared<TombstoneSet>(*tombstones_[seg])
                     : std::make_shared<TombstoneSet>(segments_[seg]->num_nodes());
  if (updated->Contains(local)) return Status::OK();  // already deleted
  updated->MarkDeleted(local);
  tombstones_[seg] = std::move(updated);
  return PublishLocked();
}

Status IngestService::Refresh() {
  std::lock_guard<std::mutex> lock(write_mu_);
  return SealLocked();
}

Status IngestService::Compact() {
  std::lock_guard<std::mutex> lock(write_mu_);
  FTS_RETURN_IF_ERROR(SealLocked());
  return CompactLocked();
}

Status IngestService::merger_status() const {
  std::lock_guard<std::mutex> lock(write_mu_);
  return merger_status_;
}

Status IngestService::SealLocked() {
  if (buffer_.empty()) return Status::OK();
  std::shared_ptr<const InvertedIndex> segment = buffer_.Seal(options_.build);
  segments_.push_back(segment);
  tombstones_.push_back(nullptr);
  const uint64_t seal_number = seals_++;
  FTS_RETURN_IF_ERROR(PublishLocked());
  if (!options_.spill_dir.empty()) {
    // Spill after publish: the segment serves from memory either way, and
    // a failed write degrades durability, not availability.
    FTS_RETURN_IF_ERROR(SaveSegmentAtomic(
        *segment,
        options_.spill_dir + "/segment-" + std::to_string(seal_number) + ".fts"));
  }
  return Status::OK();
}

Status IngestService::CompactLocked() {
  const bool any_deletes =
      std::any_of(tombstones_.begin(), tombstones_.end(),
                  [](const auto& t) { return t != nullptr; });
  if (segments_.size() <= 1 && !any_deletes) return Status::OK();
  std::vector<SegmentView> views;
  views.reserve(segments_.size());
  NodeId base = 0;
  for (size_t i = 0; i < segments_.size(); ++i) {
    SegmentView v;
    v.index = segments_[i].get();
    v.base = base;
    v.tombstones = tombstones_[i].get();
    views.push_back(v);
    base += static_cast<NodeId>(segments_[i]->num_nodes());
  }
  FTS_ASSIGN_OR_RETURN(InvertedIndex merged,
                       MergeSegments(views, options_.build));
  segments_.assign(1, std::make_shared<const InvertedIndex>(std::move(merged)));
  tombstones_.assign(1, nullptr);
  return PublishLocked();
}

Status IngestService::PublishLocked() {
  FTS_ASSIGN_OR_RETURN(std::shared_ptr<const IndexSnapshot> next,
                       IndexSnapshot::Create(segments_, tombstones_,
                                             generation_ + 1));
  ++generation_;
  published_total_ = next->total_nodes();
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(next);
  }
  if (segments_.size() > options_.merge_factor) merge_cv_.notify_one();
  return Status::OK();
}

void IngestService::MergerLoop() {
  std::unique_lock<std::mutex> lock(write_mu_);
  while (true) {
    merge_cv_.wait(lock, [this] {
      return stop_ || segments_.size() > options_.merge_factor;
    });
    if (stop_) return;
    // Compaction holds the writer mutex — ingest waits, queries do not:
    // they keep acquiring the published snapshot through the leaf lock.
    const Status status = CompactLocked();
    if (!status.ok() && merger_status_.ok()) merger_status_ = status;
  }
}

}  // namespace fts
