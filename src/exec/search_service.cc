#include "exec/search_service.h"

#include <algorithm>
#include <utility>

namespace fts {

std::shared_ptr<SharedBlockCache> SearchService::MakeSharedCache(
    const Options& options) {
  if (options.shared_cache_blocks == 0) return nullptr;
  SharedBlockCache::Options cache_options;
  cache_options.capacity_blocks = options.shared_cache_blocks;
  return std::make_shared<SharedBlockCache>(cache_options);
}

SearchService::SearchService(const SnapshotSource* source, Options options)
    : options_(options),
      shared_cache_(MakeSharedCache(options)),
      source_(source) {
  StartWorkers();
}

SearchService::SearchService(const InvertedIndex* index, Options options)
    : options_(options),
      shared_cache_(MakeSharedCache(options)),
      owned_source_(std::make_unique<StaticSnapshotSource>(
          IndexSnapshot::ForIndex(index))),
      source_(owned_source_.get()) {
  StartWorkers();
}

void SearchService::StartWorkers() {
  size_t workers = options_.num_workers;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SearchService::~SearchService() { Shutdown(); }

/// The one enqueue protocol behind Submit (block = back-pressure) and
/// TrySubmit (fail fast). On refusal — shutdown, or a full queue in the
/// non-blocking mode — the task's promise is fulfilled with Unavailable
/// (so a returned future never dangles), the refusal is tallied, and
/// false is returned.
bool SearchService::Enqueue(Task task, bool block) {
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (block) {
      queue_not_full_.wait(lock, [this] {
        return shutdown_ || queue_.size() < options_.queue_capacity;
      });
    }
    if (shutdown_ || (!block && queue_.size() >= options_.queue_capacity)) {
      task.promise.set_value(Status::Unavailable("SearchService is shut down"));
      std::lock_guard<std::mutex> mlock(metrics_mu_);
      ++metrics_.rejected;
      return false;
    }
    queue_.push_back(std::move(task));
    const uint64_t depth = queue_.size();
    {
      std::lock_guard<std::mutex> mlock(metrics_mu_);
      ++metrics_.submitted;
      metrics_.peak_queue_depth = std::max(metrics_.peak_queue_depth, depth);
    }
  }
  queue_not_empty_.notify_one();
  return true;
}

std::future<StatusOr<RoutedResult>> SearchService::Submit(std::string query,
                                                          size_t top_k) {
  RequestOptions options;
  options.top_k = top_k;
  return Submit(std::move(query), options);
}

std::future<StatusOr<RoutedResult>> SearchService::Submit(
    std::string query, RequestOptions options) {
  Task task;
  task.query = std::move(query);
  task.options = options;
  std::future<StatusOr<RoutedResult>> future = task.promise.get_future();
  Enqueue(std::move(task), /*block=*/true);
  return future;
}

std::optional<std::future<StatusOr<RoutedResult>>> SearchService::TrySubmit(
    std::string query, size_t top_k) {
  RequestOptions options;
  options.top_k = top_k;
  return TrySubmit(std::move(query), options);
}

std::optional<std::future<StatusOr<RoutedResult>>> SearchService::TrySubmit(
    std::string query, RequestOptions options) {
  Task task;
  task.query = std::move(query);
  task.options = options;
  std::future<StatusOr<RoutedResult>> future = task.promise.get_future();
  if (!Enqueue(std::move(task), /*block=*/false)) return std::nullopt;
  return future;
}

StatusOr<RoutedResult> SearchService::Search(std::string_view query,
                                             size_t top_k) {
  return Submit(std::string(query), top_k).get();
}

std::vector<StatusOr<RoutedResult>> SearchService::SearchBatch(
    const std::vector<std::string>& queries, size_t top_k) {
  std::vector<std::future<StatusOr<RoutedResult>>> futures;
  futures.reserve(queries.size());
  for (const std::string& q : queries) futures.push_back(Submit(q, top_k));
  std::vector<StatusOr<RoutedResult>> out;
  out.reserve(queries.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

ServiceMetricsSnapshot SearchService::metrics() const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  return metrics_;
}

size_t SearchService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

void SearchService::Shutdown() {
  // Serialize overlapping Shutdown calls (destructor vs explicit): only
  // one joins the pool; later calls see the empty worker vector.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
  }
  // Wake everyone: workers drain the remaining queue, blocked producers
  // observe the shutdown and fail their submissions.
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void SearchService::WorkerLoop() {
  // One context for the worker's lifetime: its L1 cache stays warm across
  // queries (uid keys stay valid across generations), and its counters
  // accumulate harmlessly — per-query counters are reported via each
  // result, and service totals are merged per query below.
  ExecOptions exec_options;
  exec_options.shared_cache = shared_cache_.get();
  ExecContext ctx(exec_options);
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_not_empty_.wait(lock,
                            [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_not_full_.notify_one();

    // Per-request knobs override the service defaults; set unconditionally
    // because the context is reused across queries — a stale deadline or
    // top_k from a previous query must never leak into the next one.
    const std::chrono::nanoseconds timeout = task.options.timeout.count() > 0
                                                 ? task.options.timeout
                                                 : options_.default_timeout;
    ctx.set_deadline(timeout.count() > 0 ? Deadline::After(timeout)
                                         : Deadline());
    ctx.set_top_k(task.options.top_k);
    // Acquire the current generation for exactly this query: the snapshot
    // (and every segment it references) stays alive until the Searcher is
    // destroyed, even if a writer publishes a newer generation mid-query.
    Searcher searcher(
        source_->snapshot(),
        SearcherOptions{options_.scoring,
                        task.options.mode.value_or(options_.mode)});
    StatusOr<RoutedResult> result = searcher.Search(task.query, ctx);

    {
      std::lock_guard<std::mutex> mlock(metrics_mu_);
      if (result.ok()) {
        ++metrics_.completed;
        metrics_.totals.MergeFrom(result->result.counters);
      } else {
        ++metrics_.failed;
      }
    }
    task.promise.set_value(std::move(result));
  }
}

}  // namespace fts
