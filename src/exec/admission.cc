#include "exec/admission.h"

#include <algorithm>
#include <vector>

#include "eval/engine.h"
#include "lang/parser.h"

namespace fts {

namespace {

/// Snapshot-wide document frequency of a surface token: the sum of its
/// per-segment dfs (an upper bound under tombstones, which is the safe
/// direction for a cost estimate).
uint64_t SnapshotDf(const IndexSnapshot& snapshot, const std::string& token) {
  uint64_t df = 0;
  for (const SegmentView& seg : snapshot.segments()) {
    df += seg.index->df(seg.index->LookupToken(token));
  }
  return df;
}

/// Collects the df of every token-list leaf the evaluation would open
/// (token literals, HAS targets, dist() operands). ANY and negation
/// subtrees contribute the whole id space — a complement enumerates it.
void CollectLeafDfs(const LangExprPtr& e, const IndexSnapshot& snapshot,
                    std::vector<uint64_t>* dfs) {
  switch (e->kind()) {
    case LangExpr::Kind::kToken:
      dfs->push_back(SnapshotDf(snapshot, e->token()));
      return;
    case LangExpr::Kind::kVarHasToken:
      dfs->push_back(SnapshotDf(snapshot, e->token()));
      return;
    case LangExpr::Kind::kAny:
    case LangExpr::Kind::kVarHasAny:
      dfs->push_back(snapshot.total_nodes());
      return;
    case LangExpr::Kind::kDist:
      dfs->push_back(e->dist_tok1().empty()
                         ? snapshot.total_nodes()
                         : SnapshotDf(snapshot, e->dist_tok1()));
      dfs->push_back(e->dist_tok2().empty()
                         ? snapshot.total_nodes()
                         : SnapshotDf(snapshot, e->dist_tok2()));
      return;
    case LangExpr::Kind::kNot:
      // A complement reads its operand *and* enumerates the id space.
      dfs->push_back(snapshot.total_nodes());
      CollectLeafDfs(e->child(), snapshot, dfs);
      return;
    case LangExpr::Kind::kPred:
      return;  // predicates filter positions already produced by leaves
    default:
      break;
  }
  if (e->left() != nullptr) CollectLeafDfs(e->left(), snapshot, dfs);
  if (e->right() != nullptr) CollectLeafDfs(e->right(), snapshot, dfs);
}

/// Work multiplier of the evaluation class over the same leaf lists: a
/// BOOL merge touches each list once; PPRED adds per-position predicate
/// work; NPRED re-scans once per ordering; COMP materializes intermediate
/// position sets. Coarse by design — admission needs order-of-magnitude
/// separation, not a simulator.
uint64_t ClassMultiplier(LanguageClass cls) {
  switch (cls) {
    case LanguageClass::kBoolNoNeg:
    case LanguageClass::kBool:
      return 1;
    case LanguageClass::kPpred:
      return 2;
    case LanguageClass::kNpred:
      return 4;
    case LanguageClass::kComp:
      return 8;
  }
  return 8;
}

uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  if (a != 0 && b > UINT64_MAX / a) return UINT64_MAX;
  return a * b;
}

}  // namespace

StatusOr<AdmissionDecision> AdmissionController::Assess(
    std::string_view query, const IndexSnapshot& snapshot, size_t queue_depth,
    size_t queue_capacity) const {
  FTS_ASSIGN_OR_RETURN(LangExprPtr parsed,
                       ParseQuery(query, SurfaceLanguage::kComp));
  const LangExprPtr normalized = NormalizeSurface(parsed);

  AdmissionDecision decision;
  decision.language_class = ClassifyQuery(normalized);

  std::vector<uint64_t> dfs;
  CollectLeafDfs(normalized, snapshot, &dfs);
  uint64_t entries = 0;
  if (dfs.empty()) {
    entries = 0;  // no lists opened (e.g. a pure-predicate degenerate tree)
  } else if (PlanFromDfs(dfs) == CursorMode::kSeek) {
    // A seek-driven join decodes only the blocks the most selective list
    // lands in, so the driver's df bounds the work.
    entries = *std::min_element(dfs.begin(), dfs.end());
  } else {
    for (const uint64_t df : dfs) {
      entries = entries > UINT64_MAX - df ? UINT64_MAX : entries + df;
    }
  }
  decision.cost =
      SaturatingMul(entries, ClassMultiplier(decision.language_class));

  if (!options_.enabled || options_.max_cost == 0 || queue_capacity == 0) {
    return decision;
  }
  const double pressure =
      static_cast<double>(queue_depth) / static_cast<double>(queue_capacity);
  decision.admit =
      pressure < options_.pressure_fraction || decision.cost <= options_.max_cost;
  return decision;
}

}  // namespace fts
