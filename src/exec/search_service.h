// SearchService: concurrent query serving over immutable index snapshots.
//
// The paper's Section 5 engines are defined per query; the service is the
// layer that turns them into a multi-user serving system. One fixed pool
// of worker threads evaluates queries from a bounded submission queue. A
// worker acquires the current IndexSnapshot generation from the service's
// SnapshotSource at dequeue — an O(1) shared_ptr copy — and evaluates
// through a Searcher bound to that generation, so a query never observes a
// half-published index and old generations retire exactly when their last
// in-flight query drains. A static index is the degenerate case: the
// single-index constructor wraps it in a pinned one-segment snapshot. A
// cross-query SharedBlockCache attaches at service scope so hot blocks
// decode once per process (keys are process-unique list uids, safe across
// generations). Each worker owns one ExecContext for its lifetime — the
// per-query L1 cache then doubles as a worker-local warm cache.
//
// Flow control: the submission queue is bounded (Options::queue_capacity).
// Submit() blocks the producer when the queue is full (back-pressure);
// TrySubmit() instead fails fast with Unavailable, for callers that would
// rather shed load than wait. Results are delivered through
// std::future<StatusOr<RoutedResult>>.
//
// Metrics: the service aggregates every query's EvalCounters into one
// service-level total via EvalCounters::MergeFrom, plus queue and outcome
// tallies, all behind one mutex; metrics() returns an atomic snapshot
// (one consistent copy taken under the lock).
//
// Shutdown: Shutdown() (and the destructor) stops intake, drains every
// already-accepted query, and joins the workers — accepted work is never
// dropped. Submissions after shutdown fail with Unavailable.

#ifndef FTS_EXEC_SEARCH_SERVICE_H_
#define FTS_EXEC_SEARCH_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "eval/searcher.h"
#include "index/shared_block_cache.h"

namespace fts {

/// Point-in-time service health: outcome tallies, queue pressure, and the
/// merged evaluation counters of every completed query.
struct ServiceMetricsSnapshot {
  uint64_t submitted = 0;       ///< accepted into the queue
  uint64_t rejected = 0;        ///< refusals: TrySubmit on a full queue, or
                                ///< any submission after shutdown
  uint64_t completed = 0;       ///< evaluated successfully
  uint64_t failed = 0;          ///< evaluated to an error status
  uint64_t peak_queue_depth = 0;
  EvalCounters totals;          ///< MergeFrom of every query's counters
};

class SearchService {
 public:
  struct Options {
    /// Worker threads; 0 means hardware_concurrency (min 1).
    size_t num_workers = 0;
    /// Bounded submission queue depth; Submit blocks (TrySubmit refuses)
    /// when full.
    size_t queue_capacity = 1024;
    ScoringKind scoring = ScoringKind::kNone;
    CursorMode mode = CursorMode::kAdaptive;
    /// Cross-query L2 cache budget in blocks; 0 disables the L2 (per-query
    /// L1 caching only — the pre-service behavior per query).
    size_t shared_cache_blocks = 4096;
    /// Per-query deadline applied by workers at dequeue; zero = unbounded.
    std::chrono::nanoseconds default_timeout{0};
  };

  /// Serves whatever generation `source` currently publishes: each query
  /// acquires the snapshot at dequeue and holds it until it drains.
  /// `source` must outlive the service (an IngestService under live
  /// writes, or any other SnapshotSource).
  SearchService(const SnapshotSource* source, Options options);
  explicit SearchService(const SnapshotSource* source)
      : SearchService(source, Options()) {}

  /// Static-index convenience: serves `index` via a pinned one-segment
  /// snapshot. `index` must be fully loaded before construction and must
  /// outlive the service; it is never mutated through the service
  /// (immutable-after-load is what makes the whole read path lock-free
  /// outside the L2 shards).
  SearchService(const InvertedIndex* index, Options options);
  explicit SearchService(const InvertedIndex* index)
      : SearchService(index, Options()) {}

  /// Drains accepted work and joins the pool.
  ~SearchService();

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  /// Per-request evaluation knobs, carried with the task to the worker.
  /// Everything defaults to "use the service's configuration" — the
  /// network layer is the caller that needs these (a remote client picks
  /// its own cursor mode, deadline, and top_k per request).
  struct RequestOptions {
    /// Ranked retrieval: the result holds only the top_k best nodes in
    /// rank order; 0 = full results.
    size_t top_k = 0;
    /// Cursor access mode for this query; nullopt = Options::mode.
    std::optional<CursorMode> mode;
    /// Deadline for this query; zero = Options::default_timeout.
    std::chrono::nanoseconds timeout{0};
  };

  /// Enqueues `query` for evaluation, blocking while the queue is full.
  /// The future resolves to the routed result, or to Unavailable if the
  /// service was shut down before (or while) the query could be accepted.
  /// `top_k` > 0 requests ranked retrieval: the result holds only the k
  /// best nodes in rank order (Searcher::SearchParsed), and scored
  /// selective queries may terminate early via block-max skipping; 0 (the
  /// default) returns full results, the pre-top-k behavior.
  std::future<StatusOr<RoutedResult>> Submit(std::string query,
                                             size_t top_k = 0);

  /// As above with the full per-request knob set.
  std::future<StatusOr<RoutedResult>> Submit(std::string query,
                                             RequestOptions options);

  /// Non-blocking enqueue: nullopt when the queue is full or the service
  /// is shut down (the refusal is tallied in metrics().rejected).
  std::optional<std::future<StatusOr<RoutedResult>>> TrySubmit(
      std::string query, size_t top_k = 0);

  /// As above with the full per-request knob set.
  std::optional<std::future<StatusOr<RoutedResult>>> TrySubmit(
      std::string query, RequestOptions options);

  /// Synchronous convenience: Submit + wait.
  StatusOr<RoutedResult> Search(std::string_view query, size_t top_k = 0);

  /// Batch API: enqueues every query, then waits for all; results are
  /// positionally aligned with `queries`. Queries evaluate concurrently
  /// across the pool, so a batch of B on W workers takes ~B/W serial
  /// evaluations of wall time. `top_k` applies to every query in the batch.
  std::vector<StatusOr<RoutedResult>> SearchBatch(
      const std::vector<std::string>& queries, size_t top_k = 0);

  /// One consistent copy of the service counters, taken under the metrics
  /// lock.
  ServiceMetricsSnapshot metrics() const;

  /// Instantaneous submission-queue depth — the congestion signal the
  /// admission controller (src/exec/admission.h) reads before deciding
  /// whether an expensive query may enqueue.
  size_t queue_depth() const;

  size_t queue_capacity() const { return options_.queue_capacity; }

  /// Stops intake, drains every accepted query, joins the workers.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  size_t num_workers() const { return workers_.size(); }
  /// The generation source queries are served from.
  const SnapshotSource& source() const { return *source_; }
  /// The service-scoped L2, or nullptr when disabled.
  const SharedBlockCache* shared_cache() const { return shared_cache_.get(); }

 private:
  struct Task {
    std::string query;
    /// Per-request knobs resolved against the service configuration by
    /// the worker (top_k rides in the context; mode/timeout override the
    /// service defaults when set).
    RequestOptions options;
    std::promise<StatusOr<RoutedResult>> promise;
  };

  static std::shared_ptr<SharedBlockCache> MakeSharedCache(const Options& options);

  /// Shared enqueue protocol of Submit/TrySubmit; see the definition.
  bool Enqueue(Task task, bool block);

  /// Shared tail of both constructors: spawns the worker pool.
  void StartWorkers();

  void WorkerLoop();

  Options options_;
  std::shared_ptr<SharedBlockCache> shared_cache_;
  /// Set by the static-index constructor; null when the caller supplied
  /// its own SnapshotSource.
  std::unique_ptr<StaticSnapshotSource> owned_source_;
  const SnapshotSource* source_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<Task> queue_;
  bool shutdown_ = false;

  mutable std::mutex metrics_mu_;
  ServiceMetricsSnapshot metrics_;

  std::mutex shutdown_mu_;  // serializes Shutdown callers
  std::vector<std::thread> workers_;
};

}  // namespace fts

#endif  // FTS_EXEC_SEARCH_SERVICE_H_
