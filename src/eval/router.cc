#include "eval/router.h"

namespace fts {

StatusOr<RoutedResult> QueryRouter::Evaluate(std::string_view query) const {
  ExecContext ctx = MakeContext();
  return Evaluate(query, ctx);
}

StatusOr<RoutedResult> QueryRouter::Evaluate(std::string_view query,
                                             ExecContext& ctx) const {
  FTS_ASSIGN_OR_RETURN(LangExprPtr parsed, ParseQuery(query, SurfaceLanguage::kComp));
  return EvaluateParsed(parsed, ctx);
}

StatusOr<RoutedResult> QueryRouter::EvaluateParsed(const LangExprPtr& query) const {
  ExecContext ctx = MakeContext();
  return EvaluateParsed(query, ctx);
}

StatusOr<RoutedResult> QueryRouter::EvaluateParsed(const LangExprPtr& query,
                                                   ExecContext& ctx) const {
  if (!query) return Status::InvalidArgument("null query");
  RoutedResult out;
  out.language_class = ClassifyQuery(query);

  const Engine* engine = nullptr;
  switch (out.language_class) {
    case LanguageClass::kBoolNoNeg:
    case LanguageClass::kBool:
      engine = &bool_engine_;
      break;
    case LanguageClass::kPpred:
      engine = &ppred_engine_;
      break;
    case LanguageClass::kNpred:
      engine = &npred_engine_;
      break;
    case LanguageClass::kComp:
      engine = &comp_engine_;
      break;
  }

  StatusOr<QueryResult> result = engine->Evaluate(query, ctx);
  if (!result.ok() && result.status().code() == StatusCode::kUnsupported &&
      engine != &comp_engine_) {
    // A specialized engine declined (e.g. a plan shape it cannot stream);
    // COMP is complete and always applicable.
    result = comp_engine_.Evaluate(query, ctx);
    engine = &comp_engine_;
  }
  FTS_RETURN_IF_ERROR(result.status());
  out.result = std::move(result).value();
  out.engine = std::string(engine->name());
  return out;
}

}  // namespace fts
