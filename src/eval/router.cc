#include "eval/router.h"

namespace fts {

StatusOr<RoutedResult> QueryRouter::Evaluate(std::string_view query) const {
  ExecContext ctx = MakeContext();
  return Evaluate(query, ctx);
}

StatusOr<RoutedResult> QueryRouter::Evaluate(std::string_view query,
                                             ExecContext& ctx) const {
  FTS_ASSIGN_OR_RETURN(LangExprPtr parsed, ParseQuery(query, SurfaceLanguage::kComp));
  return EvaluateParsed(parsed, ctx);
}

StatusOr<RoutedResult> QueryRouter::EvaluateTopK(std::string_view query,
                                                 size_t k) const {
  ExecContext ctx = MakeContext();
  ctx.set_top_k(k);
  return Evaluate(query, ctx);
}

StatusOr<RoutedResult> QueryRouter::EvaluateParsed(const LangExprPtr& query) const {
  ExecContext ctx = MakeContext();
  return EvaluateParsed(query, ctx);
}

StatusOr<RoutedResult> QueryRouter::EvaluateParsed(const LangExprPtr& query,
                                                   ExecContext& ctx) const {
  return searcher_.SearchParsed(query, ctx);
}

}  // namespace fts
